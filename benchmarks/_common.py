"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Because
``pytest --benchmark-only`` captures stdout, each bench *also* writes its
rendered table to ``benchmarks/results/<name>.txt`` so the reproduction
artifacts survive the run (EXPERIMENTS.md is assembled from them).
"""

from __future__ import annotations

import os

import numpy as np

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> str:
    """Persist a rendered table; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text.rstrip() + "\n")
    # Also echo for -s runs.
    print(f"\n{text}\n[written to {path}]")
    return path


def write_json_result(name: str, record: dict) -> str:
    """Persist a machine-readable record next to the rendered table.

    Writes ``benchmarks/results/<name>.json`` (sorted keys, one trailing
    newline) so CI can upload/inspect the structured artifact -- e.g.
    the provenance-stamped kernel microbench record -- alongside the
    human-readable ``.txt``.  Returns the path.
    """
    import json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def collapse_fields(cells: int = 32, seed: int = 7):
    """A realistic (p, Gamma) field pair from a short cloud-collapse run.

    Used by the compression benches (Table 4, compression rates): the
    paper compresses exactly these two quantities.
    """
    from repro.cluster.driver import Simulation
    from repro.sim.cloud import generate_cloud
    from repro.sim.config import SimulationConfig
    from repro.sim.diagnostics import pressure_field
    from repro.sim.ic import cloud_collapse

    bubbles = generate_cloud(
        4, (0.5, 0.5, 0.5), 0.38, rng=seed, r_min=0.07, r_max=0.11
    )
    cfg = SimulationConfig(
        cells=cells, block_size=16, max_steps=30, diag_interval=0,
    )
    ic = cloud_collapse(bubbles, p_liquid=1000.0, smoothing=1.0 / cells)
    sim = Simulation(cfg, ic)
    res = sim.run()
    fld = res.final_field
    p = pressure_field(fld).astype(np.float32)
    gamma = fld[..., 5].astype(np.float32)
    return p, gamma


def gflops(flops: float, seconds: float) -> float:
    return flops / seconds / 1e9
