"""Paper Table 6: node-to-cluster performance degradation.

Model rows (1 node vs 1 rack) plus a measured analogue: the cost of the
node layer's ghost reconstruction (the paper attributes the 65 % -> 62 %
core-to-node RHS drop to it).  We measure the bare core-layer RHS kernel
against the full node-layer path (ghost load + kernel) on identical
blocks.
"""

import time

import numpy as np
from _common import write_result

from repro.core.block import GHOSTS
from repro.core.kernels import rhs_kernel
from repro.node.grid import BlockGrid
from repro.node.solver import NodeSolver
from repro.perf.report import format_table
from repro.perf.scaling import table6

PAPER = {"1 rack": (60, 7, 2), "1 node": (62, 18, 3)}


def render_model() -> str:
    rows = []
    for row in table6():
        scope = row["scope"]
        rows.append(
            {
                "scope": scope,
                "RHS [%]": row["RHS [%]"],
                "DT [%]": row["DT [%]"],
                "UP [%]": row["UP [%]"],
                "paper RHS/DT/UP [%]": "{}/{}/{}".format(*PAPER[scope]),
            }
        )
    return format_table(rows, "Table 6: node-to-cluster degradation (model vs paper)")


def measure_ghost_overhead(n=16, reps=20):
    """Seconds per block: bare kernel vs node path with ghost loads."""
    g = BlockGrid((2, 2, 2), n, h=0.05)
    rng = np.random.default_rng(0)
    field = np.zeros(g.cells + (7,), dtype=np.float32)
    field[..., 0] = 1000.0 * (1 + 0.01 * rng.normal(size=g.cells))
    field[..., 4] = 1300.0
    field[..., 5] = 0.179
    field[..., 6] = 1212.0
    g.from_array(field)
    solver = NodeSolver(g)
    block = g.blocks[(0, 0, 0)]

    # Warm both paths.
    solver.rhs_for_block(block)
    pad = solver._pad_buffer().copy()

    t0 = time.perf_counter()
    for _ in range(reps):
        rhs_kernel(pad, g.h)
    t_core = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        solver.rhs_for_block(block)
    t_node = (time.perf_counter() - t0) / reps
    return t_core, t_node


def test_table6_model(benchmark):
    text = benchmark(render_model)
    write_result("table6_node_cluster_model", text)


def test_table6_ghost_overhead_measured(benchmark):
    t_core, t_node = benchmark.pedantic(
        measure_ghost_overhead, rounds=1, iterations=1
    )
    overhead = t_node / t_core - 1.0
    text = (
        "Measured node-layer ghost-reconstruction overhead (Python):\n"
        f"  core kernel alone : {t_core * 1e3:7.2f} ms/block\n"
        f"  node path w/ghosts: {t_node * 1e3:7.2f} ms/block\n"
        f"  overhead          : {100 * overhead:7.1f} %\n"
        "(paper: ~3-5 % on BGQ; Python ghost copies are relatively cheap\n"
        " next to the interpreted kernel, so the overhead should be small)"
    )
    write_result("table6_ghost_overhead_measured", text)
    assert overhead < 0.5  # ghosts must not dominate the kernel
