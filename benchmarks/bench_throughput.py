"""Paper Section 7 throughput claims.

"On the 96 racks of Sequoia, the simulations operate on 13.2 trillion
points, taking 18.3 seconds to perform a simulation step, reaching a
throughput of 721 billion points per second" -- plus the 20x
time-to-solution improvement over Schmidt et al. projected to BGQ.

Model reproduction alongside the measured Python throughput of this
reproduction (cells advanced per second through the full stack), plus a
seeded fixed-case *kernel microbenchmark* (RHS / WENO5 / HLLE / SOS in
isolation) whose record lands in ``BENCH_kernels.json`` at the repo root
so kernel-level throughput is tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_throughput.py \\
        --kernels rhs,weno5 --out BENCH_kernels.json
"""

import json
import time
from pathlib import Path

import numpy as np

from _common import write_json_result, write_result

from repro.cluster.driver import Simulation
from repro.core.kernels import rhs_kernel, sos_kernel
from repro.perf.machines import SEQUOIA
from repro.perf.scaling import throughput_cells_per_second, time_per_step
from repro.physics.eos import LIQUID, conserved_to_primitive, total_energy
from repro.physics.riemann import hlle_flux
from repro.physics.state import (
    COMPUTE_DTYPE,
    ENERGY,
    GAMMA,
    NQ,
    PI,
    RHO,
    RHOU,
    RHOV,
    RHOW,
)
from repro.physics.weno import weno5
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

from repro.telemetry import trend

TOTAL_CELLS = 13.2e12

#: Schema identifier of the kernel microbench record: v2 = v1 plus the
#: mandatory provenance block (host fingerprint, git sha, timestamp,
#: python/numpy versions) defined by :mod:`repro.telemetry.trend`.
KERNEL_BENCH_SCHEMA = trend.KERNEL_SCHEMA_V2

#: Fixed seed of the microbench case (the paper's SC year).
KERNEL_BENCH_SEED = 2013

#: Kernels the microbench times, in report order.
KERNEL_BENCH_CASES = ("rhs", "weno5", "hlle", "sos")

#: Default record path: the repo root, next to kernel_manifest.json.
KERNEL_BENCH_OUT = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"


def render_model() -> str:
    tput = throughput_cells_per_second(96)
    step = time_per_step(TOTAL_CELLS, 96)
    # State-of-the-art baseline (Schmidt et al. 2011) projected on BGQ:
    # the paper claims a 20x throughput/time-to-solution improvement.
    baseline_tput = tput / 20.0
    return (
        "Section 7 throughput (model vs paper):\n"
        f"  grid points            : {TOTAL_CELLS:.3g}   [paper: 13.2e12]\n"
        f"  throughput             : {tput / 1e9:7.0f} Gcells/s  [paper: 721]\n"
        f"  time per step          : {step:7.1f} s        [paper: 18.3]\n"
        f"  projected SoA baseline : {baseline_tput / 1e9:7.0f} Gcells/s "
        "(Schmidt et al. on BGQ)\n"
        f"  improvement            : {tput / baseline_tput:7.1f}x      [paper: 20x]\n"
        f"  cores used             : {SEQUOIA.cores:.3g}   [paper: 1.6e6]"
    )


def measured_python_throughput():
    cfg = SimulationConfig(
        cells=32, block_size=16, max_steps=3, num_workers=4, diag_interval=0,
    )
    ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
    sim = Simulation(cfg, ic)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    cells_steps = 32**3 * 3
    return cells_steps / elapsed


def test_throughput_model(benchmark):
    text = benchmark(render_model)
    tput = throughput_cells_per_second(96)
    assert abs(tput - 721e9) / 721e9 < 0.1
    write_result("throughput_model", text)


# -- kernel microbenchmark (BENCH_kernels.json) ---------------------------


def _bench_state(n: int, seed: int):
    """Seeded, physically admissible padded AoS liquid state.

    A perturbed liquid at rest: density/pressure/velocity drawn from the
    fixed-seed generator so every run (and every PR) times the exact same
    case.  Returns float32 AoS data of shape ``(n+6, n+6, n+6, NQ)``.
    """
    rng = np.random.default_rng(seed)
    shape = (n + 6, n + 6, n + 6)
    rho = 1000.0 * (1.0 + 0.02 * rng.standard_normal(shape))
    u = 0.1 * rng.standard_normal(shape)
    v = 0.1 * rng.standard_normal(shape)
    w = 0.1 * rng.standard_normal(shape)
    p = 100.0 * (1.0 + 0.05 * rng.standard_normal(shape))
    aos = np.empty(shape + (NQ,), dtype=np.float32)
    aos[..., RHO] = rho
    aos[..., RHOU] = rho * u
    aos[..., RHOV] = rho * v
    aos[..., RHOW] = rho * w
    aos[..., ENERGY] = total_energy(rho, u, v, w, p, LIQUID.G, LIQUID.P)
    aos[..., GAMMA] = LIQUID.G
    aos[..., PI] = LIQUID.P
    return aos


def _bench_callables(n: int, seed: int):
    """(callable, cells-per-call) pairs of the microbench kernels."""
    g = 3
    h = 1.0 / n
    pad = _bench_state(n, seed)
    interior = pad[g:-g, g:-g, g:-g]
    Upad = np.ascontiguousarray(
        np.moveaxis(pad, -1, 0), dtype=COMPUTE_DTYPE
    )
    Wpad = conserved_to_primitive(Upad)
    # One x-sweep's worth of reconstruction input and face states.
    Wline = np.ascontiguousarray(Wpad[:, g:-g, g:-g, :])
    W_minus, W_plus = weno5(Wline)
    return {
        "rhs": (lambda: rhs_kernel(pad, h), n**3),
        "weno5": (lambda: weno5(Wline), n * n * (n + 1)),
        "hlle": (lambda: hlle_flux(W_minus, W_plus, normal=0),
                 n * n * (n + 1)),
        "sos": (lambda: sos_kernel(interior), n**3),
    }


def run_kernel_microbench(
    kernels=KERNEL_BENCH_CASES,
    n: int = 32,
    repeats: int = 3,
    seed: int = KERNEL_BENCH_SEED,
) -> dict:
    """Time the requested kernels on the fixed seeded case.

    Each kernel runs once for warmup, then ``repeats`` timed calls; the
    record keeps the best wall time (least-noise convention).  Returns
    the ``BENCH_kernels.json`` payload, stamped with the schema-v2
    provenance block so it can join the ``BENCH_history.jsonl``
    trajectory and gate regressions (``python -m repro.telemetry trend``).
    """
    cases = _bench_callables(n, seed)
    unknown = [k for k in kernels if k not in cases]
    if unknown:
        raise ValueError(
            f"unknown kernel(s) {unknown}; choose from {sorted(cases)}"
        )
    record: dict = {
        "schema": KERNEL_BENCH_SCHEMA,
        "case": {"n": n, "seed": seed, "repeats": repeats,
                 "dtype": "float32 AoS storage, float64 compute"},
        "kernels": {},
    }
    for name in kernels:
        fn, cells = cases[name]
        fn()  # warmup
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        record["kernels"][name] = {
            "cells_per_call": cells,
            "wall_s": round(best, 6),
            "gcells_per_s": round(cells / best / 1e9, 6),
        }
    return trend.stamp(record)


def render_kernel_bench(record: dict) -> str:
    """Rendered table of a microbench record (the bench artifact)."""
    case = record["case"]
    lines = [
        f"Kernel microbench (n={case['n']}, seed={case['seed']}, "
        f"best of {case['repeats']}):",
        f"  {'kernel':8s} {'cells':>9s} {'wall [ms]':>10s} {'Gcells/s':>9s}",
    ]
    for name, row in record["kernels"].items():
        lines.append(
            f"  {name:8s} {row['cells_per_call']:9d} "
            f"{row['wall_s'] * 1e3:10.3f} {row['gcells_per_s']:9.5f}"
        )
    return "\n".join(lines)


def write_kernel_bench(record: dict, out=KERNEL_BENCH_OUT) -> Path:
    """Write the microbench record; returns the path."""
    path = Path(out)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path


def test_kernel_microbench(benchmark):
    record = benchmark.pedantic(
        lambda: run_kernel_microbench(n=16, repeats=1),
        rounds=1, iterations=1,
    )
    assert set(record["kernels"]) == set(KERNEL_BENCH_CASES)
    assert record["schema"] == KERNEL_BENCH_SCHEMA
    assert "provenance" in record
    for row in record["kernels"].values():
        assert row["wall_s"] > 0 and row["gcells_per_s"] > 0
    write_result("kernel_microbench", render_kernel_bench(record))
    write_json_result("kernel_microbench", record)


def test_throughput_measured_python(benchmark):
    cps = benchmark.pedantic(measured_python_throughput, rounds=1, iterations=1)
    paper_per_node = 721e9 / SEQUOIA.nodes
    text = (
        "Measured Python end-to-end throughput (32^3, full stack):\n"
        f"  this machine : {cps / 1e6:8.3f} Mcells/s\n"
        f"  paper per BGQ node: {paper_per_node / 1e6:8.3f} Mcells/s\n"
        f"  gap: {paper_per_node / cps:8.1f}x (interpreted-language penalty,\n"
        "  consistent with the repro-band calibration)"
    )
    write_result("throughput_measured_python", text)
    assert cps > 1e4


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(
        description="Seeded fixed-case kernel microbench "
        "(writes BENCH_kernels.json)",
    )
    ap.add_argument(
        "--kernels", default=",".join(KERNEL_BENCH_CASES),
        help="comma-separated subset of " + ",".join(KERNEL_BENCH_CASES),
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="small case (n=16, 1 repeat) for CI smoke runs",
    )
    ap.add_argument(
        "--out", default=str(KERNEL_BENCH_OUT),
        help="record path (default: BENCH_kernels.json at the repo root)",
    )
    ap.add_argument(
        "--history", metavar="PATH", default=None,
        help="also append the record to this BENCH_history.jsonl "
             "trajectory (see repro.telemetry.trend)",
    )
    cli = ap.parse_args()
    names = tuple(k.strip() for k in cli.kernels.split(",") if k.strip())
    if cli.smoke:
        rec = run_kernel_microbench(names, n=16, repeats=1)
    else:
        rec = run_kernel_microbench(names)
    print(render_kernel_bench(rec))
    print(f"[written to {write_kernel_bench(rec, cli.out)}]")
    if cli.history:
        print(f"[appended to {trend.append_history(rec, cli.history)}]")
