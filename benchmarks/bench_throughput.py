"""Paper Section 7 throughput claims.

"On the 96 racks of Sequoia, the simulations operate on 13.2 trillion
points, taking 18.3 seconds to perform a simulation step, reaching a
throughput of 721 billion points per second" -- plus the 20x
time-to-solution improvement over Schmidt et al. projected to BGQ.

Model reproduction alongside the measured Python throughput of this
reproduction (cells advanced per second through the full stack).
"""

import time

from _common import write_result

from repro.cluster.driver import Simulation
from repro.perf.machines import SEQUOIA
from repro.perf.scaling import throughput_cells_per_second, time_per_step
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

TOTAL_CELLS = 13.2e12


def render_model() -> str:
    tput = throughput_cells_per_second(96)
    step = time_per_step(TOTAL_CELLS, 96)
    # State-of-the-art baseline (Schmidt et al. 2011) projected on BGQ:
    # the paper claims a 20x throughput/time-to-solution improvement.
    baseline_tput = tput / 20.0
    return (
        "Section 7 throughput (model vs paper):\n"
        f"  grid points            : {TOTAL_CELLS:.3g}   [paper: 13.2e12]\n"
        f"  throughput             : {tput / 1e9:7.0f} Gcells/s  [paper: 721]\n"
        f"  time per step          : {step:7.1f} s        [paper: 18.3]\n"
        f"  projected SoA baseline : {baseline_tput / 1e9:7.0f} Gcells/s "
        "(Schmidt et al. on BGQ)\n"
        f"  improvement            : {tput / baseline_tput:7.1f}x      [paper: 20x]\n"
        f"  cores used             : {SEQUOIA.cores:.3g}   [paper: 1.6e6]"
    )


def measured_python_throughput():
    cfg = SimulationConfig(
        cells=32, block_size=16, max_steps=3, num_workers=4, diag_interval=0,
    )
    ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
    sim = Simulation(cfg, ic)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    cells_steps = 32**3 * 3
    return cells_steps / elapsed


def test_throughput_model(benchmark):
    text = benchmark(render_model)
    tput = throughput_cells_per_second(96)
    assert abs(tput - 721e9) / 721e9 < 0.1
    write_result("throughput_model", text)


def test_throughput_measured_python(benchmark):
    cps = benchmark.pedantic(measured_python_throughput, rounds=1, iterations=1)
    paper_per_node = 721e9 / SEQUOIA.nodes
    text = (
        "Measured Python end-to-end throughput (32^3, full stack):\n"
        f"  this machine : {cps / 1e6:8.3f} Mcells/s\n"
        f"  paper per BGQ node: {paper_per_node / 1e6:8.3f} Mcells/s\n"
        f"  gap: {paper_per_node / cps:8.1f}x (interpreted-language penalty,\n"
        "  consistent with the repro-band calibration)"
    )
    write_result("throughput_measured_python", text)
    assert cps > 1e4
