"""Paper Fig. 5: temporal evolution of a collapsing bubble cloud.

Runs a real (laptop-scale) cloud-cavitation-collapse simulation through
the full cluster/node/core stack and regenerates the three monitored
series of Fig. 5:

* maximum pressure in the flow field and on the solid wall
  (paper shape: wall peak reaches O(20x) the ambient pressure, after the
  flow-field peak);
* kinetic energy of the system (peaks around the main collapse);
* normalized equivalent radius of the cloud (decays, then rebounds).

Absolute scales differ from the 13-trillion-cell production run; the
shape criteria are asserted.
"""

import numpy as np
import pytest
from _common import write_result

from repro.cluster.driver import Simulation
from repro.perf.report import format_table
from repro.physics.rayleigh import rayleigh_collapse_time
from repro.sim.cloud import cloud_vapor_volume, generate_cloud
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

P_LIQUID = 1000.0  # strong driving keeps the run short


@pytest.fixture(scope="module")
def collapse_run():
    bubbles = generate_cloud(
        4, (0.5, 0.5, 0.5), 0.38, rng=11, r_min=0.07, r_max=0.11
    )
    tau = rayleigh_collapse_time(
        max(b.radius for b in bubbles), 1000.0, P_LIQUID
    )
    cfg = SimulationConfig(
        cells=32, block_size=16, max_steps=400, t_end=1.8 * tau,
        wall=(0, -1), num_workers=4, diag_interval=1,
    )
    # One-cell interface smoothing keeps the coarse 32^3 run stable
    # (production runs resolve bubbles with 50 p.p.r.; we have ~3).
    ic = cloud_collapse(bubbles, p_liquid=P_LIQUID, smoothing=1.0 / 32)
    sim = Simulation(cfg, ic)
    return sim, bubbles, tau


def test_fig5_collapse_series(benchmark, collapse_run):
    sim, bubbles, tau = collapse_run
    res = benchmark.pedantic(sim.run, rounds=1, iterations=1)

    t = res.times / tau
    maxp = res.series("max_pressure")
    wallp = res.series("wall_max_pressure")
    ke = res.series("kinetic_energy")
    r_eq = (res.series("vapor_volume") * 3.0 / (4.0 * np.pi)) ** (1.0 / 3.0)
    r0 = (cloud_vapor_volume(bubbles) * 3.0 / (4.0 * np.pi)) ** (1.0 / 3.0)

    rows = [
        {
            "t/tau": float(t[i]),
            "max p / p_inf": float(maxp[i] / P_LIQUID),
            "wall p / p_inf": float(wallp[i] / P_LIQUID),
            "kinetic energy": float(ke[i]),
            "r_eq / r0": float(r_eq[i] / r0),
        }
        for i in range(0, len(t), max(1, len(t) // 24))
    ]
    text = format_table(
        rows,
        "Fig 5: cloud collapse series (4 bubbles, 32^3, wall at z=0)\n"
        "paper shapes: wall-pressure peak O(20x) ambient after field peak;\n"
        "KE peaks near collapse; equivalent radius decays then rebounds",
        floatfmt="{:.3f}",
    )
    write_result("fig5_collapse_series", text)

    # -- shape assertions ------------------------------------------------
    assert np.isfinite(maxp).all()
    # 1. Pressure amplification well above ambient (collapse hot spots).
    assert maxp.max() > 1.5 * P_LIQUID
    # 2. Kinetic energy rises to an interior peak (not monotone).
    i_ke = int(np.argmax(ke))
    assert 0 < i_ke < len(ke) - 1
    # 3. The cloud's equivalent radius shrinks substantially...
    i_min = int(np.argmin(r_eq))
    assert r_eq[i_min] < 0.9 * r_eq[0]
    # ...and rebounds afterwards (vapor packets regrow, paper Fig. 5).
    if i_min < len(r_eq) - 2:
        assert r_eq[-1] >= r_eq[i_min]
    # 4. The wall records elevated pressure during the collapse.
    assert wallp.max() > 1.1 * P_LIQUID
    # 5. The flow-field peak leads (or ties) the wall peak in amplitude.
    assert maxp.max() >= wallp.max()
