"""Cluster-backend wall-clock comparison: thread ranks vs process ranks.

The paper's headline quantity is measured parallel throughput (721
Gcells/s on 96 racks); this bench measures the reproduction's analogue:
the wall-clock ratio between the thread-based ``sim`` backend (all
ranks GIL-serialized in one interpreter) and the process-parallel
``procs`` backend (real OS processes over shared-memory rings) on the
same seeded tier-2 case.  On a >= 4-core host the 4-rank case is
expected to show >= 2.5x; on fewer cores the procs backend can only tie
(minus IPC overhead), so the measured ``cpu_count`` is stamped into the
record -- the number is honest either way.

Both backends produce bit-identical fields (asserted here on the smoke
case; the full differential contract lives in
``tests/test_backend_equivalence.py``), so this ratio is a pure
runtime comparison::

    PYTHONPATH=src python benchmarks/bench_cluster_backends.py --smoke
    PYTHONPATH=src python benchmarks/bench_cluster_backends.py \\
        --append   # record the trajectory point in BENCH_history.jsonl
"""

import argparse
import json
import os
import time

import numpy as np

from _common import write_json_result, write_result

from repro.cluster import Simulation
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse
from repro.telemetry import trend

#: Fixed seed/case parameters (tier-2: a real collapse on a 4-rank grid).
SEED = 2013
RANKS = 4
CASE = dict(cells=32, block_size=8, max_steps=6)
SMOKE_CASE = dict(cells=16, block_size=8, max_steps=3)


def make_ic(cfg: SimulationConfig):
    return cloud_collapse(
        [Bubble((0.42, 0.55, 0.47), 0.18), Bubble((0.65, 0.4, 0.62), 0.12)],
        p_liquid=500.0, smoothing=cfg.h,
    )


def run_backend(backend: str, case: dict, ranks: int):
    """One timed run; returns (wall_seconds, RunResult)."""
    cfg = SimulationConfig(
        **case, ranks=ranks, cluster_backend=backend, comm_timeout=120.0,
    )
    sim = Simulation(cfg, make_ic(cfg))
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result


def bench(case: dict, ranks: int, repeats: int) -> dict:
    """Measure both backends; returns the stamped v2 trajectory record."""
    cells = case["cells"] ** 3
    cell_steps = cells * case["max_steps"]
    walls = {"sim": [], "procs": []}
    fields = {}
    for _ in range(repeats):
        for backend in ("sim", "procs"):
            wall, result = run_backend(backend, case, ranks)
            walls[backend].append(wall)
            fields[backend] = result.final_field
    np.testing.assert_array_equal(fields["sim"], fields["procs"])

    kernels = {}
    for backend in ("sim", "procs"):
        best = min(walls[backend])
        kernels[f"cluster_{backend}_{ranks}rank"] = {
            "wall_s": round(best, 6),
            "cells_per_call": cell_steps,
            "gcells_per_s": round(cell_steps / best / 1e9, 9),
        }
    speedup = (min(walls["sim"]) / min(walls["procs"])
               if min(walls["procs"]) > 0 else 0.0)
    return trend.stamp({
        "case": {
            **{k: case[k] for k in ("cells", "block_size", "max_steps")},
            "ranks": ranks,
            "repeats": repeats,
            "seed": SEED,
            "cpu_count": os.cpu_count(),
            "procs_speedup": round(speedup, 4),
            "bit_identical": True,
        },
        "kernels": kernels,
    })


def render(record: dict) -> str:
    case = record["case"]
    lines = [
        "Cluster-backend comparison (thread ranks vs process ranks)",
        f"case: cells={case['cells']} ranks={case['ranks']} "
        f"steps={case['max_steps']} repeats={case['repeats']} "
        f"host_cores={case['cpu_count']}",
        f"{'backend':<24} {'wall [s]':>10} {'Gcells/s':>12}",
    ]
    for name, row in sorted(record["kernels"].items()):
        lines.append(
            f"{name:<24} {row['wall_s']:>10.3f} {row['gcells_per_s']:>12.6f}"
        )
    lines.append(
        f"procs speedup: {case['procs_speedup']:.2f}x "
        f"(target >= 2.5x on >= 4 cores; fields bit-identical)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small case for CI (2 ranks, 16^3, 3 steps)")
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--out", default=None, metavar="PATH",
                    help="also write the record to this JSON path")
    ap.add_argument("--append", action="store_true",
                    help="append the record to BENCH_history.jsonl "
                         "(the perf-trajectory gate's history)")
    cli = ap.parse_args(argv)

    case = SMOKE_CASE if cli.smoke else CASE
    ranks = 2 if cli.smoke else RANKS
    record = bench(case, ranks, cli.repeats)
    text = render(record)
    write_result("cluster_backends", text)
    write_json_result("cluster_backends", record)
    if cli.out:
        with open(cli.out, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
            f.write("\n")
    if cli.append:
        print(f"[appended to {trend.append_history(record)}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
