"""Paper Fig. 7: wall-clock time distribution of a production step.

Left pie: the RHS dominates the step (~89 %) and compressed dumps cost
only ~4 % of total time.  Right pie: inside a dump, parallel I/O takes
92 %, encoding 6 %, the wavelet transform + decimation 2 % (on BGQ, where
the FWT is QPX-vectorized; in Python the transform is relatively more
expensive, which the results file records honestly).

The bench runs a real simulation with dumps enabled and reports the
measured phase shares.
"""

import pytest
from _common import write_result

from repro.cluster.driver import Simulation
from repro.perf.report import format_table
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse


@pytest.fixture(scope="module")
def dump_run(tmp_path_factory):
    dump_dir = tmp_path_factory.mktemp("fig7_dumps")
    cfg = SimulationConfig(
        cells=32, block_size=16, max_steps=10, dump_interval=5,
        dump_dir=str(dump_dir), num_workers=4, diag_interval=0,
    )
    ic = cloud_collapse(
        [Bubble((0.5, 0.5, 0.5), 0.2), Bubble((0.3, 0.6, 0.4), 0.1)],
        p_liquid=1000.0,
    )
    return Simulation(cfg, ic)


def test_fig7_time_distribution(benchmark, dump_run):
    res = benchmark.pedantic(dump_run.run, rounds=1, iterations=1)
    timers = res.timers
    compute_keys = ("RHS", "DT", "UP", "COMM_WAIT", "IO_WAVELET")
    total = sum(timers.get(k, 0.0) for k in compute_keys)
    rows = [
        {
            "phase": k,
            "share [%]": 100.0 * timers.get(k, 0.0) / total,
            "paper [%]": {"RHS": 89, "DT": 2, "UP": 5, "COMM_WAIT": 0,
                          "IO_WAVELET": 4}[k],
        }
        for k in compute_keys
    ]
    text = format_table(rows, "Fig 7 (left): step time distribution")

    io_total = timers.get("IO_WAVELET", 0.0)
    fwt = timers.get("IO_FWT", 0.0)
    write = timers.get("IO_WRITE", 0.0)
    rows2 = [
        {"stage": "FWT+DEC+ENC", "share [%]": 100 * fwt / io_total,
         "paper [%]": 8},
        {"stage": "parallel IO", "share [%]": 100 * write / io_total,
         "paper [%]": 92},
    ]
    text += "\n\n" + format_table(
        rows2,
        "Fig 7 (right): within a dump (paper: IO 92 %, ENC 6 %, FWT 2 %;\n"
        "in Python the interpreted FWT weighs more against a local disk)",
    )
    write_result("fig7_time_distribution", text)

    # Shape assertions: RHS dominates; dumps are a small fraction.
    assert timers["RHS"] == max(timers.get(k, 0.0) for k in compute_keys)
    assert timers["RHS"] / total > 0.5
    assert io_total / total < 0.4
