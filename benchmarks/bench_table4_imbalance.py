"""Paper Table 4: work imbalance in the data compression.

Runs the real wavelet pipeline on (p, Gamma) fields from an actual
small cloud-collapse simulation and reports the per-stage imbalance
``(t_max - t_min)/t_avg`` across workers, plus a modeled IO imbalance
from the per-rank payload spread.

Shape criteria from the paper: ENC imbalance >> DEC imbalance (encoding
cost tracks the data-dependent coefficient volume), and pressure shows
the wilder encoding imbalance of the two quantities.
"""

import numpy as np
import pytest
from _common import collapse_fields, write_result

from repro.compression.scheme import WaveletCompressor
from repro.perf.report import format_table

PAPER = {
    "Gamma": {"DEC": 0.30, "ENC": 3.90, "IO": 0.05},
    "Pressure": {"DEC": 0.22, "ENC": 21.0, "IO": 0.15},
}


@pytest.fixture(scope="module")
def fields():
    return collapse_fields(cells=32)


def compress_both(fields, threads=8):
    p, gamma = fields
    out = {}
    for name, data, eps in (("Pressure", p, 1e-2 * 1000), ("Gamma", gamma, 1e-3)):
        comp = WaveletCompressor(
            eps=eps, block_size=16, num_threads=threads, guaranteed=False
        )
        cf = comp.compress(np.ascontiguousarray(data))
        out[name] = cf
    return out


def test_table4_imbalance(benchmark, fields):
    compressed = benchmark.pedantic(
        compress_both, args=(fields,), rounds=2, iterations=1
    )
    rows = []
    for name, cf in compressed.items():
        imb = cf.stats.imbalance(num_threads=8)
        # IO imbalance model: per-stream payload spread at fixed bandwidth.
        sizes = np.array([s.compressed_bytes for s in cf.stats.enc_stats],
                         dtype=float)
        io = float((sizes.max() - sizes.min()) / sizes.mean()) if sizes.size else 0.0
        rows.append(
            {
                "quantity": name,
                "DEC [%]": 100 * imb["DEC"],
                "ENC [%]": 100 * imb["ENC"],
                "IO [%]": 100 * io,
                "paper DEC/ENC/IO [%]": "{:.0f}/{:.0f}/{:.0f}".format(
                    *(100 * PAPER[name][k] for k in ("DEC", "ENC", "IO"))
                ),
            }
        )
    text = format_table(rows, "Table 4: work imbalance in the data compression")
    write_result("table4_imbalance", text)

    # Shape assertion on the *mechanism* rather than on noisy wall times:
    # encoding work tracks the data-dependent compressed volume, whose
    # per-stream spread is large, while every DEC work item starts from an
    # identically-sized block.  (The paper's ENC >> DEC wall-time
    # imbalance follows from exactly this on dedicated hardware; single-CPU
    # Python wall times are too noisy to order reliably.)
    for name, cf in compressed.items():
        sizes = np.array(
            [s.compressed_bytes for s in cf.stats.enc_stats], dtype=float
        )
        size_imbalance = (sizes.max() - sizes.min()) / sizes.mean()
        assert size_imbalance > 0.2, (
            f"{name}: per-stream volumes too uniform ({size_imbalance:.2f})"
        )
        raw = np.array([s.raw_bytes for s in cf.stats.enc_stats], dtype=float)
        assert raw.max() - raw.min() <= raw.mean() * 0.5  # uniform inputs
