"""Paper Table 5: achieved performance at 1 / 24 / 96 racks.

The BGQ numbers come from the layer-composition model; alongside, the
bench *measures* the simulated-cluster driver at 1/2/4 ranks on a fixed
per-rank problem (weak scaling) to demonstrate that the software's
communication structure keeps per-step cost flat as ranks are added --
the property that makes the paper's 96-rack run possible.
"""

import time

import pytest
from _common import write_result

from repro.cluster.driver import Simulation
from repro.perf.report import format_table
from repro.perf.scaling import table5
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

PAPER_ROWS = {
    1: {"RHS": 60, "DT": 7, "UP": 2, "ALL": 53},
    24: {"RHS": 57, "DT": 5, "UP": 2, "ALL": 51},
    96: {"RHS": 55, "DT": 5, "UP": 2, "ALL": 50},
}


def render_model() -> str:
    rows = []
    for row in table5():
        racks = row["racks"]
        rows.append(
            {
                "racks": racks,
                "RHS [%]": row["RHS [%]"],
                "DT [%]": row["DT [%]"],
                "UP [%]": row["UP [%]"],
                "ALL [%]": row["ALL [%]"],
                "RHS [PF/s]": row["RHS [PFLOP/s]"],
                "ALL [PF/s]": row["ALL [PFLOP/s]"],
                "paper RHS/DT/UP/ALL [%]": "{RHS}/{DT}/{UP}/{ALL}".format(
                    **PAPER_ROWS[racks]
                ),
            }
        )
    return format_table(rows, "Table 5: achieved performance (model vs paper)")


def weak_scaling_measured():
    """Per-step wall time with a constant per-rank subdomain."""
    out = []
    for ranks, cells in ((1, (16, 16, 16)), (2, (32, 16, 16)), (4, (32, 32, 16))):
        cfg = SimulationConfig(
            cells=cells, block_size=8, max_steps=2, ranks=ranks,
            diag_interval=0, num_workers=2,
        )
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        t0 = time.perf_counter()
        Simulation(cfg, ic).run()
        per_step = (time.perf_counter() - t0) / 2
        out.append({"ranks": ranks, "cells": str(cells),
                    "s/step (measured)": per_step})
    return out


def test_table5_model(benchmark):
    text = benchmark(render_model)
    write_result("table5_cluster_model", text)
    rows = {r["racks"]: r for r in table5()}
    assert rows[96]["RHS [PFLOP/s]"] > 10.0  # the 11 PFLOP/s headline


def test_table5_weak_scaling_measured(benchmark):
    rows = benchmark.pedantic(weak_scaling_measured, rounds=1, iterations=1)
    text = format_table(
        rows,
        "Weak scaling of the simulated cluster (constant subdomain/rank;\n"
        "on a single-CPU host this measures communication overhead, not\n"
        "parallel speedup)",
        floatfmt="{:.3f}",
    )
    write_result("table5_weak_scaling_measured", text)
    # On a single-CPU host ranks serialize, so per-step time tracks total
    # work; the assertion bounds the *communication overhead* on top:
    # 4 ranks do 4x the cells of 1 rank, so anything under 6x means the
    # halo protocol costs < 50 % overhead.
    assert rows[-1]["s/step (measured)"] < 6.0 * rows[0]["s/step (measured)"]
