"""Paper Fig. 9: node-layer weak scaling and roofline placement.

Left: modeled GFLOP/s of RHS/DT/UP vs thread count on the BQC (RHS/DT
scale with cores + SMT; UP saturates at the memory bandwidth).

Right: the three kernels placed against the BQC roofline.

Measured: real thread scaling of the Python node layer (dispatcher in
``threads`` mode -- NumPy releases the GIL inside the kernels).
"""

import time

import numpy as np
from _common import write_result

from repro.node.dispatcher import Dispatcher
from repro.node.grid import BlockGrid
from repro.node.solver import NodeSolver
from repro.perf.machines import BGQ_NODE
from repro.perf.report import format_table
from repro.perf.roofline import attainable
from repro.perf.scaling import cluster_perf, core_perf, fig9_weak_scaling
from repro.perf.kernels import DT, RHS, UP
from repro.perf.traffic import table3


def render_model() -> str:
    rows = fig9_weak_scaling()
    text = format_table(rows, "Fig 9 (left): modeled node-layer weak scaling "
                              "[GFLOP/s vs threads]")
    oi = {e.kernel: e.reordered_oi for e in table3()}
    achieved = {
        "RHS": core_perf(RHS).gflops * 16,
        "DT": core_perf(DT).gflops * 16,
        "UP": core_perf(UP).gflops * 16,
    }
    roof_rows = [
        {
            "kernel": k,
            "OI [FLOP/B]": oi[k],
            "roofline bound [GF/s]": attainable(BGQ_NODE, oi[k]),
            "achieved [GF/s]": v,
            "bound hit [%]": 100 * v / attainable(BGQ_NODE, oi[k]),
        }
        for k, v in achieved.items()
    ]
    return text + "\n\n" + format_table(
        roof_rows, "Fig 9 (right): kernels on the BQC roofline"
    )


def measured_thread_scaling():
    g = BlockGrid((2, 2, 2), 16, h=0.05)
    rng = np.random.default_rng(0)
    field = np.zeros(g.cells + (7,), dtype=np.float32)
    field[..., 0] = 1000.0 * (1 + 0.01 * rng.normal(size=g.cells))
    field[..., 4] = 1300.0
    field[..., 5] = 0.179
    field[..., 6] = 1212.0
    g.from_array(field)
    rows = []
    for workers in (1, 2, 4):
        solver = NodeSolver(g, dispatcher=Dispatcher(workers, mode="threads"))
        solver.evaluate_rhs()  # warm
        t0 = time.perf_counter()
        solver.evaluate_rhs()
        elapsed = time.perf_counter() - t0
        rows.append({"workers": workers, "s/rank-RHS": elapsed})
    return rows


def test_fig9_model(benchmark):
    text = benchmark(render_model)
    write_result("fig9_node_scaling_model", text)
    rows = fig9_weak_scaling()
    # UP saturates: 64-thread UP < 2x the 8-thread UP.
    by_t = {r["threads"]: r for r in rows}
    assert by_t[64]["UP"] < 2.0 * by_t[8]["UP"]
    # RHS keeps scaling into SMT territory.
    assert by_t[64]["RHS"] > 1.5 * by_t[16]["RHS"]


def test_fig9_measured_threads(benchmark):
    import os

    rows = benchmark.pedantic(measured_thread_scaling, rounds=1, iterations=1)
    speedup = rows[0]["s/rank-RHS"] / rows[-1]["s/rank-RHS"]
    text = format_table(
        rows, "Measured Python node-layer thread scaling (real threads)",
        floatfmt="{:.4f}",
    ) + (
        f"\n4-worker speedup: {speedup:.2f}x on {os.cpu_count()} CPU(s)\n"
        "(NumPy elementwise kernels hold the GIL; on a single-CPU host the\n"
        " dispatcher demonstrates correct dynamic scheduling, not speedup)"
    )
    write_result("fig9_thread_scaling_measured", text)
    # The work queue must at least not add significant overhead.
    assert speedup > 0.5
