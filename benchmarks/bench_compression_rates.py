"""Paper Section 7 compression rates.

"The observed compression rates were in the range of 20-10:1 for pressure
and 150-100:1 for Gamma ...  The total uncompressed disk space is 7.9 TB
whereas the compressed footprint amounts to 0.47 TB."

Two sections:

* measured rates on real (p, Gamma) fields from a small collapse run.
  At 32^3 the bubble *interface fraction* is ~400x the production run's
  (4 bubbles at ~3 cells/radius vs 15'000 at 50 p.p.r. in 13.2e12 cells),
  which depresses the Gamma rate -- recorded honestly;
* rates on production-like synthetic fields at 128^3 with a
  paper-like interface fraction, where the paper's ordering
  (Gamma >> p) and magnitudes reappear.

Also reproduces the paper's AMR counter-argument: at solver-accuracy
thresholds (1e-4 relative) the compression rate collapses toward 1:1,
which is why AMR would not have paid off for this flow.
"""

import numpy as np
import pytest
from _common import collapse_fields, write_result

from repro.compression.scheme import WaveletCompressor
from repro.perf.report import format_table
from repro.sim.cloud import Bubble
from repro.sim.ic import cloud_collapse

P_AMBIENT = 1000.0


@pytest.fixture(scope="module")
def sim_fields():
    return collapse_fields(cells=32)


def production_like_fields(n=128, seed=3):
    """Synthetic (p, Gamma) at a production-like interface fraction."""
    rng = np.random.default_rng(seed)
    # Gamma: a few small, well-separated bubbles (~0.5 % interface cells).
    bubbles = [
        Bubble((0.3, 0.3, 0.3), 0.05),
        Bubble((0.7, 0.6, 0.4), 0.04),
        Bubble((0.5, 0.75, 0.7), 0.045),
    ]
    c = (np.arange(n) + 0.5) / n
    state = cloud_collapse(bubbles, smoothing=1.0 / n)(
        c[:, None, None], c[None, :, None], c[None, None, :]
    )
    gamma = state[..., 5].astype(np.float32)
    # p: ambient + a few smooth traveling wave packets (broadband-ish).
    z, y, x = np.meshgrid(c, c, c, indexing="ij")
    p = P_AMBIENT * np.ones((n, n, n))
    for _ in range(6):
        k = rng.uniform(2, 10, size=3)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(20, 120)
        p += amp * np.sin(2 * np.pi * (k[0] * z + k[1] * y + k[2] * x) + phase)
    return p.astype(np.float32), gamma


def rates(p, gamma):
    comp_p = WaveletCompressor(eps=1e-2 * P_AMBIENT, block_size=16,
                               guaranteed=False)
    comp_g = WaveletCompressor(eps=1e-3, block_size=16, guaranteed=False)
    comp_amr = WaveletCompressor(eps=1e-4 * P_AMBIENT, block_size=16,
                                 guaranteed=False)
    return (
        comp_p.compress(np.ascontiguousarray(p)),
        comp_g.compress(np.ascontiguousarray(gamma)),
        comp_amr.compress(np.ascontiguousarray(p)),
    )


def test_compression_rates_sim_fields(benchmark, sim_fields):
    cf_p, cf_g, cf_amr = benchmark.pedantic(
        rates, args=sim_fields, rounds=1, iterations=1
    )
    rows = [
        {"quantity": "p (eps 1e-2 x ambient)", "rate": cf_p.stats.rate,
         "paper": "10-20:1"},
        {"quantity": "Gamma (eps 1e-3)", "rate": cf_g.stats.rate,
         "paper": "100-150:1 (at 0.01% interface fraction)"},
        {"quantity": "p (eps 1e-4, AMR-grade)", "rate": cf_amr.stats.rate,
         "paper": "~1.15:1"},
    ]
    text = format_table(
        rows,
        "Compression rates, measured 32^3 collapse fields\n"
        "(Gamma rate depressed by the ~400x larger interface fraction of "
        "the laptop-scale run)",
    )
    write_result("compression_rates_sim", text)
    # p matches the paper's window; AMR-grade thresholds gain much less.
    assert 5.0 < cf_p.stats.rate < 60.0
    assert cf_amr.stats.rate < 0.5 * cf_p.stats.rate


def test_compression_rates_production_like(benchmark):
    p, gamma = production_like_fields()
    cf_p, cf_g, cf_amr = benchmark.pedantic(
        rates, args=(p, gamma), rounds=1, iterations=1
    )
    total_raw = cf_p.stats.raw_bytes + cf_g.stats.raw_bytes
    total_comp = cf_p.stats.compressed_bytes + cf_g.stats.compressed_bytes
    rows = [
        {"quantity": "p (eps 1e-2 x ambient)", "rate": cf_p.stats.rate,
         "paper": "10-20:1"},
        {"quantity": "Gamma (eps 1e-3)", "rate": cf_g.stats.rate,
         "paper": "100-150:1"},
        {"quantity": "p (eps 1e-4, AMR-grade)", "rate": cf_amr.stats.rate,
         "paper": "~1.15:1"},
    ]
    text = format_table(
        rows, "Compression rates, production-like 128^3 fields"
    )
    text += (
        f"\n\ndump footprint: {total_raw / 1e6:.1f} MB -> "
        f"{total_comp / 1e6:.3f} MB "
        f"({total_raw / total_comp:.0f}:1 overall; paper: 7.9 TB -> 0.47 TB,"
        " ~17:1)"
    )
    write_result("compression_rates_production_like", text)
    # The paper's ordering and magnitudes.
    assert cf_g.stats.rate > cf_p.stats.rate
    assert cf_g.stats.rate > 50.0
    assert 5.0 < cf_p.stats.rate < 80.0
    assert cf_amr.stats.rate < cf_p.stats.rate
