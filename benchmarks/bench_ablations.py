"""Ablation benches for the design choices of paper Section 5.

Each of the "key decisions" gets a quantified ablation:

* block size (16/32/64) on the reordered-traffic model;
* SFC vs row-major block traversal locality;
* low-storage RK3 vs forward Euler steps-to-accuracy;
* per-thread stream concatenation vs per-block encoding;
* dumping only (p, Gamma) vs all seven quantities.
"""

import numpy as np
import pytest
from _common import write_result

from repro.compression.encoder import StreamEncoder
from repro.compression.scheme import WaveletCompressor
from repro.compression.wavelet import fwt3d
from repro.compression.decimation import decimate
from repro.core.timestepper import ForwardEuler, LowStorageRK3
from repro.node.sfc import locality_score, morton_order
from repro.perf.report import format_table
from repro.perf.traffic import rhs_traffic


def test_ablation_block_size(benchmark):
    def render():
        rows = []
        for bs in (8, 16, 32, 64):
            est = rhs_traffic(block_size=bs)
            rows.append(
                {
                    "block size": bs,
                    "ghost overhead [%]": 100 * (((bs + 6) ** 3 - bs**3) / bs**3),
                    "reordered OI [FLOP/B]": est.reordered_oi,
                }
            )
        return format_table(
            rows,
            "Ablation: block size vs ghost overhead and OI\n"
            "(paper picks 32^3: big enough to amortize ghosts, small enough "
            "for cache)",
        )

    text = benchmark(render)
    write_result("ablation_block_size", text)
    # OI improves monotonically with block size (ghost amortization).
    ois = [rhs_traffic(block_size=b).reordered_oi for b in (8, 16, 32, 64)]
    assert ois == sorted(ois)


def test_ablation_sfc_locality(benchmark):
    def measure():
        B = 8
        idx = np.array(
            [(z, y, x) for z in range(B) for y in range(B) for x in range(B)]
        )
        return (
            locality_score(morton_order(idx), idx),
            locality_score(np.arange(len(idx)), idx),
        )

    morton, row_major = benchmark(measure)
    text = (
        "Ablation: SFC block reindexing (mean Chebyshev jump between\n"
        "consecutively dispatched blocks, 8^3 grid):\n"
        f"  Morton   : {morton:.3f}\n"
        f"  row-major: {row_major:.3f}"
    )
    write_result("ablation_sfc_locality", text)
    assert morton <= row_major


def test_ablation_rk3_vs_euler(benchmark):
    """Steps needed to integrate dU/dt = -U to 1e-4 accuracy."""

    def steps_needed(stepper, dt0):
        dt = dt0
        while True:
            n = int(round(1.0 / dt))
            U = np.array([1.0])
            for _ in range(n):
                U = stepper.advance(U, lambda u: -u, dt)
            if abs(U[0] - np.exp(-1.0)) < 1e-4:
                return n
            dt /= 2.0

    def measure():
        return steps_needed(LowStorageRK3(), 0.25), steps_needed(
            ForwardEuler(), 0.25
        )

    rk3, euler = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "Ablation: steps to 1e-4 accuracy on dU/dt = -U over [0, 1]:\n"
        f"  RK3 (low-storage): {rk3}\n"
        f"  forward Euler    : {euler}\n"
        f"  step reduction   : {euler / rk3:.0f}x\n"
        "(the paper's choice of high-order time stepping cuts the total "
        "number of steps, hence total memory traffic)"
    )
    write_result("ablation_rk3_vs_euler", text)
    assert rk3 < euler / 10


def test_ablation_stream_concatenation(benchmark, rng_seed=5):
    """Per-thread concatenated streams vs per-block encoding (paper: the
    detail coefficients of adjacent blocks share ranges, so concatenation
    compresses better)."""
    rng = np.random.default_rng(rng_seed)
    # Correlated blocks: same smooth base + small noise.
    t = np.linspace(0, 1, 16)
    base = t[:, None, None] * t[None, :, None] * t[None, None, :]
    raw_blocks = [
        (base + 1e-3 * rng.normal(size=base.shape)).astype(np.float32)
        for _ in range(16)
    ]
    blocks = []
    for b in raw_blocks:
        c = fwt3d(b, 2)
        decimate(c, 2, 1e-3, guaranteed=False)
        blocks.append(c)

    def measure():
        enc = StreamEncoder()
        concat, _ = enc.encode(blocks, num_streams=4)
        per_block, _ = enc.encode(blocks, num_streams=len(blocks))
        return len(concat), len(per_block)

    concat_size, per_block_size = benchmark(measure)
    text = (
        "Ablation: per-thread stream concatenation vs per-block encoding\n"
        f"  4 concatenated streams: {concat_size} B\n"
        f"  16 per-block streams  : {per_block_size} B\n"
        f"  concatenation saves   : "
        f"{100 * (1 - concat_size / per_block_size):.1f} %"
    )
    write_result("ablation_stream_concat", text)
    assert concat_size <= per_block_size


def test_ablation_dump_quantity_selection(benchmark):
    """Dumping only (p, Gamma) vs all 7 quantities (paper Section 5)."""
    from _common import collapse_fields
    from repro.sim.diagnostics import pressure_field

    p, gamma = collapse_fields(cells=32)

    def measure():
        comp = WaveletCompressor(eps=1e-3, block_size=16, guaranteed=False)
        two = comp.compress(p).nbytes + comp.compress(gamma).nbytes
        # All-quantity dump approximated as 7 fields of p-like complexity.
        seven = 7 * comp.compress(p).nbytes
        return two, seven

    two, seven = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "Ablation: dump footprint, (p, Gamma) only vs all 7 quantities:\n"
        f"  p + Gamma : {two / 1e3:9.1f} kB\n"
        f"  7 fields  : {seven / 1e3:9.1f} kB\n"
        f"  saving    : {100 * (1 - two / seven):.0f} %"
    )
    write_result("ablation_dump_selection", text)
    assert two < seven
