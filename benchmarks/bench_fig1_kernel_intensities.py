"""Paper Fig. 1: the kernel pipeline and its operational intensities.

Fig. 1 colors the kernels by operational intensity (blue = low,
red = high) and lists the RHS stages CONV -> WENO -> HLLE -> SUM.  The
bench renders that classification from the traffic model plus the ridge
point of the BQC: RHS compute-bound, DT borderline, UP deep in the
memory-bound region.
"""

from _common import write_result

from repro.perf.machines import BGQ_NODE
from repro.perf.kernels import RHS_STAGES
from repro.perf.report import format_table
from repro.perf.traffic import table3


def render() -> str:
    rows = []
    for est in table3():
        rows.append(
            {
                "kernel": est.kernel,
                "OI [FLOP/B]": est.reordered_oi,
                "regime": (
                    "compute-bound"
                    if est.reordered_oi > BGQ_NODE.ridge_point
                    else "memory-bound"
                ),
            }
        )
    stage_rows = [
        {"RHS stage": s.name, "instr share [%]": 100 * s.weight}
        for s in RHS_STAGES
    ]
    return (
        format_table(rows, f"Fig 1: kernel OI classification (ridge = "
                           f"{BGQ_NODE.ridge_point:.1f} FLOP/B)")
        + "\n\n"
        + format_table(stage_rows, "Fig 1 (right): RHS pipeline stages")
    )


def test_fig1(benchmark):
    text = benchmark(render)
    write_result("fig1_kernel_intensities", text)
    est = {e.kernel: e for e in table3()}
    assert est["RHS"].reordered_oi > BGQ_NODE.ridge_point  # red kernel
    assert est["UP"].reordered_oi < BGQ_NODE.ridge_point  # blue kernel
