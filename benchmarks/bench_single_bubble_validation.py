"""Single-bubble validation: 3D solver vs Rayleigh-Plesset trajectory.

The paper grounds cloud-collapse modeling in the single-bubble theory of
Rayleigh and successors (Section 2).  This bench runs one vapor bubble
through the full 3D stack and overlays its equivalent-radius history
R(t)/R0 with the Rayleigh-Plesset ODE solution for the same driving --
the trajectory-level version of the collapse-time validation in the
integration tests.

Shape criteria: the 3D radius tracks the ODE within ~15 % through the
bulk of the collapse, and both collapse near the analytic Rayleigh time.
"""

import numpy as np
import pytest
from _common import write_result

from repro.cluster.driver import Simulation
from repro.perf.report import format_table
from repro.physics.rayleigh import RayleighPlesset, rayleigh_collapse_time
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

R0 = 0.3
P_INF = 1000.0
P_VAPOR = 0.0234


@pytest.fixture(scope="module")
def trajectories():
    tau = rayleigh_collapse_time(R0, 1000.0, P_INF - P_VAPOR)
    cfg = SimulationConfig(
        cells=24, block_size=8, extent=1.0, max_steps=1000,
        t_end=1.05 * tau, diag_interval=1, num_workers=2,
    )
    ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), R0)], p_liquid=P_INF)
    res = Simulation(cfg, ic).run()
    r3d = (res.series("vapor_volume") * 3.0 / (4.0 * np.pi)) ** (1.0 / 3.0)
    t3d = res.times

    ode = RayleighPlesset(R0=R0, p_inf=P_INF, rho=1000.0, pg0=P_VAPOR,
                          kappa=1.0)
    traj = ode.integrate(t_end=1.2 * tau, r_floor_frac=1e-2)
    return tau, t3d, r3d, traj


def test_single_bubble_vs_rayleigh_plesset(benchmark, trajectories):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tau, t3d, r3d, traj = trajectories

    rows = []
    for frac in np.linspace(0.05, 0.95, 13):
        t = frac * tau
        r_ode = traj.radius_at(t) / R0
        r_num = float(np.interp(t, t3d, r3d)) / r3d[0] * (r3d[0] / R0)
        rows.append(
            {
                "t/tau": float(frac),
                "R/R0 (3D solver)": r_num / (r3d[0] / R0),
                "R/R0 (Rayleigh-Plesset)": r_ode,
            }
        )
    text = format_table(
        rows,
        "Single-bubble collapse: 3D two-phase solver vs Rayleigh-Plesset\n"
        f"(R0 = {R0}, p_inf = {P_INF} bar, 24^3 cells ~ 7 cells/radius)",
        floatfmt="{:.3f}",
    )
    write_result("single_bubble_validation", text)

    # Trajectory agreement through the bulk of the collapse (the final
    # stage diverges: the grid cannot follow R -> 0).
    for row in rows:
        if row["t/tau"] <= 0.8:
            assert row["R/R0 (3D solver)"] == pytest.approx(
                row["R/R0 (Rayleigh-Plesset)"], abs=0.15
            ), f"divergence at t/tau = {row['t/tau']}"

    # Both trajectories are monotonically shrinking in the bulk.
    bulk = [r["R/R0 (3D solver)"] for r in rows if r["t/tau"] <= 0.9]
    assert all(b <= a + 1e-6 for a, b in zip(bulk, bulk[1:]))
