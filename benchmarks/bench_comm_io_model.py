"""Communication and I/O claims of paper Sections 4 & 6.

* halo messages of 3-30 MB ("the corresponding message size ranges
  between 3 MB and 30 MB");
* interior compute hides the exchange ("the time spent in the node layer
  is expected to be one order of magnitude larger than the communication
  time");
* the DT allreduce is latency-trivial yet serializes the kernel;
* compressed dumps cost < 1 % of run time and save 10-100x of I/O time.
"""

from _common import write_result

from repro.perf.network import (
    TorusNetwork,
    dump_analysis,
    halo_message_bytes,
    overlap_analysis,
)
from repro.perf.report import format_table


def render() -> str:
    net = TorusNetwork()
    rows = []
    for sub in (128, 256, 512, 640):
        ov = overlap_analysis(sub, network=net)
        rows.append(
            {
                "subdomain": f"{sub}^3",
                "message [MB]": ov.message_bytes / 1e6,
                "comm [ms]": ov.comm_seconds * 1e3,
                "interior compute [ms]": ov.compute_seconds * 1e3,
                "compute/comm": ov.ratio,
            }
        )
    text = format_table(
        rows,
        "Halo exchange vs interior compute (paper: messages 3-30 MB,\n"
        "compute ~one order of magnitude above comm)",
    )

    ar = net.allreduce_time(98304)
    text += (
        f"\n\nDT allreduce on 98304 nodes: {ar * 1e6:.1f} us "
        "(vs ~ms kernel times: cheap in time, costly in serialization)"
    )

    dm = dump_analysis()
    text += (
        "\n\nProduction dump model (13.2e12 cells, p + Gamma):\n"
        f"  uncompressed : {dm.uncompressed_bytes / 1e12:6.1f} TB -> "
        f"{dm.io_seconds_uncompressed:6.1f} s\n"
        f"  compressed   : {dm.compressed_bytes / 1e12:6.2f} TB -> "
        f"{dm.io_seconds_compressed:6.1f} s\n"
        f"  I/O time saving      : {dm.io_time_saving:5.1f}x "
        "[paper: 10-100x]\n"
        f"  fraction of run time : {100 * dm.dump_fraction_of_runtime:5.2f} % "
        "[paper: < 1 %]"
    )
    return text


def test_comm_io_model(benchmark):
    text = benchmark(render)
    write_result("comm_io_model", text)
    net = TorusNetwork()
    assert 3e6 < halo_message_bytes(256) < 30e6
    assert overlap_analysis(512).ratio > 10.0
    dm = dump_analysis()
    assert dm.dump_fraction_of_runtime < 0.01
    assert 10.0 < dm.io_time_saving < 100.0
