"""Paper Table 7: core-layer kernel performance (C++ vs QPX).

Model rows reproduce the BGQ numbers; the measured section reports the
*Python* core-layer kernels in GFLOP/s using the model's per-cell FLOP
counts -- the honest statement of the interpreted-language gap the
calibration notes predicted (repro band: "bandwidth-bound kernel core
contradicts interpreted approach").
"""

import time

import numpy as np
import pytest
from _common import write_result

from repro.compression.wavelet import fwt3d
from repro.core.kernels import rhs_kernel, sos_kernel, update_stage
from repro.perf.kernels import DT, FWT, RHS, UP
from repro.perf.report import format_table
from repro.perf.scaling import table7

PAPER = {
    "RHS": (2.21, 8.27, 65, 3.7),
    "DT": (0.90, 1.96, 15, 2.2),
    "UP": (0.30, 0.29, 2, 1.0),
    "FWT": (0.40, 1.29, 10, 3.2),
}


def render_model() -> str:
    rows = []
    for row in table7():
        k = row["kernel"]
        rows.append(
            {
                "kernel": k,
                "C++ [GF/s]": row["C++ [GFLOP/s]"],
                "QPX [GF/s]": row["QPX [GFLOP/s]"],
                "peak [%]": row["Peak fraction [%]"],
                "improv.": row["Improvement"],
                "paper C++/QPX/%/X": "{}/{}/{}/{}".format(*PAPER[k]),
            }
        )
    return format_table(rows, "Table 7: core layer (model vs paper)")


@pytest.fixture(scope="module")
def block_state():
    n = 16
    rng = np.random.default_rng(1)
    pad = np.zeros((n + 6, n + 6, n + 6, 7), dtype=np.float32)
    pad[..., 0] = 1000.0 * (1 + 0.02 * rng.normal(size=pad.shape[:3]))
    pad[..., 4] = 1300.0
    pad[..., 5] = 0.179
    pad[..., 6] = 1212.0
    return pad


def test_table7_model(benchmark):
    text = benchmark(render_model)
    write_result("table7_core_model", text)


def test_table7_measured_python(benchmark, block_state):
    n = block_state.shape[0] - 6
    cells = n**3
    core = block_state[3:-3, 3:-3, 3:-3]

    def measure():
        out = {}
        t0 = time.perf_counter()
        rhs = rhs_kernel(block_state, 0.05)
        out["RHS"] = (RHS.flops_per_cell * cells) / (time.perf_counter() - t0) / 1e9

        t0 = time.perf_counter()
        sos_kernel(core)
        out["DT"] = (DT.flops_per_cell * cells) / (time.perf_counter() - t0) / 1e9

        u = core.copy()
        res = np.zeros_like(u)
        t0 = time.perf_counter()
        update_stage(u, res, rhs, -0.5, 0.9, 1e-4)
        out["UP"] = (UP.flops_per_cell * cells) / (time.perf_counter() - t0) / 1e9

        t0 = time.perf_counter()
        fwt3d(core[..., 0].astype(np.float32), 1)
        out["FWT"] = (FWT.flops_per_cell * cells) / (time.perf_counter() - t0) / 1e9
        return out

    measured = benchmark.pedantic(measure, rounds=3, iterations=1)
    rows = [
        {
            "kernel": k,
            "Python [GFLOP/s]": v,
            "paper QPX [GFLOP/s]": PAPER[k][1],
            "gap [x]": PAPER[k][1] / v if v else float("inf"),
        }
        for k, v in measured.items()
    ]
    text = format_table(
        rows,
        "Measured Python core kernels (model FLOP accounting) vs paper QPX\n"
        "(the 100-1000x gap is the expected interpreted-language penalty)",
        floatfmt="{:.4f}",
    )
    write_result("table7_core_measured_python", text)
    assert measured["RHS"] > 0
