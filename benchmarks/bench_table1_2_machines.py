"""Paper Tables 1 & 2: the BGQ installations and the BQC node.

Pure specification tables -- the bench verifies the derivations (peak from
cores x freq x SIMD x FMA) and renders them next to the paper's values.
"""

from _common import write_result

from repro.perf.machines import bqc_table, machines_table
from repro.perf.report import format_table


def render() -> str:
    lines = [format_table(machines_table(), "Table 1: BlueGene/Q supercomputers")]
    lines.append("(paper: Sequoia 96/1.6e6/20.1, Juqueen 24/6.9e5/5.0, ZRL 1/1.6e4/0.2)")
    lines.append("")
    lines.append("Table 2: BQC performance table")
    for k, v in bqc_table().items():
        lines.append(f"  {k}: {v}")
    lines.append("(paper: 16 cores 4-way SMT 1.6 GHz, 204.8 GFLOP/s, 185 GB/s L2, 28 GB/s DRAM)")
    return "\n".join(lines)


def test_tables_1_and_2(benchmark):
    text = benchmark(render)
    write_result("table1_2_machines", text)
    assert "Sequoia" in text and "204.8" in text
