"""Paper Section 7's AMR counter-argument, quantified on real fields.

"Thresholds considered in wavelet- and AMR-based simulation are usually
set so as to keep the L-inf (or L1) errors below 1e-4 - 1e-7.  Here,
these thresholds lead to an unprofitable compression rate of 1.15:1 at
best, by considering independently each scalar field, and 1.02:1 by
considering the flow quantities as one vector field."

The bench runs the AMR-profitability analysis (block-wise wavelet detail
indicators) on a real collapse field and checks both paper claims: rates
near 1 at solver accuracy, and vector-field rates below per-scalar rates.
"""

import pytest
from _common import write_result

from repro.cluster.driver import Simulation
from repro.compression.amr_analysis import amr_profitability
from repro.perf.report import format_table
from repro.sim.cloud import generate_cloud
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse


@pytest.fixture(scope="module")
def collapse_field():
    bubbles = generate_cloud(
        4, (0.5, 0.5, 0.5), 0.38, rng=7, r_min=0.07, r_max=0.11
    )
    cfg = SimulationConfig(cells=32, block_size=16, max_steps=30,
                           diag_interval=0)
    ic = cloud_collapse(bubbles, p_liquid=1000.0, smoothing=1.0 / 32)
    return Simulation(cfg, ic).run().final_field


def test_amr_comparison(benchmark, collapse_field):
    profiles = benchmark.pedantic(
        amr_profitability,
        args=(collapse_field,),
        kwargs={"thresholds": (1e-2, 1e-4, 1e-5, 1e-6), "block_size": 16},
        rounds=1, iterations=1,
    )
    rows = [
        {
            "threshold": f"{p.threshold:.0e}",
            "best-scalar coarsenable [%]": 100 * p.best_scalar_coarsenable,
            "vector coarsenable [%]": 100 * p.vector_coarsenable,
            "best-scalar rate": p.best_scalar_rate,
            "vector rate": p.vector_rate,
        }
        for p in profiles
    ]
    text = format_table(
        rows,
        "AMR profitability on a real collapse field\n"
        "(paper at solver accuracy: scalar 1.15:1 at best, vector 1.02:1)",
    )
    write_result("amr_comparison", text)

    by_t = {p.threshold: p for p in profiles}
    # At solver-accuracy thresholds AMR gains essentially nothing.
    assert by_t[1e-5].vector_rate < 1.25
    assert by_t[1e-6].vector_rate < 1.1
    # The vector-field constraint is always at least as restrictive.
    for p in profiles:
        assert p.vector_rate <= p.best_scalar_rate + 1e-9
    # Visualization-grade thresholds (the compression scheme's regime)
    # are far more profitable -- the design point of Section 5.
    assert by_t[1e-2].best_scalar_rate > by_t[1e-6].best_scalar_rate
