"""Paper Table 3: potential gain due to data reordering.

Two parts:

* the traffic *model* (FLOP/B naive vs reordered per kernel) -- the table
  the paper prints;
* a *measured* Python analogue: the byte throughput of naive strided
  stencil gathers over a large row-major AoS field vs contiguous
  block-reordered SoA sweeps.  The measured ratio demonstrates the same
  phenomenon the model quantifies (reordering converts line-granular
  scattered traffic into streaming traffic).
"""

import numpy as np
from _common import write_result

from repro.perf.report import format_table
from repro.perf.traffic import table3

PAPER = {"RHS": (1.4, 21.0, 15.0), "DT": (1.3, 5.1, 3.9), "UP": (0.2, 0.2, 1.0)}


def render_model() -> str:
    rows = []
    for est in table3():
        paper = PAPER[est.kernel]
        rows.append(
            {
                "kernel": est.kernel,
                "naive FLOP/B (model)": est.naive_oi,
                "naive (paper)": paper[0],
                "reordered FLOP/B (model)": est.reordered_oi,
                "reordered (paper)": paper[1],
                "factor (model)": est.gain,
                "factor (paper)": paper[2],
            }
        )
    return format_table(rows, "Table 3: operational-intensity gain of data reordering")


def measured_naive_vs_reordered(n=20):
    """Per-cell stencil evaluation vs the reordered directional sweep.

    In this reproduction the "naive" computation is exactly what the paper
    calls naive -- evaluating the stencil one cell at a time over the big
    array -- and the "reordered" computation is the blocked, vectorized
    sweep the core layer actually uses.  (In Python the gap also contains
    the interpreter overhead, which is the repro-band's point: this is
    the measurement that shows *why* the reordering design exists.)
    """
    import time

    field = np.random.default_rng(0).normal(size=(n, n, n))

    t0 = time.perf_counter()
    acc_naive = np.zeros((n - 6, n, n))
    for i in range(n - 6):
        for j in range(n):
            for k in range(n):
                s = 0.0
                for tap in range(6):
                    s += field[i + tap, j, k]
                acc_naive[i, j, k] = s
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    acc_vec = np.zeros((n - 6, n, n))
    for tap in range(6):
        acc_vec += field[tap : n - 6 + tap]
    t_reord = time.perf_counter() - t0

    assert np.allclose(acc_naive, acc_vec)
    return t_naive, t_reord


def test_table3_model(benchmark):
    text = benchmark(render_model)
    est = {e.kernel: e for e in table3()}
    assert est["RHS"].gain > 10.0  # the headline 15x
    assert est["UP"].gain == 1.0
    write_result("table3_reordering_model", text)


def test_table3_measured_reordering_gain(benchmark):
    t_naive, t_reord = benchmark.pedantic(
        measured_naive_vs_reordered, rounds=1, iterations=1
    )
    gain = t_naive / t_reord
    text = (
        "Measured (Python) analogue of Table 3's reordering gain:\n"
        f"  cell-by-cell 6-tap stencil : {t_naive * 1e3:8.1f} ms\n"
        f"  reordered vectorized sweep : {t_reord * 1e3:8.1f} ms\n"
        f"  speedup                    : {gain:8.1f}x\n"
        "(paper's RHS OI gain from reordering is 15x on BGQ; in Python the\n"
        " same restructuring additionally removes interpreter overhead)"
    )
    write_result("table3_reordering_measured", text)
    assert gain > 5.0
