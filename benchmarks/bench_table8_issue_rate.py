"""Paper Table 8: issue-rate upper bounds of the RHS substages.

Model rows reproduce the paper's table exactly (the stage weights and
FLOP/instruction densities are paper inputs; the bound formula is the
model).  The measured section times the Python substages of one RHS
evaluation and checks the paper's dominant claim: WENO takes the vast
majority of the RHS cost.
"""

import time

import numpy as np
from _common import write_result

from repro.perf.issue import rhs_issue_bounds
from repro.perf.report import format_table
from repro.physics.eos import conserved_to_primitive
from repro.physics.riemann import hlle_flux
from repro.physics.state import aos_to_soa
from repro.physics.weno import weno5

PAPER_PEAK = {"CONV": 55, "WENO": 78, "HLLE": 65, "SUM": 61, "BACK": 64, "ALL": 76}


def render_model() -> str:
    rows = []
    for b in rhs_issue_bounds():
        rows.append(
            {
                "stage": b.stage,
                "weight": b.weight,
                "FLOP/instr": f"{b.flop_per_instr:.2f} x {b.simd_width}",
                "peak [%] (model)": 100 * b.peak_fraction,
                "peak [%] (paper)": PAPER_PEAK[b.stage],
            }
        )
    return format_table(rows, "Table 8: issue-rate upper bounds (model vs paper)")


def measure_stage_split(n=48, reps=3):
    """Wall-time split of CONV / WENO / HLLE on one directional sweep."""
    rng = np.random.default_rng(0)
    aos = np.zeros((n, n, n, 7))
    aos[..., 0] = 1000 * (1 + 0.02 * rng.normal(size=(n, n, n)))
    aos[..., 4] = 1300.0
    aos[..., 5] = 0.179
    aos[..., 6] = 1212.0
    U = aos_to_soa(aos)

    t = {}
    t0 = time.perf_counter()
    for _ in range(reps):
        W = conserved_to_primitive(U)
    t["CONV"] = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        Wm, Wp = weno5(W)
    t["WENO"] = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        flux, _ = hlle_flux(Wm, Wp, 0)
    t["HLLE"] = (time.perf_counter() - t0) / reps

    t0 = time.perf_counter()
    for _ in range(reps):
        (flux[..., 1:] - flux[..., :-1]) * (1.0 / 0.01)
    t["SUM"] = (time.perf_counter() - t0) / reps
    return t


def test_table8_model(benchmark):
    text = benchmark(render_model)
    write_result("table8_issue_model", text)
    rows = {b.stage: b for b in rhs_issue_bounds()}
    assert rows["ALL"].peak_fraction < 0.80  # "impossible to achieve higher"


def test_table8_measured_stage_weights(benchmark):
    t = benchmark.pedantic(measure_stage_split, rounds=1, iterations=1)
    total = sum(t.values())
    rows = [
        {"stage": k, "share [%] (measured)": 100 * v / total,
         "paper instr share [%]": {"CONV": 1, "WENO": 83, "HLLE": 13, "SUM": 2}[k]}
        for k, v in t.items()
    ]
    text = format_table(
        rows, "Measured Python RHS substage time split (one sweep)"
    )
    write_result("table8_stage_split_measured", text)
    # WENO must dominate, as in the paper's instruction mix.
    assert t["WENO"] == max(t.values())
    assert t["WENO"] / total > 0.5
