"""The paper's closing conjecture, run as an experiment.

"At a later stage, the highest pressure is recorded over the solid wall
...  We consider that this pressure is correlated with the volume
fraction of the bubbles, a subject of our ongoing investigations."
(paper Section 7)

The bench sweeps the cloud's vapor volume fraction (via bubble count at a
fixed cloud region near the wall) and measures the peak wall-pressure
amplification of each collapse.  Shape criterion: the amplification is
non-decreasing in the vapor fraction -- denser clouds focus collapses
more strongly -- confirming the correlation the authors conjectured.
"""

import numpy as np
import pytest
from _common import write_result

from repro.perf.report import format_table
from repro.sim.study import cloud_fraction_sweep

P_LIQUID = 1000.0


@pytest.fixture(scope="module")
def sweep():
    return cloud_fraction_sweep(
        bubble_counts=(1, 3, 6), cells=24, p_liquid=P_LIQUID,
        t_end_factor=1.6,
    )


def test_cloud_fraction_study(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        {
            "cloud": p.label,
            "vapor fraction": p.parameters["vapor_fraction"],
            "beta": p.parameters["beta"],
            "wall p / p_inf": p.peak_wall_pressure / P_LIQUID,
            "flow p / p_inf": p.peak_flow_pressure / P_LIQUID,
            "KE peak": p.ke_peak,
        }
        for p in sweep.points
    ]
    text = format_table(
        rows,
        "Wall-pressure amplification vs cloud vapor fraction\n"
        "(the Section 7 conjecture: wall pressure correlates with the\n"
        "bubble volume fraction)",
        floatfmt="{:.3f}",
    )
    text += "\n\nCSV:\n" + sweep.to_csv()
    write_result("cloud_fraction_study", text)

    wall = [p.peak_wall_pressure for p in sweep.points]
    frac = [p.parameters["vapor_fraction"] for p in sweep.points]
    assert frac == sorted(frac)
    # The conjectured correlation: denser clouds load the wall harder.
    assert wall[-1] > wall[0]
    # And every collapse amplifies above ambient.
    assert min(wall) > P_LIQUID
