"""Paper Table 10: performance portability to the CSCS Cray platforms.

Pure model reproduction: the QPX->SSE port exploits half the nominal SIMD
width, which together with the issue bound explains the measured 40 %/37 %
RHS fractions on Piz Daint / Monte Rosa.
"""

from _common import write_result

from repro.perf.report import format_table
from repro.perf.scaling import table10

PAPER = {
    "Cray XC30 (Piz Daint)": {"RHS": (269, 40), "DT": (118, 18), "UP": (13, 2)},
    "Cray XE6 (Monte Rosa)": {"RHS": (201, 37), "DT": (86, 16), "UP": (10, 2)},
}


def render() -> str:
    rows = []
    for row in table10():
        m = row["machine"]
        rows.append(
            {
                "machine": m,
                "RHS [GF/s]": row["RHS [GFLOP/s]"],
                "RHS [%]": row["RHS [%]"],
                "DT [GF/s]": row["DT [GFLOP/s]"],
                "UP [GF/s]": row["UP [GFLOP/s]"],
                "paper RHS/DT/UP [GF/s]": "{}/{}/{}".format(
                    PAPER[m]["RHS"][0], PAPER[m]["DT"][0], PAPER[m]["UP"][0]
                ),
            }
        )
    return format_table(rows, "Table 10: CSCS platforms (model vs paper)")


def test_table10(benchmark):
    text = benchmark(render)
    write_result("table10_cscs", text)
    rows = {r["machine"]: r for r in table10()}
    pd = rows["Cray XC30 (Piz Daint)"]
    mr = rows["Cray XE6 (Monte Rosa)"]
    # Shape: Piz Daint > Monte Rosa in absolute GFLOP/s; both ~40 % RHS.
    assert pd["RHS [GFLOP/s]"] > mr["RHS [GFLOP/s]"]
    assert 30 < pd["RHS [%]"] < 45
