"""The reproduction scorecard: every headline number in one table.

Companion to EXPERIMENTS.md -- regenerates the paper-vs-model comparison
for all published performance quantities and asserts each sits inside its
tolerance window.
"""

from _common import write_result

from repro.perf.scorecard import format_scorecard, reproduction_scorecard


def test_scorecard(benchmark):
    text = benchmark(format_scorecard)
    write_result("scorecard", text)
    failures = [
        r for r in reproduction_scorecard() if not r.within_tolerance
    ]
    assert not failures, [r.quantity for r in failures]
