"""Numerical-scheme ablations: the choices behind paper Section 3/5.

* WENO5 vs WENO3: the paper opts for 5th-order space "to decrease the
  total number of steps" and better capture sharp gradients -- measured
  here as accuracy at equal resolution on a Sod tube;
* HLLE vs HLLC: the paper ships HLLE; HLLC resolves material contacts
  exactly at a few percent more flux arithmetic -- measured as contact
  smearing width;
* cost: wall time per RHS evaluation for each variant.
"""

import time

import numpy as np
import pytest
from _common import write_result

from repro.cluster.driver import Simulation
from repro.perf.report import format_table
from repro.physics.eos import Material
from repro.physics.exact_riemann import RiemannSide, sample, solve
from repro.sim.config import SimulationConfig
from repro.sim.ic import shock_tube

IDEAL_GAS = Material(name="gas", gamma=1.4, pc=0.0)


def run_sod(order: int, solver: str, cells_x: int = 96):
    ic = shock_tube(
        {"rho": 1.0, "p": 1.0}, {"rho": 0.125, "p": 0.1},
        x0=0.5, axis=2, material_left=IDEAL_GAS, material_right=IDEAL_GAS,
    )
    cfg = SimulationConfig(
        cells=(8, 8, cells_x), block_size=8, extent=1.0,
        max_steps=10_000, t_end=0.2, diag_interval=0,
        weno_order=order, riemann_solver=solver,
    )
    t0 = time.perf_counter()
    res = Simulation(cfg, ic).run()
    elapsed = time.perf_counter() - t0
    rho = res.final_field[4, 4, :, 0].astype(np.float64)
    x = (np.arange(cells_x) + 0.5) / cells_x
    sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
    exact, _, _ = sample(sol, (x - 0.5) / 0.2)
    l1 = float(np.abs(rho - exact).mean())
    # Contact smearing: cells needed to cross 10-90 % of the contact jump.
    lo = sol.rho_star_r + 0.1 * (sol.rho_star_l - sol.rho_star_r)
    hi = sol.rho_star_r + 0.9 * (sol.rho_star_l - sol.rho_star_r)
    in_transition = (rho > lo) & (rho < hi) & (x > 0.55) & (x < 0.85)
    width = int(in_transition.sum())
    return {"L1 error": l1, "contact width [cells]": width,
            "wall [s]": elapsed}


@pytest.fixture(scope="module")
def sod_matrix():
    out = {}
    for order in (3, 5):
        for solver in ("hlle", "hllc"):
            out[(order, solver)] = run_sod(order, solver)
    return out


def test_numerics_ablation(benchmark, sod_matrix):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        {"scheme": f"WENO{order}/{solver.upper()}", **vals}
        for (order, solver), vals in sod_matrix.items()
    ]
    text = format_table(
        rows,
        "Numerics ablation on the Sod tube, 96 cells\n"
        "(paper ships WENO5/HLLE; HLLC sharpens the contact, WENO5 cuts\n"
        "the smooth-region error)",
        floatfmt="{:.4f}",
    )
    write_result("numerics_ablation", text)

    m = sod_matrix
    # WENO5 beats WENO3 at equal resolution and flux.
    assert m[(5, "hlle")]["L1 error"] < m[(3, "hlle")]["L1 error"]
    # HLLC's contact is at least as sharp as HLLE's.
    assert (
        m[(5, "hllc")]["contact width [cells]"]
        <= m[(5, "hlle")]["contact width [cells]"]
    )


def test_rhs_cost_by_scheme(benchmark):
    """Per-evaluation kernel cost of the four scheme variants."""
    from repro.core.kernels import rhs_kernel

    rng = np.random.default_rng(0)
    pad = np.zeros((22, 22, 22, 7), dtype=np.float32)
    pad[..., 0] = 1000.0 * (1 + 0.01 * rng.normal(size=pad.shape[:3]))
    pad[..., 4] = 1300.0
    pad[..., 5] = 0.179
    pad[..., 6] = 1212.0

    def measure():
        rows = []
        for order in (3, 5):
            for solver in ("hlle", "hllc"):
                rhs_kernel(pad, 0.05, order=order, solver=solver)  # warm
                t0 = time.perf_counter()
                for _ in range(5):
                    rhs_kernel(pad, 0.05, order=order, solver=solver)
                rows.append(
                    {
                        "scheme": f"WENO{order}/{solver.upper()}",
                        "ms/eval": (time.perf_counter() - t0) / 5 * 1e3,
                    }
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(rows, "RHS kernel cost by scheme (16^3 block)",
                        floatfmt="{:.2f}")
    write_result("numerics_cost", text)
    by = {r["scheme"]: r["ms/eval"] for r in rows}
    # WENO3 is the cheaper reconstruction.
    assert by["WENO3/HLLE"] < by["WENO5/HLLE"]
