"""Zerotree coding vs zlib deflate (paper Section 5's encoder discussion).

"The significant detail coefficients are further compressed by undergoing
a lossless encoding with an external coder, here the ZLIB library.
Alternatively efficient lossy encoders can also be used such as the
zerotree coding scheme and the SPIHT library."

The bench compares the two encoders on identical coefficient data (a real
collapse pressure field): payload size at equal error budget, and
encoding cost -- the trade-off the paper's sentence alludes to.
"""

import time
import zlib

import numpy as np
import pytest
from _common import collapse_fields, write_result

from repro.compression import zerotree as zt
from repro.compression.decimation import decimate
from repro.compression.wavelet import fwt3d, max_levels
from repro.perf.report import format_table


@pytest.fixture(scope="module")
def coefficient_blocks():
    p, gamma = collapse_fields(cells=32)
    blocks = []
    bs = 16
    levels = max_levels(bs)
    for field in (p / np.abs(p).max(), gamma):
        for bz in range(2):
            for by in range(2):
                for bx in range(2):
                    blk = field[
                        bz * bs:(bz + 1) * bs,
                        by * bs:(by + 1) * bs,
                        bx * bs:(bx + 1) * bs,
                    ].astype(np.float64)
                    blocks.append(fwt3d(blk, levels))
    return blocks, levels


def compare(blocks, levels, eps=1e-3):
    zt_bytes = zt_time = 0
    zl_bytes = zl_time = 0
    for c in blocks:
        t0 = time.perf_counter()
        payload, _ = zt.encode(c, levels, t_stop=eps)
        zt_time += time.perf_counter() - t0
        zt_bytes += len(payload)

        c2 = c.copy()
        t0 = time.perf_counter()
        decimate(c2, levels, eps, guaranteed=False)
        zl = zlib.compress(c2.astype(np.float32).tobytes(), 6)
        zl_time += time.perf_counter() - t0
        zl_bytes += len(zl)
    raw = sum(c.size for c in blocks) * 4
    return {
        "zerotree": {"bytes": zt_bytes, "seconds": zt_time,
                     "rate": raw / zt_bytes},
        "zlib": {"bytes": zl_bytes, "seconds": zl_time,
                 "rate": raw / zl_bytes},
    }


def test_zerotree_vs_zlib(benchmark, coefficient_blocks):
    blocks, levels = coefficient_blocks
    result = benchmark.pedantic(
        compare, args=(blocks, levels), rounds=1, iterations=1
    )
    rows = [
        {"encoder": name, "payload [kB]": r["bytes"] / 1e3,
         "rate": r["rate"], "encode [ms]": r["seconds"] * 1e3}
        for name, r in result.items()
    ]
    text = format_table(
        rows,
        "Zerotree vs zlib at equal error budget (eps 1e-3, real collapse\n"
        "coefficients; the paper ships zlib for its speed, citing zerotree\n"
        "as the higher-ratio alternative)",
    )
    write_result("zerotree_vs_zlib", text)
    # Zerotree achieves at least comparable compression...
    assert result["zerotree"]["rate"] > 0.8 * result["zlib"]["rate"]
    # ...while zlib is the cheaper encoder (the paper's engineering pick).
    assert result["zlib"]["seconds"] < result["zerotree"]["seconds"]
