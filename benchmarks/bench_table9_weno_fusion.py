"""Paper Table 9: micro-fused vs baseline WENO kernel.

The paper reports 7.9 -> 9.2 GFLOP/s (1.2x rate, 1.3x cycles) from
micro-fusing the WENO stage.  Here both the *model* reproduction of that
row and a *measured* comparison of our two genuine implementations
(allocating baseline vs workspace-reusing fused NumPy kernel) are
produced -- the same engineering idea, observable in Python as reduced
allocation/memory traffic.
"""

import time

import numpy as np
import pytest
from _common import write_result

from repro.perf.scaling import table9
from repro.physics.weno import Weno5Workspace, weno5, weno5_fused


def render_model() -> str:
    t = table9()
    return (
        "Table 9: WENO kernel micro-fusion (model vs paper)\n"
        f"  baseline: {t['baseline_gflops']:.2f} GFLOP/s "
        f"({100 * t['baseline_peak_frac']:.0f} % peak)   [paper: 7.9 / 62 %]\n"
        f"  fused   : {t['fused_gflops']:.2f} GFLOP/s "
        f"({100 * t['fused_peak_frac']:.0f} % peak)   [paper: 9.2 / 72 %]\n"
        f"  GFLOP/s improvement: {t['gflops_improvement']:.2f}x  [paper: 1.2x]\n"
        f"  time improvement   : {t['time_improvement']:.2f}x  [paper: 1.3x]"
    )


@pytest.fixture(scope="module")
def weno_input():
    rng = np.random.default_rng(3)
    # 7 quantities x four blocks' worth of x-sweep lines (where the
    # allocating baseline's temporaries clearly exceed cache).
    return rng.normal(size=(7, 4 * 32 * 32, 38))


def test_table9_model(benchmark):
    text = benchmark(render_model)
    write_result("table9_weno_fusion_model", text)


def test_table9_baseline_weno(benchmark, weno_input):
    benchmark(weno5, weno_input)


def test_table9_fused_weno(benchmark, weno_input):
    nfaces = weno_input.shape[-1] - 5
    ws = Weno5Workspace(weno_input.shape[:-1] + (nfaces,))
    out_m = np.empty(weno_input.shape[:-1] + (nfaces,))
    out_p = np.empty_like(out_m)
    benchmark(weno5_fused, weno_input, ws, out_m, out_p)


def test_table9_measured_comparison(benchmark, weno_input):
    """Direct timing comparison written to the results file."""
    nfaces = weno_input.shape[-1] - 5
    ws = Weno5Workspace(weno_input.shape[:-1] + (nfaces,))
    out_m = np.empty(weno_input.shape[:-1] + (nfaces,))
    out_p = np.empty_like(out_m)

    def compare():
        reps = 10
        weno5(weno_input)  # warm
        t0 = time.perf_counter()
        for _ in range(reps):
            weno5(weno_input)
        t_base = (time.perf_counter() - t0) / reps

        weno5_fused(weno_input, ws, out_m, out_p)
        t0 = time.perf_counter()
        for _ in range(reps):
            weno5_fused(weno_input, ws, out_m, out_p)
        t_fused = (time.perf_counter() - t0) / reps
        return t_base, t_fused

    t_base, t_fused = benchmark.pedantic(compare, rounds=1, iterations=1)

    gain = t_base / t_fused
    text = (
        "Measured Python WENO fusion gain:\n"
        f"  baseline (allocating): {t_base * 1e3:7.2f} ms\n"
        f"  fused (workspace)    : {t_fused * 1e3:7.2f} ms\n"
        f"  time improvement     : {gain:7.2f}x   [paper: 1.3x]"
    )
    write_result("table9_weno_fusion_measured", text)
    # The fused kernel must win, as in the paper (paper: 1.3x).
    assert gain > 1.05
