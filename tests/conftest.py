"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physics.eos import LIQUID, VAPOR, total_energy
from repro.physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW

#: The suite-wide base seed (the paper's submission date).
SEED = 20130717


def make_rng(seed=SEED):
    """The suite's single deterministic RNG constructor.

    All tests obtain generators through this helper (or the ``rng``
    fixture built on it) so seeding policy lives in one place;
    parametrized sweeps pass their per-case seed explicitly.
    """
    return np.random.default_rng(seed)


@pytest.fixture
def rng():
    """Function-scoped deterministic generator with the suite base seed."""
    return make_rng()


@pytest.fixture
def resource_ledger():
    """Leak sanitizer around one test: segments/processes/threads.

    Snapshots the ambient resource population before the test and, on
    the way out, asserts nothing new survived (with a grace window for
    ordinary wind-down).  Multi-process suites opt in with an autouse
    wrapper -- see ``tests/test_service_chaos.py``.
    """
    from repro.analysis.syscheck import ResourceLedger

    ledger = ResourceLedger()
    ledger.begin()
    yield ledger
    ledger.assert_clean(grace=10.0)


def make_uniform_aos(shape, rho=1000.0, u=(0.0, 0.0, 0.0), p=100.0,
                     material=LIQUID, dtype=np.float64):
    """Uniform AoS state array of the given spatial shape.

    ``u`` is (w, v, u) = (z, y, x) velocity components.
    """
    out = np.empty(tuple(shape) + (NQ,), dtype=dtype)
    wz, vy, ux = u
    out[..., RHO] = rho
    out[..., RHOU] = rho * ux
    out[..., RHOV] = rho * vy
    out[..., RHOW] = rho * wz
    out[..., ENERGY] = total_energy(rho, ux, vy, wz, p, material.G, material.P)
    out[..., GAMMA] = material.G
    out[..., PI] = material.P
    return out


def make_smooth_aos(shape, rng, amplitude=0.05, dtype=np.float64):
    """A smooth, physically admissible perturbed liquid state.

    Density/pressure/velocity vary smoothly (low-order Fourier modes) so
    kernels see non-trivial but well-conditioned data.
    """
    grids = np.meshgrid(
        *(np.linspace(0.0, 2.0 * np.pi, n, endpoint=False) for n in shape),
        indexing="ij",
    )
    phase = rng.uniform(0, 2 * np.pi, size=6)
    z, y, x = grids
    bump = (
        np.sin(z + phase[0]) * np.cos(y + phase[1])
        + 0.5 * np.sin(x + phase[2]) * np.cos(z + phase[3])
        + 0.25 * np.sin(y + phase[4]) * np.sin(x + phase[5])
    )
    rho = 1000.0 * (1.0 + amplitude * bump)
    p = 100.0 * (1.0 + amplitude * bump)
    u = 5.0 * amplitude * np.sin(x + phase[0])
    v = 5.0 * amplitude * np.cos(y + phase[1])
    w = 5.0 * amplitude * np.sin(z + phase[2])
    out = np.empty(tuple(shape) + (NQ,), dtype=dtype)
    out[..., RHO] = rho
    out[..., RHOU] = rho * u
    out[..., RHOV] = rho * v
    out[..., RHOW] = rho * w
    out[..., ENERGY] = total_energy(rho, u, v, w, p, LIQUID.G, LIQUID.P)
    out[..., GAMMA] = LIQUID.G
    out[..., PI] = LIQUID.P
    return out


def make_primitive_soa(rho, u, v, w, p, mat=LIQUID, shape=()):
    """Primitive SoA state ``(NQ,) + shape`` for the Riemann-solver API.

    The Riemann fluxes take primitives in SoA layout with pressure in the
    ENERGY slot (rho, u, v, w, p, Gamma, Pi).
    """
    W = np.empty((NQ,) + shape)
    W[RHO] = rho
    W[RHOU] = u
    W[RHOV] = v
    W[RHOW] = w
    W[ENERGY] = p
    W[GAMMA] = mat.G
    W[PI] = mat.P
    return W


def exact_flux(W, normal):
    """Analytic Euler flux of one primitive SoA state (consistency ref)."""
    rho, u, v, w, p = W[RHO], W[RHOU], W[RHOV], W[RHOW], W[ENERGY]
    un = W[RHOU + normal]
    E = total_energy(rho, u, v, w, p, W[GAMMA], W[PI])
    F = np.empty_like(W)
    F[RHO] = rho * un
    F[RHOU] = rho * un * u
    F[RHOV] = rho * un * v
    F[RHOW] = rho * un * w
    F[RHOU + normal] += p
    F[ENERGY] = (E + p) * un
    F[GAMMA] = W[GAMMA] * un
    F[PI] = W[PI] * un
    return F


def make_interface_aos(shape, axis=0, dtype=np.float64, u_n=10.0, p0=100.0):
    """A sharp liquid/vapor material interface moving at uniform (p, u)."""
    out = np.empty(tuple(shape) + (NQ,), dtype=dtype)
    coords = np.arange(shape[axis])
    mask_shape = [1, 1, 1]
    mask_shape[axis] = shape[axis]
    is_vapor = (coords >= shape[axis] // 2).reshape(mask_shape)
    is_vapor = np.broadcast_to(is_vapor, shape)
    rho = np.where(is_vapor, 1.0, 1000.0)
    G = np.where(is_vapor, VAPOR.G, LIQUID.G)
    P = np.where(is_vapor, VAPOR.P, LIQUID.P)
    vel = [0.0, 0.0, 0.0]
    vel[axis] = u_n
    w, v, u = vel if axis == 0 else (0, 0, 0)
    if axis == 1:
        w, v, u = 0.0, u_n, 0.0
    elif axis == 2:
        w, v, u = 0.0, 0.0, u_n
    elif axis == 0:
        w, v, u = u_n, 0.0, 0.0
    out[..., RHO] = rho
    out[..., RHOU] = rho * u
    out[..., RHOV] = rho * v
    out[..., RHOW] = rho * w
    out[..., ENERGY] = total_energy(rho, u, v, w, p0, G, P)
    out[..., GAMMA] = G
    out[..., PI] = P
    return out
