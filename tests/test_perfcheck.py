"""Tests of ``kernel-check`` (repro.analysis.perfcheck, CP-series rules)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main as cli_main
from repro.analysis.perfcheck import (
    HOT_KERNELS,
    KernelSpec,
    build_kernel_manifest,
    build_program,
    check_program,
    check_sources,
    registered_perf_rules,
    write_kernel_manifest,
)

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src" / "repro")

FIXTURE_PATH = "src/repro/physics/fixture.py"


def spec(name, module="physics/fixture.py", backends=("numpy", "numba"),
         model_key=None):
    """A one-kernel spec tuple for fixture programs."""
    return (KernelSpec(name, module, tuple(backends), "test contract",
                       model_key),)


def perf(text, name, **kw):
    """perfcheck a fixture source declaring ``name`` as the only kernel."""
    return check_sources({FIXTURE_PATH: textwrap.dedent(text)},
                         specs=spec(name, **kw))


def rules_of(report):
    return [v.rule for v in report.violations]


# -- registry ------------------------------------------------------------


def test_registry_has_the_six_cp_rules():
    ids = [cls.rule_id for cls in registered_perf_rules()]
    assert ids == [f"CP00{i}" for i in range(1, 7)]
    for cls in registered_perf_rules():
        assert cls.name and cls.description


def test_list_rules_includes_perf_catalogue(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 7):
        assert f"CP00{i}" in out


# -- CP001 silent promotion ----------------------------------------------


def test_cp001_flags_provable_f32_f64_mix():
    report = perf(
        """
        import numpy as np

        def kmix(a):
            x = np.zeros((4,), dtype=np.float32)
            y = np.zeros((4,), dtype=np.float64)
            return x + y
        """,
        "kmix",
    )
    assert "CP001" in rules_of(report)


def test_cp001_clean_when_dtypes_agree():
    report = perf(
        """
        import numpy as np

        def kmix(a):
            x = np.zeros((4,), dtype=np.float64)
            y = np.zeros((4,), dtype=COMPUTE_DTYPE)
            return x + y
        """,
        "kmix",
    )
    assert "CP001" not in rules_of(report)


# -- CP002 strong scalars ------------------------------------------------


def test_cp002_flags_dtypeless_scalar_wrap():
    report = perf(
        """
        import numpy as np

        def kscal(a):
            half = np.asarray(0.5)
            return a * half
        """,
        "kscal",
    )
    assert "CP002" in rules_of(report)


def test_cp002_flags_np_float64_wrap():
    report = perf(
        """
        import numpy as np

        def kscal(a, x):
            return a * np.float64(x)
        """,
        "kscal",
    )
    assert "CP002" in rules_of(report)


def test_cp002_clean_with_bare_scalar_or_pinned_dtype():
    report = perf(
        """
        import numpy as np

        def kscal(a):
            half = np.asarray(0.5, dtype=np.float32)
            return a * half * 2.0
        """,
        "kscal",
    )
    assert "CP002" not in rules_of(report)


# -- CP003 hidden temporaries --------------------------------------------

_CP003_HOT = """
    import numpy as np

    def ktemp(a, b):
        t = (a + b) * (a - b) + (a * b) / (a + 1.0)
        u = (t + a) * (t - b) + (t * t) / (b + 1.0)
        v = (u + t) * (u - a) + (u * b) / (t + 1.0)
        return v
"""


def test_cp003_flags_undisciplined_allocation_chain():
    report = perf(_CP003_HOT, "ktemp")
    assert "CP003" in rules_of(report)


def test_cp003_clean_with_out_discipline():
    report = perf(
        """
        import numpy as np

        def ktemp(a, b, ws):
            t0, t1 = ws
            np.add(a, b, out=t0)
            np.subtract(a, b, out=t1)
            np.multiply(t0, t1, out=t0)
            np.multiply(a, b, out=t1)
            np.add(t0, t1, out=t0)
            np.divide(t0, b, out=t0)
            np.add(t0, a, out=t0)
            np.multiply(t0, t0, out=t1)
            np.add(t1, a, out=t0)
            np.multiply(t0, b, out=t1)
            np.add(t0, t1, out=t0)
            np.subtract(t0, a, out=t0)
            return t0
        """,
        "ktemp",
    )
    assert "CP003" not in rules_of(report)


# -- CP004 compiled subset -----------------------------------------------


def test_cp004_flags_try_except_in_numba_kernel():
    report = perf(
        """
        def ktry(v):
            try:
                return v
            except ValueError:
                return v
        """,
        "ktry",
    )
    assert "CP004" in rules_of(report)


def test_cp004_flags_dict_dispatch_and_nested_def():
    report = perf(
        """
        TABLE = {"a": 1, "b": 2}

        def kdisp(x, key):
            def inner(y):
                return y
            fn = TABLE[key]
            return inner(x) + fn
        """,
        "kdisp",
    )
    messages = [v.message for v in report.violations if v.rule == "CP004"]
    assert any("dict-of-functions" in m for m in messages)
    assert any("nested function" in m for m in messages)


def test_cp004_exempts_numpy_only_kernels():
    report = perf(
        """
        def ktry(v):
            try:
                return v
            except ValueError:
                return v
        """,
        "ktry",
        backends=("numpy",),
    )
    assert rules_of(report) == []


# -- CP005 fancy indexing ------------------------------------------------


def test_cp005_flags_index_arrays_and_masks():
    report = perf(
        """
        import numpy as np

        def kgather(a):
            idx = np.argsort(a)
            top = a[idx]
            pos = a[a > 0.0]
            return top, pos
        """,
        "kgather",
    )
    assert rules_of(report).count("CP005") == 2


def test_cp005_clean_with_slices_and_integers():
    report = perf(
        """
        def kslice(a, n):
            return a[..., 1 : n + 1] + a[0]
        """,
        "kslice",
    )
    assert "CP005" not in rules_of(report)


# -- CP006 intensity divergence ------------------------------------------


def test_cp006_flags_counted_vs_modeled_divergence():
    # Counted: 5 FLOP / 2 operands = 0.3125 FLOP/B vs the "up" table
    # entry at 0.125 -- a 2.5x divergence.
    report = perf(
        """
        def kup(a, b):
            return a[0] * a[0] * a[0] * a[0] * a[0] * a[0]
        """,
        "kup",
        model_key="up",
    )
    assert "CP006" in rules_of(report)


def test_cp006_clean_within_tolerance():
    # Counted: 2 FLOP / 3 operands = 0.083 FLOP/B vs 0.125 -- 1.5x.
    report = perf(
        """
        def kup(a, b):
            return a[0] * b[0] + 1.0
        """,
        "kup",
        model_key="up",
    )
    assert "CP006" not in rules_of(report)


def test_cp006_skipped_without_model_key():
    report = perf(
        """
        def kup(a, b):
            return a[0] * a[0] * a[0] * a[0] * a[0] * a[0]
        """,
        "kup",
    )
    assert "CP006" not in rules_of(report)


# -- pragmas -------------------------------------------------------------


def test_trailing_pragma_disables_rule_for_the_statement():
    text = _CP003_HOT.replace(
        "def ktemp(a, b):", "def ktemp(a, b):  # lint: disable=CP003"
    )
    assert "CP003" not in rules_of(perf(text, "ktemp"))


def test_pragma_spans_multiline_statements():
    clean = perf(
        """
        import numpy as np

        def kmix(a):
            x = np.zeros((4,), dtype=np.float32)
            y = np.zeros((4,), dtype=np.float64)
            z = (  # lint: disable=CP001
                x
                + y
            )
            return z
        """,
        "kmix",
    )
    assert "CP001" not in rules_of(clean)
    # Without the pragma the same multi-line statement is flagged.
    dirty = perf(
        """
        import numpy as np

        def kmix(a):
            x = np.zeros((4,), dtype=np.float32)
            y = np.zeros((4,), dtype=np.float64)
            z = (
                x
                + y
            )
            return z
        """,
        "kmix",
    )
    assert "CP001" in rules_of(dirty)


def test_standalone_pragma_disables_rule_file_wide():
    text = "# lint: disable=CP003\n" + textwrap.dedent(_CP003_HOT)
    report = check_sources({FIXTURE_PATH: text}, specs=spec("ktemp"))
    assert "CP003" not in rules_of(report)


# -- manifest ------------------------------------------------------------

_MANIFEST_SRC = """
    import numpy as np

    def helper(a, b):
        return np.sqrt(a * a + b * b)

    def kfix(x, y, out=None):
        return helper(x, y)
"""


def _manifest_fixture():
    program = build_program(
        {FIXTURE_PATH: textwrap.dedent(_MANIFEST_SRC)}, spec("kfix")
    )
    return program, check_program(program)


def test_manifest_golden():
    program, report = _manifest_fixture()
    payload = build_kernel_manifest(program, report)
    assert payload == {
        "schema": "repro.kernel_manifest/v1",
        "checks_run": 13,  # 2 closure functions x 6 rules + 1 kernel
        "findings_total": 0,
        "kernels": [
            {
                "name": "kfix",
                "module": "physics/fixture.py",
                "signature": "kfix(x, y, out=None)",
                "dtype_contract": "test contract",
                "declared_backends": ["numpy", "numba"],
                "certified_backends": ["numpy", "numba"],
                "closure": ["helper", "kfix"],
                "arithmetic": {
                    "counted_flops_per_point": 4.0,
                    "counted_bytes_per_point": 24.0,
                    "counted_intensity": 0.1667,
                    "modeled_intensity": None,
                    "model_key": None,
                },
                "findings": 0,
            }
        ],
    }


def test_manifest_derates_compiled_backend_on_findings():
    program = build_program(
        {
            FIXTURE_PATH: textwrap.dedent(
                """
                def ktry(v):
                    try:
                        return v
                    except ValueError:
                        return v
                """
            )
        },
        spec("ktry"),
    )
    report = check_program(program)
    (kernel,) = build_kernel_manifest(program, report)["kernels"]
    assert kernel["declared_backends"] == ["numpy", "numba"]
    assert kernel["certified_backends"] == ["numpy"]
    assert kernel["findings"] >= 1


def test_write_kernel_manifest_roundtrip(tmp_path):
    program, report = _manifest_fixture()
    out = tmp_path / "kernel_manifest.json"
    payload = write_kernel_manifest(program, report, out)
    assert json.loads(out.read_text()) == payload


# -- CLI exit codes ------------------------------------------------------


def test_cli_perf_clean_exit_zero(tmp_path, capsys):
    (tmp_path / "other.py").write_text('"""Not a hot module."""\n')
    manifest = tmp_path / "m.json"
    code = cli_main(
        ["--perf", str(tmp_path), "--manifest-out", str(manifest)]
    )
    assert code == 0
    assert "kernel-check" in capsys.readouterr().err
    assert json.loads(manifest.read_text())["kernels"] == []


def test_cli_perf_findings_exit_one(tmp_path, capsys):
    phys = tmp_path / "physics"
    phys.mkdir()
    (phys / "weno.py").write_text(
        '"""Fixture weno module."""\n\n'
        "def weno5(v):\n"
        "    try:\n"
        "        return v\n"
        "    except ValueError:\n"
        "        return v\n"
    )
    manifest = tmp_path / "m.json"
    report = tmp_path / "r.json"
    code = cli_main([
        "--perf", str(tmp_path),
        "--manifest-out", str(manifest),
        "--report-out", str(report),
    ])
    assert code == 1
    assert "CP004" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert payload["by_rule"].get("CP004")
    (kernel,) = json.loads(manifest.read_text())["kernels"]
    assert kernel["certified_backends"] == ["numpy"]


def test_cli_perf_select_filters_rules(tmp_path, capsys):
    phys = tmp_path / "physics"
    phys.mkdir()
    (phys / "weno.py").write_text(
        '"""Fixture weno module."""\n\n'
        "def weno5(v):\n"
        "    try:\n"
        "        return v\n"
        "    except ValueError:\n"
        "        return v\n"
    )
    manifest = tmp_path / "m.json"
    code = cli_main([
        "--perf", str(tmp_path), "--select", "CP003",
        "--manifest-out", str(manifest),
    ])
    capsys.readouterr()
    assert code == 0


def test_cli_unknown_cp_rule_exit_two(capsys):
    assert cli_main(["--perf", "--select", "CP999", SRC]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_exit_two(tmp_path, capsys):
    code = cli_main(["--perf", str(tmp_path / "nope")])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


# -- the real tree -------------------------------------------------------


def test_perfcheck_src_repro_is_clean():
    from repro.analysis import perf_check_paths

    report = perf_check_paths([SRC])
    assert report.violations == []
    assert report.checks_run > 0


def test_committed_manifest_matches_regenerated():
    from repro.analysis.perfcheck import analyze_paths

    committed = json.loads((REPO / "kernel_manifest.json").read_text())
    program, report = analyze_paths([SRC])
    assert build_kernel_manifest(program, report) == committed


def test_manifest_certifies_enough_kernels_for_numba():
    from repro.analysis.perfcheck import analyze_paths

    program, report = analyze_paths([SRC])
    payload = build_kernel_manifest(program, report)
    assert len(payload["kernels"]) == len(HOT_KERNELS)
    certified = [
        k for k in payload["kernels"] if "numba" in k["certified_backends"]
    ]
    assert len(certified) >= 8
