"""Tests of the V&V subsystem (repro.validation).

Covers the baseline store and tolerance semantics, the case registry,
the runner modes (record / check / diff), the committed golden
baselines, the CLI (both entry points), and the acceptance property
that a deliberately perturbed flux makes the suite fail with a
readable per-metric diff.
"""

import json

import numpy as np
import pytest

from repro.validation import (
    CASES,
    SUITES,
    CaseBaseline,
    MetricSpec,
    baseline_path,
    compare,
    environment_stamp,
    format_scorecard,
    get_case,
    load_baseline,
    run_case,
    run_suite,
    save_baseline,
    scorecard_rows,
    suite_cases,
    suite_passed,
)
from repro.validation.cli import main as validation_main


# -- tolerance semantics --------------------------------------------------


class TestCompare:
    def _baseline(self, **metrics):
        return CaseBaseline(case="unit", metrics=metrics)

    def test_within_rtol_passes(self):
        spec = MetricSpec("m", rtol=0.01)
        (d,) = compare({"m": 1.005}, self._baseline(m=1.0), (spec,))
        assert d.passed
        assert d.reason == ""
        assert d.delta == pytest.approx(0.005)

    def test_outside_rtol_fails_with_readable_reason(self):
        spec = MetricSpec("m", rtol=0.01)
        (d,) = compare({"m": 1.02}, self._baseline(m=1.0), (spec,))
        assert not d.passed
        assert "delta" in d.reason and "tol" in d.reason

    def test_atol_and_rtol_combine(self):
        spec = MetricSpec("m", rtol=0.01, atol=0.05)
        (d,) = compare({"m": 1.055}, self._baseline(m=1.0), (spec,))
        assert d.passed  # tol = 0.05 + 0.01*1.0 = 0.06

    def test_hard_bounds_enforced_independently_of_baseline(self):
        spec = MetricSpec("order", rtol=0.5, lo=2.5)
        (d,) = compare({"order": 2.0}, self._baseline(order=2.0), (spec,))
        assert not d.passed
        assert "lo=2.5" in d.reason

    def test_hard_upper_bound(self):
        spec = MetricSpec("osc", hi=1e-3)
        (d,) = compare({"osc": 2e-3}, None, (spec,))
        assert not d.passed
        assert "hi=0.001" in d.reason

    def test_bound_only_metric_needs_no_baseline(self):
        spec = MetricSpec("violations", hi=0.0)
        (d,) = compare({"violations": 0.0}, None, (spec,))
        assert d.passed

    def test_missing_measurement_fails(self):
        spec = MetricSpec("m", rtol=0.01)
        (d,) = compare({}, self._baseline(m=1.0), (spec,))
        assert not d.passed
        assert "not measured" in d.reason
        assert np.isnan(d.measured)

    def test_nonfinite_measurement_fails(self):
        spec = MetricSpec("m", rtol=0.01)
        (d,) = compare({"m": float("nan")}, self._baseline(m=1.0), (spec,))
        assert not d.passed
        assert "non-finite" in d.reason

    def test_missing_recorded_value_fails_compared_metric(self):
        spec = MetricSpec("m", rtol=0.01)
        (d,) = compare({"m": 1.0}, self._baseline(), (spec,))
        assert not d.passed
        assert "no recorded baseline" in d.reason


# -- baseline store -------------------------------------------------------


class TestBaselineStore:
    def test_roundtrip_via_files(self, tmp_path):
        bl = CaseBaseline(
            case="unit", metrics={"b": 2.0, "a": 1.0},
            environment=environment_stamp(),
        )
        path = save_baseline(bl, str(tmp_path))
        assert path == baseline_path("unit", str(tmp_path))
        loaded = load_baseline("unit", str(tmp_path))
        assert loaded.case == "unit"
        assert loaded.metrics == {"a": 1.0, "b": 2.0}
        assert loaded.environment["numpy"] == np.__version__

    def test_json_layout_is_stable(self, tmp_path):
        bl = CaseBaseline(case="unit", metrics={"z": 1.0, "a": 2.0})
        doc = json.loads(bl.to_json())
        assert doc["format"] == 1
        assert list(doc["metrics"]) == ["a", "z"]  # sorted keys

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            CaseBaseline.from_json('{"format": 99, "case": "x", "metrics": {}}')

    def test_load_missing_returns_none(self, tmp_path):
        assert load_baseline("nope", str(tmp_path)) is None

    def test_environment_stamp_records_dtype_policy(self):
        env = environment_stamp()
        assert env["storage_dtype"] == "float32"
        assert env["compute_dtype"] == "float64"
        assert set(env) >= {"numpy", "python", "git_rev"}


# -- case registry --------------------------------------------------------


class TestRegistry:
    def test_names_match_keys_and_metrics_unique(self):
        for name, case in CASES.items():
            assert case.name == name
            metric_names = [m.name for m in case.metrics]
            assert len(metric_names) == len(set(metric_names))
            assert case.suites and set(case.suites) <= set(SUITES)

    def test_smoke_is_subset_of_full(self):
        smoke = {c.name for c in suite_cases("smoke")}
        full = {c.name for c in suite_cases("full")}
        assert smoke < full

    def test_get_case_unknown_lists_catalogue(self):
        with pytest.raises(ValueError, match="riemann_sod"):
            get_case("nope")

    def test_every_case_has_committed_baseline(self):
        """The committed golden store is complete: every case has a
        baseline file carrying every baseline-compared metric."""
        for case in CASES.values():
            bl = load_baseline(case.name)
            assert bl is not None, f"no committed baseline for {case.name}"
            for spec in case.metrics:
                if spec.compares_baseline:
                    assert spec.name in bl.metrics, (
                        f"{case.name} baseline missing {spec.name}"
                    )

    def test_convergence_order_contract_is_at_least_2_5(self):
        """Acceptance: the measured WENO5 convergence order is recorded
        in the committed baseline and hard-bounded >= 2.5."""
        case = get_case("acoustic_convergence")
        (order_spec,) = [m for m in case.metrics if m.name == "order"]
        assert order_spec.lo == 2.5
        assert load_baseline(case.name).metrics["order"] >= 2.5


# -- runner modes (on the cheapest case: acoustic, ~0.3 s) ----------------


class TestRunnerModes:
    CASE = "acoustic_convergence"

    def test_record_then_check_roundtrip(self, tmp_path):
        case = get_case(self.CASE)
        rec = run_case(case, mode="record", baseline_dir=str(tmp_path))
        assert rec.passed and rec.baseline_found
        chk = run_case(case, mode="check", baseline_dir=str(tmp_path))
        assert chk.passed
        assert chk.metrics == rec.metrics  # deterministic case

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_case(get_case(self.CASE), mode="bogus")

    def test_check_without_baseline_fails_compared_metrics(self, tmp_path):
        run = run_case(get_case(self.CASE), mode="check",
                       baseline_dir=str(tmp_path))
        assert not run.baseline_found
        assert not run.passed
        assert any("no recorded baseline" in d.reason for d in run.failures)

    def test_tampered_baseline_fails_with_readable_diff(self, tmp_path):
        case = get_case(self.CASE)
        run_case(case, mode="record", baseline_dir=str(tmp_path))
        bl = load_baseline(case.name, str(tmp_path))
        bl.metrics["l1_err_24"] *= 1.01  # outside rtol=1.5e-3
        save_baseline(bl, str(tmp_path))
        run = run_case(case, mode="check", baseline_dir=str(tmp_path))
        assert not run.passed
        (fail,) = [d for d in run.failures if d.spec.name == "l1_err_24"]
        assert "tol" in fail.reason
        card = format_scorecard([run])
        assert "FAIL" in card and "l1_err_24" in card

    def test_diff_mode_reports_without_mutating_store(self, tmp_path):
        case = get_case(self.CASE)
        run = run_case(case, mode="diff", baseline_dir=str(tmp_path))
        assert not run.baseline_found
        assert load_baseline(case.name, str(tmp_path)) is None
        rows = scorecard_rows([run])
        assert {r["metric"] for r in rows} == {m.name for m in case.metrics}


# -- fast committed-baseline checks (full smoke runs in CI + slow tests) --


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", ["acoustic_convergence",
                                      "conservation_drift"])
    def test_fast_cases_pass_against_committed_store(self, name):
        run = run_case(get_case(name), mode="check")
        assert run.passed, format_scorecard([run])

    @pytest.mark.slow
    def test_smoke_suite_passes_against_committed_store(self):
        runs = run_suite(suite_cases("smoke"), mode="check")
        assert suite_passed(runs), format_scorecard(runs)

    @pytest.mark.slow
    def test_full_suite_passes_against_committed_store(self):
        runs = run_suite(suite_cases("full"), mode="check")
        assert suite_passed(runs), format_scorecard(runs)


# -- acceptance: a perturbed flux must fail the suite ---------------------


class TestPerturbedFlux:
    def test_wave_speed_perturbation_breaches_tolerances(
        self, tmp_path, monkeypatch
    ):
        """Scaling the Einfeldt wave-speed estimates by 1% changes the
        numerical dissipation enough to breach the regression
        tolerances, and the scorecard names the breached metrics."""
        import repro.physics.riemann as riemann

        case = get_case("acoustic_convergence")
        run_case(case, mode="record", baseline_dir=str(tmp_path))

        orig = riemann.einfeldt_wave_speeds

        def perturbed(*args, **kwargs):
            s_l, s_r = orig(*args, **kwargs)
            return s_l * 1.01, s_r * 1.01

        monkeypatch.setattr(riemann, "einfeldt_wave_speeds", perturbed)
        run = run_case(case, mode="check", baseline_dir=str(tmp_path))
        assert not run.passed
        breached = {d.spec.name for d in run.failures}
        assert breached & {"l1_err_24", "l1_err_48"}
        card = format_scorecard([run])
        assert "FAIL" in card and "delta" in card


# -- CLI (both entry points) ----------------------------------------------


class TestCli:
    def test_list_exits_zero_and_prints_catalogue(self, capsys):
        assert validation_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in CASES:
            assert name in out

    def test_unknown_case_is_usage_error(self, capsys):
        assert validation_main(["--case", "nope", "--check"]) == 2
        assert "error" in capsys.readouterr().err

    def test_record_check_and_scorecard_out(self, tmp_path, capsys):
        score = tmp_path / "scorecard.txt"
        rc = validation_main([
            "--case", "acoustic_convergence", "--record",
            "--baseline-dir", str(tmp_path),
            "--scorecard-out", str(score),
        ])
        assert rc == 0
        assert "validation scorecard" in score.read_text()
        rc = validation_main([
            "--case", "acoustic_convergence", "--check",
            "--baseline-dir", str(tmp_path),
        ])
        assert rc == 0

    def test_check_without_baselines_exits_one_but_diff_zero(self, tmp_path,
                                                             capsys):
        flags = ["--case", "acoustic_convergence",
                 "--baseline-dir", str(tmp_path)]
        assert validation_main(flags + ["--check"]) == 1
        assert validation_main(flags + ["--diff"]) == 0

    def test_repro_cli_forwards_validate(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["validate", "--list"]) == 0
        assert "validation case catalogue" in capsys.readouterr().out
