"""Tests for the cartesian process topology (repro.cluster.topology)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import CartTopology, balanced_dims


class TestBalancedDims:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (1, (1, 1, 1)),
            (2, (2, 1, 1)),
            (4, (2, 2, 1)),
            (8, (2, 2, 2)),
            (12, (3, 2, 2)),
            (27, (3, 3, 3)),
            (64, (4, 4, 4)),
        ],
    )
    def test_known(self, size, expected):
        assert balanced_dims(size) == expected

    @given(size=st.integers(1, 4096))
    @settings(max_examples=100, deadline=None)
    def test_product_and_balance(self, size):
        dims = balanced_dims(size)
        assert dims[0] * dims[1] * dims[2] == size
        assert dims[0] >= dims[1] >= dims[2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_dims(0)


class TestCoords:
    def test_roundtrip_all_ranks(self):
        topo = CartTopology((2, 3, 4))
        for r in range(topo.size):
            assert topo.rank_of(topo.coords(r)) == r

    def test_row_major_order(self):
        topo = CartTopology((2, 2, 2))
        assert topo.coords(0) == (0, 0, 0)
        assert topo.coords(1) == (0, 0, 1)
        assert topo.coords(2) == (0, 1, 0)
        assert topo.coords(4) == (1, 0, 0)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            CartTopology((2, 2, 2)).coords(8)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            CartTopology((0, 1, 1))


class TestNeighbors:
    def test_interior(self):
        topo = CartTopology((3, 3, 3))
        center = topo.rank_of((1, 1, 1))
        assert topo.neighbor(center, 0, 1) == topo.rank_of((2, 1, 1))
        assert topo.neighbor(center, 2, -1) == topo.rank_of((1, 1, 0))

    def test_non_periodic_boundary(self):
        topo = CartTopology((2, 2, 2))
        assert topo.neighbor(0, 0, -1) is None
        assert topo.is_domain_boundary(0, 0, -1)

    def test_periodic_wrap(self):
        topo = CartTopology((2, 2, 2), periodic=(True, False, False))
        assert topo.neighbor(0, 0, -1) == topo.rank_of((1, 0, 0))
        assert topo.neighbor(0, 1, -1) is None

    def test_neighbors_dict_complete(self):
        topo = CartTopology((2, 2, 2))
        n = topo.neighbors(0)
        assert set(n) == {(a, s) for a in range(3) for s in (-1, 1)}

    def test_self_neighbor_single_rank_periodic(self):
        topo = CartTopology((1, 1, 1), periodic=(True, True, True))
        for a in range(3):
            for s in (-1, 1):
                assert topo.neighbor(0, a, s) == 0


class TestSubdomains:
    def test_partition_covers_domain(self):
        topo = CartTopology((2, 2, 2))
        seen = set()
        for r in range(8):
            starts, counts = topo.subdomain_blocks(r, (4, 4, 4))
            assert counts == (2, 2, 2)
            for dz in range(2):
                for dy in range(2):
                    for dx in range(2):
                        seen.add(
                            (starts[0] + dz, starts[1] + dy, starts[2] + dx)
                        )
        assert len(seen) == 64

    def test_indivisible_raises(self):
        topo = CartTopology((2, 1, 1))
        with pytest.raises(ValueError, match="not divisible"):
            topo.subdomain_blocks(0, (3, 2, 2))
