"""Tests for the slice ring buffer (repro.core.ringbuffer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ringbuffer import RING_DEPTH, SliceRing


class TestBasics:
    def test_depth_constant_matches_weno(self):
        # The WENO5 z-face stencil needs 6 consecutive slices.
        assert RING_DEPTH == 6

    def test_empty(self):
        ring = SliceRing((4, 4))
        assert len(ring) == 0
        assert not ring.full

    def test_push_and_index(self):
        ring = SliceRing((2, 2), depth=3)
        for i in range(3):
            ring.push(np.full((2, 2), float(i)))
        assert ring.full
        for i in range(3):
            np.testing.assert_array_equal(ring[i], np.full((2, 2), float(i)))

    def test_wraparound_evicts_oldest(self):
        ring = SliceRing((2,), depth=3)
        for i in range(5):
            ring.push(np.full((2,), float(i)))
        # Live slices are 2, 3, 4 (oldest first).
        np.testing.assert_array_equal(ring[0], [2.0, 2.0])
        np.testing.assert_array_equal(ring[2], [4.0, 4.0])

    def test_negative_index(self):
        ring = SliceRing((1,), depth=4)
        for i in range(4):
            ring.push(np.array([float(i)]))
        np.testing.assert_array_equal(ring[-1], [3.0])

    def test_out_of_range(self):
        ring = SliceRing((1,), depth=3)
        ring.push(np.array([1.0]))
        with pytest.raises(IndexError):
            ring[1]
        with pytest.raises(IndexError):
            ring[-2]

    def test_shape_mismatch(self):
        ring = SliceRing((2, 2))
        with pytest.raises(ValueError):
            ring.push(np.zeros((3, 3)))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            SliceRing((2,), depth=0)


class TestPushSemantics:
    def test_push_copies(self):
        ring = SliceRing((2,), depth=2)
        src = np.array([1.0, 2.0])
        ring.push(src)
        src[0] = 99.0
        np.testing.assert_array_equal(ring[0], [1.0, 2.0])

    def test_push_slot_in_place(self):
        ring = SliceRing((2,), depth=2)
        slot = ring.push_slot()
        slot[...] = [7.0, 8.0]
        np.testing.assert_array_equal(ring[0], [7.0, 8.0])

    def test_window_order(self):
        ring = SliceRing((1,), depth=3)
        for i in range(4):
            ring.push(np.array([float(i)]))
        vals = [w[0] for w in ring.window()]
        assert vals == [1.0, 2.0, 3.0]

    def test_reset(self):
        ring = SliceRing((1,), depth=2)
        ring.push(np.array([1.0]))
        ring.reset()
        assert len(ring) == 0

    def test_nbytes(self):
        ring = SliceRing((10, 10), depth=6, dtype=np.float64)
        assert ring.nbytes() == 6 * 100 * 8


class TestProperty:
    @given(
        depth=st.integers(1, 8),
        n_push=st.integers(0, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_list_semantics(self, depth, n_push):
        """The ring always exposes the last `depth` pushes, oldest first."""
        ring = SliceRing((1,), depth=depth)
        reference = []
        for i in range(n_push):
            ring.push(np.array([float(i)]))
            reference.append(float(i))
        live = reference[-depth:]
        assert len(ring) == len(live)
        for j, val in enumerate(live):
            assert ring[j][0] == val
