"""Tests for the per-rank block grid (repro.node.grid)."""

import numpy as np
import pytest

from repro.node.grid import BlockGrid
from repro.physics.state import NQ


class TestConstruction:
    def test_block_count(self):
        g = BlockGrid((2, 3, 4), block_size=8, h=0.1)
        assert g.num_blocks_total == 24
        assert g.cells == (16, 24, 32)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            BlockGrid((0, 1, 1), 8, 0.1)

    def test_block_indices_complete(self):
        g = BlockGrid((2, 2, 2), 8, 0.1)
        assert set(g.blocks) == {
            (z, y, x) for z in range(2) for y in range(2) for x in range(2)
        }


class TestGeometry:
    def test_block_origin(self):
        g = BlockGrid((2, 2, 2), 8, h=0.5, origin=(10.0, 20.0, 30.0))
        assert g.block_origin((1, 0, 1)) == (14.0, 20.0, 34.0)

    def test_cell_centers(self):
        g = BlockGrid((1, 1, 1), 8, h=1.0)
        z, y, x = g.cell_centers((0, 0, 0))
        np.testing.assert_allclose(x, np.arange(8) + 0.5)

    def test_cell_centers_offset_block(self):
        g = BlockGrid((2, 1, 1), 8, h=1.0)
        z, _, _ = g.cell_centers((1, 0, 0))
        np.testing.assert_allclose(z, np.arange(8, 16) + 0.5)


class TestTraversal:
    def test_sfc_visits_all(self):
        g = BlockGrid((2, 2, 2), 8, 0.1)
        seen = [b.index for b in g.sfc_blocks()]
        assert sorted(seen) == sorted(g.blocks)

    def test_neighbor(self):
        g = BlockGrid((2, 2, 2), 8, 0.1)
        n = g.neighbor((0, 0, 0), axis=2, side=1)
        assert n is not None and n.index == (0, 0, 1)
        assert g.neighbor((0, 0, 0), axis=2, side=-1) is None

    def test_is_rank_boundary(self):
        g = BlockGrid((2, 2, 2), 8, 0.1)
        assert g.is_rank_boundary((0, 0, 0), 0, -1)
        assert not g.is_rank_boundary((0, 0, 0), 0, 1)


class TestFieldAssembly:
    def test_roundtrip(self, rng):
        g = BlockGrid((2, 2, 2), 8, 0.1)
        field = rng.normal(size=(16, 16, 16, NQ)).astype(np.float32)
        g.from_array(field)
        np.testing.assert_array_equal(g.to_array(), field)

    def test_from_array_wrong_shape(self):
        g = BlockGrid((2, 2, 2), 8, 0.1)
        with pytest.raises(ValueError):
            g.from_array(np.zeros((8, 8, 8, NQ), dtype=np.float32))

    def test_block_placement(self, rng):
        g = BlockGrid((2, 1, 1), 8, 0.1)
        field = rng.normal(size=(16, 8, 8, NQ)).astype(np.float32)
        g.from_array(field)
        np.testing.assert_array_equal(g.blocks[(1, 0, 0)].data, field[8:16])

    def test_fill_coordinates(self):
        """fill() must evaluate at true physical cell centers."""
        g = BlockGrid((1, 1, 2), 8, h=0.25, origin=(0.0, 0.0, 1.0))

        def fn(z, y, x):
            out = np.zeros(np.broadcast_shapes(z.shape, y.shape, x.shape) + (NQ,))
            out[..., 0] = x  # store x coordinate in the density slot
            return out

        g.fill(fn)
        field = g.to_array()
        np.testing.assert_allclose(field[0, 0, :, 0],
                                   1.0 + (np.arange(16) + 0.5) * 0.25,
                                   rtol=1e-6)


class TestResiduals:
    def test_lazy_allocation(self):
        g = BlockGrid((1, 1, 1), 8, 0.1)
        assert not g.residuals
        r = g.residual((0, 0, 0))
        assert r.shape == (8, 8, 8, NQ)
        assert g.residual((0, 0, 0)) is r

    def test_reset(self):
        g = BlockGrid((1, 1, 1), 8, 0.1)
        g.residual((0, 0, 0))[...] = 5.0
        g.reset_residuals()
        assert not g.residuals[(0, 0, 0)].any()
