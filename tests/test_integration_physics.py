"""End-to-end physics validation of the 3D solver.

These integration tests run real simulations through the full
cluster/node/core stack and compare against analytic baselines:

* advection of a material interface at the exact transport speed;
* a Sod shock tube against the exact Riemann solution;
* single-bubble collapse against the Rayleigh collapse time
  (the paper's Section 2 lineage).
"""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.physics.exact_riemann import RiemannSide, sample, solve
from repro.physics.eos import Material
from repro.physics.rayleigh import rayleigh_collapse_time
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.diagnostics import pressure_field, vapor_fraction_field
from repro.sim.ic import cloud_collapse, shock_tube


IDEAL_GAS = Material(name="gas", gamma=1.4, pc=0.0)


class TestInterfaceAdvection:
    def test_interface_travels_at_flow_speed(self):
        """A Gamma interface in uniform (p, u) flow moves at exactly u."""
        u0 = 2.0
        ic = shock_tube(
            {"rho": 1.0, "p": 1.0, "u": u0},
            {"rho": 1.0, "p": 1.0, "u": u0},
            x0=0.3, axis=2,
            material_left=Material("a", 1.4, 0.0),
            material_right=Material("b", 1.6, 0.0),
        )
        cfg = SimulationConfig(
            cells=(8, 8, 64), block_size=8, extent=1.0,
            max_steps=10_000, t_end=0.2, diag_interval=0,
        )
        res = Simulation(cfg, ic).run()
        G = res.final_field[4, 4, :, 5].astype(np.float64)
        x = (np.arange(64) + 0.5) / 64
        # Interface center: where Gamma crosses the midpoint value.
        mid = 0.5 * (1 / 0.4 + 1 / 0.6)
        crossing = x[np.argmin(np.abs(G - mid))]
        assert crossing == pytest.approx(0.3 + u0 * 0.2, abs=2.5 / 64)

    def test_pressure_stays_uniform(self):
        ic = shock_tube(
            {"rho": 1000.0, "p": 100.0, "u": 5.0},
            {"rho": 1.0, "p": 100.0, "u": 5.0},
            x0=0.4, axis=2,
            material_left=Material("liq", 6.59, 4096.0),
            material_right=Material("vap", 1.4, 1.0),
        )
        cfg = SimulationConfig(
            cells=(8, 8, 64), block_size=8, extent=1.0,
            max_steps=10_000, t_end=0.02, diag_interval=0,
        )
        res = Simulation(cfg, ic).run()
        p = pressure_field(res.final_field)
        # float32 storage of E ~ 5000 limits the attainable uniformity.
        assert np.abs(p - 100.0).max() < 0.5


class TestSodShockTube:
    @pytest.fixture(scope="class")
    def sod_result(self):
        ic = shock_tube(
            {"rho": 1.0, "p": 1.0},
            {"rho": 0.125, "p": 0.1},
            x0=0.5, axis=2,
            material_left=IDEAL_GAS, material_right=IDEAL_GAS,
        )
        cfg = SimulationConfig(
            cells=(8, 8, 128), block_size=8, extent=1.0,
            max_steps=10_000, t_end=0.2, diag_interval=0, cfl=0.3,
        )
        return Simulation(cfg, ic).run()

    def test_star_pressure_plateau(self, sod_result):
        p = pressure_field(sod_result.final_field)[4, 4, :]
        # The star region at t = 0.2 spans roughly x in (0.55, 0.80).
        plateau = p[int(0.60 * 128) : int(0.78 * 128)]
        assert np.median(plateau) == pytest.approx(0.30313, rel=0.03)

    def test_contact_density_jump(self, sod_result):
        rho = sod_result.final_field[4, 4, :, 0].astype(np.float64)
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        left_star = rho[int(0.60 * 128) : int(0.66 * 128)]
        right_star = rho[int(0.72 * 128) : int(0.78 * 128)]
        assert np.median(left_star) == pytest.approx(sol.rho_star_l, rel=0.05)
        assert np.median(right_star) == pytest.approx(sol.rho_star_r, rel=0.05)

    def test_profile_l1_error_small(self, sod_result):
        rho = sod_result.final_field[4, 4, :, 0].astype(np.float64)
        x = (np.arange(128) + 0.5) / 128
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        exact, _, _ = sample(sol, (x - 0.5) / 0.2)
        l1 = np.abs(rho - exact).mean()
        assert l1 < 0.015  # WENO5/HLLE at 128 cells

    def test_no_spurious_oscillations(self, sod_result):
        """Density must stay within the Riemann-problem bounds."""
        rho = sod_result.final_field[4, 4, :, 0]
        assert rho.min() > 0.125 - 0.01
        assert rho.max() < 1.0 + 0.01


class TestSingleBubbleCollapse:
    @pytest.fixture(scope="class")
    def collapse_result(self):
        R0 = 0.3
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), R0)], p_liquid=1000.0)
        tau = rayleigh_collapse_time(R0, 1000.0, 1000.0 - 0.0234)
        cfg = SimulationConfig(
            cells=16, block_size=8, extent=1.0,
            max_steps=400, t_end=1.5 * tau, num_workers=2,
        )
        return Simulation(cfg, ic).run(), tau, R0

    def test_collapse_time_near_rayleigh(self, collapse_result):
        res, tau, _ = collapse_result
        vv = res.series("vapor_volume")
        t_min = res.times[int(np.argmin(vv))]
        # 16^3 resolves the bubble with only ~5 cells per radius; the
        # Rayleigh time must still be matched to ~20 %.
        assert t_min == pytest.approx(tau, rel=0.2)

    def test_volume_shrinks_monotonically_before_collapse(self, collapse_result):
        res, tau, _ = collapse_result
        vv = res.series("vapor_volume")
        upto = res.times < 0.7 * tau
        assert (np.diff(vv[upto]) < 1e-6).all()

    def test_pressure_amplification(self, collapse_result):
        """Collapse focuses pressure well above ambient (paper Fig. 5
        reports ~20x at the wall for cloud collapse)."""
        res, _, _ = collapse_result
        assert res.series("max_pressure").max() > 2.0 * 1000.0

    def test_kinetic_energy_peaks_near_collapse(self, collapse_result):
        res, tau, _ = collapse_result
        ke = res.series("kinetic_energy")
        t_ke = res.times[int(np.argmax(ke))]
        assert t_ke == pytest.approx(tau, rel=0.35)

    def test_vapor_fraction_field_shrinks(self, collapse_result):
        res, _, R0 = collapse_result
        alpha = vapor_fraction_field(res.final_field)
        final_volume = alpha.sum() * (1.0 / 16) ** 3
        initial_volume = 4.0 / 3.0 * np.pi * R0**3
        assert final_volume < 0.6 * initial_volume
