"""Tests of ``repro.telemetry``: tracer, exporters, scorecard, driver wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import Simulation
from repro.sim import SimulationConfig
from repro.sim.ic import uniform
from repro.telemetry import (
    MODES,
    MetricsSnapshot,
    PhaseTimers,
    SpanEvent,
    Tracer,
    chrome_trace_events,
    format_run_scorecard,
    io_fraction,
    make_tracer,
    metrics_json,
    run_scorecard_rows,
    run_trace_events,
    write_chrome_trace,
)


def run_sim(tmp_path=None, telemetry="off", steps=2, ranks=1, **kw):
    config = SimulationConfig(
        cells=16, block_size=8, max_steps=steps, ranks=ranks,
        telemetry=telemetry,
        **({"dump_dir": str(tmp_path)} if tmp_path is not None else {}),
        **kw,
    )
    return Simulation(config, uniform()).run()


# -- PhaseTimers & Tracer -------------------------------------------------


def test_phase_timers_accumulate_and_keep_dict_shape():
    timers = PhaseTimers()
    with timers.span("RHS"):
        pass
    with timers.span("RHS"):
        pass
    assert isinstance(timers, dict)
    assert set(timers) == {"RHS"}
    assert timers["RHS"] >= 0.0
    assert timers.calls["RHS"] == 2
    assert dict(timers) == {"RHS": timers["RHS"]}


def test_phase_timers_span_objects_are_cached():
    timers = PhaseTimers()
    assert timers.span("UP") is timers.span("UP")


def test_phase_span_is_reentrant():
    timers = PhaseTimers()
    with timers.span("X"):
        with timers.span("X"):
            pass
    assert timers.calls["X"] == 2


def test_make_tracer_off_returns_none():
    assert make_tracer("off") is None
    with pytest.raises(ValueError):
        make_tracer("bogus")
    with pytest.raises(ValueError):
        Tracer(mode="off")
    assert MODES == ("off", "metrics", "trace")


def test_tracer_counters_and_metrics_mode_records_no_events():
    tr = make_tracer("metrics", rank=3)
    tr.count("steps")
    tr.count("cell_steps", 4096)
    tr.count("cell_steps", 4096)
    with tr.span("DT"):
        pass
    assert tr.counters == {"steps": 1, "cell_steps": 8192}
    assert tr.events == []
    assert tr.rank == 3


def test_tracer_trace_mode_records_nested_events():
    tr = make_tracer("trace")
    with tr.span("IO_WAVELET"):
        with tr.span("IO_FWT"):
            pass
        with tr.span("IO_WRITE"):
            pass
    names = [e.name for e in tr.events]
    # spans complete innermost-first
    assert names == ["IO_FWT", "IO_WRITE", "IO_WAVELET"]
    depths = {e.name: e.depth for e in tr.events}
    assert depths == {"IO_FWT": 1, "IO_WRITE": 1, "IO_WAVELET": 0}
    outer = tr.events[-1]
    for inner in tr.events[:-1]:
        assert inner.start >= outer.start
        assert inner.start + inner.duration <= (
            outer.start + outer.duration + 1e-9
        )


def test_tracer_event_buffer_is_bounded():
    tr = make_tracer("trace", max_events=2)
    for _ in range(5):
        with tr.span("RHS"):
            pass
    assert len(tr.events) == 2
    assert tr.events_dropped == 3
    assert tr.calls["RHS"] == 5  # timing still accumulates past the bound


# -- MetricsSnapshot ------------------------------------------------------


def test_snapshot_roundtrips_through_json():
    tr = make_tracer("metrics")
    with tr.span("RHS"):
        pass
    tr.count("rhs_cell_updates", 1000)
    snap = tr.snapshot(wall_seconds=2.0)
    d = json.loads(metrics_json(snap))
    assert d["mode"] == "metrics"
    assert d["wall_seconds"] == 2.0
    assert d["counters"]["rhs_cell_updates"] == 1000
    assert "RHS" in d["phase_seconds"]
    assert d["phase_calls"]["RHS"] == 1


def test_snapshot_modeled_flops_prices_counters():
    from repro.perf.kernels import DT, FWT, RHS, UP

    snap = MetricsSnapshot(
        mode="metrics", rank=0, ranks=1, wall_seconds=2.0,
        counters={
            "rhs_cell_updates": 10,
            "dt_cell_evals": 5,
            "up_cell_updates": 4,
            "fwt_cells": 3,
        },
    )
    expect = (10 * RHS.flops_per_cell + 5 * DT.flops_per_cell
              + 4 * UP.flops_per_cell + 3 * FWT.flops_per_cell)
    assert snap.modeled_flops() == expect
    assert snap.modeled_flop_rate() == expect / 2.0


def test_snapshot_merge_means_phases_and_sums_counters():
    a = MetricsSnapshot(mode="metrics", rank=0, ranks=1, wall_seconds=1.0,
                        phase_seconds={"RHS": 2.0}, phase_calls={"RHS": 3},
                        counters={"steps": 3}, events_recorded=1)
    b = MetricsSnapshot(mode="metrics", rank=1, ranks=1, wall_seconds=3.0,
                        phase_seconds={"RHS": 4.0, "DT": 1.0},
                        phase_calls={"RHS": 3, "DT": 3},
                        counters={"steps": 3, "halo_bytes": 10},
                        events_dropped=2)
    m = MetricsSnapshot.merged([a, b])
    assert m.rank is None and m.ranks == 2
    assert m.wall_seconds == 3.0  # max over ranks
    assert m.phase_seconds["RHS"] == pytest.approx(3.0)  # mean
    assert m.phase_seconds["DT"] == pytest.approx(0.5)  # missing -> 0
    assert m.counters == {"steps": 6, "halo_bytes": 10}  # summed
    assert m.phase_calls == {"RHS": 6, "DT": 3}
    assert m.events_recorded == 1 and m.events_dropped == 2
    with pytest.raises(ValueError):
        MetricsSnapshot.merged([])


# -- Chrome trace export --------------------------------------------------


def test_chrome_trace_events_shape():
    events = {
        0: [SpanEvent("RHS", start=0.5, duration=0.25, depth=0)],
        1: [SpanEvent("DT", start=0.1, duration=0.05, depth=0)],
    }
    out = chrome_trace_events(events)
    meta = [e for e in out if e["ph"] == "M"]
    xs = [e for e in out if e["ph"] == "X"]
    assert len(meta) == 2 and len(xs) == 2
    assert meta[0]["args"]["name"] == "rank 0"
    rhs = next(e for e in xs if e["name"] == "RHS")
    assert rhs["ts"] == pytest.approx(0.5e6)
    assert rhs["dur"] == pytest.approx(0.25e6)
    assert rhs["tid"] == 0 and rhs["pid"] == 0
    assert rhs["args"]["depth"] == 0


def test_run_trace_events_requires_trace_mode():
    result = run_sim(telemetry="metrics", steps=1)
    with pytest.raises(ValueError, match="no trace events"):
        run_trace_events(result)


# -- driver integration ---------------------------------------------------


def test_driver_off_keeps_legacy_timers_and_no_telemetry():
    result = run_sim(telemetry="off")
    assert result.telemetry is None
    for rr in result.rank_results:
        assert rr.telemetry is None
        assert rr.trace_events is None
    # legacy timers shape: plain dict of phase -> seconds
    rec = result.records[-1]
    assert isinstance(rec.timers, dict)
    assert {"DT", "RHS", "UP", "COMM_WAIT"} <= set(rec.timers)
    assert all(isinstance(v, float) for v in rec.timers.values())
    # wall clock and throughput exist even with telemetry off
    assert result.wall_seconds > 0.0
    assert result.cells_per_second > 0.0


def test_driver_metrics_mode_counts_the_run():
    result = run_sim(telemetry="metrics", steps=3, ranks=2)
    snap = result.telemetry
    assert snap is not None
    assert snap.rank is None and snap.ranks == 2
    ncells = 16 ** 3
    # counters are global sums: every rank counts its own cells
    assert snap.counters["steps"] == 3 * 2
    assert snap.counters["cell_steps"] == 3 * ncells
    assert snap.counters["allreduce_calls"] == 3 * 2
    # 3 RK stages x 3 steps touch every cell once per stage, per side
    assert snap.counters["rhs_cell_updates"] == 3 * 3 * ncells
    assert snap.counters["up_cell_updates"] == 3 * 3 * ncells
    assert snap.counters["dt_cell_evals"] == 3 * ncells
    # 2 ranks exchange halos every stage
    assert snap.counters["halo_messages"] > 0
    assert snap.counters["halo_bytes"] > 0
    assert snap.modeled_flops() > 0
    # metrics mode records no span events
    assert snap.events_recorded == 0
    for rr in result.rank_results:
        assert rr.trace_events is None
        assert rr.telemetry.rank == rr.rank


def test_driver_trace_mode_produces_loadable_chrome_trace(tmp_path):
    result = run_sim(telemetry="trace", steps=2, ranks=2)
    for rr in result.rank_results:
        assert rr.trace_events, f"rank {rr.rank} recorded no events"
    path = tmp_path / "trace.json"
    n = write_chrome_trace(str(path), result)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert len(events) == n
    xs = [e for e in events if e["ph"] == "X"]
    names = {e["name"] for e in xs}
    assert {"RHS", "DT", "UP", "COMM_WAIT"} <= names
    assert {e["tid"] for e in xs} == {0, 1}
    for e in xs:
        assert e["dur"] >= 0.0 and e["ts"] >= 0.0


def test_step_record_timers_identical_shape_on_and_off():
    off = run_sim(telemetry="off")
    on = run_sim(telemetry="trace")
    assert set(off.records[-1].timers) == set(on.records[-1].timers)
    assert set(off.timers) == set(on.timers)


# -- scorecard ------------------------------------------------------------


def test_scorecard_off_still_reports_phases_and_throughput():
    result = run_sim(telemetry="off")
    rows = run_scorecard_rows(result)
    labels = [r["phase"] for r in rows]
    assert "RHS" in labels and "TOTAL (wall)" in labels
    assert "throughput" in labels and "I/O fraction" in labels
    assert "modeled compute" not in labels  # needs counters
    card = format_run_scorecard(result)
    assert "Run scorecard" in card and "RHS" in card


def test_scorecard_with_telemetry_adds_counter_rows():
    result = run_sim(telemetry="metrics", steps=2, ranks=2)
    rows = {r["phase"]: r for r in run_scorecard_rows(result)}
    assert rows["modeled compute"]["GFLOP/s"] > 0
    assert rows["halo traffic"]["messages"] > 0
    assert rows["RHS"]["calls"] > 0
    card = format_run_scorecard(result)
    assert "GFLOP/s" in card


def test_compression_time_accounted_in_scorecard(tmp_path):
    # Satellite: a dumping run must report the IO_WAVELET phase, nonzero,
    # and feed the scorecard's I/O-fraction row.
    result = run_sim(tmp_path, telemetry="metrics", steps=2,
                     dump_interval=1)
    assert result.timers.get("IO_WAVELET", 0.0) > 0.0
    assert result.timers.get("IO_FWT", 0.0) > 0.0
    assert result.timers.get("IO_WRITE", 0.0) > 0.0
    frac = io_fraction(result)
    assert 0.0 < frac <= 1.0
    snap = result.telemetry
    assert snap.counters["fwt_cells"] == 2 * 2 * 16 ** 3  # 2 dumps x p+Gamma
    assert snap.counters["io_raw_bytes"] > 0
    assert snap.counters["io_compressed_bytes"] > 0
    rows = {r["phase"]: r for r in run_scorecard_rows(result)}
    assert rows["I/O fraction"]["share [%]"] == pytest.approx(100 * frac)
    assert "check" in rows["I/O fraction"]
    assert rows["dump compression"]["rate"] > 1.0
    # nested phases are labeled as contained in IO_WAVELET
    assert "IO_FWT (in IO_WAVELET)" in rows
    card = format_run_scorecard(result)
    assert "I/O fraction" in card


def test_io_fraction_zero_without_dumps():
    result = run_sim(telemetry="off", steps=1)
    assert io_fraction(result) == 0.0


# -- config validation ----------------------------------------------------


def test_config_rejects_bad_telemetry():
    with pytest.raises(ValueError, match="telemetry"):
        SimulationConfig(cells=16, block_size=8, telemetry="verbose")
    with pytest.raises(ValueError, match="telemetry_max_events"):
        SimulationConfig(cells=16, block_size=8, telemetry_max_events=-1)


def test_timestepper_advance_traces_stages():
    from repro.core.timestepper import make_stepper

    tr = make_tracer("trace")
    stepper = make_stepper("rk3")
    U = np.ones((4, 4), dtype=np.float64)
    out = stepper.advance(U, lambda u: -u, 1e-3, tracer=tr)
    ref = make_stepper("rk3").advance(U, lambda u: -u, 1e-3)
    np.testing.assert_allclose(out, ref)
    assert tr.calls["RHS"] == 3 and tr.calls["UP"] == 3
    assert tr.counters["rhs_cell_updates"] == 3 * 4  # leading-dim cells


# -- Chrome trace exporter round-trip (satellite) -------------------------


def test_chrome_trace_roundtrip_counts_and_rank_mapping(tmp_path):
    result = run_sim(telemetry="trace", steps=3, ranks=2)
    path = tmp_path / "trace.json"
    n = write_chrome_trace(str(path), result)
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert len(events) == n
    # One thread-name metadata record per rank, all in pid 0.
    metas = [e for e in events if e["ph"] == "M"]
    assert {m["tid"] for m in metas} == {0, 1}
    assert all(m["pid"] == 0 for m in metas)
    # Every span of every rank survives the round trip, mapped to the
    # rank's tid.
    xs = [e for e in events if e["ph"] == "X"]
    per_rank = {rr.rank: len(rr.trace_events) for rr in result.rank_results}
    got: dict[int, int] = {}
    for e in xs:
        assert e["pid"] == 0
        got[e["tid"]] = got.get(e["tid"], 0) + 1
    assert got == per_rank


def test_chrome_trace_timestamps_monotonic_per_rank(tmp_path):
    # Spans are appended at exit, so within one rank (and one nesting
    # depth) start timestamps must be non-decreasing; a violation means
    # the exporter scrambled the timeline.
    result = run_sim(tmp_path, telemetry="trace", steps=2, ranks=2,
                     dump_interval=1)
    with open(tmp_path / "t.json", "w") as f:
        json.dump({"traceEvents": run_trace_events(result)}, f)
    with open(tmp_path / "t.json") as f:
        xs = [e for e in json.load(f)["traceEvents"] if e["ph"] == "X"]
    seen_depths = set()
    for rank in (0, 1):
        by_depth: dict[int, list[float]] = {}
        for e in xs:
            if e["tid"] == rank:
                by_depth.setdefault(e["args"]["depth"], []).append(e["ts"])
        seen_depths |= set(by_depth)
        for ts in by_depth.values():
            assert all(a <= b for a, b in zip(ts, ts[1:]))
    # The dump run exercises nesting (IO_FWT/IO_WRITE inside IO_WAVELET).
    assert {0, 1} <= seen_depths


# -- degenerate-denominator guards (satellite) ----------------------------


def test_safe_rate_guards_zero_and_nonfinite_denominators():
    from repro.telemetry import DEGENERATE_COUNTS, safe_rate

    before = DEGENERATE_COUNTS.get("unit_test_guard", 0)
    assert safe_rate(5.0, 0.0, "unit_test_guard") == 0.0
    assert safe_rate(5.0, 1e-12, "unit_test_guard") == 0.0
    assert safe_rate(5.0, float("nan"), "unit_test_guard") == 0.0
    assert safe_rate(5.0, float("inf"), "unit_test_guard") == 0.0
    assert DEGENERATE_COUNTS["unit_test_guard"] == before + 4
    assert safe_rate(5.0, 2.0, "unit_test_guard") == 2.5
    assert DEGENERATE_COUNTS["unit_test_guard"] == before + 4


def test_io_fraction_degenerate_wall_returns_zero_not_inf():
    from repro.telemetry import DEGENERATE_COUNTS

    result = run_sim(telemetry="off", steps=1)
    result.timers["IO_WAVELET"] = 1.0  # pretend the run dumped
    result.wall_seconds = 0.0
    before = DEGENERATE_COUNTS.get("io_fraction_degenerate_wall", 0)
    assert io_fraction(result) == 0.0
    assert DEGENERATE_COUNTS["io_fraction_degenerate_wall"] == before + 1


def test_cells_per_second_degenerate_wall_returns_zero():
    result = run_sim(telemetry="off", steps=1)
    result.wall_seconds = 0.0
    assert result.cells_per_second == 0.0


# -- cross-rank imbalance scorecard row (tentpole) ------------------------


def test_scorecard_multirank_run_gets_a_load_imbalance_row():
    result = run_sim(telemetry="off", steps=2, ranks=2)
    rows = {r["phase"]: r for r in run_scorecard_rows(result)}
    row = rows["load imbalance"]
    assert row["factor"] >= 1.0
    assert row["spread"] >= 0.0
    assert "bound" in row["check"]
    assert "rank" in row["check"]


def test_scorecard_single_rank_run_has_no_imbalance_row():
    result = run_sim(telemetry="off", steps=1, ranks=1)
    labels = [r["phase"] for r in run_scorecard_rows(result)]
    assert "load imbalance" not in labels
