"""Tests of comm-check, the static MPI protocol verifier (CC-series)."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.concurrency import (
    build_program,
    check_paths,
    check_sources,
)
from repro.analysis.concurrency.commcheck import ANY

SRC = str(Path(__file__).resolve().parents[1] / "src" / "repro")


def check(text: str, path: str = "src/repro/cluster/fixture.py"):
    return check_sources({path: textwrap.dedent(text)})


def rules_of(report):
    return [v.rule for v in report.violations]


# A minimal halo-style protocol: symmetric sends and receives over the
# six faces, tags derived from (axis, side) exactly like
# repro.cluster.halo does.
HALO_OK = """
    def _face_tag(axis, side):
        'Returns the face tag.'
        return axis * 2 + (0 if side == -1 else 1)

    def exchange(comm, frames):
        'Symmetric six-face halo exchange.'
        for axis in range(3):
            for side in (-1, 1):
                comm.send(frames[axis], dest=0, tag=_face_tag(axis, side))
        for axis in range(3):
            for side in (-1, 1):
                frames[axis] = comm.recv(source=0, tag=_face_tag(axis, -side))
    """


# -- skeleton extraction ---------------------------------------------------


def test_skeleton_enumerates_loop_tags():
    program = build_program(
        {"src/repro/cluster/fixture.py": textwrap.dedent(HALO_OK)}
    )
    sends = program.sends()
    recvs = program.recvs()
    assert len(sends) == 1 and len(recvs) == 1
    assert sends[0].tags == frozenset(range(6))
    assert recvs[0].tags == frozenset(range(6))


def test_skeleton_records_wildcards_as_any():
    program = build_program({
        "src/repro/cluster/fixture.py": textwrap.dedent(
            """
            def pull(comm):
                'Receives from anyone.'
                return comm.recv(source=-1, tag=-1)
            """
        )
    })
    (recv,) = program.recvs()
    assert recv.peer == ANY and recv.tags is None


def test_skeleton_ignores_non_comm_receivers():
    program = build_program({
        "src/repro/cluster/fixture.py": textwrap.dedent(
            """
            def post(queue, sock):
                'Not MPI traffic: unrelated send/recv attribute names.'
                queue.send(b"x")
                return sock.recv(1024)
            """
        )
    })
    assert program.sites == []


# -- CC001/CC002: halo symmetry -------------------------------------------


def test_symmetric_halo_protocol_is_clean():
    assert check(HALO_OK).violations == []


def test_cc001_flags_dropped_halo_recv():
    dropped = HALO_OK.replace(
        "for side in (-1, 1):\n                frames[axis] = comm.recv",
        "for side in (-1, 1):\n                if side == -1:\n"
        "                    frames[axis] = comm.recv",
    )
    report = check(dropped)
    assert "CC001" in rules_of(report)
    (v,) = [v for v in report.violations if v.rule == "CC001"]
    # The receives kept are _face_tag(axis, 1) = {1, 3, 5}; the even
    # send tags lost their partners.
    assert "0" in v.message and "2" in v.message and "4" in v.message


def test_cc002_flags_recv_without_send():
    report = check(
        """
        def pull(comm):
            'Posts a receive nobody ever sends to.'
            return comm.recv(source=0, tag=9)
        """
    )
    assert rules_of(report) == ["CC002"]


def test_mismatched_tag_flags_both_endpoints():
    report = check(
        """
        def exchange(comm, payload):
            'Send tag and recv tag disagree.'
            comm.send(payload, dest=1, tag=3)
            return comm.recv(source=0, tag=4)
        """
    )
    assert sorted(rules_of(report)) == ["CC001", "CC002"]


def test_dynamic_tags_match_conservatively():
    # A dynamic (unresolvable) tag may match anything: no findings.
    report = check(
        """
        def exchange(comm, payload, step):
            'Tags derived from runtime state.'
            comm.send(payload, dest=1, tag=step)
            return comm.recv(source=0, tag=step)
        """
    )
    assert report.violations == []


# -- CC003: rank-dependent collectives ------------------------------------


def test_cc003_flags_direct_rank_conditional_collective():
    report = check(
        """
        def sync(comm):
            'Only rank 0 enters the barrier: classic SPMD deadlock.'
            if comm.rank == 0:
                comm.barrier()
        """
    )
    assert rules_of(report) == ["CC003"]


def test_cc003_flags_interprocedural_collective():
    report = check(
        """
        def save(comm, field):
            'Gathers the field before writing.'
            return comm.gather(field)

        def maybe_save(comm, field):
            'Rank-guarded call into a collective-bearing helper.'
            if comm.rank == 0:
                save(comm, field)
        """
    )
    assert "CC003" in rules_of(report)


def test_cc003_clean_for_uniform_collectives():
    report = check(
        """
        def sync(comm, value):
            'Every rank reaches both collectives unconditionally.'
            comm.barrier()
            return comm.allreduce(value)
        """
    )
    assert report.violations == []


def test_cc003_clean_for_non_rank_conditionals():
    report = check(
        """
        def sync(comm, step):
            'The guard is rank-uniform, so the collective is safe.'
            if step % 10 == 0:
                comm.barrier()
        """
    )
    assert report.violations == []


# -- CC004: endpoint dtype consistency ------------------------------------


def test_cc004_flags_dtype_mismatch():
    report = check(
        """
        import numpy as np

        def push(comm, field):
            'Sends halved-precision data.'
            comm.send(field.astype(np.float16), dest=1, tag=3)

        def pull(comm):
            'Receives into a single-precision buffer.'
            buf = np.zeros(8, dtype=np.float32)
            buf[:] = comm.recv(source=0, tag=3)
            return buf
        """
    )
    assert "CC004" in rules_of(report)
    (v,) = [v for v in report.violations if v.rule == "CC004"]
    assert "float16" in v.message and "float32" in v.message


def test_cc004_clean_when_dtypes_agree():
    report = check(
        """
        import numpy as np

        def push(comm, field):
            'Sends single-precision data.'
            comm.send(field.astype(np.float32), dest=1, tag=3)

        def pull(comm):
            'Receives into a matching buffer.'
            buf = np.zeros(8, dtype=np.float32)
            buf[:] = comm.recv(source=0, tag=3)
            return buf
        """
    )
    assert report.violations == []


# -- pragmas and wrappers --------------------------------------------------


def test_pragma_disables_cc_rule_at_site():
    report = check(
        """
        def sync(comm):
            'Deliberately asymmetric, justified in-line.'
            if comm.rank == 0:
                comm.barrier()  # lint: disable=CC003
        """
    )
    assert report.violations == []
    assert report.checks_run > 0


def test_send_wrapper_resolved_through_call_sites():
    # Tag/neighbor flow through a one-level wrapper, the idiom
    # repro.cluster.halo uses (_send_frame).  All call-site tags are
    # enumerated; the unmatched one is reported.
    report = check(
        """
        def _send_frame(comm, nbr, tag, payload):
            'Wrapper owning the actual send call.'
            comm.send(payload, dest=nbr, tag=tag)

        def exchange(comm, payload):
            'Two wrapped sends, one matching receive.'
            _send_frame(comm, 1, 10, payload)
            _send_frame(comm, 1, 11, payload)
            return comm.recv(source=0, tag=10)
        """
    )
    assert rules_of(report) == ["CC001"]
    (v,) = report.violations
    assert "11" in v.message


# -- whole-tree acceptance -------------------------------------------------


def test_comm_check_clean_on_repo_tree():
    report = check_paths([SRC])
    assert report.violations == [], "\n" + "\n".join(
        v.format() for v in report.violations
    )
    assert report.checks_run > 0


def test_report_shapes():
    report = check(HALO_OK)
    assert len(report) == 0
    assert "clean" in report.summary()
    d = report.to_dict()
    assert d["findings"] == [] and d["checks_run"] == report.checks_run
