"""Tests for the low-storage time integrators (repro.core.timestepper)."""

import numpy as np
import pytest

from repro.core.timestepper import (
    ForwardEuler,
    LowStorageRK3,
    make_stepper,
)


class TestCoefficients:
    def test_rk3_williamson_values(self):
        s = LowStorageRK3.stages
        assert [st.a for st in s] == [0.0, -5.0 / 9.0, -153.0 / 128.0]
        assert [st.b for st in s] == [1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0]

    def test_first_stage_has_zero_a(self):
        """a_0 = 0 means the register needs no reset between steps."""
        assert LowStorageRK3.stages[0].a == 0.0
        assert ForwardEuler.stages[0].a == 0.0

    def test_consistency_order1(self):
        """Sum over stages of b_k * prod of downstream contributions must
        integrate dU/dt = const exactly: U(dt) = U0 + dt for RHS == 1."""
        for stepper in (LowStorageRK3(), ForwardEuler()):
            U = np.array([0.0])
            out = stepper.advance(U, lambda u: np.ones_like(u), dt=1.0)
            assert out[0] == pytest.approx(1.0, rel=1e-13)


class TestConvergence:
    def _error(self, stepper, dt):
        """Integrate dU/dt = -U over [0, 1]; compare with exp(-1)."""
        steps = int(round(1.0 / dt))
        U = np.array([1.0])
        for _ in range(steps):
            U = stepper.advance(U, lambda u: -u, dt)
        return abs(U[0] - np.exp(-1.0))

    def test_rk3_third_order(self):
        s = LowStorageRK3()
        e1 = self._error(s, 0.1)
        e2 = self._error(s, 0.05)
        order = np.log2(e1 / e2)
        assert order == pytest.approx(3.0, abs=0.25)

    def test_euler_first_order(self):
        s = ForwardEuler()
        e1 = self._error(s, 0.01)
        e2 = self._error(s, 0.005)
        order = np.log2(e1 / e2)
        assert order == pytest.approx(1.0, abs=0.15)

    def test_rk3_beats_euler(self):
        assert self._error(LowStorageRK3(), 0.05) < self._error(
            ForwardEuler(), 0.05
        ) / 100.0

    def test_nonlinear_rhs(self):
        """dU/dt = U^2, U0 = 1 over [0, 0.5]: exact is 1/(1-t)."""
        s = LowStorageRK3()
        dt = 1e-3
        U = np.array([1.0])
        for _ in range(500):
            U = s.advance(U, lambda u: u * u, dt)
        assert U[0] == pytest.approx(2.0, rel=1e-6)


class TestFactory:
    def test_names(self):
        assert isinstance(make_stepper("rk3"), LowStorageRK3)
        assert isinstance(make_stepper("rk3-williamson"), LowStorageRK3)
        assert isinstance(make_stepper("euler"), ForwardEuler)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown time stepper"):
            make_stepper("rk4")

    def test_orders(self):
        assert make_stepper("rk3").order == 3
        assert make_stepper("euler").order == 1

    def test_advance_does_not_mutate_input(self):
        U = np.ones(3)
        make_stepper("rk3").advance(U, lambda u: -u, 0.1)
        np.testing.assert_array_equal(U, 1.0)
