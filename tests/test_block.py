"""Tests for the core-layer block storage (repro.core.block)."""

import numpy as np
import pytest

from repro.core.block import GHOSTS, Block, fill_interior, padded_aos
from repro.physics.state import NQ


class TestBlock:
    def test_shape_and_dtype(self):
        b = Block(16, (1, 2, 3))
        assert b.data.shape == (16, 16, 16, NQ)
        assert b.data.dtype == np.float32
        assert b.index == (1, 2, 3)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            Block(4)

    def test_soa_roundtrip(self, rng):
        b = Block(8)
        b.data[...] = rng.normal(size=b.data.shape).astype(np.float32)
        soa = b.soa()
        assert soa.shape == (NQ, 8, 8, 8)
        assert soa.dtype == np.float64
        b2 = Block(8)
        b2.set_soa(soa)
        np.testing.assert_array_equal(b2.data, b.data)

    def test_quantity_view_is_view(self):
        b = Block(8)
        q = b.quantity(0)
        q[0, 0, 0] = 42.0
        assert b.data[0, 0, 0, 0] == 42.0

    def test_copy_is_deep(self):
        b = Block(8)
        c = b.copy()
        c.data[0, 0, 0, 0] = 1.0
        assert b.data[0, 0, 0, 0] == 0.0

    def test_nbytes(self):
        assert Block(8).nbytes() == 8**3 * NQ * 4


class TestFaceSlab:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    @pytest.mark.parametrize("side", [-1, 1])
    def test_slab_contents(self, rng, axis, side):
        b = Block(8)
        b.data[...] = rng.normal(size=b.data.shape).astype(np.float32)
        slab = b.face_slab(axis, side)
        sel = [slice(None)] * 3
        sel[axis] = slice(0, GHOSTS) if side == -1 else slice(8 - GHOSTS, 8)
        np.testing.assert_array_equal(slab, b.data[tuple(sel)])

    def test_slab_is_copy(self):
        b = Block(8)
        slab = b.face_slab(0, -1)
        slab[...] = 9.0
        assert not b.data.any()

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            Block(8).face_slab(0, 0)


class TestPaddedArea:
    def test_shape(self):
        pad = padded_aos(8)
        assert pad.shape == (14, 14, 14, NQ)

    def test_benign_corners(self):
        """The prefilled state must be physically valid (rho > 0)."""
        pad = padded_aos(8)
        assert (pad[..., 0] > 0).all()
        assert (pad[..., 5] > 0).all()

    def test_fill_interior(self, rng):
        b = Block(8)
        b.data[...] = rng.normal(size=b.data.shape).astype(np.float32)
        pad = padded_aos(8)
        fill_interior(pad, b)
        g = GHOSTS
        np.testing.assert_array_equal(pad[g:-g, g:-g, g:-g], b.data)
