"""Tests for the torus network and I/O models (repro.perf.network)."""

import pytest

from repro.perf.network import (
    TorusNetwork,
    dump_analysis,
    halo_message_bytes,
    overlap_analysis,
)


class TestTorus:
    def test_extents_product(self):
        net = TorusNetwork()
        for nodes in (1024, 98304, 24576):
            ext = net.torus_extents(nodes)
            p = 1
            for e in ext:
                p *= e
            assert p == nodes
            assert len(ext) == 5

    def test_hops_grow_with_size(self):
        net = TorusNetwork()
        assert net.average_hops(98304) > net.average_hops(1024)

    def test_p2p_time_bandwidth_dominated(self):
        net = TorusNetwork()
        t = net.point_to_point_time(20e6)
        assert t == pytest.approx(20e6 / 2e9, rel=0.01)  # ~10 ms

    def test_p2p_latency_floor(self):
        net = TorusNetwork()
        assert net.point_to_point_time(0.0) >= net.message_overhead_s

    def test_allreduce_logarithmic(self):
        net = TorusNetwork()
        t1k = net.allreduce_time(1024)
        t100k = net.allreduce_time(98304)
        assert t100k < 2.0 * t1k  # log scaling, not linear
        assert t100k < 1e-3  # microseconds, not milliseconds


class TestHaloMessages:
    def test_paper_window(self):
        """The paper quotes 3-30 MB per message; per-node subdomains of
        256^3 .. 640^3 land inside that window."""
        assert 3e6 < halo_message_bytes(256) < 30e6
        assert 3e6 < halo_message_bytes(600) < 31e6

    def test_512_cubed(self):
        # 3 * 512^2 * 28 B = 22 MB.
        assert halo_message_bytes(512) == pytest.approx(22.0e6, rel=0.01)


class TestOverlap:
    def test_compute_hides_communication(self):
        """Paper: 'the time spent in the node layer is expected to be one
        order of magnitude larger than the communication time'."""
        ov = overlap_analysis(512)
        assert ov.ratio > 10.0

    def test_ratio_grows_with_subdomain(self):
        assert overlap_analysis(512).ratio > overlap_analysis(128).ratio


class TestDumpModel:
    def test_compressed_dump_under_one_percent(self):
        """Paper: compression takes '< 1 % of the total simulation time'."""
        dm = dump_analysis()
        assert dm.dump_fraction_of_runtime < 0.01

    def test_io_saving_in_paper_band(self):
        """Paper: '10-100X improvement in terms of I/O time'."""
        dm = dump_analysis()
        assert 10.0 < dm.io_time_saving < 100.0

    def test_footprint_ratio(self):
        dm = dump_analysis(rate_p=15.0, rate_gamma=125.0)
        assert dm.uncompressed_bytes / dm.compressed_bytes == pytest.approx(
            2.0 / (1.0 / 15.0 + 1.0 / 125.0), rel=1e-9
        )
