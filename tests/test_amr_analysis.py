"""Tests for the AMR-profitability analysis (repro.compression.amr_analysis)."""

import numpy as np
import pytest

from repro.compression.amr_analysis import AmrProfile, amr_profitability
from repro.physics.state import NQ

from .conftest import make_smooth_aos, make_uniform_aos


class TestProfiles:
    def test_uniform_field_fully_coarsenable(self):
        f = make_uniform_aos((32, 32, 32)).astype(np.float32)
        profiles = amr_profitability(f, thresholds=(1e-4,), block_size=16)
        p = profiles[0]
        assert p.best_scalar_coarsenable == 1.0
        assert p.vector_coarsenable == 1.0
        # Fully coarsenable: rate = 8 (cells shrink by 2^3).
        assert p.vector_rate == pytest.approx(8.0, rel=1e-6)

    def test_rough_field_not_coarsenable(self, rng):
        f = make_smooth_aos((32, 32, 32), rng, amplitude=0.3)
        profiles = amr_profitability(f, thresholds=(1e-7,), block_size=16)
        p = profiles[0]
        assert p.vector_coarsenable == 0.0
        assert p.vector_rate == pytest.approx(1.0)

    def test_vector_no_better_than_best_scalar(self, rng):
        f = make_smooth_aos((32, 32, 32), rng, amplitude=0.1)
        for p in amr_profitability(f, thresholds=(1e-3, 1e-5), block_size=16):
            assert p.vector_coarsenable <= p.best_scalar_coarsenable + 1e-12
            assert p.vector_rate <= p.best_scalar_rate + 1e-9

    def test_monotone_in_threshold(self, rng):
        f = make_smooth_aos((32, 32, 32), rng, amplitude=0.05)
        profiles = amr_profitability(
            f, thresholds=(1e-2, 1e-4, 1e-6), block_size=16
        )
        rates = [p.vector_rate for p in profiles]
        assert rates == sorted(rates, reverse=True)

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            amr_profitability(np.zeros((8, 8, 8, NQ + 1)))


class TestPaperClaim:
    def test_collapse_field_unprofitable_at_solver_accuracy(self, rng):
        """The paper's Section 7 argument: with pressure gradients filling
        the domain, solver-accuracy thresholds leave almost nothing to
        coarsen (rate ~1.15:1 scalar, 1.02:1 vector)."""
        # A field with smooth broadband content everywhere (waves filling
        # the domain after the collapse starts).
        f = make_smooth_aos((32, 32, 32), rng, amplitude=0.2)
        profiles = amr_profitability(f, thresholds=(1e-5,), block_size=16)
        p = profiles[0]
        assert p.vector_rate < 1.2  # unprofitable, as the paper argues
