"""Tests for the exact stiffened-gas Riemann solver."""

import numpy as np
import pytest

from repro.physics.exact_riemann import RiemannSide, sample, solve


class TestToroReferences:
    """Toro's ideal-gas reference solutions (Chapter 4 tables)."""

    def test_sod(self):
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        assert sol.p_star == pytest.approx(0.30313, rel=1e-4)
        assert sol.u_star == pytest.approx(0.92745, rel=1e-4)
        assert sol.rho_star_l == pytest.approx(0.42632, rel=1e-4)
        assert sol.rho_star_r == pytest.approx(0.26557, rel=1e-4)

    def test_123_double_rarefaction(self):
        sol = solve(RiemannSide(1.0, -2.0, 0.4), RiemannSide(1.0, 2.0, 0.4))
        assert sol.p_star == pytest.approx(0.00189, rel=5e-3)
        assert sol.u_star == pytest.approx(0.0, abs=1e-10)

    def test_strong_shock_left(self):
        # Toro test 3: p_l = 1000.
        sol = solve(RiemannSide(1.0, 0.0, 1000.0), RiemannSide(1.0, 0.0, 0.01))
        assert sol.p_star == pytest.approx(460.894, rel=1e-4)
        assert sol.u_star == pytest.approx(19.5975, rel=1e-4)


class TestSymmetry:
    def test_mirror(self):
        sol = solve(RiemannSide(1.0, 0.3, 1.0), RiemannSide(0.5, -0.1, 0.4))
        mir = solve(RiemannSide(0.5, 0.1, 0.4), RiemannSide(1.0, -0.3, 1.0))
        assert mir.p_star == pytest.approx(sol.p_star, rel=1e-10)
        assert mir.u_star == pytest.approx(-sol.u_star, rel=1e-10)

    def test_trivial_problem(self):
        s = RiemannSide(1.0, 0.5, 2.0)
        sol = solve(s, s)
        assert sol.p_star == pytest.approx(2.0, rel=1e-10)
        assert sol.u_star == pytest.approx(0.5, rel=1e-10)
        assert sol.rho_star_l == pytest.approx(1.0, rel=1e-10)


class TestStiffened:
    def test_water_shock_tube_star_state(self):
        L = RiemannSide(1000.0, 0.0, 1000.0, gamma=6.59, pc=4096.0)
        R = RiemannSide(1000.0, 0.0, 100.0, gamma=6.59, pc=4096.0)
        sol = solve(L, R)
        assert 100.0 < sol.p_star < 1000.0
        assert sol.u_star > 0  # contact moves toward the low-pressure side
        assert sol.rho_star_l < 1000.0  # rarefied
        assert sol.rho_star_r > 1000.0  # shocked

    def test_sound_speed(self):
        s = RiemannSide(1000.0, 0.0, 100.0, gamma=6.59, pc=4096.0)
        assert s.c == pytest.approx(np.sqrt(6.59 * 4196.0 / 1000.0))

    def test_two_phase_contact(self):
        """Different materials across the interface at equal p, u: the
        solution is a pure (stationary) contact."""
        L = RiemannSide(1000.0, 0.0, 100.0, gamma=6.59, pc=4096.0)
        R = RiemannSide(1.0, 0.0, 100.0, gamma=1.4, pc=1.0)
        sol = solve(L, R)
        assert sol.p_star == pytest.approx(100.0, rel=1e-8)
        assert sol.u_star == pytest.approx(0.0, abs=1e-8)


class TestSampling:
    def test_far_field_states(self):
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        rho, u, p = sample(sol, np.array([-10.0, 10.0]))
        assert rho[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx(0.1)

    def test_star_region(self):
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        # Between tail of the left fan (~ -0.07) and the contact (0.927).
        rho, u, p = sample(sol, np.array([0.5]))
        assert p[0] == pytest.approx(sol.p_star, rel=1e-10)
        assert rho[0] == pytest.approx(sol.rho_star_l, rel=1e-10)

    def test_fan_is_continuous(self):
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        ws = sol.wave_speeds()
        xi = np.linspace(ws["left_head"] - 0.01, ws["left_tail"] + 0.01, 200)
        rho, _, _ = sample(sol, xi)
        assert np.abs(np.diff(rho)).max() < 0.02  # no jumps inside the fan

    def test_shock_is_a_jump(self):
        sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
        s = sol.wave_speeds()["right_head"]
        rho, _, _ = sample(sol, np.array([s - 1e-9, s + 1e-9]))
        assert rho[0] == pytest.approx(sol.rho_star_r)
        assert rho[1] == pytest.approx(0.125)
