"""Property-based kernel tests: seeded-random sweeps over the numerics.

Three kernel-level properties backing the V&V suite
(``docs/validation.md``):

* WENO5 is exact on cell averages of polynomials up to degree 2 (its
  candidate stencils are parabolas, so the nonlinear weights cannot
  break the reproduction of any quadratic);
* on monotone data the reconstruction stays within the local stencil
  data range (no spurious overshoots at the faces);
* the HLLE flux is consistent: ``flux(q, q)`` equals the analytic Euler
  flux for both materials of the paper's two-phase setup.
"""

import numpy as np
import pytest

from repro.physics.eos import LIQUID, VAPOR, conserved_to_primitive
from repro.physics.riemann import hlle_flux
from repro.physics.state import RHOU
from repro.physics.weno import weno5, weno5_fused

from .conftest import (
    exact_flux,
    make_primitive_soa,
    make_rng,
    make_smooth_aos,
)

#: Seeds of the random sweeps (deterministic, via conftest.make_rng).
SWEEP_SEEDS = list(range(25))


def quadratic_cell_averages(a, b, c, n):
    """Cell averages of ``a + b x + c x^2`` over unit cells at 0..n-1.

    The average of ``x^2`` over a unit cell centered at ``i`` is
    ``i^2 + 1/12``.
    """
    i = np.arange(n, dtype=np.float64)
    return a + b * i + c * (i**2 + 1.0 / 12.0)


class TestWeno5PolynomialExactness:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_quadratics_reconstruct_exactly(self, seed):
        """Face values of random degree-<=2 polynomials are exact."""
        rng = make_rng(seed)
        a, b, c = rng.uniform(-5.0, 5.0, size=3)
        n = 20
        avg = quadratic_cell_averages(a, b, c, n)
        minus, plus = weno5(avg)
        # minus[j] / plus[j] are collocated at the face between cells
        # j+2 and j+3, i.e. at x = j + 2.5.
        xf = np.arange(minus.size) + 2.5
        exact = a + b * xf + c * xf**2
        scale = max(1.0, float(np.abs(exact).max()))
        np.testing.assert_allclose(minus, exact, atol=1e-10 * scale)
        np.testing.assert_allclose(plus, exact, atol=1e-10 * scale)

    @pytest.mark.parametrize("seed", SWEEP_SEEDS[:8])
    def test_fused_variant_equally_exact(self, seed):
        rng = make_rng(seed)
        a, b, c = rng.uniform(-5.0, 5.0, size=3)
        avg = quadratic_cell_averages(a, b, c, 20)
        minus, plus = weno5_fused(avg)
        xf = np.arange(minus.size) + 2.5
        exact = a + b * xf + c * xf**2
        scale = max(1.0, float(np.abs(exact).max()))
        np.testing.assert_allclose(minus, exact, atol=1e-10 * scale)
        np.testing.assert_allclose(plus, exact, atol=1e-10 * scale)

    def test_constant_state_is_reproduced_to_roundoff(self):
        minus, plus = weno5(np.full(16, 7.25))
        np.testing.assert_allclose(minus, 7.25, rtol=1e-14)
        np.testing.assert_allclose(plus, 7.25, rtol=1e-14)


class TestWeno5MonotoneBoundedness:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    @pytest.mark.parametrize("direction", [1.0, -1.0],
                             ids=["increasing", "decreasing"])
    def test_reconstruction_within_stencil_range(self, seed, direction):
        """On monotone data every face value stays inside the data range
        of its 6-cell stencil window (ENO property: no overshoot)."""
        rng = make_rng(seed)
        v = direction * np.cumsum(rng.uniform(0.0, 1.0, size=24))
        v += rng.uniform(-5.0, 5.0)
        minus, plus = weno5(v)
        for j in range(minus.size):
            window = v[j:j + 6]
            lo, hi = float(window.min()), float(window.max())
            slack = 1e-12 * max(1.0, float(np.abs(window).max()))
            assert lo - slack <= minus[j] <= hi + slack
            assert lo - slack <= plus[j] <= hi + slack


class TestHlleConsistency:
    #: Physically representative sampling ranges per material.
    RANGES = {
        "liquid": dict(mat=LIQUID, rho=(500.0, 1500.0), p=(1.0, 500.0)),
        "vapor": dict(mat=VAPOR, rho=(0.05, 5.0), p=(0.05, 5.0)),
    }

    @pytest.mark.parametrize("material", sorted(RANGES))
    @pytest.mark.parametrize("seed", SWEEP_SEEDS[:10])
    def test_flux_of_equal_states_is_analytic(self, material, seed):
        """flux(q, q) == analytic flux, vectorized, every normal."""
        spec = self.RANGES[material]
        rng = make_rng(seed)
        n = 16
        W = make_primitive_soa(
            rng.uniform(*spec["rho"], size=n),
            rng.uniform(-20.0, 20.0, size=n),
            rng.uniform(-20.0, 20.0, size=n),
            rng.uniform(-20.0, 20.0, size=n),
            rng.uniform(*spec["p"], size=n),
            mat=spec["mat"], shape=(n,),
        )
        for normal in range(3):
            flux, ustar = hlle_flux(W.copy(), W.copy(), normal)
            np.testing.assert_allclose(
                flux, exact_flux(W, normal), rtol=1e-10, atol=1e-10
            )
            np.testing.assert_allclose(ustar, W[RHOU + normal], rtol=1e-12)

    def test_consistency_on_smooth_physical_states(self, rng):
        """Same consistency property on a smooth admissible AoS state
        (the shared conftest fixture used by the kernel tests)."""
        aos = make_smooth_aos((6, 6, 6), rng)
        W = conserved_to_primitive(np.moveaxis(aos, -1, 0))
        pencil = np.ascontiguousarray(W[:, 3, 3, :])
        flux, ustar = hlle_flux(pencil.copy(), pencil.copy(), 2)
        np.testing.assert_allclose(
            flux, exact_flux(pencil, 2), rtol=1e-10, atol=1e-8
        )
        np.testing.assert_allclose(ustar, pencil[RHOU + 2], rtol=1e-12)
