"""Tests for the machine specifications (repro.perf.machines)."""

import pytest

from repro.perf.machines import (
    BGQ_NODE,
    JUQUEEN,
    MONTE_ROSA_NODE,
    PIZ_DAINT_NODE,
    SEQUOIA,
    ZRL,
    MachineSpec,
    bqc_table,
    machines_table,
)


class TestBqcNode:
    def test_peak_derivation(self):
        # 16 cores x 1.6 GHz x 4-wide QPX x 2 (FMA) = 204.8 GFLOP/s.
        assert BGQ_NODE.peak_gflops == pytest.approx(204.8)

    def test_per_core_peak(self):
        assert BGQ_NODE.peak_per_core_gflops == pytest.approx(12.8)

    def test_scalar_peak(self):
        assert BGQ_NODE.scalar_peak_per_core_gflops == pytest.approx(3.2)

    def test_ridge_point(self):
        # Paper Section 4: "kernels that exhibit operational intensities
        # higher than 7.3 FLOP/off-chip Byte are compute-bound".
        assert BGQ_NODE.ridge_point == pytest.approx(7.3, abs=0.05)

    def test_bandwidths(self):
        assert BGQ_NODE.dram_bw_gbs == 28.0
        assert BGQ_NODE.l2_bw_gbs == 185.0


class TestInstallations:
    def test_sequoia_table1(self):
        assert SEQUOIA.racks == 96
        assert SEQUOIA.cores == pytest.approx(1.6e6, rel=0.02)
        assert SEQUOIA.peak_pflops == pytest.approx(20.1, rel=0.01)

    def test_juqueen_zrl(self):
        assert JUQUEEN.peak_pflops == pytest.approx(5.0, rel=0.01)
        assert ZRL.peak_pflops == pytest.approx(0.2, rel=0.05)

    def test_rack_peak(self):
        # "a rack, with a nominal compute performance of 0.21 PFLOP/s".
        assert SEQUOIA.with_racks(1).peak_pflops == pytest.approx(0.21, rel=0.01)

    def test_with_racks_preserves_node(self):
        sub = SEQUOIA.with_racks(24)
        assert sub.node is SEQUOIA.node
        assert sub.nodes == 24 * 1024


class TestCSCSNodes:
    def test_monte_rosa(self):
        assert MONTE_ROSA_NODE.peak_gflops == 540.0
        assert MONTE_ROSA_NODE.ridge_point == pytest.approx(9.0)

    def test_piz_daint(self):
        assert PIZ_DAINT_NODE.peak_gflops == 670.0
        assert PIZ_DAINT_NODE.ridge_point == pytest.approx(8.4, abs=0.03)

    def test_sse_port_utilization(self):
        assert PIZ_DAINT_NODE.simd_utilization == pytest.approx(0.5)


class TestTables:
    def test_table1_rows(self):
        rows = machines_table()
        assert [r["Name"] for r in rows] == ["Sequoia", "Juqueen", "ZRL"]
        assert rows[0]["PFLOP/s"] == 20.1

    def test_table2_entries(self):
        t = bqc_table()
        assert "204.8" in t["Peak performance"]
        assert "185" in t["L2 peak bandwidth"]
        assert "28" in t["Memory peak bandwidth"]


class TestMachineSpec:
    def test_explicit_peak_override(self):
        m = MachineSpec(
            name="x", cores=4, threads_per_core=1, freq_ghz=1.0,
            simd_width=2, fma=True, dram_bw_gbs=10.0,
            explicit_peak_gflops=123.0,
        )
        assert m.peak_gflops == 123.0

    def test_no_fma_halves_peak(self):
        a = MachineSpec("a", 1, 1, 1.0, 4, True, 1.0)
        b = MachineSpec("b", 1, 1, 1.0, 4, False, 1.0)
        assert a.peak_gflops == 2 * b.peak_gflops
