"""Unit tests for the WENO5 reconstruction (repro.physics.weno)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.weno import (
    Weno5Workspace,
    weno5,
    weno5_faces_scalar,
    weno5_fused,
)

from .conftest import make_rng


def _faces_count(m):
    return m - 5


class TestBasics:
    def test_output_shape(self, rng):
        v = rng.normal(size=(3, 4, 20))
        minus, plus = weno5(v)
        assert minus.shape == (3, 4, 15)
        assert plus.shape == (3, 4, 15)

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="at least 6"):
            weno5(np.zeros(5))

    def test_constant_reproduced_exactly(self):
        v = np.full(20, 3.7)
        minus, plus = weno5(v)
        np.testing.assert_allclose(minus, 3.7, rtol=1e-14)
        np.testing.assert_allclose(plus, 3.7, rtol=1e-14)

    def test_scalar_crosscheck(self, rng):
        v = rng.normal(size=11)
        minus, _ = weno5(v)
        for j in range(_faces_count(11)):
            assert minus[j] == pytest.approx(weno5_faces_scalar(v[j : j + 5]))

    def test_minus_plus_mirror_symmetry(self, rng):
        """Reversing the data swaps the roles of minus and plus."""
        v = rng.normal(size=16)
        minus, plus = weno5(v)
        minus_r, plus_r = weno5(v[::-1].copy())
        np.testing.assert_allclose(minus, plus_r[::-1], rtol=1e-13)
        np.testing.assert_allclose(plus, minus_r[::-1], rtol=1e-13)


class TestAccuracy:
    def test_smooth_fifth_order(self):
        """Face reconstruction error of sin(x) shrinks ~2^5 per refinement."""
        errs = []
        for n in (16, 32, 64):
            x = np.linspace(0.0, 1.0, n, endpoint=False)
            h = x[1] - x[0]
            # cell averages of sin(2 pi x) over [x, x+h]
            a = (np.cos(2 * np.pi * x) - np.cos(2 * np.pi * (x + h))) / (2 * np.pi * h)
            minus, _ = weno5(a)
            faces = x[2:-3] + h  # face right of cell j+2
            exact = np.sin(2 * np.pi * faces)
            errs.append(np.abs(minus - exact).max())
        order1 = np.log2(errs[0] / errs[1])
        order2 = np.log2(errs[1] / errs[2])
        assert order1 > 4.0
        assert order2 > 4.0

    def test_essentially_non_oscillatory(self):
        """Across a step, reconstructed values stay within data bounds."""
        v = np.where(np.arange(30) < 15, 1.0, 10.0)
        minus, plus = weno5(v.astype(float))
        eps = 1e-6
        assert minus.min() >= 1.0 - eps and minus.max() <= 10.0 + eps
        assert plus.min() >= 1.0 - eps and plus.max() <= 10.0 + eps


class TestFused:
    def test_matches_baseline(self, rng):
        v = rng.normal(size=(5, 18)) * 100.0
        m0, p0 = weno5(v)
        m1, p1 = weno5_fused(v)
        np.testing.assert_allclose(m1, m0, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(p1, p0, rtol=1e-12, atol=1e-12)

    def test_workspace_reuse(self, rng):
        v = rng.normal(size=(4, 4, 12))
        ws = Weno5Workspace((4, 4, 7), dtype=v.dtype)
        out_m = np.empty((4, 4, 7))
        out_p = np.empty((4, 4, 7))
        m1, p1 = weno5_fused(v, ws, out_m, out_p)
        assert m1 is out_m and p1 is out_p
        m0, p0 = weno5(v)
        np.testing.assert_allclose(m1, m0, rtol=1e-12)
        # Second call with different data must not leak state.
        v2 = rng.normal(size=(4, 4, 12))
        m2, _ = weno5_fused(v2, ws, out_m, out_p)
        np.testing.assert_allclose(m2, weno5(v2)[0], rtol=1e-12)

    def test_wrong_workspace_shape_recovers(self, rng):
        v = rng.normal(size=(2, 14))
        ws = Weno5Workspace((99,))
        m1, _ = weno5_fused(v, ws)
        np.testing.assert_allclose(m1, weno5(v)[0], rtol=1e-12)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            weno5_fused(np.zeros(4))

    @given(seed=st.integers(0, 2**31), m=st.integers(6, 40))
    @settings(max_examples=40, deadline=None)
    def test_agreement_property(self, seed, m):
        v = make_rng(seed).normal(size=m) * 10.0
        m0, p0 = weno5(v)
        m1, p1 = weno5_fused(v)
        np.testing.assert_allclose(m1, m0, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(p1, p0, rtol=1e-10, atol=1e-10)


class TestBoundsProperty:
    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_bounded_by_data_range(self, seed):
        """WENO5 face values stay within a modest inflation of the local
        stencil range (convex combination of three parabolas)."""
        v = make_rng(seed).uniform(-5, 5, size=20)
        minus, plus = weno5(v)
        # Candidate polynomials can overshoot the cell range by at most
        # the extrapolation factor of the parabola coefficients (~2.4x).
        span = v.max() - v.min()
        lo, hi = v.min() - 2.5 * span, v.max() + 2.5 * span
        assert (minus >= lo).all() and (minus <= hi).all()
        assert (plus >= lo).all() and (plus <= hi).all()
