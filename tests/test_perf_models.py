"""Tests for the performance models against the paper's measurements.

These assert the *shapes* the reproduction must preserve: who wins, by
roughly what factor, and where bounds sit.  Exact paper values are
annotated; the models must land within the stated windows.
"""

import numpy as np
import pytest

from repro.perf.issue import rhs_issue_bound_fraction, rhs_issue_bounds
from repro.perf.kernels import DT, FWT, RHS, RHS_STAGES, UP, flops_per_cell_step
from repro.perf.machines import BGQ_NODE, SEQUOIA, MachineSpec
from repro.perf.report import compare_row, format_table
from repro.perf.roofline import attainable, example_from_paper, roofline_curve
from repro.perf.scaling import (
    cluster_perf,
    core_perf,
    fig9_weak_scaling,
    node_perf,
    overall_perf,
    table5,
    table6,
    table7,
    table9,
    table10,
    throughput_cells_per_second,
    time_per_step,
)
from repro.perf.traffic import table3


class TestRoofline:
    def test_paper_example(self):
        # Section 2: min(200, 0.1 * 30) = 3 GFLOP/s.
        assert example_from_paper() == pytest.approx(3.0)

    def test_compute_bound_caps_at_peak(self):
        assert attainable(BGQ_NODE, 100.0) == BGQ_NODE.peak_gflops

    def test_memory_bound_linear(self):
        assert attainable(BGQ_NODE, 1.0) == pytest.approx(28.0)

    def test_curve_monotone(self):
        oi, perf = roofline_curve(BGQ_NODE)
        assert (np.diff(perf) >= -1e-9).all()

    def test_negative_oi_raises(self):
        with pytest.raises(ValueError):
            attainable(BGQ_NODE, -1.0)


class TestTable3:
    def test_operational_intensities_near_paper(self):
        est = {e.kernel: e for e in table3()}
        # Paper: RHS 1.4 -> 21 FLOP/B; DT 1.3 -> 5.1; UP 0.2 -> 0.2.
        assert est["RHS"].naive_oi == pytest.approx(1.4, rel=0.25)
        assert est["RHS"].reordered_oi == pytest.approx(21.0, rel=0.15)
        assert est["DT"].naive_oi == pytest.approx(1.3, rel=0.1)
        assert est["DT"].reordered_oi == pytest.approx(5.1, rel=0.1)
        assert est["UP"].naive_oi == pytest.approx(0.2, rel=0.05)

    def test_gain_factors(self):
        est = {e.kernel: e for e in table3()}
        # Paper factors: 15x, 3.9x, 1x.
        assert est["RHS"].gain == pytest.approx(15.0, rel=0.15)
        assert est["DT"].gain == pytest.approx(3.9, rel=0.1)
        assert est["UP"].gain == 1.0

    def test_reordered_rhs_compute_bound(self):
        est = {e.kernel: e for e in table3()}
        assert est["RHS"].reordered_oi > BGQ_NODE.ridge_point
        assert est["RHS"].naive_oi < BGQ_NODE.ridge_point
        assert est["UP"].reordered_oi < BGQ_NODE.ridge_point


class TestTable8:
    def test_stage_bounds_match_paper(self):
        rows = {b.stage: b for b in rhs_issue_bounds()}
        # Paper Table 8: CONV 55 %, WENO 78 %, HLLE 65 %, SUM 61 %, BACK 64 %.
        assert rows["CONV"].peak_fraction == pytest.approx(0.55, abs=0.005)
        assert rows["WENO"].peak_fraction == pytest.approx(0.78, abs=0.005)
        assert rows["HLLE"].peak_fraction == pytest.approx(0.65, abs=0.005)
        assert rows["SUM"].peak_fraction == pytest.approx(0.61, abs=0.005)
        assert rows["BACK"].peak_fraction == pytest.approx(0.64, abs=0.005)

    def test_all_bound_is_76_percent(self):
        assert rhs_issue_bound_fraction() == pytest.approx(0.755, abs=0.01)

    def test_weno_dominates_instruction_mix(self):
        weights = {s.name: s.weight for s in RHS_STAGES}
        assert weights["WENO"] == max(weights.values())
        assert weights["WENO"] > 0.8


class TestTable7CoreLayer:
    def test_qpx_rhs_near_paper(self):
        perf = core_perf(RHS, vectorized=True)
        assert perf.gflops == pytest.approx(8.27, rel=0.03)
        assert perf.peak_fraction == pytest.approx(0.65, abs=0.02)

    def test_scalar_rhs(self):
        assert core_perf(RHS, vectorized=False).gflops == pytest.approx(
            2.21, rel=0.03
        )

    def test_improvements(self):
        rows = {r["kernel"]: r for r in table7()}
        # Paper: 3.7X RHS, 2.2X DT, ~1X UP, 3.2X FWT.
        assert rows["RHS"]["Improvement"] == pytest.approx(3.7, rel=0.05)
        assert rows["DT"]["Improvement"] == pytest.approx(2.2, rel=0.05)
        assert rows["UP"]["Improvement"] == pytest.approx(1.0, rel=0.1)
        assert rows["FWT"]["Improvement"] == pytest.approx(3.2, rel=0.05)

    def test_up_is_bandwidth_bound(self):
        """UP must not benefit from vectorization (the Table 7 signature
        of a memory-bound kernel)."""
        scalar = core_perf(UP, vectorized=False).gflops
        qpx = core_perf(UP, vectorized=True).gflops
        assert qpx == pytest.approx(scalar, rel=0.1)


class TestTables5and6:
    def test_rhs_column(self):
        rows = {r["racks"]: r for r in table5()}
        # Paper: 60 / 57 / 55 %.
        assert rows[1]["RHS [%]"] == pytest.approx(60.0, abs=1.5)
        assert rows[24]["RHS [%]"] == pytest.approx(57.0, abs=1.5)
        assert rows[96]["RHS [%]"] == pytest.approx(55.0, abs=1.5)

    def test_96_rack_pflops(self):
        rows = {r["racks"]: r for r in table5()}
        # Paper: RHS 10.99 PFLOP/s, ALL 10.14 PFLOP/s.
        assert rows[96]["RHS [PFLOP/s]"] == pytest.approx(10.99, rel=0.05)
        assert rows[96]["ALL [PFLOP/s]"] == pytest.approx(10.14, rel=0.10)

    def test_overall_fraction_around_half_peak(self):
        # Paper: ALL 53 / 51 / 50 %; the model lands within ~10 %.
        for racks, paper in ((1, 53.0), (24, 51.0), (96, 50.0)):
            model = 100.0 * overall_perf(racks).peak_fraction
            assert model == pytest.approx(paper, rel=0.12)

    def test_monotone_degradation(self):
        fr = [cluster_perf(RHS, r).peak_fraction for r in (1, 24, 96)]
        assert fr[0] > fr[1] > fr[2]

    def test_node_beats_rack(self):
        rows = table6()
        rack = next(r for r in rows if r["scope"] == "1 rack")
        node = next(r for r in rows if r["scope"] == "1 node")
        assert node["RHS [%]"] > rack["RHS [%]"]
        # DT collapses at cluster scope (global reduction): 18 % -> 7 %.
        assert node["DT [%]"] == pytest.approx(18.0, abs=1.5)
        assert rack["DT [%]"] == pytest.approx(7.0, abs=1.0)


class TestTable9:
    def test_fusion_gains(self):
        t = table9()
        # Paper: 7.9 -> 9.2 GFLOP/s (62 % -> 72 %), 1.2X rate, 1.3X time.
        assert t["baseline_gflops"] == pytest.approx(7.9, rel=0.02)
        assert t["fused_gflops"] == pytest.approx(9.2, rel=0.02)
        assert t["gflops_improvement"] == pytest.approx(1.16, abs=0.05)
        assert t["time_improvement"] == pytest.approx(1.3, abs=0.05)


class TestTable10:
    def test_cscs_fractions(self):
        rows = {r["machine"]: r for r in table10()}
        pd = rows["Cray XC30 (Piz Daint)"]
        mr = rows["Cray XE6 (Monte Rosa)"]
        # Paper: PD 269 GF (40 %), MR 201 GF (37 %).
        assert pd["RHS [GFLOP/s]"] == pytest.approx(269.0, rel=0.08)
        assert mr["RHS [GFLOP/s]"] == pytest.approx(201.0, rel=0.05)
        assert pd["UP [%]"] == pytest.approx(2.0, abs=0.5)
        assert mr["DT [GFLOP/s]"] == pytest.approx(86.0, rel=0.1)


class TestThroughput:
    def test_cells_per_second(self):
        # Paper: 721e9 cells/s on 96 racks.
        assert throughput_cells_per_second(96) == pytest.approx(
            721e9, rel=0.05
        )

    def test_step_time(self):
        # Paper: 18.3 s per step for 13.2e12 cells.
        assert time_per_step(13.2e12, 96) == pytest.approx(18.3, rel=0.05)

    def test_flops_accounting_consistent(self):
        """The 96-rack model must tie its own numbers together:
        ALL PFLOP/s == flops/cell/step * cells/s."""
        pflops = overall_perf(96).gflops / 1e6
        cells = throughput_cells_per_second(96)
        implied = flops_per_cell_step() * cells / 1e15
        # FWT contributes flops but no step time; exclude it.
        step_flops = sum(k.flops_per_cell_step() for k in (RHS, DT, UP))
        implied = step_flops * cells / 1e15
        assert implied == pytest.approx(pflops, rel=1e-6)


class TestFig9:
    def test_scaling_monotone(self):
        rows = fig9_weak_scaling()
        for kernel in ("RHS", "DT", "UP"):
            vals = [r[kernel] for r in rows]
            assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_up_saturates_rhs_does_not(self):
        rows = fig9_weak_scaling()
        first, last = rows[0], rows[-1]
        rhs_speedup = last["RHS"] / first["RHS"]
        up_speedup = last["UP"] / first["UP"]
        assert up_speedup < rhs_speedup / 1.5  # UP hits the bandwidth wall

    def test_full_node_near_table6(self):
        rows = fig9_weak_scaling()
        full = rows[-1]
        assert full["RHS"] / BGQ_NODE.peak_gflops == pytest.approx(
            0.62, abs=0.02
        )


class TestReport:
    def test_format_table_alignment(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}], "T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_heterogeneous_rows_union_columns(self):
        # The telemetry scorecard mixes phase rows and summary rows with
        # different keys: columns are the union in first-seen order and
        # missing cells render blank.
        out = format_table([
            {"phase": "RHS", "seconds": 1.5},
            {"phase": "throughput", "Gcells/s": 0.75},
        ])
        lines = out.splitlines()
        header = lines[0]
        assert header.index("phase") < header.index("seconds")
        assert header.index("seconds") < header.index("Gcells/s")
        assert "1.50" in lines[2] and "Gcells/s" not in lines[2]
        assert "0.75" in lines[3] and "seconds" not in lines[3]
        # the blank fill keeps every row aligned to the header width
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_compare_row(self):
        row = compare_row("x", paper=10.0, model=11.0)
        assert row["deviation [%]"] == pytest.approx(10.0)

    def test_empty_table(self):
        assert "empty" in format_table([])
