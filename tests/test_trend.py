"""Tests of the perf-trajectory provenance, history and regression gate."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.telemetry import trend

REPO_ROOT = Path(__file__).resolve().parents[1]


def fresh_record(rhs=0.002, weno5=0.004):
    return {
        "schema": trend.KERNEL_SCHEMA_V2,
        "provenance": trend.provenance(),
        "kernels": {
            "rhs": {"wall_s": 0.1, "gcells_per_s": rhs},
            "weno5": {"wall_s": 0.05, "gcells_per_s": weno5},
        },
    }


# -- provenance -----------------------------------------------------------


def test_provenance_block_has_the_required_keys():
    prov = trend.provenance()
    assert set(prov) == {"host", "git_sha", "timestamp", "python", "numpy"}
    assert len(prov["host"]) == 12
    assert int(prov["host"], 16) >= 0  # hex fingerprint
    assert prov["timestamp"].startswith("20")
    assert "+00:00" in prov["timestamp"]  # UTC, ISO 8601


def test_host_fingerprint_is_stable_within_a_process():
    assert trend.host_fingerprint() == trend.host_fingerprint()


def test_git_sha_of_this_repo_and_of_a_gitless_dir(tmp_path):
    sha = trend.git_sha(REPO_ROOT)
    assert len(sha) == 40 and int(sha, 16) >= 0
    assert trend.git_sha(tmp_path) == "unknown"


def test_stamp_upgrades_v1_and_preserves_existing_provenance():
    v1 = {"schema": trend.KERNEL_SCHEMA_V1,
          "kernels": {"rhs": {"gcells_per_s": 1.0}}}
    out = trend.stamp(v1)
    assert out["schema"] == trend.KERNEL_SCHEMA_V2
    assert "provenance" in out
    assert "provenance" not in v1  # original untouched
    marked = fresh_record()
    marked["provenance"]["git_sha"] = "cafebabe"
    assert trend.stamp(marked)["provenance"]["git_sha"] == "cafebabe"


# -- record / history round-trip ------------------------------------------


def test_load_record_validates_schema_and_kernels(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(fresh_record()))
    assert "rhs" in trend.load_record(good)["kernels"]

    bad_schema = tmp_path / "bad1.json"
    bad_schema.write_text(json.dumps({"schema": "nope/v0", "kernels": {}}))
    with pytest.raises(ValueError, match="unknown bench schema"):
        trend.load_record(bad_schema)

    no_prov = tmp_path / "bad2.json"
    no_prov.write_text(json.dumps({"schema": trend.KERNEL_SCHEMA_V2,
                                   "kernels": {"rhs": {}}}))
    with pytest.raises(ValueError, match="provenance"):
        trend.load_record(no_prov)

    empty = tmp_path / "bad3.json"
    empty.write_text(json.dumps({"schema": trend.KERNEL_SCHEMA_V1,
                                 "kernels": {}}))
    with pytest.raises(ValueError, match="no kernel timings"):
        trend.load_record(empty)


def test_append_and_load_history_round_trip(tmp_path):
    path = tmp_path / "hist.jsonl"
    trend.append_history(fresh_record(rhs=0.002), path)
    trend.append_history(fresh_record(rhs=0.003), path)
    history = trend.load_history(path)
    assert len(history) == 2
    assert all(r["schema"] == trend.KERNEL_SCHEMA_V2 for r in history)
    assert history[1]["kernels"]["rhs"]["gcells_per_s"] == 0.003
    # Append-only: a third append leaves the first two lines untouched.
    before = path.read_text().splitlines()
    trend.append_history(fresh_record(), path)
    assert path.read_text().splitlines()[:2] == before


def test_load_history_skips_blanks_and_rejects_garbage(tmp_path):
    path = tmp_path / "hist.jsonl"
    line = json.dumps(trend.stamp(fresh_record()))
    path.write_text(line + "\n\n" + line + "\n")
    assert len(trend.load_history(path)) == 2
    path.write_text(line + "\n" + json.dumps({"schema": "x"}) + "\n")
    with pytest.raises(ValueError, match=":2"):
        trend.load_history(path)


def test_trajectory_takes_per_kernel_best_and_prefers_same_host():
    a, b = fresh_record(rhs=0.002), fresh_record(rhs=0.004)
    b["provenance"] = dict(b["provenance"], host="ffffffffffff")
    best = trend.trajectory([a, b])
    assert best["rhs"] == 0.004  # all hosts: global best
    same = trend.trajectory([a, b], host=a["provenance"]["host"])
    assert same["rhs"] == 0.002  # host-matched subset wins
    # Unknown host falls back to the full history.
    assert trend.trajectory([a, b], host="000000000000")["rhs"] == 0.004


# -- the regression gate --------------------------------------------------


def test_check_trend_passes_against_its_own_history():
    rec = fresh_record()
    report = trend.check_trend(rec, [rec])
    assert report.passed
    assert report.regressions() == []
    assert all(r["ratio"] == pytest.approx(1.0) for r in report.rows)


def test_check_trend_fails_a_synthetic_2x_slowdown():
    base = fresh_record(rhs=0.002, weno5=0.004)
    slow = copy.deepcopy(base)
    slow["kernels"]["rhs"]["gcells_per_s"] = 0.001  # 2x slower
    report = trend.check_trend(slow, [base], tolerance=0.5)
    assert not report.passed
    bad = report.regressions()
    assert [r["kernel"] for r in bad] == ["rhs"]
    assert bad[0]["ratio"] == pytest.approx(0.5)
    assert "below" in bad[0]["note"]
    assert "REGRESSION" in report.format()


def test_check_trend_tolerance_sets_the_floor():
    base = fresh_record(rhs=0.002)
    slow = copy.deepcopy(base)
    slow["kernels"]["rhs"]["gcells_per_s"] = 0.001
    assert trend.check_trend(slow, [base], tolerance=1.0).passed
    assert not trend.check_trend(slow, [base], tolerance=0.5).passed
    with pytest.raises(ValueError, match="tolerance"):
        trend.check_trend(slow, [base], tolerance=-0.1)


def test_check_trend_new_kernel_passes_with_a_note():
    base = fresh_record()
    rec = copy.deepcopy(base)
    rec["kernels"]["hlle"] = {"gcells_per_s": 0.01}
    report = trend.check_trend(rec, [base])
    assert report.passed
    note = {r["kernel"]: r["note"] for r in report.rows}
    assert note["hlle"] == "no baseline (new kernel)"


def test_check_trend_uses_host_matched_baseline():
    # The same host once ran rhs at 0.002; some other (faster) machine
    # committed 0.008.  Measuring 0.002 again must PASS -- gating a
    # laptop against a server's baseline would always be red.
    mine = fresh_record(rhs=0.002)
    theirs = fresh_record(rhs=0.008)
    theirs["provenance"] = dict(theirs["provenance"], host="ffffffffffff")
    report = trend.check_trend(mine, [mine, theirs], tolerance=0.5)
    assert report.passed


# -- CLI entry point ------------------------------------------------------


def run_main(*argv):
    return trend.main(list(argv))


def test_main_requires_an_action(tmp_path, capsys):
    assert run_main("--record", str(tmp_path / "r.json")) == 2
    assert "nothing to do" in capsys.readouterr().err


def test_main_check_passes_and_appends(tmp_path, capsys):
    rec_path = tmp_path / "r.json"
    rec_path.write_text(json.dumps(fresh_record()))
    hist = tmp_path / "h.jsonl"
    trend.append_history(fresh_record(), hist)
    code = run_main("--record", str(rec_path), "--history", str(hist),
                    "--check", "--append")
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out and "appended" in out
    assert len(trend.load_history(hist)) == 2


def test_main_check_exits_1_on_regression(tmp_path, capsys):
    base = fresh_record(rhs=0.002)
    slow = copy.deepcopy(base)
    slow["kernels"]["rhs"]["gcells_per_s"] = 0.001
    rec_path = tmp_path / "r.json"
    rec_path.write_text(json.dumps(slow))
    hist = tmp_path / "h.jsonl"
    trend.append_history(base, hist)
    code = run_main("--record", str(rec_path), "--history", str(hist),
                    "--check")
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_main_missing_record_or_history_is_exit_2(tmp_path, capsys):
    assert run_main("--record", str(tmp_path / "nope.json"), "--check") == 2
    assert "cannot load record" in capsys.readouterr().err
    rec_path = tmp_path / "r.json"
    rec_path.write_text(json.dumps(fresh_record()))
    assert run_main("--record", str(rec_path),
                    "--history", str(tmp_path / "nope.jsonl"),
                    "--check") == 2
    assert "cannot load history" in capsys.readouterr().err


def test_module_dispatch_routes_trend(capsys):
    from repro.telemetry.__main__ import main as module_main

    assert module_main(["trend"]) == 2  # no action -> usage error
    assert "nothing to do" in capsys.readouterr().err
    assert module_main(["no-such-command"]) == 2
    assert module_main(["--help"]) == 0
    assert "trend" in capsys.readouterr().out


# -- committed artifacts drift tests --------------------------------------


def test_committed_bench_record_is_v2_with_provenance():
    record = trend.load_record(REPO_ROOT / "BENCH_kernels.json")
    assert record["schema"] == trend.KERNEL_SCHEMA_V2
    prov = record["provenance"]
    assert set(prov) >= {"host", "git_sha", "timestamp", "python", "numpy"}
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_throughput import KERNEL_BENCH_CASES
    finally:
        sys.path.remove(str(REPO_ROOT / "benchmarks"))
    assert set(record["kernels"]) == set(KERNEL_BENCH_CASES)
    for row in record["kernels"].values():
        assert row["gcells_per_s"] > 0.0
        assert row["wall_s"] > 0.0


def test_committed_history_loads_and_gates_the_committed_record():
    history = trend.load_history(REPO_ROOT / "BENCH_history.jsonl")
    assert history, "BENCH_history.jsonl must hold >= 1 record"
    record = trend.load_record(REPO_ROOT / "BENCH_kernels.json")
    report = trend.check_trend(record, history)
    assert report.passed, report.format()
