"""Unit tests for the HLLE flux (repro.physics.riemann)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.eos import LIQUID, VAPOR, sound_speed
from repro.physics.riemann import einfeldt_wave_speeds, hlle_flux
from repro.physics.state import ENERGY, RHO, RHOU

from .conftest import exact_flux, make_primitive_soa as make_state


class TestWaveSpeeds:
    def test_ordering(self):
        s_l, s_r = einfeldt_wave_speeds(
            1000.0, 5.0, 100.0, LIQUID.G, LIQUID.P,
            900.0, -3.0, 120.0, LIQUID.G, LIQUID.P,
        )
        assert s_l < s_r

    def test_symmetric_states(self):
        c = sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P)
        s_l, s_r = einfeldt_wave_speeds(
            1000.0, 0.0, 100.0, LIQUID.G, LIQUID.P,
            1000.0, 0.0, 100.0, LIQUID.G, LIQUID.P,
        )
        assert s_l == pytest.approx(-float(c))
        assert s_r == pytest.approx(float(c))


class TestConsistency:
    @pytest.mark.parametrize("normal", [0, 1, 2])
    def test_equal_states_give_exact_flux(self, normal):
        W = make_state(1000.0, 3.0, -2.0, 1.0, 100.0)
        flux, ustar = hlle_flux(W.copy(), W.copy(), normal)
        np.testing.assert_allclose(flux, exact_flux(W, normal), rtol=1e-12)
        assert ustar == pytest.approx(W[RHOU + normal])

    @given(
        rho=st.floats(1.0, 2000.0), un=st.floats(-20, 20),
        p=st.floats(0.1, 1000.0), normal=st.integers(0, 2),
    )
    @settings(max_examples=50, deadline=None)
    def test_consistency_property(self, rho, un, p, normal):
        vel = [0.0, 0.0, 0.0]
        vel[normal] = un
        W = make_state(rho, *vel, p)
        flux, _ = hlle_flux(W.copy(), W.copy(), normal)
        np.testing.assert_allclose(
            flux, exact_flux(W, normal), rtol=1e-10, atol=1e-10
        )


class TestUpwinding:
    def test_supersonic_right_takes_left_flux(self):
        # Fast rightward vapor flow: both wave speeds positive.
        Wl = make_state(1.0, 50.0, 0.0, 0.0, 1.0, VAPOR)
        Wr = make_state(0.5, 60.0, 0.0, 0.0, 0.5, VAPOR)
        flux, ustar = hlle_flux(Wl, Wr, 0)
        np.testing.assert_allclose(flux, exact_flux(Wl, 0), rtol=1e-12)
        assert ustar == pytest.approx(50.0)

    def test_supersonic_left_takes_right_flux(self):
        Wl = make_state(1.0, -60.0, 0.0, 0.0, 1.0, VAPOR)
        Wr = make_state(0.5, -50.0, 0.0, 0.0, 0.5, VAPOR)
        flux, ustar = hlle_flux(Wl, Wr, 0)
        np.testing.assert_allclose(flux, exact_flux(Wr, 0), rtol=1e-12)
        assert ustar == pytest.approx(-50.0)


class TestSymmetry:
    def test_mirror_antisymmetry_mass_flux(self):
        """Swapping states and flipping velocities negates the mass flux."""
        Wl = make_state(1000.0, 4.0, 0.0, 0.0, 120.0)
        Wr = make_state(800.0, -1.0, 0.0, 0.0, 90.0)
        f1, _ = hlle_flux(Wl.copy(), Wr.copy(), 0)
        Wl2 = Wr.copy()
        Wl2[RHOU] *= -1
        Wr2 = Wl.copy()
        Wr2[RHOU] *= -1
        f2, _ = hlle_flux(Wl2, Wr2, 0)
        assert f2[RHO] == pytest.approx(-f1[RHO], rel=1e-12)
        assert f2[ENERGY] == pytest.approx(-f1[ENERGY], rel=1e-12)
        assert f2[RHOU] == pytest.approx(f1[RHOU], rel=1e-12)

    def test_stationary_contact_zero_mass_flux(self):
        """A stationary material interface at equal p, u = 0 transports
        nothing through the conserved fluxes except pressure."""
        Wl = make_state(1000.0, 0.0, 0.0, 0.0, 100.0, LIQUID)
        Wr = make_state(1.0, 0.0, 0.0, 0.0, 100.0, VAPOR)
        flux, ustar = hlle_flux(Wl, Wr, 0)
        # HLLE smears contacts, but the pressure term must dominate and
        # the interface velocity must vanish by symmetry of the formula
        # only when wave speeds balance; at minimum it is bounded by the
        # acoustic velocities.
        c = max(
            float(sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P)),
            float(sound_speed(1.0, 100.0, VAPOR.G, VAPOR.P)),
        )
        assert abs(float(ustar)) <= c
        assert flux[RHOU] == pytest.approx(100.0, rel=0.2)

    def test_vectorized_matches_scalar(self, rng):
        Wl = make_state(
            rng.uniform(500, 1500, (8,)), rng.uniform(-5, 5, (8,)),
            rng.uniform(-5, 5, (8,)), rng.uniform(-5, 5, (8,)),
            rng.uniform(50, 150, (8,)), shape=(8,),
        )
        Wr = make_state(
            rng.uniform(500, 1500, (8,)), rng.uniform(-5, 5, (8,)),
            rng.uniform(-5, 5, (8,)), rng.uniform(-5, 5, (8,)),
            rng.uniform(50, 150, (8,)), shape=(8,),
        )
        flux, ustar = hlle_flux(Wl, Wr, 1)
        for i in range(8):
            f_i, us_i = hlle_flux(
                np.ascontiguousarray(Wl[:, i]), np.ascontiguousarray(Wr[:, i]), 1
            )
            np.testing.assert_allclose(flux[:, i], f_i, rtol=1e-13)
            assert ustar[i] == pytest.approx(float(us_i))
