"""Tests for the interpolating wavelet transform (repro.compression.wavelet)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.wavelet import (
    PREDICT_GAIN,
    detail_mask,
    fwt1d_level,
    fwt3d,
    iwt1d_level,
    iwt3d,
    iwt3d_abs,
    level_of_coefficient,
    max_levels,
)

from .conftest import make_rng


class TestMaxLevels:
    @pytest.mark.parametrize("n,expected", [(8, 1), (16, 2), (32, 3), (64, 4),
                                            (7, 0), (12, 1), (24, 2), (4, 0)])
    def test_values(self, n, expected):
        assert max_levels(n) == expected


class Test1D:
    def test_roundtrip_exact(self, rng):
        x = rng.normal(size=(5, 32))
        np.testing.assert_allclose(iwt1d_level(fwt1d_level(x)), x, rtol=1e-13)

    def test_layout(self, rng):
        x = rng.normal(size=16)
        c = fwt1d_level(x)
        np.testing.assert_array_equal(c[:8], x[0::2])  # scaling = evens

    def test_cubic_annihilation_interior(self):
        """Interior details of a cubic signal vanish (4th-order predict)."""
        x = np.arange(32.0)
        poly = 0.5 * x**3 - 2 * x**2 + x - 7
        c = fwt1d_level(poly)
        details = c[16:]
        # All but the last (mirror-stencil) detail must vanish.
        np.testing.assert_allclose(details[:-1], 0.0, atol=1e-9)

    def test_constant_annihilation_everywhere(self):
        c = fwt1d_level(np.full(16, 3.3))
        np.testing.assert_allclose(c[8:], 0.0, atol=1e-12)

    def test_odd_length_raises(self):
        with pytest.raises(ValueError):
            fwt1d_level(np.zeros(15))

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            fwt1d_level(np.zeros(6))

    def test_predict_gain_constant(self):
        assert PREDICT_GAIN == pytest.approx(1.25)


class Test3D:
    def test_roundtrip_float64(self, rng):
        x = rng.normal(size=(16, 16, 16))
        for levels in (0, 1):
            np.testing.assert_allclose(
                iwt3d(fwt3d(x, levels), levels), x, rtol=1e-12, atol=1e-12
            )

    def test_roundtrip_float32(self, rng):
        x = rng.normal(size=(32, 32, 32)).astype(np.float32)
        err = np.abs(iwt3d(fwt3d(x, 3), 3) - x).max()
        assert err < 1e-4  # float32 round-off through 3 levels

    def test_anisotropic_shapes(self, rng):
        x = rng.normal(size=(8, 16, 32))
        c = fwt3d(x, 1)
        np.testing.assert_allclose(iwt3d(c, 1), x, rtol=1e-12)

    def test_default_levels(self, rng):
        x = rng.normal(size=(16, 16, 16))
        np.testing.assert_allclose(iwt3d(fwt3d(x)), x, rtol=1e-12, atol=1e-12)

    def test_coarse_corner_is_subsampled_signal(self, rng):
        x = rng.normal(size=(8, 8, 8))
        c = fwt3d(x, 1)
        np.testing.assert_array_equal(c[:4, :4, :4], x[0::2, 0::2, 0::2])

    def test_too_many_levels(self):
        with pytest.raises(ValueError):
            fwt3d(np.zeros((8, 8, 8)), 2)

    def test_non_3d_raises(self):
        with pytest.raises(ValueError):
            fwt3d(np.zeros((8, 8)))

    @given(seed=st.integers(0, 2**31), levels=st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed, levels):
        x = make_rng(seed).normal(size=(16, 16, 16))
        np.testing.assert_allclose(
            iwt3d(fwt3d(x, levels), levels), x, rtol=1e-11, atol=1e-11
        )

    def test_smooth_field_details_small(self):
        """A field smooth on the interval has details tiny next to its
        range (the de-correlation the compression scheme relies on)."""
        t = np.linspace(-1.0, 1.0, 32)
        g = np.exp(-4.0 * t**2)
        f = g[:, None, None] * g[None, :, None] * g[None, None, :]
        c = fwt3d(f, 2)
        mask = detail_mask(f.shape, 2)
        assert np.abs(c[mask]).max() < 0.02 * (f.max() - f.min())


class TestMasks:
    def test_detail_mask_counts(self):
        m = detail_mask((16, 16, 16), 2)
        assert m.sum() == 16**3 - 4**3
        assert not m[:4, :4, :4].any()

    def test_zero_levels(self):
        m = detail_mask((8, 8, 8), 0)
        assert not m.any()  # no transform -> no detail coefficients

    def test_level_of_coefficient_partition(self):
        lvl = level_of_coefficient((16, 16, 16), 2)
        assert (lvl == -1).sum() == 4**3  # coarse corner
        assert (lvl == 0).sum() == 8**3 - 4**3
        assert (lvl == 1).sum() == 16**3 - 8**3


class TestAbsTransform:
    def test_monotone_bound(self, rng):
        """iwt3d_abs of |c| bounds |iwt3d| of any same-magnitude field."""
        c = rng.normal(size=(16, 16, 16))
        mask = detail_mask(c.shape, 1)
        coeffs = np.where(mask, c, 0.0)
        bound = iwt3d_abs(np.abs(coeffs), 1)
        actual = np.abs(iwt3d(coeffs, 1))
        assert (actual <= bound + 1e-9).all()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            iwt3d_abs(np.full((8, 8, 8), -1.0), 1)
