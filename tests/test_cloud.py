"""Tests for bubble cloud generation (repro.sim.cloud)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cloud import (
    Bubble,
    cloud_interaction_parameter,
    cloud_vapor_volume,
    equivalent_radius,
    generate_cloud,
    sample_radii,
)

from .conftest import make_rng


class TestBubble:
    def test_volume(self):
        b = Bubble((0, 0, 0), 1.0)
        assert b.volume == pytest.approx(4.0 / 3.0 * np.pi)

    def test_overlap(self):
        a = Bubble((0, 0, 0), 1.0)
        b = Bubble((1.5, 0, 0), 1.0)
        c = Bubble((3.0, 0, 0), 1.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_with_gap(self):
        a = Bubble((0, 0, 0), 1.0)
        c = Bubble((2.1, 0, 0), 1.0)
        assert not a.overlaps(c)
        assert a.overlaps(c, gap=0.5)

    def test_contains_vectorized(self):
        b = Bubble((0.5, 0.5, 0.5), 0.25)
        z = np.array([0.5, 0.9])
        inside = b.contains(z, 0.5, 0.5)
        assert inside.tolist() == [True, False]


class TestRadii:
    def test_range_clipped(self, rng):
        r = sample_radii(1000, rng, r_min=50e-6, r_max=200e-6)
        assert r.min() >= 50e-6 and r.max() <= 200e-6

    def test_deterministic(self):
        a = sample_radii(10, make_rng(1))
        b = sample_radii(10, make_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_lognormal_median_near_geometric_mean(self, rng):
        r = sample_radii(20000, rng, r_min=1e-6, r_max=1e-2, sigma=0.4)
        assert np.median(r) == pytest.approx(np.sqrt(1e-6 * 1e-2), rel=0.05)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_radii(-1, rng)
        with pytest.raises(ValueError):
            sample_radii(5, rng, r_min=2.0, r_max=1.0)


class TestGenerateCloud:
    def test_count_and_no_overlap(self):
        bubbles = generate_cloud(
            20, (0.5, 0.5, 0.5), 0.4, rng=42, r_min=0.02, r_max=0.05
        )
        assert len(bubbles) == 20
        for i, a in enumerate(bubbles):
            for b in bubbles[i + 1 :]:
                assert not a.overlaps(b)

    def test_inside_cloud(self):
        bubbles = generate_cloud(
            10, (0.0, 0.0, 0.0), 1.0, rng=7, r_min=0.05, r_max=0.1
        )
        for b in bubbles:
            d = np.sqrt(sum(c**2 for c in b.center))
            assert d + b.radius <= 1.0 + 1e-12

    def test_deterministic_by_seed(self):
        a = generate_cloud(5, (0, 0, 0), 1.0, rng=3, r_min=0.05, r_max=0.1)
        b = generate_cloud(5, (0, 0, 0), 1.0, rng=3, r_min=0.05, r_max=0.1)
        assert [x.center for x in a] == [x.center for x in b]

    def test_impossible_packing_raises(self):
        with pytest.raises(RuntimeError, match="could not place"):
            generate_cloud(
                500, (0, 0, 0), 0.1, rng=1, r_min=0.05, r_max=0.05,
                max_attempts_per_bubble=50,
            )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_property_no_overlaps(self, seed):
        bubbles = generate_cloud(
            8, (0, 0, 0), 1.0, rng=seed, r_min=0.03, r_max=0.08
        )
        for i, a in enumerate(bubbles):
            for b in bubbles[i + 1 :]:
                assert not a.overlaps(b)


class TestDerivedQuantities:
    def test_vapor_volume(self):
        bubbles = [Bubble((0, 0, 0), 1.0), Bubble((5, 0, 0), 2.0)]
        v = cloud_vapor_volume(bubbles)
        assert v == pytest.approx(4.0 / 3.0 * np.pi * (1 + 8))

    def test_equivalent_radius_inverts_volume(self):
        assert equivalent_radius(4.0 / 3.0 * np.pi * 27.0) == pytest.approx(3.0)

    def test_interaction_parameter_positive(self):
        bubbles = generate_cloud(5, (0, 0, 0), 1.0, rng=1, r_min=0.05, r_max=0.1)
        assert cloud_interaction_parameter(bubbles, 1.0) > 0

    def test_interaction_parameter_empty(self):
        assert cloud_interaction_parameter([], 1.0) == 0.0


class TestTiledCloud:
    def test_unit_count_and_translation(self):
        from repro.sim.cloud import tiled_cloud

        bubbles = tiled_cloud((2, 1, 1), bubbles_per_unit=3, rng=5)
        assert len(bubbles) == 6
        # First unit's bubbles live in z in [0, 1), second in [1, 2).
        z = sorted(b.center[0] for b in bubbles)
        assert z[0] < 1.0 and z[-1] > 1.0

    def test_same_resolution_per_unit(self):
        from repro.sim.cloud import tiled_cloud

        bubbles = tiled_cloud((1, 1, 2), bubbles_per_unit=4, rng=9,
                              r_min=0.07, r_max=0.11)
        radii = [b.radius for b in bubbles]
        assert min(radii) >= 0.07 and max(radii) <= 0.11

    def test_units_independent_but_deterministic(self):
        from repro.sim.cloud import tiled_cloud

        a = tiled_cloud((2, 2, 1), bubbles_per_unit=2, rng=3)
        b = tiled_cloud((2, 2, 1), bubbles_per_unit=2, rng=3)
        assert [x.center for x in a] == [x.center for x in b]
        # Different units draw different sub-clouds.
        first = [x for x in a if x.center[0] < 1 and x.center[1] < 1]
        second = [x for x in a if x.center[0] < 1 and x.center[1] >= 1]
        rel_second = [(c[0], c[1] - 1.0, c[2]) for c in
                      (x.center for x in second)]
        assert [x.center for x in first] != rel_second

    def test_no_overlaps_across_the_whole_system(self):
        from repro.sim.cloud import tiled_cloud

        bubbles = tiled_cloud((2, 1, 1), bubbles_per_unit=4, rng=1)
        for i, a in enumerate(bubbles):
            for b in bubbles[i + 1:]:
                assert not a.overlaps(b)
