"""Documentation-completeness checks.

Production-quality bar: every public module, class and function carries a
docstring, and the repository's top-level documents exist and reference
each other coherently.
"""

import importlib
import inspect
import os
import pkgutil

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return out


class TestDocstrings:
    @pytest.mark.parametrize("modname", walk_modules())
    def test_module_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, (
            f"{modname} lacks a meaningful module docstring"
        )

    @pytest.mark.parametrize("modname", walk_modules())
    def test_public_callables_documented(self, modname):
        mod = importlib.import_module(modname)
        undocumented = []
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != modname:
                continue  # re-export
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{modname}: undocumented public objects {undocumented}"
        )


class TestTopLevelDocs:
    @pytest.mark.parametrize(
        "fname",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/ARCHITECTURE.md", "docs/PAPER_MAP.md"],
    )
    def test_exists_and_substantial(self, fname):
        path = os.path.join(REPO_ROOT, fname)
        assert os.path.exists(path), f"{fname} missing"
        assert os.path.getsize(path) > 1000

    def test_design_confirms_paper(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as f:
            text = f.read()
        assert "11 PFLOP/s" in text
        assert "matches the target paper" in text

    def test_experiments_covers_every_table(self):
        with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as f:
            text = f.read()
        for table in range(1, 11):
            assert f"Table {table}" in text, f"Table {table} not recorded"
        for fig in (1, 5, 7, 9):
            assert f"Fig. {fig}" in text, f"Fig. {fig} not recorded"

    def test_every_bench_has_a_results_reference_possible(self):
        """Every bench module under benchmarks/ writes a results file
        (write_result call present)."""
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for fname in os.listdir(bench_dir):
            if not fname.startswith("bench_"):
                continue
            with open(os.path.join(bench_dir, fname)) as f:
                text = f.read()
            assert "write_result(" in text, f"{fname} writes no artifact"
