"""Tests for the classical bubble-collapse baselines (repro.physics.rayleigh)."""

import numpy as np
import pytest

from repro.physics.rayleigh import (
    Gilmore,
    KellerMiksis,
    RayleighPlesset,
    rayleigh_collapse_time,
)


class TestRayleighTime:
    def test_formula(self):
        t = rayleigh_collapse_time(R0=1e-3, rho_liquid=1000.0, dp=1e5)
        assert t == pytest.approx(0.914681 * 1e-3 * np.sqrt(1000.0 / 1e5))

    def test_scaling_with_radius(self):
        t1 = rayleigh_collapse_time(1.0, 1000.0, 1e5)
        t2 = rayleigh_collapse_time(2.0, 1000.0, 1e5)
        assert t2 == pytest.approx(2.0 * t1)

    def test_scaling_with_pressure(self):
        t1 = rayleigh_collapse_time(1.0, 1000.0, 1e5)
        t2 = rayleigh_collapse_time(1.0, 1000.0, 4e5)
        assert t2 == pytest.approx(t1 / 2.0)

    def test_invalid_dp(self):
        with pytest.raises(ValueError):
            rayleigh_collapse_time(1.0, 1000.0, 0.0)


class TestRayleighPlesset:
    def test_empty_cavity_matches_rayleigh(self):
        """RP with no gas content collapses at the analytic Rayleigh time."""
        R0, rho, p_inf = 1e-3, 1000.0, 1e5
        model = RayleighPlesset(R0=R0, p_inf=p_inf, rho=rho, pg0=0.0)
        t_exact = rayleigh_collapse_time(R0, rho, p_inf)
        traj = model.integrate(t_end=2 * t_exact, r_floor_frac=1e-3)
        assert traj.collapse_time is not None
        assert traj.collapse_time == pytest.approx(t_exact, rel=0.02)

    def test_radius_monotone_until_collapse(self):
        model = RayleighPlesset(R0=1e-3, p_inf=1e5, rho=1000.0, pg0=0.0)
        traj = model.integrate(t_end=1.0)
        assert (np.diff(traj.R) <= 1e-12).all()

    def test_gas_content_arrests_collapse(self):
        """A gas-filled bubble rebounds instead of collapsing to the floor."""
        model = RayleighPlesset(
            R0=1e-3, p_inf=1e5, rho=1000.0, pg0=1e3, kappa=1.4
        )
        t_r = rayleigh_collapse_time(1e-3, 1000.0, 1e5)
        traj = model.integrate(t_end=4 * t_r, r_floor_frac=1e-4)
        assert traj.min_radius is not None
        assert traj.min_radius > 1e-4 * 1e-3  # never hit the floor

    def test_equilibrium_is_stationary(self):
        """pg0 == p_inf with no surface tension: R stays at R0."""
        model = RayleighPlesset(R0=1e-3, p_inf=1e5, rho=1000.0, pg0=1e5,
                                kappa=1.0)
        traj = model.integrate(t_end=1e-4)
        np.testing.assert_allclose(traj.R, 1e-3, rtol=1e-6)

    def test_radius_at_interpolation(self):
        model = RayleighPlesset(R0=1e-3, p_inf=1e5, rho=1000.0, pg0=0.0)
        traj = model.integrate(t_end=1e-4)
        assert traj.radius_at(0.0) == pytest.approx(1e-3)


class TestKellerMiksis:
    def test_reduces_to_rp_for_large_c(self):
        """As c -> inf the Keller-Miksis collapse time approaches RP."""
        kwargs = dict(R0=1e-3, p_inf=1e5, rho=1000.0, pg0=0.0)
        rp = RayleighPlesset(**kwargs).integrate(t_end=1e-3)
        km = KellerMiksis(**kwargs, c=1e9).integrate(t_end=1e-3)
        assert km.collapse_time == pytest.approx(rp.collapse_time, rel=1e-3)

    def test_compressibility_is_a_small_correction(self):
        kwargs = dict(R0=1e-3, p_inf=1e5, rho=1000.0, pg0=0.0)
        rp = RayleighPlesset(**kwargs).integrate(t_end=1e-3)
        km = KellerMiksis(**kwargs, c=1500.0).integrate(t_end=1e-3)
        assert km.collapse_time == pytest.approx(rp.collapse_time, rel=0.05)


class TestGilmore:
    def test_empty_cavity_collapse_time_near_rayleigh(self):
        R0, rho, p_inf = 1e-3, 1000.0, 1e5
        model = Gilmore(R0=R0, p_inf=p_inf, rho0=rho, pg0=0.0)
        t_exact = rayleigh_collapse_time(R0, rho, p_inf)
        traj = model.integrate(t_end=3 * t_exact)
        assert traj.collapse_time is not None
        # Compressibility slows the final stage slightly.
        assert traj.collapse_time == pytest.approx(t_exact, rel=0.1)

    def test_wall_speed_stays_subsonic_longer_than_rp(self):
        """Gilmore's wall Mach number saturates; RP diverges faster."""
        kwargs = dict(R0=1e-3, p_inf=1e5, pg0=0.0)
        rp = RayleighPlesset(rho=1000.0, **kwargs).integrate(
            t_end=1e-3, r_floor_frac=5e-3
        )
        gl = Gilmore(rho0=1000.0, **kwargs).integrate(
            t_end=1e-3, r_floor_frac=5e-3
        )
        assert abs(gl.Rdot[-1]) <= abs(rp.Rdot[-1]) * 1.05
