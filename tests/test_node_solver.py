"""Tests for the node-layer solver (repro.node.solver)."""

import numpy as np
import pytest

from repro.node.dispatcher import Dispatcher
from repro.node.ghosts import BoundarySpec
from repro.node.grid import BlockGrid
from repro.node.solver import NodeSolver
from repro.physics.eos import LIQUID, sound_speed
from repro.physics.state import NQ

from .conftest import make_uniform_aos


def uniform_grid(num_blocks=(2, 2, 2), n=8, **kw):
    g = BlockGrid(num_blocks, n, h=0.1)
    field = make_uniform_aos(g.cells, **kw).astype(np.float32)
    g.from_array(field)
    return g


class TestRhsEvaluation:
    def test_uniform_zero_rhs(self):
        g = uniform_grid(u=(1.0, 2.0, 3.0))
        solver = NodeSolver(g)
        rhs = solver.evaluate_rhs()
        assert set(rhs) == set(g.blocks)
        for r in rhs.values():
            assert np.abs(r).max() < 1e-8

    def test_block_independence_of_decomposition(self, rng):
        """One 16^3 block and eight 8^3 blocks must give identical RHS for
        the same global field (intra-rank ghosts are exact)."""
        from .conftest import make_smooth_aos

        field = make_smooth_aos((16, 16, 16), rng).astype(np.float32)

        g1 = BlockGrid((1, 1, 1), 16, h=0.1)
        g1.from_array(field)
        r1 = NodeSolver(g1).evaluate_rhs()[(0, 0, 0)]

        g2 = BlockGrid((2, 2, 2), 8, h=0.1)
        g2.from_array(field)
        rhs2 = NodeSolver(g2).evaluate_rhs()
        assembled = np.empty((16, 16, 16, NQ))
        for (bz, by, bx), r in rhs2.items():
            assembled[bz * 8:(bz + 1) * 8, by * 8:(by + 1) * 8,
                      bx * 8:(bx + 1) * 8] = r
        np.testing.assert_allclose(assembled, r1, rtol=1e-6, atol=1e-7)

    def test_slices_equals_vectorized(self, rng):
        from .conftest import make_smooth_aos

        field = make_smooth_aos((16, 16, 16), rng).astype(np.float32)
        g = BlockGrid((2, 2, 2), 8, h=0.1)
        g.from_array(field)
        r_vec = NodeSolver(g).evaluate_rhs()
        r_sl = NodeSolver(g, use_slices=True).evaluate_rhs()
        for idx in r_vec:
            scale = max(np.abs(r_vec[idx]).max(), 1.0)
            np.testing.assert_allclose(
                r_sl[idx], r_vec[idx], rtol=1e-13, atol=1e-12 * scale
            )

    def test_schedule_recorded(self):
        g = uniform_grid()
        solver = NodeSolver(g, dispatcher=Dispatcher(num_workers=3))
        solver.evaluate_rhs()
        assert solver.last_schedule is not None
        assert solver.last_schedule.busy.size == 3


class TestSos:
    def test_uniform(self):
        g = uniform_grid()
        c = float(sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P))
        assert NodeSolver(g).max_sos() == pytest.approx(c, rel=1e-5)


class TestUpdate:
    def test_euler_stage_applies_rhs(self):
        g = uniform_grid()
        solver = NodeSolver(g)
        rhs = {idx: np.ones((8, 8, 8, NQ)) for idx in g.blocks}
        before = g.to_array().astype(np.float64)
        solver.update(rhs, a=0.0, b=1.0, dt=0.5)
        after = g.to_array().astype(np.float64)
        np.testing.assert_allclose(after - before, 0.5, atol=1e-3)

    def test_wall_boundary_produces_reflection_pressure(self):
        """A flow toward a reflecting wall must raise wall pressure."""
        g = uniform_grid((1, 1, 1), 16, u=(-5.0, 0.0, 0.0))  # w < 0: toward z=0
        solver = NodeSolver(g, boundary=BoundarySpec.wall_at(0, -1))
        rhs = solver.evaluate_rhs()
        # The RHS at the wall layer must oppose the incoming momentum.
        r = rhs[(0, 0, 0)]
        assert np.abs(r[0]).max() > np.abs(r[8]).max()
