"""Unit tests for the stiffened-gas EOS (repro.physics.eos)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.eos import (
    LIQUID,
    VAPOR,
    G_from_gamma,
    Material,
    P_from_gamma_pc,
    conserved_to_primitive,
    gamma_from_G,
    max_characteristic_velocity,
    mixture,
    pc_from_G_P,
    pressure,
    primitive_to_conserved,
    sound_speed,
    total_energy,
)
from repro.physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW

from .conftest import make_smooth_aos, make_uniform_aos


class TestMaterials:
    def test_paper_values(self):
        # Section 7: gamma, pc = (1.4, 1 bar) vapor; (6.59, 4096 bar) liquid.
        assert VAPOR.gamma == 1.4 and VAPOR.pc == 1.0
        assert LIQUID.gamma == 6.59 and LIQUID.pc == 4096.0

    def test_G_of_vapor(self):
        assert VAPOR.G == pytest.approx(1.0 / 0.4)

    def test_P_of_liquid(self):
        assert LIQUID.P == pytest.approx(6.59 * 4096.0 / 5.59)

    def test_material_frozen(self):
        with pytest.raises(AttributeError):
            VAPOR.gamma = 2.0  # type: ignore[misc]


class TestParameterMaps:
    @given(gamma=st.floats(1.01, 10.0), pc=st.floats(0.0, 1e4))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, gamma, pc):
        G = G_from_gamma(gamma)
        P = P_from_gamma_pc(gamma, pc)
        assert gamma_from_G(G) == pytest.approx(gamma, rel=1e-12)
        assert pc_from_G_P(G, P) == pytest.approx(pc, rel=1e-9, abs=1e-12)

    def test_vectorized(self):
        gam = np.array([1.4, 6.59])
        np.testing.assert_allclose(gamma_from_G(G_from_gamma(gam)), gam)


class TestPressureEnergy:
    @given(
        rho=st.floats(0.5, 2000.0),
        u=st.floats(-50, 50), v=st.floats(-50, 50), w=st.floats(-50, 50),
        p=st.floats(0.01, 5000.0),
        which=st.sampled_from(["vapor", "liquid"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, rho, u, v, w, p, which):
        mat = VAPOR if which == "vapor" else LIQUID
        E = total_energy(rho, u, v, w, p, mat.G, mat.P)
        p2 = pressure(rho, rho * u, rho * v, rho * w, E, mat.G, mat.P)
        # Recovering a small p from E ~ Pi + ... is ill-conditioned by
        # E / (G p); scale the tolerance accordingly.
        tol = 1e-12 * max(1.0, float(E) / mat.G)
        assert abs(p2 - p) <= tol + 1e-9 * abs(p)

    def test_known_energy(self):
        # At rest: E = G p + P.
        E = total_energy(1000.0, 0, 0, 0, 100.0, LIQUID.G, LIQUID.P)
        assert E == pytest.approx(LIQUID.G * 100.0 + LIQUID.P)


class TestSoundSpeed:
    def test_ideal_gas_limit(self):
        # Pi = 0 reduces to c = sqrt(gamma p / rho).
        c = sound_speed(1.0, 1.0, VAPOR.G, 0.0)
        assert c == pytest.approx(np.sqrt(1.4), rel=1e-12)

    def test_stiffened_liquid(self):
        c = sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P)
        expected = np.sqrt(6.59 * (100.0 + 4096.0) / 1000.0)
        assert c == pytest.approx(expected, rel=1e-12)

    def test_floor_guards_negative(self):
        # Round-off can push the argument slightly negative near vacua.
        c = sound_speed(1.0, -1e-15, VAPOR.G, 0.0)
        assert np.isfinite(c) and c >= 0


class TestConversions:
    def test_roundtrip_smooth(self, rng):
        aos = make_smooth_aos((6, 5, 4), rng)
        U = np.moveaxis(aos, -1, 0)
        W = conserved_to_primitive(U)
        U2 = primitive_to_conserved(W)
        np.testing.assert_allclose(U2, U, rtol=1e-12, atol=1e-9)

    def test_primitive_values(self):
        aos = make_uniform_aos((3, 3, 3), rho=800.0, u=(1.0, 2.0, 3.0), p=50.0)
        W = conserved_to_primitive(np.moveaxis(aos, -1, 0))
        np.testing.assert_allclose(W[RHO], 800.0)
        np.testing.assert_allclose(W[RHOW], 1.0)  # z-velocity
        np.testing.assert_allclose(W[RHOV], 2.0)
        np.testing.assert_allclose(W[RHOU], 3.0)
        np.testing.assert_allclose(W[ENERGY], 50.0, rtol=1e-10)
        np.testing.assert_allclose(W[GAMMA], LIQUID.G)
        np.testing.assert_allclose(W[PI], LIQUID.P)


class TestMaxCharacteristicVelocity:
    def test_at_rest_equals_sound_speed(self):
        aos = make_uniform_aos((4, 4, 4))
        W = conserved_to_primitive(np.moveaxis(aos, -1, 0))
        c = sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P)
        assert max_characteristic_velocity(W) == pytest.approx(float(c), rel=1e-6)

    def test_velocity_adds(self):
        aos = make_uniform_aos((4, 4, 4), u=(0.0, 0.0, 7.0))
        W = conserved_to_primitive(np.moveaxis(aos, -1, 0))
        c = sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P)
        assert max_characteristic_velocity(W) == pytest.approx(float(c) + 7.0, rel=1e-6)


class TestMixture:
    def test_endpoints(self):
        G, P = mixture(VAPOR, LIQUID, 1.0)
        assert G == pytest.approx(VAPOR.G) and P == pytest.approx(VAPOR.P)
        G, P = mixture(VAPOR, LIQUID, 0.0)
        assert G == pytest.approx(LIQUID.G) and P == pytest.approx(LIQUID.P)

    @given(alpha=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_linear_and_bounded(self, alpha):
        G, P = mixture(VAPOR, LIQUID, alpha)
        lo, hi = sorted((VAPOR.G, LIQUID.G))
        assert lo <= G <= hi
        lo, hi = sorted((VAPOR.P, LIQUID.P))
        assert lo <= P <= hi
