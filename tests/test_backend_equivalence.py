"""Cross-backend differential suite: ``procs`` must equal ``sim`` bitwise.

The process-parallel backend (:mod:`repro.cluster.procs`) is only
admissible if it is *indistinguishable* from the thread-based reference
backend on the same seeded configuration: identical final fields,
identical dt sequence, identical diagnostics series, identical
conservation sums.  Bit-identity is achievable (and therefore required)
because the procs collectives fold contributions in the same rank order
as the sim rendezvous combiner -- any difference is a bug, not noise.

Every SPMD ingredient here is module-level / a plain dataclass so the
spawn context can pickle it into the rank processes.
"""

import os

import numpy as np
import pytest

from repro.cluster import Simulation
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse
from repro.telemetry import read_flight

BASE = dict(cells=16, block_size=8)


@pytest.fixture(autouse=True)
def _no_leaked_resources(resource_ledger):
    """Every cross-backend test must wind down to zero leaked
    segments, rank processes and threads (the RS acceptance bar,
    enforced at runtime by the syscheck :class:`ResourceLedger`)."""
    yield

#: Diagnostics attributes compared series-wise across backends.
DIAG_SERIES = ("max_pressure", "kinetic_energy", "vapor_volume",
               "equivalent_radius")


def collapse_ic():
    """An asymmetric two-bubble collapse: every rank owns moving flow."""
    return cloud_collapse(
        [Bubble((0.42, 0.55, 0.47), 0.18), Bubble((0.65, 0.4, 0.62), 0.12)],
        p_liquid=500.0,
    )


def _run(backend, ranks, steps=3, ic=None, **overrides):
    cfg = SimulationConfig(
        **BASE, max_steps=steps, ranks=ranks, cluster_backend=backend,
        comm_timeout=60.0, **overrides,
    )
    return Simulation(cfg, ic if ic is not None else collapse_ic()).run()


def _assert_equivalent(res_sim, res_procs):
    """The full differential contract between two RunResults."""
    # Final fields: bit-identical.
    np.testing.assert_array_equal(res_sim.final_field, res_procs.final_field)
    # Time stepping: identical dt sequence (the DT allreduce agreed).
    assert [r.dt for r in res_sim.records] == \
        [r.dt for r in res_procs.records]
    assert [r.time for r in res_sim.records] == \
        [r.time for r in res_procs.records]
    # Diagnostics series: identical reductions.
    for name in DIAG_SERIES:
        np.testing.assert_array_equal(res_sim.series(name),
                                      res_procs.series(name))
    # Conservation: identical global mass/energy sums of the final state.
    for q in (0, 4):  # RHO, ENERGY
        assert (res_sim.final_field[..., q].sum()
                == res_procs.final_field[..., q].sum())
    # Traffic accounting: same halo messages, same bytes, per rank.
    for rs, rp in zip(res_sim.rank_results, res_procs.rank_results):
        assert rs.messages_sent == rp.messages_sent
        assert rs.bytes_sent == rp.bytes_sent


@pytest.mark.parametrize("riemann_solver", ["hlle", "hllc"])
@pytest.mark.parametrize("ranks", [1, 2, 4])
def test_differential(ranks, riemann_solver):
    """Same seeded config, both backends: bit-identical outcomes."""
    res_sim = _run("sim", ranks, riemann_solver=riemann_solver)
    res_procs = _run("procs", ranks, riemann_solver=riemann_solver)
    _assert_equivalent(res_sim, res_procs)


def test_differential_restart_from_checkpoint(tmp_path):
    """A checkpoint written by one backend restarts bit-exact on both."""
    ck = tmp_path / "ck"
    ck.mkdir()
    # Write the checkpoint with the reference backend at step 2.
    _run("sim", 2, steps=2, checkpoint_interval=2,
         checkpoint_dir=str(ck))
    ckpt = str(ck / "ckpt_000002.rck")
    assert os.path.exists(ckpt)

    def restarted(backend):
        cfg = SimulationConfig(
            **BASE, max_steps=4, ranks=2, cluster_backend=backend,
            comm_timeout=60.0,
        )
        return Simulation(cfg, collapse_ic(), restart_from=ckpt).run()

    res_sim = restarted("sim")
    res_procs = restarted("procs")
    _assert_equivalent(res_sim, res_procs)
    # And both match the uninterrupted reference run.
    full = _run("sim", 2, steps=4)
    np.testing.assert_array_equal(res_procs.final_field, full.final_field)


def test_periodic_self_exchange():
    """Single-rank periodic topology: the rank halo-exchanges with
    itself; the procs loopback path must match the sim mailbox."""
    res_sim = _run("sim", 1, periodic=(True, True, True))
    res_procs = _run("procs", 1, periodic=(True, True, True))
    _assert_equivalent(res_sim, res_procs)


def test_procs_flight_stream_valid(tmp_path):
    """A 2-rank procs run yields one complete ``repro.flight/v1`` stream.

    Rank processes write per-rank part files; the driver merges them on
    completion into a single-header stream ordered by (step, rank) and
    removes the parts -- the regression this guards is the thread-only
    refcounted sink silently splitting or clobbering the stream.
    """
    out = tmp_path / "flight.jsonl"
    res = _run("procs", 2, steps=4, flight_out=str(out))
    assert len(res.records) == 4
    header, steps = read_flight(str(out))
    assert header["schema"] == "repro.flight/v1"
    assert header["ranks"] == 2
    assert [(s["step"], s["rank"]) for s in steps] == [
        (step, rank) for step in range(1, 5) for rank in range(2)
    ]
    for s in steps:
        assert s["dt"] > 0 and "phases" in s and "drift" in s
    # Parts were merged and removed.
    assert not list(tmp_path.glob("flight.jsonl.rank*"))


def test_procs_rejects_runtime_race_tracker():
    """The runtime race tracker is thread-only; procs must refuse it."""
    with pytest.raises(ValueError, match="concurrency_check"):
        SimulationConfig(**BASE, ranks=2, cluster_backend="procs",
                         concurrency_check="warn")


def test_config_validates_backend_name():
    with pytest.raises(ValueError, match="cluster_backend"):
        SimulationConfig(**BASE, cluster_backend="mpi")
