"""Tests for the Morton space-filling curve (repro.node.sfc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node.sfc import (
    MAX_BITS,
    locality_score,
    morton_decode,
    morton_encode,
    morton_order,
)


class TestEncodeDecode:
    def test_origin(self):
        assert morton_encode(0, 0, 0) == 0

    def test_unit_steps(self):
        # x is the least significant dimension, then y, then z.
        assert morton_encode(0, 0, 1) == 1
        assert morton_encode(0, 1, 0) == 2
        assert morton_encode(1, 0, 0) == 4

    def test_known_value(self):
        # (z, y, x) = (1, 1, 1) interleaves to 0b111.
        assert morton_encode(1, 1, 1) == 7

    @given(
        z=st.integers(0, 2**MAX_BITS - 1),
        y=st.integers(0, 2**MAX_BITS - 1),
        x=st.integers(0, 2**MAX_BITS - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, z, y, x):
        zd, yd, xd = morton_decode(morton_encode(z, y, x))
        assert (int(zd), int(yd), int(xd)) == (z, y, x)

    def test_vectorized(self, rng):
        coords = rng.integers(0, 1000, size=(50, 3))
        keys = morton_encode(coords[:, 0], coords[:, 1], coords[:, 2])
        z, y, x = morton_decode(keys)
        np.testing.assert_array_equal(np.stack([z, y, x], axis=1), coords)

    def test_injective_on_grid(self):
        zz, yy, xx = np.meshgrid(range(8), range(8), range(8), indexing="ij")
        keys = morton_encode(zz.ravel(), yy.ravel(), xx.ravel())
        assert len(np.unique(keys)) == 512

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            morton_encode(2**MAX_BITS, 0, 0)

    def test_negative(self):
        with pytest.raises(ValueError):
            morton_encode(-1, 0, 0)


class TestOrdering:
    def test_order_is_permutation(self):
        idx = np.array(
            [(z, y, x) for z in range(4) for y in range(4) for x in range(4)]
        )
        order = morton_order(idx)
        assert sorted(order.tolist()) == list(range(64))

    def test_first_octant_first(self):
        """All blocks of the low octant precede any of the high octant."""
        idx = np.array(
            [(z, y, x) for z in range(4) for y in range(4) for x in range(4)]
        )
        order = morton_order(idx)
        seq = idx[order]
        low = np.where((seq < 2).all(axis=1))[0]
        assert low.max() == 7  # the 8 low-octant blocks come first

    def test_locality_beats_row_major(self):
        """Mean jump distance of the Morton traversal of a cube is no
        worse than row-major order (the reordering payoff of Section 5)."""
        B = 8
        idx = np.array(
            [(z, y, x) for z in range(B) for y in range(B) for x in range(B)]
        )
        morton = locality_score(morton_order(idx), idx)
        row_major = locality_score(np.arange(len(idx)), idx)
        assert morton <= row_major + 1e-12
