"""End-to-end coverage of the driver's configuration paths.

Each solver/scheme option must run through the full stack and agree with
the production path where mathematically equivalent (uniform flows), or
differ in the expected direction where not.
"""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse, uniform


def cfg(**kw):
    base = dict(cells=16, block_size=8, max_steps=3, diag_interval=1)
    base.update(kw)
    return SimulationConfig(**base)


IC = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)


class TestSchemeOptions:
    def test_use_slices_matches_vectorized(self):
        r_vec = Simulation(cfg(), IC).run()
        r_sl = Simulation(cfg(use_slices=True), IC).run()
        scale = np.abs(r_vec.final_field).max()
        np.testing.assert_allclose(
            r_sl.final_field, r_vec.final_field, atol=1e-9 * scale
        )

    def test_fused_weno_close_to_baseline(self):
        r0 = Simulation(cfg(), IC).run()
        r1 = Simulation(cfg(fused_weno=True), IC).run()
        scale = np.abs(r0.final_field).max()
        np.testing.assert_allclose(
            r1.final_field, r0.final_field, atol=1e-5 * scale
        )

    def test_hllc_runs_and_differs(self):
        r0 = Simulation(cfg(max_steps=5), IC).run()
        r1 = Simulation(cfg(max_steps=5, riemann_solver="hllc"), IC).run()
        assert np.isfinite(r1.final_field).all()
        # Different flux => different (finite) evolution near the interface.
        assert np.abs(
            r1.final_field.astype(np.float64)
            - r0.final_field.astype(np.float64)
        ).max() > 0

    def test_weno3_runs(self):
        r = Simulation(cfg(max_steps=5, weno_order=3), IC).run()
        assert np.isfinite(r.final_field).all()
        vv = r.series("vapor_volume")
        assert vv[-1] < vv[0]  # still collapsing

    def test_euler_stepper_runs(self):
        r = Simulation(cfg(stepper="euler"), IC).run()
        assert np.isfinite(r.final_field).all()

    def test_uniform_invariant_under_all_options(self):
        for opts in (
            {"use_slices": True},
            {"fused_weno": True},
            {"riemann_solver": "hllc"},
            {"weno_order": 3},
            {"stepper": "euler"},
        ):
            r = Simulation(cfg(**opts), uniform()).run()
            np.testing.assert_allclose(
                r.series("kinetic_energy"), 0.0, atol=1e-12,
                err_msg=f"uniform flow disturbed by {opts}",
            )


class TestDiagnosticsOptions:
    def test_diag_interval_skips_records(self):
        r = Simulation(cfg(max_steps=6, diag_interval=3), IC).run()
        with_diag = [rec for rec in r.records if rec.diagnostics is not None]
        assert len(r.records) == 6
        assert len(with_diag) == 2
        assert [rec.step for rec in with_diag] == [3, 6]

    def test_diag_disabled(self):
        r = Simulation(cfg(diag_interval=0), IC).run()
        assert all(rec.diagnostics is None for rec in r.records)
        assert r.series("max_pressure").size == 0

    def test_no_final_field_collection(self):
        r = Simulation(cfg(collect_final_field=False), IC).run()
        assert r.final_field is None
        assert r.rank_results[0].field is None


class TestDumpOptions:
    def test_guaranteed_dump_mode(self, tmp_path):
        c = cfg(max_steps=2, dump_interval=2, dump_dir=str(tmp_path),
                dump_guaranteed=True, eps_pressure=1.0)
        r = Simulation(c, IC).run()
        from repro.compression.io import read_field

        field = read_field(str(tmp_path / "dump_step000002_p.rwz"))
        from repro.sim.diagnostics import pressure_field

        p_true = pressure_field(r.final_field)
        # Strict L-inf bound (plus float32 transform noise).
        assert np.abs(field - p_true).max() <= 1.0 + 1e-3

    def test_traffic_counters_populated(self):
        r = Simulation(cfg(ranks=2), IC).run()
        sent = [rr.bytes_sent for rr in r.rank_results]
        msgs = [rr.messages_sent for rr in r.rank_results]
        # 3 steps x 3 RK stages x 1 face message per rank.
        assert all(m == 9 for m in msgs)
        assert all(s > 0 for s in sent)


class TestOddRankCounts:
    def test_three_ranks(self):
        """Non-power-of-two decomposition: 3 ranks along z."""
        cfg3 = SimulationConfig(cells=24, block_size=8, max_steps=2,
                                diag_interval=1, ranks=3)
        cfg1 = SimulationConfig(cells=24, block_size=8, max_steps=2,
                                diag_interval=1)
        r3 = Simulation(cfg3, IC).run()
        r1 = Simulation(cfg1, IC).run()
        np.testing.assert_array_equal(r3.final_field, r1.final_field)

    def test_six_ranks_one_block_each(self):
        """balanced_dims(6) = (3, 2, 1); an anisotropic (24, 16, 8) domain
        gives every rank exactly one block."""
        cfg6 = SimulationConfig(cells=(24, 16, 8), block_size=8, max_steps=1,
                                diag_interval=0, ranks=6)
        r = Simulation(cfg6, IC).run()
        assert np.isfinite(r.final_field).all()
        assert r.final_field.shape == (24, 16, 8, 7)


class TestUnitScaling:
    def test_per_cell_cost_stable_across_domain_size(self):
        """Paper Section 7: 'for larger simulations we do not observe a
        significant change in time-to-solution' (per cell).  Per-cell cost
        at 16^3 and 24^3 must agree within a factor ~2.5 (block dispatch
        overhead shrinks as blocks grow in number)."""
        import time

        costs = {}
        for cells in (16, 24):
            cfg = SimulationConfig(cells=cells, block_size=8, max_steps=2,
                                   diag_interval=0)
            t0 = time.perf_counter()
            Simulation(cfg, IC).run()
            costs[cells] = (time.perf_counter() - t0) / cells**3
        ratio = costs[16] / costs[24]
        assert 0.4 < ratio < 2.5, f"per-cell cost ratio {ratio}"
