"""Tests for the wall erosion model (repro.sim.erosion)."""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.erosion import STEEL_LIKE, ErosionModel, WallDamageAccumulator
from repro.sim.ic import cloud_collapse


class TestAccumulator:
    def test_no_damage_below_threshold(self):
        acc = WallDamageAccumulator((4, 4), 0.1, ErosionModel(p_threshold=100.0))
        acc.update(np.full((4, 4), 50.0), dt=1.0)
        assert not acc.damage.any()
        assert acc.exposure_time == 1.0

    def test_power_law(self):
        acc = WallDamageAccumulator((2, 2), 0.1,
                                    ErosionModel(p_threshold=100.0, exponent=2.0))
        p = np.array([[150.0, 200.0], [100.0, 300.0]])
        acc.update(p, dt=0.5)
        np.testing.assert_allclose(
            acc.damage, 0.5 * np.array([[2500.0, 10000.0], [0.0, 40000.0]])
        )

    def test_accumulates_over_steps(self):
        acc = WallDamageAccumulator((2, 2), 0.1, ErosionModel(p_threshold=0.0,
                                                              exponent=1.0))
        acc.update(np.full((2, 2), 10.0), 1.0)
        acc.update(np.full((2, 2), 10.0), 1.0)
        np.testing.assert_allclose(acc.damage, 20.0)
        assert acc.peak_pressure == 10.0

    def test_shape_mismatch(self):
        acc = WallDamageAccumulator((2, 2), 0.1, STEEL_LIKE)
        with pytest.raises(ValueError):
            acc.update(np.zeros((3, 3)), 0.1)

    def test_negative_dt(self):
        acc = WallDamageAccumulator((2, 2), 0.1, STEEL_LIKE)
        with pytest.raises(ValueError):
            acc.update(np.zeros((2, 2)), -1.0)


class TestPitStatistics:
    def _damaged(self):
        acc = WallDamageAccumulator((8, 8), 0.5,
                                    ErosionModel(p_threshold=0.0, exponent=1.0))
        p = np.zeros((8, 8))
        p[1:3, 1:3] = 100.0  # pit 1
        p[6, 6] = 80.0  # pit 2
        acc.update(p, 1.0)
        return acc

    def test_pit_count(self):
        assert self._damaged().pit_count(damage_fraction=0.1) == 2

    def test_pitted_area(self):
        acc = self._damaged()
        assert acc.pitted_area(damage_fraction=0.1) == pytest.approx(
            5 * 0.5**2
        )

    def test_no_damage_no_pits(self):
        acc = WallDamageAccumulator((4, 4), 0.1, STEEL_LIKE)
        assert acc.pit_count() == 0
        assert acc.erosion_rate() == 0.0

    def test_erosion_rate(self):
        acc = self._damaged()
        assert acc.erosion_rate() == pytest.approx(acc.damage.mean())

    def test_merge(self):
        a, b = self._damaged(), self._damaged()
        m = a.merged(b)
        np.testing.assert_allclose(m.damage, 2 * a.damage)
        with pytest.raises(ValueError):
            a.merged(WallDamageAccumulator((2, 2), 0.1, STEEL_LIKE))


class TestDriverIntegration:
    def test_config_requires_wall(self):
        with pytest.raises(ValueError, match="requires a wall"):
            SimulationConfig(cells=16, block_size=8,
                             erosion=ErosionModel(p_threshold=1.0))

    def test_collapse_near_wall_accumulates_damage(self):
        model = ErosionModel(p_threshold=1.02 * 1000.0, exponent=2.0)
        cfg = SimulationConfig(
            cells=16, block_size=8, max_steps=60, wall=(0, -1),
            erosion=model, diag_interval=0,
        )
        # Bubble close to the wall; its collapse loads the wall.
        ic = cloud_collapse([Bubble((0.35, 0.5, 0.5), 0.2)], p_liquid=1000.0)
        res = Simulation(cfg, ic).run()
        dmg = res.wall_damage
        assert dmg is not None
        assert dmg.shape == (16, 16)
        assert dmg.max() > 0.0

    def test_multi_rank_damage_stitched(self):
        model = ErosionModel(p_threshold=0.0, exponent=1.0)
        cfg = SimulationConfig(
            cells=16, block_size=8, max_steps=2, wall=(0, -1),
            erosion=model, ranks=2, diag_interval=0,
        )
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        res = Simulation(cfg, ic).run()
        dmg = res.wall_damage
        # Decomposition is along z (the wall axis), so only one rank owns
        # the wall; its full 16x16 patch must be present.
        assert dmg is not None and dmg.shape == (16, 16)
        assert (dmg > 0).all()  # threshold 0: every cell accumulates

    def test_no_erosion_no_damage_map(self):
        cfg = SimulationConfig(cells=16, block_size=8, max_steps=1,
                               wall=(0, -1), diag_interval=0)
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        res = Simulation(cfg, ic).run()
        assert res.wall_damage is None
