"""Tests for ghost reconstruction and boundary conditions (repro.node.ghosts)."""

import numpy as np
import pytest

from repro.core.block import GHOSTS, padded_aos
from repro.node.ghosts import BoundarySpec, fill_block_ghosts
from repro.node.grid import BlockGrid
from repro.physics.state import NQ, RHOU, RHOV, RHOW


def make_grid_with_pattern(num_blocks=(2, 2, 2), n=8, rng=None):
    """Grid whose cells encode their global (z, y, x) coordinates."""
    g = BlockGrid(num_blocks, n, h=1.0)

    def fn(z, y, x):
        shape = np.broadcast_shapes(z.shape, y.shape, x.shape)
        out = np.zeros(shape + (NQ,))
        out[..., 0] = z + 1.0
        out[..., 1] = y
        out[..., 2] = x
        out[..., 4] = z * 100 + y * 10 + x
        out[..., 5] = 1.0
        return out

    g.fill(fn)
    return g


def interior(pad):
    g = GHOSTS
    return pad[g:-g, g:-g, g:-g]


class TestSpec:
    def test_default(self):
        spec = BoundarySpec.all_extrapolate()
        assert spec.kind(0, -1) == "extrapolate"

    def test_wall_at(self):
        spec = BoundarySpec.wall_at(0, -1)
        assert spec.kind(0, -1) == "reflect"
        assert spec.kind(0, 1) == "extrapolate"

    def test_unknown_kind(self):
        spec = BoundarySpec(default="bogus")
        with pytest.raises(ValueError):
            spec.kind(0, -1)


class TestSiblingGhosts:
    def test_neighbor_slab_loaded(self):
        g = make_grid_with_pattern()
        block = g.blocks[(0, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        fill_block_ghosts(pad, g, block)
        # High-x ghosts must equal the first 3 x-layers of block (0,0,1):
        neighbor = g.blocks[(0, 0, 1)]
        got = pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, -GHOSTS:]
        np.testing.assert_array_equal(got, neighbor.data[:, :, :GHOSTS])

    def test_continuity_of_coordinates(self):
        """Ghost cells must continue the global coordinate pattern."""
        g = make_grid_with_pattern()
        block = g.blocks[(1, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        fill_block_ghosts(pad, g, block)
        # Low-z ghosts are global z-coords 5, 6, 7 (block starts at 8).
        zc = pad[:GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, 0]
        np.testing.assert_allclose(zc[0], 5.5 + 1.0, rtol=1e-6)
        np.testing.assert_allclose(zc[2], 7.5 + 1.0, rtol=1e-6)


class TestExtrapolate:
    def test_zero_gradient(self):
        g = make_grid_with_pattern((1, 1, 1))
        block = g.blocks[(0, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        fill_block_ghosts(pad, g, block, BoundarySpec.all_extrapolate())
        # Each low-x ghost layer equals the first interior layer.
        first = pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS]
        for k in range(GHOSTS):
            np.testing.assert_array_equal(
                pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, k], first
            )


class TestReflect:
    @pytest.mark.parametrize("axis,momentum", [(0, RHOW), (1, RHOV), (2, RHOU)])
    def test_mirror_and_momentum_flip(self, axis, momentum):
        g = make_grid_with_pattern((1, 1, 1))
        block = g.blocks[(0, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        spec = BoundarySpec.wall_at(axis, -1)
        fill_block_ghosts(pad, g, block, spec)
        sel_ghost = [slice(GHOSTS, -GHOSTS)] * 3
        sel_ghost[axis] = 0  # outermost ghost layer
        sel_int = [slice(GHOSTS, -GHOSTS)] * 3
        sel_int[axis] = GHOSTS + 2  # third interior layer (mirror image)
        ghost = pad[tuple(sel_ghost)]
        mirror = pad[tuple(sel_int)]
        for q in range(NQ):
            if q == momentum:
                np.testing.assert_allclose(ghost[..., q], -mirror[..., q])
            else:
                np.testing.assert_allclose(ghost[..., q], mirror[..., q])


class TestPeriodic:
    def test_wraps_to_far_block(self):
        g = make_grid_with_pattern((2, 1, 1))
        block = g.blocks[(0, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        fill_block_ghosts(pad, g, block, BoundarySpec.all_periodic())
        far = g.blocks[(1, 0, 0)]
        np.testing.assert_array_equal(
            pad[:GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS],
            far.data[-GHOSTS:, :, :],
        )


class TestRemoteProvider:
    def test_provider_consulted_at_rank_boundary(self):
        g = make_grid_with_pattern((1, 1, 1))
        block = g.blocks[(0, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        marker = np.full((8, 8, GHOSTS, NQ), 7.5)

        def provider(index, axis, side):
            if axis == 2 and side == 1:
                return marker
            return None

        fill_block_ghosts(pad, g, block, remote_provider=provider)
        np.testing.assert_array_equal(
            pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, -GHOSTS:], marker
        )
        # Faces the provider declined fall back to the BC (extrapolate).
        first = pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS]
        np.testing.assert_array_equal(
            pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, 0], first
        )

    def test_sibling_wins_over_provider(self):
        g = make_grid_with_pattern((1, 1, 2))
        block = g.blocks[(0, 0, 0)]
        pad = padded_aos(8).astype(np.float64)
        pad[GHOSTS:-GHOSTS, GHOSTS:-GHOSTS, GHOSTS:-GHOSTS] = block.data
        called = []

        def provider(index, axis, side):
            called.append((axis, side))
            return None

        fill_block_ghosts(pad, g, block, remote_provider=provider)
        assert (2, 1) not in called  # that face has a sibling block
