"""sys-check: RS-rule fixtures, pragma spans, CLI contract, ledger.

Each RS rule gets a positive (fires) and a negative (clean) AST
fixture fed through ``check_sources`` under a synthetic path inside
the analyzer's scope.  The dynamic half exercises the
:class:`ResourceLedger` in both explicit and snapshot modes, and the
acceptance bar -- the real tree is RS-clean -- is asserted directly.
"""

from __future__ import annotations

import json
import textwrap
import threading
import time

import pytest

from repro.analysis.cli import main as cli_main
from repro.analysis.syscheck import (
    LeakError,
    ResourceLedger,
    SYS_REGISTRY,
    check_paths,
    check_sources,
    registered_sys_rules,
)

#: Synthetic in-scope paths (path_matches semantics: directory pattern
#: ``cluster/`` matches anywhere in the path).
CLUSTER = "src/repro/cluster/fixture.py"
SERVICE = "src/repro/service/fixture.py"
#: In RS006 scope (durable writer module).
CACHE = "src/repro/service/cache.py"


def run(code, path=CLUSTER, extra=None):
    """Analyze one dedented fixture module; returns the SysReport."""
    sources = {path: textwrap.dedent(code)}
    if extra:
        sources.update({p: textwrap.dedent(c) for p, c in extra.items()})
    return check_sources(sources)


def rules_fired(report):
    return {v.rule for v in report.violations}


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_catalogue_is_exactly_rs001_to_rs007(self):
        assert set(SYS_REGISTRY) == {
            f"RS{i:03d}" for i in range(1, 8)
        }

    def test_registered_rules_sorted_and_described(self):
        rules = registered_sys_rules()
        assert [r.rule_id for r in rules] == sorted(SYS_REGISTRY)
        for r in rules:
            assert r.name and r.description


# ---------------------------------------------------------------------------
# RS001 release-on-all-paths


class TestRS001:
    def test_never_released_segment_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def leak(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                seg.buf[0] = 1
        """)
        assert "RS001" in rules_fired(report)

    def test_try_finally_release_is_clean(self):
        report = run("""
            from multiprocessing import shared_memory

            def ok(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                try:
                    seg.buf[0] = 1
                finally:
                    seg.close()
                    seg.unlink()
        """)
        assert "RS001" not in rules_fired(report)

    def test_conditional_release_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def cond(token, flag):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                if flag:
                    seg.close()
                    seg.unlink()
        """)
        fired = [v for v in report.violations if v.rule == "RS001"]
        assert fired and "some paths" in fired[0].message

    def test_risky_call_before_tryfinally_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def risky(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                validate(token)
                try:
                    seg.buf[0] = 1
                finally:
                    seg.close()
                    seg.unlink()

            def validate(token):
                if not token:
                    raise ValueError(token)
        """)
        assert "RS001" in rules_fired(report)

    def test_discarded_helper_result_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def make_seg(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                return seg

            def use(token):
                make_seg(token)
        """)
        fired = [v for v in report.violations if v.rule == "RS001"]
        assert fired and any("discarded" in v.message for v in fired)

    def test_with_open_is_clean(self):
        report = run("""
            def ok(path):
                with open(path) as fh:
                    return fh.read()
        """)
        assert "RS001" not in rules_fired(report)

    def test_escaped_handle_is_callers_problem(self):
        report = run("""
            from multiprocessing import shared_memory

            def make_seg(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                return seg
        """)
        # Ownership transfers through the return: not RS001 here.
        assert "RS001" not in rules_fired(report)


# ---------------------------------------------------------------------------
# RS002 segment-ownership


class TestRS002:
    def test_create_without_unlink_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def create_only(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                seg.close()
        """)
        assert "RS002" in rules_fired(report)

    def test_create_with_unlink_is_clean(self):
        report = run("""
            from multiprocessing import shared_memory

            def owner(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                try:
                    seg.buf[0] = 1
                finally:
                    seg.close()
                    seg.unlink()
        """)
        assert "RS002" not in rules_fired(report)

    def test_non_owner_unlink_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def attach_and_unlink(token):
                seg = shared_memory.SharedMemory(name=token)
                try:
                    return bytes(seg.buf[:8])
                finally:
                    seg.close()
                    seg.unlink()
        """)
        fired = [v for v in report.violations if v.rule == "RS002"]
        assert fired and "unlink" in fired[0].message

    def test_attach_close_only_is_clean(self):
        report = run("""
            from multiprocessing import shared_memory

            def attach(token):
                seg = shared_memory.SharedMemory(name=token)
                try:
                    return bytes(seg.buf[:8])
                finally:
                    seg.close()
        """)
        assert "RS002" not in rules_fired(report)


# ---------------------------------------------------------------------------
# RS003 lock-across-blocking


class TestRS003:
    def test_queue_get_under_lock_fires(self):
        report = run("""
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self, task_q):
                    with self._lock:
                        return task_q.get(timeout=1.0)
        """, path=SERVICE)
        assert "RS003" in rules_fired(report)

    def test_sleep_under_lock_fires(self):
        report = run("""
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    with self._lock:
                        time.sleep(0.5)
        """, path=SERVICE)
        assert "RS003" in rules_fired(report)

    def test_condition_wait_on_held_lock_is_exempt(self):
        report = run("""
            import threading

            class Engine:
                def __init__(self):
                    self._cv = threading.Condition()

                def ok(self):
                    with self._cv:
                        self._cv.wait(timeout=1.0)
        """, path=SERVICE)
        assert "RS003" not in rules_fired(report)

    def test_blocking_helper_propagates_one_level(self):
        report = run("""
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def settle(self):
                    time.sleep(0.5)

                def bad(self):
                    with self._lock:
                        self.settle()
        """, path=SERVICE)
        fired = [v for v in report.violations if v.rule == "RS003"]
        assert fired and "settle" in fired[0].message

    def test_get_outside_lock_is_clean(self):
        report = run("""
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def ok(self, task_q):
                    msg = task_q.get(timeout=1.0)
                    with self._lock:
                        return msg
        """, path=SERVICE)
        assert "RS003" not in rules_fired(report)


# ---------------------------------------------------------------------------
# RS004 spawn-safety


class TestRS004:
    def test_lambda_target_fires(self):
        report = run("""
            def spawn(ctx):
                p = ctx.Process(target=lambda: None)
                p.start()
                p.join()
        """)
        assert "RS004" in rules_fired(report)

    def test_bound_method_target_fires(self):
        report = run("""
            class Owner:
                def work(self):
                    pass

                def spawn(self, ctx):
                    p = ctx.Process(target=self.work)
                    p.start()
                    p.join()
        """)
        assert "RS004" in rules_fired(report)

    def test_module_level_target_is_clean(self):
        report = run("""
            def work(n):
                return n * 2

            def spawn(ctx):
                p = ctx.Process(target=work, args=(3,))
                p.start()
                p.join()
        """)
        assert "RS004" not in rules_fired(report)

    def test_target_reading_module_mutable_fires(self):
        report = run("""
            REGISTRY = {}

            def work(n):
                return REGISTRY.get(n)

            def spawn(ctx):
                p = ctx.Process(target=work, args=(3,))
                p.start()
                p.join()
        """)
        fired = [v for v in report.violations if v.rule == "RS004"]
        assert fired and "REGISTRY" in fired[0].message


# ---------------------------------------------------------------------------
# RS005 thread-join-on-shutdown


class TestRS005:
    def test_non_daemon_thread_without_join_fires(self):
        report = run("""
            import threading

            def work():
                pass

            def fire_and_forget():
                t = threading.Thread(target=work)
                t.start()
        """)
        assert "RS005" in rules_fired(report)

    def test_daemon_thread_is_exempt(self):
        report = run("""
            import threading

            def work():
                pass

            def background():
                t = threading.Thread(target=work, daemon=True)
                t.start()
        """)
        assert "RS005" not in rules_fired(report)

    def test_joined_thread_is_clean(self):
        report = run("""
            import threading

            def work():
                pass

            def scoped():
                t = threading.Thread(target=work)
                t.start()
                t.join()
        """)
        assert "RS005" not in rules_fired(report)


# ---------------------------------------------------------------------------
# RS006 atomic-durable-write


class TestRS006:
    def test_plain_write_fires(self):
        report = run("""
            def save(path, data):
                with open(path, "w") as fh:
                    fh.write(data)
        """, path=CACHE)
        assert "RS006" in rules_fired(report)

    def test_path_write_text_fires(self):
        report = run("""
            from pathlib import Path

            def save(path, data):
                Path(path).write_text(data)
        """, path=CACHE)
        assert "RS006" in rules_fired(report)

    def test_tmp_fsync_replace_is_clean(self):
        report = run("""
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
        """, path=CACHE)
        assert "RS006" not in rules_fired(report)

    def test_replace_without_fsync_fires(self):
        report = run("""
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                os.replace(tmp, path)
        """, path=CACHE)
        fired = [v for v in report.violations if v.rule == "RS006"]
        assert fired and "fsync" in fired[0].message

    def test_out_of_scope_module_is_exempt(self):
        # Same code under a non-durable-writer path: no RS006.
        report = run("""
            def save(path, data):
                with open(path, "w") as fh:
                    fh.write(data)
        """, path=CLUSTER)
        assert "RS006" not in rules_fired(report)


# ---------------------------------------------------------------------------
# RS007 kill-window-hazard


class TestRS007:
    def test_segment_create_in_spawn_target_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def child(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                try:
                    seg.buf[0] = 1
                finally:
                    seg.close()
                    seg.unlink()

            def parent(ctx):
                p = ctx.Process(target=child, args=("tok",))
                p.start()
                p.join()
        """)
        assert "RS007" in rules_fired(report)

    def test_non_atomic_write_in_spawn_target_fires(self):
        report = run("""
            def child(path):
                with open(path, "w") as fh:
                    fh.write("state")

            def parent(ctx):
                p = ctx.Process(target=child, args=("f",))
                p.start()
                p.join()
        """)
        assert "RS007" in rules_fired(report)

    def test_attach_only_spawn_target_is_clean(self):
        report = run("""
            from multiprocessing import shared_memory

            def child(token):
                seg = shared_memory.SharedMemory(name=token)
                try:
                    seg.buf[0] = 1
                finally:
                    seg.close()

            def parent(ctx):
                p = ctx.Process(target=child, args=("tok",))
                p.start()
                p.join()
        """)
        assert "RS007" not in rules_fired(report)


# ---------------------------------------------------------------------------
# pragmas, report shape, acceptance


class TestPragmasAndReport:
    def test_statement_span_pragma_suppresses(self):
        report = run("""
            from multiprocessing import shared_memory

            def leak(token):
                seg = shared_memory.SharedMemory(  # lint: disable=RS001,RS002
                    name=token, create=True, size=64)
                seg.buf[0] = 1
        """)
        assert not report.violations
        assert report.checks_run > 0

    def test_file_wide_pragma_suppresses(self):
        report = run("""
            # lint: disable=RS001
            from multiprocessing import shared_memory

            def leak(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
                seg.buf[0] = 1
                seg.unlink()
        """)
        assert "RS001" not in rules_fired(report)

    def test_out_of_scope_file_never_fires(self):
        report = run("""
            from multiprocessing import shared_memory

            def leak(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
        """, path="src/repro/core/block.py")
        assert not report.violations

    def test_report_dict_shape(self):
        report = run("""
            from multiprocessing import shared_memory

            def leak(token):
                seg = shared_memory.SharedMemory(
                    name=token, create=True, size=64)
        """)
        d = report.to_dict()
        assert set(d) == {"checks_run", "findings", "by_rule"}
        assert d["findings"] and set(d["findings"][0]) == {
            "path", "line", "col", "rule", "message"
        }

    def test_real_tree_is_clean(self):
        # The acceptance bar: --sys exits 0 on src/repro.
        report = check_paths(["src/repro"])
        assert not report.violations, report.summary()
        assert report.checks_run > 1000


# ---------------------------------------------------------------------------
# CLI


BAD_FIXTURE = textwrap.dedent("""
    from multiprocessing import shared_memory

    def leak(token):
        seg = shared_memory.SharedMemory(name=token, create=True, size=64)
        seg.buf[0] = 1
""")


class TestCLI:
    def _tree(self, tmp_path, code):
        pkg = tmp_path / "cluster"
        pkg.mkdir()
        (pkg / "fixture.py").write_text(code)
        return tmp_path

    def test_sys_exit_1_on_findings(self, tmp_path, capsys):
        tree = self._tree(tmp_path, BAD_FIXTURE)
        assert cli_main(["--sys", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "RS001" in out and "RS002" in out

    def test_sys_exit_0_on_clean(self, tmp_path, capsys):
        tree = self._tree(
            tmp_path,
            "def ok(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n",
        )
        assert cli_main(["--sys", str(tree)]) == 0

    def test_sys_exit_2_on_unknown_rule(self, tmp_path):
        tree = self._tree(tmp_path, BAD_FIXTURE)
        assert cli_main(["--sys", "--select", "RS999", str(tree)]) == 2

    def test_select_narrows_findings(self, tmp_path, capsys):
        tree = self._tree(tmp_path, BAD_FIXTURE)
        assert cli_main(
            ["--sys", "--select", "RS002", str(tree)]
        ) == 1
        out = capsys.readouterr().out
        assert "RS002" in out and "RS001" not in out

    def test_all_merged_report_and_worst_of_exit(self, tmp_path, capsys):
        tree = self._tree(tmp_path, BAD_FIXTURE)
        report_out = tmp_path / "report.json"
        manifest_out = tmp_path / "kernel_manifest.json"
        code = cli_main([
            "--all", str(tree),
            "--report-out", str(report_out),
            "--manifest-out", str(manifest_out),
        ])
        assert code == 1
        payload = json.loads(report_out.read_text())
        assert payload["schema"] == "repro.analysis_report/v1"
        assert set(payload["families"]) == {"lint", "comm", "perf", "sys"}
        assert payload["totals"]["by_family"]["sys"] >= 2
        assert payload["totals"]["findings"] == len(payload["findings"])
        assert all(f["family"] for f in payload["findings"])
        assert manifest_out.exists()  # --all still certifies kernels

    def test_all_exit_0_on_clean_tree(self, tmp_path):
        tree = self._tree(
            tmp_path,
            "def ok(n):\n"
            "    return n + 1\n",
        )
        assert cli_main([
            "--all", str(tree),
            "--manifest-out", str(tmp_path / "km.json"),
        ]) == 0

    def test_list_rules_includes_rs_catalogue(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("RS001", "RS004", "RS007"):
            assert rid in out


# ---------------------------------------------------------------------------
# ResourceLedger (dynamic half)


class TestLedgerExplicit:
    def test_register_close_accounting(self):
        ledger = ResourceLedger()
        h1, h2 = object(), object()
        ledger.register("segment", h1, "seg-a")
        ledger.register("thread", h2, "worker")
        assert ledger.leaked() == ["segment: seg-a", "thread: worker"]
        ledger.close("segment", h1)
        assert ledger.leaked() == ["thread: worker"]
        ledger.close("thread", h2)
        ledger.close("thread", h2)  # idempotent
        assert ledger.leaked() == []

    def test_unknown_kind_rejected(self):
        ledger = ResourceLedger()
        with pytest.raises(ValueError):
            ledger.register("socket", object())

    def test_open_registration_fails_check(self):
        ledger = ResourceLedger()
        ledger.begin(kinds=())
        ledger.register("segment", object(), "orphan")
        with pytest.raises(LeakError, match="orphan"):
            ledger.assert_clean(grace=0.0)


class TestLedgerSnapshot:
    def test_leaked_thread_detected_then_cleared(self):
        ledger = ResourceLedger()
        ledger.begin(kinds=("thread",))
        release = threading.Event()
        t = threading.Thread(
            target=release.wait, name="syscheck-leaker", daemon=True
        )
        t.start()
        leaks = ledger.check(grace=0.2, kinds=("thread",))
        assert any("syscheck-leaker" in entry for entry in leaks)
        release.set()
        t.join(timeout=5.0)
        ledger.assert_clean(grace=5.0, kinds=("thread",))

    def test_leaked_segment_detected_then_cleared(self):
        shared_memory = pytest.importorskip(
            "multiprocessing.shared_memory"
        )
        ledger = ResourceLedger()
        ledger.begin(kinds=("segment",))
        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            leaks = ledger.check(grace=0.2, kinds=("segment",))
            assert any("segment" in entry for entry in leaks)
        finally:
            seg.close()
            seg.unlink()
        ledger.assert_clean(grace=5.0, kinds=("segment",))

    def test_check_before_begin_raises(self):
        with pytest.raises(RuntimeError):
            ResourceLedger().check()

    def test_context_manager_asserts_on_success_only(self):
        with pytest.raises(ValueError):
            # The ledger must not mask the test's own failure with a
            # secondary leak report.
            with ResourceLedger():
                t = threading.Thread(target=time.sleep, args=(0.2,))
                t.start()
                try:
                    raise ValueError("primary failure")
                finally:
                    t.join()

    def test_clean_region_passes(self):
        with ResourceLedger():
            t = threading.Thread(target=lambda: None)
            t.start()
            t.join()
