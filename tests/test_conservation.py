"""Driver-level conservation and stability properties.

The finite-volume scheme telescopes: in a fully periodic domain the
volume integrals of mass, momentum and energy are exactly conserved by
the spatial discretization (and by RK3 in exact arithmetic); float32
storage introduces a bounded drift.  These tests run the *full stack*
(multi-rank, halo exchange, wall/periodic boundaries) and check the
discrete conservation laws plus physical admissibility.
"""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.physics.state import ENERGY, RHO, RHOU, RHOV, RHOW
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.diagnostics import pressure_field
from repro.sim.ic import cloud_collapse


def totals(field):
    f = field.astype(np.float64)
    return {
        "mass": f[..., RHO].sum(),
        "mom_x": f[..., RHOU].sum(),
        "mom_y": f[..., RHOV].sum(),
        "mom_z": f[..., RHOW].sum(),
        "energy": f[..., ENERGY].sum(),
    }


@pytest.fixture(scope="module")
def periodic_run():
    ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
    cfg = SimulationConfig(
        cells=16, block_size=8, max_steps=10, diag_interval=0,
        periodic=(True, True, True),
    )
    c = (np.arange(16) + 0.5) / 16
    initial = ic(c[:, None, None], c[None, :, None], c[None, None, :]).astype(
        np.float32
    )
    return initial, Simulation(cfg, ic).run()


class TestPeriodicConservation:
    @pytest.mark.parametrize("key", ["mass", "energy"])
    def test_conserved_to_storage_precision(self, periodic_run, key):
        initial, res = periodic_run
        t0 = totals(initial)
        t1 = totals(res.final_field)
        # float32 storage: ~1e-7 relative per step, 10 steps.
        assert t1[key] == pytest.approx(t0[key], rel=5e-6)

    @pytest.mark.parametrize("key", ["mom_x", "mom_y", "mom_z"])
    def test_momentum_stays_near_zero(self, periodic_run, key):
        initial, res = periodic_run
        t1 = totals(res.final_field)
        # Initial momentum is exactly zero; drift is storage round-off
        # relative to the momentum scale rho*c ~ 5e3 per cell.
        scale = 16**3 * 1000.0
        assert abs(t1[key]) < 1e-4 * scale

    def test_something_actually_happened(self, periodic_run):
        """Guard against trivially passing via a frozen field."""
        initial, res = periodic_run
        diff = np.abs(
            res.final_field.astype(np.float64) - initial.astype(np.float64)
        ).max()
        assert diff > 1.0


class TestAdmissibility:
    def test_positivity_through_collapse(self):
        """Density and p + p_c stay positive through a violent collapse."""
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.25)], p_liquid=1000.0)
        cfg = SimulationConfig(cells=16, block_size=8, max_steps=40,
                               diag_interval=0)
        res = Simulation(cfg, ic).run()
        f = res.final_field
        assert (f[..., RHO] > 0).all()
        p = pressure_field(f)
        # Stiffened gas admits p > -p_c; vapor has p_c = 1.
        assert (p > -1.0).all()

    def test_multirank_periodic_matches_single(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
        base = dict(cells=16, block_size=8, max_steps=4, diag_interval=0,
                    periodic=(True, True, True))
        r1 = Simulation(SimulationConfig(**base), ic).run()
        r2 = Simulation(SimulationConfig(**base, ranks=2), ic).run()
        np.testing.assert_array_equal(r1.final_field, r2.final_field)
