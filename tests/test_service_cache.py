"""Tests of repro.service canonical requests and the CRC-verified cache."""

from __future__ import annotations

import os
import pickle
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.service import ICSpec, JobRequest, RequestError, ResultCache
from repro.service.cache import _HEADER, MAGIC
from repro.service.request import canonical_json, canonical_key
from repro.sim import SimulationConfig

pytestmark = pytest.mark.tier1


def make_request(**overrides):
    kw = dict(cells=16, block_size=8, max_steps=2, diag_interval=1)
    kw.update(overrides)
    cfg = SimulationConfig(**kw)
    return JobRequest(config=cfg,
                      ic=ICSpec("uniform", {"rho": 1000.0, "p": 100.0}))


class TestCanonicalization:
    def test_key_is_stable_hex_sha256(self):
        key = make_request().key()
        assert len(key) == 64
        assert key == make_request().key()

    def test_runtime_fields_do_not_change_the_key(self):
        base = make_request().key()
        assert make_request(ranks=4).key() == base
        assert make_request(cluster_backend="procs").key() == base
        assert make_request(num_workers=2).key() == base
        assert make_request(comm_timeout=5.0).key() == base

    def test_semantic_fields_change_the_key(self):
        base = make_request().key()
        assert make_request(max_steps=3).key() != base
        assert make_request(cells=24).key() != base
        assert make_request(cfl=0.2).key() != base

    def test_ic_params_are_semantic(self):
        a = JobRequest(config=make_request().config,
                       ic=ICSpec("uniform", {"rho": 1000.0, "p": 100.0}))
        b = JobRequest(config=make_request().config,
                       ic=ICSpec("uniform", {"rho": 1000.0, "p": 200.0}))
        assert a.key() != b.key()

    def test_unknown_ic_kind_rejected(self):
        with pytest.raises(RequestError, match="unknown IC kind"):
            ICSpec("warp_field", {})

    def test_non_jsonable_ic_params_rejected(self):
        with pytest.raises(RequestError, match="JSON-able"):
            ICSpec("uniform", {"rho": b"\x00"})

    def test_fault_plan_in_config_rejected(self):
        cfg = SimulationConfig(cells=16, block_size=8, max_steps=1,
                               fault_plan=FaultPlan(seed=1))
        with pytest.raises(RequestError, match="per-submission chaos"):
            JobRequest(config=cfg, ic=ICSpec("uniform"))

    def test_payload_round_trip_preserves_key(self):
        req = make_request(ranks=2, periodic=(True, True, True))
        clone = JobRequest.from_payload(req.to_payload())
        assert clone.key() == req.key()
        assert clone.config.ranks == 2
        assert clone.config.periodic == (True, True, True)

    def test_restart_content_enters_the_key(self, tmp_path):
        f1 = tmp_path / "a.rck"
        f2 = tmp_path / "b.rck"
        f1.write_bytes(b"state-one")
        f2.write_bytes(b"state-two")
        cfg = make_request().config
        ic = ICSpec("uniform")
        ka = JobRequest(config=cfg, ic=ic, restart_from=str(f1)).key()
        kb = JobRequest(config=cfg, ic=ic, restart_from=str(f2)).key()
        assert ka != kb
        # byte-identical restart files dedup
        f2.write_bytes(b"state-one")
        assert JobRequest(config=cfg, ic=ic,
                          restart_from=str(f2)).key() == ka

    def test_canonical_json_sorted_and_compact(self):
        doc = {"b": 1, "a": [1, 2]}
        assert canonical_json(doc) == '{"a":[1,2],"b":1}'
        assert canonical_key(doc) == canonical_key({"a": [1, 2], "b": 1})

    def test_ic_builders_produce_fields(self):
        z, y, x = np.meshgrid(np.linspace(0.1, 0.9, 4),
                              np.linspace(0.1, 0.9, 4),
                              np.linspace(0.1, 0.9, 4), indexing="ij")
        specs = [
            ICSpec("uniform", {"rho": 1000.0, "p": 100.0}),
            ICSpec("cloud_collapse",
                   {"bubbles": [[0.5, 0.5, 0.5, 0.2]],
                    "p_liquid": 1000.0}),
            ICSpec("generated_cloud", {"n_bubbles": 2, "seed": 7}),
            ICSpec("shock_tube",
                   {"left": {"rho": 1000.0, "p": 1000.0},
                    "right": {"rho": 1000.0, "p": 100.0}}),
            ICSpec("shock_bubble",
                   {"bubble": [0.5, 0.5, 0.5, 0.15],
                    "shock_position": 0.2, "p_post": 3000.0}),
        ]
        for spec in specs:
            state = spec.build()(z, y, x)
            assert state.shape == z.shape + (state.shape[-1],)
            assert np.isfinite(state).all()


class TestResultCache:
    def payload(self):
        return {"final_field": np.arange(64, dtype=np.float64),
                "wall_seconds": 1.0}

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "k" * 64
        cache.put(key, self.payload(), meta={"attempts": 2})
        hit = cache.get(key)
        assert hit is not None
        meta, payload = hit
        assert meta["attempts"] == 2
        assert meta["key"] == key
        np.testing.assert_array_equal(payload["final_field"],
                                      self.payload()["final_field"])
        assert cache.counters == {"hits": 1, "misses": 0, "writes": 1,
                                  "quarantined": 0}

    def test_miss_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get("absent" * 10) is None
        assert cache.counters["misses"] == 1

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "t" * 64
        path = cache.put(key, self.payload())
        blob = Path(path).read_bytes()
        Path(path).write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None  # miss, not an exception
        assert cache.counters["quarantined"] == 1
        assert key not in cache
        assert os.path.exists(path + ".quarantined")
        # recompute path: a fresh put fully heals the entry
        cache.put(key, self.payload())
        assert cache.get(key) is not None

    def test_payload_bitflip_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "f" * 64
        path = cache.put(key, self.payload())
        blob = bytearray(Path(path).read_bytes())
        blob[-1] ^= 0x40
        Path(path).write_bytes(bytes(blob))
        assert cache.get(key) is None
        assert cache.counters["quarantined"] == 1

    def test_meta_bitflip_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "m" * 64
        path = cache.put(key, self.payload())
        blob = bytearray(Path(path).read_bytes())
        blob[_HEADER.size] ^= 0x01  # first meta byte
        Path(path).write_bytes(bytes(blob))
        assert cache.get(key) is None

    def test_bad_magic_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        key = "g" * 64
        path = cache.put(key, self.payload())
        blob = bytearray(Path(path).read_bytes())
        blob[:4] = b"NOPE"
        Path(path).write_bytes(bytes(blob))
        assert cache.get(key) is None

    def test_crc_catches_what_pickle_would_accept(self, tmp_path):
        # Swap the payload for a different but well-formed pickle while
        # keeping the old CRCs: framing alone would pass, CRC must not.
        cache = ResultCache(str(tmp_path / "c"))
        key = "s" * 64
        path = cache.put(key, self.payload())
        blob = Path(path).read_bytes()
        magic, meta_len, payload_len, meta_crc, payload_crc = \
            _HEADER.unpack_from(blob)
        evil = pickle.dumps({"final_field": np.zeros(1)})
        forged = (_HEADER.pack(MAGIC, meta_len, len(evil), meta_crc,
                               payload_crc)
                  + blob[_HEADER.size:_HEADER.size + meta_len] + evil)
        Path(path).write_bytes(forged)
        assert cache.get(key) is None
        assert cache.counters["quarantined"] == 1

    def test_injector_driven_write_corruption(self, tmp_path):
        # A ckpt_bitflip spec addressed at rank -1 hits exactly one
        # cache write; the read path must quarantine it.
        plan = FaultPlan(seed=3, faults=[
            FaultSpec(kind="ckpt_bitflip", rank=-1, max_hits=1),
        ])
        cache = ResultCache(str(tmp_path / "c"),
                            injector=FaultInjector(plan))
        cache.put("a" * 64, self.payload())
        cache.put("b" * 64, self.payload())
        results = [cache.get("a" * 64), cache.get("b" * 64)]
        assert sum(r is None for r in results) == 1
        assert cache.counters["quarantined"] == 1

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        cache.put("z" * 64, self.payload())
        assert not any(n.endswith(".tmp") for n in os.listdir(cache.root))
        assert cache.entries() == 1
