"""Tests for the simulation driver (repro.cluster.driver)."""

import os

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.compression.io import read_field, read_header
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse, uniform
from repro.sim.cloud import Bubble


def small_config(**kw):
    defaults = dict(cells=16, block_size=8, max_steps=3, num_workers=2,
                    diag_interval=1)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestUniformRun:
    def test_stays_uniform(self):
        res = Simulation(small_config(), uniform()).run()
        assert len(res.records) == 3
        ke = res.series("kinetic_energy")
        np.testing.assert_allclose(ke, 0.0, atol=1e-12)
        p = res.series("max_pressure")
        np.testing.assert_allclose(p, 100.0, rtol=1e-4)

    def test_time_advances_with_cfl(self):
        res = Simulation(small_config(), uniform()).run()
        dts = [r.dt for r in res.records]
        assert all(dt > 0 for dt in dts)
        # CFL 0.3, h = 1/16, c ~ 5.26 (paper materials in bar/kg/m3 units)
        assert dts[0] == pytest.approx(0.3 * (1 / 16) / 5.258, rel=0.01)

    def test_t_end_respected(self):
        cfg = small_config(max_steps=1000, t_end=0.01)
        res = Simulation(cfg, uniform()).run()
        assert res.records[-1].time == pytest.approx(0.01, rel=1e-9)
        assert len(res.records) < 1000

    def test_timers_recorded(self):
        res = Simulation(small_config(), uniform()).run()
        for key in ("DT", "RHS", "UP", "COMM_WAIT", "DIAG"):
            assert key in res.timers
        assert res.timers["RHS"] > 0


class TestDecompositionInvariance:
    def test_multi_rank_matches_single(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        r1 = Simulation(small_config(cells=16, max_steps=3), ic).run()
        r2 = Simulation(small_config(cells=16, max_steps=3, ranks=2), ic).run()
        np.testing.assert_array_equal(r2.final_field, r1.final_field)

    def test_eight_ranks(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        r1 = Simulation(small_config(cells=16, max_steps=2), ic).run()
        r8 = Simulation(small_config(cells=16, max_steps=2, ranks=8), ic).run()
        np.testing.assert_array_equal(r8.final_field, r1.final_field)

    def test_diagnostics_identical_across_ranks(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        r1 = Simulation(small_config(cells=16, max_steps=3), ic).run()
        r2 = Simulation(small_config(cells=16, max_steps=3, ranks=2), ic).run()
        np.testing.assert_allclose(
            r1.series("max_pressure"), r2.series("max_pressure"), rtol=1e-12
        )
        np.testing.assert_allclose(
            r1.series("vapor_volume"), r2.series("vapor_volume"), rtol=1e-12
        )


class TestCollapsePhysics:
    def test_bubble_shrinks_under_pressure(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        res = Simulation(small_config(cells=16, max_steps=6), ic).run()
        vv = res.series("vapor_volume")
        assert vv[-1] < vv[0]

    def test_kinetic_energy_grows_initially(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        res = Simulation(small_config(cells=16, max_steps=6), ic).run()
        ke = res.series("kinetic_energy")
        assert ke[-1] > ke[0]

    def test_wall_diagnostic_active(self):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        cfg = small_config(cells=16, max_steps=2, wall=(0, -1))
        res = Simulation(cfg, ic).run()
        w = res.series("wall_max_pressure")
        assert np.isfinite(w).all()
        assert (w > 0).all()


class TestDumps:
    def test_compressed_dump_roundtrip(self, tmp_path):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        cfg = small_config(
            cells=16, max_steps=2, dump_interval=2, dump_dir=str(tmp_path)
        )
        res = Simulation(cfg, ic).run()
        p_file = tmp_path / "dump_step000002_p.rwz"
        g_file = tmp_path / "dump_step000002_Gamma.rwz"
        assert p_file.exists() and g_file.exists()
        header = read_header(str(p_file))
        assert header["quantity"] == "p"
        field = read_field(str(g_file))
        assert field.shape == (16, 16, 16)
        # Decompressed Gamma must lie between the two material values.
        assert field.min() >= 0.17 and field.max() <= 2.51
        assert res.rank_results[0].compression_stats

    def test_multi_rank_dump_stitches(self, tmp_path):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)])
        base = dict(cells=16, max_steps=2, dump_interval=2)
        cfg1 = small_config(**base, dump_dir=str(tmp_path / "a"))
        cfg2 = small_config(**base, ranks=2, dump_dir=str(tmp_path / "b"))
        os.makedirs(tmp_path / "a")
        os.makedirs(tmp_path / "b")
        Simulation(cfg1, ic).run()
        Simulation(cfg2, ic).run()
        f1 = read_field(str(tmp_path / "a" / "dump_step000002_p.rwz"))
        f2 = read_field(str(tmp_path / "b" / "dump_step000002_p.rwz"))
        assert f2.shape == f1.shape
        # Lossy thresholds are applied per subdomain, so allow the bound.
        assert np.abs(f1 - f2).max() <= 2 * 1e-2 * 120  # eps_p * scale margin

    def test_io_timers(self, tmp_path):
        ic = uniform()
        cfg = small_config(dump_interval=1, dump_dir=str(tmp_path))
        res = Simulation(cfg, ic).run()
        assert res.timers.get("IO_WAVELET", 0) > 0
        assert res.timers.get("IO_FWT", 0) > 0
        assert res.timers.get("IO_WRITE", 0) > 0
