"""Tests for the zerotree (EZW-style) coder (repro.compression.zerotree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import zerotree as zt
from repro.compression.wavelet import fwt3d, iwt3d, max_levels

from .conftest import make_rng


def smooth_coeffs(n=16, amp=10.0):
    t = np.linspace(-1, 1, n)
    g = np.exp(-4 * t**2) * amp
    f = g[:, None, None] * g[None, :, None] * g[None, None, :]
    return fwt3d(f, max_levels(n)), f


class TestRoundtrip:
    def test_error_bounded_by_t_stop(self, rng):
        c = fwt3d(rng.normal(size=(16, 16, 16)), 2)
        payload, _ = zt.encode(c, 2, t_stop=1e-2)
        c2 = zt.decode(payload, 2)
        assert np.abs(c2 - c).max() <= 1e-2 * (1 + 1e-9)

    @given(seed=st.integers(0, 2**31), t_exp=st.integers(-3, 0))
    @settings(max_examples=15, deadline=None)
    def test_error_bound_property(self, seed, t_exp):
        t_stop = 10.0**t_exp
        c = fwt3d(make_rng(seed).normal(size=(8, 8, 8)), 1)
        payload, _ = zt.encode(c, 1, t_stop=t_stop)
        c2 = zt.decode(payload, 1)
        assert np.abs(c2 - c).max() <= t_stop * (1 + 1e-9)

    def test_all_below_threshold(self):
        c = np.full((8, 8, 8), 1e-6)
        payload, stats = zt.encode(c, 1, t_stop=1e-2)
        assert stats.planes == 0
        c2 = zt.decode(payload, 1)
        assert not c2.any()

    def test_signs_preserved(self, rng):
        c = fwt3d(rng.normal(size=(8, 8, 8)) * 100, 1)
        payload, _ = zt.encode(c, 1, t_stop=1e-3)
        c2 = zt.decode(payload, 1)
        big = np.abs(c) > 1.0
        assert (np.sign(c2[big]) == np.sign(c[big])).all()

    def test_field_reconstruction(self):
        c, f = smooth_coeffs()
        payload, _ = zt.encode(c, max_levels(16), t_stop=1e-3)
        f2 = iwt3d(zt.decode(payload, max_levels(16)), max_levels(16))
        # Coefficient error 1e-3 amplifies through the inverse transform
        # by the exact amplification factor at most.
        assert np.abs(f2 - f).max() < 0.1


class TestEmbedded:
    def test_coarser_t_stop_smaller_payload(self, rng):
        c = fwt3d(rng.normal(size=(16, 16, 16)), 2)
        p_coarse, _ = zt.encode(c, 2, t_stop=1e-1)
        p_fine, _ = zt.encode(c, 2, t_stop=1e-4)
        assert len(p_coarse) < len(p_fine)

    def test_beats_zlib_on_sparse_data(self):
        """Where it matters (smooth fields -> sparse significant sets),
        zerotree coding outperforms deflate of the decimated array --
        the reason the paper cites it as the efficient alternative."""
        import zlib

        from repro.compression.decimation import decimate

        c, _ = smooth_coeffs(32)
        levels = max_levels(32)
        payload, stats = zt.encode(c, levels, t_stop=1e-3)
        c_dec = c.copy()
        decimate(c_dec, levels, 1e-3, guaranteed=False)
        zlib_bytes = len(zlib.compress(c_dec.astype(np.float32).tobytes(), 6))
        assert len(payload) < zlib_bytes

    def test_stats(self, rng):
        c = fwt3d(rng.normal(size=(8, 8, 8)), 1)
        payload, stats = zt.encode(c, 1, t_stop=1e-1)
        assert stats.compressed_bytes == len(payload)
        assert stats.raw_bytes == 8**3 * 4
        assert stats.dominant_symbols > 0


class TestErrors:
    def test_non_3d(self):
        with pytest.raises(ValueError):
            zt.encode(np.zeros((4, 4)), 1, t_stop=1e-3)

    def test_bad_t_stop(self):
        with pytest.raises(ValueError):
            zt.encode(np.zeros((8, 8, 8)), 1, t_stop=0.0)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            zt.decode(b"XXXX" + b"\0" * 64, 1)

    def test_truncated_stream(self, rng):
        c = fwt3d(rng.normal(size=(8, 8, 8)), 1)
        payload, _ = zt.encode(c, 1, t_stop=1e-3)
        with pytest.raises(Exception):
            zt.decode(payload[: len(payload) // 2], 1)
