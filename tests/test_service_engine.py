"""Integration tests of the job engine over real worker processes.

Worker pools spawn real processes (~1 s import cost each), so jobs here
are tiny (16^3 cells, a handful of steps) and engines are scoped tightly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.resilience import FaultPlan, FaultSpec
from repro.service import (
    BackoffPolicy,
    ICSpec,
    JobEngine,
    JobRequest,
    JobShedError,
    PoisonedConfigError,
    ServiceClosedError,
    ServiceConfig,
    health_snapshot,
)
from repro.sim import SimulationConfig

pytestmark = pytest.mark.tier2

IC = ICSpec("uniform", {"rho": 1000.0, "p": 100.0})


def make_request(**overrides):
    kw = dict(cells=16, block_size=8, max_steps=3, diag_interval=1)
    kw.update(overrides)
    return JobRequest(config=SimulationConfig(**kw), ic=IC)


def fast_backoff(attempts=3):
    return BackoffPolicy(max_attempts=attempts, base_delay=0.05,
                         max_delay=0.2)


def reference_field(request: JobRequest):
    return Simulation(request.config, request.ic.build()).run().final_field


class TestEngineBasics:
    def test_compute_dedup_and_cache(self, tmp_path):
        req = make_request()
        other = make_request(max_steps=2)
        svc = ServiceConfig(workers=2, workdir=str(tmp_path / "w"))
        with JobEngine(svc) as engine:
            h1 = engine.submit(req)
            h_dup = engine.submit(req)   # in-flight duplicate: dedup
            h2 = engine.submit(other)
            r1 = h1.result(timeout=180)
            r_dup = h_dup.result(timeout=180)
            r2 = h2.result(timeout=180)
            # Single-flight: the duplicate shared the computation.
            assert engine.counters["computed"] == 2
            assert engine.counters["dedup_joined"] == 1
            assert r_dup.payload is r1.payload
            # Terminal duplicate: served from the CRC-verified cache.
            h3 = engine.submit(req)
            r3 = h3.result(timeout=10)
            assert r3.cached
            assert engine.counters["cache_hits"] == 1
            np.testing.assert_array_equal(r3.final_field, r1.final_field)
            assert r1.key != r2.key
            assert engine.cache.entries() == 2
        np.testing.assert_array_equal(r1.final_field, reference_field(req))

    def test_admission_sheds_under_overload(self, tmp_path):
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"),
                            max_pending=1, park_capacity=0)
        reqs = [make_request(max_steps=n) for n in (4, 2, 3)]
        with JobEngine(svc) as engine:
            h1 = engine.submit(reqs[0])
            deadline = time.monotonic() + 60
            while h1.status != "running" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert h1.status == "running"
            h2 = engine.submit(reqs[1])  # takes the one ready slot
            h3 = engine.submit(reqs[2])  # no slot, no parking: shed
            assert h3.status == "shed"
            with pytest.raises(JobShedError):
                h3.result(timeout=5)
            assert h1.result(timeout=180).final_field is not None
            assert h2.result(timeout=180).final_field is not None
            assert engine.counters["shed"] == 1
            assert engine.queue.shed_total == 1

    def test_closed_engine_rejects_submits(self, tmp_path):
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"))
        engine = JobEngine(svc).start()
        engine.shutdown(drain=True)
        with pytest.raises(ServiceClosedError):
            engine.submit(make_request())

    def test_health_snapshot_schema(self, tmp_path):
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"))
        with JobEngine(svc) as engine:
            engine.submit(make_request(max_steps=1)).result(timeout=180)
            snap = health_snapshot(engine)
        assert snap["schema"] == "repro.service_health/v1"
        assert snap["counters"]["computed"] == 1
        assert snap["cache"]["entries"] == 1
        assert snap["breaker"]["open_keys"] == []
        assert len(snap["workers"]) == 1
        assert snap["jobs"]["by_status"]["done_computed"] == 1
        import json

        json.dumps(snap)  # must be JSON-able for --health-out / CI


class TestEngineChaos:
    def test_sigkill_retry_is_bit_identical(self, tmp_path):
        req = make_request(max_steps=4)
        plan = FaultPlan(seed=7, faults=[
            FaultSpec(kind="rank_crash", step=3, max_hits=1),
        ])
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"),
                            backoff=fast_backoff())
        with JobEngine(svc) as engine:
            handle = engine.submit(req, fault_plan=plan)
            result = handle.result(timeout=180)
            # The worker was really SIGKILLed and the job retried on a
            # fresh worker; the consumed kill did not refire.
            assert result.attempts == 2
            assert engine.counters["kills_delivered"] == 1
            assert engine.counters["retries"] == 1
            assert engine.pool.restarts >= 1
            assert engine.failures_by_kind.get("rank_crash") == 1
        np.testing.assert_array_equal(result.final_field,
                                      reference_field(req))

    def test_checkpoint_resume_retry_is_bit_identical(self, tmp_path):
        req = make_request(max_steps=6)
        plan = FaultPlan(seed=9, faults=[
            FaultSpec(kind="rank_crash", step=5, max_hits=1),
        ])
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"),
                            checkpoint_interval=2, backoff=fast_backoff())
        with JobEngine(svc) as engine:
            result = engine.submit(req, fault_plan=plan).result(timeout=180)
            assert result.attempts == 2
            # Resumed from the newest verified checkpoint, not scratch:
            # the recorded series starts mid-run ...
            assert result.payload["first_recorded_step"] > 1
        # ... and the final field is still bit-identical.
        np.testing.assert_array_equal(result.final_field,
                                      reference_field(req))

    def test_timeout_kill_and_recovery(self, tmp_path):
        req = make_request(max_steps=4)
        plan = FaultPlan(seed=8, faults=[
            FaultSpec(kind="straggler", step=2, delay=30.0, max_hits=1),
        ])
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"),
                            job_timeout=4.0, backoff=fast_backoff())
        with JobEngine(svc) as engine:
            result = engine.submit(req, fault_plan=plan).result(timeout=180)
            # The stalled attempt was killed at its deadline; the stall
            # was consumed parent-side so the retry ran clean.
            assert result.attempts == 2
            assert engine.counters["timeouts"] == 1
            assert engine.failures_by_kind.get("timeout") == 1
        np.testing.assert_array_equal(result.final_field,
                                      reference_field(req))

    def test_breaker_quarantines_poison_config(self, tmp_path):
        req = make_request(max_steps=2)
        poison = FaultPlan(seed=10, faults=[
            FaultSpec(kind="rank_crash", step=1, max_hits=0),  # unlimited
        ])
        svc = ServiceConfig(workers=2, workdir=str(tmp_path / "w"),
                            breaker_threshold=2,
                            backoff=fast_backoff(attempts=5))
        with JobEngine(svc) as engine:
            handle = engine.submit(req, fault_plan=poison)
            with pytest.raises(PoisonedConfigError) as exc_info:
                handle.result(timeout=180)
            assert handle.status == "poisoned"
            # Opened within K attempts, corroborated by distinct workers.
            assert len(set(exc_info.value.workers)) == 2
            assert handle.attempts <= 2
            assert engine.counters["breaker_opened"] == 1
            # Fail-fast: resubmitting the quarantined key never runs.
            h2 = engine.submit(req)
            with pytest.raises(PoisonedConfigError):
                h2.result(timeout=5)
            assert h2.attempts == 0
            assert engine.counters["poisoned"] == 2
