"""Tests of the dynamic race detector, deadlock watchdog and wiring."""

from __future__ import annotations

import time

import pytest

from repro.analysis.concurrency import (
    DEADLOCK_RULE,
    RACE_RULE,
    ConcurrencyViolationError,
    ConcurrencyWarning,
    RaceTracker,
    make_tracker,
)
from repro.cluster.driver import Simulation
from repro.cluster.mpi_sim import DeadlockError, SimWorld, WorldError
from repro.sim.config import SimulationConfig
from repro.sim.ic import uniform


def small_config(**kw):
    defaults = dict(cells=16, block_size=8, max_steps=3, num_workers=2,
                    diag_interval=1)
    defaults.update(kw)
    return SimulationConfig(**defaults)


# -- tracker construction and policy ---------------------------------------


class TestMakeTracker:
    def test_off_returns_none(self):
        assert make_tracker("off") is None

    def test_warn_and_raise_return_trackers(self):
        assert make_tracker("warn").policy == "warn"
        assert make_tracker("raise").policy == "raise"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown concurrency policy"):
            make_tracker("loud")
        with pytest.raises(ValueError, match="unknown concurrency policy"):
            RaceTracker(policy="loud")

    def test_config_validates_policy(self):
        with pytest.raises(ValueError, match="concurrency_check"):
            SimulationConfig(cells=16, block_size=8,
                             concurrency_check="bogus")


# -- vector-clock unit behavior --------------------------------------------


class TestHappensBefore:
    def test_unordered_cross_rank_writes_race(self):
        tr = RaceTracker(policy="warn")
        with pytest.warns(ConcurrencyWarning):
            tr.write("shared.counter", 0)
            tr.write("shared.counter", 1)
        assert [v.rule for v in tr.report.violations] == [RACE_RULE]

    def test_raise_policy_raises_on_first_race(self):
        tr = RaceTracker(policy="raise")
        tr.write("shared.counter", 0)
        with pytest.raises(ConcurrencyViolationError) as exc:
            tr.write("shared.counter", 1)
        assert exc.value.violations[0].rule == RACE_RULE

    def test_message_edge_orders_accesses(self):
        tr = RaceTracker(policy="raise")
        tr.write("shared.counter", 0)
        clock = tr.on_send(0)
        tr.on_deliver(1, clock)
        tr.write("shared.counter", 1)  # ordered after rank 0's write
        assert tr.report.violations == []

    def test_collective_edge_orders_accesses(self):
        tr = RaceTracker(policy="raise")
        tr.write("shared.counter", 0)
        clocks = [tr.on_collective_enter(r) for r in (0, 1)]
        for r in (0, 1):
            tr.on_collective_exit(r, clocks)
        tr.write("shared.counter", 1)
        assert tr.report.violations == []

    def test_read_write_race_detected(self):
        tr = RaceTracker(policy="warn")
        tr.read("table", 0)
        with pytest.warns(ConcurrencyWarning, match="data race on table"):
            tr.write("table", 1)

    def test_concurrent_reads_do_not_race(self):
        tr = RaceTracker(policy="raise")
        tr.read("table", 0)
        tr.read("table", 1)
        assert tr.report.violations == []

    def test_same_rank_accesses_never_race(self):
        tr = RaceTracker(policy="raise")
        tr.write("table", 0)
        tr.write("table", 0)
        tr.read("table", 0)
        assert tr.report.violations == []

    def test_lockset_fallback_protects(self):
        tr = RaceTracker(policy="raise")
        tr.write("box", 0, locks=("box.cv",))
        tr.write("box", 1, locks=("box.cv",))
        assert tr.report.violations == []

    def test_disjoint_locks_still_race(self):
        tr = RaceTracker(policy="warn")
        tr.write("box", 0, locks=("a",))
        with pytest.warns(ConcurrencyWarning):
            tr.write("box", 1, locks=("b",))

    def test_on_deadlock_records_but_never_raises(self):
        tr = RaceTracker(policy="raise")
        v = tr.on_deadlock("deadlock: rank 0 timed out in recv")
        assert v.rule == DEADLOCK_RULE
        assert tr.report.violations == [v]


# -- runtime integration ---------------------------------------------------


class TestWorldIntegration:
    def test_clean_ring_exchange_under_raise(self):
        tracker = RaceTracker(policy="raise")
        world = SimWorld(4, tracker=tracker)

        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right, tag=0)
            got = comm.recv(source=left, tag=0)
            comm.barrier()
            total = comm.allreduce(1)
            return got, total

        results = world.run(main)
        assert [g for g, _ in results] == [3, 0, 1, 2]
        assert all(t == 4 for _, t in results)
        assert tracker.report.violations == []
        assert tracker.report.checks_run > 0

    def test_injected_unsynchronized_write_flagged(self):
        tracker = RaceTracker(policy="warn")
        world = SimWorld(4, tracker=tracker)

        def main(comm):
            # A deliberately unsynchronized cross-rank access, reported
            # through the tracker with no lock and no HB edge.
            tracker.write("shared.counter", comm.rank)
            comm.barrier()

        with pytest.warns(ConcurrencyWarning):
            world.run(main)
        races = [v for v in tracker.report.violations if v.rule == RACE_RULE]
        assert len(races) >= 1
        assert "shared.counter" in races[0].message

    def test_seeded_deadlock_produces_localized_report(self):
        tracker = RaceTracker(policy="warn")
        world = SimWorld(2, timeout=1.0, tracker=tracker)

        def main(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1, tag=5)
                comm.recv(source=1, tag=6)  # never sent
            else:
                comm.recv(source=0, tag=9)  # wrong tag: never matches

        start = time.monotonic()
        with pytest.raises(WorldError) as exc:
            world.run(main)
        # The watchdog fired instead of hanging for the default 120 s.
        assert time.monotonic() - start < 30
        deadlocks = [
            e for e in exc.value.failures.values()
            if isinstance(e, DeadlockError)
        ]
        assert deadlocks, exc.value.failures
        report = deadlocks[0].report
        assert "pending operation per rank" in report
        assert "recv" in report
        # The unmatched edge set names rank 0's orphaned tag-5 send.
        assert "tag=5" in report
        assert any(v.rule == DEADLOCK_RULE
                   for v in tracker.report.violations)

    def test_deadlock_report_without_pending_sends(self):
        world = SimWorld(2, timeout=0.5)

        def main(comm):
            comm.recv(source=1 - comm.rank, tag=0)  # nobody sends

        with pytest.raises(WorldError) as exc:
            world.run(main)
        (err,) = [e for e in exc.value.failures.values()
                  if isinstance(e, DeadlockError)][:1]
        assert "the matching send was never posted" in err.report


# -- driver / scorecard wiring ---------------------------------------------


class TestDriverIntegration:
    def test_off_policy_yields_no_report(self):
        res = Simulation(small_config(), uniform()).run()
        assert res.concurrency_report is None

    def test_warn_policy_clean_run_attaches_report(self):
        cfg = small_config(ranks=2, concurrency_check="warn")
        res = Simulation(cfg, uniform()).run()
        assert res.concurrency_report is not None
        assert res.concurrency_report.violations == []
        assert res.concurrency_report.checks_run > 0

    def test_raise_policy_clean_run_passes(self):
        cfg = small_config(ranks=2, concurrency_check="raise")
        res = Simulation(cfg, uniform()).run()
        assert res.concurrency_report.violations == []

    def test_scorecard_includes_concurrency_row(self):
        from repro.telemetry import format_run_scorecard

        cfg = small_config(ranks=2, concurrency_check="warn",
                           telemetry="metrics")
        res = Simulation(cfg, uniform()).run()
        card = format_run_scorecard(res)
        assert "concurrency" in card and "clean" in card

    @pytest.mark.slow
    def test_raise_policy_overhead_bounded(self):
        # Acceptance bound: the raise-policy run stays within 25%
        # overhead of the unchecked run on a chaos-smoke-sized problem.
        cfg_off = small_config(cells=16, max_steps=20, ranks=2)
        cfg_on = small_config(cells=16, max_steps=20, ranks=2,
                              concurrency_check="raise")
        ic = uniform()
        Simulation(cfg_off, ic).run()  # warm caches/JIT-free baseline
        base = min(Simulation(cfg_off, ic).run().wall_seconds
                   for _ in range(3))
        checked = min(Simulation(cfg_on, ic).run().wall_seconds
                      for _ in range(3))
        assert checked <= base * 1.25 + 0.05
