"""Tests for the reproduction scorecard (repro.perf.scorecard)."""

import pytest

from repro.perf.scorecard import (
    ScorecardRow,
    format_scorecard,
    reproduction_scorecard,
    scorecard_ok,
)


class TestRows:
    def test_every_row_within_tolerance(self):
        """The headline regression gate: every published number must be
        reproduced within its stated tolerance."""
        for row in reproduction_scorecard():
            assert row.within_tolerance, (
                f"{row.quantity}: paper {row.paper} vs model {row.model} "
                f"({100 * row.deviation:+.1f} %, tol "
                f"{100 * row.tolerance:.0f} %)"
            )

    def test_scorecard_ok(self):
        assert scorecard_ok()

    def test_covers_all_performance_tables(self):
        names = " ".join(r.quantity for r in reproduction_scorecard())
        for needle in ("PFLOP/s", "OI", "issue bound", "fusion",
                       "Piz Daint", "Monte Rosa", "throughput",
                       "ridge", "overlap", "dump"):
            assert needle in names

    def test_row_count_substantial(self):
        assert len(reproduction_scorecard()) >= 20


class TestRowMechanics:
    def test_deviation(self):
        row = ScorecardRow("x", paper=10.0, model=11.0)
        assert row.deviation == pytest.approx(0.1)
        assert row.within_tolerance  # default tol 0.10

    def test_out_of_tolerance(self):
        row = ScorecardRow("x", paper=10.0, model=12.0, tolerance=0.1)
        assert not row.within_tolerance

    def test_zero_paper_value(self):
        row = ScorecardRow("x", paper=0.0, model=1.0)
        assert not row.within_tolerance


class TestFormatting:
    def test_renders(self):
        text = format_scorecard()
        assert "Reproduction scorecard" in text
        # Every row's ok column must read "yes" (the word "NO" only ever
        # appears inside "WENO", so check the column values directly).
        ok_values = [line.split()[-1] for line in text.splitlines()[3:]]
        assert ok_values and all(v == "yes" for v in ok_values)
