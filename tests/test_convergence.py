"""Grid-convergence of the numerics, and the mixed-precision error floor.

Two complementary studies on a right-moving simple acoustic wave,

    p(x)   = p0 + eps * f(x),
    u(x)   = eps * f(x) / (rho0 * c0),
    rho(x) = rho0 + eps * f(x) / c0^2:

* **Scheme order** (float64 throughout): integrating the semi-discrete
  WENO5/HLLE system with RK3 at CFL-scaled steps over a periodic domain
  must converge at high order (~3, the RK3 limit) against the advected
  exact profile.  This isolates the numerics from storage effects.

* **Mixed-precision floor** (full driver, float32 block storage): the
  paper stores cell averages in single precision; per-step rounding puts
  a noise floor under long runs.  The driver-level test asserts the wave
  still propagates at the sound speed and that the accumulated storage
  noise stays inside the design envelope (a small fraction of the wave
  amplitude) -- and *documents* that convergence studies need the
  float64 path above.
"""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.core.timestepper import LowStorageRK3
from repro.physics.eos import LIQUID, sound_speed, total_energy
from repro.physics.equations import compute_rhs
from repro.physics.state import NQ
from repro.sim.config import SimulationConfig
from repro.sim.diagnostics import pressure_field

RHO0 = 1000.0
P0 = 100.0
C0 = float(sound_speed(RHO0, P0, LIQUID.G, LIQUID.P))
EPS = 1.0  # acoustic amplitude [bar]


pytestmark = pytest.mark.tier2

def wave_profile(x):
    """Smooth periodic profile (C-infinity on the torus)."""
    return np.sin(2 * np.pi * x) + 0.5 * np.sin(4 * np.pi * x)


def acoustic_state(x):
    """SoA state (NQ, 1, 1, nx) of the right-moving wave, float64."""
    f = EPS * wave_profile(x)
    p = P0 + f
    u = f / (RHO0 * C0)
    rho = RHO0 + f / C0**2
    U = np.zeros((NQ, 1, 1, x.size))
    U[0, 0, 0] = rho
    U[1, 0, 0] = rho * u
    U[4, 0, 0] = total_energy(rho, u, 0.0, 0.0, p, LIQUID.G, LIQUID.P)
    U[5] = LIQUID.G
    U[6] = LIQUID.P
    return U


def _periodic_pad(U):
    """Wrap-pad an SoA field (NQ, 1, 1, nx) to (NQ, 7, 7, nx+6)."""
    nx = U.shape[-1]
    idx = np.arange(-3, nx + 3) % nx
    line = U[:, 0, 0, idx]  # (NQ, nx+6)
    return np.broadcast_to(
        line[:, None, None, :], (NQ, 7, 7, nx + 6)
    ).copy()


def integrate_float64(nx, t_end, cfl=0.3):
    """RK3 time integration of the float64 semi-discrete system."""
    h = 1.0 / nx
    x = (np.arange(nx) + 0.5) * h
    U = acoustic_state(x)
    stepper = LowStorageRK3()

    def rhs_fn(state):
        # compute_rhs strips the 3-cell padding itself: (NQ, 1, 1, nx).
        return compute_rhs(_periodic_pad(state), h)

    t = 0.0
    while t < t_end - 1e-15:
        dt = min(cfl * h / (C0 * 1.01), t_end - t)
        U = stepper.advance(U, rhs_fn, dt)
        t += dt
    return U, x


def pressure_of(U):
    from repro.physics.eos import conserved_to_primitive

    return conserved_to_primitive(U)[4, 0, 0]


class TestSchemeOrder:
    @pytest.fixture(scope="class")
    def errors(self):
        t_end = 0.25 / C0
        out = {}
        for nx in (24, 48):
            U, x = integrate_float64(nx, t_end)
            p_exact = P0 + EPS * wave_profile(x - C0 * t_end)
            out[nx] = float(np.abs(pressure_of(U) - p_exact).mean())
        return out

    def test_errors_small(self, errors):
        for nx, err in errors.items():
            assert err < 0.2 * EPS, f"{nx} cells: L1 {err}"

    def test_high_order(self, errors):
        order = np.log2(errors[24] / errors[48])
        # RK3-limited; nonlinear-amplitude effects leave a small floor.
        assert order > 2.0, f"measured order {order}"


class TestMixedPrecisionDriver:
    @pytest.fixture(scope="class")
    def driver_run(self):
        def ic(z, y, x):
            U = acoustic_state(np.atleast_1d(x).ravel())
            line = np.moveaxis(U[:, 0, 0, :], 0, -1)  # (nx, NQ)
            shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
            return np.broadcast_to(line, shape + (NQ,)).copy()

        t_end = 0.25 / C0
        cfg = SimulationConfig(
            cells=(8, 8, 64), block_size=8, extent=1.0,
            max_steps=100_000, t_end=t_end, diag_interval=0,
            periodic=(True, True, True),
        )
        res = Simulation(cfg, ic).run()
        return res, t_end

    def test_wave_propagates_at_sound_speed(self, driver_run):
        res, t_end = driver_run
        p = pressure_field(res.final_field)[4, 4, :]
        x = (np.arange(64) + 0.5) / 64
        moved = np.abs(p - (P0 + EPS * wave_profile(x - C0 * t_end))).mean()
        stationary = np.abs(p - (P0 + EPS * wave_profile(x))).mean()
        assert moved < 0.5 * stationary

    def test_storage_noise_within_envelope(self, driver_run):
        """float32 storage rounding accumulates ~1e-2 bar over ~50 steps
        (quantum of E ~ 1.5e-4 -> p ~ 8e-4 per step); it must stay a
        small fraction of the 1 bar wave amplitude."""
        res, t_end = driver_run
        p = pressure_field(res.final_field)[4, 4, :]
        x = (np.arange(64) + 0.5) / 64
        err = np.abs(p - (P0 + EPS * wave_profile(x - C0 * t_end))).mean()
        assert err < 0.05 * EPS
