"""Tests for lossy decimation and its error guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.decimation import (
    decimate,
    exact_amplification,
    guaranteed_threshold,
)
from repro.compression.wavelet import detail_mask, fwt3d, iwt3d, max_levels

from .conftest import make_rng


class TestAmplification:
    def test_zero_levels(self):
        assert exact_amplification((8, 8, 8), 0) == 0.0

    def test_grows_with_levels(self):
        k1 = exact_amplification((32, 32, 32), 1)
        k2 = exact_amplification((32, 32, 32), 2)
        k3 = exact_amplification((32, 32, 32), 3)
        assert 1.0 < k1 < k2 < k3

    def test_reasonable_magnitude(self):
        """The mirror boundary stencil keeps the bound practical."""
        assert exact_amplification((32, 32, 32), 3) < 200.0

    def test_threshold_inverse(self):
        k = exact_amplification((16, 16, 16), 2)
        assert guaranteed_threshold(1e-2, (16, 16, 16), 2) == pytest.approx(
            1e-2 / k
        )

    def test_cached(self):
        a = exact_amplification((16, 16, 16), 1)
        b = exact_amplification((16, 16, 16), 1)
        assert a == b


class TestDecimate:
    def test_zero_eps_keeps_everything(self, rng):
        c = fwt3d(rng.normal(size=(16, 16, 16)), 2)
        c0 = c.copy()
        stats = decimate(c, 2, eps=0.0)
        np.testing.assert_array_equal(c, c0)
        assert stats.zeroed == 0

    def test_huge_eps_zeroes_all_details(self, rng):
        c = fwt3d(rng.normal(size=(16, 16, 16)), 2)
        stats = decimate(c, 2, eps=1e12)
        mask = detail_mask(c.shape, 2)
        assert not c[mask].any()
        assert stats.zeroed == stats.total_details
        assert stats.survival_fraction == 0.0

    def test_coarse_untouched(self, rng):
        x = rng.normal(size=(16, 16, 16))
        c = fwt3d(x, 2)
        corner = c[:4, :4, :4].copy()
        decimate(c, 2, eps=1e12)
        np.testing.assert_array_equal(c[:4, :4, :4], corner)

    def test_negative_eps_raises(self, rng):
        c = fwt3d(rng.normal(size=(8, 8, 8)), 1)
        with pytest.raises(ValueError):
            decimate(c, 1, eps=-1.0)

    def test_stats_threshold_guaranteed_smaller(self, rng):
        c1 = fwt3d(rng.normal(size=(16, 16, 16)), 2)
        c2 = c1.copy()
        s_g = decimate(c1, 2, eps=1e-2, guaranteed=True)
        s_r = decimate(c2, 2, eps=1e-2, guaranteed=False)
        assert s_g.threshold < s_r.threshold
        assert s_g.zeroed <= s_r.zeroed


class TestErrorGuarantee:
    @given(seed=st.integers(0, 2**31),
           eps_exp=st.integers(-4, 0),
           kind=st.sampled_from(["random", "smooth", "steps"]))
    @settings(max_examples=30, deadline=None)
    def test_linf_bound_holds(self, seed, eps_exp, kind):
        """The decimation error never exceeds eps (the paper's guarantee,
        made rigorous by the exact amplification factor)."""
        rng = make_rng(seed)
        eps = 10.0**eps_exp
        n = 16
        if kind == "random":
            x = rng.normal(size=(n, n, n))
        elif kind == "smooth":
            t = np.linspace(0, 3, n)
            x = np.sin(t)[:, None, None] * np.cos(t)[None, :, None] * t[None, None, :]
        else:
            x = np.where(rng.random((n, n, n)) > 0.5, 1.0, 1000.0)
        levels = max_levels(n)
        c = fwt3d(x, levels)
        decimate(c, levels, eps, guaranteed=True)
        err = np.abs(iwt3d(c, levels) - x).max()
        assert err <= eps * (1 + 1e-9)

    def test_raw_mode_bounded_by_amplified_eps(self, rng):
        x = rng.normal(size=(32, 32, 32))
        levels = 3
        eps = 1e-2
        c = fwt3d(x, levels)
        decimate(c, levels, eps, guaranteed=False)
        err = np.abs(iwt3d(c, levels) - x).max()
        assert err <= eps * exact_amplification((32, 32, 32), levels) * (1 + 1e-9)
