"""Stress/property tests of the SPMD communicator under random traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.mpi_sim import SimWorld

from .conftest import make_rng


pytestmark = pytest.mark.tier2

class TestRandomPointToPoint:
    @given(seed=st.integers(0, 2**31), size=st.integers(2, 5),
           n_msgs=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_all_messages_delivered_exactly_once(self, seed, size, n_msgs):
        """Every rank sends random messages; the multiset of received
        payloads equals the multiset sent, regardless of ordering."""
        rng = make_rng(seed)
        # Predetermine the traffic matrix so every rank knows what to expect.
        sends = [
            [(int(rng.integers(0, size)), int(rng.integers(0, 1000)))
             for _ in range(n_msgs)]
            for _ in range(size)
        ]
        expected = [[] for _ in range(size)]
        for src, msgs in enumerate(sends):
            for dest, value in msgs:
                expected[dest].append((src, value))

        world = SimWorld(size)

        def main(comm):
            for dest, value in sends[comm.rank]:
                comm.send((comm.rank, value), dest=dest, tag=0)
            got = [comm.recv(tag=0) for _ in range(len(expected[comm.rank]))]
            return sorted(got)

        results = world.run(main)
        for rank in range(size):
            assert results[rank] == sorted(expected[rank])

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_tag_isolation(self, seed):
        """Messages with different tags never cross-match."""
        rng = make_rng(seed)
        order = rng.permutation(4).tolist()
        world = SimWorld(2)

        def main(comm):
            if comm.rank == 0:
                for tag in order:
                    comm.send(f"payload-{tag}", dest=1, tag=tag)
                return None
            # Receive in a different (fixed) order than sent.
            return [comm.recv(source=0, tag=t) for t in range(4)]

        out = world.run(main)[1]
        assert out == [f"payload-{t}" for t in range(4)]


class TestCollectiveStress:
    @given(seed=st.integers(0, 2**31), size=st.integers(1, 6),
           rounds=st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_repeated_mixed_collectives(self, seed, size, rounds):
        """Random sequences of collectives stay generation-aligned."""
        rng = make_rng(seed)
        values = rng.integers(0, 100, size=(rounds, size)).tolist()
        world = SimWorld(size)

        def main(comm):
            out = []
            for r in range(rounds):
                v = values[r][comm.rank]
                out.append(comm.allreduce(v, op="sum"))
                out.append(comm.allreduce(v, op="max"))
                out.append(comm.exscan(v))
            return out

        results = world.run(main)
        for r in range(rounds):
            row = values[r]
            for rank in range(size):
                got = results[rank][3 * r : 3 * r + 3]
                assert got[0] == sum(row)
                assert got[1] == max(row)
                assert got[2] == sum(row[:rank])

    def test_interleaved_p2p_and_collectives(self):
        """Point-to-point traffic between collectives must not desync the
        collective generations (a classic bug class in homemade MPIs)."""
        world = SimWorld(3)

        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            total = 0
            for i in range(5):
                comm.send(comm.rank * 100 + i, dest=right, tag=i)
                total += comm.allreduce(1, op="sum")
                got = comm.recv(source=left, tag=i)
                assert got == left * 100 + i
                comm.barrier()
            return total

        assert world.run(main) == [15, 15, 15]

    def test_large_array_reduction(self, rng):
        world = SimWorld(4)
        data = rng.normal(size=(4, 1000))

        def main(comm):
            return comm.allreduce(data[comm.rank], op="sum")

        out = world.run(main)
        for arr in out:
            np.testing.assert_allclose(arr, data.sum(axis=0), rtol=1e-12)


class TestWorldReuse:
    def test_sequential_runs_on_one_world(self):
        world = SimWorld(3)
        a = world.run(lambda c: c.allreduce(c.rank))
        b = world.run(lambda c: c.allreduce(c.rank * 2))
        assert a == [3] * 3 and b == [6] * 3

    def test_many_small_worlds(self):
        for size in (1, 2, 3, 4):
            out = SimWorld(size).run(lambda c: c.allreduce(1))
            assert out == [size] * size
