"""Tests for the simulated SPMD communicator (repro.cluster.mpi_sim)."""

import numpy as np
import pytest

from repro.cluster.mpi_sim import (
    ANY_SOURCE,
    ANY_TAG,
    CommTimeoutError,
    Request,
    SimWorld,
    WorldError,
)


class TestWorldBasics:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimWorld(0)

    def test_single_rank_fast_path(self):
        world = SimWorld(1)
        out = world.run(lambda comm: comm.rank)
        assert out == [0]

    def test_rank_and_size(self):
        world = SimWorld(4)
        out = world.run(lambda comm: (comm.rank, comm.size))
        assert out == [(r, 4) for r in range(4)]

    def test_exception_propagates(self):
        world = SimWorld(2, timeout=5.0)

        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return "ok"

        with pytest.raises(WorldError) as exc:
            world.run(main)
        assert 1 in exc.value.failures

    def test_extra_args(self):
        world = SimWorld(2)
        out = world.run(lambda comm, a, b: a + b + comm.rank, 10, 20)
        assert out == [30, 31]


class TestPointToPoint:
    def test_send_recv_object(self):
        world = SimWorld(2)

        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        assert world.run(main)[1] == {"a": 7}

    def test_send_recv_array_copies(self):
        world = SimWorld(2)

        def main(comm):
            if comm.rank == 0:
                data = np.arange(10.0)
                comm.send(data, dest=1)
                data[:] = -1  # must not affect the delivered message
                return None
            got = comm.recv(source=0)
            return got.sum()

        assert world.run(main)[1] == pytest.approx(45.0)

    def test_selective_receive_by_tag(self):
        world = SimWorld(2)

        def main(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert world.run(main)[1] == ("first", "second")

    def test_any_source_any_tag(self):
        world = SimWorld(3)

        def main(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=comm.rank)
                return None
            got = {comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(2)}
            return got

        assert world.run(main)[0] == {1, 2}

    def test_isend_irecv(self):
        world = SimWorld(2)

        def main(comm):
            if comm.rank == 0:
                req = comm.isend(np.ones(4), dest=1, tag=5)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=5)
            return float(req.wait().sum())

        assert world.run(main)[1] == pytest.approx(4.0)

    def test_self_message(self):
        world = SimWorld(1)

        def main(comm):
            comm.send("loop", dest=0, tag=3)
            return comm.recv(source=0, tag=3)

        assert world.run(main) == ["loop"]

    def test_invalid_dest(self):
        world = SimWorld(1)
        with pytest.raises(WorldError):
            world.run(lambda comm: comm.send(1, dest=5))

    def test_recv_timeout(self):
        world = SimWorld(1, timeout=0.1)
        with pytest.raises(WorldError) as exc:
            world.run(lambda comm: comm.recv(source=0, timeout=0.1))
        assert isinstance(exc.value.failures[0], CommTimeoutError)

    def test_traffic_accounting(self):
        world = SimWorld(2)

        def main(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.float32), dest=1)
                return (comm.bytes_sent, comm.messages_sent)
            comm.recv(source=0)
            return (comm.bytes_sent, comm.messages_sent)

        out = world.run(main)
        assert out[0] == (400, 1)
        assert out[1] == (0, 0)


class TestCollectives:
    def test_allreduce_sum(self):
        world = SimWorld(4)
        out = world.run(lambda comm: comm.allreduce(comm.rank + 1, op="sum"))
        assert out == [10] * 4

    def test_allreduce_max_min(self):
        world = SimWorld(3)
        assert world.run(lambda c: c.allreduce(c.rank, op="max")) == [2] * 3
        assert world.run(lambda c: c.allreduce(c.rank, op="min")) == [0] * 3

    def test_allreduce_arrays(self):
        world = SimWorld(3)
        out = world.run(lambda c: c.allreduce(np.full(3, float(c.rank)), op="sum"))
        for arr in out:
            np.testing.assert_allclose(arr, 3.0)

    def test_bcast(self):
        world = SimWorld(3)
        out = world.run(
            lambda c: c.bcast("payload" if c.rank == 1 else None, root=1)
        )
        assert out == ["payload"] * 3

    def test_gather(self):
        world = SimWorld(3)
        out = world.run(lambda c: c.gather(c.rank * 2, root=0))
        assert out[0] == [0, 2, 4]
        assert out[1] is None and out[2] is None

    def test_allgather(self):
        world = SimWorld(3)
        out = world.run(lambda c: c.allgather(c.rank))
        assert out == [[0, 1, 2]] * 3

    def test_exscan(self):
        """The paper's exclusive prefix sum for I/O offsets."""
        world = SimWorld(4)
        out = world.run(lambda c: c.exscan(10 * (c.rank + 1), op="sum"))
        assert out == [0, 10, 30, 60]

    def test_exscan_matches_numpy(self, rng):
        sizes = rng.integers(1, 100, size=5).tolist()
        world = SimWorld(5)
        out = world.run(lambda c: c.exscan(sizes[c.rank]))
        expected = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        assert out == expected.tolist()

    def test_barrier(self):
        world = SimWorld(4)
        order = []

        def main(comm):
            order.append(("pre", comm.rank))
            comm.barrier()
            order.append(("post", comm.rank))

        world.run(main)
        pres = [i for i, (p, _) in enumerate(order) if p == "pre"]
        posts = [i for i, (p, _) in enumerate(order) if p == "post"]
        assert max(pres) < min(posts)

    def test_repeated_collectives_in_order(self):
        """Collective generations must not cross-talk across calls."""
        world = SimWorld(3)

        def main(comm):
            a = comm.allreduce(comm.rank, op="sum")
            b = comm.allreduce(comm.rank * 10, op="sum")
            c = comm.exscan(1)
            return (a, b, c)

        out = world.run(main)
        assert out == [(3, 30, r) for r in range(3)]


class TestRequest:
    def test_waitall(self):
        reqs = [Request(lambda t, i=i: i) for i in range(3)]
        assert Request.waitall(reqs) == [0, 1, 2]

    def test_wait_is_idempotent(self):
        calls = []
        req = Request(lambda t: calls.append(1) or "x")
        assert req.wait() == "x"
        assert req.wait() == "x"
        assert len(calls) == 1
