"""Tests for visualization artifacts (repro.sim.visualization)."""

import numpy as np
import pytest

from repro.sim.cloud import Bubble
from repro.sim.ic import cloud_collapse
from repro.sim.visualization import (
    ascii_render,
    field_slice,
    interface_statistics,
    load_pgm,
    save_pgm,
)


def bubble_field(n=32, bubbles=None):
    c = (np.arange(n) + 0.5) / n
    bubbles = bubbles or [Bubble((0.5, 0.5, 0.5), 0.25)]
    return cloud_collapse(bubbles)(
        c[:, None, None], c[None, :, None], c[None, None, :]
    ).astype(np.float32)


class TestSlices:
    def test_pressure_slice(self):
        f = bubble_field()
        s = field_slice(f, axis=0, quantity="p")
        assert s.shape == (32, 32)
        assert s[16, 16] == pytest.approx(0.0234, rel=1e-4)
        assert s[0, 0] == pytest.approx(100.0, rel=1e-4)

    def test_alpha_slice(self):
        s = field_slice(bubble_field(), axis=2, quantity="alpha")
        assert 0.0 <= s.min() and s.max() <= 1.0
        assert s[16, 16] == pytest.approx(1.0, abs=1e-5)

    def test_rho_slice_explicit_index(self):
        s = field_slice(bubble_field(), axis=1, index=0, quantity="rho")
        np.testing.assert_allclose(s, 1000.0, rtol=1e-5)

    def test_unknown_quantity(self):
        with pytest.raises(ValueError):
            field_slice(bubble_field(), quantity="vorticity")


class TestAscii:
    def test_shape(self):
        art = ascii_render(np.eye(8))
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 8 for line in lines)

    def test_extremes_map_to_ramp_ends(self):
        art = ascii_render(np.array([[0.0, 1.0]]))
        assert art[0] == " " and art[-1] == "@"

    def test_constant_field(self):
        art = ascii_render(np.full((3, 3), 5.0))
        assert set(art.replace("\n", "")) == {" "}


class TestPgm:
    def test_roundtrip(self, tmp_path, rng):
        data = rng.random((12, 20))
        path = save_pgm(str(tmp_path / "x.pgm"), data)
        back = load_pgm(path)
        assert back.shape == (12, 20)
        # Quantized to 8 bits.
        np.testing.assert_allclose(back / 255.0, (data - data.min()) /
                                   (data.max() - data.min()), atol=1 / 255.0)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.pgm"
        p.write_bytes(b"P2\n1 1\n255\n0")
        with pytest.raises(ValueError):
            load_pgm(str(p))


class TestInterfaceStatistics:
    def test_single_sphere(self):
        f = bubble_field(32, [Bubble((0.5, 0.5, 0.5), 0.25)])
        shapes = interface_statistics(f, h=1 / 32)
        assert len(shapes) == 1
        s = shapes[0]
        # Sphere: near-unit sphericity, centroid at the middle.
        assert s.sphericity > 0.9
        for c in s.centroid:
            assert c == pytest.approx(0.5, abs=0.05)
        # Volume ~ (4/3) pi r^3 => cells ~ that / h^3.
        expected = 4.0 / 3.0 * np.pi * 0.25**3 * 32**3
        assert s.cells == pytest.approx(expected, rel=0.15)

    def test_two_bubbles(self):
        f = bubble_field(
            32,
            [Bubble((0.3, 0.3, 0.3), 0.12), Bubble((0.7, 0.7, 0.7), 0.18)],
        )
        shapes = interface_statistics(f, h=1 / 32)
        assert len(shapes) == 2
        assert shapes[0].cells > shapes[1].cells  # sorted largest first

    def test_deformation_detected(self):
        """An ellipsoidal region reports sphericity << 1."""
        n = 32
        c = (np.arange(n) + 0.5) / n
        z, y, x = np.meshgrid(c, c, c, indexing="ij")
        ellipse = ((z - 0.5) / 0.3) ** 2 + ((y - 0.5) / 0.1) ** 2 + (
            (x - 0.5) / 0.1
        ) ** 2 <= 1.0
        f = bubble_field(n, [Bubble((0.5, 0.5, 0.5), 0.05)])
        # Overwrite Gamma to make the ellipse vapor.
        from repro.physics.eos import LIQUID, VAPOR

        f[..., 5] = np.where(ellipse, VAPOR.G, LIQUID.G).astype(np.float32)
        shapes = interface_statistics(f, h=1 / n)
        assert shapes[0].sphericity < 0.5

    def test_no_vapor(self):
        f = bubble_field(16, [Bubble((2.0, 2.0, 2.0), 0.01)])  # outside
        assert interface_statistics(f, h=1 / 16) == []
