"""Tests of the ``cubism-lint`` static checker (repro.analysis)."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import (
    LintConfig,
    format_violations,
    lint_paths,
    lint_source,
    registered_rules,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.lint import path_matches

SRC = str(Path(__file__).resolve().parents[1] / "src" / "repro")


def lint(text: str, path: str = "src/repro/core/fixture.py", **kw):
    return lint_source(textwrap.dedent(text), path, **kw)


def rules_of(violations):
    return [v.rule for v in violations]


# -- registry & framework ------------------------------------------------


def test_registry_has_the_twelve_rules():
    ids = [cls.rule_id for cls in registered_rules()]
    assert ids == (
        [f"CL00{i}" for i in range(1, 10)] + ["CL010", "CL011", "CL012"]
    )
    for cls in registered_rules():
        assert cls.name and cls.description


def test_syntax_error_reported_as_cl000():
    out = lint("def broken(:\n    pass\n")
    assert rules_of(out) == ["CL000"]


def test_violation_format_is_file_line_col_rule():
    out = lint("import numpy as np\nx = np.float32\n")
    assert len(out) == 1
    formatted = format_violations(out)
    assert formatted.startswith("src/repro/core/fixture.py:2:")
    assert " CL001 " in formatted


# -- CL001: raw float dtypes ---------------------------------------------


def test_cl001_flags_raw_dtype_in_core():
    out = lint("import numpy as np\na = np.zeros(3, dtype=np.float32)\n")
    assert "CL001" in rules_of(out)


def test_cl001_flags_np_float64_too():
    out = lint("import numpy as np\na = np.asarray([1.0], dtype=np.float64)\n")
    assert "CL001" in rules_of(out)


def test_cl001_clean_when_using_named_dtypes():
    out = lint(
        """
        import numpy as np
        from repro.physics.state import STORAGE_DTYPE
        a = np.zeros(3, dtype=STORAGE_DTYPE)
        """
    )
    assert "CL001" not in rules_of(out)


def test_cl001_exempts_compression_and_sim():
    text = "import numpy as np\na = np.zeros(3, dtype=np.float32)\n"
    for path in ("src/repro/compression/encoder.py", "src/repro/sim/ic.py"):
        assert lint_source(text, path) == []


def test_cl001_scopes_cli_pattern_to_top_level_cli_only():
    text = "import numpy as np\na = np.float32(1.0)\n"
    assert "CL001" in rules_of(lint_source(text, "src/repro/cli.py"))
    # The analysis package's own CLI is not "repro/cli.py".
    assert lint_source(text, "src/repro/analysis/cli.py") == []


# -- CL002: hard-coded ghost widths --------------------------------------


def test_cl002_flags_literal_ghost_slice():
    out = lint("def f(pad):\n    return pad[3:-3, 3:-3]\n")
    assert "CL002" in rules_of(out)


def test_cl002_clean_with_ghosts_constant():
    out = lint(
        """
        from repro.core.block import GHOSTS
        def f(pad):
            g = GHOSTS
            return pad[g:-g, g:-g]
        """
    )
    assert "CL002" not in rules_of(out)


def test_cl002_out_of_scope_in_physics():
    out = lint_source("def f(a):\n    return a[3:-3]\n",
                      "src/repro/physics/fixture.py")
    assert "CL002" not in rules_of(out)


# -- CL003: downcasts on the compute path --------------------------------


def test_cl003_flags_downcast_in_physics():
    out = lint_source(
        "import numpy as np\ndef f(a):\n    return a.astype(np.float32)\n",
        "src/repro/physics/fixture.py",
    )
    assert "CL003" in rules_of(out)


def test_cl003_flags_string_dtype_and_storage_dtype_name():
    base = "from repro.physics.state import STORAGE_DTYPE\n"
    out1 = lint_source(base + "def f(a):\n    return a.astype('float32')\n",
                       "src/repro/physics/fixture.py")
    out2 = lint_source(base + "def f(a):\n    return a.astype(STORAGE_DTYPE)\n",
                       "src/repro/physics/fixture.py")
    assert "CL003" in rules_of(out1)
    assert "CL003" in rules_of(out2)


def test_cl003_allows_upcast_and_out_of_scope_files():
    out = lint_source(
        "import numpy as np\ndef f(a):\n    return a.astype(np.float64)\n",
        "src/repro/physics/fixture.py",
    )
    assert "CL003" not in rules_of(out)
    # Storage downcasts are the *job* of block stores, sim and compression.
    out = lint_source(
        "import numpy as np\ndef f(a):\n    return a.astype(np.float32)\n",
        "src/repro/compression/fixture.py",
    )
    assert "CL003" not in rules_of(out)


# -- CL004: mutable defaults ---------------------------------------------


def test_cl004_flags_mutable_defaults():
    out = lint("def f(x, acc=[]):\n    return acc\n")
    assert "CL004" in rules_of(out)
    out = lint("def f(x, acc=dict()):\n    return acc\n")
    assert "CL004" in rules_of(out)


def test_cl004_clean_for_none_and_tuples():
    out = lint("def f(x, acc=None, shape=(1, 2)):\n    return acc\n")
    assert "CL004" not in rules_of(out)


# -- CL005: silent broad excepts -----------------------------------------


def test_cl005_flags_silent_bare_except():
    out = lint(
        """
        def f():
            try:
                work()
            except Exception:
                pass
        """
    )
    assert "CL005" in rules_of(out)


def test_cl005_allows_reraise_or_logging():
    clean_raise = """
        def f():
            try:
                work()
            except Exception:
                raise RuntimeError("wrapped")
        """
    clean_log = """
        import logging
        def f():
            try:
                work()
            except Exception as exc:
                logging.warning("failed: %s", exc)
        """
    assert "CL005" not in rules_of(lint(clean_raise))
    assert "CL005" not in rules_of(lint(clean_log))


def test_cl005_allows_narrow_except():
    out = lint(
        """
        def f():
            try:
                work()
            except KeyError:
                pass
        """
    )
    assert "CL005" not in rules_of(out)


# -- CL006: return contract documentation --------------------------------


def test_cl006_flags_undocumented_public_return():
    out = lint_source(
        'def f(a):\n    """Do things."""\n    return a * 2\n',
        "src/repro/physics/fixture.py",
    )
    assert "CL006" in rules_of(out)


def test_cl006_clean_with_return_doc_private_or_no_return():
    documented = (
        'def f(a):\n    """Returns twice ``a`` (same shape/dtype)."""\n'
        "    return a * 2\n"
    )
    private = 'def _f(a):\n    """Do things."""\n    return a * 2\n'
    procedure = 'def f(a):\n    """Do things in place."""\n    a[0] = 1\n'
    for text in (documented, private, procedure):
        out = lint_source(text, "src/repro/physics/fixture.py")
        assert "CL006" not in rules_of(out), text


# -- CL007: np.empty read-before-assignment ------------------------------


def test_cl007_flags_read_of_unwritten_empty():
    out = lint(
        """
        import numpy as np
        def f(n):
            buf = np.empty(n)
            return buf + 1.0
        """
    )
    assert "CL007" in rules_of(out)


def test_cl007_clean_when_written_or_used_as_out_param():
    filled = """
        import numpy as np
        def f(n):
            buf = np.empty(n)
            buf[:] = 0.0
            return buf + 1.0
        """
    out_param = """
        import numpy as np
        def f(n, src):
            buf = np.empty(n)
            np.add(src, 1.0, out=buf)
            return buf
        """
    assert "CL007" not in rules_of(lint(filled))
    assert "CL007" not in rules_of(lint(out_param))


# -- CL008: ring depth literals ------------------------------------------


def test_cl008_flags_literal_ring_depth():
    out = lint(
        """
        from repro.core.ringbuffer import SliceRing
        ring = SliceRing((7, 8, 8), depth=6)
        """
    )
    assert "CL008" in rules_of(out)


def test_cl008_clean_with_ring_depth_constant():
    out = lint(
        """
        from repro.core.ringbuffer import RING_DEPTH, SliceRing
        ring = SliceRing((7, 8, 8), depth=RING_DEPTH)
        """
    )
    assert "CL008" not in rules_of(out)


# -- CL009: raw timing calls ---------------------------------------------


def test_cl009_flags_raw_perf_counter_in_cluster():
    out = lint(
        """
        import time
        t0 = time.perf_counter()
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL009" in rules_of(out)


def test_cl009_flags_aliased_and_from_imports():
    out = lint(
        """
        import time as _t
        from time import time as wall
        a = _t.perf_counter_ns()
        b = wall()
        """,
        path="src/repro/compression/fixture.py",
    )
    assert rules_of(out).count("CL009") == 2


def test_cl009_allows_monotonic_deadlines():
    # time.monotonic is timeout bookkeeping, not phase timing (mpi_sim).
    out = lint(
        """
        import time
        deadline = time.monotonic() + 5.0
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL009" not in rules_of(out)


def test_cl009_clean_with_telemetry_clock():
    out = lint(
        """
        from repro.telemetry.clock import now
        t0 = now()
        """,
        path="src/repro/node/fixture.py",
    )
    assert "CL009" not in rules_of(out)


def test_cl009_out_of_scope_in_telemetry_and_perf():
    text = """
        import time
        t0 = time.perf_counter()
        """
    assert "CL009" not in rules_of(
        lint(text, path="src/repro/telemetry/clock.py")
    )
    assert "CL009" not in rules_of(
        lint(text, path="src/repro/perf/fixture.py")
    )


def test_cl009_pragma_disables_site():
    out = lint(
        """
        import time
        t0 = time.time()  # lint: disable=CL009
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL009" not in rules_of(out)


# -- CL010: bounded recovery loops ---------------------------------------


def test_cl010_flags_bare_except_in_resilience_path():
    out = lint(
        """
        try:
            risky()
        except:
            print("eaten")
        """,
        path="src/repro/resilience/fixture.py",
    )
    assert "CL010" in rules_of(out)


def test_cl010_flags_unbounded_while_true_retry():
    out = lint(
        """
        import time
        def keep_trying(fn):
            while True:
                try:
                    return fn()
                except ValueError:
                    time.sleep(0.1)
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL010" in rules_of(out)


def test_cl010_accepts_bounded_loops_and_named_excepts():
    out = lint(
        """
        def bounded(fn, max_attempts):
            for attempt in range(max_attempts):
                try:
                    return fn()
                except ValueError:
                    continue
            raise RuntimeError("exhausted")

        def waits(deadline):
            while True:
                if remaining_time(deadline) <= 0:
                    raise TimeoutError
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL010" not in rules_of(out)


def test_cl010_out_of_scope_elsewhere():
    out = lint(
        """
        while True:
            spin()
        """,
        path="src/repro/perf/fixture.py",
    )
    assert "CL010" not in rules_of(out)


# -- CL011: unsynchronized shared mutation -------------------------------


def test_cl011_flags_module_level_mutation_from_function():
    out = lint(
        """
        CACHE = {}
        def remember(rank, value):
            CACHE[rank] = value
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL011" in rules_of(out)


def test_cl011_flags_closure_mutation_from_nested_function():
    out = lint(
        """
        def run(size):
            failures = {}
            def runner(rank):
                failures[rank] = "boom"
            return failures
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL011" in rules_of(out)


def test_cl011_flags_mutating_method_calls():
    out = lint(
        """
        EVENTS = []
        def record(ev):
            EVENTS.append(ev)
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL011" in rules_of(out)


def test_cl011_clean_under_lock():
    out = lint(
        """
        import threading
        CACHE = {}
        _LOCK = threading.Lock()
        def remember(rank, value):
            with _LOCK:
                CACHE[rank] = value
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL011" not in rules_of(out)


def test_cl011_clean_for_function_local_state():
    out = lint(
        """
        def collect(items):
            out = {}
            for i, item in enumerate(items):
                out[i] = item
            return out
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL011" not in rules_of(out)


def test_cl011_clean_at_module_scope_and_out_of_scope_paths():
    module_scope = """
        TABLE = {}
        TABLE["init"] = 1
        """
    assert "CL011" not in rules_of(
        lint(module_scope, path="src/repro/cluster/fixture.py")
    )
    shared = """
        CACHE = {}
        def remember(k, v):
            CACHE[k] = v
        """
    assert "CL011" not in rules_of(
        lint(shared, path="src/repro/perf/fixture.py")
    )


def test_cl011_pragma_opt_out():
    out = lint(
        """
        def run(size):
            results = [None] * size
            def runner(rank):
                results[rank] = rank  # lint: disable=CL011
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL011" not in rules_of(out)


# -- CL012: bare print in library code -----------------------------------


def test_cl012_flags_bare_print_in_library_code():
    out = lint(
        """
        def run(step):
            print(f"step {step} done")
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL012" in rules_of(out)


def test_cl012_exempts_cli_and_main_modules():
    text = 'print("user-facing output")\n'
    for path in ("src/repro/cli.py", "src/repro/validation/cli.py",
                 "src/repro/telemetry/__main__.py"):
        assert "CL012" not in rules_of(lint_source(text, path))


def test_cl012_clean_when_routed_through_the_structured_logger():
    out = lint(
        """
        from repro.telemetry.log import get_logger
        def run(step):
            get_logger("cluster.driver").info("progress", step=step)
        """,
        path="src/repro/cluster/fixture.py",
    )
    assert "CL012" not in rules_of(out)


def test_cl012_pragma_opt_out():
    out = lint(
        """
        def render(stream):
            print("table", file=stream)  # lint: disable=CL012
        """,
        path="src/repro/perf/fixture.py",
    )
    assert "CL012" not in rules_of(out)


def test_cl012_does_not_flag_attribute_or_local_print_lookalikes():
    out = lint(
        """
        def run(doc, printer):
            printer.print(doc)
        """,
        path="src/repro/perf/fixture.py",
    )
    assert "CL012" not in rules_of(out)


# -- pragmas -------------------------------------------------------------


def test_trailing_pragma_disables_line_only():
    out = lint(
        """
        import numpy as np
        a = np.float32  # lint: disable=CL001
        b = np.float64
        """
    )
    assert rules_of(out) == ["CL001"]
    assert out[0].line == 4


def test_standalone_pragma_disables_file_wide():
    out = lint(
        """
        # lint: disable=CL001
        import numpy as np
        a = np.float32
        b = np.float64
        """
    )
    assert "CL001" not in rules_of(out)


def test_pragma_disables_multiple_rules():
    out = lint(
        """
        # lint: disable=CL001, CL004
        import numpy as np
        def f(x, acc=[]):
            'Returns x as float32.'
            return np.float32(x)
        """
    )
    assert out == []


def test_trailing_pragma_covers_multiline_statement():
    # The violation anchors on the np.float32 line, while the pragma
    # sits on the closing line of the same (parenthesised) statement.
    out = lint(
        """
        import numpy as np
        a = (
            np.float32
        )  # lint: disable=CL001
        """
    )
    assert "CL001" not in rules_of(out)


def test_trailing_pragma_on_first_line_of_multiline_statement():
    out = lint(
        """
        import numpy as np
        a = (  # lint: disable=CL001
            np.float32
        )
        """
    )
    assert "CL001" not in rules_of(out)


def test_pragma_on_compound_header_does_not_silence_body():
    # A trailing pragma on an `if` header covers only the header lines;
    # violations inside the body still fire.
    out = lint(
        """
        import numpy as np
        if True:  # lint: disable=CL001
            a = np.float32
        """
    )
    assert "CL001" in rules_of(out)


def test_pragma_on_multiline_def_header_covers_signature_only():
    out = lint(
        """
        def f(
            x,
            acc=[],
        ):  # lint: disable=CL004
            'Returns the accumulator.'
            return acc


        def g(x, acc={}):
            'Returns the accumulator.'
            return acc
        """
    )
    # The pragma on f's multi-line signature suppresses its CL004; g's
    # separate violation survives.
    assert rules_of(out) == ["CL004"]
    assert out[0].line == 10


# -- config: select / ignore / rule_paths --------------------------------


def test_config_select_and_ignore():
    text = "import numpy as np\na = np.float32\ndef f(x, acc=[]):\n    return acc\n"
    only_cl004 = lint(text, config=LintConfig(select=frozenset({"CL004"})))
    assert rules_of(only_cl004) == ["CL004"]
    no_cl001 = lint(text, config=LintConfig(ignore=frozenset({"CL001"})))
    assert "CL001" not in rules_of(no_cl001)


def test_config_rule_paths_override():
    text = "import numpy as np\na = np.float32\n"
    cfg = LintConfig(rule_paths={"CL001": ("sim/",)})
    assert lint(text, config=cfg) == []
    assert "CL001" in rules_of(
        lint_source(text, "src/repro/sim/fixture.py", config=cfg)
    )


def test_config_rule_paths_override_to_none_widens_scope():
    # CL011 defaults to cluster/ only; overriding its scope to None
    # makes it apply everywhere.
    text = "CACHE = {}\ndef put(k, v):\n    CACHE[k] = v\n"
    assert "CL011" not in rules_of(
        lint_source(text, "src/repro/perf/fixture.py")
    )
    cfg = LintConfig(rule_paths={"CL011": None})
    assert "CL011" in rules_of(
        lint_source(text, "src/repro/perf/fixture.py", config=cfg)
    )


def test_config_rule_paths_override_narrows_scoped_rule():
    # CL011 normally fires in cluster/; scoping it to resilience/ only
    # exempts cluster files.
    text = "CACHE = {}\ndef put(k, v):\n    CACHE[k] = v\n"
    cfg = LintConfig(rule_paths={"CL011": ("resilience/",)})
    assert "CL011" not in rules_of(
        lint_source(text, "src/repro/cluster/fixture.py", config=cfg)
    )
    assert "CL011" in rules_of(
        lint_source(text, "src/repro/resilience/fixture.py", config=cfg)
    )


def test_path_matches_semantics():
    assert path_matches("src/repro/core/kernels.py", "core/")
    assert path_matches("src/repro/cli.py", "repro/cli.py")
    assert not path_matches("src/repro/analysis/cli.py", "repro/cli.py")
    assert not path_matches("src/repro/score.py", "core/")


# -- the tree itself is clean (the PR's acceptance criterion) -------------


def test_self_lint_src_repro_is_clean():
    violations = lint_paths([SRC])
    assert violations == [], "\n" + format_violations(violations)


def test_cli_exit_codes(tmp_path, capsys):
    assert lint_main([SRC]) == 0
    bad = tmp_path / "core" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import numpy as np\na = np.float32\n")
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "CL001" in out and "bad.py" in out


def test_cli_exit_code_2_on_unknown_rule_id(capsys):
    assert lint_main(["--select", "CL999", SRC]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err and "CL999" in err
    assert lint_main(["--ignore", "CX123", SRC]) == 2


def test_cli_exit_code_2_on_missing_path(capsys):
    assert lint_main(["no/such/dir"]) == 2
    err = capsys.readouterr().err
    assert "no such path" in err and "no/such/dir" in err


def test_cli_concurrency_mode_clean_tree(capsys):
    assert lint_main(["--concurrency", SRC]) == 0
    err = capsys.readouterr().err
    assert "comm-check" in err and "clean" in err


def test_cli_concurrency_mode_flags_defects(tmp_path, capsys):
    bad = tmp_path / "cluster" / "proto.py"
    bad.parent.mkdir()
    bad.write_text(textwrap.dedent(
        """
        def exchange(comm):
            'Sends to the right neighbor but never posts the receive.'
            comm.send(b"x", dest=(comm.rank + 1) % comm.size, tag=7)
        """
    ))
    assert lint_main(["--concurrency", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "CC001" in out


def test_cli_report_out_writes_json_artifact(tmp_path):
    import json

    report = tmp_path / "comm-check.json"
    assert lint_main(["--concurrency", SRC,
                      "--report-out", str(report)]) == 0
    payload = json.loads(report.read_text())
    assert payload["findings"] == []
    assert payload["checks_run"] > 0

    lint_report = tmp_path / "lint.json"
    bad = tmp_path / "core" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import numpy as np\na = np.float32\n")
    assert lint_main([str(bad), "--report-out", str(lint_report)]) == 1
    payload = json.loads(lint_report.read_text())
    assert payload["findings"][0]["rule"] == "CL001"


def test_cli_report_out_unwritable_is_exit_2(tmp_path, capsys):
    target = tmp_path / "missing-dir" / "report.json"
    assert lint_main(["--concurrency", SRC,
                      "--report-out", str(target)]) == 2
    assert "cubism-lint" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 9):
        assert f"CL00{i}" in out
    assert "CL011" in out
    for cc in ("CC001", "CC002", "CC003", "CC004"):
        assert cc in out
    assert "--concurrency" in out
