"""Tests of service policies: backoff, circuit breaker, admission, exits."""

from __future__ import annotations

import pytest

from repro.cluster.mpi_sim import DeadlockError, WorldError
from repro.cluster.procs import RankLostError
from repro.exitcodes import (
    EXIT_DATA_CORRUPT,
    EXIT_DEADLOCK,
    EXIT_EXHAUSTED,
    EXIT_FAILURE,
    EXIT_INVALID,
    EXIT_NUMERICS,
    EXIT_OVERLOAD,
    EXIT_POISONED,
    EXIT_RANK_LOST,
    KIND_EXIT,
    NAMES,
    classify_exit,
)
from repro.service import (
    AdmissionQueue,
    BackoffPolicy,
    CircuitBreaker,
    JobFailedError,
    JobShedError,
    PoisonedConfigError,
)

pytestmark = pytest.mark.tier1


class TestBackoffPolicy:
    def test_deterministic_per_seed(self):
        p = BackoffPolicy(max_attempts=5, base_delay=0.1, max_delay=2.0)

        def draws(seed, n=4):
            stream = p.delays(seed)
            return [next(stream) for _ in range(n)]

        assert draws("job-1") == draws("job-1")
        assert draws("job-1") != draws("job-2")

    def test_delays_bounded(self):
        p = BackoffPolicy(base_delay=0.05, max_delay=1.0)
        stream = p.delays(seed=0)
        prev = p.base_delay
        for _ in range(50):
            d = next(stream)
            assert p.base_delay <= d <= p.max_delay
            assert d <= max(3.0 * prev, p.base_delay)
            prev = d

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay=0.5, max_delay=0.1)


class TestCircuitBreaker:
    def test_opens_on_distinct_workers_only(self):
        br = CircuitBreaker(threshold=3)
        key = "k" * 64
        # Same worker failing repeatedly never opens the circuit.
        for _ in range(10):
            assert br.record_failure(key, worker_id=1,
                                     kind="rank_crash") is False
        assert not br.is_open(key)
        assert br.record_failure(key, 2, "rank_crash") is False
        assert br.record_failure(key, 3, "deadlock") is True
        assert br.is_open(key)
        assert br.open_keys() == [key]

    def test_success_resets_streak(self):
        br = CircuitBreaker(threshold=2)
        key = "k" * 64
        br.record_failure(key, 1, "rank_crash")
        br.record_success(key)
        assert br.record_failure(key, 2, "rank_crash") is False
        assert not br.is_open(key)

    def test_error_carries_evidence(self):
        br = CircuitBreaker(threshold=2)
        key = "e" * 64
        br.record_failure(key, 4, "timeout")
        br.record_failure(key, 7, "rank_crash")
        err = br.error(key)
        assert isinstance(err, PoisonedConfigError)
        assert err.workers == (4, 7)
        assert err.kinds == ("timeout", "rank_crash")
        assert key[:16] in str(err)

    def test_reset_clears_open_circuit(self):
        br = CircuitBreaker(threshold=1)
        key = "r" * 64
        br.record_failure(key, 0, "numerics")
        assert br.is_open(key)
        br.reset(key)
        assert not br.is_open(key)


class TestAdmissionQueue:
    def test_priority_order_with_fifo_ties(self):
        q = AdmissionQueue(max_pending=8)
        q.offer(1, 0, "b")
        q.offer(0, 1, "a1")
        q.offer(0, 2, "a2")
        assert [q.pop(), q.pop(), q.pop()] == ["a1", "a2", "b"]
        assert q.pop() is None

    def test_parks_overflow_and_promotes_best(self):
        q = AdmissionQueue(max_pending=1, park_capacity=4)
        assert q.offer(5, 0, "ready")[0] == "queued"
        assert q.offer(3, 1, "mid")[0] == "parked"
        assert q.offer(1, 2, "urgent")[0] == "parked"
        # Popping frees the slot; the *best* parked job is promoted.
        assert q.pop() == "ready"
        assert q.pop() == "urgent"
        assert q.pop() == "mid"
        assert q.parked_total == 2

    def test_sheds_when_full(self):
        q = AdmissionQueue(max_pending=1, park_capacity=0)
        q.offer(0, 0, "only")
        decision, displaced = q.offer(0, 1, "extra")
        assert decision == "shed" and displaced is None
        assert q.shed_total == 1

    def test_displacement_sheds_worst_parked(self):
        q = AdmissionQueue(max_pending=1, park_capacity=1)
        q.offer(0, 0, "running")
        q.offer(9, 1, "lowpri")
        decision, displaced = q.offer(1, 2, "urgent")
        assert decision == "parked"
        assert displaced == "lowpri"
        assert q.shed_total == 1
        assert q.pop() == "running"
        assert q.pop() == "urgent"

    def test_equal_priority_never_displaces(self):
        q = AdmissionQueue(max_pending=1, park_capacity=1)
        q.offer(1, 0, "a")
        q.offer(1, 1, "b")
        decision, displaced = q.offer(1, 2, "c")
        assert decision == "shed" and displaced is None

    def test_requeue_bypasses_admission(self):
        q = AdmissionQueue(max_pending=1, park_capacity=0)
        q.offer(0, 0, "a")
        q.requeue(0, 1, "retry")  # would have been shed via offer
        assert len(q) == 2

    def test_drain_empties_both_stages(self):
        q = AdmissionQueue(max_pending=1, park_capacity=4)
        q.offer(0, 0, "a")
        q.offer(0, 1, "b")
        assert sorted(q.drain()) == ["a", "b"]
        assert len(q) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionQueue(park_capacity=-1)


class TestExitCodes:
    def test_every_code_named(self):
        for code in KIND_EXIT.values():
            assert code in NAMES

    def test_direct_classification(self):
        cases = [
            (PoisonedConfigError("k" * 64, (0, 1), ("rank_crash",) * 2),
             EXIT_POISONED),
            (JobShedError(), EXIT_OVERLOAD),
            (DeadlockError("stuck", report=""), EXIT_DEADLOCK),
            (RankLostError("gone"), EXIT_RANK_LOST),
            (ValueError("bad config"), EXIT_INVALID),
            (RuntimeError("???"), EXIT_FAILURE),
        ]
        for exc, expected in cases:
            code, name = classify_exit(exc)
            assert code == expected, exc
            assert name == NAMES[expected]

    def test_job_failed_maps_through_kind(self):
        assert classify_exit(JobFailedError("deadlock"))[0] == EXIT_DEADLOCK
        assert classify_exit(JobFailedError("rank_crash"))[0] == EXIT_RANK_LOST
        assert classify_exit(JobFailedError("exhausted"))[0] == EXIT_EXHAUSTED
        assert classify_exit(JobFailedError("numerics"))[0] == EXIT_NUMERICS
        assert classify_exit(JobFailedError("ckpt_corrupt"))[0] == \
            EXIT_DATA_CORRUPT
        assert classify_exit(JobFailedError("mystery"))[0] == EXIT_FAILURE

    def test_world_error_unwraps_to_primary(self):
        werr = WorldError({0: RankLostError("rank 0 died"),
                           1: RuntimeError("collateral")})
        code, name = classify_exit(werr)
        assert code == EXIT_RANK_LOST

    def test_codes_avoid_signal_range(self):
        for code in NAMES:
            assert 0 <= code < 126
