"""Tests for the WENO3 ablation kernel and checkpoint/restart."""

import os

import numpy as np
import pytest

from repro.cluster.checkpoint import (
    read_checkpoint_field,
    read_checkpoint_meta,
    write_checkpoint,
)
from repro.cluster.driver import Simulation
from repro.cluster.mpi_sim import SimWorld
from repro.physics.weno import weno3, weno5
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

from .conftest import make_uniform_aos


class TestWeno3:
    def test_constant_reproduced(self):
        v = np.full(20, 2.5)
        minus, plus = weno3(v)
        np.testing.assert_allclose(minus, 2.5, rtol=1e-14)
        np.testing.assert_allclose(plus, 2.5, rtol=1e-14)

    def test_same_face_convention_as_weno5(self):
        """weno3 and weno5 return collocated faces (drop-in swap)."""
        v = np.linspace(0.0, 1.0, 20)  # linear: both orders are exact
        m3, p3 = weno3(v)
        m5, p5 = weno5(v)
        assert m3.shape == m5.shape
        np.testing.assert_allclose(m3, m5, rtol=1e-10)
        np.testing.assert_allclose(p3, p5, rtol=1e-10)

    def test_third_order_convergence(self):
        errs = []
        for n in (32, 64, 128):
            x = np.linspace(0.0, 1.0, n, endpoint=False)
            h = x[1] - x[0]
            a = (np.cos(2 * np.pi * x) - np.cos(2 * np.pi * (x + h))) / (
                2 * np.pi * h
            )
            minus, _ = weno3(a)
            faces = x[2:-3] + h
            errs.append(np.abs(minus - np.sin(2 * np.pi * faces)).max())
        order = np.log2(errs[0] / errs[1])
        # WENO3-JS drops to 2nd order at smooth critical points, which
        # dominate the max norm; anything in [1.8, 3.6] is the expected
        # behaviour (and far below WENO5's >4).
        assert 1.8 < order < 3.6

    def test_less_accurate_than_weno5(self):
        n = 64
        x = np.linspace(0.0, 1.0, n, endpoint=False)
        h = x[1] - x[0]
        a = (np.cos(2 * np.pi * x) - np.cos(2 * np.pi * (x + h))) / (
            2 * np.pi * h
        )
        exact = np.sin(2 * np.pi * (x[2:-3] + h))
        e3 = np.abs(weno3(a)[0] - exact).max()
        e5 = np.abs(weno5(a)[0] - exact).max()
        assert e5 < e3 / 10.0

    def test_non_oscillatory(self):
        v = np.where(np.arange(30) < 15, 1.0, 10.0).astype(float)
        minus, plus = weno3(v)
        assert minus.min() >= 1.0 - 1e-6 and minus.max() <= 10.0 + 1e-6

    def test_order_option_uniform_rhs(self):
        from repro.physics.equations import compute_rhs
        from repro.physics.state import aos_to_soa

        pad = make_uniform_aos((14, 14, 14), u=(1.0, 2.0, 3.0))
        rhs = compute_rhs(aos_to_soa(pad), 0.01, order=3)
        assert np.abs(rhs).max() < 1e-8

    def test_invalid_order(self):
        from repro.physics.equations import compute_rhs
        from repro.physics.state import aos_to_soa

        pad = make_uniform_aos((14, 14, 14))
        with pytest.raises(ValueError, match="unsupported WENO order"):
            compute_rhs(aos_to_soa(pad), 0.01, order=7)


class TestCheckpointFormat:
    def test_write_read_meta(self, tmp_path):
        path = str(tmp_path / "c.rck")
        world = SimWorld(2)

        def main(comm):
            field = make_uniform_aos((8, 8, 8), p=50.0 + comm.rank).astype(
                np.float32
            )
            write_checkpoint(comm, path, field, (8 * comm.rank, 0, 0),
                             t=1.25, step=42)

        world.run(main)
        meta = read_checkpoint_meta(path)
        assert meta["step"] == 42 and meta["t"] == 1.25
        assert len(meta["ranks"]) == 2

    def test_stitching_lossless(self, tmp_path, rng):
        path = str(tmp_path / "c.rck")
        pieces = [
            rng.normal(size=(8, 8, 8, 7)).astype(np.float32) for _ in range(2)
        ]
        world = SimWorld(2)

        def main(comm):
            write_checkpoint(comm, path, pieces[comm.rank],
                             (8 * comm.rank, 0, 0), t=0.0, step=0)

        world.run(main)
        field, t, step = read_checkpoint_field(path)
        assert field.shape == (16, 8, 8, 7)
        np.testing.assert_array_equal(field[:8], pieces[0])
        np.testing.assert_array_equal(field[8:], pieces[1])

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "x.rck"
        p.write_bytes(b'{"magic": "nope"}'.ljust(65536) + b"z")
        with pytest.raises(ValueError):
            read_checkpoint_meta(str(p))


class TestRestart:
    def test_restart_matches_uninterrupted(self, tmp_path):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
        base = dict(cells=16, block_size=8, diag_interval=0)
        full = Simulation(
            SimulationConfig(**base, max_steps=6), ic
        ).run()
        Simulation(
            SimulationConfig(**base, max_steps=3, checkpoint_interval=3,
                             checkpoint_dir=str(tmp_path)),
            ic,
        ).run()
        ck = os.path.join(str(tmp_path), "ckpt_000003.rck")
        resumed = Simulation(
            SimulationConfig(**base, max_steps=6), ic, restart_from=ck
        ).run()
        np.testing.assert_array_equal(resumed.final_field, full.final_field)
        assert resumed.records[0].step == 4
        assert len(resumed.records) == 3

    def test_restart_across_rank_counts(self, tmp_path):
        ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
        base = dict(cells=16, block_size=8, diag_interval=0)
        full = Simulation(SimulationConfig(**base, max_steps=4), ic).run()
        Simulation(
            SimulationConfig(**base, max_steps=2, checkpoint_interval=2,
                             checkpoint_dir=str(tmp_path)),
            ic,
        ).run()
        ck = os.path.join(str(tmp_path), "ckpt_000002.rck")
        resumed = Simulation(
            SimulationConfig(**base, max_steps=4, ranks=2), ic,
            restart_from=ck,
        ).run()
        np.testing.assert_array_equal(resumed.final_field, full.final_field)


class TestDivergenceGuard:
    def test_nan_state_raises_cleanly(self):
        def nan_ic(z, y, x):
            out = make_uniform_aos(
                np.broadcast_shapes(z.shape, y.shape, x.shape)
            )
            out[..., 4] = np.nan
            return out

        cfg = SimulationConfig(cells=16, block_size=8, max_steps=5,
                               diag_interval=0)
        with pytest.raises(Exception, match="diverged"):
            Simulation(cfg, nan_ic).run()
