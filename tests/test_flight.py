"""Tests of the flight recorder, structured logging and rank analytics."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.cluster import Simulation
from repro.sim import SimulationConfig
from repro.sim.ic import uniform
from repro.telemetry import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    ProgressReporter,
    StructuredLogger,
    analyze_flight,
    critical_path,
    format_flight_report,
    get_logger,
    iter_flight,
    read_flight,
    run_imbalance,
    step_imbalance,
    straggler_summary,
)


def run_sim(steps=2, ranks=1, cells=16, block_size=8, **kw):
    config = SimulationConfig(
        cells=cells, block_size=block_size, max_steps=steps, ranks=ranks,
        **kw,
    )
    return Simulation(config, uniform()).run()


def synthetic_steps():
    """Two ranks, three steps; rank 1 is the RHS-bound straggler."""
    steps = []
    for s in (1, 2, 3):
        steps.append({"kind": "step", "step": s, "rank": 0,
                      "phases": {"RHS": 0.10, "UP": 0.02}})
        steps.append({"kind": "step", "step": s, "rank": 1,
                      "phases": {"RHS": 0.20, "UP": 0.02}})
    return steps


# -- FlightRecorder -------------------------------------------------------


def test_recorder_writes_header_then_step_records(tmp_path):
    path = str(tmp_path / "f.jsonl")
    rec = FlightRecorder(path, rank=0, meta={"ranks": 1, "cells": [16] * 3})
    rec.record(1, dt=1e-3, phases={"RHS": 0.1})
    rec.record(2, dt=1e-3, phases={"RHS": 0.1})
    rec.close()
    records = list(iter_flight(path))
    assert records[0]["kind"] == "header"
    assert records[0]["schema"] == FLIGHT_SCHEMA
    assert records[0]["ranks"] == 1
    assert [r["step"] for r in records[1:]] == [1, 2]
    assert all(r["rank"] == 0 for r in records[1:])


def test_recorder_shared_sink_across_rank_handles(tmp_path):
    # All simulated ranks are threads of one process writing one file:
    # the first opener truncates + writes the header, later openers
    # append, the last close flushes.
    path = str(tmp_path / "f.jsonl")
    r0 = FlightRecorder(path, rank=0, meta={"ranks": 2})
    r1 = FlightRecorder(path, rank=1, meta={"ranks": 999})  # not first
    r0.record(1, phases={"RHS": 0.1})
    r1.record(1, phases={"RHS": 0.2})
    r0.close()
    r1.close()
    header, steps = read_flight(path)
    assert header["ranks"] == 2  # first opener's meta won
    assert {s["rank"] for s in steps} == {0, 1}


def test_recorder_buffers_until_flush_threshold(tmp_path):
    path = str(tmp_path / "f.jsonl")
    rec = FlightRecorder(path, rank=0, flush_every=100)
    rec.record(1, phases={})
    assert len(list(iter_flight(path))) == 0  # still buffered
    rec.flush()
    assert len(list(iter_flight(path))) == 2  # header + step
    rec.close()


def test_recorder_close_is_idempotent_and_record_after_close_raises(tmp_path):
    path = str(tmp_path / "f.jsonl")
    rec = FlightRecorder(path, rank=0)
    rec.close()
    rec.close()
    with pytest.raises(ValueError, match="closed"):
        rec.record(1)


def test_recorder_reopen_after_close_truncates(tmp_path):
    path = str(tmp_path / "f.jsonl")
    first = FlightRecorder(path, rank=0, meta={"run": 1})
    first.record(1, phases={})
    first.close()
    second = FlightRecorder(path, rank=0, meta={"run": 2})
    second.record(1, phases={})
    second.close()
    header, steps = read_flight(path)
    assert header["run"] == 2
    assert len(steps) == 1


def test_concurrent_rank_threads_write_without_interleaving(tmp_path):
    # Handles are opened up front (the driver opens every rank's
    # recorder before the lockstep loop starts, so the shared sink's
    # refcount never dips to zero mid-run); only record() races.
    path = str(tmp_path / "f.jsonl")
    nranks, nsteps = 4, 25
    recorders = [FlightRecorder(path, rank=r, meta={"ranks": nranks},
                                flush_every=7) for r in range(nranks)]

    def rank_body(rec):
        for s in range(1, nsteps + 1):
            rec.record(s, phases={"RHS": 0.01 * rec.rank})
        rec.close()

    threads = [threading.Thread(target=rank_body, args=(rec,))
               for rec in recorders]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    header, steps = read_flight(path)  # every line parses
    assert len(steps) == nranks * nsteps
    assert {s["rank"] for s in steps} == set(range(nranks))


def test_read_flight_rejects_headerless_and_wrong_schema(tmp_path):
    p1 = tmp_path / "noheader.jsonl"
    p1.write_text(json.dumps({"kind": "step", "step": 1, "rank": 0}) + "\n")
    with pytest.raises(ValueError, match="header"):
        read_flight(str(p1))
    p2 = tmp_path / "wrong.jsonl"
    p2.write_text(json.dumps({"kind": "header", "schema": "other/v9"}) + "\n")
    with pytest.raises(ValueError, match="schema"):
        read_flight(str(p2))


# -- cross-rank analytics -------------------------------------------------


def test_step_imbalance_identifies_the_straggler():
    rows = step_imbalance(synthetic_steps())
    assert len(rows) == 3
    for row in rows:
        assert row["ranks"] == 2
        assert row["t_max"] == pytest.approx(0.22)
        assert row["t_mean"] == pytest.approx(0.17)
        assert row["lif"] == pytest.approx(0.22 / 0.17)
        # Paper Table 4 spread: (max - min) / mean.
        assert row["imbalance"] == pytest.approx(0.10 / 0.17)
        assert row["critical_rank"] == 1
        assert row["critical_phase"] == "RHS"


def test_step_imbalance_degenerate_zero_time_step_reports_zero():
    steps = [{"kind": "step", "step": 1, "rank": r, "phases": {}}
             for r in (0, 1)]
    row = step_imbalance(steps)[0]
    assert row["lif"] == 0.0 and row["imbalance"] == 0.0


def test_straggler_summary_attributes_bound_steps():
    rows = straggler_summary(synthetic_steps())
    assert rows[0]["rank"] == 1
    assert rows[0]["steps_critical"] == 3
    assert rows[0]["critical_share"] == pytest.approx(1.0)
    assert rows[0]["worst_phase"] == "RHS"
    assert rows[1]["rank"] == 0
    assert rows[1]["steps_critical"] == 0


def test_critical_path_charges_the_bounding_rank_phase():
    rows = critical_path(synthetic_steps())
    assert rows[0]["rank"] == 1 and rows[0]["phase"] == "RHS"
    assert rows[0]["steps"] == 3
    assert rows[0]["seconds"] == pytest.approx(3 * 0.22)


def test_run_imbalance_over_rank_results():
    result = run_sim(steps=2, ranks=2)
    rows = run_imbalance(result)
    assert rows, "two-rank run must produce imbalance rows"
    total = rows[-1]
    assert total["phase"] == "TOTAL"
    assert total["lif"] >= 1.0
    assert total["slowest rank"] in (0, 1)
    assert all(r["max [s]"] >= r["mean [s]"] for r in rows)


def test_run_imbalance_empty_for_single_rank():
    assert run_imbalance(run_sim(steps=1, ranks=1)) == []


# -- driver + CLI integration ---------------------------------------------


def test_driver_writes_and_analytics_read_a_flight_recording(tmp_path):
    path = str(tmp_path / "flight.jsonl")
    result = run_sim(steps=3, ranks=2, flight_out=path,
                     sanitize="warn")
    header, steps = read_flight(path)
    assert header["ranks"] == 2
    assert header["cells"] == [16, 16, 16]
    assert len(steps) == 3 * 2  # one record per (step, rank)
    for rec in steps:
        assert rec["dt"] > 0.0
        assert rec["wall"] > 0.0
        assert rec["gcells_per_s"] >= 0.0
        assert "RHS" in rec["phases"] and "UP" in rec["phases"]
        assert set(rec["drift"]) == {"mass", "energy"}
        assert abs(rec["drift"]["mass"]) < 1e-6  # uniform IC conserves
        assert rec["sanitizer_events"] == 0
        assert rec["schedule"]["workers"] >= 1
    # Per-step phase deltas must sum back to the cumulative rank timers.
    for rr in result.rank_results:
        mine = [r for r in steps if r["rank"] == rr.rank]
        rhs_sum = sum(r["phases"].get("RHS", 0.0) for r in mine)
        assert rhs_sum == pytest.approx(rr.timers["RHS"], rel=1e-6)


def test_flight_analysis_of_a_real_run(tmp_path):
    path = str(tmp_path / "flight.jsonl")
    run_sim(steps=4, ranks=2, flight_out=path)
    analysis = analyze_flight(path)
    assert analysis.nsteps == 4
    assert analysis.ranks == 2
    assert analysis.mean_lif >= 1.0
    assert analysis.max_lif >= analysis.mean_lif
    report = format_flight_report(analysis)
    assert "Flight analysis: 4 steps x 2 ranks" in report
    assert "Straggler attribution" in report
    assert "Critical path" in report


def test_cli_analyze_flight(tmp_path, capsys):
    path = str(tmp_path / "flight.jsonl")
    assert cli_main(["run", "--cells", "16", "--bubbles", "1",
                     "--steps", "2", "--ranks", "2",
                     "--flight-out", path]) == 0
    out = capsys.readouterr().out
    assert "flight recording written to" in out
    assert cli_main(["analyze-flight", path]) == 0
    report = capsys.readouterr().out
    assert "Flight analysis: 2 steps x 2 ranks" in report


def test_cli_analyze_flight_bad_file_is_exit_2(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    assert cli_main(["analyze-flight", missing]) == 2
    assert "error:" in capsys.readouterr().err


def test_config_validates_flight_and_progress_fields():
    with pytest.raises(ValueError, match="flight_flush_every"):
        SimulationConfig(cells=16, block_size=8, flight_flush_every=0)
    with pytest.raises(ValueError, match="progress_interval"):
        SimulationConfig(cells=16, block_size=8, progress_interval=-1)


# -- structured logger ----------------------------------------------------


def test_logger_emits_parsable_logfmt_lines():
    buf = io.StringIO()
    log = StructuredLogger("unit.test", stream=buf)
    line = log.info("progress", step=12, pct=40.0)
    assert line is not None and buf.getvalue().strip() == line
    fields = dict(tok.split("=", 1) for tok in line.split(" "))
    assert fields["level"] == "info"
    assert fields["logger"] == "unit.test"
    assert fields["event"] == "progress"
    assert fields["step"] == "12"
    assert float(fields["ts"]) > 0


def test_logger_quotes_values_with_spaces():
    buf = io.StringIO()
    line = StructuredLogger("t", stream=buf).info("e", msg="two words")
    assert 'msg="two words"' in line


def test_logger_level_threshold_suppresses():
    buf = io.StringIO()
    log = StructuredLogger("t", stream=buf, level="warn")
    assert log.info("quiet") is None
    assert buf.getvalue() == ""
    assert log.error("loud") is not None
    assert log.emitted == 1


def test_logger_rejects_unknown_levels():
    with pytest.raises(ValueError, match="level"):
        StructuredLogger("t", level="chatty")
    with pytest.raises(ValueError, match="level"):
        StructuredLogger("t").event("e", level="chatty")


def test_get_logger_is_cached_per_name():
    assert get_logger("unit.cache") is get_logger("unit.cache")
    assert get_logger("unit.cache") is not get_logger("unit.other")


# -- progress reporter ----------------------------------------------------


def test_progress_reporter_emits_on_interval_and_final_step():
    buf = io.StringIO()
    log = StructuredLogger("progress.test", stream=buf)
    pr = ProgressReporter(total_steps=10, cells=1000, interval=4,
                          logger=log)
    for s in range(1, 11):
        pr.step(s, sim_time=s * 0.1, dt=0.1)
    lines = buf.getvalue().strip().splitlines()
    assert pr.heartbeats == len(lines) == 3  # steps 4, 8 and final 10
    assert "step=4" in lines[0]
    assert "step=8" in lines[1]
    assert "step=10" in lines[2] and "pct=100" in lines[2]
    assert all("eta_s=" in ln and "gcells_per_s=" in ln for ln in lines)


def test_progress_reporter_includes_imbalance_when_known():
    buf = io.StringIO()
    pr = ProgressReporter(total_steps=2, cells=10, interval=1,
                          logger=StructuredLogger("t", stream=buf))
    pr.step(1, imbalance=0.25)
    pr.step(2)
    lines = buf.getvalue().splitlines()
    assert "imbalance=0.25" in lines[0]
    assert "imbalance" not in lines[1]


def test_progress_reporter_rejects_nonpositive_interval():
    with pytest.raises(ValueError, match="interval"):
        ProgressReporter(total_steps=10, cells=1, interval=0)


def test_driver_progress_heartbeat_routes_through_the_logger():
    logger = get_logger("telemetry.progress")
    buf = io.StringIO()
    old_stream, logger.stream = logger.stream, buf
    try:
        run_sim(steps=4, ranks=2, progress_interval=2)
    finally:
        logger.stream = old_stream
    lines = buf.getvalue().strip().splitlines()
    assert len(lines) == 2  # steps 2 and 4 (final == interval hit)
    assert all("logger=telemetry.progress" in ln for ln in lines)
    assert all("imbalance=" in ln for ln in lines)


# -- overhead budget (tentpole acceptance) --------------------------------


@pytest.mark.slow
def test_flight_recorder_overhead_under_five_percent(tmp_path):
    from repro.telemetry.clock import now

    def timed(**kw):
        best = float("inf")
        for _ in range(3):
            t0 = now()
            run_sim(steps=6, ranks=1, cells=32, block_size=16,
                    telemetry="metrics", diag_interval=0, **kw)
            best = min(best, now() - t0)
        return best

    base = timed()
    flight = timed(flight_out=str(tmp_path / "f.jsonl"))
    overhead = (flight - base) / base
    assert overhead < 0.05, f"flight overhead {overhead:.1%} >= 5%"
