"""Tests for the checkpointed campaign runner (repro.sim.campaign)."""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.resilience import FaultPlan, FaultSpec
from repro.sim.campaign import Campaign
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

IC = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)


def base_config(**kw):
    d = dict(cells=16, block_size=8, max_steps=1, diag_interval=1)
    d.update(kw)
    return SimulationConfig(**d)


class TestSegmentedEquivalence:
    def test_bit_exact_vs_uninterrupted(self, tmp_path):
        full = Simulation(base_config(max_steps=6), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=6, segment_steps=2)
        np.testing.assert_array_equal(result.final_field, full.final_field)

    def test_records_continuous(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=5, segment_steps=2)
        assert [r.step for r in result.records] == [1, 2, 3, 4, 5]
        assert len(result.segments) == 3
        assert result.segments[-1].checkpoint is None  # no trailing ckpt

    def test_diagnostics_match_uninterrupted(self, tmp_path):
        full = Simulation(base_config(max_steps=6), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=6, segment_steps=3)
        np.testing.assert_allclose(
            result.series("max_pressure"), full.series("max_pressure"),
            rtol=1e-12,
        )

    def test_rank_count_changes_between_segments(self, tmp_path):
        full = Simulation(base_config(max_steps=4), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(
            total_steps=4, segment_steps=2, ranks_per_segment=[1, 2]
        )
        np.testing.assert_array_equal(result.final_field, full.final_field)
        assert [s.ranks for s in result.segments] == [1, 2]

    def test_checkpoints_written(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=4, segment_steps=2)
        ck = result.segments[0].checkpoint
        assert ck is not None and ck.endswith("campaign_step000002.rck")
        import os

        assert os.path.exists(ck)

    def test_invalid_steps(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        with pytest.raises(ValueError):
            campaign.run(total_steps=0, segment_steps=1)

    def test_single_segment_degenerates_to_plain_run(self, tmp_path):
        full = Simulation(base_config(max_steps=3), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=3, segment_steps=10)
        np.testing.assert_array_equal(result.final_field, full.final_field)
        assert len(result.segments) == 1


class TestCampaignHardening:
    def test_segment_statuses_recorded(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=4, segment_steps=2)
        assert result.ok
        assert result.error is None
        assert [s.status for s in result.segments] == ["ok", "ok"]
        assert [s.attempts for s in result.segments] == [1, 1]
        assert result.completed_steps == 4

    def test_failed_segment_retries_from_last_checkpoint(self, tmp_path):
        # One crash addressed inside segment 2; the campaign must retry
        # the segment from the boundary checkpoint and stay bit-exact.
        full = Simulation(base_config(max_steps=6), IC).run()
        plan = FaultPlan(seed=21, faults=[
            FaultSpec(kind="rank_crash", step=4, max_hits=1),
        ])
        campaign = Campaign(base_config(), IC, str(tmp_path),
                            max_segment_retries=2, fault_plan=plan)
        result = campaign.run(total_steps=6, segment_steps=2)
        assert result.ok
        assert [s.status for s in result.segments] == \
            ["ok", "retried", "ok"]
        assert result.segments[1].attempts == 2
        np.testing.assert_array_equal(result.final_field, full.final_field)
        assert [r.step for r in result.records] == [1, 2, 3, 4, 5, 6]
        np.testing.assert_allclose(
            result.series("max_pressure"), full.series("max_pressure"),
            rtol=1e-12,
        )

    def test_exhausted_segment_returns_partial_result(self, tmp_path):
        # An unlimited crash in segment 2 exhausts the retry budget; the
        # campaign keeps segment 1's results instead of losing them.
        plan = FaultPlan(seed=22, faults=[
            FaultSpec(kind="rank_crash", step=3, max_hits=0),
        ])
        campaign = Campaign(base_config(), IC, str(tmp_path),
                            max_segment_retries=1, fault_plan=plan)
        result = campaign.run(total_steps=6, segment_steps=2)
        assert not result.ok
        assert "segment 1" in result.error
        assert [s.status for s in result.segments] == ["ok", "failed"]
        assert result.segments[1].attempts == 2
        assert result.completed_steps == 2
        assert [r.step for r in result.records] == [1, 2]
        # The partial field matches the uninterrupted run at step 2.
        ref = Simulation(base_config(max_steps=2), IC).run()
        np.testing.assert_array_equal(result.final_field, ref.final_field)

    def test_no_retries_by_default(self, tmp_path):
        plan = FaultPlan(seed=23, faults=[
            FaultSpec(kind="rank_crash", step=1, max_hits=1),
        ])
        campaign = Campaign(base_config(), IC, str(tmp_path),
                            fault_plan=plan)
        result = campaign.run(total_steps=2, segment_steps=2)
        assert not result.ok
        assert result.segments[0].attempts == 1

    def test_engine_campaign_requires_icspec(self, tmp_path):
        with pytest.raises(ValueError, match="ICSpec"):
            Campaign(base_config(), IC, str(tmp_path), engine=object())

    @pytest.mark.tier2
    def test_engine_fanout_matches_inline(self, tmp_path):
        from repro.service import ICSpec, JobEngine, ServiceConfig

        spec = ICSpec("cloud_collapse",
                      {"bubbles": [[0.5, 0.5, 0.5, 0.2]],
                       "p_liquid": 1000.0})
        inline = Campaign(base_config(), IC,
                          str(tmp_path / "inline")).run(4, 2)
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "svc"))
        with JobEngine(svc) as engine:
            campaign = Campaign(base_config(), spec,
                                str(tmp_path / "seg"), engine=engine)
            result = campaign.run(total_steps=4, segment_steps=2)
        assert result.ok
        np.testing.assert_array_equal(result.final_field,
                                      inline.final_field)
        assert [r.step for r in result.records] == \
            [r.step for r in inline.records]
        np.testing.assert_allclose(
            result.series("max_pressure"), inline.series("max_pressure"),
            rtol=1e-12,
        )
