"""Tests for the checkpointed campaign runner (repro.sim.campaign)."""

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.sim.campaign import Campaign
from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse

IC = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)


def base_config(**kw):
    d = dict(cells=16, block_size=8, max_steps=1, diag_interval=1)
    d.update(kw)
    return SimulationConfig(**d)


class TestSegmentedEquivalence:
    def test_bit_exact_vs_uninterrupted(self, tmp_path):
        full = Simulation(base_config(max_steps=6), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=6, segment_steps=2)
        np.testing.assert_array_equal(result.final_field, full.final_field)

    def test_records_continuous(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=5, segment_steps=2)
        assert [r.step for r in result.records] == [1, 2, 3, 4, 5]
        assert len(result.segments) == 3
        assert result.segments[-1].checkpoint is None  # no trailing ckpt

    def test_diagnostics_match_uninterrupted(self, tmp_path):
        full = Simulation(base_config(max_steps=6), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=6, segment_steps=3)
        np.testing.assert_allclose(
            result.series("max_pressure"), full.series("max_pressure"),
            rtol=1e-12,
        )

    def test_rank_count_changes_between_segments(self, tmp_path):
        full = Simulation(base_config(max_steps=4), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(
            total_steps=4, segment_steps=2, ranks_per_segment=[1, 2]
        )
        np.testing.assert_array_equal(result.final_field, full.final_field)
        assert [s.ranks for s in result.segments] == [1, 2]

    def test_checkpoints_written(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=4, segment_steps=2)
        ck = result.segments[0].checkpoint
        assert ck is not None and ck.endswith("campaign_step000002.rck")
        import os

        assert os.path.exists(ck)

    def test_invalid_steps(self, tmp_path):
        campaign = Campaign(base_config(), IC, str(tmp_path))
        with pytest.raises(ValueError):
            campaign.run(total_steps=0, segment_steps=1)

    def test_single_segment_degenerates_to_plain_run(self, tmp_path):
        full = Simulation(base_config(max_steps=3), IC).run()
        campaign = Campaign(base_config(), IC, str(tmp_path))
        result = campaign.run(total_steps=3, segment_steps=10)
        np.testing.assert_array_equal(result.final_field, full.final_field)
        assert len(result.segments) == 1
