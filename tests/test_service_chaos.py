"""Chaos acceptance of the job service (this PR's acceptance criterion).

A seeded chaos campaign -- worker SIGKILLs, an injected stall punished
by the per-job timeout, one corrupted cache entry, and a poison config
-- must leave every legitimate job completed with results bit-identical
to fault-free runs, duplicates served without recompute, the poison
config quarantined within the breaker threshold, and the scorecard
reporting retries / cache hits / shed counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.driver import Simulation
from repro.resilience import FaultPlan, FaultSpec
from repro.service import (
    BackoffPolicy,
    ICSpec,
    JobEngine,
    JobRequest,
    PoisonedConfigError,
    ServiceConfig,
    format_service_scorecard,
    health_snapshot,
)
from repro.sim import SimulationConfig

IC = ICSpec("uniform", {"rho": 1000.0, "p": 100.0})


@pytest.fixture(autouse=True)
def _no_leaked_resources(resource_ledger):
    """Every chaos test must wind down to zero leaked segments,
    worker processes and threads (the RS acceptance bar, enforced at
    runtime by the syscheck :class:`ResourceLedger`)."""
    yield


def make_request(p=100.0, steps=3):
    cfg = SimulationConfig(cells=16, block_size=8, max_steps=steps,
                           diag_interval=1)
    return JobRequest(config=cfg, ic=ICSpec("uniform",
                                            {"rho": 1000.0, "p": p}))


@pytest.mark.tier2
class TestChaosAcceptance:
    def test_seeded_chaos_campaign(self, tmp_path):
        # Five unique scenarios; requests 0 and 1 get chaos plans.
        uniques = [make_request(p=100.0 * (i + 1), steps=3)
                   for i in range(5)]
        references = {
            r.key(): Simulation(r.config, r.ic.build()).run().final_field
            for r in uniques
        }
        kill_plan = FaultPlan(seed=71, faults=[
            FaultSpec(kind="rank_crash", step=2, max_hits=1),
        ])
        stall_plan = FaultPlan(seed=72, faults=[
            FaultSpec(kind="straggler", step=2, delay=60.0, max_hits=1),
        ])
        poison_plan = FaultPlan(seed=73, faults=[
            FaultSpec(kind="rank_crash", step=1, max_hits=0),  # every try
        ])
        # Service-level chaos: corrupt the first result-cache write.
        service_plan = FaultPlan(seed=74, faults=[
            FaultSpec(kind="ckpt_bitflip", rank=-1, max_hits=1),
        ])
        svc = ServiceConfig(
            workers=3,
            workdir=str(tmp_path / "service"),
            backoff=BackoffPolicy(max_attempts=4, base_delay=0.05,
                                  max_delay=0.3),
            breaker_threshold=2,
            fault_plan=service_plan,
            seed=2013,
        )
        with JobEngine(svc) as engine:
            # Phase 1: unique scenarios + in-flight duplicates (8 jobs).
            handles = [
                engine.submit(uniques[0], fault_plan=kill_plan),
                engine.submit(uniques[1], fault_plan=stall_plan,
                              timeout=6.0),
                engine.submit(uniques[2]),
                engine.submit(uniques[3]),
                engine.submit(uniques[4]),
                engine.submit(uniques[2]),  # duplicate: single-flight
                engine.submit(uniques[3]),  # duplicate
                engine.submit(uniques[4]),  # duplicate
            ]
            poison_handle = engine.submit(make_request(p=777.0, steps=2),
                                          fault_plan=poison_plan)
            results = [h.result(timeout=300) for h in handles]
            with pytest.raises(PoisonedConfigError) as poison_exc:
                poison_handle.result(timeout=300)

            # Every legitimate job completed bit-identical to fault-free.
            for handle, result in zip(handles, results):
                np.testing.assert_array_equal(
                    result.final_field, references[handle.key]
                )
            # The SIGKILLed and the stalled job were each retried once.
            assert results[0].attempts == 2
            assert results[1].attempts == 2
            # 1 kill for the kill-plan job + 2 for the poison job's
            # supervised attempts.
            assert engine.counters["kills_delivered"] == 3
            assert engine.counters["timeouts"] == 1
            # Duplicates joined the in-flight computation: 5 computes.
            assert engine.counters["computed"] == 5
            assert engine.counters["dedup_joined"] == 3
            # Poison config: quarantined within K distinct-worker tries.
            assert poison_handle.status == "poisoned"
            assert poison_handle.attempts <= svc.breaker_threshold
            assert len(set(poison_exc.value.workers)) == 2
            assert engine.counters["breaker_opened"] == 1

            # Phase 2: resubmit after drain.  One cache entry was
            # corrupted at write time by the service plan; its read must
            # quarantine and transparently recompute, the others serve
            # verified cache hits.
            assert engine.injector.counters["injected_ckpt_bitflip"] == 1
            resubmits = [engine.submit(r) for r in uniques]
            for req, handle in zip(uniques, resubmits):
                np.testing.assert_array_equal(
                    handle.result(timeout=300).final_field,
                    references[req.key()],
                )
            assert engine.cache.counters["quarantined"] == 1
            assert engine.counters["cache_hits"] == 4
            assert engine.counters["computed"] == 6  # 5 + 1 recompute

            snapshot = health_snapshot(engine)
            scorecard = format_service_scorecard(snapshot)
        # The scorecard reports the required observability counters.
        assert "retries" in scorecard
        assert "cache hits" in scorecard
        assert "shed" in scorecard
        assert snapshot["counters"]["retries"] >= 2
        assert snapshot["counters"]["cache_hits"] == 4
        assert snapshot["counters"]["shed"] == 0
        assert snapshot["cache"]["quarantined"] == 1
        assert len(snapshot["breaker"]["open_keys"]) == 1


@pytest.mark.slow
class TestProcsServiceChaos:
    def test_multi_rank_sigkill_through_service(self, tmp_path):
        """Simultaneous SIGKILL of both rank processes of a procs job.

        The worker's internal ProcsWorld supervisor delivers the kills
        (service-level supervision auto-disables for procs jobs); the
        worker reports the rank loss gracefully, the service retries on
        a fresh worker with the consumed kills merged home, and the
        retry completes bit-identically.  A duplicate submission is then
        served from the cache without recompute.
        """
        cfg = SimulationConfig(cells=16, block_size=8, max_steps=4,
                               diag_interval=1, ranks=2,
                               cluster_backend="procs", comm_timeout=30.0)
        req = JobRequest(config=cfg, ic=IC)
        sim_cfg = SimulationConfig(cells=16, block_size=8, max_steps=4,
                                   diag_interval=1)
        reference = Simulation(sim_cfg, IC.build()).run().final_field

        plan = FaultPlan(seed=75, faults=[
            FaultSpec(kind="rank_crash", rank=0, step=2, max_hits=1),
            FaultSpec(kind="rank_crash", rank=1, step=2, max_hits=1),
        ])
        svc = ServiceConfig(workers=1, workdir=str(tmp_path / "w"),
                            backoff=BackoffPolicy(max_attempts=3,
                                                  base_delay=0.05,
                                                  max_delay=0.3))
        with JobEngine(svc) as engine:
            handle = engine.submit(req, fault_plan=plan)
            result = handle.result(timeout=300)
            assert result.attempts == 2
            assert engine.failures_by_kind.get("rank_crash") == 1
            assert engine.pool.restarts >= 1
            # Both kills were delivered inside the worker and merged
            # home: the retry saw them consumed.
            assert handle._job.injector.hit_state() == [1, 1]
            # Cross-backend bit-identity holds through the service path.
            np.testing.assert_array_equal(result.final_field, reference)

            dup = engine.submit(req).result(timeout=30)
            assert dup.cached
            assert engine.counters["computed"] == 1
        np.testing.assert_array_equal(dup.final_field, reference)
