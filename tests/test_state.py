"""Unit tests for repro.physics.state (quantity layout, AoS/SoA)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.state import (
    ADVECTED,
    CONSERVED,
    ENERGY,
    GAMMA,
    NAMES,
    NQ,
    PI,
    RHO,
    RHOU,
    RHOV,
    RHOW,
    aos_to_soa,
    soa_to_aos,
    zeros_aos,
)

from .conftest import make_rng


class TestLayout:
    def test_quantity_count(self):
        assert NQ == 7

    def test_indices_distinct_and_dense(self):
        idx = [RHO, RHOU, RHOV, RHOW, ENERGY, GAMMA, PI]
        assert sorted(idx) == list(range(NQ))

    def test_conserved_advected_partition(self):
        assert set(CONSERVED) | set(ADVECTED) == set(range(NQ))
        assert not set(CONSERVED) & set(ADVECTED)

    def test_names_match(self):
        assert len(NAMES) == NQ
        assert NAMES[RHO] == "rho"
        assert NAMES[GAMMA] == "Gamma"


class TestZerosAos:
    def test_shape_and_dtype(self):
        a = zeros_aos((4, 5, 6))
        assert a.shape == (4, 5, 6, NQ)
        assert a.dtype == np.float32
        assert not a.any()

    def test_custom_dtype(self):
        a = zeros_aos((2, 2, 2), dtype=np.float64)
        assert a.dtype == np.float64


class TestConversions:
    def test_roundtrip(self, rng):
        aos = rng.normal(size=(3, 4, 5, NQ))
        soa = aos_to_soa(aos)
        assert soa.shape == (NQ, 3, 4, 5)
        back = soa_to_aos(soa, dtype=np.float64)
        np.testing.assert_array_equal(back, aos)

    def test_soa_contiguous(self, rng):
        soa = aos_to_soa(rng.normal(size=(4, 4, 4, NQ)))
        assert soa.flags["C_CONTIGUOUS"]

    def test_quantity_mapping(self, rng):
        aos = rng.normal(size=(2, 2, 2, NQ))
        soa = aos_to_soa(aos)
        for q in range(NQ):
            np.testing.assert_array_equal(soa[q], aos[..., q])

    def test_aos_wrong_trailing_axis(self):
        with pytest.raises(ValueError, match="trailing axis"):
            aos_to_soa(np.zeros((3, 3, 3, NQ + 1)))

    def test_soa_wrong_leading_axis(self):
        with pytest.raises(ValueError, match="leading axis"):
            soa_to_aos(np.zeros((NQ - 1, 3, 3, 3)))

    @given(
        nz=st.integers(1, 6), ny=st.integers(1, 6), nx=st.integers(1, 6),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, nz, ny, nx, seed):
        aos = make_rng(seed).normal(size=(nz, ny, nx, NQ))
        np.testing.assert_array_equal(
            soa_to_aos(aos_to_soa(aos), dtype=np.float64), aos
        )

    def test_downcast_on_store(self, rng):
        soa = rng.normal(size=(NQ, 2, 2, 2))
        aos32 = soa_to_aos(soa)  # default storage dtype
        assert aos32.dtype == np.float32
