"""Tests for flow diagnostics (repro.sim.diagnostics)."""

import numpy as np
import pytest

from repro.cluster.mpi_sim import SimWorld
from repro.physics.eos import LIQUID, VAPOR
from repro.sim.diagnostics import (
    Diagnostics,
    kinetic_energy,
    max_pressure,
    pressure_field,
    rank_diagnostics,
    reduce_diagnostics,
    vapor_fraction_field,
    vapor_volume,
    wall_max_pressure,
)

from .conftest import make_uniform_aos


class TestPressure:
    def test_uniform(self):
        f = make_uniform_aos((4, 4, 4), p=77.0).astype(np.float32)
        np.testing.assert_allclose(pressure_field(f), 77.0, rtol=1e-4)
        assert max_pressure(f) == pytest.approx(77.0, rel=1e-4)

    def test_hotspot(self):
        f = make_uniform_aos((8, 8, 8), p=100.0)
        hot = make_uniform_aos((1, 1, 1), p=500.0)
        f[3, 4, 5] = hot[0, 0, 0]
        assert max_pressure(f) == pytest.approx(500.0, rel=1e-6)

    def test_wall_layer_only(self):
        f = make_uniform_aos((8, 8, 8), p=100.0)
        hot = make_uniform_aos((1, 1, 1), p=500.0)
        f[4, 4, 4] = hot[0, 0, 0]  # interior hotspot
        assert wall_max_pressure(f, axis=0, side=-1) == pytest.approx(
            100.0, rel=1e-6
        )
        f[0, 2, 2] = hot[0, 0, 0]  # wall hotspot
        assert wall_max_pressure(f, axis=0, side=-1) == pytest.approx(
            500.0, rel=1e-6
        )

    def test_wall_high_side(self):
        f = make_uniform_aos((8, 8, 8), p=100.0)
        hot = make_uniform_aos((1, 1, 1), p=321.0)
        f[-1, 1, 1] = hot[0, 0, 0]
        assert wall_max_pressure(f, axis=0, side=1) == pytest.approx(
            321.0, rel=1e-6
        )


class TestKineticEnergy:
    def test_at_rest(self):
        f = make_uniform_aos((4, 4, 4))
        assert kinetic_energy(f, h=0.1) == 0.0

    def test_uniform_motion(self):
        f = make_uniform_aos((4, 4, 4), rho=1000.0, u=(0.0, 0.0, 2.0))
        # KE = 0.5 * rho * u^2 * V = 0.5 * 1000 * 4 * (64 * h^3)
        expected = 0.5 * 1000.0 * 4.0 * 64 * 0.1**3
        assert kinetic_energy(f, h=0.1) == pytest.approx(expected, rel=1e-6)


class TestVaporFraction:
    def test_pure_phases(self):
        f = make_uniform_aos((2, 2, 2), material=LIQUID)
        np.testing.assert_allclose(vapor_fraction_field(f), 0.0, atol=1e-6)
        f = make_uniform_aos((2, 2, 2), rho=1.0, p=0.02, material=VAPOR)
        np.testing.assert_allclose(vapor_fraction_field(f), 1.0, rtol=1e-6)

    def test_volume(self):
        f = make_uniform_aos((4, 4, 4), rho=1.0, p=0.02, material=VAPOR)
        assert vapor_volume(f, h=0.5) == pytest.approx(64 * 0.125, rel=1e-6)

    def test_equivalent_radius(self):
        d = Diagnostics(
            max_pressure=0, wall_max_pressure=0, kinetic_energy=0,
            vapor_volume=4.0 / 3.0 * np.pi * 8.0,
        )
        assert d.equivalent_radius == pytest.approx(2.0)


class TestReduction:
    def test_reduce_across_ranks(self):
        world = SimWorld(3)

        def main(comm):
            f = make_uniform_aos((4, 4, 4), p=100.0 + comm.rank * 10).astype(
                np.float32
            )
            wall = (0, -1) if comm.rank == 0 else None
            local = rank_diagnostics(f, h=0.1, wall=wall)
            return reduce_diagnostics(comm, local)

        out = world.run(main)
        for d in out:
            assert d.max_pressure == pytest.approx(120.0, rel=1e-4)
            assert d.wall_max_pressure == pytest.approx(100.0, rel=1e-4)
            assert d.kinetic_energy == 0.0
            assert d.vapor_volume == pytest.approx(0.0, abs=1e-4)
