"""Tests for collective compressed I/O (repro.compression.io)."""

import numpy as np
import pytest

from repro.cluster.mpi_sim import SimWorld
from repro.compression.io import (
    HEADER_SIZE,
    file_size,
    read_compressed,
    read_field,
    read_header,
    write_compressed_parallel,
)
from repro.compression.scheme import WaveletCompressor


def rank_field(rank, n=16):
    t = np.linspace(0, 1, n) + rank
    return (t[:, None, None] * t[None, :, None] * t[None, None, :]).astype(
        np.float32
    )


class TestSingleRank:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "dump.rwz")
        comp = WaveletCompressor(eps=1e-3)
        world = SimWorld(1)

        def main(comm):
            cf = comp.compress(rank_field(0))
            return write_compressed_parallel(comm, path, "p", cf)

        ws = world.run(main)[0]
        assert ws.offset == HEADER_SIZE
        header = read_header(path)
        assert header["quantity"] == "p"
        assert len(header["ranks"]) == 1
        field = read_field(path, comp)
        assert np.abs(field - rank_field(0)).max() <= 1e-3 + 1e-5

    def test_file_size_accounts_header(self, tmp_path):
        path = str(tmp_path / "dump.rwz")
        world = SimWorld(1)

        def main(comm):
            cf = WaveletCompressor(eps=1e-3).compress(rank_field(0))
            write_compressed_parallel(comm, path, "p", cf)
            return len(cf.payload)

        nbytes = world.run(main)[0]
        assert file_size(path) == HEADER_SIZE + nbytes


class TestMultiRank:
    def test_offsets_from_exscan(self, tmp_path):
        path = str(tmp_path / "dump.rwz")
        world = SimWorld(3)

        def main(comm):
            cf = WaveletCompressor(eps=1e-3).compress(rank_field(comm.rank))
            ws = write_compressed_parallel(
                comm, path, "p", cf,
                rank_meta={"origin_cells": [16 * comm.rank, 0, 0]},
            )
            return (ws.offset, ws.nbytes)

        out = world.run(main)
        # Offsets are a prefix sum of the sizes after the header.
        assert out[0][0] == HEADER_SIZE
        assert out[1][0] == HEADER_SIZE + out[0][1]
        assert out[2][0] == out[1][0] + out[1][1]

    def test_payloads_not_overlapping(self, tmp_path):
        path = str(tmp_path / "dump.rwz")
        world = SimWorld(4)

        def main(comm):
            cf = WaveletCompressor(eps=1e-4).compress(rank_field(comm.rank))
            write_compressed_parallel(
                comm, path, "p", cf,
                rank_meta={"origin_cells": [16 * comm.rank, 0, 0]},
            )

        world.run(main)
        fields = read_compressed(path)
        comp = WaveletCompressor()
        for rank, cf in enumerate(fields):
            out = comp.decompress(cf)
            assert np.abs(out - rank_field(rank)).max() <= 1e-4 + 1e-5

    def test_read_field_stitches_subdomains(self, tmp_path):
        path = str(tmp_path / "dump.rwz")
        world = SimWorld(2)

        def main(comm):
            cf = WaveletCompressor(eps=1e-4).compress(rank_field(comm.rank))
            write_compressed_parallel(
                comm, path, "p", cf,
                rank_meta={"origin_cells": [16 * comm.rank, 0, 0]},
            )

        world.run(main)
        field = read_field(path)
        assert field.shape == (32, 16, 16)
        assert np.abs(field[:16] - rank_field(0)).max() <= 1e-3
        assert np.abs(field[16:] - rank_field(1)).max() <= 1e-3


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rwz"
        path.write_bytes(b'{"magic": "nope"}'.ljust(HEADER_SIZE) + b"x")
        with pytest.raises(ValueError):
            read_header(str(path))
