"""Tests of the runtime numerics sanitizer (repro.analysis.sanitizer)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.analysis import (
    NumericsSanitizer,
    NumericsViolationError,
    NumericsWarning,
    ViolationReport,
    make_sanitizer,
)
from repro.cluster import Simulation
from repro.core.timestepper import make_stepper
from repro.physics.eos import LIQUID
from repro.physics.state import ENERGY, NQ, RHO, STORAGE_DTYPE
from repro.sim.config import SimulationConfig
from repro.sim.diagnostics import format_sanitizer_report
from repro.sim.ic import uniform


def clean_state(shape=(4, 4, 4)):
    """A quiescent liquid AoS state that passes every check."""
    aos = np.zeros(shape + (NQ,), dtype=STORAGE_DTYPE)
    aos[..., 0] = 1000.0  # rho
    aos[..., 4] = 1.0e5  # E (pure internal energy here)
    aos[..., 5] = LIQUID.G
    aos[..., 6] = LIQUID.P
    return aos


# -- construction & policy ----------------------------------------------


def test_make_sanitizer_off_returns_none():
    assert make_sanitizer("off") is None


def test_make_sanitizer_invalid_policy_raises():
    with pytest.raises(ValueError, match="policy"):
        make_sanitizer("strict")
    with pytest.raises(ValueError, match="policy"):
        NumericsSanitizer(policy="bogus")


def test_off_policy_config_has_no_report():
    cfg = SimulationConfig(cells=16, block_size=8, max_steps=1)
    res = Simulation(cfg, uniform()).run()
    assert res.sanitizer_report is None
    assert all(rr.sanitizer_report is None for rr in res.rank_results)


def test_config_rejects_unknown_sanitize_policy():
    with pytest.raises(ValueError, match="sanitize"):
        SimulationConfig(cells=16, block_size=8, sanitize="bogus")


# -- check_state ----------------------------------------------------------


def test_clean_state_produces_no_findings():
    s = NumericsSanitizer(policy="raise")
    assert s.check_state(clean_state()) == []
    assert len(s.report) == 0
    assert s.report.checks_run == 1


def test_nan_detected_and_counted():
    s = NumericsSanitizer(policy="warn")
    aos = clean_state()
    aos[0, 0, 0, RHO] = np.nan
    aos[1, 1, 1, 1] = np.inf
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NumericsWarning)
        found = s.check_state(aos, where="unit test", block=(0, 0, 0))
    assert [v.check for v in found] == ["non_finite"]
    assert found[0].count == 2
    assert found[0].block == (0, 0, 0)
    assert "unit test" in found[0].format()


def test_negative_density_and_gamma_detected():
    s = NumericsSanitizer(policy="warn")
    aos = clean_state()
    aos[0, 0, 0, 0] = -1.0
    aos[0, 0, 1, 5] = -0.5
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NumericsWarning)
        found = s.check_state(aos)
    assert {v.check for v in found} == {"negative_density", "negative_gamma"}


def test_negative_pressure_detected_with_floor():
    s = NumericsSanitizer(policy="warn", p_min=0.0)
    aos = clean_state()
    aos[2, 2, 2, 4] = -1.0e7  # energy low enough for p < 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NumericsWarning)
        found = s.check_state(aos)
    assert [v.check for v in found] == ["negative_pressure"]
    assert found[0].worst < 0.0


def test_raise_policy_raises_with_findings():
    s = NumericsSanitizer(policy="raise")
    aos = clean_state()
    aos[0, 0, 0, 0] = np.nan
    with pytest.raises(NumericsViolationError) as err:
        s.check_state(aos, where="stage 1", block=(1, 2, 3))
    assert err.value.violations[0].check == "non_finite"
    assert "block (1, 2, 3)" in str(err.value)


def test_warn_policy_emits_numerics_warning_and_continues():
    s = NumericsSanitizer(policy="warn")
    aos = clean_state()
    aos[0, 0, 0, 0] = np.nan
    with warnings.catch_warnings(record=True) as wlist:
        warnings.simplefilter("always")
        found = s.check_state(aos)
    assert len(found) == 1
    assert any(issubclass(w.category, NumericsWarning) for w in wlist)
    assert len(s.report) == 1


def test_shape_agnostic_finiteness_check():
    # Arrays without a trailing NQ axis still get the finiteness check.
    s = NumericsSanitizer(policy="raise")
    assert s.check_state(np.ones((5, 5))) == []
    with pytest.raises(NumericsViolationError):
        s.check_state(np.asarray([1.0, np.nan]))


# -- check_block_write ----------------------------------------------------


def test_block_write_dtype_contract():
    s = NumericsSanitizer(policy="raise")
    assert s.check_block_write(clean_state()) == []
    with pytest.raises(NumericsViolationError) as err:
        s.check_block_write(clean_state().astype(np.float64), block=(0, 0, 0))
    assert err.value.violations[0].check == "storage_dtype"


# -- report ---------------------------------------------------------------


def test_report_merge_and_summary():
    r1 = ViolationReport()
    s = NumericsSanitizer(policy="warn")
    aos = clean_state()
    aos[0, 0, 0, 0] = np.nan
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NumericsWarning)
        s.check_state(aos)
    merged = ViolationReport.merged([r1, s.report])
    assert len(merged) == 1
    assert merged.by_check() == {"non_finite": 1}
    assert "1 violation(s)" in merged.summary()
    rendered = format_sanitizer_report(merged)
    assert "non_finite" in rendered
    assert format_sanitizer_report(None) == "numerics sanitizer: off"


# -- timestepper hook -----------------------------------------------------


def test_timestepper_advance_checks_stages():
    stepper = make_stepper("rk3")
    U = np.ones(8)

    def bad_rhs(u):
        out = np.zeros_like(u)
        out[0] = np.nan
        return out

    with pytest.raises(NumericsViolationError) as err:
        stepper.advance(U, bad_rhs, 0.1,
                        sanitizer=NumericsSanitizer(policy="raise"))
    assert "stage 1" in err.value.violations[0].where


def test_timestepper_advance_unchanged_without_sanitizer():
    stepper = make_stepper("rk3")
    U = np.linspace(1.0, 2.0, 16)
    out = stepper.advance(U, lambda u: -u, 0.01)
    ref = stepper.advance(U, lambda u: -u, 0.01,
                          sanitizer=NumericsSanitizer(policy="raise"))
    np.testing.assert_array_equal(out, ref)


# -- driver integration ---------------------------------------------------


def test_driver_clean_run_with_raise_policy():
    cfg = SimulationConfig(cells=16, block_size=8, max_steps=3,
                           sanitize="raise")
    res = Simulation(cfg, uniform()).run()
    assert len(res.records) == 3
    assert res.sanitizer_report is not None
    assert len(res.sanitizer_report) == 0
    assert res.sanitizer_report.checks_run > 0


def nan_ic():
    base = uniform()

    def fn(z, y, x):
        W = base(z, y, x)
        W[0, 0, 0, 0] = np.nan
        return W

    return fn


def test_driver_nan_ic_raises_with_block_report():
    cfg = SimulationConfig(cells=16, block_size=8, max_steps=3,
                           sanitize="raise")
    with pytest.raises(NumericsViolationError) as err:
        Simulation(cfg, nan_ic()).run()
    v = err.value.violations[0]
    assert v.check == "non_finite"
    assert v.where == "initial condition"
    assert v.block is not None


def test_driver_warn_policy_records_and_completes():
    # Negative pressure in a stiffened liquid keeps the sound speed real,
    # so the run completes while the sanitizer records every violation.
    cfg = SimulationConfig(cells=16, block_size=8, max_steps=2,
                           sanitize="warn")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NumericsWarning)
        res = Simulation(cfg, uniform(p=-50.0)).run()
    assert len(res.records) == 2
    assert res.sanitizer_report.by_check().get("negative_pressure", 0) > 0


# -- kernel-path mutation localization ------------------------------------
#
# Inject a defect into each instrumented kernel path (RHS, UP, SOS, FWT)
# and assert that the sanitizer in "raise" mode localizes the failure to
# the path, the block index, and the offending field name.


class TestKernelPathLocalization:
    @staticmethod
    def _config(**overrides):
        base = dict(cells=16, block_size=8, max_steps=2, sanitize="raise")
        base.update(overrides)
        return SimulationConfig(**base)

    def _run_expecting_violation(self, monkeypatch, target, replacement,
                                 **config_overrides):
        monkeypatch.setattr(target, replacement)
        with pytest.raises(NumericsViolationError) as err:
            Simulation(self._config(**config_overrides), uniform()).run()
        return err.value.violations[0]

    def test_rhs_nan_localized_to_block_and_field(self, monkeypatch):
        from repro.core.kernels import rhs_kernel as orig

        def bad_rhs(pad, h, **kw):
            out = orig(pad, h, **kw)
            out[0, 0, 0, RHO] = np.nan
            return out

        v = self._run_expecting_violation(
            monkeypatch, "repro.node.solver.rhs_kernel", bad_rhs
        )
        assert v.check == "non_finite"
        assert "RHS" in v.where
        assert v.block is not None
        assert v.field == "rho"

    def test_up_negative_pressure_localized(self, monkeypatch):
        from repro.core.kernels import update_stage as orig

        def bad_up(u_aos, residual_aos, rhs_aos, a, b, dt, **kw):
            # A finite but catastrophic energy sink: passes the RHS
            # finiteness check, drives p < 0 in the UP block write.
            rhs_aos = rhs_aos.copy()
            rhs_aos[0, 0, 0, ENERGY] = -1.0e12
            return orig(u_aos, residual_aos, rhs_aos, a, b, dt, **kw)

        v = self._run_expecting_violation(
            monkeypatch, "repro.node.solver.update_stage", bad_up
        )
        assert v.check == "negative_pressure"
        assert "stage" in v.where
        assert v.block is not None
        assert v.field == "p"

    def test_sos_nan_localized(self, monkeypatch):
        from repro.core.kernels import sos_kernel as orig

        calls = {"n": 0}

        def bad_sos(block_aos):
            calls["n"] += 1
            if calls["n"] == 3:
                return float("nan")
            return orig(block_aos)

        v = self._run_expecting_violation(
            monkeypatch, "repro.node.solver.sos_kernel", bad_sos
        )
        assert v.check == "non_finite"
        assert "SOS" in v.where
        assert v.block is not None
        assert v.field == "sos"

    def test_fwt_nan_localized_to_quantity(self, monkeypatch, tmp_path):
        from repro.sim.diagnostics import pressure_field as orig

        def bad_pressure(fld):
            out = np.asarray(orig(fld)).copy()
            out[0, 0, 0] = np.nan
            return out

        v = self._run_expecting_violation(
            monkeypatch, "repro.cluster.driver.pressure_field", bad_pressure,
            dump_interval=1, dump_dir=str(tmp_path),
        )
        assert v.check == "non_finite"
        assert "FWT" in v.where
        assert v.field == "p"


def test_off_policy_zero_overhead_paths():
    # "off" is expressed structurally: no sanitizer object exists, so the
    # hook sites reduce to a single `is None` test.
    from repro.core.kernels import update_stage

    u = clean_state((8, 8, 8))
    res = np.zeros_like(u)
    rhs = np.zeros(u.shape, dtype=np.float64)
    # Must not raise and must not require any sanitizer machinery.
    update_stage(u, res, rhs, 0.0, 1.0, 1e-3, sanitizer=None)
    assert make_sanitizer("off") is None
