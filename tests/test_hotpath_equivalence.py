"""Bit-identity and dtype-contract tests of the workspace-threaded hot path.

The perfcheck PR rewrote the production WENO5/HLLE kernels to thread
``out=``/workspace buffers through the hot expression chains (rule CP003).
These tests pin the refactor's two contracts:

* **bit identity** -- the ``out=``-threaded evaluation issues the exact
  ufunc tree of the original expression form, so results must be
  *bitwise* equal (``np.array_equal``), not merely close;
* **dtype preservation** -- float32 face states stay float32 end to end
  (rules CP001/CP002: no silent promotion, no strong scalars).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.physics.eos import (
    LIQUID,
    conserved_to_primitive,
    pressure,
    primitive_to_conserved,
    sound_speed,
    total_energy,
)
from repro.physics.riemann import einfeldt_wave_speeds, hlle_flux
from repro.physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW
from repro.physics.weno import (
    Weno5Workspace,
    _weno5_minus_raw,
    weno5,
    weno5_fused,
)

from .conftest import make_rng


def _face_states(rng, shape=(4, 9), dtype=np.float64):
    """A pair of physically admissible primitive face-state batches."""
    W_l = np.empty((NQ,) + shape, dtype=dtype)
    W_r = np.empty((NQ,) + shape, dtype=dtype)
    for W in (W_l, W_r):
        W[RHO] = rng.uniform(500.0, 1500.0, shape)
        W[RHOU] = rng.uniform(-5.0, 5.0, shape)
        W[RHOV] = rng.uniform(-5.0, 5.0, shape)
        W[RHOW] = rng.uniform(-5.0, 5.0, shape)
        W[ENERGY] = rng.uniform(10.0, 200.0, shape)
        W[GAMMA] = LIQUID.G
        W[PI] = LIQUID.P
    return W_l, W_r


def _ref_hlle_combine(s_l, s_r, F_l, F_r, U_l, U_r):
    """Expression-form HLLE combination, the pre-refactor reference.

    Mirrors ``_hlle_combine`` / ``_hlle_wave_bounds`` operation for
    operation so the workspace path must match it bit for bit.
    """
    s_l_m = np.minimum(s_l, 0.0)
    s_r_p = np.maximum(s_r, 0.0)
    span = s_r_p - s_l_m
    safe = np.where(span > 0.0, span, 1.0)
    prod = s_l_m * s_r_p
    hll = (s_r_p * F_l - s_l_m * F_r + prod * (U_r - U_l)) / safe
    avg = 0.5 * (F_l + F_r)
    return np.where(span > 0.0, hll, avg)


def _ref_hlle_flux(W_l, W_r, normal):
    """Expression-form HLLE flux, component by component."""
    mom_n = RHOU + normal
    rho_l, p_l, G_l, P_l = W_l[RHO], W_l[ENERGY], W_l[GAMMA], W_l[PI]
    rho_r, p_r, G_r, P_r = W_r[RHO], W_r[ENERGY], W_r[GAMMA], W_r[PI]
    un_l, un_r = W_l[mom_n], W_r[mom_n]
    s_l, s_r = einfeldt_wave_speeds(
        rho_l, un_l, p_l, G_l, P_l, rho_r, un_r, p_r, G_r, P_r
    )
    E_l = total_energy(rho_l, W_l[RHOU], W_l[RHOV], W_l[RHOW], p_l, G_l, P_l)
    E_r = total_energy(rho_r, W_r[RHOU], W_r[RHOV], W_r[RHOW], p_r, G_r, P_r)

    flux = np.empty_like(W_l)
    flux[RHO] = _ref_hlle_combine(
        s_l, s_r, rho_l * un_l, rho_r * un_r, rho_l, rho_r
    )
    for comp in (RHOU, RHOV, RHOW):
        u_l_c, u_r_c = W_l[comp], W_r[comp]
        F_l = rho_l * un_l * u_l_c
        F_r = rho_r * un_r * u_r_c
        if comp == mom_n:
            F_l = F_l + p_l
            F_r = F_r + p_r
        flux[comp] = _ref_hlle_combine(
            s_l, s_r, F_l, F_r, rho_l * u_l_c, rho_r * u_r_c
        )
    flux[ENERGY] = _ref_hlle_combine(
        s_l, s_r, (E_l + p_l) * un_l, (E_r + p_r) * un_r, E_l, E_r
    )
    flux[GAMMA] = _ref_hlle_combine(s_l, s_r, G_l * un_l, G_r * un_r, G_l, G_r)
    flux[PI] = _ref_hlle_combine(s_l, s_r, P_l * un_l, P_r * un_r, P_l, P_r)
    ones = np.ones_like(un_l)
    ustar = _ref_hlle_combine(s_l, s_r, un_l, un_r, ones, ones)
    return flux, ustar


class TestWeno5BitIdentity:
    def test_matches_raw_expression_form(self):
        v = make_rng().normal(size=(NQ, 7, 20)) * 5.0
        nfaces = v.shape[-1] - 5
        a, b, c, d, e, f = (
            v[..., k : k + nfaces] for k in range(6)
        )
        minus, plus = weno5(v)
        assert np.array_equal(minus, _weno5_minus_raw(a, b, c, d, e))
        assert np.array_equal(plus, _weno5_minus_raw(f, e, d, c, b))

    def test_workspace_and_out_arrays_are_bit_identical(self):
        v = make_rng(7).normal(size=(NQ, 4, 4, 12)) * 3.0
        base_minus, base_plus = weno5(v)
        shape = v.shape[:-1] + (v.shape[-1] - 5,)
        ws = Weno5Workspace(shape)
        om = np.empty(shape)
        op = np.empty(shape)
        minus, plus = weno5(v, workspace=ws, out_minus=om, out_plus=op)
        assert minus is om and plus is op
        assert np.array_equal(minus, base_minus)
        assert np.array_equal(plus, base_plus)

    def test_workspace_reuse_does_not_contaminate(self):
        # A dirty workspace (filled by a previous call on other data)
        # must not change results: every buffer is write-before-read.
        rng = make_rng(11)
        shape = (NQ, 3, 14)
        ws = Weno5Workspace(shape[:-1] + (shape[-1] - 5,))
        v1 = rng.normal(size=shape) * 2.0
        v2 = rng.normal(size=shape) * 40.0
        weno5(v1, workspace=ws)  # dirty the buffers
        minus, plus = weno5(v2, workspace=ws)
        ref_minus, ref_plus = weno5(v2)
        assert np.array_equal(minus, ref_minus)
        assert np.array_equal(plus, ref_plus)

    def test_fused_variant_same_workspace_contract(self):
        v = make_rng(3).normal(size=(NQ, 5, 13))
        shape = v.shape[:-1] + (v.shape[-1] - 5,)
        ws = Weno5Workspace(shape)
        weno5_fused(v + 1.0, workspace=ws)  # dirty the buffers
        minus, plus = weno5_fused(v, workspace=ws)
        ref_minus, ref_plus = weno5_fused(v)
        assert np.array_equal(minus, ref_minus)
        assert np.array_equal(plus, ref_plus)


class TestHlleBitIdentity:
    @pytest.mark.parametrize("normal", [0, 1, 2])
    def test_matches_expression_reference(self, normal):
        W_l, W_r = _face_states(make_rng(normal + 1))
        flux, ustar = hlle_flux(W_l, W_r, normal)
        ref_flux, ref_ustar = _ref_hlle_flux(W_l, W_r, normal)
        assert np.array_equal(flux, ref_flux)
        assert np.array_equal(ustar, ref_ustar)

    def test_scalar_face_states(self):
        # 1-d (NQ,) states exercise the 0-d ``flux[RHO, ...]`` out= views.
        W_l, W_r = _face_states(make_rng(9), shape=())
        flux, ustar = hlle_flux(W_l, W_r, 0)
        ref_flux, ref_ustar = _ref_hlle_flux(W_l, W_r, 0)
        assert flux.shape == (NQ,)
        assert np.array_equal(flux, ref_flux)
        assert float(ustar) == float(ref_ustar)

    def test_supersonic_faces_upwind_bit_identically(self):
        # Fully supersonic faces (s_l > 0) reduce HLLE to the upwind
        # flux; the clipped-bounds path must still match the reference.
        W_l, W_r = _face_states(make_rng(5), shape=(3,))
        for W in (W_l, W_r):
            W[RHOU] += 50.0  # far above the liquid sound speed
        flux, ustar = hlle_flux(W_l, W_r, 0)
        ref_flux, ref_ustar = _ref_hlle_flux(W_l, W_r, 0)
        assert np.array_equal(flux, ref_flux)
        assert np.array_equal(ustar, ref_ustar)


class TestDtypeContracts:
    """float32 in -> float32 out (rules CP001/CP002 at runtime)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_hlle_flux_preserves_dtype(self, dtype):
        W_l, W_r = _face_states(make_rng(2), dtype=dtype)
        flux, ustar = hlle_flux(W_l, W_r, 1)
        assert flux.dtype == dtype
        assert ustar.dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_weno5_preserves_dtype(self, dtype):
        v = (make_rng(4).normal(size=(NQ, 3, 11)) * 2.0).astype(dtype)
        for fn in (weno5, weno5_fused):
            minus, plus = fn(v)
            assert minus.dtype == dtype
            assert plus.dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_eos_chain_preserves_dtype(self, dtype):
        W, _ = _face_states(make_rng(6), shape=(5, 5), dtype=dtype)
        U = primitive_to_conserved(W)
        assert U.dtype == dtype
        assert conserved_to_primitive(U).dtype == dtype
        p = pressure(U[RHO], U[RHOU], U[RHOV], U[RHOW], U[ENERGY],
                     U[GAMMA], U[PI])
        assert p.dtype == dtype
        E = total_energy(W[RHO], W[RHOU], W[RHOV], W[RHOW], W[ENERGY],
                         W[GAMMA], W[PI])
        assert E.dtype == dtype
        c = sound_speed(W[RHO], W[ENERGY], W[GAMMA], W[PI])
        assert c.dtype == dtype
