"""Tests for the inter-rank halo exchange (repro.cluster.halo)."""

import numpy as np
import pytest

from repro.cluster.halo import HaloExchange, extract_face_slab
from repro.cluster.mpi_sim import SimWorld
from repro.cluster.topology import CartTopology
from repro.core.block import GHOSTS
from repro.node.grid import BlockGrid
from repro.physics.state import NQ


def coordinate_field(cells, origin=(0, 0, 0)):
    """AoS field encoding global cell coordinates (for exact checks)."""
    nz, ny, nx = cells
    out = np.zeros((nz, ny, nx, NQ), dtype=np.float32)
    z, y, x = np.meshgrid(
        np.arange(nz) + origin[0],
        np.arange(ny) + origin[1],
        np.arange(nx) + origin[2],
        indexing="ij",
    )
    out[..., 0] = z + 1
    out[..., 1] = y
    out[..., 2] = x
    out[..., 4] = z * 10000 + y * 100 + x
    out[..., 5] = 1.0
    return out


class TestExtractFaceSlab:
    @pytest.mark.parametrize("axis", [0, 1, 2])
    @pytest.mark.parametrize("side", [-1, 1])
    def test_matches_assembled_field(self, axis, side):
        g = BlockGrid((2, 2, 2), 8, h=1.0)
        field = coordinate_field(g.cells)
        g.from_array(field)
        slab = extract_face_slab(g, axis, side)
        sel = [slice(None)] * 3
        sel[axis] = slice(0, GHOSTS) if side == -1 else slice(-GHOSTS, None)
        np.testing.assert_array_equal(slab, field[tuple(sel)])


class TestHaloSplit:
    def test_no_neighbors_all_interior(self):
        world = SimWorld(1)

        def main(comm):
            topo = CartTopology((1, 1, 1))
            g = BlockGrid((2, 2, 2), 8, h=1.0)
            halo = HaloExchange(comm, topo, g)
            interior, halo_blocks = halo.halo_split()
            return len(interior), len(halo_blocks)

        assert world.run(main)[0] == (8, 0)

    def test_two_ranks_split(self):
        world = SimWorld(2)

        def main(comm):
            topo = CartTopology((2, 1, 1))
            g = BlockGrid((2, 2, 2), 8, h=1.0)
            halo = HaloExchange(comm, topo, g)
            interior, halo_blocks = halo.halo_split()
            # Blocks at the shared z-face are halo: 4 of 8.
            return sorted(b.index for b in halo_blocks)

        out = world.run(main)
        assert len(out[0]) == 4
        # rank 0's halo face is z-high (side +1) => bz == 1.
        assert all(idx[0] == 1 for idx in out[0])
        assert all(idx[0] == 0 for idx in out[1])

    def test_fully_periodic_all_halo(self):
        world = SimWorld(1)

        def main(comm):
            topo = CartTopology((1, 1, 1), periodic=(True, True, True))
            g = BlockGrid((2, 2, 2), 8, h=1.0)
            interior, halo_blocks = HaloExchange(comm, topo, g).halo_split()
            return len(interior), len(halo_blocks)

        assert world.run(main)[0] == (0, 8)


class TestExchange:
    def test_two_rank_ghosts_match_global_field(self):
        """After the exchange, the provider must serve exactly the global
        field data across the rank boundary."""
        global_field = coordinate_field((32, 16, 16))
        world = SimWorld(2)

        def main(comm):
            topo = CartTopology((2, 1, 1))
            g = BlockGrid((2, 2, 2), 8, h=1.0)
            z0 = comm.rank * 16
            g.from_array(global_field[z0 : z0 + 16])
            halo = HaloExchange(comm, topo, g)
            provider = halo.exchange()
            # rank 0 asks for its high-z ghosts of block (1, 0, 1):
            if comm.rank == 0:
                slab = provider((1, 0, 1), axis=0, side=1)
                expected = global_field[16 : 16 + GHOSTS, 0:8, 8:16]
                np.testing.assert_array_equal(slab, expected)
                assert provider((0, 0, 0), axis=1, side=-1) is None
            else:
                slab = provider((0, 1, 0), axis=0, side=-1)
                expected = global_field[16 - GHOSTS : 16, 8:16, 0:8]
                np.testing.assert_array_equal(slab, expected)
            return True

        assert world.run(main) == [True, True]

    def test_periodic_self_exchange(self):
        """A single periodic rank exchanges with itself through messages."""
        field = coordinate_field((16, 16, 16))
        world = SimWorld(1)

        def main(comm):
            topo = CartTopology((1, 1, 1), periodic=(True, True, True))
            g = BlockGrid((2, 2, 2), 8, h=1.0)
            g.from_array(field)
            provider = HaloExchange(comm, topo, g).exchange()
            slab = provider((0, 0, 0), axis=2, side=-1)  # low-x wraps
            expected = field[0:8, 0:8, -GHOSTS:]
            np.testing.assert_array_equal(slab, expected)
            return True

        assert world.run(main) == [True]

    def test_message_sizes(self):
        world = SimWorld(2)

        def main(comm):
            topo = CartTopology((2, 1, 1))
            g = BlockGrid((2, 2, 2), 8, h=1.0)
            return HaloExchange(comm, topo, g).message_bytes()

        sizes = world.run(main)[0]
        # Only the shared z-face has a neighbor; slab = 3*16*16 cells.
        assert list(sizes) == [(0, 1)]
        assert sizes[(0, 1)] == GHOSTS * 16 * 16 * NQ * 4
