"""Tests of repro.resilience: chaos engine, detection, recovery.

The chaos-restart tests are the PR's acceptance criterion: a seeded
faulted campaign (rank crash + corrupted newest checkpoint + one dump
I/O failure) must complete through automatic rollback with a final field
*bit-exact* to the fault-free run, every injected fault detected and
recovered, and recovery overhead below the 20% bound.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cluster import (
    CommTimeoutError,
    Simulation,
    SimWorld,
    WorldAbortError,
    WorldError,
    checkpoint_path,
    feasible_rank_counts,
    list_checkpoints,
    prune_checkpoints,
    read_checkpoint_field,
    write_checkpoint,
)
from repro.resilience import (
    MAX_RECOVERY_OVERHEAD,
    CheckpointCorruptError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    HaloCorruptionError,
    HaloFrame,
    ResilienceExhaustedError,
    ResilientSimulation,
    RetryPolicy,
    TransientCommError,
    all_faults_recovered,
    crc32_array,
    find_latest_verified_checkpoint,
    format_resilience_scorecard,
    prune_stale_tmp,
    retry_transient,
    screen_restored_state,
)
from repro.sim import SimulationConfig
from repro.sim.ic import Bubble, cloud_collapse

from .conftest import make_uniform_aos


def collapse_ic():
    return cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)


BASE = dict(cells=16, block_size=8, diag_interval=0)


# -- fault plans ----------------------------------------------------------


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=42, faults=[
            FaultSpec(kind="rank_crash", rank=1, step=3),
            FaultSpec(kind="io_fail", target="checkpoint", probability=0.5),
        ])
        p = tmp_path / "plan.json"
        plan.to_file(str(p))
        back = FaultPlan.from_file(str(p))
        assert back == plan
        assert back.kinds() == {"rank_crash", "io_fail"}

    def test_dicts_coerced_to_specs(self):
        plan = FaultPlan(faults=[{"kind": "straggler", "delay": 0.1}])
        assert isinstance(plan.faults[0], FaultSpec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="power_surge")

    def test_io_fail_target_validated(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind="io_fail", target="halo")

    def test_config_coerces_mapping(self, tmp_path):
        cfg = SimulationConfig(
            **BASE, fault_plan={"seed": 7, "faults": [{"kind": "straggler"}]}
        )
        assert isinstance(cfg.fault_plan, FaultPlan)
        assert cfg.fault_plan.seed == 7


# -- the injector ---------------------------------------------------------


class TestFaultInjector:
    def test_max_hits_bounds_firings(self):
        inj = FaultInjector(FaultPlan(faults=[
            FaultSpec(kind="rank_crash", rank=0, max_hits=1),
        ]))
        with pytest.raises(Exception, match="injected crash"):
            inj.at_step(0, 1)
        inj.at_step(0, 2)  # consumed: does not fire again
        assert inj.counters["injected_rank_crash"] == 1

    def test_step_addressing(self):
        inj = FaultInjector(FaultPlan(faults=[
            FaultSpec(kind="rank_crash", rank=0, step=3),
        ]))
        inj.at_step(0, 1)
        inj.at_step(0, 2)
        with pytest.raises(Exception, match="step 3"):
            inj.at_step(0, 3)

    def test_probability_stream_is_seeded(self):
        def run(seed):
            inj = FaultInjector(FaultPlan(seed=seed, faults=[
                FaultSpec(kind="msg_drop", probability=0.5, max_hits=0),
            ]))
            inj.begin_step(0, 1)
            from repro.resilience import DROPPED

            return [inj.on_send(0, 1, None) is DROPPED for _ in range(32)]

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_empty_plan_is_pure_monitor(self):
        inj = FaultInjector()
        inj.at_step(0, 1)
        inj.count("dumps_skipped")
        assert inj.counters == {"dumps_skipped": 1}

    def test_corrupt_checkpoint_payload_flips_one_bit(self):
        inj = FaultInjector(FaultPlan(faults=[
            FaultSpec(kind="ckpt_bitflip", rank=0, step=1),
        ]))
        payload = bytes(64)
        out = inj.corrupt_checkpoint_payload(0, 1, payload)
        assert out != payload
        diff = [a ^ b for a, b in zip(payload, out) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1


# -- retries --------------------------------------------------------------


class TestRetry:
    def test_recovers_after_transients(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientCommError("flap")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)
        assert retry_transient(flaky, policy) == "ok"
        assert calls["n"] == 3

    def test_exhaustion_reraises(self):
        def always():
            raise TransientCommError("down")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)
        with pytest.raises(TransientCommError):
            retry_transient(always, policy)

    def test_non_transient_propagates_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_transient(boom, RetryPolicy(max_attempts=5, base_delay=0.0))
        assert calls["n"] == 1

    def test_in_halo_path(self, tmp_path):
        """A transient send is retried in place: no world failure."""
        plan = FaultPlan(faults=[
            FaultSpec(kind="comm_transient", rank=0, step=2),
        ])
        inj = FaultInjector(plan)
        cfg = SimulationConfig(**BASE, max_steps=3, ranks=2, fault_plan=plan)
        result = Simulation(cfg, collapse_ic(), injector=inj).run()
        assert len(result.records) == 3
        assert inj.counters["comm_retries"] >= 1
        assert inj.counters["detected_comm_transient"] >= 1
        reference = Simulation(
            SimulationConfig(**BASE, max_steps=3, ranks=2), collapse_ic()
        ).run()
        np.testing.assert_array_equal(result.final_field,
                                      reference.final_field)


# -- detection primitives -------------------------------------------------


class TestDetection:
    def test_halo_frame_verifies(self, rng):
        slab = rng.normal(size=(4, 4, 7)).astype(np.float32)
        frame = HaloFrame(crc=crc32_array(slab), payload=slab)
        np.testing.assert_array_equal(
            frame.verify(source=1, axis=0, side=1), slab
        )
        assert frame.nbytes == slab.nbytes

    def test_halo_frame_catches_bit_flip(self, rng):
        slab = rng.normal(size=(4, 4, 7)).astype(np.float32)
        frame = HaloFrame(crc=crc32_array(slab), payload=slab)
        flipped = slab.view(np.uint8).reshape(-1).copy()
        flipped[13] ^= 1
        bad = HaloFrame(crc=frame.crc,
                        payload=flipped.view(np.float32).reshape(slab.shape))
        with pytest.raises(HaloCorruptionError, match="CRC32"):
            bad.verify(source=1, axis=0, side=1)

    def test_screen_accepts_physical_state(self):
        screen_restored_state(make_uniform_aos((4, 4, 4)))

    def test_screen_localizes_nan(self):
        field = make_uniform_aos((4, 4, 4))
        field[1, 2, 3, 0] = np.nan
        with pytest.raises(CheckpointCorruptError, match=r"\(1, 2, 3\)"):
            screen_restored_state(field)

    def test_screen_rejects_nonpositive_density(self):
        field = make_uniform_aos((4, 4, 4))
        field[0, 0, 0, 0] = -1.0
        with pytest.raises(CheckpointCorruptError, match="density"):
            screen_restored_state(field)


# -- checkpoint durability ------------------------------------------------


def write_one_checkpoint(path, field, t=0.0, step=1, injector=None):
    world = SimWorld(1)

    def main(comm):
        return write_checkpoint(comm, path, field, (0, 0, 0), t=t, step=step,
                                injector=injector)

    return world.run(main)[0]


class TestCheckpointDurability:
    def test_atomic_no_tmp_left_behind(self, tmp_path, rng):
        field = rng.normal(size=(8, 8, 8, 7)).astype(np.float32)
        path = checkpoint_path(str(tmp_path), 1)
        write_one_checkpoint(path, field)
        assert os.path.exists(path)
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))

    def test_rotation_keeps_newest_n(self, tmp_path, rng):
        field = rng.normal(size=(8, 8, 8, 7)).astype(np.float32)
        for step in (1, 2, 3, 4):
            write_one_checkpoint(
                checkpoint_path(str(tmp_path), step), field, step=step
            )
        removed = prune_checkpoints(str(tmp_path), keep=2)
        assert len(removed) == 2
        assert [s for s, _ in list_checkpoints(str(tmp_path))] == [3, 4]

    def test_block_crc_catches_storage_flip(self, tmp_path, rng):
        field = rng.normal(size=(8, 8, 8, 7)).astype(np.float32)
        path = checkpoint_path(str(tmp_path), 1)
        write_one_checkpoint(path, field)
        with open(path, "r+b") as f:
            f.seek(65536 + 100)  # inside the rank-0 block
            b = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([b[0] ^ 0x08]))
        with pytest.raises(CheckpointCorruptError, match="CRC32"):
            read_checkpoint_field(path)

    def test_coverage_gap_raises_not_zero_fills(self, tmp_path, rng):
        """The satellite fix: a missing rank block must raise, never
        silently restart from a zero-filled field."""
        pieces = [rng.normal(size=(8, 8, 8, 7)).astype(np.float32)
                  for _ in range(2)]
        path = checkpoint_path(str(tmp_path), 1)
        world = SimWorld(2)

        def main(comm):
            write_checkpoint(comm, path, pieces[comm.rank],
                             (8 * comm.rank, 0, 0), t=0.0, step=1)

        world.run(main)
        import json as _json

        with open(path, "r+b") as f:
            header = _json.loads(f.read(65536).decode().rstrip())
            # Claim the second block starts further out: leaves a gap.
            header["ranks"][1]["origin_cells"] = [16, 0, 0]
            f.seek(0)
            f.write(_json.dumps(header).encode().ljust(65536))
        with pytest.raises(CheckpointCorruptError, match="gap"):
            read_checkpoint_field(path)

    def test_truncated_block_raises(self, tmp_path, rng):
        field = rng.normal(size=(8, 8, 8, 7)).astype(np.float32)
        path = checkpoint_path(str(tmp_path), 1)
        write_one_checkpoint(path, field)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 64)
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_checkpoint_field(path)

    def test_garbage_header_raises_corrupt_error(self, tmp_path):
        p = tmp_path / "ckpt_000001.rck"
        p.write_bytes(b"\xff" * 70000)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint_field(str(p))

    def test_fallback_to_previous_verified_generation(self, tmp_path, rng):
        field = make_uniform_aos((8, 8, 8), dtype=np.float32)
        for step in (1, 2):
            write_one_checkpoint(
                checkpoint_path(str(tmp_path), step), field, step=step
            )
        # Corrupt the newest generation on disk.
        with open(checkpoint_path(str(tmp_path), 2), "r+b") as f:
            f.seek(65536 + 10)
            f.write(b"\x00\x01\x02\x03")
        inj = FaultInjector()
        found = find_latest_verified_checkpoint(str(tmp_path), injector=inj)
        assert found is not None
        step, path = found
        assert step == 1
        assert inj.counters["detected_ckpt_bitflip"] == 1
        assert inj.counters["checkpoints_rejected"] == 1

    def test_no_verified_generation_returns_none(self, tmp_path):
        (tmp_path / "ckpt_000001.rck").write_bytes(b"junk")
        assert find_latest_verified_checkpoint(
            str(tmp_path), injector=FaultInjector()
        ) is None

    def test_injected_write_failure_degrades(self, tmp_path):
        """A failed checkpoint write is a counted skip on every rank;
        previous generations survive and no temporary is left."""
        plan = FaultPlan(faults=[
            FaultSpec(kind="io_fail", target="checkpoint", rank=0, step=4),
        ])
        inj = FaultInjector(plan)
        cfg = SimulationConfig(
            **BASE, max_steps=6, ranks=2, checkpoint_interval=2,
            checkpoint_dir=str(tmp_path), fault_plan=plan,
        )
        result = Simulation(cfg, collapse_ic(), injector=inj).run()
        assert len(result.records) == 6
        steps = [s for s, _ in list_checkpoints(str(tmp_path))]
        assert steps == [2, 6]  # the step-4 generation failed
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))
        assert inj.counters["checkpoints_failed"] == 1
        assert inj.counters["recovered_io_fail"] >= 1

    def test_prune_stale_tmp(self, tmp_path):
        (tmp_path / "ckpt_000001.rck.tmp").write_bytes(b"partial")
        assert prune_stale_tmp(str(tmp_path)) == 1
        assert prune_stale_tmp(str(tmp_path)) == 0


# -- world failure semantics ---------------------------------------------


class TestWorldAbort:
    def test_crash_aborts_blocked_peers_quickly(self):
        """A failed rank wakes peers blocked in collectives immediately
        (MPI_Abort semantics) instead of leaving them to time out."""
        import time

        world = SimWorld(2, timeout=60.0)

        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()  # would block 60 s without the abort

        t0 = time.monotonic()
        with pytest.raises(WorldError) as exc:
            world.run(main)
        assert time.monotonic() - t0 < 10.0
        assert isinstance(exc.value.failures[1], RuntimeError)
        prim = exc.value.primary_failures
        assert list(prim) == [1]
        assert all(
            isinstance(e, WorldAbortError)
            for r, e in exc.value.failures.items() if r != 1
        )


# -- chaos campaigns (the acceptance tests) -------------------------------


class TestChaosRecovery:
    def test_acceptance_campaign_bit_exact(self, tmp_path):
        """The ISSUE's acceptance campaign: rank crash + corrupted newest
        checkpoint + one dump I/O failure, recovered automatically with a
        bit-exact final field and bounded overhead."""
        ckpt = tmp_path / "ckpt"
        dumps = tmp_path
        ckpt.mkdir()
        plan = FaultPlan(seed=11, faults=[
            FaultSpec(kind="ckpt_bitflip", rank=0, step=4),
            FaultSpec(kind="rank_crash", rank=1, step=5),
            FaultSpec(kind="io_fail", target="dump", rank=0, step=7),
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=40, ranks=2,
            checkpoint_interval=2, checkpoint_dir=str(ckpt),
            checkpoint_keep=4, dump_interval=7, dump_dir=str(dumps),
            fault_plan=plan, comm_timeout=10.0,
        )
        # Warm caches/imports outside the measured campaign so the
        # overhead assertion reflects lost steps, not first-run costs.
        Simulation(
            SimulationConfig(**BASE, max_steps=1, ranks=2), collapse_ic()
        ).run()
        rres = ResilientSimulation(cfg, collapse_ic()).run()
        assert rres.attempts == 2
        ev = rres.events[0]
        assert ev.kind == "rank_crash" and ev.action == "rollback"
        # The step-4 generation was corrupted: rollback fell back to 2.
        assert ev.checkpoint_step == 2
        c = rres.counters
        assert c["detected_ckpt_bitflip"] >= 1
        assert c["dumps_skipped"] == 1
        assert c["rollbacks"] == 1
        assert all_faults_recovered(rres)
        assert rres.recovery_overhead < MAX_RECOVERY_OVERHEAD
        card = format_resilience_scorecard(rres)
        assert "MISSED" not in card and "rank_crash" in card

        reference = Simulation(
            SimulationConfig(**BASE, max_steps=40, ranks=2), collapse_ic()
        ).run()
        np.testing.assert_array_equal(rres.result.final_field,
                                      reference.final_field)

    def test_recovery_on_shrunk_rank_count(self, tmp_path):
        """After a rank loss the relaunch may run on fewer ranks; the
        final field stays bit-exact (decomposition invariance)."""
        plan = FaultPlan(faults=[
            FaultSpec(kind="rank_crash", rank=1, step=3),
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=6, ranks=2,
            checkpoint_interval=2, checkpoint_dir=str(tmp_path),
            fault_plan=plan, recovery_shrink=True, comm_timeout=10.0,
        )
        rres = ResilientSimulation(cfg, collapse_ic()).run()
        assert rres.attempts == 2
        assert rres.events[0].ranks == 1
        reference = Simulation(
            SimulationConfig(**BASE, max_steps=6, ranks=2), collapse_ic()
        ).run()
        np.testing.assert_array_equal(rres.result.final_field,
                                      reference.final_field)

    def test_corrupted_halo_triggers_rollback(self, tmp_path):
        plan = FaultPlan(faults=[
            FaultSpec(kind="msg_corrupt", rank=0, step=3),
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=5, ranks=2,
            checkpoint_interval=2, checkpoint_dir=str(tmp_path),
            fault_plan=plan, comm_timeout=10.0,
        )
        rres = ResilientSimulation(cfg, collapse_ic()).run()
        assert rres.attempts == 2
        assert rres.events[0].kind == "msg_corrupt"
        assert rres.counters["detected_msg_corrupt"] >= 1
        reference = Simulation(
            SimulationConfig(**BASE, max_steps=5, ranks=2), collapse_ic()
        ).run()
        np.testing.assert_array_equal(rres.result.final_field,
                                      reference.final_field)

    def test_dropped_message_times_out_and_rolls_back(self, tmp_path):
        plan = FaultPlan(faults=[
            FaultSpec(kind="msg_drop", rank=0, step=3),
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=4, ranks=2,
            checkpoint_interval=2, checkpoint_dir=str(tmp_path),
            fault_plan=plan, comm_timeout=2.0,
        )
        rres = ResilientSimulation(cfg, collapse_ic()).run()
        assert rres.attempts == 2
        assert rres.events[0].kind == "msg_drop"
        reference = Simulation(
            SimulationConfig(**BASE, max_steps=4, ranks=2), collapse_ic()
        ).run()
        np.testing.assert_array_equal(rres.result.final_field,
                                      reference.final_field)

    def test_exhaustion_raises_with_ledger(self, tmp_path):
        plan = FaultPlan(faults=[
            FaultSpec(kind="rank_crash", rank=0, max_hits=0),  # every step
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=4, ranks=1,
            checkpoint_dir=str(tmp_path), fault_plan=plan,
            max_recoveries=2,
        )
        with pytest.raises(ResilienceExhaustedError) as exc:
            ResilientSimulation(cfg, collapse_ic()).run()
        assert len(exc.value.events) == 2


# -- topology helper ------------------------------------------------------


def test_feasible_rank_counts():
    assert feasible_rank_counts((2, 2, 2), 4) == [1, 2, 4]
    assert feasible_rank_counts((2, 2, 2), 3) == [1, 2]
    assert 3 not in feasible_rank_counts((4, 4, 4), 8)


# -- CLI integration ------------------------------------------------------


def test_cli_fault_plan_campaign(tmp_path, capsys):
    from repro.cli import main as cli_main

    plan = FaultPlan(faults=[FaultSpec(kind="rank_crash", rank=0, step=3)])
    plan_file = tmp_path / "plan.json"
    plan.to_file(str(plan_file))
    out_json = tmp_path / "resilience.json"
    rc = cli_main([
        "run", "--cells", "16", "--steps", "4", "--bubbles", "1",
        "--checkpoint-interval", "2", "--checkpoint-dir", str(tmp_path),
        "--fault-plan", str(plan_file),
        "--resilience-out", str(out_json),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Resilience scorecard" in out
    payload = json.loads(out_json.read_text())
    assert payload["all_faults_recovered"] is True
    assert payload["attempts"] == 2


# -- process-parallel chaos (real SIGKILL, procs backend) -----------------


@pytest.mark.slow
class TestProcsChaos:
    """Chaos coverage for the process-parallel backend: the injected
    ``rank_crash`` is delivered as a *real* ``SIGKILL`` of the rank
    process by the parent supervisor -- a genuine rank loss, not a
    simulated exception -- and the tier-3 rollback-relaunch path must
    still complete bit-exact."""

    def test_sigkill_triggers_rollback_bit_exact(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        plan = FaultPlan(seed=3, faults=[
            FaultSpec(kind="rank_crash", rank=1, step=5),
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=8, ranks=2, cluster_backend="procs",
            checkpoint_interval=2, checkpoint_dir=str(ckpt),
            fault_plan=plan, comm_timeout=20.0,
        )
        rres = ResilientSimulation(cfg, collapse_ic()).run()
        # One real kill, one rollback, campaign complete.
        assert rres.attempts == 2
        ev = rres.events[0]
        assert ev.kind == "rank_crash" and ev.action == "rollback"
        assert ev.checkpoint_step == 4
        c = rres.counters
        assert c["injected_rank_crash"] == 1
        assert c["detected_rank_crash"] == 1
        assert c["rollbacks"] == 1
        assert all_faults_recovered(rres)

        # Bit-exact against the fault-free thread-backend reference:
        # one assertion covering both the recovery path and the
        # cross-backend contract.
        reference = Simulation(
            SimulationConfig(**BASE, max_steps=8, ranks=2), collapse_ic()
        ).run()
        np.testing.assert_array_equal(rres.result.final_field,
                                      reference.final_field)

    def test_sigkill_consumed_hit_does_not_refire(self, tmp_path):
        """The parent-side killer consumes the plan hit: after the
        relaunch the same step passes unharmed (max_hits semantics
        across real process loss)."""
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        plan = FaultPlan(seed=5, faults=[
            FaultSpec(kind="rank_crash", rank=0, step=3, max_hits=1),
        ])
        cfg = SimulationConfig(
            **BASE, max_steps=6, ranks=2, cluster_backend="procs",
            checkpoint_interval=2, checkpoint_dir=str(ckpt),
            fault_plan=plan, comm_timeout=20.0,
        )
        rres = ResilientSimulation(cfg, collapse_ic()).run()
        assert rres.attempts == 2
        assert rres.counters["injected_rank_crash"] == 1
        # The relaunch resumed from the step-2 checkpoint and ran to
        # completion -- step 3 passed on the second attempt.
        assert rres.result.records[-1].step == 6
        assert rres.result.records[0].step == 3
