"""Tests for the per-thread stream encoder (repro.compression.encoder)."""

import numpy as np
import pytest

from repro.compression.encoder import StreamEncoder


class TestRoundtrip:
    @pytest.mark.parametrize("num_streams", [1, 2, 4, 7])
    def test_blocks_restored_in_order(self, rng, num_streams):
        enc = StreamEncoder()
        blocks = [rng.normal(size=(8, 8, 8)).astype(np.float32) for _ in range(10)]
        payload, stats = enc.encode(blocks, num_streams)
        out = enc.decode(payload, (8, 8, 8))
        assert len(out) == 10
        for a, b in zip(out, blocks):
            np.testing.assert_array_equal(a, b)
        assert sum(s.num_blocks for s in stats) == 10

    def test_float64(self, rng):
        enc = StreamEncoder()
        blocks = [rng.normal(size=(4, 4)).astype(np.float64) for _ in range(3)]
        payload, _ = enc.encode(blocks, 2)
        out = enc.decode(payload, (4, 4))
        np.testing.assert_array_equal(out[2], blocks[2])
        assert out[0].dtype == np.float64

    def test_more_streams_than_blocks(self, rng):
        enc = StreamEncoder()
        blocks = [rng.normal(size=(4,)).astype(np.float32) for _ in range(2)]
        payload, stats = enc.encode(blocks, 16)
        assert len(stats) == 2  # clamped to block count
        out = enc.decode(payload, (4,))
        assert len(out) == 2


class TestCompression:
    def test_zeros_compress_massively(self):
        enc = StreamEncoder()
        blocks = [np.zeros((16, 16, 16), np.float32) for _ in range(4)]
        payload, stats = enc.encode(blocks, 2)
        assert len(payload) < sum(b.nbytes for b in blocks) / 50
        assert all(s.rate > 50 for s in stats)

    def test_random_data_incompressible(self, rng):
        enc = StreamEncoder()
        blocks = [rng.normal(size=(16, 16, 16)).astype(np.float32)]
        payload, stats = enc.encode(blocks, 1)
        assert stats[0].rate < 1.2

    def test_stats_timings_recorded(self, rng):
        enc = StreamEncoder()
        blocks = [rng.normal(size=(16, 16, 16)).astype(np.float32)
                  for _ in range(4)]
        _, stats = enc.encode(blocks, 2)
        assert all(s.seconds >= 0 for s in stats)
        assert sum(s.raw_bytes for s in stats) == 4 * 16**3 * 4


class TestErrors:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StreamEncoder().encode([], 2)

    def test_mixed_shapes_raise(self, rng):
        blocks = [np.zeros((4, 4), np.float32), np.zeros((5, 5), np.float32)]
        with pytest.raises(ValueError):
            StreamEncoder().encode(blocks, 1)

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            StreamEncoder().encode([np.zeros((4,), np.int32)], 1)

    def test_decode_bad_magic(self):
        with pytest.raises(ValueError):
            StreamEncoder().decode(b"XXXX" + b"\0" * 32, (4,))

    def test_decode_wrong_shape(self, rng):
        enc = StreamEncoder()
        payload, _ = enc.encode([np.zeros((4, 4), np.float32)], 1)
        with pytest.raises(ValueError):
            enc.decode(payload, (5, 5))
