"""Tests for the full compression pipeline (repro.compression.scheme)."""

import numpy as np
import pytest

from repro.compression.scheme import CompressedField, WaveletCompressor


def smooth_field(n=32):
    t = np.linspace(0, 3, n)
    return (
        np.sin(t)[:, None, None]
        * np.cos(t)[None, :, None]
        * np.exp(-t)[None, None, :]
    ).astype(np.float32)


class TestRoundtrip:
    def test_error_bounded(self):
        comp = WaveletCompressor(eps=1e-2)
        cf = comp.compress(smooth_field())
        out = comp.decompress(cf)
        # float32 transform round-off adds a tiny epsilon on top of eps.
        assert np.abs(out - smooth_field()).max() <= 1e-2 + 1e-4

    def test_lossless_when_eps_zero(self, rng):
        f = rng.normal(size=(16, 16, 16)).astype(np.float32)
        comp = WaveletCompressor(eps=0.0)
        out = comp.decompress(comp.compress(f))
        assert np.abs(out - f).max() < 1e-4  # float32 transform round-off

    def test_shape_preserved(self):
        comp = WaveletCompressor(eps=1e-3, block_size=8)
        f = smooth_field(24)
        out = comp.decompress(comp.compress(f))
        assert out.shape == f.shape

    def test_anisotropic_field(self, rng):
        f = rng.normal(size=(16, 32, 8)).astype(np.float32)
        comp = WaveletCompressor(eps=1e-1, block_size=8)
        out = comp.decompress(comp.compress(f))
        assert out.shape == f.shape


class TestRates:
    def test_smooth_compresses_well(self):
        cf = WaveletCompressor(eps=1e-2).compress(smooth_field(64))
        assert cf.stats.rate > 10.0

    def test_piecewise_constant_compresses_extremely(self):
        """Gamma-like fields (two material values) reach the paper's
        100-150:1 rates."""
        f = np.full((64, 64, 64), 0.179, dtype=np.float32)
        f[20:40, 20:40, 20:40] = 2.5
        cf = WaveletCompressor(eps=1e-3, guaranteed=False).compress(f)
        assert cf.stats.rate > 100.0

    def test_pressure_vs_gamma_ordering(self, rng):
        """p (broadband) compresses worse than Gamma (two-valued) -- the
        ordering the paper reports (10-20:1 vs 100-150:1)."""
        n = 32
        t = np.linspace(0, 6, n)
        p = (100 + 20 * np.sin(t)[:, None, None] * np.cos(2 * t)[None, :, None]
             * np.sin(3 * t)[None, None, :]
             + rng.normal(scale=0.5, size=(n, n, n))).astype(np.float32)
        gamma = np.where(rng.random((n, n, n)) > 0.9, 2.5, 0.179).astype(np.float32)
        gamma[:16] = 0.179  # half the domain pure liquid
        comp_p = WaveletCompressor(eps=1e-2, guaranteed=False)
        comp_g = WaveletCompressor(eps=1e-3, guaranteed=False)
        assert comp_g.compress(gamma).stats.rate > comp_p.compress(p).stats.rate

    def test_eps_monotonicity(self):
        f = smooth_field(32)
        r_small = WaveletCompressor(eps=1e-4).compress(f).stats.rate
        r_large = WaveletCompressor(eps=1e-1).compress(f).stats.rate
        assert r_large >= r_small


class TestStats:
    def test_imbalance_keys(self):
        cf = WaveletCompressor(eps=1e-3, num_threads=4).compress(smooth_field())
        imb = cf.stats.imbalance(4)
        assert set(imb) == {"DEC", "ENC"}
        assert imb["DEC"] >= 0 and imb["ENC"] >= 0

    def test_dec_times_per_block(self):
        comp = WaveletCompressor(eps=1e-3, block_size=8)
        cf = comp.compress(smooth_field(32))
        assert cf.stats.dec_seconds.size == 4**3

    def test_metadata_roundtrip(self):
        cf = WaveletCompressor(eps=1e-3).compress(smooth_field())
        meta = cf.metadata()
        cf2 = CompressedField.from_metadata(cf.payload, meta)
        out = WaveletCompressor().decompress(cf2)
        assert out.shape == cf.field_shape


class TestConfig:
    def test_auto_block_size(self):
        comp = WaveletCompressor()
        cf = comp.compress(np.zeros((64, 64, 64), np.float32))
        assert cf.block_size == 32

    def test_auto_block_size_small_field(self):
        cf = WaveletCompressor().compress(np.zeros((8, 8, 8), np.float32))
        assert cf.block_size == 8

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            WaveletCompressor(block_size=32).compress(
                np.zeros((48, 48, 48), np.float32)
            )

    def test_non_3d_raises(self):
        with pytest.raises(ValueError):
            WaveletCompressor().compress(np.zeros((8, 8), np.float32))

    def test_no_divisor_raises(self):
        with pytest.raises(ValueError):
            WaveletCompressor().compress(np.zeros((10, 10, 10), np.float32))


class TestZerotreeEncoderOption:
    def test_roundtrip_error_bounded(self):
        comp = WaveletCompressor(eps=1e-2, block_size=16,
                                 encoder_kind="zerotree")
        f = smooth_field()
        out = comp.decompress(comp.compress(f))
        assert np.abs(out.astype(np.float64) - f).max() <= 1e-2 + 1e-4

    def test_beats_zlib_on_smooth_data(self):
        f = smooth_field(64)
        r_zlib = WaveletCompressor(eps=1e-3, block_size=16,
                                   guaranteed=False).compress(f).stats.rate
        r_zt = WaveletCompressor(eps=1e-3, block_size=16, guaranteed=False,
                                 encoder_kind="zerotree").compress(f).stats.rate
        assert r_zt > r_zlib

    def test_raw_mode_roundtrip(self):
        comp = WaveletCompressor(eps=1e-2, block_size=8, guaranteed=False,
                                 encoder_kind="zerotree")
        f = smooth_field(16)
        out = comp.decompress(comp.compress(f))
        # Raw mode: error bounded by eps times the exact amplification.
        from repro.compression.decimation import exact_amplification

        bound = 1e-2 * exact_amplification((8, 8, 8), 1)
        assert np.abs(out.astype(np.float64) - f).max() <= bound

    def test_unknown_encoder_rejected(self):
        with pytest.raises(ValueError, match="unknown encoder"):
            WaveletCompressor(encoder_kind="spiht")

    def test_enc_stats_per_block(self):
        comp = WaveletCompressor(eps=1e-3, block_size=16,
                                 encoder_kind="zerotree")
        cf = comp.compress(smooth_field(32))
        assert len(cf.stats.enc_stats) == 8  # one stream per block
        assert all(s.num_blocks == 1 for s in cf.stats.enc_stats)
