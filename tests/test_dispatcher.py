"""Tests for the dynamic work dispatcher (repro.node.dispatcher)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.node.dispatcher import (
    Dispatcher,
    ScheduleStats,
    simulate_dynamic_schedule,
)

from .conftest import make_rng


class TestSimulatedSchedule:
    def test_uniform_items_balance(self):
        stats = simulate_dynamic_schedule(np.ones(8), num_workers=4)
        np.testing.assert_allclose(stats.busy, 2.0)
        assert stats.imbalance == 0.0
        assert stats.makespan == pytest.approx(2.0)

    def test_single_heavy_item_dominates(self):
        stats = simulate_dynamic_schedule([10.0, 1.0, 1.0, 1.0], 2)
        assert stats.makespan == pytest.approx(10.0)
        assert stats.imbalance > 1.0

    def test_dynamic_beats_static_for_skew(self):
        """Greedy dynamic scheduling keeps the makespan near the lower
        bound even with skewed costs."""
        durations = [5.0] + [1.0] * 10
        stats = simulate_dynamic_schedule(durations, 3)
        assert stats.makespan == pytest.approx(5.0, abs=1e-12)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulate_dynamic_schedule([1.0], 0)

    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 40),
        workers=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, seed, n, workers):
        durations = make_rng(seed).uniform(0.1, 2.0, size=n)
        stats = simulate_dynamic_schedule(durations, workers)
        # Work conservation.
        assert stats.busy.sum() == pytest.approx(durations.sum())
        # Makespan bounds.
        lower = max(durations.max(), durations.sum() / workers)
        assert stats.makespan >= lower - 1e-9
        assert stats.makespan <= durations.sum() + 1e-9
        # Greedy list scheduling is 2-competitive.
        assert stats.makespan <= 2.0 * lower + 1e-9


class TestStats:
    def test_imbalance_definition(self):
        stats = ScheduleStats(
            busy=np.array([1.0, 2.0, 3.0]), makespan=3.0,
            item_durations=np.array([]),
        )
        assert stats.imbalance == pytest.approx((3.0 - 1.0) / 2.0)

    def test_efficiency(self):
        stats = ScheduleStats(
            busy=np.array([2.0, 2.0]), makespan=2.0,
            item_durations=np.array([]),
        )
        assert stats.efficiency == pytest.approx(1.0)

    def test_zero_work(self):
        stats = ScheduleStats(
            busy=np.zeros(2), makespan=0.0, item_durations=np.array([])
        )
        assert stats.imbalance == 0.0


class TestDispatcher:
    def test_results_in_item_order(self):
        d = Dispatcher(num_workers=3)
        results, _ = d.run(range(10), lambda x: x * x)
        assert results == [x * x for x in range(10)]

    def test_instrumented_stats(self):
        d = Dispatcher(num_workers=2)
        _, stats = d.run(range(6), lambda x: sum(range(1000)))
        assert stats.busy.size == 2
        assert stats.item_durations.size == 6
        assert (stats.item_durations > 0).all()

    def test_threads_mode(self):
        d = Dispatcher(num_workers=4, mode="threads")
        results, stats = d.run(range(20), lambda x: x + 1)
        assert results == list(range(1, 21))
        assert stats.busy.size == 4

    def test_threads_mode_actually_distributes(self):
        import numpy as _np

        d = Dispatcher(num_workers=4, mode="threads")

        def work(_):
            return float(_np.linalg.norm(_np.ones((200, 200)) @ _np.ones((200, 200))))

        _, stats = d.run(range(16), work)
        # More than one worker must have received work.
        assert (stats.busy > 0).sum() >= 2

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Dispatcher(mode="processes")

    def test_empty_items(self):
        d = Dispatcher(num_workers=2)
        results, stats = d.run([], lambda x: x)
        assert results == []
        assert stats.busy.sum() == 0.0
