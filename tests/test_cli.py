"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main

from .conftest import make_rng


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.cells == 32 and args.ranks == 1

    def test_compress_args(self):
        args = build_parser().parse_args(["compress", "f.npy", "--eps", "1e-2"])
        assert args.field == "f.npy"
        assert args.eps == pytest.approx(1e-2)

    def test_telemetry_defaults_off(self):
        args = build_parser().parse_args(["run"])
        assert args.telemetry == "off" and args.trace_out is None


class TestCommands:
    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "Gcells/s" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--cells", "16", "--bubbles", "2", "--steps", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max p" in out and "timers" in out
        assert "Mcells/s" in out  # wall-clock summary, telemetry off
        assert "scorecard" not in out

    def test_run_telemetry_prints_scorecard(self, capsys):
        rc = main(["run", "--cells", "16", "--bubbles", "2", "--steps", "2",
                   "--telemetry", "metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Run scorecard" in out
        assert "GFLOP/s" in out and "I/O fraction" in out

    def test_run_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        # --trace-out alone implies --telemetry trace
        rc = main(["run", "--cells", "16", "--bubbles", "2", "--steps", "2",
                   "--trace-out", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Run scorecard" in out and "perfetto" in out
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"RHS", "DT", "UP"} <= names

    def test_run_with_erosion(self, capsys):
        rc = main([
            "run", "--cells", "16", "--bubbles", "2", "--steps", "3",
            "--erosion-threshold", "50",
        ])
        assert rc == 0
        assert "wall damage" in capsys.readouterr().out

    def test_compress_roundtrip(self, tmp_path, capsys):
        field = make_rng(0).normal(size=(16, 16, 16)).astype(
            np.float32
        )
        path = tmp_path / "field.npy"
        np.save(path, field)
        rc = main(["compress", str(path), "--eps", "1e-2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert ":1" in out and "L-inf error" in out
        assert (tmp_path / "field.rwz.npy").exists()

    def test_compress_rejects_non_3d(self, tmp_path, capsys):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((4, 4)))
        assert main(["compress", str(path)]) == 2


class TestServiceCLI:
    """submit / serve subcommands and the exit-code taxonomy."""

    @staticmethod
    def _key(out: str) -> str:
        line = [ln for ln in out.splitlines() if ln.startswith("key: ")][-1]
        return line.split("key: ", 1)[1]

    def test_submit_prints_job_line_and_key(self, capsys):
        assert main(["submit", "--cells", "16", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out.splitlines()[0])
        assert doc["request"]["semantic"]["schema"] == "repro.job/v1"
        key = self._key(out)
        assert len(key) == 64 and int(key, 16) >= 0

    def test_submit_key_is_content_addressed(self, capsys):
        # Same semantics -> same key; different physics -> different key;
        # a runtime-only change (ranks) must NOT change the key.
        main(["submit"])
        base = self._key(capsys.readouterr().out)
        main(["submit"])
        assert self._key(capsys.readouterr().out) == base
        main(["submit", "--pressure", "500"])
        assert self._key(capsys.readouterr().out) != base
        main(["submit", "--ranks", "2", "--cluster-backend", "procs"])
        assert self._key(capsys.readouterr().out) == base

    def test_submit_appends_jsonl(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        main(["submit", "--out", str(jobs)])
        main(["submit", "--pressure", "500", "--out", str(jobs)])
        lines = jobs.read_text().splitlines()
        assert len(lines) == 2
        assert all("request" in json.loads(ln) for ln in lines)

    def test_invalid_config_exits_64(self, capsys):
        # 17^3 cells cannot be tiled by any supported block size.
        rc = main(["submit", "--cells", "17"])
        assert rc == 64
        assert "error[invalid]" in capsys.readouterr().err

    def test_missing_jobs_file_exits_failure(self, capsys):
        rc = main(["serve", "definitely-not-here.jsonl"])
        assert rc == 1
        assert "error[failure]" in capsys.readouterr().err

    @pytest.mark.tier2
    def test_submit_serve_round_trip(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        health = tmp_path / "health.json"
        common = ["--cells", "16", "--steps", "2", "--out", str(jobs)]
        main(["submit", *common])
        main(["submit", *common])  # duplicate: must dedup, not recompute
        main(["submit", "--pressure", "500", *common])
        capsys.readouterr()
        serve = ["serve", str(jobs), "--workers", "1",
                 "--workdir", str(tmp_path / "work"),
                 "--health-out", str(health)]
        assert main(serve) == 0
        out = capsys.readouterr().out
        assert "service scorecard" in out
        snap = json.loads(health.read_text())
        assert snap["counters"]["computed"] == 2
        assert snap["counters"]["dedup_joined"] == 1
        # Re-serving the same batch is served from the persistent cache.
        assert main(serve) == 0
        snap = json.loads(health.read_text())
        assert snap["counters"]["computed"] == 0
        assert snap["counters"]["cache_hits"] == 3
