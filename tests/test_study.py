"""Tests for the parameter-study harness (repro.sim.study)."""

import numpy as np
import pytest

from repro.sim.cloud import Bubble
from repro.sim.config import SimulationConfig
from repro.sim.ic import cloud_collapse
from repro.sim.study import SweepPoint, SweepResult, run_sweep


def tiny_config(**kw):
    defaults = dict(cells=16, block_size=8, max_steps=4, wall=(0, -1),
                    diag_interval=1)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestRunSweep:
    def test_two_point_sweep(self):
        configs = [
            (
                f"r={r}",
                {"radius": r},
                tiny_config(),
                cloud_collapse([Bubble((0.5, 0.5, 0.5), r)], p_liquid=1000.0),
            )
            for r in (0.15, 0.25)
        ]
        result = run_sweep(configs)
        assert len(result.points) == 2
        p_small, p_big = result.points
        assert p_small.label == "r=0.15"
        assert p_big.parameters["radius"] == 0.25
        assert p_big.steps == 4
        # More vapor => more collapse-driven kinetic energy, even early.
        assert p_big.ke_peak > p_small.ke_peak

    def test_summary_fields_finite(self):
        configs = [
            (
                "x", {},
                tiny_config(),
                cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0),
            )
        ]
        point = run_sweep(configs).points[0]
        assert np.isfinite(point.peak_flow_pressure)
        assert np.isfinite(point.peak_wall_pressure)
        assert 0.0 <= point.vapor_collapse_fraction <= 1.0
        assert point.amplification(1000.0) == pytest.approx(
            point.peak_wall_pressure / 1000.0
        )


class TestCsv:
    def test_roundtrip_columns(self):
        result = SweepResult(points=[
            SweepPoint("a", {"beta": 1.5}, 10.0, 5.0, 1.0, 0.1, 0.3, 7),
            SweepPoint("b", {"beta": 3.0}, 20.0, 9.0, 2.0, 0.2, 0.5, 9),
        ])
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("label,param_beta,")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "a"

    def test_empty(self):
        assert SweepResult().to_csv() == ""

    def test_heterogeneous_parameters(self):
        result = SweepResult(points=[
            SweepPoint("a", {"x": 1}, 1, 1, 1, 1, 0, 1),
            SweepPoint("b", {"y": 2}, 1, 1, 1, 1, 0, 1),
        ])
        lines = result.to_csv().strip().splitlines()
        assert "param_x" in lines[0] and "param_y" in lines[0]
