"""Property tests of the halo exchange over random fields and layouts.

The second half targets the process-parallel transport
(:mod:`repro.cluster.procs`): random block shapes/dtypes must
round-trip through the shared-memory CRC frames bit-exact, and *any*
single corrupted byte must be detected -- either a
:class:`~repro.cluster.procs.RingCorruptionError` at the transport
layer or an app-level :class:`HaloCorruptionError` at frame
verification -- never a silently delivered wrong payload.  The frame
and ring layers are exercised in-process (no spawning): the byte
format is identical either way.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.halo import HaloExchange
from repro.cluster.mpi_sim import SimWorld
from repro.cluster.procs import (
    KIND_ARRAY,
    KIND_HALO,
    KIND_PICKLE,
    Ring,
    RingCorruptionError,
    encode_frame,
    parse_frames,
)
from repro.cluster.topology import CartTopology, balanced_dims
from repro.core.block import GHOSTS
from repro.node.grid import BlockGrid
from repro.physics.state import NQ
from repro.resilience.detect import HaloCorruptionError, HaloFrame, crc32_array

from .conftest import make_rng


@given(
    seed=st.integers(0, 2**31),
    ranks=st.sampled_from([2, 4, 8]),
    periodic=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_ghosts_match_global_field(seed, ranks, periodic):
    """For every rank-boundary block face, the provider must serve exactly
    the corresponding slab of the global field (wrapping if periodic)."""
    n = 8  # block size
    gb = (2, 2, 2)  # global blocks
    cells = tuple(g * n for g in gb)
    rng = make_rng(seed)
    global_field = rng.normal(size=cells + (NQ,)).astype(np.float32)
    dims = balanced_dims(ranks)
    per = (periodic,) * 3

    world = SimWorld(ranks)

    def main(comm):
        topo = CartTopology(dims, per)
        starts, counts = topo.subdomain_blocks(comm.rank, gb)
        origin = tuple(s * n for s in starts)
        grid = BlockGrid(counts, n, h=1.0)
        nz, ny, nx = grid.cells
        grid.from_array(
            global_field[
                origin[0] : origin[0] + nz,
                origin[1] : origin[1] + ny,
                origin[2] : origin[2] + nx,
            ]
        )
        halo = HaloExchange(comm, topo, grid)
        provider = halo.exchange()

        # Check every rank-boundary face of every boundary block.
        B = grid.num_blocks
        for block in grid.blocks.values():
            for axis in range(3):
                for side in (-1, 1):
                    edge = 0 if side == -1 else B[axis] - 1
                    if block.index[axis] != edge:
                        continue
                    if topo.neighbor(comm.rank, axis, side) is None:
                        assert provider(block.index, axis, side) is None
                        continue
                    slab = provider(block.index, axis, side)
                    # Expected: the global-field slab adjacent to this
                    # block face, wrapped modulo the domain.
                    lo = [
                        origin[d] + block.index[d] * n for d in range(3)
                    ]
                    idx = []
                    for d in range(3):
                        if d == axis:
                            if side == -1:
                                rng_d = np.arange(lo[d] - GHOSTS, lo[d])
                            else:
                                rng_d = np.arange(lo[d] + n, lo[d] + n + GHOSTS)
                            idx.append(rng_d % cells[d])
                        else:
                            idx.append(np.arange(lo[d], lo[d] + n))
                    expected = global_field[np.ix_(*idx)]
                    np.testing.assert_array_equal(slab, expected)
        return True

    assert all(world.run(main))


@given(seed=st.integers(0, 2**31))
@settings(max_examples=5, deadline=None)
def test_exchange_idempotent(seed):
    """Repeating the exchange (no state change) returns identical slabs."""
    rng = make_rng(seed)
    world = SimWorld(2)
    field = rng.normal(size=(16, 8, 8, NQ)).astype(np.float32)

    def main(comm):
        topo = CartTopology((2, 1, 1))
        grid = BlockGrid((1, 1, 1), 8, h=1.0)
        grid.from_array(field[comm.rank * 8 : (comm.rank + 1) * 8])
        halo = HaloExchange(comm, topo, grid)
        p1 = halo.exchange()
        p2 = halo.exchange()
        axis_side = (0, 1) if comm.rank == 0 else (0, -1)
        a = p1((0, 0, 0), *axis_side)
        b = p2((0, 0, 0), *axis_side)
        np.testing.assert_array_equal(a, b)
        return True

    assert all(world.run(main))


# -- shared-memory frame layer (procs backend) ---------------------------


class _FakeSegment:
    """Segment stand-in exposing the same ``buf`` memoryview API."""

    def __init__(self, nbytes):
        self.buf = memoryview(bytearray(nbytes))


def _make_ring(capacity):
    return Ring(_FakeSegment(16 + capacity), threading.Lock(), capacity)


_DTYPES = st.sampled_from(["<f4", "<f8", "<i4", "<i8", "|u1"])
_SHAPES = st.lists(st.integers(1, 9), min_size=1, max_size=4)


@given(seed=st.integers(0, 2**31), dtype=_DTYPES, shape=_SHAPES)
@settings(max_examples=40, deadline=None)
def test_frame_roundtrip_random_blocks(seed, dtype, shape):
    """Random shapes/dtypes survive the wire frame bit-exact, and a
    HaloFrame keeps its resilience-layer CRC valid end to end."""
    rng = make_rng(seed)
    arr = (rng.normal(size=shape) * 100).astype(np.dtype(dtype))

    wire = encode_frame(3, 17, KIND_ARRAY, arr)
    frames = parse_frames(bytearray(wire))
    assert len(frames) == 1
    f = frames[0]
    assert (f.source, f.tag, f.kind) == (3, 17, KIND_ARRAY)
    assert f.payload.dtype == arr.dtype and f.payload.shape == arr.shape
    np.testing.assert_array_equal(f.payload, arr)

    halo = HaloFrame(crc=crc32_array(arr), payload=arr)
    frames = parse_frames(bytearray(encode_frame(1, 5, KIND_HALO, halo)))
    assert frames[0].kind == KIND_HALO
    frames[0].payload.verify(source=1, axis=0, side=1)  # must not raise
    np.testing.assert_array_equal(frames[0].payload.payload, arr)


@given(seed=st.integers(0, 2**31), offset_frac=st.floats(0.0, 1.0))
@settings(max_examples=60, deadline=None)
def test_corrupt_byte_never_delivers(seed, offset_frac):
    """Flipping ANY single byte of a framed message must never yield a
    silently delivered frame: the parser raises (CRC/framing) or holds
    the bytes back as incomplete (watchdog territory), and a length
    corruption can only defer -- not forge -- a valid record."""
    rng = make_rng(seed)
    arr = rng.normal(size=(4, 5)).astype(np.float64)
    wire = bytearray(encode_frame(2, 9, KIND_ARRAY, arr))
    pos = min(len(wire) - 1, int(offset_frac * len(wire)))
    wire[pos] ^= 1 << int(rng.integers(8))
    try:
        frames = parse_frames(wire)
    except RingCorruptionError:
        return  # detected at the transport layer: correct
    # The only non-raising outcome: a corrupted length field made the
    # frame look longer than the stream -- nothing may be delivered.
    assert frames == []


def test_corrupt_payload_byte_raises():
    """Deterministic spot check: a payload flip always raises."""
    arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
    wire = bytearray(encode_frame(0, 1, KIND_ARRAY, arr))
    wire[-5] ^= 0x10
    with pytest.raises(RingCorruptionError, match="CRC32"):
        parse_frames(wire)


def test_halo_frame_app_crc_survives_transport():
    """A payload corrupted *before* framing (the msg_corrupt injection
    site) passes the wire CRC but fails HaloFrame verification -- the
    resilience-layer detection semantics are preserved across the
    shared-memory transport."""
    arr = np.arange(30, dtype=np.float64).reshape(5, 6)
    halo = HaloFrame(crc=crc32_array(arr), payload=arr)
    corrupted = arr.copy()
    corrupted[2, 3] += 1.0  # injected in transit, CRC stamped before
    tampered = HaloFrame(crc=halo.crc, payload=corrupted)
    frames = parse_frames(bytearray(encode_frame(0, 3, KIND_HALO, tampered)))
    with pytest.raises(HaloCorruptionError):
        frames[0].payload.verify(source=0, axis=1, side=-1)


@given(
    seed=st.integers(0, 2**31),
    sizes=st.lists(st.integers(1, 30000), min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_ring_stream_roundtrip_with_wraparound(seed, sizes):
    """Random frame bursts through a small ring: byte-stream reassembly
    across wraparound and partial drains is lossless and ordered."""
    capacity = 1 << 16
    ring = _make_ring(capacity)
    rng = make_rng(seed)
    sent = []
    stream = bytearray()
    received = []
    deadline = 10.0
    for i, size in enumerate(sizes):
        payload = rng.integers(0, 255, size=size, dtype=np.uint8)
        sent.append(payload)
        wire = encode_frame(0, i, KIND_ARRAY, payload)
        # Frames can exceed the ring: drain concurrently like a reader
        # process would.  A thread stands in for the peer rank.
        reader_done = threading.Event()

        def pump():
            while not reader_done.is_set():
                chunk = ring.drain()
                if chunk:
                    stream.extend(chunk)
                    received.extend(parse_frames(stream))

        t = threading.Thread(target=pump)
        t.start()
        try:
            ring.write(wire, deadline=time.monotonic() + deadline)
        finally:
            reader_done.set()
            t.join()
        chunk = ring.drain()
        if chunk:
            stream.extend(chunk)
            received.extend(parse_frames(stream))
    assert len(received) == len(sent)
    for i, (frame, payload) in enumerate(zip(received, sent)):
        assert frame.tag == i
        np.testing.assert_array_equal(frame.payload, payload)


def test_ring_write_times_out_when_full():
    """A writer with no reader must fail with the comm timeout, not
    hang (the deadlock watchdog upgrades this in the communicator)."""
    from repro.cluster.mpi_sim import CommTimeoutError

    ring = _make_ring(1 << 16)
    big = encode_frame(0, 0, KIND_PICKLE, b"x" * (1 << 17))
    with pytest.raises(CommTimeoutError):
        ring.write(big, deadline=time.monotonic() + 0.2)
