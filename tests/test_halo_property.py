"""Property tests of the halo exchange over random fields and layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.halo import HaloExchange
from repro.cluster.mpi_sim import SimWorld
from repro.cluster.topology import CartTopology, balanced_dims
from repro.core.block import GHOSTS
from repro.node.grid import BlockGrid
from repro.physics.state import NQ

from .conftest import make_rng


@given(
    seed=st.integers(0, 2**31),
    ranks=st.sampled_from([2, 4, 8]),
    periodic=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_ghosts_match_global_field(seed, ranks, periodic):
    """For every rank-boundary block face, the provider must serve exactly
    the corresponding slab of the global field (wrapping if periodic)."""
    n = 8  # block size
    gb = (2, 2, 2)  # global blocks
    cells = tuple(g * n for g in gb)
    rng = make_rng(seed)
    global_field = rng.normal(size=cells + (NQ,)).astype(np.float32)
    dims = balanced_dims(ranks)
    per = (periodic,) * 3

    world = SimWorld(ranks)

    def main(comm):
        topo = CartTopology(dims, per)
        starts, counts = topo.subdomain_blocks(comm.rank, gb)
        origin = tuple(s * n for s in starts)
        grid = BlockGrid(counts, n, h=1.0)
        nz, ny, nx = grid.cells
        grid.from_array(
            global_field[
                origin[0] : origin[0] + nz,
                origin[1] : origin[1] + ny,
                origin[2] : origin[2] + nx,
            ]
        )
        halo = HaloExchange(comm, topo, grid)
        provider = halo.exchange()

        # Check every rank-boundary face of every boundary block.
        B = grid.num_blocks
        for block in grid.blocks.values():
            for axis in range(3):
                for side in (-1, 1):
                    edge = 0 if side == -1 else B[axis] - 1
                    if block.index[axis] != edge:
                        continue
                    if topo.neighbor(comm.rank, axis, side) is None:
                        assert provider(block.index, axis, side) is None
                        continue
                    slab = provider(block.index, axis, side)
                    # Expected: the global-field slab adjacent to this
                    # block face, wrapped modulo the domain.
                    lo = [
                        origin[d] + block.index[d] * n for d in range(3)
                    ]
                    idx = []
                    for d in range(3):
                        if d == axis:
                            if side == -1:
                                rng_d = np.arange(lo[d] - GHOSTS, lo[d])
                            else:
                                rng_d = np.arange(lo[d] + n, lo[d] + n + GHOSTS)
                            idx.append(rng_d % cells[d])
                        else:
                            idx.append(np.arange(lo[d], lo[d] + n))
                    expected = global_field[np.ix_(*idx)]
                    np.testing.assert_array_equal(slab, expected)
        return True

    assert all(world.run(main))


@given(seed=st.integers(0, 2**31))
@settings(max_examples=5, deadline=None)
def test_exchange_idempotent(seed):
    """Repeating the exchange (no state change) returns identical slabs."""
    rng = make_rng(seed)
    world = SimWorld(2)
    field = rng.normal(size=(16, 8, 8, NQ)).astype(np.float32)

    def main(comm):
        topo = CartTopology((2, 1, 1))
        grid = BlockGrid((1, 1, 1), 8, h=1.0)
        grid.from_array(field[comm.rank * 8 : (comm.rank + 1) * 8])
        halo = HaloExchange(comm, topo, grid)
        p1 = halo.exchange()
        p2 = halo.exchange()
        axis_side = (0, 1) if comm.rank == 0 else (0, -1)
        a = p1((0, 0, 0), *axis_side)
        b = p2((0, 0, 0), *axis_side)
        np.testing.assert_array_equal(a, b)
        return True

    assert all(world.run(main))
