"""Tests for the RHS assembly (repro.physics.equations)."""

import numpy as np
import pytest

from repro.physics.equations import compute_rhs, directional_rhs
from repro.physics.eos import LIQUID, conserved_to_primitive
from repro.physics.state import (
    ENERGY,
    GAMMA,
    NQ,
    PI,
    RHO,
    RHOU,
    RHOV,
    RHOW,
    aos_to_soa,
)

from .conftest import make_interface_aos, make_smooth_aos, make_uniform_aos


def soa(aos):
    return aos_to_soa(aos, dtype=np.float64)


class TestUniform:
    def test_zero_rhs(self):
        pad = make_uniform_aos((18, 18, 18), u=(1.0, -2.0, 3.0))
        rhs = compute_rhs(soa(pad), h=0.01)
        assert np.abs(rhs).max() == 0.0

    def test_fused_zero_rhs(self):
        pad = make_uniform_aos((14, 14, 14), u=(1.0, -2.0, 3.0))
        rhs = compute_rhs(soa(pad), h=0.01, fused=True)
        np.testing.assert_allclose(rhs, 0.0, atol=1e-8)


class TestInterfacePreservation:
    """The Johnsen-Ham criterion: a material interface advected at
    uniform velocity and pressure must keep p and u exactly uniform."""

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_pressure_velocity_invariant(self, axis):
        pad = make_interface_aos((16, 16, 16), axis=axis, u_n=25.0, p0=80.0)
        h = 0.02
        rhs = compute_rhs(soa(pad), h)
        U = soa(pad)[:, 3:-3, 3:-3, 3:-3] + 1e-5 * rhs
        W = conserved_to_primitive(U)
        np.testing.assert_allclose(W[ENERGY], 80.0, rtol=1e-7)
        vel = W[RHOU + (2 - axis)]
        np.testing.assert_allclose(vel, 25.0, rtol=1e-7)

    def test_gamma_pi_transported(self):
        """The interface itself must move: Gamma's RHS is nonzero there."""
        pad = make_interface_aos((16, 16, 16), axis=2, u_n=25.0)
        rhs = compute_rhs(soa(pad), 0.02)
        assert np.abs(rhs[GAMMA]).max() > 0


class TestDirectionalSymmetry:
    def test_axis_permutation_consistency(self, rng):
        """Transposing the field transposes the RHS accordingly."""
        pad = make_smooth_aos((14, 14, 14), rng)
        U = soa(pad)
        rhs = compute_rhs(U, 0.05)
        # Swap z and x axes: velocity components w and u swap as well.
        Ut = np.swapaxes(U, 1, 3).copy()
        Ut[[RHOU, RHOW]] = Ut[[RHOW, RHOU]]
        rhs_t = compute_rhs(Ut, 0.05)
        expect = np.swapaxes(rhs, 1, 3).copy()
        expect[[RHOU, RHOW]] = expect[[RHOW, RHOU]]
        np.testing.assert_allclose(rhs_t, expect, rtol=1e-10, atol=1e-8)


class TestDirectionalRhs:
    def test_invalid_axis(self, rng):
        pad = make_smooth_aos((10, 10, 10), rng)
        with pytest.raises(ValueError, match="axis"):
            directional_rhs(soa(pad), 3, 0.1)

    def test_wrong_leading_axis(self):
        with pytest.raises(ValueError):
            compute_rhs(np.zeros((NQ + 1, 10, 10, 10)), 0.1)

    def test_sweeps_sum_to_total(self, rng):
        pad = make_smooth_aos((12, 12, 12), rng)
        U = soa(pad)
        W = conserved_to_primitive(U)
        total = compute_rhs(U, 0.03)
        acc = None
        for axis in range(3):
            div, corr = directional_rhs(W, axis, 0.03)
            c = corr - div
            acc = c if acc is None else acc + c
        np.testing.assert_allclose(acc, total, rtol=1e-12, atol=1e-10)


class TestConservation:
    def test_interior_conservation_telescopes(self, rng):
        """With periodic wrap padding, the flux divergence telescopes: the
        volume integral of the conserved-quantity RHS vanishes."""
        n = 12
        core = make_smooth_aos((n, n, n), rng)
        # periodic pad by wrapping
        pad = np.empty((n + 6, n + 6, n + 6, NQ))
        idx = (np.arange(-3, n + 3)) % n
        pad[...] = core[np.ix_(idx, idx, idx)]
        rhs = compute_rhs(soa(pad), h=1.0 / n)
        for q in (RHO, RHOU, RHOV, RHOW, ENERGY):
            total = rhs[q].sum()
            scale = np.abs(rhs[q]).sum() + 1e-30
            assert abs(total) / scale < 1e-10, f"quantity {q} not conservative"
