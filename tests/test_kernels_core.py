"""Tests for the core compute kernels (repro.core.kernels)."""

import numpy as np
import pytest

from repro.core.kernels import (
    dt_from_sos,
    rhs_kernel,
    rhs_kernel_slices,
    sos_kernel,
    update_stage,
)
from repro.physics.eos import LIQUID, sound_speed
from repro.physics.state import NQ

from .conftest import make_interface_aos, make_smooth_aos, make_uniform_aos


class TestRhsEquivalence:
    """The ring-buffer streaming RHS is the paper's cache-aware variant of
    the vectorized whole-block RHS; both must agree to round-off."""

    def test_smooth_field_identical(self, rng):
        pad = make_smooth_aos((16, 16, 16), rng).astype(np.float32)
        r_vec = rhs_kernel(pad, 0.02)
        r_sl = rhs_kernel_slices(pad, 0.02)
        scale = np.abs(r_vec).max()
        np.testing.assert_allclose(r_sl, r_vec, rtol=1e-13, atol=1e-12 * scale)

    def test_interface_identical(self):
        pad = make_interface_aos((14, 14, 14), axis=0).astype(np.float32)
        r_vec = rhs_kernel(pad, 0.05)
        scale = max(np.abs(r_vec).max(), 1.0)
        np.testing.assert_allclose(
            rhs_kernel_slices(pad, 0.05), r_vec, rtol=1e-13, atol=1e-12 * scale
        )

    def test_output_shape(self, rng):
        pad = make_smooth_aos((12, 12, 12), rng)
        r = rhs_kernel(pad, 0.1)
        assert r.shape == (6, 6, 6, NQ)
        assert r.dtype == np.float64

    def test_fused_close_to_baseline(self, rng):
        pad = make_smooth_aos((12, 12, 12), rng)
        r0 = rhs_kernel(pad, 0.1)
        r1 = rhs_kernel(pad, 0.1, fused=True)
        scale = np.abs(r0).max()
        np.testing.assert_allclose(r1, r0, atol=1e-10 * max(scale, 1.0))


class TestSosKernel:
    def test_uniform_at_rest(self):
        aos = make_uniform_aos((8, 8, 8)).astype(np.float32)
        c = float(sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P))
        assert sos_kernel(aos) == pytest.approx(c, rel=1e-5)

    def test_moving_flow(self):
        aos = make_uniform_aos((8, 8, 8), u=(0.0, 0.0, 10.0)).astype(np.float32)
        c = float(sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P))
        assert sos_kernel(aos) == pytest.approx(c + 10.0, rel=1e-5)

    def test_local_hotspot_found(self, rng):
        aos = make_uniform_aos((8, 8, 8)).astype(np.float32)
        hot = make_uniform_aos((1, 1, 1), u=(0.0, 0.0, 50.0)).astype(np.float32)
        aos[4, 4, 4] = hot[0, 0, 0]
        c = float(sound_speed(1000.0, 100.0, LIQUID.G, LIQUID.P))
        assert sos_kernel(aos) == pytest.approx(c + 50.0, rel=1e-5)


class TestDtKernel:
    def test_formula(self):
        assert dt_from_sos(10.0, h=0.1, cfl=0.3) == pytest.approx(0.003)

    def test_invalid_sos(self):
        with pytest.raises(ValueError):
            dt_from_sos(0.0, 0.1, 0.3)


class TestUpdateStage:
    def test_first_stage_forward_euler_like(self, rng):
        """With a=0, b=1 the stage is exactly U += dt * RHS."""
        u = rng.normal(size=(4, 4, 4, NQ)).astype(np.float32)
        u0 = u.copy()
        res = np.zeros_like(u)
        rhs = rng.normal(size=u.shape)
        update_stage(u, res, rhs, a=0.0, b=1.0, dt=0.5)
        np.testing.assert_allclose(
            u, (u0.astype(np.float64) + 0.5 * rhs).astype(np.float32), rtol=1e-6
        )
        np.testing.assert_allclose(res, (0.5 * rhs).astype(np.float32), rtol=1e-6)

    def test_register_accumulation(self, rng):
        """S <- a S + dt RHS must accumulate across stages."""
        u = np.zeros((2, 2, 2, NQ), dtype=np.float32)
        res = np.ones_like(u)
        rhs = np.ones((2, 2, 2, NQ))
        update_stage(u, res, rhs, a=-0.5, b=2.0, dt=1.0)
        # S = -0.5 * 1 + 1 = 0.5; U = 0 + 2 * 0.5 = 1.
        np.testing.assert_allclose(res, 0.5)
        np.testing.assert_allclose(u, 1.0)

    def test_inplace(self, rng):
        u = rng.normal(size=(2, 2, 2, NQ)).astype(np.float32)
        res = np.zeros_like(u)
        rhs = rng.normal(size=u.shape)
        u_id, res_id = id(u), id(res)
        update_stage(u, res, rhs, 0.0, 1.0, 0.1)
        assert id(u) == u_id and id(res) == res_id
