"""Tests for initial-condition builders (repro.sim.ic)."""

import numpy as np
import pytest

from repro.physics.eos import LIQUID, VAPOR
from repro.physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOW
from repro.sim.cloud import Bubble
from repro.sim.diagnostics import pressure_field
from repro.sim.ic import (
    cloud_collapse,
    shock_bubble,
    shock_tube,
    smoothed_indicator,
    uniform,
)


def grid_coords(n=16, extent=1.0):
    c = (np.arange(n) + 0.5) * (extent / n)
    return c[:, None, None], c[None, :, None], c[None, None, :]


class TestSmoothedIndicator:
    def test_sharp_limit(self):
        d = np.array([-1.0, -0.1, 0.1, 1.0])
        np.testing.assert_array_equal(
            smoothed_indicator(d, 0.0), [1.0, 1.0, 0.0, 0.0]
        )

    def test_half_at_interface(self):
        assert smoothed_indicator(0.0, 0.1) == pytest.approx(0.5)

    def test_monotone(self):
        d = np.linspace(-1, 1, 50)
        a = smoothed_indicator(d, 0.2)
        assert (np.diff(a) <= 0).all()


class TestUniform:
    def test_values(self):
        fn = uniform(rho=500.0, p=25.0)
        state = fn(*grid_coords())
        assert state.shape == (16, 16, 16, NQ)
        np.testing.assert_allclose(state[..., RHO], 500.0)
        np.testing.assert_allclose(pressure_field(state), 25.0, rtol=1e-10)


class TestCloudCollapse:
    def test_phases(self):
        fn = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.25)])
        state = fn(*grid_coords(32))
        p = pressure_field(state)
        center = state[16, 16, 16]
        corner = state[0, 0, 0]
        assert center[RHO] == pytest.approx(1.0)  # vapor density
        assert corner[RHO] == pytest.approx(1000.0)
        assert p[16, 16, 16] == pytest.approx(0.0234, rel=1e-6)
        assert p[0, 0, 0] == pytest.approx(100.0, rel=1e-6)
        assert center[GAMMA] == pytest.approx(VAPOR.G)
        assert corner[GAMMA] == pytest.approx(LIQUID.G)

    def test_at_rest(self):
        fn = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.25)])
        state = fn(*grid_coords())
        assert not state[..., RHOU:RHOU + 3].any()

    def test_multiple_bubbles_union(self):
        fn = cloud_collapse(
            [Bubble((0.25, 0.5, 0.5), 0.15), Bubble((0.75, 0.5, 0.5), 0.15)]
        )
        state = fn(*grid_coords(32))
        # Both bubble centers are vapor.
        assert state[8, 16, 16, RHO] == pytest.approx(1.0)
        assert state[24, 16, 16, RHO] == pytest.approx(1.0)
        # Midpoint between them is liquid.
        assert state[16, 16, 16, RHO] == pytest.approx(1000.0)

    def test_smoothing_produces_mixture_cells(self):
        fn = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.25)], smoothing=0.05)
        state = fn(*grid_coords(32))
        rho = state[..., RHO]
        mixed = (rho > 10) & (rho < 990)
        assert mixed.any()


class TestShockTube:
    def test_states(self):
        fn = shock_tube(
            {"rho": 1000.0, "p": 300.0, "u": 2.0},
            {"rho": 900.0, "p": 100.0},
            x0=0.5, axis=2,
        )
        state = fn(*grid_coords(16))
        assert state[0, 0, 0, RHO] == pytest.approx(1000.0)
        assert state[0, 0, 15, RHO] == pytest.approx(900.0)
        # Velocity normal is x -> RHOU slot.
        assert state[0, 0, 0, RHOU] == pytest.approx(2000.0)
        assert state[0, 0, 15, RHOU] == pytest.approx(0.0)

    def test_axis_z(self):
        fn = shock_tube(
            {"rho": 1.0, "p": 2.0, "u": 3.0}, {"rho": 1.0, "p": 1.0},
            x0=0.5, axis=0,
        )
        state = fn(*grid_coords(8))
        assert state[0, 0, 0, RHOW] == pytest.approx(3.0)

    def test_two_phase(self):
        fn = shock_tube(
            {"rho": 1000.0, "p": 100.0}, {"rho": 1.0, "p": 100.0},
            x0=0.5, axis=2, material_left=LIQUID, material_right=VAPOR,
        )
        state = fn(*grid_coords(8))
        assert state[0, 0, 0, GAMMA] == pytest.approx(LIQUID.G)
        assert state[0, 0, 7, GAMMA] == pytest.approx(VAPOR.G)


class TestShockBubble:
    def test_three_regions(self):
        fn = shock_bubble(
            Bubble((0.5, 0.5, 0.6), 0.1), shock_position=0.2,
        )
        state = fn(*grid_coords(32))
        p = pressure_field(state)
        assert p[16, 16, 2] == pytest.approx(300.0, rel=1e-6)  # post-shock
        assert p[16, 16, 12] == pytest.approx(100.0, rel=1e-6)  # pre-shock
        # Bubble center is at x ~ 0.6 -> index 19.
        assert state[16, 16, 19, RHO] == pytest.approx(1.0)

    def test_shock_moving(self):
        fn = shock_bubble(Bubble((0.5, 0.5, 0.7), 0.1), shock_position=0.2)
        state = fn(*grid_coords(32))
        assert state[16, 16, 2, RHOU] > 0  # post-shock momentum
        assert state[16, 16, 12, RHOU] == pytest.approx(0.0)
