"""Tests for the HLLC flux (repro.physics.riemann.hllc_flux)."""

import numpy as np
import pytest

from repro.physics.eos import LIQUID, VAPOR
from repro.physics.riemann import hllc_flux, hlle_flux
from repro.physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW

from .test_riemann import exact_flux, make_state


class TestConsistency:
    @pytest.mark.parametrize("normal", [0, 1, 2])
    def test_equal_states(self, normal):
        W = make_state(1000.0, 3.0, -2.0, 1.0, 100.0)
        flux, ustar = hllc_flux(W.copy(), W.copy(), normal)
        np.testing.assert_allclose(flux, exact_flux(W, normal), rtol=1e-12)

    def test_supersonic_upwinding(self):
        Wl = make_state(1.0, 50.0, 0.0, 0.0, 1.0, VAPOR)
        Wr = make_state(0.5, 60.0, 0.0, 0.0, 0.5, VAPOR)
        flux, ustar = hllc_flux(Wl, Wr, 0)
        np.testing.assert_allclose(flux, exact_flux(Wl, 0), rtol=1e-12)
        assert ustar == pytest.approx(50.0)


class TestContactResolution:
    def test_stationary_contact_exact(self):
        """HLLC keeps an isolated stationary contact *exactly*: zero mass
        flux and pure pressure in the momentum flux (HLLE smears this --
        the reason HLLC exists)."""
        Wl = make_state(1000.0, 0.0, 0.0, 0.0, 100.0, LIQUID)
        Wr = make_state(1.0, 0.0, 0.0, 0.0, 100.0, VAPOR)
        flux, ustar = hllc_flux(Wl, Wr, 0)
        assert flux[RHO] == pytest.approx(0.0, abs=1e-10)
        assert flux[ENERGY] == pytest.approx(0.0, abs=1e-8)
        assert flux[RHOU] == pytest.approx(100.0, rel=1e-10)
        assert flux[GAMMA] == pytest.approx(0.0, abs=1e-12)
        assert ustar == pytest.approx(0.0, abs=1e-12)

    def test_hlle_smears_the_same_contact(self):
        Wl = make_state(1000.0, 0.0, 0.0, 0.0, 100.0, LIQUID)
        Wr = make_state(1.0, 0.0, 0.0, 0.0, 100.0, VAPOR)
        flux_c, _ = hllc_flux(Wl.copy(), Wr.copy(), 0)
        flux_e, _ = hlle_flux(Wl, Wr, 0)
        # HLLE's mass flux across the contact is nonzero; HLLC's vanishes.
        assert abs(flux_e[RHO]) > 100.0 * abs(flux_c[RHO])

    def test_moving_contact_speed(self):
        """For a pure moving contact, u* equals the contact velocity."""
        u0 = 5.0
        Wl = make_state(1000.0, u0, 0.0, 0.0, 100.0, LIQUID)
        Wr = make_state(1.0, u0, 0.0, 0.0, 100.0, VAPOR)
        _, ustar = hllc_flux(Wl, Wr, 0)
        assert ustar == pytest.approx(u0, rel=1e-10)


class TestAgainstHlle:
    def test_same_wave_fan_limits(self, rng):
        """Both solvers agree where the solution is smooth."""
        W = make_state(
            1000.0 * (1 + 0.001 * rng.random(8)), 0.1 * rng.random(8),
            0.0, 0.0, 100.0 * (1 + 0.001 * rng.random(8)), shape=(8,),
        )
        W2 = make_state(
            1000.0 * (1 + 0.001 * rng.random(8)), 0.1 * rng.random(8),
            0.0, 0.0, 100.0 * (1 + 0.001 * rng.random(8)), shape=(8,),
        )
        fc, _ = hllc_flux(W.copy(), W2.copy(), 0)
        fe, _ = hlle_flux(W, W2, 0)
        scale = np.abs(fe).max()
        np.testing.assert_allclose(fc, fe, atol=0.05 * scale)

    def test_solver_option_in_rhs(self):
        """compute_rhs threads the solver choice; uniform states stay
        uniform under both."""
        from repro.physics.equations import compute_rhs
        from .conftest import make_uniform_aos
        from repro.physics.state import aos_to_soa

        pad = make_uniform_aos((14, 14, 14), u=(1.0, 2.0, 3.0))
        for solver in ("hlle", "hllc"):
            rhs = compute_rhs(aos_to_soa(pad), 0.01, solver=solver)
            assert np.abs(rhs).max() < 1e-8

    def test_unknown_solver(self):
        from repro.physics.equations import compute_rhs
        from .conftest import make_uniform_aos
        from repro.physics.state import aos_to_soa

        pad = make_uniform_aos((14, 14, 14))
        with pytest.raises(ValueError, match="unknown Riemann solver"):
            compute_rhs(aos_to_soa(pad), 0.01, solver="roe")


class TestInterfaceAdvectionHllc:
    def test_contact_preserved_in_full_rhs(self):
        """A stationary material interface produces (near-)zero RHS under
        HLLC -- the contact-sharp property at the PDE level."""
        from repro.physics.equations import compute_rhs
        from repro.physics.state import aos_to_soa
        from .conftest import make_interface_aos

        pad = make_interface_aos((16, 16, 16), axis=2, u_n=0.0, p0=100.0)
        rhs = compute_rhs(aos_to_soa(pad), 0.02, solver="hllc")
        # All conserved quantities stay exactly put at the contact.
        assert np.abs(rhs[RHO]).max() < 1e-8
        assert np.abs(rhs[ENERGY]).max() < 1e-6
        rhs_e = compute_rhs(aos_to_soa(pad), 0.02, solver="hlle")
        assert np.abs(rhs_e[RHO]).max() > 10.0 * max(np.abs(rhs[RHO]).max(), 1e-12)
