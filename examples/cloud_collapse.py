#!/usr/bin/env python
"""Cloud cavitation collapse: the paper's production scenario, shrunk.

Packs a lognormal bubble cloud (paper Section 7), runs the collapse with
a solid wall at z = 0 through the full multi-rank stack, writes
wavelet-compressed dumps of p and Gamma (the paper's I/O pipeline), and
prints the Fig. 5 series: max flow/wall pressure, kinetic energy, and the
equivalent cloud radius.

    python examples/cloud_collapse.py [--cells 48] [--bubbles 8] [--ranks 2]
"""

import argparse
import os
import tempfile

import numpy as np

from repro.cluster import Simulation
from repro.compression.io import read_field
from repro.physics import rayleigh_collapse_time
from repro.sim import (
    SimulationConfig,
    cloud_collapse,
    cloud_interaction_parameter,
    generate_cloud,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cells", type=int, default=48)
    ap.add_argument("--bubbles", type=int, default=8)
    ap.add_argument("--ranks", type=int, default=1)
    ap.add_argument("--pressure", type=float, default=1000.0,
                    help="driving pressure [bar] (paper: 100; higher is "
                         "faster to collapse at laptop scale)")
    ap.add_argument("--dump-dir", default=None)
    args = ap.parse_args()

    dump_dir = args.dump_dir or tempfile.mkdtemp(prefix="cloud_dumps_")

    # -- cloud setup (lognormal radii, non-overlapping packing) ---------
    bubbles = generate_cloud(
        args.bubbles, cloud_center=(0.55, 0.5, 0.5), cloud_radius=0.33,
        rng=2013, r_min=0.05, r_max=0.09,
    )
    beta = cloud_interaction_parameter(bubbles, 0.33)
    r_max = max(b.radius for b in bubbles)
    tau = rayleigh_collapse_time(r_max, 1000.0, args.pressure)
    print(f"cloud: {len(bubbles)} bubbles, radii "
          f"{min(b.radius for b in bubbles):.3f}-{r_max:.3f}, "
          f"interaction parameter beta = {beta:.1f}")
    print(f"largest-bubble Rayleigh time: {tau:.4f}\n")

    from repro.sim import ErosionModel

    config = SimulationConfig(
        cells=args.cells,
        block_size=16 if args.cells % 16 == 0 else 8,
        max_steps=500,
        t_end=1.8 * tau,
        ranks=args.ranks,
        wall=(0, -1),  # solid wall at z = 0 (paper Fig. 5 wall pressure)
        erosion=ErosionModel(p_threshold=1.05 * args.pressure),
        dump_interval=25,
        dump_dir=dump_dir,
        eps_pressure=1e-2 * args.pressure,
        eps_gamma=1e-3,
    )
    ic = cloud_collapse(bubbles, p_liquid=args.pressure,
                        smoothing=config.h)

    result = Simulation(config, ic).run()

    # -- Fig. 5 style report -------------------------------------------
    print(f"{'t/tau':>7} {'max p/pinf':>11} {'wall p/pinf':>12} "
          f"{'kinetic E':>11} {'r_eq':>8}")
    for rec in result.records[:: max(1, len(result.records) // 20)]:
        d = rec.diagnostics
        print(
            f"{rec.time / tau:7.3f} {d.max_pressure / args.pressure:11.3f} "
            f"{d.wall_max_pressure / args.pressure:12.3f} "
            f"{d.kinetic_energy:11.4e} {d.equivalent_radius:8.4f}"
        )

    wallp = result.series("wall_max_pressure")
    maxp = result.series("max_pressure")
    ke = result.series("kinetic_energy")
    print(f"\npeak flow pressure : {maxp.max() / args.pressure:6.1f}x ambient")
    print(f"peak wall pressure : {wallp.max() / args.pressure:6.1f}x ambient "
          "(paper observes ~20x for the full cloud)")
    print(f"KE peak at t/tau   : {result.times[np.argmax(ke)] / tau:6.2f}")

    # -- compressed dumps ------------------------------------------------
    dumps = sorted(os.listdir(dump_dir))
    print(f"\ncompressed dumps in {dump_dir}:")
    for name in dumps:
        path = os.path.join(dump_dir, name)
        print(f"  {name}: {os.path.getsize(path) / 1024:.1f} kB")
    if dumps:
        field = read_field(os.path.join(dump_dir, dumps[-1]))
        print(f"\nlast dump decompresses to shape {field.shape}, "
              f"range [{field.min():.3f}, {field.max():.3f}]")

    for rr in result.rank_results:
        for cs in rr.compression_stats[:2]:
            print(f"rank {rr.rank} step {cs['step']} {cs['quantity']}: "
                  f"{cs['rate']:.0f}:1 compression")

    # -- erosion map + interface visualization (paper Figs. 4/8 + Sec. 9)
    from repro.sim import ascii_render, field_slice, interface_statistics

    dmg = result.wall_damage
    if dmg is not None and dmg.max() > 0:
        print("\nwall erosion damage map (z = 0 wall, '@' = deepest pit):")
        print(ascii_render(dmg))
    shapes = interface_statistics(result.final_field, h=config.h)
    if shapes:
        print(f"\n{len(shapes)} vapor region(s) remain; largest:")
        s0 = shapes[0]
        print(f"  cells {s0.cells}, centroid {tuple(round(c, 3) for c in s0.centroid)},"
              f" sphericity {s0.sphericity:.2f} (1 = undeformed)")
    print("\nmid-plane pressure slice:")
    print(ascii_render(field_slice(result.final_field, axis=1, quantity="p")))


if __name__ == "__main__":
    main()
