#!/usr/bin/env python
"""Quickstart: collapse a single vapor bubble and watch the diagnostics.

Runs a laptop-scale version of the paper's physics -- one vapor bubble at
0.0234 bar inside liquid pressurized to 100 bar (the production values of
Section 7) -- through the full cluster/node/core stack, and prints the
quantities the paper monitors in Fig. 5.

    python examples/quickstart.py [--cells 32] [--steps 60]
"""

import argparse

import numpy as np

from repro.cluster import Simulation
from repro.physics import rayleigh_collapse_time
from repro.sim import Bubble, SimulationConfig, cloud_collapse


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cells", type=int, default=32, help="grid cells per axis")
    ap.add_argument("--steps", type=int, default=60, help="time steps")
    ap.add_argument("--radius", type=float, default=0.2, help="bubble radius")
    ap.add_argument("--pressure", type=float, default=100.0,
                    help="ambient liquid pressure [bar]")
    args = ap.parse_args()

    bubble = Bubble(center=(0.5, 0.5, 0.5), radius=args.radius)
    config = SimulationConfig(
        cells=args.cells,
        block_size=min(16, args.cells),
        max_steps=args.steps,
        cfl=0.3,
    )
    ic = cloud_collapse([bubble], p_liquid=args.pressure)

    tau = rayleigh_collapse_time(args.radius, 1000.0, args.pressure - 0.0234)
    print(f"grid          : {args.cells}^3 cells, h = {config.h:.4f}")
    print(f"bubble        : R0 = {args.radius}, p_inf = {args.pressure} bar")
    print(f"Rayleigh time : {tau:.4f} (analytic empty-cavity estimate)\n")

    result = Simulation(config, ic).run()

    print(f"{'step':>5} {'t/tau':>7} {'dt':>10} {'max p':>9} "
          f"{'kinetic E':>11} {'r_eq/R0':>8}")
    for rec in result.records[:: max(1, len(result.records) // 15)]:
        d = rec.diagnostics
        print(
            f"{rec.step:5d} {rec.time / tau:7.3f} {rec.dt:10.2e} "
            f"{d.max_pressure:9.2f} {d.kinetic_energy:11.4e} "
            f"{d.equivalent_radius / args.radius:8.4f}"
        )

    vv = result.series("vapor_volume")
    print(f"\nvapor volume: {vv[0]:.4f} -> {vv[-1]:.4f} "
          f"({100 * (1 - vv[-1] / vv[0]):.1f} % collapsed)")
    print(f"peak pressure: {result.series('max_pressure').max():.1f} bar "
          f"({result.series('max_pressure').max() / args.pressure:.1f}x ambient)")
    print("\nphase timers [s]:",
          {k: round(v, 2) for k, v in sorted(result.timers.items())})


if __name__ == "__main__":
    main()
