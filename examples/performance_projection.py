#!/usr/bin/env python
"""The paper's performance story, replayed through the models.

Walks the complete chain the paper uses to explain its 11 PFLOP/s:
roofline -> data reordering (Table 3) -> issue bounds (Table 8) -> core
layer (Table 7) -> node layer (Fig. 9) -> cluster (Tables 5/6) ->
throughput (Section 7), and prints every table with the paper's measured
values alongside.

    python examples/performance_projection.py
"""

from repro.perf import (
    BGQ_NODE,
    SEQUOIA,
    attainable,
    bqc_table,
    fig9_weak_scaling,
    format_table,
    machines_table,
    rhs_issue_bounds,
    table3,
    table5,
    table6,
    table7,
    table9,
    table10,
    throughput_cells_per_second,
    time_per_step,
)


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("Platforms (paper Tables 1-2)")
    print(format_table(machines_table()))
    for k, v in bqc_table().items():
        print(f"  {k}: {v}")
    print(f"  roofline ridge point: {BGQ_NODE.ridge_point:.1f} FLOP/B")

    section("Why reorder data (paper Table 3)")
    rows = [
        {
            "kernel": e.kernel,
            "naive OI": e.naive_oi,
            "reordered OI": e.reordered_oi,
            "gain": e.gain,
            "roofline bound [GF/s]": attainable(BGQ_NODE, e.reordered_oi),
        }
        for e in table3()
    ]
    print(format_table(rows))
    print("paper: RHS 1.4->21 (15x), DT 1.3->5.1 (3.9x), UP 0.2 (1x)")

    section("Issue-rate ceiling (paper Table 8)")
    print(format_table([vars(b) for b in rhs_issue_bounds()]))
    print("=> the RHS cannot exceed ~76 % of peak no matter what.")

    section("Core layer: scalar vs QPX (paper Table 7)")
    print(format_table(table7()))
    print("paper: RHS 2.21->8.27 (65 %), DT 0.90->1.96, UP ~0.3, FWT 0.40->1.29")

    section("WENO micro-fusion (paper Table 9)")
    for k, v in table9().items():
        print(f"  {k}: {v:.3f}")

    section("Node layer thread scaling (paper Fig. 9)")
    print(format_table(fig9_weak_scaling()))

    section("Cluster: 1 -> 96 racks (paper Tables 5-6)")
    print(format_table(table5()))
    print()
    print(format_table(table6()))

    section("Performance portability (paper Table 10)")
    print(format_table(table10()))

    section("Headline numbers (paper Section 7 / abstract)")
    tput = throughput_cells_per_second(96)
    rhs_pf = [r for r in table5() if r["racks"] == 96][0]["RHS [PFLOP/s]"]
    print(f"  RHS on 96 racks        : {rhs_pf:6.2f} PFLOP/s  [paper: 10.99 -> '11 PFLOP/s']")
    print(f"  fraction of 20.1 PF    : {100 * rhs_pf / SEQUOIA.peak_pflops:6.1f} %"
          f"        [paper: 55 %]")
    print(f"  throughput             : {tput / 1e9:6.0f} Gcells/s [paper: 721]")
    print(f"  step time (13.2e12)    : {time_per_step(13.2e12, 96):6.1f} s"
          f"        [paper: 18.3]")
    print(f"  cores                  : {SEQUOIA.cores / 1e6:6.2f} M      [paper: 1.6 M]")


if __name__ == "__main__":
    main()
