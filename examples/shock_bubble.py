#!/usr/bin/env python
"""Shock-bubble interaction: the precursor problem of the paper's group.

A planar pressure wave in liquid impacts a single vapor bubble -- the
configuration of Hejazialhosseini et al. (SC12) that CUBISM-MPCF grew out
of, and the classical shock-induced-collapse setup of Johnsen & Colonius
that the paper cites.  The example tracks the bubble's deformation and
the pressure amplification as the shock focuses it, and validates the
pre-impact wave against the exact stiffened-gas Riemann solution.

    python examples/shock_bubble.py [--cells-x 96]
"""

import argparse

import numpy as np

from repro.cluster import Simulation
from repro.physics.exact_riemann import RiemannSide, solve
from repro.sim import Bubble, SimulationConfig, shock_bubble
from repro.sim.diagnostics import pressure_field, vapor_fraction_field


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cells-x", type=int, default=96)
    ap.add_argument("--p-shock", type=float, default=500.0)
    args = ap.parse_args()

    ny = max(16, args.cells_x // 2 // 8 * 8)
    ext_t = ny / args.cells_x  # transverse domain extent (h = 1/cells_x)
    bubble = Bubble(center=(ext_t / 2, ext_t / 2, 0.5), radius=0.35 * ext_t)

    # The exact Riemann solution of the shock-tube part tells us the
    # post-shock state to initialize (and the shock speed to expect).
    sol = solve(
        RiemannSide(1000.0, 0.0, args.p_shock, gamma=6.59, pc=4096.0),
        RiemannSide(1000.0, 0.0, 100.0, gamma=6.59, pc=4096.0),
    )
    shock_speed = sol.wave_speeds()["right_head"]
    print(f"incident wave: p* = {sol.p_star:.1f} bar, "
          f"u* = {sol.u_star:.3f}, shock speed = {shock_speed:.3f}")

    config = SimulationConfig(
        cells=(ny, ny, args.cells_x),
        block_size=8,
        extent=1.0,
        max_steps=2000,
        t_end=0.45 / shock_speed,  # the wave sweeps past the bubble
        diag_interval=5,
    )
    ic = shock_bubble(
        bubble,
        shock_position=0.2,
        p_post=sol.p_star,
        rho_post=sol.rho_star_l,
        u_post=sol.u_star,
        p_pre=100.0,
        rho_pre=1000.0,
        axis=2,
        smoothing=config.h,
    )

    result = Simulation(config, ic).run()

    print(f"\n{'t':>9} {'max p [bar]':>12} {'vapor vol':>10}")
    diag_records = [r for r in result.records if r.diagnostics is not None]
    for rec in diag_records[:: max(1, len(diag_records) // 15)]:
        d = rec.diagnostics
        print(f"{rec.time:9.5f} {d.max_pressure:12.2f} "
              f"{d.vapor_volume:10.6f}")

    field = result.final_field
    p = pressure_field(field)
    alpha = vapor_fraction_field(field)

    # Bubble deformation: extent of the vapor region along x vs y.
    vapor = alpha > 0.5
    if vapor.any():
        zi, yi, xi = np.where(vapor)
        ext_x = (xi.max() - xi.min() + 1) * config.h
        ext_y = (yi.max() - yi.min() + 1) * config.h
        print(f"\nbubble extent: x = {ext_x:.3f}, y = {ext_y:.3f} "
              f"(aspect {ext_x / ext_y:.2f}; < 1 means the shock has "
              "flattened it -- the asymmetric deformation of paper Fig. 4)")
    else:
        print("\nbubble fully collapsed")

    print(f"pressure amplification: {p.max():.0f} bar "
          f"(incident {sol.p_star:.0f} bar -> "
          f"{p.max() / sol.p_star:.1f}x focusing)")

    mid = field.shape[0] // 2
    line = p[mid, mid, :]
    print("\ncenterline pressure profile (sampled):")
    for i in range(0, line.size, max(1, line.size // 12)):
        bar = "#" * int(40 * (line[i] - line.min()) /
                        max(line.max() - line.min(), 1e-12))
        print(f"  x={i * config.h:5.3f} {line[i]:9.2f} {bar}")


if __name__ == "__main__":
    main()
