#!/usr/bin/env python
"""The paper's closing conjecture, as a runnable experiment.

"We consider that this pressure is correlated with the volume fraction of
the bubbles, a subject of our ongoing investigations." (paper Section 7)

Sweeps the cloud vapor volume fraction at fixed driving pressure and
measures the peak wall-pressure amplification of each collapse, writing
the results as CSV.

    python examples/parameter_study.py [--counts 1 3 6] [--cells 24]
"""

import argparse

from repro.sim import cloud_fraction_sweep


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--counts", type=int, nargs="+", default=[1, 3, 6])
    ap.add_argument("--cells", type=int, default=24)
    ap.add_argument("--pressure", type=float, default=1000.0)
    ap.add_argument("--csv", default=None, help="write results to this file")
    args = ap.parse_args()

    sweep = cloud_fraction_sweep(
        bubble_counts=tuple(args.counts), cells=args.cells,
        p_liquid=args.pressure,
    )

    print(f"{'cloud':>12} {'vapor frac':>11} {'beta':>7} "
          f"{'wall p/pinf':>12} {'flow p/pinf':>12} {'KE peak':>9}")
    for p in sweep.points:
        print(
            f"{p.label:>12} {p.parameters['vapor_fraction']:11.4f} "
            f"{p.parameters['beta']:7.2f} "
            f"{p.peak_wall_pressure / args.pressure:12.3f} "
            f"{p.peak_flow_pressure / args.pressure:12.3f} "
            f"{p.ke_peak:9.3f}"
        )

    wall = [p.peak_wall_pressure for p in sweep.points]
    trend = "rises with" if wall[-1] > wall[0] else "does not rise with"
    print(f"\nwall-pressure amplification {trend} the vapor fraction "
          "(the paper conjectures a positive correlation)")

    if args.csv:
        with open(args.csv, "w") as f:
            f.write(sweep.to_csv())
        print(f"CSV written to {args.csv}")
    else:
        print("\nCSV:\n" + sweep.to_csv())


if __name__ == "__main__":
    main()
