#!/usr/bin/env python
"""The wavelet I/O pipeline, end to end (paper Section 5 + Fig. 3).

Builds a two-phase field, pushes it through the full compression chain
(per-block 4th-order interpolating FWT on the interval -> lossy
decimation -> per-thread zlib streams -> collective write with exscan
offsets), reads it back, and reports rates, error bounds and stage
timings for a sweep of decimation thresholds.

    python examples/compression_io.py [--cells 64]
"""

import argparse
import os
import tempfile

import numpy as np

from repro.cluster import SimWorld
from repro.compression import (
    WaveletCompressor,
    exact_amplification,
    read_field,
    write_compressed_parallel,
)
from repro.sim import Bubble, cloud_collapse


def make_field(n: int) -> np.ndarray:
    """A Gamma-like two-phase field with some smooth background."""
    c = (np.arange(n) + 0.5) / n
    bubbles = [
        Bubble((0.35, 0.4, 0.3), 0.12),
        Bubble((0.65, 0.55, 0.7), 0.09),
        Bubble((0.4, 0.7, 0.6), 0.07),
    ]
    state = cloud_collapse(bubbles, smoothing=1.0 / n)(
        c[:, None, None], c[None, :, None], c[None, None, :]
    )
    return state[..., 5].astype(np.float32)  # Gamma


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cells", type=int, default=64)
    ap.add_argument("--threads", type=int, default=4)
    args = ap.parse_args()

    field = make_field(args.cells)
    print(f"field: {field.shape}, {field.nbytes / 1e6:.2f} MB, "
          f"values in [{field.min():.3f}, {field.max():.3f}]")
    K = exact_amplification((16, 16, 16), 2)
    print(f"exact decimation amplification (16^3 blocks, 2 levels): "
          f"{K:.1f}\n")

    print(f"{'eps':>9} {'mode':>11} {'rate':>8} {'measured Linf':>14} "
          f"{'DEC imb':>8} {'ENC imb':>8}")
    for eps in (1e-1, 1e-2, 1e-3, 1e-4):
        for guaranteed in (True, False):
            comp = WaveletCompressor(
                eps=eps, block_size=16, num_threads=args.threads,
                guaranteed=guaranteed,
            )
            cf = comp.compress(field)
            restored = comp.decompress(cf)
            err = float(np.abs(restored - field).max())
            imb = cf.stats.imbalance(args.threads)
            mode = "guaranteed" if guaranteed else "paper-raw"
            print(f"{eps:9.0e} {mode:>11} {cf.stats.rate:8.1f} "
                  f"{err:14.2e} {imb['DEC']:8.2f} {imb['ENC']:8.2f}")
            if guaranteed:
                assert err <= eps * 1.001, "L-inf guarantee violated!"

    # -- collective write through the simulated MPI world ---------------
    tmp = tempfile.mkdtemp(prefix="wavelet_io_")
    path = os.path.join(tmp, "gamma.rwz")
    n = args.cells

    def rank_main(comm):
        # Each rank owns a z-slab of the field.
        slab = field[comm.rank * n // comm.size : (comm.rank + 1) * n // comm.size]
        comp = WaveletCompressor(eps=1e-3, block_size=16, guaranteed=False)
        cf = comp.compress(np.ascontiguousarray(slab))
        ws = write_compressed_parallel(
            comm, path, "Gamma", cf,
            rank_meta={"origin_cells": [comm.rank * n // comm.size, 0, 0]},
        )
        return ws

    world = SimWorld(2)
    stats = world.run(rank_main)
    print("\ncollective write (2 ranks, exscan offsets):")
    for r, ws in enumerate(stats):
        print(f"  rank {r}: offset {ws.offset}, {ws.nbytes} bytes, "
              f"{ws.seconds * 1e3:.2f} ms")
    print(f"file: {os.path.getsize(path)} bytes")

    restored = read_field(path)
    err = float(np.abs(restored - field).max())
    print(f"read back: shape {restored.shape}, L-inf error {err:.2e}")


if __name__ == "__main__":
    main()
