"""Analytic characterization of the compute kernels.

Per-cell FLOP counts, instruction-mix data and execution frequencies of
the four kernels (RHS, DT, UP, FWT).  These are the inputs shared by the
traffic model (Table 3), the issue-rate model (Table 8), the layer
composition model (Tables 5-7, 9, 10) and the throughput projection
(Section 7).

FLOP counts are derived from the schemes themselves:

* One WENO5 reconstruction costs ~52 FLOPs (3 smoothness indicators,
  3 rational weights, 3 candidate polynomials, normalization); each face
  needs 2 reconstructions (minus/plus) of each of the 7 quantities, and
  each cell owns one new face per direction:
  ``2 * 52 * 7 * 3 = 2184`` FLOP/cell.
* HLLE adds ~13 FLOP per quantity per face plus ~25 for the wave speeds:
  ``(13 * 7 + 25) * 3 = 348``; CONV ~20; SUM ~42; BACK ~20.
* The paper additionally counts QPX permute/select/compare data movement
  as FLOPs (Section 8: "we count as FLOP also the instructions for
  permutation, negation, conditional move"), which its Table 8
  instruction densities imply is a further ~1.6x on the WENO-dominated
  total.  The calibrated total of 4400 FLOP/cell per RHS evaluation
  reproduces the paper's joint (10.14 PFLOP/s, 721 Gcells/s, 18.3 s/step)
  figures self-consistently, so we adopt it as the accounting basis.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per computational element (7 quantities, float32 storage).
CELL_BYTES = 28
#: DRAM cache-line size of the BQC (128 B).
LINE_BYTES = 128
#: WENO5 ghost width.
STENCIL = 3


@dataclass(frozen=True)
class StageMix:
    """Instruction mix of one RHS substage (paper Table 8 inputs)."""

    name: str
    weight: float  #: share of RHS QPX instructions
    flop_per_instr: float  #: per-lane FLOP / QPX instruction


#: Paper Table 8: stage weights and FLOP/instruction densities of the
#: compiler-generated QPX assembly.
RHS_STAGES = (
    StageMix("CONV", 0.01, 1.10),
    StageMix("WENO", 0.83, 1.56),
    StageMix("HLLE", 0.13, 1.30),
    StageMix("SUM", 0.02, 1.22),
    StageMix("BACK", 0.005, 1.28),
)


@dataclass(frozen=True)
class KernelModel:
    """Workload characterization of one kernel."""

    name: str
    flops_per_cell: float  #: per evaluation
    evals_per_step: int  #: RK3: RHS and UP run 3x per step
    issue_density: float | None  #: avg per-lane FLOP/instruction (QPX)

    def flops_per_cell_step(self) -> float:
        return self.flops_per_cell * self.evals_per_step


#: Weighted-average issue density of the RHS (Table 8 "ALL" row: 1.51).
RHS_ISSUE_DENSITY = sum(s.weight * s.flop_per_instr for s in RHS_STAGES) / sum(
    s.weight for s in RHS_STAGES
)

RHS = KernelModel("RHS", flops_per_cell=4400.0, evals_per_step=3,
                  issue_density=RHS_ISSUE_DENSITY)
#: DT: conversion to primitives + sound speed + running max (~36 FLOP).
DT = KernelModel("DT", flops_per_cell=36.0, evals_per_step=1, issue_density=None)
#: UP: two FMAs per quantity per stage (S = aS + dt R; U += bS).
UP = KernelModel("UP", flops_per_cell=28.0, evals_per_step=3, issue_density=None)
#: FWT: 4-tap predict per sample per axis over the level pyramid
#: (~8 FLOP * 3 axes * sum over levels of 8^-l ~ 27 FLOP/cell/quantity).
FWT = KernelModel("FWT", flops_per_cell=27.0, evals_per_step=0, issue_density=None)

KERNELS = (RHS, DT, UP, FWT)


def flops_per_cell_step() -> float:
    """Total FLOPs each cell costs per time step (RK3 production step)."""
    return sum(k.flops_per_cell_step() for k in KERNELS)


# -- per-point arithmetic table (shared with perfcheck) -------------------
#
# Scheme-derived arithmetic of the individual hot-path kernels, normalized
# *per output point* (one face, one cell, one slice element -- whatever one
# application of the kernel's vectorized expression produces) rather than
# per cell-step.  Byte counts follow a uniform accounting convention:
# every distinct array operand the kernel touches, loads and stores alike,
# contributes one compute-precision word (8 B) per point.  The static
# analyzer (``repro.analysis.perfcheck``, rule CP006) counts FLOPs and
# operands with the *same* convention straight off the AST and cross-checks
# the two, so the table below is the single source of truth the analyzer,
# the roofline model and the docs all share.


@dataclass(frozen=True)
class KernelArithmetic:
    """Scheme-derived per-point arithmetic of one hot-path kernel."""

    key: str  #: table key (stable; used by perfcheck kernel specs)
    flops_per_point: float  #: scheme FLOPs per output point
    bytes_per_point: float  #: distinct operands x 8 B (compute precision)
    note: str  #: one-line derivation of the counts

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in FLOP/byte (per-point convention)."""
        return self.flops_per_point / self.bytes_per_point


#: The shared table, keyed by kernel-family name.  Derivations follow the
#: scheme counts in the module docstring (WENO ~52 FLOP/reconstruction,
#: HLLE ~13 FLOP/quantity + ~25 for wave speeds, CONV/BACK ~20 FLOP/cell).
KERNEL_ARITHMETIC: dict[str, KernelArithmetic] = {
    a.key: a
    for a in (
        KernelArithmetic(
            "weno5", 104.0, 64.0,
            "2 biased reconstructions x 52 FLOP; 6 stencil loads + 2 face "
            "stores",
        ),
        KernelArithmetic(
            "hlle", 116.0, 176.0,
            "13 FLOP x 7 quantities + 25 wave-speed FLOP; 14 face loads + "
            "8 stores (7 fluxes + u*)",
        ),
        KernelArithmetic(
            "wavespeeds", 20.0, 96.0,
            "2 sound speeds + 4 bound ops; 10 loads + 2 stores",
        ),
        KernelArithmetic(
            "conv", 20.0, 112.0,
            "4 divisions + kinetic energy + EOS inversion over 7 "
            "quantities; 7 loads + 7 stores",
        ),
        KernelArithmetic(
            "back", 20.0, 112.0,
            "3 products + kinetic energy + EOS evaluation over 7 "
            "quantities; 7 loads + 7 stores",
        ),
        KernelArithmetic(
            "pressure", 10.0, 64.0,
            "kinetic energy (6) + EOS inversion (3-4); 7 loads + 1 store",
        ),
        KernelArithmetic(
            "total_energy", 9.0, 64.0,
            "kinetic energy (6) + EOS evaluation (3); 7 loads + 1 store",
        ),
        KernelArithmetic(
            "sound_speed", 7.0, 40.0,
            "c^2 rational evaluation (5) + floor + sqrt; 4 loads + 1 store",
        ),
        KernelArithmetic(
            "sos", 16.0, 64.0,
            "sound speed (7) + 3 |u| + 3 max + add + running max; 7 loads "
            "+ 1 store",
        ),
        KernelArithmetic(
            "up", 5.0, 40.0,
            "S = aS + dt R; U += bS (2 FMA + scale); 3 loads + 2 stores",
        ),
    )
}
