"""The roofline performance model (Williams, Waterman & Patterson).

"The high performance techniques developed herein were guided by the
roofline performance model" (paper Section 2).  Given a machine's peak
FLOP rate and memory bandwidth, a kernel with operational intensity
``oi`` can attain at most ``min(peak, oi * bandwidth)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machines import MachineSpec


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel placed on the roofline (Fig. 9, right)."""

    name: str
    oi: float  #: operational intensity, FLOP/B
    achieved_gflops: float

    def bound_gflops(self, machine: MachineSpec) -> float:
        return attainable(machine, self.oi)

    def efficiency(self, machine: MachineSpec) -> float:
        """Achieved / roofline-attainable."""
        return self.achieved_gflops / self.bound_gflops(machine)

    def memory_bound(self, machine: MachineSpec) -> bool:
        return self.oi < machine.ridge_point


def attainable(machine: MachineSpec, oi: float) -> float:
    """Maximum attainable GFLOP/s at operational intensity ``oi``."""
    if oi < 0:
        raise ValueError("operational intensity must be non-negative")
    return min(machine.peak_gflops, oi * machine.dram_bw_gbs)


def roofline_curve(
    machine: MachineSpec, oi_min: float = 0.05, oi_max: float = 100.0, points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled roofline (log-spaced OI, attainable GFLOP/s)."""
    oi = np.geomspace(oi_min, oi_max, points)
    perf = np.minimum(machine.peak_gflops, oi * machine.dram_bw_gbs)
    return oi, perf


def example_from_paper() -> float:
    """The worked example of Section 2: 0.1 FLOP/B on a 200 GFLOP/s,
    30 GB/s machine is capped at 3 GFLOP/s."""
    demo = MachineSpec(
        name="roofline-demo", cores=1, threads_per_core=1, freq_ghz=1.0,
        simd_width=1, fma=False, dram_bw_gbs=30.0, explicit_peak_gflops=200.0,
    )
    return attainable(demo, 0.1)
