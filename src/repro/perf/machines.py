"""Machine specifications of every platform in the paper (Tables 1-2).

The paper's headline results are hardware results; we reproduce their
*structure* with machine models.  :class:`MachineSpec` describes one
compute node (chip), :class:`ClusterSpec` an installation.

All numbers below are from the paper (Section 4) or the cited BGQ
documentation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """One compute node.

    ``peak_gflops`` may be given explicitly (vendor nominal) or derived
    from ``cores * freq * simd_width * flops_per_lane_cycle``.
    """

    name: str
    cores: int
    threads_per_core: int
    freq_ghz: float
    simd_width: int  #: native SIMD lanes (QPX: 4 doubles)
    fma: bool  #: fused multiply-add available
    dram_bw_gbs: float  #: measured DRAM bandwidth
    l2_bw_gbs: float | None = None
    explicit_peak_gflops: float | None = None
    #: DRAM bandwidth one core can draw alone (a single in-order A2 core
    #: cannot saturate the node's memory controllers; ~1/4 of the node
    #: bandwidth is typical).  ``None`` defaults to ``dram_bw_gbs / 4``.
    core_stream_bw_gbs: float | None = None
    #: SIMD width actually exploited by the ported software (the QPX->SSE
    #: macro conversion uses SSE, not AVX -- paper Section 8.1).
    used_simd_width: int | None = None

    @property
    def flops_per_lane_cycle(self) -> int:
        return 2 if self.fma else 1

    @property
    def peak_gflops(self) -> float:
        """Nominal node peak."""
        if self.explicit_peak_gflops is not None:
            return self.explicit_peak_gflops
        return (
            self.cores
            * self.freq_ghz
            * self.simd_width
            * self.flops_per_lane_cycle
        )

    @property
    def peak_per_core_gflops(self) -> float:
        return self.peak_gflops / self.cores

    @property
    def scalar_peak_per_core_gflops(self) -> float:
        """Peak of non-vectorized code (one lane, FMA allowed)."""
        return self.freq_ghz * self.flops_per_lane_cycle

    @property
    def single_core_stream_bw(self) -> float:
        return self.core_stream_bw_gbs or self.dram_bw_gbs / 4.0

    @property
    def ridge_point(self) -> float:
        """Roofline ridge: FLOP/B above which kernels are compute-bound."""
        return self.peak_gflops / self.dram_bw_gbs

    @property
    def simd_utilization(self) -> float:
        """Fraction of nominal SIMD width the software exploits."""
        used = self.used_simd_width or self.simd_width
        return used / self.simd_width


#: IBM Blue Gene/Q compute chip (BQC): 16 cores + 2 (OS/spare), 4-way SMT,
#: 1.6 GHz, QPX 4-wide FMA -> 204.8 GFLOP/s; measured 28 GB/s DRAM and
#: 185 GB/s L2 (paper Table 2).
BGQ_NODE = MachineSpec(
    name="IBM BGQ (BQC)",
    cores=16,
    threads_per_core=4,
    freq_ghz=1.6,
    simd_width=4,
    fma=True,
    dram_bw_gbs=28.0,
    l2_bw_gbs=185.0,
)

#: Cray XE6 "Monte Rosa" node: 2P AMD Bulldozer (Interlagos), nominal
#: 540 GFLOP/s, measured 60 GB/s aggregate (paper Section 4; ridge 9).
MONTE_ROSA_NODE = MachineSpec(
    name="Cray XE6 (Monte Rosa)",
    cores=32,
    threads_per_core=1,
    freq_ghz=2.1,
    simd_width=4,
    fma=True,
    dram_bw_gbs=60.0,
    explicit_peak_gflops=540.0,
    used_simd_width=2,  # SSE port of the QPX kernels (double precision)
)

#: Cray XC30 "Piz Daint" node: 2P Intel Sandy Bridge, nominal 670 GFLOP/s,
#: measured 80 GB/s (paper Section 4; ridge 8.4).  Sandy Bridge has no
#: FMA; AVX peak counts separate add+mul pipes.
PIZ_DAINT_NODE = MachineSpec(
    name="Cray XC30 (Piz Daint)",
    cores=16,
    threads_per_core=2,
    freq_ghz=2.6,
    simd_width=4,
    fma=False,
    dram_bw_gbs=80.0,
    explicit_peak_gflops=670.0,
    used_simd_width=2,  # SSE port; AVX would be needed for nominal peak
)


@dataclass(frozen=True)
class ClusterSpec:
    """An installation: racks of nodes plus network/I/O characteristics."""

    name: str
    node: MachineSpec
    nodes_per_rack: int
    racks: int
    #: 5D-torus link bandwidth per direction (paper: 2 GB/s send + 2 recv).
    link_bw_gbs: float = 2.0
    #: I/O bandwidth per dedicated I/O node (paper: 4 GB/s).
    io_bw_per_node_gbs: float = 4.0
    io_nodes_per_rack: int = 8

    @property
    def nodes(self) -> int:
        return self.nodes_per_rack * self.racks

    @property
    def cores(self) -> int:
        return self.nodes * self.node.cores

    @property
    def peak_pflops(self) -> float:
        return self.nodes * self.node.peak_gflops / 1.0e6

    @property
    def io_bw_gbs(self) -> float:
        return self.io_bw_per_node_gbs * self.io_nodes_per_rack * self.racks

    def with_racks(self, racks: int) -> "ClusterSpec":
        """The same installation restricted to ``racks`` racks."""
        return ClusterSpec(
            name=f"{self.name} ({racks} racks)",
            node=self.node,
            nodes_per_rack=self.nodes_per_rack,
            racks=racks,
            link_bw_gbs=self.link_bw_gbs,
            io_bw_per_node_gbs=self.io_bw_per_node_gbs,
            io_nodes_per_rack=self.io_nodes_per_rack,
        )


#: Table 1 installations: a BGQ rack is 32 node boards x 32 nodes = 1024
#: nodes = 0.21 PFLOP/s.
SEQUOIA = ClusterSpec(name="Sequoia", node=BGQ_NODE, nodes_per_rack=1024, racks=96)
JUQUEEN = ClusterSpec(name="Juqueen", node=BGQ_NODE, nodes_per_rack=1024, racks=24)
ZRL = ClusterSpec(name="ZRL", node=BGQ_NODE, nodes_per_rack=1024, racks=1)

#: CSCS resources used in Section 8.1 (0.34 / 0.28 PFLOP/s available).
PIZ_DAINT = ClusterSpec(
    name="Piz Daint", node=PIZ_DAINT_NODE, nodes_per_rack=507, racks=1
)
MONTE_ROSA = ClusterSpec(
    name="Monte Rosa", node=MONTE_ROSA_NODE, nodes_per_rack=519, racks=1
)

BGQ_INSTALLATIONS = (SEQUOIA, JUQUEEN, ZRL)


def machines_table() -> list[dict]:
    """Rows of paper Table 1."""
    return [
        {
            "Name": c.name,
            "Racks": c.racks,
            "Cores": c.cores,
            "PFLOP/s": round(c.peak_pflops, 1),
        }
        for c in BGQ_INSTALLATIONS
    ]


def bqc_table() -> dict:
    """Rows of paper Table 2."""
    n = BGQ_NODE
    return {
        "Cores": f"{n.cores}, {n.threads_per_core}-way SMT, {n.freq_ghz} GHz",
        "Peak performance": f"{n.peak_gflops:.1f} GFLOP/s",
        "L2 peak bandwidth": f"{n.l2_bw_gbs:.0f} GB/s",
        "Memory peak bandwidth": f"{n.dram_bw_gbs:.0f} GB/s",
    }
