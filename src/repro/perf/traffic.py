"""Compulsory-memory-traffic model: naive vs reordered layouts (Table 3).

The paper's Table 3 quantifies why the data reordering of Section 5
matters: grouping elements into 32^3 AoS blocks (re-indexed by an SFC) and
sweeping them through SoA ring buffers raises the RHS operational
intensity from 1.4 to 21 FLOP/B.

Both traffic estimates are built from first principles here:

*naive* (cell-by-cell over a large row-major AoS array)
    every stencil tap streams from DRAM; taps along y and z touch one
    cache line each (stride >> line), taps along x are line-contiguous.

*reordered* (blocked + ring buffers)
    compulsory traffic only: each block streams its cells + ghosts in
    once, writes its output once, and spills the per-thread temporaries
    (ring buffers exceed L1, paper Section 6 "Enhancing ILP").
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernels import CELL_BYTES, DT, LINE_BYTES, RHS, STENCIL, UP, KernelModel


@dataclass(frozen=True)
class TrafficEstimate:
    """Bytes of DRAM traffic per cell per kernel evaluation."""

    kernel: str
    naive_bytes: float
    reordered_bytes: float
    flops: float

    @property
    def naive_oi(self) -> float:
        return self.flops / self.naive_bytes

    @property
    def reordered_oi(self) -> float:
        return self.flops / self.reordered_bytes

    @property
    def gain(self) -> float:
        """Operational-intensity improvement factor."""
        return self.reordered_oi / self.naive_oi


def rhs_traffic(block_size: int = 32) -> TrafficEstimate:
    """RHS traffic per cell.

    naive: with no reordering there is no reuse at all -- the minus and
    plus WENO reconstructions issue their 5-tap gathers independently
    (10 taps per direction per cell).  Along y and z each tap pulls its
    own cache line; along x the taps are contiguous (the 8-cell union
    spans ~2.75 lines including misalignment).  Output written streaming.

    reordered: block + ghost-slab read, the AoS/SoA conversion round trip,
    the per-thread temporary-area round trip, the ring-buffer spill (six
    slices of seven quantities exceed L1 -- paper Section 6), and the
    output write-back.
    """
    union = 2 * STENCIL + 2  # 8-cell union of both biased stencils
    taps = 10  # 5-tap minus + 5-tap plus gathers, no reuse
    lines_x = union * CELL_BYTES / LINE_BYTES + 1.0
    naive = (lines_x + taps + taps) * LINE_BYTES + CELL_BYTES

    b = block_size
    ghost_factor = ((b + 2 * STENCIL) ** 3 - b**3) / b**3
    reordered = (
        CELL_BYTES * (1.0 + ghost_factor)  # block + ghosts in
        + 2 * CELL_BYTES  # AoS/SoA conversion round trip
        + 2 * CELL_BYTES  # per-thread temporary area round trip
        + CELL_BYTES  # ring-buffer spill (6 slices x 7 quantities > L1)
        + CELL_BYTES  # RHS output write-back
    )
    return TrafficEstimate("RHS", naive, reordered, RHS.flops_per_cell)


def dt_traffic(l2_resident_fraction: float = 0.75) -> TrafficEstimate:
    """DT traffic per cell.

    naive: one streaming read of the full state (28 B).

    reordered: the DT sweep immediately follows the UP sweep in the step
    loop; with blocks re-indexed along the SFC a fraction of them is still
    L2-resident (32 MB L2 vs the node working set), so only
    ``1 - l2_resident_fraction`` of the state is re-fetched from DRAM.
    The default reproduces the paper's measured 5.1 FLOP/B.
    """
    naive = float(CELL_BYTES)
    reordered = CELL_BYTES * (1.0 - l2_resident_fraction)
    return TrafficEstimate("DT", naive, reordered, DT.flops_per_cell)


def up_traffic() -> TrafficEstimate:
    """UP traffic per cell per stage.

    Pure streaming with no reuse to exploit: read state + RK register +
    RHS, write state + register -- 5 x 28 B either way.  This is why the
    reordering gain for UP is exactly 1x in Table 3.
    """
    bytes_ = 5.0 * CELL_BYTES
    return TrafficEstimate("UP", bytes_, bytes_, UP.flops_per_cell)


def table3(block_size: int = 32) -> list[TrafficEstimate]:
    """The three rows of paper Table 3."""
    return [rhs_traffic(block_size), dt_traffic(), up_traffic()]


def traffic_for(kernel: KernelModel, block_size: int = 32) -> TrafficEstimate:
    """Traffic estimate of one kernel by name (keyed into Table 3)."""
    for est in table3(block_size):
        if est.kernel == kernel.name:
            return est
    raise KeyError(f"no traffic model for kernel {kernel.name}")
