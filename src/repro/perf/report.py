"""Table formatting helpers shared by the benchmark harness."""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def format_table(rows: Iterable[Mapping], title: str | None = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Render a list of dict rows as an aligned text table.

    Rows may have heterogeneous keys: the columns are the union of all
    row keys in first-seen order, and missing cells render blank.
    """
    rows = list(rows)
    if not rows:
        return "(empty table)"
    cols: list[str] = []
    seen = set()
    for row in rows:
        for c in row.keys():
            if c not in seen:
                seen.add(c)
                cols.append(c)
    rendered = []
    for row in rows:
        rendered.append(
            [
                floatfmt.format(v) if isinstance(v, float) else str(v)
                for v in (row.get(c, "") for c in cols)
            ]
        )
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def compare_row(name: str, paper: float, model: float, unit: str = "") -> dict:
    """A paper-vs-model comparison row with relative deviation."""
    dev = (model - paper) / paper if paper else float("nan")
    return {
        "quantity": name,
        "paper": paper,
        "model": model,
        "unit": unit,
        "deviation [%]": 100.0 * dev,
    }
