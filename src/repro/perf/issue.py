"""Instruction-issue upper bounds (paper Table 8).

The BQC core issues at most one QPX instruction per cycle; the peak
assumes every such instruction is a 4-wide FMA (8 FLOP).  A kernel whose
QPX stream has an average per-lane density of ``d`` FLOP/instruction can
therefore reach at most

    peak fraction = d * simd_width / (simd_width * flops_per_lane)
                  = d / flops_per_lane,

i.e. ``d/2`` with FMA.  The paper analyzes the compiler-generated assembly
of the five RHS substages (CONV/WENO/HLLE/SUM/BACK) and concludes the RHS
cannot exceed 76 % of peak -- "it is impossible to achieve higher peak
fractions as the FLOP/instruction density is not high enough".
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernels import RHS_STAGES, StageMix
from .machines import BGQ_NODE, MachineSpec


@dataclass(frozen=True)
class IssueBound:
    """Issue-rate bound of one kernel stage."""

    stage: str
    weight: float
    flop_per_instr: float  #: per-lane density
    simd_width: int
    peak_fraction: float


#: FLOP per lane per cycle the *peak* assumes.  On BGQ this is the QPX
#: FMA (2); Sandy Bridge's nominal peak likewise counts 2 per lane (dual
#: add+mul ports), so the divisor is 2 on every platform in the paper.
_PEAK_FLOPS_PER_LANE_CYCLE = 2.0


def stage_bound(stage: StageMix, machine: MachineSpec = BGQ_NODE) -> IssueBound:
    """Issue bound of one RHS substage on ``machine``."""
    frac = stage.flop_per_instr / _PEAK_FLOPS_PER_LANE_CYCLE
    return IssueBound(
        stage=stage.name,
        weight=stage.weight,
        flop_per_instr=stage.flop_per_instr,
        simd_width=machine.simd_width,
        peak_fraction=frac,
    )


def rhs_issue_bounds(machine: MachineSpec = BGQ_NODE) -> list[IssueBound]:
    """Per-stage bounds plus the weighted ALL row (paper Table 8)."""
    rows = [stage_bound(s, machine) for s in RHS_STAGES]
    wsum = sum(s.weight for s in RHS_STAGES)
    all_density = sum(s.weight * s.flop_per_instr for s in RHS_STAGES) / wsum
    rows.append(
        IssueBound(
            stage="ALL",
            weight=1.0,
            flop_per_instr=all_density,
            simd_width=machine.simd_width,
            peak_fraction=all_density / _PEAK_FLOPS_PER_LANE_CYCLE,
        )
    )
    return rows


def rhs_issue_bound_fraction(machine: MachineSpec = BGQ_NODE) -> float:
    """The ALL-row bound (0.755 on BGQ -- the paper rounds to 76 %)."""
    return rhs_issue_bounds(machine)[-1].peak_fraction
