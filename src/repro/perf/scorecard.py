"""The reproduction scorecard: every headline number, paper vs model.

One function gathers the full set of published performance quantities and
their model reproductions with relative deviations -- the quantitative
summary behind EXPERIMENTS.md, computable in one call (and asserted as a
whole by the test suite, so a regression in any model shows up as a
scorecard failure).
"""

from __future__ import annotations

from dataclasses import dataclass

from .issue import rhs_issue_bound_fraction
from .kernels import DT, RHS, UP
from .machines import BGQ_NODE, SEQUOIA
from .network import dump_analysis, overlap_analysis
from .scaling import (
    cluster_perf,
    core_perf,
    overall_perf,
    table9,
    table10,
    throughput_cells_per_second,
    time_per_step,
)
from .traffic import table3


@dataclass(frozen=True)
class ScorecardRow:
    quantity: str
    paper: float
    model: float
    unit: str = ""
    #: acceptable relative deviation for this quantity
    tolerance: float = 0.10

    @property
    def deviation(self) -> float:
        if self.paper == 0:
            return float("inf")
        return (self.model - self.paper) / self.paper

    @property
    def within_tolerance(self) -> bool:
        return abs(self.deviation) <= self.tolerance


def reproduction_scorecard() -> list[ScorecardRow]:
    """All headline quantities of the paper's evaluation."""
    t3 = {e.kernel: e for e in table3()}
    t10 = {r["machine"]: r for r in table10()}
    t9 = table9()
    rows = [
        # Abstract / Section 8 headliners.
        ScorecardRow("RHS PFLOP/s on 96 racks", 10.99,
                     cluster_perf(RHS, 96).gflops / 1e6, "PFLOP/s", 0.05),
        ScorecardRow("RHS fraction of peak, 96 racks", 55.0,
                     100 * cluster_perf(RHS, 96).peak_fraction, "%", 0.05),
        ScorecardRow("ALL PFLOP/s on 96 racks", 10.14,
                     overall_perf(96).gflops / 1e6, "PFLOP/s", 0.10),
        ScorecardRow("throughput", 721e9,
                     throughput_cells_per_second(96), "cells/s", 0.05),
        ScorecardRow("time per step (13.2e12 cells)", 18.3,
                     time_per_step(13.2e12, 96), "s", 0.05),
        # Table 3.
        ScorecardRow("RHS OI naive", 1.4, t3["RHS"].naive_oi, "FLOP/B", 0.25),
        ScorecardRow("RHS OI reordered", 21.0, t3["RHS"].reordered_oi,
                     "FLOP/B", 0.15),
        ScorecardRow("RHS reordering gain", 15.0, t3["RHS"].gain, "x", 0.15),
        ScorecardRow("DT reordering gain", 3.9, t3["DT"].gain, "x", 0.10),
        # Table 7.
        ScorecardRow("RHS core QPX", 8.27, core_perf(RHS).gflops,
                     "GFLOP/s", 0.03),
        ScorecardRow("RHS core C++", 2.21,
                     core_perf(RHS, vectorized=False).gflops, "GFLOP/s", 0.03),
        ScorecardRow("DT core QPX", 1.96, core_perf(DT).gflops,
                     "GFLOP/s", 0.03),
        ScorecardRow("UP core QPX", 0.29, core_perf(UP).gflops,
                     "GFLOP/s", 0.10),
        # Table 8.
        ScorecardRow("RHS issue bound", 76.0,
                     100 * rhs_issue_bound_fraction(), "%", 0.02),
        # Table 9.
        ScorecardRow("WENO fusion rate gain", 1.2,
                     t9["gflops_improvement"], "x", 0.05),
        ScorecardRow("WENO fusion time gain", 1.3,
                     t9["time_improvement"], "x", 0.05),
        # Table 10.
        ScorecardRow("Piz Daint RHS", 269.0,
                     t10["Cray XC30 (Piz Daint)"]["RHS [GFLOP/s]"],
                     "GFLOP/s", 0.08),
        ScorecardRow("Monte Rosa RHS", 201.0,
                     t10["Cray XE6 (Monte Rosa)"]["RHS [GFLOP/s]"],
                     "GFLOP/s", 0.05),
        # Ridge point (Section 4).
        ScorecardRow("BQC ridge point", 7.3, BGQ_NODE.ridge_point,
                     "FLOP/B", 0.02),
        # Claims (Sections 5/6): bounds expressed as ratios to the claim.
        ScorecardRow("compute/comm overlap ratio (>=10 claimed)", 10.0,
                     min(overlap_analysis(512).ratio, 10.0), "x", 0.01),
        ScorecardRow("dump fraction of runtime (<=1% claimed)", 0.01,
                     max(dump_analysis().dump_fraction_of_runtime, 0.01),
                     "", 0.01),
        # State-of-the-art comparison (Section 7).
        ScorecardRow("cores", 1.6e6, float(SEQUOIA.cores), "", 0.03),
    ]
    return rows


def scorecard_ok() -> bool:
    """True iff every scorecard row is within its tolerance."""
    return all(r.within_tolerance for r in reproduction_scorecard())


def format_scorecard() -> str:
    """Human-readable scorecard table."""
    from .report import format_table

    rows = [
        {
            "quantity": r.quantity,
            "paper": r.paper,
            "model": r.model,
            "unit": r.unit,
            "dev [%]": 100 * r.deviation,
            "ok": "yes" if r.within_tolerance else "NO",
        }
        for r in reproduction_scorecard()
    ]
    return format_table(rows, "Reproduction scorecard (paper vs model)",
                        floatfmt="{:.4g}")
