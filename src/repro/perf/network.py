"""Network and I/O models of the Blue Gene/Q installation.

"BQCs are placed in a five-dimensional network topology, with a network
bandwidth of 2 GB/s for sending and 2 GB/s for receiving data ...  Each
rack features additional BQC nodes for I/O, with an I/O bandwidth of
4 GB/s per node." (paper Section 4)

These models quantify the claims the paper makes about communication and
I/O being hidden:

* the six halo messages (3-30 MB) transfer in a time one order of
  magnitude below the interior-compute time they overlap with
  ("the time spent in the node layer is expected to be one order of
  magnitude larger than the communication time");
* the DT allreduce costs microseconds on the BGQ collective network yet
  serializes the DT kernel (Table 5's 18 % -> 7 % drop);
* compressed dumps take ~1 % of run time where uncompressed dumps would
  take the 10-100x longer the compression scheme saves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .kernels import CELL_BYTES, RHS, STENCIL
from .machines import SEQUOIA, ClusterSpec
from .scaling import cluster_perf


@dataclass(frozen=True)
class TorusNetwork:
    """The BGQ 5D torus, reduced to what the halo exchange exercises."""

    link_bw_gbs: float = 2.0  #: per direction, send and receive each
    dimensions: int = 5
    #: Per-hop latency of the BGQ torus router (~40 ns) plus software
    #: overhead per message (~1 us MPI).
    hop_latency_s: float = 40e-9
    message_overhead_s: float = 1e-6

    def torus_extents(self, nodes: int) -> tuple[int, ...]:
        """A near-balanced 5D factorization of the node count."""
        dims = [1] * self.dimensions
        n = nodes
        f = 2
        factors = []
        while f * f <= n:
            while n % f == 0:
                factors.append(f)
                n //= f
            f += 1
        if n > 1:
            factors.append(n)
        for fac in sorted(factors, reverse=True):
            dims[dims.index(min(dims))] *= fac
        return tuple(sorted(dims, reverse=True))

    def average_hops(self, nodes: int) -> float:
        """Mean torus distance between random nodes (quarter extent per
        dimension, summed)."""
        return sum(e / 4.0 for e in self.torus_extents(nodes))

    def point_to_point_time(self, message_bytes: float, hops: float = 1.0) -> float:
        """Seconds to deliver one message (bandwidth + latency terms)."""
        return (
            self.message_overhead_s
            + hops * self.hop_latency_s
            + message_bytes / (self.link_bw_gbs * 1e9)
        )

    def allreduce_time(self, nodes: int, payload_bytes: float = 8.0) -> float:
        """Scalar allreduce on the combining collective network: a tree
        traversal of depth log2(nodes)."""
        depth = math.ceil(math.log2(max(nodes, 2)))
        return depth * (self.hop_latency_s * 4 + payload_bytes / (self.link_bw_gbs * 1e9)) + self.message_overhead_s


def halo_message_bytes(subdomain_cells: int) -> float:
    """Size of one face message for a cubic per-node subdomain.

    The paper quotes 3-30 MB per message; a 512^3 per-node subdomain gives
    ghost slabs of 3 x 512^2 cells x 28 B = 22 MB.
    """
    return STENCIL * subdomain_cells**2 * CELL_BYTES


@dataclass
class CommComputeOverlap:
    """Halo-exchange vs interior-compute comparison for one configuration."""

    subdomain_cells: int
    message_bytes: float
    comm_seconds: float
    compute_seconds: float

    @property
    def ratio(self) -> float:
        """compute / comm -- the paper expects ~one order of magnitude."""
        return self.compute_seconds / self.comm_seconds


def overlap_analysis(
    subdomain_cells: int = 512,
    network: TorusNetwork | None = None,
    racks: int = 96,
    cluster: ClusterSpec = SEQUOIA,
) -> CommComputeOverlap:
    """Is the halo exchange hidden behind interior compute?

    Communication: six simultaneous face messages through distinct torus
    links (BGQ routes each direction independently), so the wall time is
    one message's time.  Compute: the interior RHS evaluation at the
    modeled cluster rate.
    """
    network = network or TorusNetwork()
    msg = halo_message_bytes(subdomain_cells)
    comm = network.point_to_point_time(msg, hops=1.0)
    rhs_rate = cluster_perf(RHS, racks, cluster).peak_fraction * (
        cluster.node.peak_gflops * 1e9
    )
    interior_cells = max(subdomain_cells - 2 * STENCIL, 1) ** 3
    compute = interior_cells * RHS.flops_per_cell / rhs_rate
    return CommComputeOverlap(
        subdomain_cells=subdomain_cells,
        message_bytes=msg,
        comm_seconds=comm,
        compute_seconds=compute,
    )


@dataclass
class DumpModel:
    """I/O time of one production data dump."""

    uncompressed_bytes: float
    compressed_bytes: float
    io_seconds_compressed: float
    io_seconds_uncompressed: float
    steps_between_dumps: int
    step_seconds: float

    @property
    def io_time_saving(self) -> float:
        return self.io_seconds_uncompressed / self.io_seconds_compressed

    @property
    def dump_fraction_of_runtime(self) -> float:
        """Fraction of wall time spent dumping (paper: <= 4-5 %, < 1 %
        for the compression itself)."""
        return self.io_seconds_compressed / (
            self.io_seconds_compressed
            + self.steps_between_dumps * self.step_seconds
        )


def dump_analysis(
    total_cells: float = 13.2e12,
    rate_p: float = 15.0,
    rate_gamma: float = 125.0,
    steps_between_dumps: int = 100,
    step_seconds: float = 18.3,
    cluster: ClusterSpec = SEQUOIA,
) -> DumpModel:
    """Model one (p, Gamma) dump at production scale.

    Uncompressed: two float32 fields of ``total_cells``; the paper's 7.9 TB
    for a 9-unit simulation corresponds to many dumps -- here we model a
    single dump.  I/O bandwidth: the installation's aggregate I/O-node
    bandwidth.
    """
    field_bytes = 4.0 * total_cells
    uncompressed = 2.0 * field_bytes
    compressed = field_bytes / rate_p + field_bytes / rate_gamma
    io_bw = cluster.io_bw_gbs * 1e9
    return DumpModel(
        uncompressed_bytes=uncompressed,
        compressed_bytes=compressed,
        io_seconds_compressed=compressed / io_bw,
        io_seconds_uncompressed=uncompressed / io_bw,
        steps_between_dumps=steps_between_dumps,
        step_seconds=step_seconds,
    )
