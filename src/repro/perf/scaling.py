"""Layer-composition performance model: core -> node -> cluster.

Regenerates the paper's measured-performance tables from three ingredient
models plus a small set of named, calibrated efficiency constants:

* the **issue-rate bound** (:mod:`repro.perf.issue`) caps vectorized
  compute-bound kernels (RHS);
* the **roofline** (:mod:`repro.perf.roofline`) with the traffic model's
  operational intensities caps bandwidth-bound kernels (UP);
* calibrated **pipeline efficiencies** absorb what neither captures
  (FDIV/FSQRT latency chains in DT, load/store stalls in RHS, transpose
  overheads in FWT).  Each constant is documented next to the paper
  measurement it was calibrated against; the benchmarks print model vs
  paper side by side, and EXPERIMENTS.md records the deltas.

Layer degradations (paper Tables 5-6):

* node layer: intra-rank ghost reconstruction costs the RHS ~3 %; the DT
  reduction *gains* from SMT overlap at node scope;
* cluster layer: halo-exchange and allreduce losses grow with the machine
  size (fit to the 1/24/96-rack measurements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .issue import rhs_issue_bound_fraction
from .kernels import DT, FWT, RHS, UP, KernelModel
from .machines import (
    BGQ_NODE,
    ClusterSpec,
    MachineSpec,
    SEQUOIA,
)
from .traffic import traffic_for

# ---------------------------------------------------------------------------
# Calibrated constants (each annotated with its Table 7 / Table 5 anchor).
# ---------------------------------------------------------------------------

#: Fraction of the issue bound the RHS pipeline sustains.
#: QPX: 8.27 GFLOP/s measured / (12.8 * 0.755) bound = 0.858 (Table 7).
#: C++ : 2.21 / (3.2 * 0.755) = 0.914.
RHS_PIPELINE_EFF = {"qpx": 0.858, "scalar": 0.914}

#: DT is dominated by the divide/sqrt latency chain of the sound speed;
#: SIMD helps only 2.2x (Table 7: 0.90 -> 1.96 GFLOP/s per core).
DT_PEAK_FRACTION = {"qpx": 0.153, "scalar": 0.281}
#: On the x86 platforms the out-of-order cores overlap the chain better
#: (Table 10: 18 % / 16 % of peak).
DT_PEAK_FRACTION_X86 = 0.17

#: UP sustains this fraction of its roofline bound (streaming efficiency;
#: Table 7: 0.29 measured / 0.35 bound).
UP_STREAM_EFF = 0.83

#: FWT peak fractions (Table 7: 1.29 / 12.8 = 0.10 QPX, 0.40 / 3.2 scalar).
FWT_PEAK_FRACTION = {"qpx": 0.101, "scalar": 0.125}

#: Node-layer factors (Table 6): ghost reconstruction costs the RHS ~3 %
#: (65 % core -> 62 % node); the DT reduction overlaps across SMT threads
#: at node scope (15 % -> 18 %); UP/FWT unchanged.
NODE_FACTOR = {"RHS": 62.0 / 65.0, "DT": 1.18, "UP": 1.0, "FWT": 1.0}

#: Cluster-layer RHS efficiency vs racks (fit of Table 5/6:
#: 62 % node -> 60 % @ 1 rack -> 57 % @ 24 -> 55 % @ 96).
_RHS_CLUSTER_BASE = 0.968
_RHS_CLUSTER_SLOPE = 0.0123  # per log2(racks)

#: Cluster DT efficiency: the global scalar allreduce serializes
#: (Table 5/6: 18 % node -> 7 % @ 1 rack -> 5 % at scale).
_DT_CLUSTER_1RACK = 7.0 / 18.0
_DT_CLUSTER_SCALED = 5.0 / 18.0

#: Micro-fusion of the WENO kernel (Table 9): removes ~23 % of the issued
#: instructions (manual CSE) and lifts the sustained fraction of the issue
#: bound from 0.795 to 0.92.
WENO_STAGE_BOUND = 1.56 / 2.0  # Table 8 WENO row
WENO_BASELINE_EFF = 0.795  # -> 62 % of peak (Table 9)
WENO_FUSED_EFF = 0.92  # -> 72 % of peak (Table 9)
#: Manual common-subexpression elimination enabled by fusing removes ~11 %
#: of the floating-point work, which together with the rate gain yields
#: the paper's 1.3x cycle improvement.
WENO_FUSED_FLOP_REDUCTION = 0.11


@dataclass(frozen=True)
class KernelPerf:
    """Modeled performance of one kernel at one scope."""

    kernel: str
    gflops: float  #: per the scope's aggregate (core / node / cluster)
    peak_fraction: float


# ---------------------------------------------------------------------------
# Core layer (per core; Table 7)
# ---------------------------------------------------------------------------


def core_perf(kernel: KernelModel, machine: MachineSpec = BGQ_NODE,
              vectorized: bool = True) -> KernelPerf:
    """Per-core performance of one kernel (paper Table 7)."""
    mode = "qpx" if vectorized else "scalar"
    peak = (
        machine.peak_per_core_gflops
        if vectorized
        else machine.scalar_peak_per_core_gflops
    )
    if kernel.name == "RHS":
        g = peak * rhs_issue_bound_fraction(machine) * RHS_PIPELINE_EFF[mode]
    elif kernel.name == "DT":
        if machine is BGQ_NODE or machine.name.startswith("IBM"):
            g = peak * DT_PEAK_FRACTION[mode]
        else:
            g = peak * DT_PEAK_FRACTION_X86
    elif kernel.name == "UP":
        oi = traffic_for(UP).reordered_oi
        bw_per_core = machine.dram_bw_gbs / machine.cores
        g = min(peak, oi * bw_per_core) * UP_STREAM_EFF
    elif kernel.name == "FWT":
        g = peak * FWT_PEAK_FRACTION[mode]
    else:
        raise KeyError(f"unknown kernel {kernel.name}")
    return KernelPerf(kernel.name, g, g / machine.peak_per_core_gflops)


def table7(machine: MachineSpec = BGQ_NODE) -> list[dict]:
    """Core-layer C++ vs QPX comparison (paper Table 7)."""
    rows = []
    for kernel in (RHS, DT, UP, FWT):
        scalar = core_perf(kernel, machine, vectorized=False)
        qpx = core_perf(kernel, machine, vectorized=True)
        rows.append(
            {
                "kernel": kernel.name,
                "C++ [GFLOP/s]": scalar.gflops,
                "QPX [GFLOP/s]": qpx.gflops,
                "Peak fraction [%]": 100.0 * qpx.peak_fraction,
                "Improvement": qpx.gflops / scalar.gflops,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Node layer (per node; Table 6, Fig. 9)
# ---------------------------------------------------------------------------


def node_perf(kernel: KernelModel, machine: MachineSpec = BGQ_NODE,
              vectorized: bool = True) -> KernelPerf:
    """Per-node performance (core layer x cores x node-layer factor)."""
    core = core_perf(kernel, machine, vectorized)
    g = core.gflops * machine.cores * NODE_FACTOR.get(kernel.name, 1.0)
    g = min(g, machine.peak_gflops)
    # Bandwidth-bound kernels do not scale past the socket bandwidth.
    oi = None
    if kernel.name in ("UP", "DT"):
        oi = traffic_for(kernel).reordered_oi
    if kernel.name == "UP" and oi is not None:
        g = min(g, oi * machine.dram_bw_gbs * UP_STREAM_EFF)
    return KernelPerf(kernel.name, g, g / machine.peak_gflops)


def _smt_efficiency(threads_per_core: float) -> float:
    """Throughput gain saturation of the BQC's 4-way SMT (latency hiding)."""
    if threads_per_core <= 1:
        return 0.55
    if threads_per_core <= 2:
        return 0.80
    if threads_per_core <= 3:
        return 0.95
    return 1.0


def fig9_weak_scaling(machine: MachineSpec = BGQ_NODE,
                      thread_counts=(1, 2, 4, 8, 16, 32, 64)) -> list[dict]:
    """Node-layer thread scaling of RHS/DT/UP (paper Fig. 9, left).

    RHS and DT scale with cores (SMT hides back-end latency); UP saturates
    at the memory bandwidth -- "lower [scaling] for the UP kernel, caused
    by low FLOP/B ratios".
    """
    rows = []
    for t in thread_counts:
        cores_used = min(t, machine.cores)
        smt = _smt_efficiency(t / cores_used)
        row = {"threads": t}
        for kernel in (RHS, DT, UP):
            if kernel.name == "UP":
                # Bandwidth-bound: cores add streaming capability until
                # the node's memory controllers saturate.
                oi = traffic_for(UP).reordered_oi
                bw = min(
                    cores_used * machine.single_core_stream_bw,
                    machine.dram_bw_gbs,
                )
                g = oi * bw * UP_STREAM_EFF * smt
            else:
                per_core = core_perf(kernel, machine).gflops
                g = per_core * cores_used * smt * NODE_FACTOR.get(kernel.name, 1.0)
            row[kernel.name] = g
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Cluster layer (Tables 5, 6; throughput)
# ---------------------------------------------------------------------------


def _cluster_eff(kernel: str, racks: int) -> float:
    if kernel == "RHS":
        return _RHS_CLUSTER_BASE - _RHS_CLUSTER_SLOPE * math.log2(max(racks, 1))
    if kernel == "DT":
        if racks <= 1:
            return _DT_CLUSTER_1RACK
        return _DT_CLUSTER_SCALED
    return 1.0  # UP: no communication


def cluster_perf(kernel: KernelModel, racks: int,
                 cluster: ClusterSpec = SEQUOIA) -> KernelPerf:
    """Per-kernel cluster performance at ``racks`` racks (Table 5 rows)."""
    node = node_perf(kernel, cluster.node)
    g_node = node.gflops * _cluster_eff(kernel.name, racks)
    nodes = cluster.nodes_per_rack * racks
    g = g_node * nodes
    return KernelPerf(kernel.name, g, g_node / cluster.node.peak_gflops)


def overall_perf(racks: int, cluster: ClusterSpec = SEQUOIA) -> KernelPerf:
    """The ALL column: total FLOPs / total time over a production step."""
    total_flops = 0.0
    total_time = 0.0  # seconds per cell per step, per node
    for kernel in (RHS, DT, UP):
        f = kernel.flops_per_cell_step()
        rate = cluster_perf(kernel, racks, cluster).peak_fraction
        rate_gflops = rate * cluster.node.peak_gflops
        total_flops += f
        total_time += f / (rate_gflops * 1e9)
    g_node = total_flops / total_time / 1e9
    nodes = cluster.nodes_per_rack * racks
    return KernelPerf("ALL", g_node * nodes, g_node / cluster.node.peak_gflops)


def table5(rack_counts=(1, 24, 96), cluster: ClusterSpec = SEQUOIA) -> list[dict]:
    """Paper Table 5: achieved performance at 1 / 24 / 96 racks."""
    rows = []
    for racks in rack_counts:
        row = {"racks": racks}
        for kernel in (RHS, DT, UP):
            perf = cluster_perf(kernel, racks, cluster)
            row[kernel.name + " [%]"] = 100.0 * perf.peak_fraction
            row[kernel.name + " [PFLOP/s]"] = perf.gflops / 1e6
        allp = overall_perf(racks, cluster)
        row["ALL [%]"] = 100.0 * allp.peak_fraction
        row["ALL [PFLOP/s]"] = allp.gflops / 1e6
        rows.append(row)
    return rows


def table6(cluster: ClusterSpec = SEQUOIA) -> list[dict]:
    """Paper Table 6: node-to-cluster degradation (1 node vs 1 rack)."""
    rows = []
    for scope in ("1 rack", "1 node"):
        row = {"scope": scope}
        for kernel in (RHS, DT, UP):
            if scope == "1 node":
                frac = node_perf(kernel, cluster.node).peak_fraction
            else:
                frac = cluster_perf(kernel, 1, cluster).peak_fraction
            row[kernel.name + " [%]"] = 100.0 * frac
        rows.append(row)
    return rows


def table9() -> dict:
    """Paper Table 9: micro-fused vs baseline WENO kernel (modeled)."""
    peak = BGQ_NODE.peak_per_core_gflops
    baseline = peak * WENO_STAGE_BOUND * WENO_BASELINE_EFF
    fused = peak * WENO_STAGE_BOUND * WENO_FUSED_EFF
    gflops_gain = fused / baseline
    time_gain = gflops_gain / (1.0 - WENO_FUSED_FLOP_REDUCTION)
    return {
        "baseline_gflops": baseline,
        "fused_gflops": fused,
        "baseline_peak_frac": baseline / peak,
        "fused_peak_frac": fused / peak,
        "gflops_improvement": gflops_gain,
        "time_improvement": time_gain,
    }


def table10(machines=None) -> list[dict]:
    """Paper Table 10: per-node performance on the CSCS platforms.

    The ported software exploits only SSE width (``used_simd_width``), so
    the RHS fraction is the issue bound x SIMD utilization.
    """
    from .machines import MONTE_ROSA_NODE, PIZ_DAINT_NODE

    machines = machines or (PIZ_DAINT_NODE, MONTE_ROSA_NODE)
    rows = []
    for m in machines:
        rhs_frac = rhs_issue_bound_fraction(m) * m.simd_utilization
        rhs = rhs_frac * m.peak_gflops
        dt = DT_PEAK_FRACTION_X86 * m.peak_gflops
        up = min(
            m.peak_gflops, traffic_for(UP).reordered_oi * m.dram_bw_gbs
        ) * UP_STREAM_EFF
        rows.append(
            {
                "machine": m.name,
                "RHS [GFLOP/s]": rhs,
                "RHS [%]": 100.0 * rhs / m.peak_gflops,
                "DT [GFLOP/s]": dt,
                "DT [%]": 100.0 * dt / m.peak_gflops,
                "UP [GFLOP/s]": up,
                "UP [%]": 100.0 * up / m.peak_gflops,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Throughput / time to solution (Section 7)
# ---------------------------------------------------------------------------


def step_time_per_cell(racks: int, cluster: ClusterSpec = SEQUOIA) -> float:
    """Seconds one node spends per cell per step (all kernels)."""
    t = 0.0
    for kernel in (RHS, DT, UP):
        rate = cluster_perf(kernel, racks, cluster).peak_fraction
        t += kernel.flops_per_cell_step() / (rate * cluster.node.peak_gflops * 1e9)
    return t


def throughput_cells_per_second(racks: int, cluster: ClusterSpec = SEQUOIA) -> float:
    """Aggregate grid-point throughput (paper: 721e9 on 96 racks)."""
    nodes = cluster.nodes_per_rack * racks
    return nodes / step_time_per_cell(racks, cluster)


def time_per_step(total_cells: float, racks: int,
                  cluster: ClusterSpec = SEQUOIA) -> float:
    """Wall seconds per step (paper: 18.3 s for 13.2e12 cells, 96 racks)."""
    return total_cells / throughput_cells_per_second(racks, cluster)
