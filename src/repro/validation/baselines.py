"""Golden-baseline store for the V&V suite.

A baseline is one JSON file per case under ``validation/baselines/``
holding the recorded metric values plus an environment stamp (numpy and
python versions, the mixed-precision dtype policy and the git revision
the values were recorded at).  Tolerances are *not* stored in the
baseline: they are part of the case definition
(:class:`MetricSpec`, see :mod:`repro.validation.cases`), so loosening a
contract is a reviewed code change rather than a data edit.

Checking compares each measured metric against

* the recorded value, within ``atol + rtol * |recorded|`` -- the
  regression contract; and
* optional hard ``lo``/``hi`` bounds -- the physics contract (e.g. the
  measured convergence order must stay >= 2.5 regardless of what was
  recorded).

Hard bounds are enforced in every mode, including ``record``: a baseline
that violates its own physics contract cannot be recorded.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass, field

import numpy as np

from ..physics.state import COMPUTE_DTYPE, STORAGE_DTYPE

#: Directory of the committed golden baselines.
DEFAULT_BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: Baseline-file schema version (bump on incompatible layout changes).
BASELINE_FORMAT = 1


@dataclass(frozen=True)
class MetricSpec:
    """Acceptance contract of one scalar case metric.

    ``rtol``/``atol`` bound the deviation from the *recorded* baseline
    value; ``lo``/``hi`` are hard physical bounds on the measured value
    itself, checked independently of any baseline.
    """

    name: str
    rtol: float = 0.0  #: relative tolerance vs the recorded value
    atol: float = 0.0  #: absolute tolerance vs the recorded value
    lo: float | None = None  #: hard lower bound on the measured value
    hi: float | None = None  #: hard upper bound on the measured value
    description: str = ""  #: one-line meaning, shown in the catalogue

    @property
    def compares_baseline(self) -> bool:
        """Whether this metric is checked against a recorded value."""
        return self.rtol > 0.0 or self.atol > 0.0


@dataclass(frozen=True)
class MetricDiff:
    """Outcome of checking one measured metric against its contract."""

    spec: MetricSpec
    measured: float
    baseline: float | None  #: recorded value (None if absent)
    status: str  #: ``"pass"`` or ``"fail"``
    reason: str = ""  #: human-readable failure cause (empty on pass)

    @property
    def passed(self) -> bool:
        """Whether the metric satisfied its full contract."""
        return self.status == "pass"

    @property
    def delta(self) -> float:
        """Measured minus recorded value (nan without a baseline)."""
        if self.baseline is None:
            return float("nan")
        return self.measured - self.baseline


@dataclass
class CaseBaseline:
    """The recorded golden values of one validation case."""

    case: str
    metrics: dict[str, float] = field(default_factory=dict)
    environment: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to the committed JSON layout (stable key order)."""
        doc = {
            "format": BASELINE_FORMAT,
            "case": self.case,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "environment": self.environment,
        }
        return json.dumps(doc, indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CaseBaseline":
        """Parse a baseline file; raises ``ValueError`` on bad layout."""
        doc = json.loads(text)
        if doc.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"unsupported baseline format {doc.get('format')!r} "
                f"(expected {BASELINE_FORMAT})"
            )
        return cls(
            case=str(doc["case"]),
            metrics={k: float(v) for k, v in doc["metrics"].items()},
            environment=dict(doc.get("environment", {})),
        )


def environment_stamp() -> dict:
    """The provenance stamp written into every recorded baseline."""
    rev = "unknown"
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if proc.returncode == 0 and proc.stdout.strip():
            rev = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        rev = "unknown"
    return {
        "numpy": np.__version__,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "storage_dtype": np.dtype(STORAGE_DTYPE).name,
        "compute_dtype": np.dtype(COMPUTE_DTYPE).name,
        "git_rev": rev,
    }


def baseline_path(case: str, baseline_dir: str | None = None) -> str:
    """Path of the baseline JSON file of ``case``."""
    return os.path.join(baseline_dir or DEFAULT_BASELINE_DIR, f"{case}.json")


def save_baseline(
    baseline: CaseBaseline, baseline_dir: str | None = None
) -> str:
    """Write a baseline file (creating the directory); returns its path.

    Atomic (tmp + fsync + ``os.replace``): baselines gate the
    validation suite, so a half-written JSON must never be observable.
    """
    path = baseline_path(baseline.case, baseline_dir)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(baseline.to_json())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_baseline(
    case: str, baseline_dir: str | None = None
) -> CaseBaseline | None:
    """Load the recorded baseline of ``case``; ``None`` if not recorded."""
    path = baseline_path(case, baseline_dir)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return CaseBaseline.from_json(fh.read())


def compare(
    measured: dict[str, float],
    baseline: CaseBaseline | None,
    specs: tuple[MetricSpec, ...],
) -> list[MetricDiff]:
    """Check measured metrics against their contracts; returns the diffs.

    Every spec yields exactly one :class:`MetricDiff`.  A metric fails if
    it was not measured, is non-finite, violates a hard bound, or (for
    specs with a baseline tolerance) deviates from the recorded value by
    more than ``atol + rtol * |recorded|`` -- including the case of a
    missing recorded value, which in ``check`` mode means the committed
    baselines are stale.
    """
    out: list[MetricDiff] = []
    for spec in specs:
        rec = baseline.metrics.get(spec.name) if baseline is not None else None
        if spec.name not in measured:
            out.append(MetricDiff(spec, float("nan"), rec, "fail",
                                  "metric not measured"))
            continue
        m = float(measured[spec.name])
        reasons: list[str] = []
        if not np.isfinite(m):
            reasons.append("non-finite measurement")
        else:
            if spec.lo is not None and m < spec.lo:
                reasons.append(f"below hard bound lo={spec.lo:g}")
            if spec.hi is not None and m > spec.hi:
                reasons.append(f"above hard bound hi={spec.hi:g}")
            if spec.compares_baseline:
                if rec is None:
                    reasons.append("no recorded baseline value")
                else:
                    tol = spec.atol + spec.rtol * abs(rec)
                    if abs(m - rec) > tol:
                        reasons.append(
                            f"|delta|={abs(m - rec):.3g} > tol={tol:.3g}"
                        )
        out.append(
            MetricDiff(
                spec, m, rec,
                "pass" if not reasons else "fail",
                "; ".join(reasons),
            )
        )
    return out
