"""Suite runner: executes cases, checks baselines, renders scorecards.

Three modes mirror golden-file harnesses of production solvers:

``check``
    Run the case(s), compare every metric against the committed baseline
    plus its hard bounds; any breach fails the run (CLI exit 1).
``record``
    Run the case(s) and (re)write their baseline files.  Hard physical
    bounds are still enforced, so a broken solver cannot be recorded as
    golden.
``diff``
    Like ``check`` but report-only: prints the per-metric deltas without
    failing, for inspecting the impact of an intentional numerics
    change before re-recording.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.report import format_table
from ..telemetry.clock import now
from .baselines import (
    CaseBaseline,
    MetricDiff,
    compare,
    environment_stamp,
    load_baseline,
    save_baseline,
)
from .cases import ValidationCase

#: Execution modes of the runner/CLI.
MODES = ("check", "record", "diff")


@dataclass
class CaseRun:
    """Outcome of executing one validation case in one mode."""

    case: ValidationCase
    mode: str
    metrics: dict
    diffs: list[MetricDiff]
    seconds: float
    baseline_found: bool

    @property
    def passed(self) -> bool:
        """Whether every metric satisfied its contract (diff mode: all)."""
        return all(d.passed for d in self.diffs)

    @property
    def failures(self) -> list[MetricDiff]:
        """The failing metric diffs."""
        return [d for d in self.diffs if not d.passed]


def run_case(
    case: ValidationCase,
    mode: str = "check",
    baseline_dir: str | None = None,
) -> CaseRun:
    """Execute one case and evaluate its metric contracts."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
    t0 = now()
    metrics = case.runner()
    seconds = now() - t0
    if mode == "record":
        baseline = CaseBaseline(
            case=case.name,
            metrics={k: float(v) for k, v in metrics.items()},
            environment=environment_stamp(),
        )
        save_baseline(baseline, baseline_dir)
    else:
        baseline = load_baseline(case.name, baseline_dir)
    diffs = compare(metrics, baseline, case.metrics)
    return CaseRun(
        case=case,
        mode=mode,
        metrics=metrics,
        diffs=diffs,
        seconds=seconds,
        baseline_found=baseline is not None,
    )


def run_suite(
    cases: list[ValidationCase],
    mode: str = "check",
    baseline_dir: str | None = None,
) -> list[CaseRun]:
    """Execute a list of cases in registry order."""
    return [run_case(c, mode=mode, baseline_dir=baseline_dir) for c in cases]


def scorecard_rows(runs: list[CaseRun]) -> list[dict]:
    """Per-metric scorecard rows for :func:`repro.perf.report.format_table`."""
    rows = []
    for run in runs:
        for d in run.diffs:
            rows.append({
                "case": run.case.name,
                "metric": d.spec.name,
                "measured": f"{d.measured:.6g}",
                "baseline": (
                    f"{d.baseline:.6g}" if d.baseline is not None else "-"
                ),
                "tol": (
                    f"{d.spec.atol + d.spec.rtol * abs(d.baseline):.2g}"
                    if d.baseline is not None and d.spec.compares_baseline
                    else "-"
                ),
                "status": "ok" if d.passed else "FAIL",
                "note": d.reason,
            })
    return rows


def format_scorecard(runs: list[CaseRun]) -> str:
    """The full validation scorecard: per-metric table + case summary."""
    lines = [format_table(scorecard_rows(runs), title="validation scorecard")]
    lines.append("")
    for run in runs:
        verdict = "pass" if run.passed else (
            f"FAIL ({len(run.failures)} metric(s))"
        )
        if not run.baseline_found and run.mode != "record":
            verdict += " [no baseline recorded]"
        lines.append(
            f"{run.case.name}: {verdict} in {run.seconds:.2f} s "
            f"[{run.mode}]"
        )
    n_fail = sum(1 for r in runs if not r.passed)
    lines.append(
        f"suite: {len(runs) - n_fail}/{len(runs)} case(s) passed"
    )
    return "\n".join(lines)


def suite_passed(runs: list[CaseRun]) -> bool:
    """Whether the whole run satisfies its contracts (gates the CLI)."""
    return all(r.passed for r in runs)
