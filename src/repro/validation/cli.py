"""Command-line interface of the V&V suite.

Usage::

    python -m repro.validation --suite smoke --check
    python -m repro.validation --case riemann_sod --diff
    python -m repro.validation --suite full --record
    python -m repro.validation --list

Also reachable as ``python -m repro.cli validate <same flags>``.  Exit
status is 0 when every executed case satisfies its contracts (``diff``
mode always exits 0), 1 on a tolerance or hard-bound breach, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys

from .cases import CASES, SUITES, get_case, suite_cases
from .runner import format_scorecard, run_suite, suite_passed


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the validation CLI."""
    ap = argparse.ArgumentParser(
        prog="repro.validation", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--suite", choices=SUITES, default="smoke",
                    help="which case suite to run (default: smoke)")
    ap.add_argument("--case", action="append", default=None,
                    metavar="NAME",
                    help="run only the named case (repeatable; overrides "
                         "--suite)")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--check", dest="mode", action="store_const",
                      const="check",
                      help="compare against committed baselines (default)")
    mode.add_argument("--record", dest="mode", action="store_const",
                      const="record",
                      help="(re)write the baseline files")
    mode.add_argument("--diff", dest="mode", action="store_const",
                      const="diff",
                      help="report deltas without failing")
    ap.set_defaults(mode="check")
    ap.add_argument("--baseline-dir", default=None, metavar="DIR",
                    help="baseline directory (default: the committed "
                         "validation/baselines/)")
    ap.add_argument("--scorecard-out", default=None, metavar="PATH",
                    help="also write the scorecard text to this file")
    ap.add_argument("--list", action="store_true",
                    help="list the case catalogue and exit")
    return ap


def _list_cases() -> str:
    from ..perf.report import format_table

    rows = [
        {
            "case": c.name,
            "suites": ",".join(c.suites),
            "metrics": len(c.metrics),
            "title": c.title,
        }
        for c in CASES.values()
    ]
    return format_table(rows, title="validation case catalogue")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        print(_list_cases())
        return 0
    if args.case:
        try:
            cases = [get_case(name) for name in args.case]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        cases = suite_cases(args.suite)
    runs = run_suite(cases, mode=args.mode,
                     baseline_dir=args.baseline_dir)
    scorecard = format_scorecard(runs)
    print(scorecard)
    if args.scorecard_out:
        with open(args.scorecard_out, "w", encoding="utf-8") as fh:
            fh.write(scorecard + "\n")
    if args.mode == "diff":
        return 0
    return 0 if suite_passed(runs) else 1
