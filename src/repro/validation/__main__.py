"""Entry point: ``python -m repro.validation`` runs the V&V CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
