"""Case registry of canonical V&V problems.

Each :class:`ValidationCase` bundles a runner (producing a flat dict of
scalar metrics), the per-metric acceptance contracts
(:class:`repro.validation.baselines.MetricSpec`) and the suites it
belongs to (``smoke`` is the fast CI subset, ``full`` adds the slower
collapse and stiffened-tube problems).

The catalogue follows the validation lineage of the paper and of
production multiphase solvers:

``riemann_sod``
    Ideal-gas Sod shock tube through the full driver stack, profiled
    against :mod:`repro.physics.exact_riemann`.
``riemann_stiffened`` (full suite)
    Stiffened-gas (liquid EOS) shock tube against the same exact solver
    with nonzero ``p_c``.
``acoustic_convergence``
    Smooth acoustic wave integrated in float64; records the L1 errors at
    two resolutions and the measured convergence order (hard bound
    ``order >= 2.5``).
``interface_advection``
    Liquid/vapor material interface in uniform (p, u) flow; the
    quasi-conservative scheme must keep pressure and velocity free of
    spurious oscillations (Johnsen--Ham invariant).
``conservation_drift``
    Fully periodic cloud-collapse start; audits mass/energy/momentum
    drift against the float32-storage envelope.
``rayleigh_collapse`` (full suite)
    Single-bubble collapse against the Rayleigh collapse time from
    :mod:`repro.physics.rayleigh`.

Driver-backed cases run with ``sanitize="warn"`` and
``telemetry="metrics"`` and export ``sanitizer_violations`` /
``telemetry_steps`` metrics, so every validation run doubles as
sanitizer and telemetry integration coverage.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..physics.state import COMPUTE_DTYPE, GAMMA, RHO, RHOU
from .baselines import MetricSpec


@dataclass(frozen=True)
class ValidationCase:
    """One canonical problem plus its per-metric acceptance contracts."""

    name: str
    title: str  #: one-line description for the catalogue/scorecard
    suites: tuple[str, ...]  #: suites containing this case
    metrics: tuple[MetricSpec, ...]
    runner: Callable[[], dict]  #: produces ``{metric_name: float}``


#: Registry of all validation cases, keyed by name (insertion-ordered).
CASES: dict[str, ValidationCase] = {}

#: Known suite names.
SUITES = ("smoke", "full")


def _register(case: ValidationCase) -> ValidationCase:
    CASES[case.name] = case
    return case


def get_case(name: str) -> ValidationCase:
    """Look up a case by name; raises ``ValueError`` with the catalogue."""
    try:
        return CASES[name]
    except KeyError:
        raise ValueError(
            f"unknown validation case {name!r}; choose from {sorted(CASES)}"
        ) from None


def suite_cases(suite: str) -> list[ValidationCase]:
    """The cases of one suite, in registry order."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; choose from {SUITES}")
    return [c for c in CASES.values() if suite in c.suites]


# -- shared helpers -------------------------------------------------------


def _integration_metrics(result) -> dict:
    """Sanitizer/telemetry integration metrics common to driver cases.

    ``sanitizer_violations`` must stay exactly zero (the canonical
    problems are all well-posed) and ``telemetry_steps`` must agree with
    the number of recorded steps, so a broken sanitizer or telemetry
    wiring fails validation even when the physics is fine.
    """
    out = {"steps": float(len(result.records))}
    report = result.sanitizer_report
    out["sanitizer_violations"] = (
        float(len(report)) if report is not None else float("nan")
    )
    snap = result.telemetry
    out["telemetry_steps"] = (
        float(snap.counters.get("steps", 0))
        if snap is not None else float("nan")
    )
    return out


_INTEGRATION_SPECS = (
    MetricSpec("steps", atol=2.0,
               description="completed driver steps"),
    MetricSpec("sanitizer_violations", atol=0.0, hi=0.0,
               description="numerics-sanitizer findings (must be 0)"),
    MetricSpec("telemetry_steps", atol=2.0,
               description="steps counted by the telemetry tracer"),
)


def _driver_config(**overrides):
    """A :class:`SimulationConfig` with the validation instrumentation on."""
    from ..sim.config import SimulationConfig

    base = dict(sanitize="warn", telemetry="metrics", diag_interval=0)
    base.update(overrides)
    return SimulationConfig(**base)


# -- case: Sod shock tube -------------------------------------------------


def _run_riemann_sod() -> dict:
    """Ideal-gas Sod tube at 64 cells vs the exact Riemann solution."""
    from ..cluster import Simulation
    from ..physics.eos import Material
    from ..physics.exact_riemann import RiemannSide, sample, solve
    from ..sim.diagnostics import pressure_field
    from ..sim.ic import shock_tube

    gas = Material(name="gas", gamma=1.4, pc=0.0)
    nx, t_end = 64, 0.2
    ic = shock_tube(
        {"rho": 1.0, "p": 1.0}, {"rho": 0.125, "p": 0.1},
        x0=0.5, axis=2, material_left=gas, material_right=gas,
    )
    cfg = _driver_config(cells=(8, 8, nx), block_size=8, extent=1.0,
                         max_steps=10_000, t_end=t_end, cfl=0.3)
    res = Simulation(cfg, ic).run()
    rho = res.final_field[4, 4, :, RHO].astype(COMPUTE_DTYPE)
    x = (np.arange(nx) + 0.5) / nx
    sol = solve(RiemannSide(1.0, 0.0, 1.0), RiemannSide(0.125, 0.0, 0.1))
    exact, _, _ = sample(sol, (x - 0.5) / t_end)
    p = pressure_field(res.final_field)[4, 4, :]
    plateau = float(np.median(p[int(0.60 * nx):int(0.78 * nx)]))
    metrics = {
        "l1_rho": float(np.abs(rho - exact).mean()),
        "p_star_plateau": plateau,
        "rho_min": float(rho.min()),
        "rho_max": float(rho.max()),
    }
    metrics.update(_integration_metrics(res))
    return metrics


_register(ValidationCase(
    name="riemann_sod",
    title="Sod shock tube (ideal gas) vs exact Riemann solution",
    suites=("smoke", "full"),
    metrics=(
        MetricSpec("l1_rho", rtol=2e-3, hi=0.03,
                   description="L1 density error vs exact profile"),
        MetricSpec("p_star_plateau", rtol=5e-3, lo=0.28, hi=0.33,
                   description="median star-region pressure"),
        MetricSpec("rho_min", rtol=1e-3, lo=0.115,
                   description="density minimum (oscillation envelope)"),
        MetricSpec("rho_max", rtol=1e-3, hi=1.01,
                   description="density maximum (oscillation envelope)"),
    ) + _INTEGRATION_SPECS,
    runner=_run_riemann_sod,
))


# -- case: stiffened-gas shock tube (full suite) --------------------------


def _run_riemann_stiffened() -> dict:
    """Liquid-EOS (stiffened gas) shock tube vs the exact solver."""
    from ..cluster import Simulation
    from ..physics.eos import LIQUID, Material
    from ..physics.exact_riemann import RiemannSide, sample, solve
    from ..sim.diagnostics import pressure_field
    from ..sim.ic import shock_tube

    liq = Material(name="liq", gamma=LIQUID.gamma, pc=LIQUID.pc)
    nx, t_end = 64, 0.05
    p_l, p_r = 2000.0, 100.0
    ic = shock_tube(
        {"rho": 1000.0, "p": p_l}, {"rho": 1000.0, "p": p_r},
        x0=0.5, axis=2, material_left=liq, material_right=liq,
    )
    cfg = _driver_config(cells=(8, 8, nx), block_size=8, extent=1.0,
                         max_steps=10_000, t_end=t_end, cfl=0.3)
    res = Simulation(cfg, ic).run()
    rho = res.final_field[4, 4, :, RHO].astype(COMPUTE_DTYPE)
    x = (np.arange(nx) + 0.5) / nx
    sol = solve(
        RiemannSide(1000.0, 0.0, p_l, gamma=LIQUID.gamma, pc=LIQUID.pc),
        RiemannSide(1000.0, 0.0, p_r, gamma=LIQUID.gamma, pc=LIQUID.pc),
    )
    exact, _, _ = sample(sol, (x - 0.5) / t_end)
    p = pressure_field(res.final_field)[4, 4, :].astype(COMPUTE_DTYPE)
    # Star region: between the rarefaction tail and the shock, around the
    # initial discontinuity (both acoustic waves move ~6 length units/s).
    lo, hi = int(0.52 * nx), int(0.70 * nx)
    p_star_med = float(np.median(p[lo:hi]))
    metrics = {
        "l1_rho": float(np.abs(rho - exact).mean()),
        "p_star_rel_err": abs(p_star_med - sol.p_star) / sol.p_star,
    }
    metrics.update(_integration_metrics(res))
    return metrics


_register(ValidationCase(
    name="riemann_stiffened",
    title="Stiffened-gas shock tube (liquid EOS) vs exact solution",
    suites=("full",),
    metrics=(
        MetricSpec("l1_rho", rtol=5e-3,
                   description="L1 density error vs exact profile"),
        MetricSpec("p_star_rel_err", rtol=0.05, hi=0.05,
                   description="star-pressure relative error vs exact"),
    ) + _INTEGRATION_SPECS,
    runner=_run_riemann_stiffened,
))


# -- case: acoustic-wave convergence --------------------------------------


def _acoustic_error(nx: int, sanitizer=None) -> float:
    """L1 pressure error of the float64 semi-discrete acoustic wave."""
    from ..core.timestepper import LowStorageRK3
    from ..physics.eos import (
        LIQUID,
        conserved_to_primitive,
        sound_speed,
        total_energy,
    )
    from ..physics.equations import compute_rhs
    from ..physics.state import NQ

    rho0, p0, eps = 1000.0, 100.0, 1.0
    c0 = float(sound_speed(rho0, p0, LIQUID.G, LIQUID.P))

    def profile(xs):
        return np.sin(2 * np.pi * xs) + 0.5 * np.sin(4 * np.pi * xs)

    h = 1.0 / nx
    x = (np.arange(nx) + 0.5) * h
    f = eps * profile(x)
    p = p0 + f
    u = f / (rho0 * c0)
    rho = rho0 + f / c0**2
    U = np.zeros((NQ, 1, 1, nx))
    U[0, 0, 0] = rho
    U[1, 0, 0] = rho * u
    U[4, 0, 0] = total_energy(rho, u, 0.0, 0.0, p, LIQUID.G, LIQUID.P)
    U[5] = LIQUID.G
    U[6] = LIQUID.P

    def rhs_fn(state):
        idx = np.arange(-3, nx + 3) % nx
        line = state[:, 0, 0, idx]
        pad = np.broadcast_to(
            line[:, None, None, :], (NQ, 7, 7, nx + 6)
        ).copy()
        return compute_rhs(pad, h)

    stepper = LowStorageRK3()
    t_end = 0.25 / c0
    t = 0.0
    while t < t_end - 1e-15:
        dt = min(0.3 * h / (c0 * 1.01), t_end - t)
        U = stepper.advance(U, rhs_fn, dt, sanitizer=sanitizer)
        t += dt
    p_num = conserved_to_primitive(U)[4, 0, 0]
    p_exact = p0 + eps * profile(x - c0 * t_end)
    return float(np.abs(p_num - p_exact).mean())


def _run_acoustic_convergence() -> dict:
    """Measured WENO5/HLLE/RK3 convergence on a smooth acoustic wave."""
    from ..analysis.sanitizer import NumericsSanitizer

    sanitizer = NumericsSanitizer(policy="raise")
    err24 = _acoustic_error(24, sanitizer=sanitizer)
    err48 = _acoustic_error(48, sanitizer=sanitizer)
    return {
        "l1_err_24": err24,
        "l1_err_48": err48,
        "order": float(np.log2(err24 / err48)),
        "sanitizer_violations": float(len(sanitizer.report)),
    }


_register(ValidationCase(
    name="acoustic_convergence",
    title="Smooth acoustic wave: L1 errors and measured order",
    suites=("smoke", "full"),
    metrics=(
        MetricSpec("l1_err_24", rtol=1.5e-3,
                   description="L1 pressure error at 24 cells"),
        MetricSpec("l1_err_48", rtol=1.5e-3,
                   description="L1 pressure error at 48 cells"),
        MetricSpec("order", rtol=0.02, lo=2.5,
                   description="measured convergence order (>= 2.5)"),
        MetricSpec("sanitizer_violations", atol=0.0, hi=0.0,
                   description="stage-check findings (must be 0)"),
    ),
    runner=_run_acoustic_convergence,
))


# -- case: interface advection --------------------------------------------


def _run_interface_advection() -> dict:
    """Liquid/vapor interface in uniform (p, u) flow (Johnsen--Ham)."""
    from ..cluster import Simulation
    from ..physics.eos import Material
    from ..sim.diagnostics import pressure_field
    from ..sim.ic import shock_tube

    u0, p0, t_end, nx = 5.0, 100.0, 0.02, 64
    ic = shock_tube(
        {"rho": 1000.0, "p": p0, "u": u0},
        {"rho": 1.0, "p": p0, "u": u0},
        x0=0.4, axis=2,
        material_left=Material("liq", 6.59, 4096.0),
        material_right=Material("vap", 1.4, 1.0),
    )
    cfg = _driver_config(cells=(8, 8, nx), block_size=8, extent=1.0,
                         max_steps=10_000, t_end=t_end)
    res = Simulation(cfg, ic).run()
    fld = res.final_field.astype(COMPUTE_DTYPE)
    p = pressure_field(res.final_field)
    u = fld[..., RHOU] / fld[..., RHO]
    G = fld[4, 4, :, GAMMA]
    x = (np.arange(nx) + 0.5) / nx
    mid = 0.5 * (1.0 / 5.59 + 1.0 / 0.4)
    crossing = float(x[np.argmin(np.abs(G - mid))])
    metrics = {
        "p_osc": float(np.abs(p - p0).max()),
        "u_osc": float(np.abs(u - u0).max()),
        "interface_pos_err": abs(crossing - (0.4 + u0 * t_end)),
    }
    metrics.update(_integration_metrics(res))
    return metrics


_register(ValidationCase(
    name="interface_advection",
    title="Material-interface advection: pressure/velocity oscillations",
    suites=("smoke", "full"),
    metrics=(
        MetricSpec("p_osc", rtol=0.25, hi=0.5,
                   description="max |p - p0| (spurious oscillations)"),
        MetricSpec("u_osc", rtol=0.5, hi=1e-3,
                   description="max |u - u0| (spurious oscillations)"),
        MetricSpec("interface_pos_err", atol=1.0 / 64, hi=2.5 / 64,
                   description="interface position error vs u0 * t"),
    ) + _INTEGRATION_SPECS,
    runner=_run_interface_advection,
))


# -- case: conservation drift ---------------------------------------------


def _run_conservation_drift() -> dict:
    """Fully periodic cloud start: mass/energy/momentum drift audit."""
    from ..cluster import Simulation
    from ..physics.state import ENERGY, RHOV, RHOW, STORAGE_DTYPE
    from ..sim.cloud import Bubble
    from ..sim.ic import cloud_collapse

    n = 16
    ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), 0.2)], p_liquid=1000.0)
    # Smoothed-interface mixture cells transiently carry p < 0 (admissible
    # while p + Pi_mixture > 0), so the collapse cases use a tension-
    # tolerant sanitizer floor instead of the strict p >= 0 default.
    cfg = _driver_config(cells=n, block_size=8, max_steps=10,
                         periodic=(True, True, True),
                         sanitize_p_min=-100.0)
    c = (np.arange(n) + 0.5) / n
    initial = ic(
        c[:, None, None], c[None, :, None], c[None, None, :]
    ).astype(STORAGE_DTYPE).astype(COMPUTE_DTYPE)
    res = Simulation(cfg, ic).run()
    final = res.final_field.astype(COMPUTE_DTYPE)
    mass0, mass1 = initial[..., RHO].sum(), final[..., RHO].sum()
    e0, e1 = initial[..., ENERGY].sum(), final[..., ENERGY].sum()
    mom = max(
        abs(float(final[..., q].sum())) for q in (RHOU, RHOV, RHOW)
    )
    metrics = {
        "mass_drift": abs(mass1 - mass0) / abs(mass0),
        "energy_drift": abs(e1 - e0) / abs(e0),
        # Initial momentum is exactly zero; normalize by rho*c per cell.
        "momentum_drift": mom / (n**3 * 1000.0),
    }
    metrics.update(_integration_metrics(res))
    return metrics


_register(ValidationCase(
    name="conservation_drift",
    title="Periodic conservation audit (float32-storage drift envelope)",
    suites=("smoke", "full"),
    metrics=(
        MetricSpec("mass_drift", atol=5e-8, hi=5e-6,
                   description="relative mass drift over 10 steps"),
        MetricSpec("energy_drift", atol=5e-8, hi=5e-6,
                   description="relative energy drift over 10 steps"),
        MetricSpec("momentum_drift", atol=1e-6, hi=1e-4,
                   description="normalized momentum drift from zero"),
    ) + _INTEGRATION_SPECS,
    runner=_run_conservation_drift,
))


# -- case: Rayleigh single-bubble collapse (full suite) -------------------


def _run_rayleigh_collapse() -> dict:
    """Single-bubble collapse vs the Rayleigh collapse time."""
    from ..cluster import Simulation
    from ..physics.rayleigh import rayleigh_collapse_time
    from ..sim.cloud import Bubble
    from ..sim.ic import cloud_collapse

    R0, p_liquid = 0.3, 1000.0
    tau = rayleigh_collapse_time(R0, 1000.0, p_liquid - 0.0234)
    # Tension-tolerant sanitizer floor: see _run_conservation_drift.
    cfg = _driver_config(cells=16, block_size=8, max_steps=400,
                         t_end=1.5 * tau, num_workers=2, diag_interval=1,
                         sanitize_p_min=-100.0)
    # One-cell interface smoothing (the production CLI default): the
    # unsmoothed 1000:0.02 pressure jump overshoots to negative density
    # in the first RK stages at this 5-cells-per-radius resolution.
    ic = cloud_collapse([Bubble((0.5, 0.5, 0.5), R0)], p_liquid=p_liquid,
                        smoothing=cfg.h)
    res = Simulation(cfg, ic).run()
    vv = res.series("vapor_volume")
    t_min = float(res.times[int(np.argmin(vv))])
    v0 = 4.0 / 3.0 * np.pi * R0**3
    metrics = {
        "collapse_time_rel_err": abs(t_min - tau) / tau,
        "pressure_amplification": float(
            res.series("max_pressure").max() / p_liquid
        ),
        "min_vapor_ratio": float(vv.min() / v0),
    }
    metrics.update(_integration_metrics(res))
    return metrics


_register(ValidationCase(
    name="rayleigh_collapse",
    title="Single-bubble collapse vs Rayleigh collapse time",
    suites=("full",),
    metrics=(
        MetricSpec("collapse_time_rel_err", atol=0.03, hi=0.2,
                   description="|t_collapse - tau_Rayleigh| / tau"),
        MetricSpec("pressure_amplification", rtol=0.1, lo=2.0,
                   description="peak pressure / ambient (focusing)"),
        MetricSpec("min_vapor_ratio", atol=0.05, hi=0.6,
                   description="minimum vapor volume / initial volume"),
    ) + _INTEGRATION_SPECS,
    runner=_run_rayleigh_collapse,
))
