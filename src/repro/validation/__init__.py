"""Declarative V&V subsystem: golden-baseline physics regression suite.

Verification & validation against canonical problems (see
``docs/validation.md``):

* :mod:`repro.validation.cases` -- the case registry (exact Riemann
  shock tubes, acoustic-wave convergence order, interface-advection
  oscillation bounds, Rayleigh single-bubble collapse, conservation
  drift audits);
* :mod:`repro.validation.baselines` -- the golden-baseline JSON store
  with per-metric tolerances, hard physical bounds and environment
  stamping;
* :mod:`repro.validation.runner` -- ``check`` / ``record`` / ``diff``
  execution and the scorecard;
* :mod:`repro.validation.cli` -- ``python -m repro.validation`` (also
  ``python -m repro.cli validate``), exiting nonzero on any breach.

Driver-backed cases run with the numerics sanitizer and telemetry
enabled, so a validation run doubles as integration coverage of both.
"""

from .baselines import (
    DEFAULT_BASELINE_DIR,
    CaseBaseline,
    MetricDiff,
    MetricSpec,
    baseline_path,
    compare,
    environment_stamp,
    load_baseline,
    save_baseline,
)
from .cases import CASES, SUITES, ValidationCase, get_case, suite_cases
from .cli import main
from .runner import (
    CaseRun,
    format_scorecard,
    run_case,
    run_suite,
    scorecard_rows,
    suite_passed,
)

__all__ = [
    "CASES",
    "CaseBaseline",
    "CaseRun",
    "DEFAULT_BASELINE_DIR",
    "MetricDiff",
    "MetricSpec",
    "SUITES",
    "ValidationCase",
    "baseline_path",
    "compare",
    "environment_stamp",
    "format_scorecard",
    "get_case",
    "load_baseline",
    "main",
    "run_case",
    "run_suite",
    "save_baseline",
    "scorecard_rows",
    "suite_cases",
    "suite_passed",
]
