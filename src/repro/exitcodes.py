"""Documented process exit-code taxonomy for the repro CLI.

Supervisors -- the job service, CI jobs, shell scripts, batch schedulers
-- need to classify a failed ``repro`` invocation without parsing a
traceback.  Every CLI entry point maps its failure to one of these
codes; the service's per-job failure *kinds* map onto the same table so
``repro serve`` exits with the code of its most severe job failure.

=====  ==================  ==========================================
code   name                meaning
=====  ==================  ==========================================
0      ok                  success
1      failure             generic / unclassified failure
2      usage               command-line usage error (argparse)
64     invalid             invalid configuration or request
65     data-corrupt        checkpoint / cache entry failed verification
66     deadlock            communication deadlock (watchdog report)
67     rank-lost           a rank process/thread died mid-run
68     exhausted           recovery / retry attempts exhausted
69     poisoned            config quarantined by the circuit breaker
70     numerics            numerics sanitizer violation
75     overload            request shed by admission control
=====  ==================  ==========================================

Codes 64-75 deliberately avoid 126+ (shell/signal range) and stay
stable: scripts may hard-code them.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_INVALID = 64
EXIT_DATA_CORRUPT = 65
EXIT_DEADLOCK = 66
EXIT_RANK_LOST = 67
EXIT_EXHAUSTED = 68
EXIT_POISONED = 69
EXIT_NUMERICS = 70
EXIT_OVERLOAD = 75

#: code -> stable name (the CLI prints ``error[<name>] ...``).
NAMES = {
    EXIT_OK: "ok",
    EXIT_FAILURE: "failure",
    EXIT_USAGE: "usage",
    EXIT_INVALID: "invalid",
    EXIT_DATA_CORRUPT: "data-corrupt",
    EXIT_DEADLOCK: "deadlock",
    EXIT_RANK_LOST: "rank-lost",
    EXIT_EXHAUSTED: "exhausted",
    EXIT_POISONED: "poisoned",
    EXIT_NUMERICS: "numerics",
    EXIT_OVERLOAD: "overload",
}

#: service failure kind -> exit code (see repro.service.workers).
KIND_EXIT = {
    "invalid": EXIT_INVALID,
    "ckpt_corrupt": EXIT_DATA_CORRUPT,
    "cache_corrupt": EXIT_DATA_CORRUPT,
    "deadlock": EXIT_DEADLOCK,
    "rank_crash": EXIT_RANK_LOST,
    "worker_lost": EXIT_RANK_LOST,
    "exhausted": EXIT_EXHAUSTED,
    "poisoned": EXIT_POISONED,
    "numerics": EXIT_NUMERICS,
    "shed": EXIT_OVERLOAD,
}


def classify_exit(exc: BaseException) -> tuple[int, str]:
    """Map an exception to ``(exit_code, name)``.

    SPMD :class:`~repro.cluster.mpi_sim.WorldError` wrappers are
    unwrapped to their most specific primary cause; unknown exceptions
    classify as the generic failure code 1.
    """
    # Imports are deferred and guarded: classification must never be
    # the thing that crashes a failing CLI.
    from .analysis.sanitizer import NumericsViolationError
    from .cluster.mpi_sim import DeadlockError, WorldError
    from .cluster.procs import RankLostError
    from .resilience.detect import CheckpointCorruptError
    from .resilience.inject import InjectedRankCrash
    from .resilience.recover import ResilienceExhaustedError

    if isinstance(exc, ResilienceExhaustedError):
        return EXIT_EXHAUSTED, NAMES[EXIT_EXHAUSTED]
    if isinstance(exc, WorldError):
        ranked = sorted(
            (classify_exit(e) for e in
             (exc.primary_failures or exc.failures).values()),
            key=lambda ce: ce[0] == EXIT_FAILURE,  # specific codes first
        )
        if ranked:
            return ranked[0]
        return EXIT_FAILURE, NAMES[EXIT_FAILURE]

    from .service.cache import CacheCorruptError
    from .service.engine import JobFailedError, JobShedError
    from .service.retry import PoisonedConfigError

    checks: list[tuple[type, int]] = [
        (PoisonedConfigError, EXIT_POISONED),
        (JobShedError, EXIT_OVERLOAD),
        (DeadlockError, EXIT_DEADLOCK),
        (RankLostError, EXIT_RANK_LOST),
        (InjectedRankCrash, EXIT_RANK_LOST),
        (CheckpointCorruptError, EXIT_DATA_CORRUPT),
        (CacheCorruptError, EXIT_DATA_CORRUPT),
        (NumericsViolationError, EXIT_NUMERICS),
        (JobFailedError, None),  # placeholder; resolved below
        (ValueError, EXIT_INVALID),
    ]
    for typ, code in checks:
        if isinstance(exc, typ):
            if typ is JobFailedError:
                code = KIND_EXIT.get(exc.kind, EXIT_FAILURE)
            return code, NAMES[code]
    return EXIT_FAILURE, NAMES[EXIT_FAILURE]
