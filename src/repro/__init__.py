"""repro: reproduction of "11 PFLOP/s Simulations of Cloud Cavitation Collapse".

A CUBISM-MPCF-style finite-volume solver for inviscid compressible
two-phase flow, organized in the paper's three software layers
(:mod:`repro.cluster` / :mod:`repro.node` / :mod:`repro.core`), with the
wavelet-based I/O compression scheme (:mod:`repro.compression`), bubble
cloud simulation setup (:mod:`repro.sim`) and the Blue Gene/Q performance
models that regenerate the paper's evaluation tables (:mod:`repro.perf`).

Quick start::

    from repro.sim import SimulationConfig, build_simulation

    config = SimulationConfig(cells=64, extent=1.0)
    sim = build_simulation(config)
    for step in sim.run(num_steps=100):
        print(step.time, step.diagnostics.max_pressure)

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the system
inventory.
"""

__version__ = "1.0.0"

from . import cluster, compression, core, node, perf, physics, sim  # noqa: F401

__all__ = [
    "cluster",
    "compression",
    "core",
    "node",
    "perf",
    "physics",
    "sim",
    "__version__",
]
