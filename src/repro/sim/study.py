"""Parameter-study harness: cloud strength vs wall-pressure amplification.

The paper closes its physics discussion with: "we consider that this
pressure is correlated with the volume fraction of the bubbles, a subject
of our ongoing investigations" (Section 7).  This module implements that
investigation as a reusable sweep harness: it varies the cloud's vapor
volume fraction (equivalently the interaction parameter beta) at a fixed
grid and driving pressure, runs each configuration through the full
solver stack, and reports the peak wall/flow pressure amplification per
configuration.

The harness is generic: any scalar configuration knob can be swept via
``make_config`` / ``make_ic`` callables, and results serialize to CSV for
external analysis.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

import numpy as np

from .cloud import cloud_interaction_parameter, generate_cloud
from .config import SimulationConfig
from .ic import cloud_collapse

# NOTE: repro.cluster.driver is imported lazily inside run_sweep -- the
# driver itself imports repro.sim.config, so a module-level import here
# would be circular.


@dataclass
class SweepPoint:
    """One configuration's outcome."""

    label: str
    parameters: dict
    peak_flow_pressure: float
    peak_wall_pressure: float
    ke_peak: float
    ke_peak_time: float
    vapor_collapse_fraction: float  #: 1 - V_min / V_0
    steps: int

    def amplification(self, p_ambient: float) -> float:
        return self.peak_wall_pressure / p_ambient


@dataclass
class SweepResult:
    points: list[SweepPoint] = field(default_factory=list)

    def to_csv(self) -> str:
        """Serialize the sweep (flat columns; parameters prefixed)."""
        if not self.points:
            return ""
        param_keys = sorted(
            {k for p in self.points for k in p.parameters}
        )
        cols = ["label", *[f"param_{k}" for k in param_keys],
                "peak_flow_pressure", "peak_wall_pressure", "ke_peak",
                "ke_peak_time", "vapor_collapse_fraction", "steps"]
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(cols)
        for p in self.points:
            writer.writerow(
                [p.label]
                + [p.parameters.get(k, "") for k in param_keys]
                + [p.peak_flow_pressure, p.peak_wall_pressure, p.ke_peak,
                   p.ke_peak_time, p.vapor_collapse_fraction, p.steps]
            )
        return buf.getvalue()


def _summarize(label: str, params: dict, result) -> SweepPoint:
    maxp = result.series("max_pressure")
    wallp = result.series("wall_max_pressure")
    ke = result.series("kinetic_energy")
    vv = result.series("vapor_volume")
    i_ke = int(np.argmax(ke)) if ke.size else 0
    return SweepPoint(
        label=label,
        parameters=params,
        peak_flow_pressure=float(maxp.max()) if maxp.size else float("nan"),
        peak_wall_pressure=float(wallp.max()) if wallp.size else float("nan"),
        ke_peak=float(ke.max()) if ke.size else 0.0,
        ke_peak_time=float(result.times[i_ke]) if ke.size else 0.0,
        vapor_collapse_fraction=(
            float(1.0 - vv.min() / vv[0]) if vv.size and vv[0] > 0 else 0.0
        ),
        steps=len(result.records),
    )


def run_sweep(configs: list[tuple[str, dict, SimulationConfig, object]]) -> SweepResult:
    """Run labeled ``(label, params, config, ic_fn)`` configurations."""
    from ..cluster.driver import Simulation

    out = SweepResult()
    for label, params, config, ic_fn in configs:
        result = Simulation(config, ic_fn).run()
        out.points.append(_summarize(label, params, result))
    return out


def cloud_fraction_sweep(
    bubble_counts=(1, 2, 4, 6),
    cells: int = 24,
    p_liquid: float = 1000.0,
    t_end_factor: float = 1.6,
    seed: int = 2013,
) -> SweepResult:
    """The paper's conjecture as a sweep: wall pressure vs vapor fraction.

    Packs clouds of increasing bubble count (hence vapor volume fraction
    and interaction parameter beta) into the same region near a solid
    wall and measures the wall-pressure amplification of each collapse.
    """
    from ..physics.rayleigh import rayleigh_collapse_time

    configs = []
    for n_bubbles in bubble_counts:
        bubbles = generate_cloud(
            n_bubbles, (0.55, 0.5, 0.5), 0.33, rng=seed,
            r_min=0.07, r_max=0.10,
        )
        beta = cloud_interaction_parameter(bubbles, 0.33)
        alpha = sum(b.volume for b in bubbles) / (4 / 3 * np.pi * 0.33**3)
        tau = rayleigh_collapse_time(
            max(b.radius for b in bubbles), 1000.0, p_liquid
        )
        config = SimulationConfig(
            cells=cells,
            block_size=8,
            max_steps=400,
            t_end=t_end_factor * tau,
            wall=(0, -1),
            diag_interval=1,
        )
        ic = cloud_collapse(bubbles, p_liquid=p_liquid,
                            smoothing=config.h)
        configs.append(
            (
                f"{n_bubbles} bubbles",
                {"n_bubbles": n_bubbles, "beta": round(beta, 2),
                 "vapor_fraction": round(alpha, 4)},
                config,
                ic,
            )
        )
    return run_sweep(configs)
