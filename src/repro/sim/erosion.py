"""Wall erosion/damage accumulation (the paper's stated next step).

"On-going research in our group focuses on coupling material erosion
models with the flow solver for predictive simulations in engineering and
medical applications." (paper Section 9)

This module implements that coupling with the standard incubation-period
cavitation-erosion model (Franc & Riondet, cited by the paper as [21]):
material damage accumulates where the wall pressure exceeds a material
yield threshold, with the accumulated quantity the impulse-energy-like
power law

    damage(y, x) += max(p_wall - p_threshold, 0)^exponent * dt.

The damage map localizes the pits that experiments measure ("they
estimate the damage potential through measurements of surface pits",
paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ErosionModel:
    """Material parameters of the incubation damage law."""

    p_threshold: float  #: yield-like pressure below which no damage occurs
    exponent: float = 2.0  #: impact-energy power law
    name: str = "generic"


#: A work-hardening steel-like material: damage above 4x a 100 bar ambient.
STEEL_LIKE = ErosionModel(p_threshold=400.0, exponent=2.0, name="steel-like")


class WallDamageAccumulator:
    """Accumulates the erosion damage field on one solid wall.

    Parameters
    ----------
    shape:
        In-plane cell extent of the wall patch ``(n1, n2)``.
    h:
        Grid spacing (pit areas are reported in physical units).
    model:
        The material's :class:`ErosionModel`.
    """

    def __init__(self, shape: tuple[int, int], h: float, model: ErosionModel):
        self.shape = tuple(shape)
        self.h = float(h)
        self.model = model
        self.damage = np.zeros(self.shape)
        self.exposure_time = 0.0
        self.peak_pressure = 0.0

    def update(self, wall_pressure: np.ndarray, dt: float) -> None:
        """Accumulate one step's damage from the wall-layer pressure."""
        if wall_pressure.shape != self.shape:
            raise ValueError(
                f"wall pressure shape {wall_pressure.shape} != {self.shape}"
            )
        if dt < 0:
            raise ValueError("dt must be non-negative")
        over = np.maximum(
            wall_pressure.astype(np.float64) - self.model.p_threshold, 0.0
        )
        self.damage += over**self.model.exponent * dt
        self.exposure_time += dt
        self.peak_pressure = max(self.peak_pressure, float(wall_pressure.max()))

    # -- pit statistics (what experiments report) ------------------------

    def pit_mask(self, damage_fraction: float = 0.1) -> np.ndarray:
        """Cells whose damage exceeds ``damage_fraction`` of the maximum."""
        if self.damage.max() == 0.0:
            return np.zeros(self.shape, dtype=bool)
        return self.damage >= damage_fraction * self.damage.max()

    def pit_count(self, damage_fraction: float = 0.1) -> int:
        """Number of connected damage pits (4-connected components)."""
        mask = self.pit_mask(damage_fraction)
        count = 0
        seen = np.zeros_like(mask)
        stack: list[tuple[int, int]] = []
        n1, n2 = self.shape
        for i in range(n1):
            for j in range(n2):
                if mask[i, j] and not seen[i, j]:
                    count += 1
                    stack.append((i, j))
                    seen[i, j] = True
                    while stack:
                        a, b = stack.pop()
                        for da, db in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                            x, y = a + da, b + db
                            if (
                                0 <= x < n1 and 0 <= y < n2
                                and mask[x, y] and not seen[x, y]
                            ):
                                seen[x, y] = True
                                stack.append((x, y))
        return count

    def pitted_area(self, damage_fraction: float = 0.1) -> float:
        """Physical area of the pitted region."""
        return float(self.pit_mask(damage_fraction).sum()) * self.h**2

    def erosion_rate(self) -> float:
        """Mean damage accumulation rate (the incubation-period slope)."""
        if self.exposure_time == 0.0:
            return 0.0
        return float(self.damage.mean() / self.exposure_time)

    def merged(self, other: "WallDamageAccumulator") -> "WallDamageAccumulator":
        """Combine two accumulators covering the same patch (reductions)."""
        if other.shape != self.shape:
            raise ValueError("cannot merge accumulators of different shapes")
        out = WallDamageAccumulator(self.shape, self.h, self.model)
        out.damage = self.damage + other.damage
        out.exposure_time = max(self.exposure_time, other.exposure_time)
        out.peak_pressure = max(self.peak_pressure, other.peak_pressure)
        return out
