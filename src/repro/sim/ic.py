"""Initial-condition builders.

Each builder returns a callable ``fn(z, y, x) -> state`` that the node
layer evaluates at cell centers (broadcastable coordinate arrays in,
AoS state array out).  Provided setups:

* :func:`uniform` -- a single-phase quiescent state;
* :func:`cloud_collapse` -- the paper's production setup: vapor bubbles
  (p = 0.0234 bar, rho = 1) inside pressurized liquid (p = 100 bar,
  rho = 1000), interfaces smoothed over a few cells;
* :func:`shock_tube` -- planar Riemann problems (Sod-type validation);
* :func:`shock_bubble` -- a planar shock approaching a single bubble (the
  predecessor paper's showcase problem).

The returned callables are plain dataclass instances (not closures) so
they can cross a process boundary: the ``procs`` cluster backend
pickles the IC into each spawned rank process (see
:mod:`repro.cluster.procs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..physics.eos import LIQUID, VAPOR, Material, total_energy
from ..physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW
from .cloud import Bubble


def _assemble(rho, u, v, w, p, G, P) -> np.ndarray:
    """Broadcast primitives into an AoS state array."""
    shape = np.broadcast_shapes(
        *(np.shape(a) for a in (rho, u, v, w, p, G, P))
    )
    out = np.empty(shape + (NQ,), dtype=np.float64)
    out[..., RHO] = rho
    out[..., RHOU] = rho * u
    out[..., RHOV] = rho * v
    out[..., RHOW] = rho * w
    out[..., ENERGY] = total_energy(rho, u, v, w, p, G, P)
    out[..., GAMMA] = G
    out[..., PI] = P
    return out


@dataclass(frozen=True)
class UniformIC:
    """Quiescent single-phase state (see :func:`uniform`)."""

    rho: float = 1000.0
    p: float = 100.0
    velocity: tuple[float, float, float] = (0.0, 0.0, 0.0)
    material: Material = LIQUID

    def __call__(self, z, y, x):
        ones = np.ones(
            np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        )
        return _assemble(
            self.rho * ones, self.velocity[2], self.velocity[1],
            self.velocity[0], self.p * ones,
            self.material.G, self.material.P,
        )


def uniform(
    rho: float = 1000.0,
    p: float = 100.0,
    velocity: tuple[float, float, float] = (0.0, 0.0, 0.0),
    material: Material = LIQUID,
):
    """Quiescent single-phase state."""
    return UniformIC(rho=rho, p=p, velocity=velocity, material=material)


def smoothed_indicator(d, width: float):
    """Smoothed Heaviside of a signed distance ``d`` (1 inside).

    ``width`` is the smoothing length; 0 yields a sharp indicator.
    """
    if width <= 0:
        return (np.asarray(d) <= 0).astype(np.float64)
    return 0.5 * (1.0 - np.tanh(np.asarray(d) / width))


@dataclass(frozen=True)
class CloudCollapseIC:
    """The paper's production IC (see :func:`cloud_collapse`)."""

    bubbles: tuple[Bubble, ...]
    liquid: Material = LIQUID
    vapor: Material = VAPOR
    p_liquid: float = 100.0
    p_vapor: float = 0.0234
    rho_liquid: float = 1000.0
    rho_vapor: float = 1.0
    smoothing: float = 0.0

    def __call__(self, z, y, x):
        shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        alpha = np.zeros(shape)  # vapor volume fraction
        for b in self.bubbles:
            d = (
                np.sqrt(
                    (z - b.center[0]) ** 2
                    + (y - b.center[1]) ** 2
                    + (x - b.center[2]) ** 2
                )
                - b.radius
            )
            alpha = np.maximum(alpha, smoothed_indicator(d, self.smoothing))
        rho = alpha * self.rho_vapor + (1.0 - alpha) * self.rho_liquid
        p = alpha * self.p_vapor + (1.0 - alpha) * self.p_liquid
        G = alpha * self.vapor.G + (1.0 - alpha) * self.liquid.G
        P = alpha * self.vapor.P + (1.0 - alpha) * self.liquid.P
        return _assemble(rho, 0.0, 0.0, 0.0, p, G, P)


def cloud_collapse(
    bubbles: list[Bubble],
    liquid: Material = LIQUID,
    vapor: Material = VAPOR,
    p_liquid: float = 100.0,
    p_vapor: float = 0.0234,
    rho_liquid: float = 1000.0,
    rho_vapor: float = 1.0,
    smoothing: float = 0.0,
):
    """The paper's production initial condition (Section 7).

    Material parameters default to the paper's values: vapor gamma = 1.4,
    p_c = 1 bar; liquid gamma = 6.59, p_c = 4096 bar; initial pressures
    0.0234 bar (vapor) and 100 bar (pressurized liquid); zero velocity.

    ``smoothing`` is the interface smoothing length (in physical units,
    typically 1-2 cells); the union of bubbles is taken with a max.
    """
    return CloudCollapseIC(
        bubbles=tuple(bubbles), liquid=liquid, vapor=vapor,
        p_liquid=p_liquid, p_vapor=p_vapor, rho_liquid=rho_liquid,
        rho_vapor=rho_vapor, smoothing=smoothing,
    )


@dataclass(frozen=True)
class ShockTubeIC:
    """Planar Riemann problem (see :func:`shock_tube`)."""

    left: dict
    right: dict
    x0: float = 0.5
    axis: int = 2
    material_left: Material = LIQUID
    material_right: Material = field(default=LIQUID)

    def __call__(self, z, y, x):
        coord = (z, y, x)[self.axis]
        shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        is_left = np.broadcast_to(coord < self.x0, shape)
        rho = np.where(is_left, self.left["rho"], self.right["rho"])
        p = np.where(is_left, self.left["p"], self.right["p"])
        un = np.where(is_left, self.left.get("u", 0.0),
                      self.right.get("u", 0.0))
        G = np.where(is_left, self.material_left.G, self.material_right.G)
        P = np.where(is_left, self.material_left.P, self.material_right.P)
        vel = [0.0, 0.0, 0.0]
        vel[self.axis] = un
        # AoS velocity order in _assemble is (u=x, v=y, w=z).
        return _assemble(rho, vel[2], vel[1], vel[0], p, G, P)


def shock_tube(
    left: dict,
    right: dict,
    x0: float = 0.5,
    axis: int = 2,
    material_left: Material = LIQUID,
    material_right: Material | None = None,
):
    """Planar Riemann problem along ``axis`` split at coordinate ``x0``.

    ``left``/``right`` are dicts with keys ``rho``, ``p`` and optional
    ``u`` (normal velocity).  Distinct materials produce a two-phase
    shock tube.
    """
    return ShockTubeIC(
        left=left, right=right, x0=x0, axis=axis,
        material_left=material_left,
        material_right=material_right or material_left,
    )


@dataclass(frozen=True)
class ShockBubbleIC:
    """Planar shock plus a single bubble (see :func:`shock_bubble`)."""

    bubble: Bubble
    shock_position: float
    p_post: float = 300.0
    rho_post: float = 1100.0
    u_post: float = 5.0
    p_pre: float = 100.0
    rho_pre: float = 1000.0
    p_bubble: float = 0.0234
    rho_bubble: float = 1.0
    axis: int = 2
    smoothing: float = 0.0
    liquid: Material = LIQUID
    vapor: Material = VAPOR

    def __call__(self, z, y, x):
        coord = (z, y, x)[self.axis]
        shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        post = np.broadcast_to(coord < self.shock_position, shape)
        rho = np.where(post, self.rho_post, self.rho_pre)
        p = np.where(post, self.p_post, self.p_pre)
        un = np.where(post, self.u_post, 0.0)
        G = np.full(shape, self.liquid.G)
        P = np.full(shape, self.liquid.P)
        b = self.bubble
        d = (
            np.sqrt(
                (z - b.center[0]) ** 2
                + (y - b.center[1]) ** 2
                + (x - b.center[2]) ** 2
            )
            - b.radius
        )
        alpha = smoothed_indicator(d, self.smoothing)
        rho = alpha * self.rho_bubble + (1.0 - alpha) * rho
        p = alpha * self.p_bubble + (1.0 - alpha) * p
        un = (1.0 - alpha) * un
        G = alpha * self.vapor.G + (1.0 - alpha) * G
        P = alpha * self.vapor.P + (1.0 - alpha) * P
        vel = [0.0, 0.0, 0.0]
        vel[self.axis] = un
        return _assemble(rho, vel[2], vel[1], vel[0], p, G, P)


def shock_bubble(
    bubble: Bubble,
    shock_position: float,
    p_post: float = 300.0,
    rho_post: float = 1100.0,
    u_post: float = 5.0,
    p_pre: float = 100.0,
    rho_pre: float = 1000.0,
    p_bubble: float = 0.0234,
    rho_bubble: float = 1.0,
    axis: int = 2,
    smoothing: float = 0.0,
    liquid: Material = LIQUID,
    vapor: Material = VAPOR,
):
    """Planar shock (post-state left of ``shock_position``) plus a bubble.

    The configuration of the group's "3D shock-bubble interactions" work
    the paper cites as its precursor.
    """
    return ShockBubbleIC(
        bubble=bubble, shock_position=shock_position, p_post=p_post,
        rho_post=rho_post, u_post=u_post, p_pre=p_pre, rho_pre=rho_pre,
        p_bubble=p_bubble, rho_bubble=rho_bubble, axis=axis,
        smoothing=smoothing, liquid=liquid, vapor=vapor,
    )
