"""Initial-condition builders.

Each builder returns a callable ``fn(z, y, x) -> state`` that the node
layer evaluates at cell centers (broadcastable coordinate arrays in,
AoS state array out).  Provided setups:

* :func:`uniform` -- a single-phase quiescent state;
* :func:`cloud_collapse` -- the paper's production setup: vapor bubbles
  (p = 0.0234 bar, rho = 1) inside pressurized liquid (p = 100 bar,
  rho = 1000), interfaces smoothed over a few cells;
* :func:`shock_tube` -- planar Riemann problems (Sod-type validation);
* :func:`shock_bubble` -- a planar shock approaching a single bubble (the
  predecessor paper's showcase problem).
"""

from __future__ import annotations

import numpy as np

from ..physics.eos import LIQUID, VAPOR, Material, total_energy
from ..physics.state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW
from .cloud import Bubble


def _assemble(rho, u, v, w, p, G, P) -> np.ndarray:
    """Broadcast primitives into an AoS state array."""
    shape = np.broadcast_shapes(
        *(np.shape(a) for a in (rho, u, v, w, p, G, P))
    )
    out = np.empty(shape + (NQ,), dtype=np.float64)
    out[..., RHO] = rho
    out[..., RHOU] = rho * u
    out[..., RHOV] = rho * v
    out[..., RHOW] = rho * w
    out[..., ENERGY] = total_energy(rho, u, v, w, p, G, P)
    out[..., GAMMA] = G
    out[..., PI] = P
    return out


def uniform(
    rho: float = 1000.0,
    p: float = 100.0,
    velocity: tuple[float, float, float] = (0.0, 0.0, 0.0),
    material: Material = LIQUID,
):
    """Quiescent single-phase state."""

    def fn(z, y, x):
        ones = np.ones(np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x)))
        return _assemble(
            rho * ones, velocity[2], velocity[1], velocity[0], p * ones,
            material.G, material.P,
        )

    return fn


def smoothed_indicator(d, width: float):
    """Smoothed Heaviside of a signed distance ``d`` (1 inside).

    ``width`` is the smoothing length; 0 yields a sharp indicator.
    """
    if width <= 0:
        return (np.asarray(d) <= 0).astype(np.float64)
    return 0.5 * (1.0 - np.tanh(np.asarray(d) / width))


def cloud_collapse(
    bubbles: list[Bubble],
    liquid: Material = LIQUID,
    vapor: Material = VAPOR,
    p_liquid: float = 100.0,
    p_vapor: float = 0.0234,
    rho_liquid: float = 1000.0,
    rho_vapor: float = 1.0,
    smoothing: float = 0.0,
):
    """The paper's production initial condition (Section 7).

    Material parameters default to the paper's values: vapor gamma = 1.4,
    p_c = 1 bar; liquid gamma = 6.59, p_c = 4096 bar; initial pressures
    0.0234 bar (vapor) and 100 bar (pressurized liquid); zero velocity.

    ``smoothing`` is the interface smoothing length (in physical units,
    typically 1-2 cells); the union of bubbles is taken with a max.
    """

    def fn(z, y, x):
        shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        alpha = np.zeros(shape)  # vapor volume fraction
        for b in bubbles:
            d = (
                np.sqrt(
                    (z - b.center[0]) ** 2
                    + (y - b.center[1]) ** 2
                    + (x - b.center[2]) ** 2
                )
                - b.radius
            )
            alpha = np.maximum(alpha, smoothed_indicator(d, smoothing))
        rho = alpha * rho_vapor + (1.0 - alpha) * rho_liquid
        p = alpha * p_vapor + (1.0 - alpha) * p_liquid
        G = alpha * vapor.G + (1.0 - alpha) * liquid.G
        P = alpha * vapor.P + (1.0 - alpha) * liquid.P
        return _assemble(rho, 0.0, 0.0, 0.0, p, G, P)

    return fn


def shock_tube(
    left: dict,
    right: dict,
    x0: float = 0.5,
    axis: int = 2,
    material_left: Material = LIQUID,
    material_right: Material | None = None,
):
    """Planar Riemann problem along ``axis`` split at coordinate ``x0``.

    ``left``/``right`` are dicts with keys ``rho``, ``p`` and optional
    ``u`` (normal velocity).  Distinct materials produce a two-phase
    shock tube.
    """
    material_right = material_right or material_left

    def fn(z, y, x):
        coord = (z, y, x)[axis]
        shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        is_left = np.broadcast_to(coord < x0, shape)
        rho = np.where(is_left, left["rho"], right["rho"])
        p = np.where(is_left, left["p"], right["p"])
        un = np.where(is_left, left.get("u", 0.0), right.get("u", 0.0))
        G = np.where(is_left, material_left.G, material_right.G)
        P = np.where(is_left, material_left.P, material_right.P)
        vel = [0.0, 0.0, 0.0]
        vel[axis] = un
        # AoS velocity order in _assemble is (u=x, v=y, w=z).
        return _assemble(rho, vel[2], vel[1], vel[0], p, G, P)

    return fn


def shock_bubble(
    bubble: Bubble,
    shock_position: float,
    p_post: float = 300.0,
    rho_post: float = 1100.0,
    u_post: float = 5.0,
    p_pre: float = 100.0,
    rho_pre: float = 1000.0,
    p_bubble: float = 0.0234,
    rho_bubble: float = 1.0,
    axis: int = 2,
    smoothing: float = 0.0,
    liquid: Material = LIQUID,
    vapor: Material = VAPOR,
):
    """Planar shock (post-state left of ``shock_position``) plus a bubble.

    The configuration of the group's "3D shock-bubble interactions" work
    the paper cites as its precursor.
    """

    def fn(z, y, x):
        coord = (z, y, x)[axis]
        shape = np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x))
        post = np.broadcast_to(coord < shock_position, shape)
        rho = np.where(post, rho_post, rho_pre)
        p = np.where(post, p_post, p_pre)
        un = np.where(post, u_post, 0.0)
        G = np.full(shape, liquid.G)
        P = np.full(shape, liquid.P)
        d = (
            np.sqrt(
                (z - bubble.center[0]) ** 2
                + (y - bubble.center[1]) ** 2
                + (x - bubble.center[2]) ** 2
            )
            - bubble.radius
        )
        alpha = smoothed_indicator(d, smoothing)
        rho = alpha * rho_bubble + (1.0 - alpha) * rho
        p = alpha * p_bubble + (1.0 - alpha) * p
        un = (1.0 - alpha) * un
        G = alpha * vapor.G + (1.0 - alpha) * G
        P = alpha * vapor.P + (1.0 - alpha) * P
        vel = [0.0, 0.0, 0.0]
        vel[axis] = un
        return _assemble(rho, vel[2], vel[1], vel[0], p, G, P)

    return fn
