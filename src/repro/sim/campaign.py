"""Multi-segment production campaigns over checkpoints.

A production collapse run needs 10'000-100'000 steps (paper Section 1) --
far beyond one job allocation; "a single simulation unit requires around
30 hours of wall-clock time on one BGQ rack" (Section 7).  The
:class:`Campaign` runner splits a long run into segments, writes a
lossless checkpoint at each segment boundary, and resumes the next
segment from it -- optionally on a different rank count (re-balancing
between allocations).  Segmented execution is bit-exact with respect to
an uninterrupted run, which the tests assert.

Campaigns are hardened against segment failures: a failed segment is
retried from the last good boundary checkpoint (bounded by
``max_segment_retries``), per-segment outcomes are recorded on
:class:`SegmentRecord` (``ok`` / ``retried`` / ``failed``), and an
exhausted campaign returns the *partial* result (``ok=False``) instead
of losing the completed segments.  Segments can also fan out through
the fault-tolerant job service (:class:`~repro.service.JobEngine`),
which adds result caching and its own retry/backoff supervision.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field

import numpy as np

from .config import SimulationConfig


@dataclass
class SegmentRecord:
    """Outcome of one campaign segment."""

    index: int
    first_step: int
    last_step: int
    checkpoint: str | None
    ranks: int
    #: "ok" (first try), "retried" (succeeded after >= 1 retry) or
    #: "failed" (retry budget exhausted; the campaign stopped here).
    status: str = "ok"
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status != "failed"


@dataclass
class CampaignResult:
    """Stitched outcome of all segments (possibly partial)."""

    records: list = field(default_factory=list)  #: all StepRecords, in order
    segments: list[SegmentRecord] = field(default_factory=list)
    final_field: np.ndarray | None = None
    #: False when a segment exhausted its retries; the result then holds
    #: every *completed* segment (partial results, not nothing).
    ok: bool = True
    error: str | None = None

    @property
    def completed_steps(self) -> int:
        """Steps covered by successfully completed segments (int)."""
        done = [s.last_step for s in self.segments if s.ok]
        return max(done) if done else 0

    def series(self, name: str) -> np.ndarray:
        vals = [
            getattr(r.diagnostics, name)
            for r in self.records
            if r.diagnostics is not None
        ]
        return np.asarray(vals)


class Campaign:
    """Runs a simulation in checkpointed segments.

    Parameters
    ----------
    config:
        Base configuration.  ``max_steps`` is ignored (the campaign's
        ``total_steps`` governs); checkpoint settings are managed by the
        campaign.
    ic_fn:
        Initial condition for the first segment -- a driver callable, or
        an :class:`~repro.service.ICSpec` (required for ``engine`` runs,
        where the IC must cross a process boundary).
    workdir:
        Directory for the segment checkpoints.
    max_segment_retries:
        Retries per segment (beyond the first attempt) before the
        campaign gives up and returns the partial result.
    fault_plan:
        Optional chaos plan armed across the whole campaign: consumed
        hits persist across segment retries (a ``max_hits``-bounded
        crash stays spent), and each retry re-seeds the probabilistic
        streams so a by-chance fault does not refire deterministically.
    engine:
        Optional running :class:`~repro.service.JobEngine`; segments are
        then submitted as service jobs (cached, supervised) instead of
        computed inline.
    """

    def __init__(self, config: SimulationConfig, ic_fn, workdir: str,
                 max_segment_retries: int = 0, fault_plan=None,
                 engine=None):
        self.config = config
        self.ic_fn = ic_fn
        self.workdir = workdir
        if max_segment_retries < 0:
            raise ValueError("max_segment_retries must be >= 0")
        self.max_segment_retries = max_segment_retries
        self.fault_plan = fault_plan
        self.engine = engine
        if engine is not None:
            from ..service.request import ICSpec

            if not isinstance(ic_fn, ICSpec):
                raise ValueError(
                    "engine campaigns need a declarative ICSpec initial "
                    "condition (callables cannot cross the service "
                    "boundary)"
                )
        os.makedirs(workdir, exist_ok=True)

    def _segment_config(self, last_step: int, ranks: int) -> SimulationConfig:
        cfg = copy.copy(self.config)
        cfg.max_steps = last_step
        cfg.ranks = ranks
        cfg.checkpoint_interval = 0  # the campaign writes its own
        cfg.collect_final_field = True
        return cfg

    def run(
        self,
        total_steps: int,
        segment_steps: int,
        ranks_per_segment: list[int] | None = None,
    ) -> CampaignResult:
        """Execute ``total_steps`` in segments of ``segment_steps``.

        ``ranks_per_segment`` optionally reassigns the rank count per
        segment (default: the base config's ``ranks`` throughout).
        Returns a partial result (``ok=False``) if a segment exhausts
        its retry budget; completed segments are never lost.
        """
        from ..cluster.checkpoint import write_checkpoint
        from ..cluster.mpi_sim import SimWorld
        from ..telemetry.log import get_logger

        if total_steps < 1 or segment_steps < 1:
            raise ValueError("step counts must be positive")
        boundaries = list(range(segment_steps, total_steps, segment_steps))
        boundaries.append(total_steps)
        log = get_logger("sim.campaign")

        injector = None
        if self.fault_plan is not None:
            from ..resilience.inject import FaultInjector

            injector = FaultInjector(self.fault_plan)

        out = CampaignResult()
        restart: str | None = None
        for i, last_step in enumerate(boundaries):
            ranks = (
                ranks_per_segment[i]
                if ranks_per_segment is not None
                else self.config.ranks
            )
            cfg = self._segment_config(last_step, ranks)
            result = None
            attempts = 0
            last_error: BaseException | None = None
            while result is None and attempts <= self.max_segment_retries:
                attempts += 1
                try:
                    result = self._run_segment(cfg, restart, injector,
                                               attempts)
                except Exception as exc:
                    last_error = exc
                    log.warn("segment_failed", segment=i,
                             attempt=attempts, err=repr(exc)[:200])
            if result is None:
                # Budget spent: record the failure, keep what we have.
                out.segments.append(SegmentRecord(
                    index=i, first_step=0, last_step=last_step,
                    checkpoint=None, ranks=ranks, status="failed",
                    attempts=attempts,
                ))
                out.ok = False
                out.error = (f"segment {i} failed after {attempts} "
                             f"attempt(s): {last_error!r}")
                return out
            out.records.extend(result.records)
            out.final_field = result.final_field

            checkpoint = None
            if last_step < total_steps:
                checkpoint = os.path.join(
                    self.workdir, f"campaign_step{last_step:06d}.rck"
                )
                t = result.records[-1].time if result.records else 0.0
                # Single-writer checkpoint of the stitched global field
                # (rank counts may change next segment).
                world = SimWorld(1)
                world.run(
                    lambda comm: write_checkpoint(
                        comm, checkpoint, result.final_field, (0, 0, 0),
                        t=t, step=last_step,
                    )
                )
                restart = checkpoint

            first = out.records[-len(result.records)].step if result.records else 0
            out.segments.append(
                SegmentRecord(
                    index=i,
                    first_step=first,
                    last_step=last_step,
                    checkpoint=checkpoint,
                    ranks=ranks,
                    status="ok" if attempts == 1 else "retried",
                    attempts=attempts,
                )
            )
        return out

    # -- one segment attempt ----------------------------------------------

    def _run_segment(self, cfg: SimulationConfig, restart: str | None,
                     injector, attempt: int):
        """One attempt at a segment; raises on failure."""
        if self.engine is not None:
            return self._run_segment_service(cfg, restart)
        from ..cluster.driver import Simulation

        seg_injector = None
        if injector is not None:
            # Same campaign-level ledger across retries (consumed hits
            # stay consumed), fresh probabilistic streams per attempt.
            seg_injector = injector.child_clone()
            if attempt > 1:
                seg_injector.reseed(attempt)
        sim = Simulation(cfg, self.ic_fn, restart_from=restart,
                         injector=seg_injector)
        try:
            result = sim.run()
        finally:
            if injector is not None and seg_injector is not None:
                injector.merge_child(seg_injector.counters,
                                     seg_injector.hit_state())
        return result

    def _run_segment_service(self, cfg: SimulationConfig,
                             restart: str | None):
        """One segment through the job service; returns a result shim."""
        from ..cluster.driver import StepRecord
        from ..service.request import JobRequest
        from .diagnostics import Diagnostics

        request = JobRequest(config=cfg, ic=self.ic_fn,
                             restart_from=restart)
        handle = self.engine.submit(request, fault_plan=self.fault_plan)
        result = handle.result()
        payload = result.payload
        records = []
        diag = {name: payload["series"][name]
                for name in ("max_pressure", "wall_max_pressure",
                             "kinetic_energy", "vapor_volume")}
        di = 0
        for j, step in enumerate(payload["steps"]):
            d = None
            if cfg.diag_interval and step % cfg.diag_interval == 0:
                d = Diagnostics(**{k: float(v[di])
                                   for k, v in diag.items()})
                di += 1
            records.append(StepRecord(
                step=int(step), time=float(payload["times"][j]),
                dt=float(payload["dts"][j]), diagnostics=d,
            ))

        class _Shim:
            pass

        shim = _Shim()
        shim.records = records
        shim.final_field = payload["final_field"]
        return shim
