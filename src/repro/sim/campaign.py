"""Multi-segment production campaigns over checkpoints.

A production collapse run needs 10'000-100'000 steps (paper Section 1) --
far beyond one job allocation; "a single simulation unit requires around
30 hours of wall-clock time on one BGQ rack" (Section 7).  The
:class:`Campaign` runner splits a long run into segments, writes a
lossless checkpoint at each segment boundary, and resumes the next
segment from it -- optionally on a different rank count (re-balancing
between allocations).  Segmented execution is bit-exact with respect to
an uninterrupted run, which the tests assert.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field

import numpy as np

from .config import SimulationConfig


@dataclass
class SegmentRecord:
    """Outcome of one campaign segment."""

    index: int
    first_step: int
    last_step: int
    checkpoint: str | None
    ranks: int


@dataclass
class CampaignResult:
    """Stitched outcome of all segments."""

    records: list = field(default_factory=list)  #: all StepRecords, in order
    segments: list[SegmentRecord] = field(default_factory=list)
    final_field: np.ndarray | None = None

    def series(self, name: str) -> np.ndarray:
        vals = [
            getattr(r.diagnostics, name)
            for r in self.records
            if r.diagnostics is not None
        ]
        return np.asarray(vals)


class Campaign:
    """Runs a simulation in checkpointed segments.

    Parameters
    ----------
    config:
        Base configuration.  ``max_steps`` is ignored (the campaign's
        ``total_steps`` governs); checkpoint settings are managed by the
        campaign.
    ic_fn:
        Initial condition for the first segment.
    workdir:
        Directory for the segment checkpoints.
    """

    def __init__(self, config: SimulationConfig, ic_fn, workdir: str):
        self.config = config
        self.ic_fn = ic_fn
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)

    def _segment_config(self, last_step: int, ranks: int) -> SimulationConfig:
        cfg = copy.copy(self.config)
        cfg.max_steps = last_step
        cfg.ranks = ranks
        cfg.checkpoint_interval = 0  # the campaign writes its own
        cfg.collect_final_field = True
        return cfg

    def run(
        self,
        total_steps: int,
        segment_steps: int,
        ranks_per_segment: list[int] | None = None,
    ) -> CampaignResult:
        """Execute ``total_steps`` in segments of ``segment_steps``.

        ``ranks_per_segment`` optionally reassigns the rank count per
        segment (default: the base config's ``ranks`` throughout).
        """
        from ..cluster.checkpoint import write_checkpoint
        from ..cluster.driver import Simulation
        from ..cluster.mpi_sim import SimWorld

        if total_steps < 1 or segment_steps < 1:
            raise ValueError("step counts must be positive")
        boundaries = list(range(segment_steps, total_steps, segment_steps))
        boundaries.append(total_steps)

        out = CampaignResult()
        restart: str | None = None
        for i, last_step in enumerate(boundaries):
            ranks = (
                ranks_per_segment[i]
                if ranks_per_segment is not None
                else self.config.ranks
            )
            cfg = self._segment_config(last_step, ranks)
            sim = Simulation(cfg, self.ic_fn, restart_from=restart)
            result = sim.run()
            out.records.extend(result.records)
            out.final_field = result.final_field

            checkpoint = None
            if last_step < total_steps:
                checkpoint = os.path.join(
                    self.workdir, f"campaign_step{last_step:06d}.rck"
                )
                t = result.records[-1].time if result.records else 0.0
                # Single-writer checkpoint of the stitched global field
                # (rank counts may change next segment).
                world = SimWorld(1)
                world.run(
                    lambda comm: write_checkpoint(
                        comm, checkpoint, result.final_field, (0, 0, 0),
                        t=t, step=last_step,
                    )
                )
                restart = checkpoint

            first = out.records[-len(result.records)].step if result.records else 0
            out.segments.append(
                SegmentRecord(
                    index=i,
                    first_step=first,
                    last_step=last_step,
                    checkpoint=checkpoint,
                    ranks=ranks,
                )
            )
        return out
