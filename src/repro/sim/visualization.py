"""Field visualization artifacts (paper Figs. 4, 6, 8).

The paper renders bubble interfaces (white isosurfaces) and pressure
volumes (translucent blue to red).  This module produces the equivalent
headless artifacts for a terminal/CI workflow:

* ASCII renderings of field slices (quick inspection in examples);
* portable graymap (PGM) images of slices -- viewable anywhere, no
  dependencies;
* interface statistics: isosurface cell counts, per-bubble extents and
  sphericity (the "asymmetric deformations of the bubbles" of Fig. 4 in
  number form).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .diagnostics import pressure_field, vapor_fraction_field

#: Default ASCII luminance ramp, dark to bright.
ASCII_RAMP = " .:-=+*#%@"


def field_slice(field_aos: np.ndarray, axis: int = 0, index: int | None = None,
                quantity: str = "p") -> np.ndarray:
    """Extract a 2D slice of a derived scalar from an AoS field.

    ``quantity``: ``"p"`` (pressure), ``"alpha"`` (vapor fraction),
    ``"rho"`` (density).
    """
    if quantity == "p":
        scalar = pressure_field(field_aos)
    elif quantity == "alpha":
        scalar = vapor_fraction_field(field_aos)
    elif quantity == "rho":
        scalar = field_aos[..., 0].astype(np.float64)
    else:
        raise ValueError(f"unknown quantity {quantity!r}")
    if index is None:
        index = scalar.shape[axis] // 2
    return np.take(scalar, index, axis=axis)


def ascii_render(data2d: np.ndarray, ramp: str = ASCII_RAMP,
                 vmin: float | None = None, vmax: float | None = None) -> str:
    """Render a 2D array as ASCII art (rows = first axis)."""
    data = np.asarray(data2d, dtype=np.float64)
    lo = data.min() if vmin is None else vmin
    hi = data.max() if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    levels = np.clip(((data - lo) / span) * (len(ramp) - 1), 0,
                     len(ramp) - 1).astype(int)
    return "\n".join("".join(ramp[v] for v in row) for row in levels)


def save_pgm(path: str, data2d: np.ndarray,
             vmin: float | None = None, vmax: float | None = None) -> str:
    """Write a binary PGM (P5) image of a 2D field; returns the path."""
    data = np.asarray(data2d, dtype=np.float64)
    lo = data.min() if vmin is None else vmin
    hi = data.max() if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    gray = np.clip((data - lo) / span * 255.0, 0, 255).astype(np.uint8)
    with open(path, "wb") as f:
        f.write(f"P5\n{gray.shape[1]} {gray.shape[0]}\n255\n".encode())
        f.write(gray.tobytes())
    return path


def load_pgm(path: str) -> np.ndarray:
    """Read back a binary PGM written by :func:`save_pgm`."""
    with open(path, "rb") as f:
        magic = f.readline().strip()
        if magic != b"P5":
            raise ValueError(f"{path} is not a binary PGM")
        dims = f.readline().split()
        w, h = int(dims[0]), int(dims[1])
        maxval = int(f.readline())
        data = np.frombuffer(f.read(w * h), dtype=np.uint8).reshape(h, w)
    if maxval != 255:
        raise ValueError("only 8-bit PGM supported")
    return data


@dataclass(frozen=True)
class BubbleShape:
    """Geometry of one connected vapor region."""

    cells: int
    centroid: tuple[float, float, float]
    extents: tuple[float, float, float]  #: bounding box, physical units

    @property
    def sphericity(self) -> float:
        """min/max bounding extent: 1 for a sphere, < 1 once deformed
        (the Fig. 4 'asymmetric deformation' in one number)."""
        lo, hi = min(self.extents), max(self.extents)
        return lo / hi if hi > 0 else 1.0


def interface_statistics(field_aos: np.ndarray, h: float,
                         alpha_iso: float = 0.5) -> list[BubbleShape]:
    """Connected vapor regions above the isosurface threshold.

    Flood-fill labeling (6-connected); returns one :class:`BubbleShape`
    per region, largest first.
    """
    alpha = vapor_fraction_field(field_aos)
    mask = alpha > alpha_iso
    labels = np.zeros(mask.shape, dtype=np.int32)
    current = 0
    shapes: list[BubbleShape] = []
    offsets = [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1),
               (0, 0, -1)]
    nz, ny, nx = mask.shape
    for seed in zip(*np.nonzero(mask & (labels == 0))):
        if labels[seed]:
            continue
        current += 1
        stack = [seed]
        labels[seed] = current
        members = []
        while stack:
            p = stack.pop()
            members.append(p)
            for dz, dy, dx in offsets:
                q = (p[0] + dz, p[1] + dy, p[2] + dx)
                if (
                    0 <= q[0] < nz and 0 <= q[1] < ny and 0 <= q[2] < nx
                    and mask[q] and not labels[q]
                ):
                    labels[q] = current
                    stack.append(q)
        pts = np.array(members, dtype=np.float64)
        centroid = tuple((pts.mean(axis=0) + 0.5) * h)
        extents = tuple((pts.max(axis=0) - pts.min(axis=0) + 1.0) * h)
        shapes.append(
            BubbleShape(cells=len(members), centroid=centroid, extents=extents)
        )
    shapes.sort(key=lambda s: -s.cells)
    return shapes
