"""Simulation setup and diagnostics for cloud cavitation collapse.

Bubble cloud generation (lognormal radii, sphere packing), initial
conditions (paper Section 7 production values), and the diagnostics the
paper monitors (Fig. 5): maximum flow/wall pressure, kinetic energy,
vapor volume and equivalent cloud radius.
"""

from .campaign import Campaign, CampaignResult, SegmentRecord
from .cloud import (
    Bubble,
    tiled_cloud,
    cloud_interaction_parameter,
    cloud_vapor_volume,
    equivalent_radius,
    generate_cloud,
    sample_radii,
)
from .config import SimulationConfig
from .diagnostics import (
    Diagnostics,
    kinetic_energy,
    max_pressure,
    pressure_field,
    rank_diagnostics,
    reduce_diagnostics,
    vapor_fraction_field,
    vapor_volume,
    wall_max_pressure,
)
from .erosion import STEEL_LIKE, ErosionModel, WallDamageAccumulator
from .ic import cloud_collapse, shock_bubble, shock_tube, smoothed_indicator, uniform
from .study import SweepPoint, SweepResult, cloud_fraction_sweep, run_sweep
from .visualization import (
    BubbleShape,
    ascii_render,
    field_slice,
    interface_statistics,
    load_pgm,
    save_pgm,
)

__all__ = [
    "Bubble",
    "Campaign",
    "CampaignResult",
    "SegmentRecord",
    "BubbleShape",
    "ErosionModel",
    "STEEL_LIKE",
    "WallDamageAccumulator",
    "ascii_render",
    "field_slice",
    "interface_statistics",
    "load_pgm",
    "save_pgm",
    "SweepPoint",
    "SweepResult",
    "cloud_fraction_sweep",
    "run_sweep",
    "Diagnostics",
    "SimulationConfig",
    "cloud_collapse",
    "cloud_interaction_parameter",
    "cloud_vapor_volume",
    "equivalent_radius",
    "generate_cloud",
    "kinetic_energy",
    "max_pressure",
    "pressure_field",
    "rank_diagnostics",
    "reduce_diagnostics",
    "sample_radii",
    "shock_bubble",
    "shock_tube",
    "smoothed_indicator",
    "tiled_cloud",
    "uniform",
    "vapor_fraction_field",
    "vapor_volume",
    "wall_max_pressure",
]
