"""Flow diagnostics monitored during production runs (paper Fig. 5).

"We monitor the maximum pressure in the flow field and on the solid wall,
the equivalent radius of the cloud (3 V_vapor / 4 pi)^(1/3) and the
kinetic energy of the system."

All functions operate on a rank's AoS field; the cluster driver reduces
them globally (max for pressures, sum for volumes/energies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..physics.eos import LIQUID, VAPOR, pressure
from ..physics.state import ENERGY, GAMMA, PI, RHO, RHOU, RHOV, RHOW


def pressure_field(field: np.ndarray) -> np.ndarray:
    """Pointwise pressure of an AoS field ``(..., NQ)``."""
    f = field.astype(np.float64)
    return pressure(
        f[..., RHO], f[..., RHOU], f[..., RHOV], f[..., RHOW],
        f[..., ENERGY], f[..., GAMMA], f[..., PI],
    )


def max_pressure(field: np.ndarray) -> float:
    """Maximum pressure in the (rank-local) flow field."""
    return float(pressure_field(field).max())


def wall_max_pressure(field: np.ndarray, axis: int = 0, side: int = -1) -> float:
    """Maximum pressure on the cell layer adjacent to a solid wall."""
    sel = [slice(None)] * 3
    sel[axis] = slice(0, 1) if side == -1 else slice(-1, None)
    return float(pressure_field(field[tuple(sel)]).max())


def kinetic_energy(field: np.ndarray, h: float) -> float:
    """Total kinetic energy ``sum(|rho u|^2 / (2 rho)) * h^3``."""
    f = field.astype(np.float64)
    ke = 0.5 * (
        f[..., RHOU] ** 2 + f[..., RHOV] ** 2 + f[..., RHOW] ** 2
    ) / f[..., RHO]
    return float(ke.sum() * h**3)


def vapor_fraction_field(field: np.ndarray) -> np.ndarray:
    """Vapor volume fraction recovered from the advected ``Gamma``.

    ``Gamma`` mixes linearly in the volume fraction, so
    ``alpha = (Gamma - Gamma_liquid) / (Gamma_vapor - Gamma_liquid)``,
    clipped to [0, 1].
    """
    G = field[..., GAMMA].astype(np.float64)
    alpha = (G - LIQUID.G) / (VAPOR.G - LIQUID.G)
    return np.clip(alpha, 0.0, 1.0)


def vapor_volume(field: np.ndarray, h: float) -> float:
    """Total vapor volume ``sum(alpha) * h^3``."""
    return float(vapor_fraction_field(field).sum() * h**3)


@dataclass
class Diagnostics:
    """Global flow diagnostics of one step (after cluster reduction)."""

    max_pressure: float
    wall_max_pressure: float
    kinetic_energy: float
    vapor_volume: float

    @property
    def equivalent_radius(self) -> float:
        """Equivalent cloud radius (blue line of paper Fig. 5)."""
        return float((3.0 * max(self.vapor_volume, 0.0) / (4.0 * np.pi)) ** (1.0 / 3.0))


def rank_diagnostics(field: np.ndarray, h: float, wall: tuple[int, int] | None) -> dict:
    """Rank-local diagnostic contributions (pre-reduction).

    ``wall`` is ``(axis, side)`` of the solid wall, or ``None`` when the
    rank subdomain does not touch it.
    """
    return {
        "max_pressure": max_pressure(field),
        "wall_max_pressure": (
            wall_max_pressure(field, *wall) if wall is not None else -np.inf
        ),
        "kinetic_energy": kinetic_energy(field, h),
        "vapor_volume": vapor_volume(field, h),
    }


def reduce_diagnostics(comm, local: dict) -> Diagnostics:
    """Combine rank-local contributions into global :class:`Diagnostics`."""
    return Diagnostics(
        max_pressure=comm.allreduce(local["max_pressure"], op="max"),
        wall_max_pressure=comm.allreduce(local["wall_max_pressure"], op="max"),
        kinetic_energy=comm.allreduce(local["kinetic_energy"], op="sum"),
        vapor_volume=comm.allreduce(local["vapor_volume"], op="sum"),
    )


def format_sanitizer_report(report, max_lines: int = 20) -> str:
    """Human-readable rendering of a sanitizer :class:`ViolationReport`.

    Returns the one-line summary followed by up to ``max_lines``
    block-level findings (runs with the sanitizer off pass ``None`` and
    get an explicit note instead).
    """
    if report is None:
        return "numerics sanitizer: off"
    lines = [report.summary()]
    for v in report.violations[:max_lines]:
        lines.append(f"  {v.format()}")
    hidden = len(report.violations) - max_lines
    if hidden > 0:
        lines.append(f"  ... and {hidden} more")
    return "\n".join(lines)
