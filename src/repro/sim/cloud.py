"""Bubble cloud generation (paper Section 7).

"We initialize the simulation with spherical bubbles modeling the state of
the cloud right before the beginning of collapse.  Radii of the bubbles
are sampled from a lognormal distribution corresponding to a range of
50-200 microns."

:func:`generate_cloud` samples lognormal radii clipped to a range and
packs non-overlapping spheres into a spherical cloud region by rejection
sampling (deterministic given the seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Bubble:
    """A spherical vapor bubble."""

    center: tuple[float, float, float]  #: (z, y, x)
    radius: float

    def overlaps(self, other: "Bubble", gap: float = 0.0) -> bool:
        d2 = sum((a - b) ** 2 for a, b in zip(self.center, other.center))
        r = self.radius + other.radius + gap
        return d2 < r * r

    def contains(self, z, y, x):
        """Vectorized point-in-bubble test."""
        d2 = (
            (z - self.center[0]) ** 2
            + (y - self.center[1]) ** 2
            + (x - self.center[2]) ** 2
        )
        return d2 <= self.radius**2

    @property
    def volume(self) -> float:
        return 4.0 / 3.0 * np.pi * self.radius**3


def sample_radii(
    n: int,
    rng: np.random.Generator,
    r_min: float = 50e-6,
    r_max: float = 200e-6,
    sigma: float = 0.4,
) -> np.ndarray:
    """Lognormal bubble radii clipped to ``[r_min, r_max]``.

    The lognormal median is placed at the geometric mean of the range
    (paper: lognormal distribution over 50-200 microns, Hansson et al.).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 < r_min <= r_max:
        raise ValueError("need 0 < r_min <= r_max")
    mu = np.log(np.sqrt(r_min * r_max))
    radii = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.clip(radii, r_min, r_max)


def generate_cloud(
    n_bubbles: int,
    cloud_center: tuple[float, float, float],
    cloud_radius: float,
    rng: np.random.Generator | int | None = None,
    r_min: float = 50e-6,
    r_max: float = 200e-6,
    sigma: float = 0.4,
    min_gap_factor: float = 0.1,
    max_attempts_per_bubble: int = 2000,
) -> list[Bubble]:
    """Pack ``n_bubbles`` non-overlapping bubbles inside a spherical cloud.

    Rejection sampling: bubbles are placed largest-first (easier packing)
    with a minimum surface gap of ``min_gap_factor`` times the smaller
    radius.  Raises if the requested count cannot be packed -- the caller
    should grow the cloud or shrink the population.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    radii = np.sort(sample_radii(n_bubbles, rng, r_min, r_max, sigma))[::-1]
    bubbles: list[Bubble] = []
    for i, r in enumerate(radii):
        placed = False
        for _ in range(max_attempts_per_bubble):
            # Uniform point in the sphere of radius (cloud_radius - r).
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            rad = (cloud_radius - r) * rng.random() ** (1.0 / 3.0)
            center = tuple(c + rad * d for c, d in zip(cloud_center, direction))
            cand = Bubble(center=center, radius=float(r))
            gap = min_gap_factor * r
            if all(not cand.overlaps(b, gap) for b in bubbles):
                bubbles.append(cand)
                placed = True
                break
        if not placed:
            raise RuntimeError(
                f"could not place bubble {i + 1}/{n_bubbles} "
                f"(r={r:.3g}) in cloud of radius {cloud_radius:.3g}; "
                "reduce the count or enlarge the cloud"
            )
    return bubbles


def tiled_cloud(
    units: tuple[int, int, int],
    bubbles_per_unit: int,
    rng: np.random.Generator | int | None = None,
    unit_extent: float = 1.0,
    cloud_radius_fraction: float = 0.38,
    r_min: float = 0.07,
    r_max: float = 0.11,
) -> list[Bubble]:
    """Assemble a large cloud by tiling simulation units (paper Section 7).

    "The target physical system is assembled by piecing together the
    simulation units and keeping the same spatial resolution ...  Every
    simulation unit is a cube of 1024^3 grid cells and contains 50-100
    bubbles."  Each unit gets an independently packed sub-cloud (seeded
    deterministically per unit), translated to its tile position; radii
    and resolution are shared, so a ``(2, 1, 1)``-unit system doubles the
    domain without changing the per-unit physics.

    Returns the combined bubble list; the caller sizes the grid as
    ``cells_per_unit * units`` per axis.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        base_seed = int(rng) if rng is not None else 0
    else:
        base_seed = int(rng.integers(0, 2**31))
    bubbles: list[Bubble] = []
    for uz in range(units[0]):
        for uy in range(units[1]):
            for ux in range(units[2]):
                seed = base_seed + ((uz * 1009 + uy) * 1013 + ux)
                unit = generate_cloud(
                    bubbles_per_unit,
                    cloud_center=(0.5 * unit_extent,) * 3,
                    cloud_radius=cloud_radius_fraction * unit_extent,
                    rng=seed,
                    r_min=r_min,
                    r_max=r_max,
                )
                offset = (
                    uz * unit_extent, uy * unit_extent, ux * unit_extent
                )
                bubbles.extend(
                    Bubble(
                        center=tuple(c + o for c, o in zip(b.center, offset)),
                        radius=b.radius,
                    )
                    for b in unit
                )
    return bubbles


def cloud_vapor_volume(bubbles: list[Bubble]) -> float:
    """Total vapor volume of the cloud."""
    return float(sum(b.volume for b in bubbles))


def equivalent_radius(vapor_volume: float) -> float:
    """Equivalent cloud radius ``(3 V / 4 pi)^(1/3)`` (paper Fig. 5)."""
    return float((3.0 * vapor_volume / (4.0 * np.pi)) ** (1.0 / 3.0))


def cloud_interaction_parameter(bubbles: list[Bubble], cloud_radius: float) -> float:
    """Cloud interaction parameter ``beta = alpha^(2/3) * (R_c / <R>)^2``.

    A standard measure of collective-collapse strength (the larger, the
    stronger the bubble-bubble interaction during collapse).
    """
    if not bubbles:
        return 0.0
    alpha = cloud_vapor_volume(bubbles) / (4.0 / 3.0 * np.pi * cloud_radius**3)
    mean_r = float(np.mean([b.radius for b in bubbles]))
    return float(alpha ** (2.0 / 3.0) * (cloud_radius / mean_r) ** 2)
