"""Simulation configuration (the public entry point's parameter object)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..node.ghosts import BoundarySpec


@dataclass
class SimulationConfig:
    """Parameters of a cloud-cavitation-collapse (or related) run.

    Defaults follow the paper's production setup scaled to laptop size:
    CFL 0.3, third-order low-storage RK, WENO5/HLLE kernels, mixed
    precision, compressed dumps of p and Gamma.
    """

    # -- discretization ------------------------------------------------
    #: global cells: an int for a cubic domain or a (nz, ny, nx) triple.
    cells: int | tuple[int, int, int] = 64
    block_size: int = 16  #: cells per block edge (paper: 32)
    #: physical length of the x edge; spacing is uniform in all directions.
    extent: float = 1.0

    # -- numerics ---------------------------------------------------------
    cfl: float = 0.3  #: paper Section 7
    stepper: str = "rk3"  #: "rk3" (production) or "euler" (ablation)
    fused_weno: bool = False  #: micro-fused WENO kernel (Table 9)
    use_slices: bool = False  #: ring-buffer streaming RHS
    weno_order: int = 5  #: spatial order: 5 (production) or 3 (ablation)
    riemann_solver: str = "hlle"  #: "hlle" (paper) or "hllc"
    #: runtime numerics sanitizer policy: "off" (production default; zero
    #: overhead), "warn" (record violations, emit warnings, keep running)
    #: or "raise" (abort on the first violation).  See
    #: :mod:`repro.analysis.sanitizer`.
    sanitize: str = "off"
    sanitize_p_min: float = 0.0  #: pressure floor used by the sanitizer
    #: run telemetry policy: "off" (production default; the step loop
    #: carries no telemetry objects), "metrics" (phase/counter snapshot
    #: on the results) or "trace" (metrics + per-rank span events
    #: exportable as a Perfetto timeline).  See :mod:`repro.telemetry`.
    telemetry: str = "off"
    #: bound of the per-rank span-event buffer in trace mode
    telemetry_max_events: int = 65536
    #: runtime concurrency-check policy for the thread-based cluster
    #: runtime: "off" (production default; zero overhead), "warn"
    #: (record races/deadlocks on the run report, keep running) or
    #: "raise" (abort the offending rank on the first race).  See
    #: :mod:`repro.analysis.concurrency`.
    concurrency_check: str = "off"
    #: step-level flight recorder output path (JSONL, schema
    #: ``repro.flight/v1``; see :mod:`repro.telemetry.flight`), or None
    #: (off, the production default; the step loop carries no recorder).
    flight_out: str | None = None
    #: flight records buffered between flushes of the shared sink
    flight_flush_every: int = 32
    #: steps between live progress heartbeats emitted by rank 0 through
    #: :class:`repro.telemetry.ProgressReporter` (0 = silent, default)
    progress_interval: int = 0

    # -- parallelization ---------------------------------------------------
    ranks: int = 1  #: simulated MPI ranks
    num_workers: int = 4  #: threads per rank (dispatch simulation)
    periodic: tuple[bool, bool, bool] = (False, False, False)
    #: cluster runtime: "sim" (rank threads in one interpreter, the
    #: default -- deterministic, debuggable, race-trackable) or "procs"
    #: (each rank a real OS process exchanging halos through
    #: shared-memory rings -- real multi-core scaling).  Both backends
    #: are bit-identical on the same config; see docs/cluster.md.
    cluster_backend: str = "sim"
    #: per-pair shared-memory ring capacity in bytes (procs backend)
    procs_ring_bytes: int = 1 << 22

    # -- boundaries ----------------------------------------------------------
    wall: tuple[int, int] | None = None  #: (axis, side) of a solid wall
    boundary_default: str = "extrapolate"
    #: optional erosion model accumulated on the wall (requires ``wall``);
    #: an :class:`repro.sim.erosion.ErosionModel` instance.
    erosion: object | None = None

    # -- termination --------------------------------------------------------
    max_steps: int = 100
    t_end: float = float("inf")

    # -- diagnostics & I/O --------------------------------------------------
    diag_interval: int = 1  #: steps between diagnostic records
    dump_interval: int = 0  #: steps between compressed dumps (0 = never)
    dump_dir: str = "."  #: directory of dump files
    eps_pressure: float = 1e-2  #: decimation threshold for p (paper)
    eps_gamma: float = 1e-3  #: decimation threshold for Gamma (paper)
    dump_guaranteed: bool = False  #: strict L-inf bound vs paper thresholds
    collect_final_field: bool = True  #: return the assembled final field
    checkpoint_interval: int = 0  #: steps between checkpoints (0 = never)
    checkpoint_dir: str = "."
    #: checkpoint generations retained by rotation (0 = keep everything)
    checkpoint_keep: int = 0

    # -- resilience ---------------------------------------------------------
    #: point-to-point receive / collective wait timeout in seconds
    #: (None = the communicator default; lower it for chaos tests so a
    #: dropped message is diagnosed quickly)
    comm_timeout: float | None = None
    comm_retry_attempts: int = 3  #: bounded retries of transient sends
    comm_retry_base: float = 0.02  #: base backoff delay in seconds
    #: declarative chaos spec: a :class:`repro.resilience.FaultPlan`,
    #: a dict/JSON-compatible mapping, or None (no injection)
    fault_plan: object | None = None
    #: recovery attempts the supervised driver may spend before giving up
    max_recoveries: int = 3
    #: after a rank loss, relaunch on a smaller feasible rank count
    recovery_shrink: bool = False

    def __post_init__(self):
        if isinstance(self.cells, int):
            self.cells = (self.cells, self.cells, self.cells)
        else:
            self.cells = tuple(int(c) for c in self.cells)
        for c in self.cells:
            if c % self.block_size:
                raise ValueError(
                    f"cells={self.cells} not divisible by "
                    f"block_size={self.block_size}"
                )
        if self.block_size < 6:
            raise ValueError("block_size must be at least 6 (WENO ghosts)")
        if self.cfl <= 0 or self.cfl > 1:
            raise ValueError("cfl must be in (0, 1]")
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        if self.erosion is not None and self.wall is None:
            raise ValueError("erosion accumulation requires a wall")
        from ..analysis.sanitizer import POLICIES

        if self.sanitize not in POLICIES:
            raise ValueError(
                f"sanitize={self.sanitize!r} not in {POLICIES}"
            )
        from ..telemetry import MODES

        if self.telemetry not in MODES:
            raise ValueError(
                f"telemetry={self.telemetry!r} not in {MODES}"
            )
        if self.telemetry_max_events < 0:
            raise ValueError("telemetry_max_events must be >= 0")
        if self.flight_flush_every < 1:
            raise ValueError("flight_flush_every must be >= 1")
        if self.progress_interval < 0:
            raise ValueError("progress_interval must be >= 0")
        from ..analysis.concurrency import POLICIES as CONCURRENCY_POLICIES

        if self.concurrency_check not in CONCURRENCY_POLICIES:
            raise ValueError(
                f"concurrency_check={self.concurrency_check!r} not in "
                f"{CONCURRENCY_POLICIES}"
            )
        if self.cluster_backend not in ("sim", "procs"):
            raise ValueError(
                f"cluster_backend={self.cluster_backend!r} not in "
                f"('sim', 'procs')"
            )
        if self.procs_ring_bytes < 1 << 16:
            raise ValueError("procs_ring_bytes must be >= 65536")
        if self.cluster_backend == "procs" and self.concurrency_check != "off":
            raise ValueError(
                "concurrency_check requires the thread-based 'sim' "
                "backend: the runtime race tracker cannot observe "
                "separate rank processes"
            )
        if self.checkpoint_keep < 0:
            raise ValueError("checkpoint_keep must be >= 0")
        if self.comm_timeout is not None and self.comm_timeout <= 0:
            raise ValueError("comm_timeout must be positive")
        if self.comm_retry_attempts < 1:
            raise ValueError("comm_retry_attempts must be >= 1")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if self.fault_plan is not None:
            from ..resilience.plan import FaultPlan

            if isinstance(self.fault_plan, dict):
                self.fault_plan = FaultPlan.from_dict(self.fault_plan)
            elif not isinstance(self.fault_plan, FaultPlan):
                raise ValueError(
                    "fault_plan must be a FaultPlan, a mapping, or None"
                )

    @property
    def h(self) -> float:
        """Uniform grid spacing (set by the x extent)."""
        return self.extent / self.cells[2]

    @property
    def global_blocks(self) -> tuple[int, int, int]:
        return tuple(c // self.block_size for c in self.cells)

    def boundary_spec(self) -> BoundarySpec:
        """Node-layer boundary specification implied by this config.

        Periodicity is *not* expressed here: the cluster topology resolves
        periodic faces through the halo exchange (even on a single rank,
        which then exchanges with itself), so the node layer only ever
        applies physical boundary conditions at true domain faces.
        """
        faces = {}
        if self.wall is not None:
            faces[self.wall] = "reflect"
        return BoundarySpec(default=self.boundary_default, faces=faces)
