"""Flow-state layout shared by every layer of the solver.

The solver evolves seven cell-averaged quantities per computational element,
mirroring CUBISM-MPCF's element layout (SC13 paper, Section 3):

========  =========  =====================================================
index     symbol     meaning
========  =========  =====================================================
``RHO``   rho        density
``RHOU``  rho*u      x-momentum
``RHOV``  rho*v      y-momentum
``RHOW``  rho*w      z-momentum
``ENERGY``  E        total energy per unit volume
``GAMMA``   Gamma    stiffened-gas EOS parameter 1/(gamma - 1)
``PI``      Pi       stiffened-gas EOS parameter gamma*p_c/(gamma - 1)
========  =========  =====================================================

``GAMMA`` and ``PI`` obey pure advection (paper Eq. 2) and close the Euler
system through the stiffened equation of state ``Gamma*p + Pi = E -
rho*|u|^2/2``.

Arrays are stored in AoS order ``(..., NQ)`` inside blocks (channel-last,
matching the paper's array-of-structures block layout, Fig. 2) and converted
to SoA slices (channel-first) by the core-layer kernels.
"""

from __future__ import annotations

import numpy as np

#: Number of evolved flow quantities per cell.
NQ = 7

RHO = 0
RHOU = 1
RHOV = 2
RHOW = 3
ENERGY = 4
GAMMA = 5
PI = 6

#: Conserved quantities in Eq. (1) of the paper (mass, momentum, energy).
CONSERVED = (RHO, RHOU, RHOV, RHOW, ENERGY)
#: Advected EOS quantities in Eq. (2) of the paper.
ADVECTED = (GAMMA, PI)

#: Human-readable names, indexable by quantity id.
NAMES = ("rho", "rhou", "rhov", "rhow", "E", "Gamma", "Pi")

#: Storage dtype of the computational elements (paper Section 7: mixed
#: precision -- single precision for memory representation).  This module
#: is the one place raw numpy dtypes may be named (lint rule CL001).
STORAGE_DTYPE = np.float32  # lint: disable=CL001
#: Compute dtype of the kernels (double precision computation).
COMPUTE_DTYPE = np.float64  # lint: disable=CL001


def zeros_aos(shape: tuple[int, ...], dtype=STORAGE_DTYPE) -> np.ndarray:
    """Allocate a zero-filled AoS state array of spatial ``shape``.

    The returned array has shape ``shape + (NQ,)``.
    """
    return np.zeros(tuple(shape) + (NQ,), dtype=dtype)


def aos_to_soa(aos: np.ndarray, dtype=COMPUTE_DTYPE) -> np.ndarray:
    """Convert an AoS array ``(..., NQ)`` to an SoA array ``(NQ, ...)``.

    This is the core layer's AoS/SoA conversion (paper Fig. 2, right): the
    SoA output is contiguous per quantity, which is what makes the compute
    kernels vectorizable.  Returns a contiguous array of shape
    ``(NQ,) + aos.shape[:-1]`` in ``dtype`` (compute precision by default).
    """
    if aos.shape[-1] != NQ:
        raise ValueError(f"expected trailing axis of size {NQ}, got {aos.shape}")
    return np.ascontiguousarray(np.moveaxis(aos, -1, 0), dtype=dtype)


def soa_to_aos(soa: np.ndarray, dtype=STORAGE_DTYPE) -> np.ndarray:
    """Convert an SoA array ``(NQ, ...)`` back to AoS ``(..., NQ)``.

    Returns a contiguous array of shape ``soa.shape[1:] + (NQ,)`` in
    ``dtype`` (storage precision by default -- the block write-back).
    """
    if soa.shape[0] != NQ:
        raise ValueError(f"expected leading axis of size {NQ}, got {soa.shape}")
    return np.ascontiguousarray(np.moveaxis(soa, 0, -1), dtype=dtype)
