"""Stiffened-gas equation of state and conserved/primitive conversions.

The two-phase model of the paper closes the Euler system with a stiffened
equation of state,

    Gamma * p + Pi = E - rho * |u|^2 / 2,

where ``Gamma = 1/(gamma - 1)`` and ``Pi = gamma * p_c / (gamma - 1)`` are
advected with the flow (paper Eq. 2).  Both pure phases and their numerical
mixtures are described by the pair ``(Gamma, Pi)``; this module provides

* conversions between the material parameters ``(gamma, p_c)`` and the
  advected pair ``(Gamma, Pi)``;
* pressure / total energy / sound-speed evaluation;
* the CONV and BACK stages of the RHS pipeline (conserved -> primitive and
  primitive -> conserved conversions on SoA data).

All functions are NumPy-vectorized and dtype-preserving; kernels call them
on float64 working arrays (mixed-precision scheme of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW

#: Floor applied inside the sound-speed square root to guard against
#: negative arguments produced by round-off near strong rarefactions.
_SOUND_SPEED_FLOOR = 1.0e-12


@dataclass(frozen=True)
class Material:
    """A pure phase described by the stiffened-gas parameters.

    Parameters match the paper's Section 7 setup: ``gamma`` is the specific
    heat ratio and ``pc`` the correction pressure of the phase.
    """

    name: str
    gamma: float
    pc: float
    rho0: float = 1.0  #: reference density used by initial conditions
    p0: float = 1.0  #: reference pressure used by initial conditions

    @property
    def G(self) -> float:
        """Advected EOS coefficient ``Gamma = 1/(gamma - 1)``."""
        return 1.0 / (self.gamma - 1.0)

    @property
    def P(self) -> float:
        """Advected EOS coefficient ``Pi = gamma * pc / (gamma - 1)``."""
        return self.gamma * self.pc / (self.gamma - 1.0)


# Paper Section 7 material properties (pressures in bar, densities in kg/m^3,
# matching the production simulations of cloud cavitation collapse).
VAPOR = Material(name="vapor", gamma=1.4, pc=1.0, rho0=1.0, p0=0.0234)
LIQUID = Material(name="liquid", gamma=6.59, pc=4096.0, rho0=1000.0, p0=100.0)


def G_from_gamma(gamma):
    """``Gamma = 1/(gamma - 1)``; returns an array shaped like ``gamma``."""
    return 1.0 / (np.asarray(gamma) - 1.0)


def P_from_gamma_pc(gamma, pc):
    """``Pi = gamma * pc / (gamma - 1)``.

    Returns an array broadcast over ``gamma`` and ``pc``.
    """
    gamma = np.asarray(gamma)
    return gamma * np.asarray(pc) / (gamma - 1.0)


def gamma_from_G(G):
    """Inverse map ``gamma = 1 + 1/Gamma``; returns an array like ``G``."""
    return 1.0 + 1.0 / np.asarray(G)


def pc_from_G_P(G, P):
    """Inverse map ``p_c = Pi / (Gamma + 1)``.

    From ``Pi = gamma*pc*Gamma`` with ``gamma = (Gamma+1)/Gamma`` it follows
    that ``Pi = (Gamma + 1) * pc``.  Returns an array broadcast over
    ``G`` and ``P``.
    """
    return np.asarray(P) / (np.asarray(G) + 1.0)


def pressure(rho, rhou, rhov, rhow, E, G, P):
    """Pressure from conserved quantities and advected EOS coefficients.

    Inverts the stiffened EOS ``Gamma*p + Pi = E - rho|u|^2/2``.  Returns
    the pointwise pressure broadcast over the inputs, dtype-preserving.
    """
    ke = 0.5 * (rhou * rhou + rhov * rhov + rhow * rhow) / rho
    return (E - ke - P) / G


def total_energy(rho, u, v, w, p, G, P):
    """Total energy per unit volume from primitive quantities.

    Returns ``Gamma*p + Pi + rho|u|^2/2`` broadcast over the inputs,
    dtype-preserving.
    """
    ke = 0.5 * rho * (u * u + v * v + w * w)
    return G * p + P + ke


def sound_speed(rho, p, G, P):
    """Speed of sound of the stiffened gas.

    With ``gamma = (Gamma+1)/Gamma`` and ``gamma*p_c = Pi/Gamma``,

        c^2 = gamma * (p + p_c) / rho = ((Gamma + 1) * p + Pi) / (Gamma * rho).

    Returns ``c`` broadcast over the inputs (square root floored against
    round-off-negative arguments).
    """
    c2 = ((G + 1.0) * p + P) / (G * rho)
    return np.sqrt(np.maximum(c2, _SOUND_SPEED_FLOOR))


def max_characteristic_velocity(W: np.ndarray) -> float:
    """Maximum of ``|u_i| + c`` over an SoA primitive array ``(NQ, ...)``.

    This is the quantity globally reduced by the DT kernel (paper Fig. 1) to
    determine the CFL-limited time step.  Returns a python float.
    """
    rho = W[RHO]
    u = W[RHOU]
    v = W[RHOV]
    w = W[RHOW]
    p = W[ENERGY]
    G = W[GAMMA]
    P = W[PI]
    c = sound_speed(rho, p, G, P)
    speed = np.maximum(np.abs(u), np.maximum(np.abs(v), np.abs(w))) + c
    return float(speed.max())


def conserved_to_primitive(U: np.ndarray) -> np.ndarray:
    """CONV stage: convert SoA conserved data ``(NQ, ...)`` to primitives.

    Output layout (same shape): ``rho, u, v, w, p, Gamma, Pi``.  The paper
    performs the spatial reconstruction on primitive quantities to avoid
    spurious pressure/velocity oscillations at material interfaces
    (Abgrall & Karni; Johnsen & Colonius).
    """
    W = np.empty_like(U)
    rho = U[RHO]
    inv_rho = 1.0 / rho
    W[RHO] = rho
    W[RHOU] = U[RHOU] * inv_rho
    W[RHOV] = U[RHOV] * inv_rho
    W[RHOW] = U[RHOW] * inv_rho
    W[ENERGY] = pressure(rho, U[RHOU], U[RHOV], U[RHOW], U[ENERGY], U[GAMMA], U[PI])
    W[GAMMA] = U[GAMMA]
    W[PI] = U[PI]
    return W


def primitive_to_conserved(W: np.ndarray) -> np.ndarray:
    """BACK stage: convert SoA primitive data ``(NQ, ...)`` to conserved.

    Returns an array of the same shape and dtype as ``W``.
    """
    U = np.empty_like(W)
    rho = W[RHO]
    u, v, w = W[RHOU], W[RHOV], W[RHOW]
    p = W[ENERGY]
    U[RHO] = rho
    U[RHOU] = rho * u
    U[RHOV] = rho * v
    U[RHOW] = rho * w
    U[ENERGY] = total_energy(rho, u, v, w, p, W[GAMMA], W[PI])
    U[GAMMA] = W[GAMMA]
    U[PI] = W[PI]
    return U


def mixture(material_a: Material, material_b: Material, alpha):
    """Volume-fraction mixture of two phases in ``(Gamma, Pi)`` space.

    ``alpha`` is the volume fraction of ``material_a``.  ``Gamma`` and ``Pi``
    mix linearly (which is exactly why they are the advected quantities:
    linear mixing keeps interface capturing free of pressure oscillations).
    Returns ``(G, P)`` arrays broadcast against ``alpha``.
    """
    alpha = np.asarray(alpha)
    G = alpha * material_a.G + (1.0 - alpha) * material_b.G
    P = alpha * material_a.P + (1.0 - alpha) * material_b.P
    return G, P
