"""HLLE approximate Riemann solver for the two-phase Euler system.

The RHS kernel evaluates numerical fluxes at cell faces with the HLLE
(Harten, Lax, van Leer, Einfeldt) scheme (paper Section 3).  The advected
EOS quantities ``Gamma`` and ``Pi`` obey ``phi_t + u . grad(phi) = 0``; we
discretize them in the quasi-conservative form of Johnsen & Colonius,

    phi_t + div(phi * u) - phi * div(u) = 0,

where ``div(phi * u)`` is computed with the same HLLE formula as the
conserved fluxes and ``div(u)`` from the HLLE-consistent interface velocity
``u*`` (the HLL flux of the constant function 1 with flux ``u``).  This
keeps pressure and velocity exactly uniform across material interfaces --
the defining correctness property of the scheme, asserted by the tests.

All functions operate on face-collocated SoA arrays along arbitrary
trailing shapes; the direction is encoded by which momentum component is
"normal".
"""

from __future__ import annotations

import numpy as np

from .eos import sound_speed, total_energy
from .state import ENERGY, GAMMA, NQ, PI, RHO, RHOU, RHOV, RHOW


def einfeldt_wave_speeds(rho_l, un_l, p_l, G_l, P_l, rho_r, un_r, p_r, G_r, P_r):
    """Lower/upper wave-speed estimates ``(s_l, s_r)``.

    Simple Davis/Einfeldt-type bounds: the minimum (maximum) of the left
    and right acoustic speeds, clipped so that ``s_l <= 0 <= s_r`` never
    has to be special-cased by callers (HLLE reduces to the upwind flux
    automatically when the interface is supersonic).  Returns the pair
    ``(s_l, s_r)`` of arrays broadcast over the face states.
    """
    c_l = sound_speed(rho_l, p_l, G_l, P_l)
    c_r = sound_speed(rho_r, p_r, G_r, P_r)
    s_l = np.minimum(un_l - c_l, un_r - c_r)
    s_r = np.maximum(un_l + c_l, un_r + c_r)
    return s_l, s_r


def _hlle_wave_bounds(s_l, s_r):
    """Clipped wave speeds and division guards shared by all components.

    The HLLE combination needs ``min(s_l, 0)``, ``max(s_r, 0)``, their
    product, a guarded span and the subsonic mask -- identical for every
    one of the eight flux components of a face batch, so they are hoisted
    out of :func:`_hlle_combine` and computed once per call to
    :func:`hlle_flux`.  Returns ``(s_l_m, s_r_p, prod, safe, subsonic)``.
    """
    s_l_m = np.minimum(s_l, 0.0)
    s_r_p = np.maximum(s_r, 0.0)
    span = s_r_p - s_l_m
    # Degenerate span (both speeds zero) can only occur for identically
    # zero states; guard the division and fall back to the average.
    safe = np.where(span > 0.0, span, 1.0)
    prod = s_l_m * s_r_p
    subsonic = span > 0.0
    return s_l_m, s_r_p, prod, safe, subsonic


def _hlle_combine(bounds, F_l, F_r, U_l, U_r, out, t0, t1):
    """The HLLE flux formula with supersonic upwinding built in.

    ``bounds`` is the tuple of :func:`_hlle_wave_bounds`; ``out`` receives
    the combined flux and ``t0``/``t1`` are caller-owned scratch buffers,
    so one face batch is combined with zero allocations.  The evaluation
    order matches the original expression form bit for bit.
    """
    s_l_m, s_r_p, prod, safe, subsonic = bounds
    np.multiply(s_r_p, F_l, out=t0)
    np.multiply(s_l_m, F_r, out=t1)
    np.subtract(t0, t1, out=t0)
    np.subtract(U_r, U_l, out=t1)
    np.multiply(prod, t1, out=t1)
    np.add(t0, t1, out=t0)
    np.divide(t0, safe, out=t0)
    # Central average fallback for the degenerate (zero-span) faces.
    np.add(F_l, F_r, out=t1)
    np.multiply(0.5, t1, out=t1)
    np.copyto(out, t1)
    np.copyto(out, t0, where=subsonic)
    return out


def hlle_flux(W_l: np.ndarray, W_r: np.ndarray, normal: int):
    """HLLE flux of the 7-quantity system at a set of faces.

    Parameters
    ----------
    W_l, W_r:
        Face-collocated primitive SoA states, shape ``(NQ, ...)``, layout
        ``rho, u, v, w, p, Gamma, Pi``.
    normal:
        0, 1 or 2 -- which velocity component is normal to the face
        (x, y, z sweeps of the RHS kernel).

    Returns
    -------
    (flux, ustar):
        ``flux`` has shape ``(NQ, ...)`` and contains the conservative HLLE
        fluxes of mass, momentum and energy plus the *conservative part*
        ``phi*u`` of the Gamma/Pi transport.  ``ustar`` is the
        HLLE-consistent interface velocity used for the non-conservative
        ``-phi * div(u)`` correction.
    """
    mom_n = RHOU + normal
    rho_l, p_l, G_l, P_l = W_l[RHO], W_l[ENERGY], W_l[GAMMA], W_l[PI]
    rho_r, p_r, G_r, P_r = W_r[RHO], W_r[ENERGY], W_r[GAMMA], W_r[PI]
    un_l = W_l[mom_n]
    un_r = W_r[mom_n]

    s_l, s_r = einfeldt_wave_speeds(
        rho_l, un_l, p_l, G_l, P_l, rho_r, un_r, p_r, G_r, P_r
    )

    E_l = total_energy(rho_l, W_l[RHOU], W_l[RHOV], W_l[RHOW], p_l, G_l, P_l)
    E_r = total_energy(rho_r, W_r[RHOU], W_r[RHOV], W_r[RHOW], p_r, G_r, P_r)

    bounds = _hlle_wave_bounds(s_l, s_r)
    flux = np.empty_like(W_l)
    scratch0 = np.empty_like(un_l)
    scratch1 = np.empty_like(un_l)

    # Mass.  Every element of ``flux`` is filled through the ``out=``
    # views of the combine calls below, so the np.empty read here is a
    # write target, not a use of uninitialized data.
    _hlle_combine(bounds, rho_l * un_l, rho_r * un_r, rho_l, rho_r,
                  out=flux[RHO, ...], t0=scratch0, t1=scratch1)  # lint: disable=CL007

    # Momentum: normal component carries the pressure term.
    for comp in (RHOU, RHOV, RHOW):
        u_l_c = W_l[comp]
        u_r_c = W_r[comp]
        F_l = rho_l * un_l * u_l_c
        F_r = rho_r * un_r * u_r_c
        if comp == mom_n:
            F_l = F_l + p_l
            F_r = F_r + p_r
        _hlle_combine(bounds, F_l, F_r, rho_l * u_l_c, rho_r * u_r_c,
                      out=flux[comp, ...], t0=scratch0, t1=scratch1)

    # Energy.
    _hlle_combine(bounds, (E_l + p_l) * un_l, (E_r + p_r) * un_r, E_l, E_r,
                  out=flux[ENERGY, ...], t0=scratch0, t1=scratch1)

    # Advected quantities: conservative part phi * u.
    _hlle_combine(bounds, G_l * un_l, G_r * un_r, G_l, G_r,
                  out=flux[GAMMA, ...], t0=scratch0, t1=scratch1)
    _hlle_combine(bounds, P_l * un_l, P_r * un_r, P_l, P_r,
                  out=flux[PI, ...], t0=scratch0, t1=scratch1)

    # Interface velocity: HLL flux of U == 1 with F == u (U_r - U_l == 0).
    ones = np.ones_like(un_l)
    ustar = np.empty_like(un_l)
    _hlle_combine(bounds, un_l, un_r, ones, ones,
                  out=ustar, t0=scratch0, t1=scratch1)

    return flux, ustar


# Expression-form on purpose: HLLC is the numpy-only contact-resolution
# reference, read against Toro's formulas; HLLE is the production solver.
def hllc_flux(W_l: np.ndarray, W_r: np.ndarray, normal: int):  # lint: disable=CP003
    """HLLC flux: HLLE plus a restored contact wave (Toro).

    Same contract as :func:`hlle_flux`: returns ``(flux, ustar)`` with
    ``flux`` of shape ``(NQ, ...)``.  The contact speed ``s*`` doubles
    as the interface velocity of the quasi-conservative Gamma/Pi
    transport -- HLLC keeps isolated material contacts *exactly*
    stationary, which HLLE smears (the ablation the contact-resolution
    bench quantifies).
    """
    mom_n = RHOU + normal
    rho_l, p_l, G_l, P_l = W_l[RHO], W_l[ENERGY], W_l[GAMMA], W_l[PI]
    rho_r, p_r, G_r, P_r = W_r[RHO], W_r[ENERGY], W_r[GAMMA], W_r[PI]
    un_l = W_l[mom_n]
    un_r = W_r[mom_n]

    s_l, s_r = einfeldt_wave_speeds(
        rho_l, un_l, p_l, G_l, P_l, rho_r, un_r, p_r, G_r, P_r
    )
    # Contact speed (Toro 10.37), guarded against degenerate denominators.
    ml = rho_l * (s_l - un_l)
    mr = rho_r * (s_r - un_r)
    denom = ml - mr
    safe = np.where(np.abs(denom) > 1e-300, denom, 1.0)
    s_star = np.where(
        np.abs(denom) > 1e-300,
        (p_r - p_l + un_l * ml - un_r * mr) / safe,
        0.5 * (un_l + un_r),
    )

    E_l = total_energy(rho_l, W_l[RHOU], W_l[RHOV], W_l[RHOW], p_l, G_l, P_l)
    E_r = total_energy(rho_r, W_r[RHOU], W_r[RHOV], W_r[RHOW], p_r, G_r, P_r)

    def side_flux(W, rho, un, p, E):
        F = np.empty_like(W)
        F[RHO] = rho * un
        for comp in (RHOU, RHOV, RHOW):
            F[comp] = rho * un * W[comp]
        F[mom_n] += p
        F[ENERGY] = (E + p) * un
        F[GAMMA] = W[GAMMA] * un
        F[PI] = W[PI] * un
        return F

    F_l = side_flux(W_l, rho_l, un_l, p_l, E_l)
    F_r = side_flux(W_r, rho_r, un_r, p_r, E_r)

    def star_state(W, rho, un, p, E, s_k):
        """Toro's HLLC star-region conserved state (10.39), with the
        advected Gamma/Pi scaled like density (passive transport)."""
        factor = rho * (s_k - un) / (s_k - s_star)
        U = np.empty_like(W)
        U[RHO] = factor
        for comp in (RHOU, RHOV, RHOW):
            U[comp] = factor * W[comp]
        U[mom_n] = factor * s_star
        U[ENERGY] = factor * (
            E / rho + (s_star - un) * (s_star + p / (rho * (s_k - un)))
        )
        U[GAMMA] = W[GAMMA] * (s_k - un) / (s_k - s_star)
        U[PI] = W[PI] * (s_k - un) / (s_k - s_star)
        return U

    def conserved(W, rho, E):
        U = np.empty_like(W)
        U[RHO] = rho
        for comp in (RHOU, RHOV, RHOW):
            U[comp] = rho * W[comp]
        U[ENERGY] = E
        U[GAMMA] = W[GAMMA]
        U[PI] = W[PI]
        return U

    # Guard the star-state division when s_k ~ s_star (then the star
    # region is empty on that side and the branch is never selected).
    eps = 1e-300
    with np.errstate(divide="ignore", invalid="ignore"):
        U_star_l = star_state(W_l, rho_l, un_l, p_l, E_l,
                              np.where(np.abs(s_l - s_star) > eps, s_l,
                                       s_star - 1.0))
        U_star_r = star_state(W_r, rho_r, un_r, p_r, E_r,
                              np.where(np.abs(s_r - s_star) > eps, s_r,
                                       s_star + 1.0))
    U_l = conserved(W_l, rho_l, E_l)
    U_r = conserved(W_r, rho_r, E_r)

    F_star_l = F_l + s_l * (U_star_l - U_l)
    F_star_r = F_r + s_r * (U_star_r - U_r)

    flux = np.where(
        s_l >= 0.0,
        F_l,
        np.where(
            s_star >= 0.0,
            F_star_l,
            np.where(s_r > 0.0, F_star_r, F_r),
        ),
    )
    # Upwinded interface velocity: the contact speed where subsonic.
    ustar = np.where(
        s_l >= 0.0, un_l, np.where(s_r <= 0.0, un_r, s_star)
    )
    return flux, ustar
