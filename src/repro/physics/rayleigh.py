"""Classical single-bubble collapse models (validation baselines).

The paper (Section 2) traces cavitation modeling back to Lord Rayleigh's
empty-cavity collapse, Gilmore's compressible extension and Hickling &
Plesset's collapse/rebound studies.  These models are the *baselines* the
3D two-phase solver is validated against in the integration tests:

* :func:`rayleigh_collapse_time` -- the analytic collapse time of an empty
  cavity, ``t_c = 0.91468 * R0 * sqrt(rho_L / dp)``;
* :class:`RayleighPlesset` -- incompressible bubble dynamics with a
  polytropic gas content;
* :class:`KellerMiksis` -- first-order compressible correction;
* :class:`Gilmore` -- compressible model built on the Tait liquid EOS.

All integrators use ``scipy.integrate.solve_ivp`` with stiff-safe settings
and report trajectories ``(t, R, Rdot)`` plus detected collapse events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

#: Rayleigh's constant: t_c = K * R0 * sqrt(rho / dp) for an empty cavity.
RAYLEIGH_CONSTANT = 0.914681
# K = sqrt(3/2) * Beta(5/6, 1/2) / ... numerically 0.914681...


def rayleigh_collapse_time(R0: float, rho_liquid: float, dp: float) -> float:
    """Analytic collapse time of an empty spherical cavity.

    Parameters
    ----------
    R0:
        Initial bubble radius.
    rho_liquid:
        Liquid density.
    dp:
        Driving pressure difference ``p_inf - p_bubble`` (must be > 0).

    Returns the collapse time as a python float.
    """
    if dp <= 0:
        raise ValueError("driving pressure difference must be positive")
    return RAYLEIGH_CONSTANT * R0 * np.sqrt(rho_liquid / dp)


@dataclass
class BubbleTrajectory:
    """Result of a bubble-dynamics integration."""

    t: np.ndarray
    R: np.ndarray
    Rdot: np.ndarray
    collapse_time: float | None = None  #: time of first radius minimum
    min_radius: float | None = None

    def radius_at(self, t: float) -> float:
        """Linear interpolation of the radius trajectory."""
        return float(np.interp(t, self.t, self.R))


@dataclass
class RayleighPlesset:
    """Incompressible Rayleigh--Plesset dynamics with polytropic gas.

    ``R * Rdd + 1.5 * Rd^2 = (p_B(R) - p_inf) / rho`` with
    ``p_B = pg0 * (R0/R)^(3*kappa)``.  Surface tension and viscosity are
    negligible on cavitation-collapse time scales (paper Section 3) but can
    be enabled for completeness.
    """

    R0: float
    p_inf: float
    rho: float
    pg0: float = 0.0  #: initial gas pressure inside the bubble
    kappa: float = 1.4  #: polytropic exponent of the bubble content
    sigma: float = 0.0  #: surface tension coefficient
    mu: float = 0.0  #: liquid dynamic viscosity

    def bubble_pressure(self, R, Rdot=0.0):
        """Pressure exerted by the bubble content at radius ``R``."""
        p = self.pg0 * (self.R0 / np.asarray(R)) ** (3.0 * self.kappa)
        if self.sigma:
            p = p - 2.0 * self.sigma / R
        if self.mu:
            p = p - 4.0 * self.mu * Rdot / R
        return p

    def _rhs(self, t, y):
        R, Rd = y
        pB = self.bubble_pressure(R, Rd)
        Rdd = ((pB - self.p_inf) / self.rho - 1.5 * Rd * Rd) / R
        return (Rd, Rdd)

    def integrate(
        self, t_end: float, rtol: float = 1e-9, atol: float = 1e-12,
        max_step: float | None = None, r_floor_frac: float = 1e-3,
    ) -> BubbleTrajectory:
        """Integrate to ``t_end`` (or until the radius hits the floor).

        ``r_floor_frac * R0`` terminates the integration: for an empty
        cavity the Rayleigh-Plesset singularity is reached in finite time
        and the solver would otherwise stall.
        """
        floor = r_floor_frac * self.R0

        def hit_floor(t, y):
            return y[0] - floor

        hit_floor.terminal = True
        hit_floor.direction = -1

        sol = solve_ivp(
            self._rhs,
            (0.0, t_end),
            (self.R0, 0.0),
            rtol=rtol,
            atol=atol,
            dense_output=True,
            events=hit_floor,
            max_step=max_step or np.inf,
            method="RK45",
        )
        R = sol.y[0]
        traj = BubbleTrajectory(t=sol.t, R=R, Rdot=sol.y[1])
        if sol.t_events[0].size:
            traj.collapse_time = float(sol.t_events[0][0])
            traj.min_radius = floor
        elif R.size:
            imin = int(np.argmin(R))
            traj.min_radius = float(R[imin])
            if 0 < imin < R.size - 1:
                traj.collapse_time = float(sol.t[imin])
        return traj


@dataclass
class KellerMiksis(RayleighPlesset):
    """Keller--Miksis equation: first-order compressibility correction.

    ``(1 - Rd/c) R Rdd + 1.5 Rd^2 (1 - Rd/(3c))
        = (1 + Rd/c) (pB - p_inf)/rho + R/(rho c) dpB/dt``.
    """

    c: float = 1500.0  #: liquid speed of sound

    def _rhs(self, t, y):
        R, Rd = y
        c, rho = self.c, self.rho
        pB = self.bubble_pressure(R, Rd)
        # dpB/dt for the polytropic content (viscous term omitted in the
        # derivative; it is second order in the correction).
        dpB = -3.0 * self.kappa * self.pg0 * (self.R0 / R) ** (
            3.0 * self.kappa
        ) * Rd / R
        if self.sigma:
            dpB = dpB + 2.0 * self.sigma * Rd / (R * R)
        lhs_coeff = (1.0 - Rd / c) * R
        # Clamp: the model loses validity as Rd -> c; keep the ODE solvable.
        lhs_coeff = max(lhs_coeff, 1e-12 * self.R0)
        rhs = (
            (1.0 + Rd / c) * (pB - self.p_inf) / rho
            + R * dpB / (rho * c)
            - 1.5 * Rd * Rd * (1.0 - Rd / (3.0 * c))
        )
        return (Rd, rhs / lhs_coeff)


@dataclass
class Gilmore:
    """Gilmore's compressible collapse model on a Tait liquid.

    The liquid obeys the Tait EOS ``p = (p0 + B) (rho/rho0)^n - B`` and the
    bubble wall enthalpy / local sound speed follow from it.  This is the
    classical model the paper cites for the late, compressibility-dominated
    collapse stages.
    """

    R0: float
    p_inf: float
    rho0: float
    pg0: float = 0.0
    kappa: float = 1.4
    p0: float = 1.0e5  #: Tait reference pressure
    B: float = 3.049e8  #: Tait stiffness (water: ~3049 bar)
    n: float = 7.15  #: Tait exponent (water)

    def _enthalpy(self, p):
        """Liquid enthalpy difference H(p) - H(p_inf) from the Tait EOS."""
        n, B = self.n, self.B
        pref = self.p0 + B
        c0 = (n / (n - 1.0)) * pref / self.rho0
        return c0 * (
            ((p + B) / pref) ** ((n - 1.0) / n)
            - ((self.p_inf + B) / pref) ** ((n - 1.0) / n)
        )

    def _sound_speed(self, H):
        c_inf2 = (
            self.n
            * (self.p0 + self.B)
            / self.rho0
            * ((self.p_inf + self.B) / (self.p0 + self.B)) ** ((self.n - 1.0) / self.n)
        )
        return np.sqrt(np.maximum(c_inf2 + (self.n - 1.0) * H, 1e-12))

    def bubble_pressure(self, R):
        return self.pg0 * (self.R0 / np.asarray(R)) ** (3.0 * self.kappa)

    def _rhs(self, t, y):
        R, Rd = y
        pB = self.bubble_pressure(R)
        H = self._enthalpy(pB)
        C = float(self._sound_speed(H))
        dpB_dR = -3.0 * self.kappa * pB / R
        # dH/dp = 1/rho(p); rho(p) from Tait.
        rho_p = self.rho0 * ((pB + self.B) / (self.p0 + self.B)) ** (1.0 / self.n)
        dH_dt = dpB_dR * Rd / rho_p
        x = Rd / C
        lhs_coeff = R * (1.0 - x)
        lhs_coeff = max(lhs_coeff, 1e-12 * self.R0)
        rhs = (
            H * (1.0 + x)
            + R * dH_dt / C * (1.0 - x)
            - 1.5 * Rd * Rd * (1.0 - x / 3.0)
        )
        return (Rd, rhs / lhs_coeff)

    def integrate(
        self, t_end: float, rtol: float = 1e-9, atol: float = 1e-12,
        r_floor_frac: float = 1e-3,
    ) -> BubbleTrajectory:
        floor = r_floor_frac * self.R0

        def hit_floor(t, y):
            return y[0] - floor

        hit_floor.terminal = True
        hit_floor.direction = -1

        sol = solve_ivp(
            self._rhs,
            (0.0, t_end),
            (self.R0, 0.0),
            rtol=rtol,
            atol=atol,
            events=hit_floor,
            method="RK45",
        )
        traj = BubbleTrajectory(t=sol.t, R=sol.y[0], Rdot=sol.y[1])
        if sol.t_events[0].size:
            traj.collapse_time = float(sol.t_events[0][0])
            traj.min_radius = floor
        elif sol.y[0].size:
            imin = int(np.argmin(sol.y[0]))
            traj.min_radius = float(sol.y[0][imin])
            if 0 < imin < sol.y[0].size - 1:
                traj.collapse_time = float(sol.t[imin])
        return traj
