"""Exact Riemann solver for the stiffened-gas Euler equations.

Validation baseline for the HLLE/WENO solver: the classical
Godunov/Toro exact solver, generalized to the stiffened EOS
``p = (gamma - 1) rho e - gamma p_c``.  A stiffened gas behaves like an
ideal gas in the shifted pressure ``q = p + p_c`` (sound speed
``c^2 = gamma q / rho``), so the ideal-gas shock and rarefaction
relations hold per side with ``p -> p + p_c`` -- including two-phase
problems where ``gamma`` and ``p_c`` differ across the contact.

Used by the integration tests (Sod-type tubes, strong shocks) and by the
shock-tube example to plot numerical vs exact profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .state import COMPUTE_DTYPE


@dataclass(frozen=True)
class RiemannSide:
    """One initial state of the Riemann problem."""

    rho: float
    u: float  #: velocity normal to the interface
    p: float
    gamma: float = 1.4
    pc: float = 0.0

    @property
    def q(self) -> float:
        """Shifted pressure ``p + p_c``."""
        return self.p + self.pc

    @property
    def c(self) -> float:
        """Sound speed ``sqrt(gamma (p + p_c) / rho)``."""
        return float(np.sqrt(self.gamma * self.q / self.rho))


@dataclass(frozen=True)
class RiemannSolution:
    """Star-region state plus the input sides (for sampling)."""

    left: RiemannSide
    right: RiemannSide
    p_star: float
    u_star: float
    rho_star_l: float
    rho_star_r: float

    def wave_speeds(self) -> dict:
        """Characteristic speeds of the five-wave structure."""
        L, R = self.left, self.right
        out = {}
        qsl = self.p_star + L.pc
        if self.p_star > L.p:  # left shock
            g = L.gamma
            out["left_head"] = out["left_tail"] = L.u - L.c * np.sqrt(
                (g + 1) / (2 * g) * qsl / L.q + (g - 1) / (2 * g)
            )
        else:  # left rarefaction
            c_star = L.c * (qsl / L.q) ** ((L.gamma - 1) / (2 * L.gamma))
            out["left_head"] = L.u - L.c
            out["left_tail"] = self.u_star - c_star
        out["contact"] = self.u_star
        qsr = self.p_star + R.pc
        if self.p_star > R.p:  # right shock
            g = R.gamma
            out["right_tail"] = out["right_head"] = R.u + R.c * np.sqrt(
                (g + 1) / (2 * g) * qsr / R.q + (g - 1) / (2 * g)
            )
        else:
            c_star = R.c * (qsr / R.q) ** ((R.gamma - 1) / (2 * R.gamma))
            out["right_tail"] = self.u_star + c_star
            out["right_head"] = R.u + R.c
        return out


def _f_side(p: float, s: RiemannSide) -> tuple[float, float]:
    """Toro's f(p) and f'(p) for one side, in shifted pressure."""
    g = s.gamma
    q = p + s.pc
    if q <= 0:
        # Outside the physical domain; steer Newton back.
        return -1e30, 1e30
    if p > s.p:  # shock
        A = 2.0 / ((g + 1.0) * s.rho)
        B = (g - 1.0) / (g + 1.0) * s.q
        root = np.sqrt(A / (q + B))
        f = (p - s.p) * root
        df = root * (1.0 - 0.5 * (p - s.p) / (q + B))
    else:  # rarefaction
        f = (
            2.0 * s.c / (g - 1.0)
            * ((q / s.q) ** ((g - 1.0) / (2.0 * g)) - 1.0)
        )
        df = 1.0 / (s.rho * s.c) * (q / s.q) ** (-(g + 1.0) / (2.0 * g))
    return float(f), float(df)


def solve(left: RiemannSide, right: RiemannSide,
          tol: float = 1e-12, max_iter: int = 200) -> RiemannSolution:
    """Solve for the star region (Newton iteration on p*).

    Returns a :class:`RiemannSolution` with the star pressure, velocity
    and the densities either side of the contact.
    """
    du = right.u - left.u
    # Initial guess: PVRS (acoustic) estimate, clipped positive.
    p0 = 0.5 * (left.p + right.p) - 0.125 * du * (left.rho + right.rho) * (
        left.c + right.c
    )
    floor = 1e-10 * max(left.q, right.q) - min(left.pc, right.pc)
    p = max(p0, floor + 1e-14)
    for _ in range(max_iter):
        fl, dfl = _f_side(p, left)
        fr, dfr = _f_side(p, right)
        f = fl + fr + du
        df = dfl + dfr
        step = f / df
        p_new = p - step
        if p_new + min(left.pc, right.pc) <= 0:
            p_new = 0.5 * (p + floor)
        if abs(p_new - p) <= tol * max(abs(p_new), 1.0):
            p = p_new
            break
        p = p_new
    fl, _ = _f_side(p, left)
    fr, _ = _f_side(p, right)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl)

    def rho_star(s: RiemannSide) -> float:
        g = s.gamma
        q = p + s.pc
        if p > s.p:  # shock: Rankine-Hugoniot
            r = (q / s.q + (g - 1.0) / (g + 1.0)) / (
                (g - 1.0) / (g + 1.0) * q / s.q + 1.0
            )
            return s.rho * r
        return s.rho * (q / s.q) ** (1.0 / g)  # isentropic

    return RiemannSolution(
        left=left, right=right, p_star=float(p), u_star=float(u_star),
        rho_star_l=rho_star(left), rho_star_r=rho_star(right),
    )


def sample(sol: RiemannSolution, xi):
    """Sample the self-similar solution at ``xi = x / t``.

    Returns ``(rho, u, p)`` arrays broadcast over ``xi``.
    """
    xi = np.asarray(xi, dtype=COMPUTE_DTYPE)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)
    L, R = sol.left, sol.right
    ws = sol.wave_speeds()

    # Left of contact.
    left_region = xi <= ws["contact"]
    if sol.p_star > L.p:  # left shock
        s = ws["left_head"]
        pre = left_region & (xi < s)
        post = left_region & (xi >= s)
        rho[pre], u[pre], p[pre] = L.rho, L.u, L.p
        rho[post], u[post], p[post] = sol.rho_star_l, sol.u_star, sol.p_star
    else:  # left rarefaction fan
        head, tail = ws["left_head"], ws["left_tail"]
        pre = left_region & (xi < head)
        fan = left_region & (xi >= head) & (xi < tail)
        star = left_region & (xi >= tail)
        rho[pre], u[pre], p[pre] = L.rho, L.u, L.p
        g = L.gamma
        cf = 2.0 / (g + 1.0) * (L.c + 0.5 * (g - 1.0) * (L.u - xi[fan]))
        uf = 2.0 / (g + 1.0) * (0.5 * (g - 1.0) * L.u + L.c + xi[fan])
        qf = L.q * (cf / L.c) ** (2.0 * g / (g - 1.0))
        rho[fan] = g * qf / cf**2
        u[fan] = uf
        p[fan] = qf - L.pc
        rho[star], u[star], p[star] = sol.rho_star_l, sol.u_star, sol.p_star

    # Right of contact.
    right_region = ~left_region
    if sol.p_star > R.p:  # right shock
        s = ws["right_head"]
        post = right_region & (xi <= s)
        pre = right_region & (xi > s)
        rho[pre], u[pre], p[pre] = R.rho, R.u, R.p
        rho[post], u[post], p[post] = sol.rho_star_r, sol.u_star, sol.p_star
    else:
        head, tail = ws["right_head"], ws["right_tail"]
        pre = right_region & (xi > head)
        fan = right_region & (xi <= head) & (xi > tail)
        star = right_region & (xi <= tail)
        rho[pre], u[pre], p[pre] = R.rho, R.u, R.p
        g = R.gamma
        cf = 2.0 / (g + 1.0) * (R.c - 0.5 * (g - 1.0) * (R.u - xi[fan]))
        uf = 2.0 / (g + 1.0) * (0.5 * (g - 1.0) * R.u - R.c + xi[fan])
        qf = R.q * (cf / R.c) ** (2.0 * g / (g - 1.0))
        rho[fan] = g * qf / cf**2
        u[fan] = uf
        p[fan] = qf - R.pc
        rho[star], u[star], p[star] = sol.rho_star_r, sol.u_star, sol.p_star

    return rho, u, p
