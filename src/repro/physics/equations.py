"""Right-hand-side assembly for the two-phase Euler system.

Combines the stages of the paper's RHS pipeline (Fig. 1, right) on SoA
data:

    CONV -> WENO -> HLLE -> SUM

``compute_rhs`` performs the three directional sweeps over a ghost-padded
primitive field and returns the time derivative of the conserved state.
The core layer wraps this with block storage, AoS/SoA conversion and ring
buffers; this module is pure array mathematics and is what integration and
property tests validate directly.
"""

from __future__ import annotations

import numpy as np

from .eos import conserved_to_primitive
from .riemann import hllc_flux, hlle_flux
from .state import GAMMA, NQ, PI
from .weno import Weno5Workspace, weno3, weno5, weno5_fused

#: Ghost cells required per side by the WENO5 stencil.
STENCIL_WIDTH = 3


#: Available numerical-flux functions keyed by name.
RIEMANN_SOLVERS = {"hlle": hlle_flux, "hllc": hllc_flux}


def _sweep_faces(Wd: np.ndarray, fused: bool,
                 workspace: Weno5Workspace | None, order: int = 5):
    """WENO-reconstruct all quantities of ``Wd`` along its last axis."""
    if order == 3:
        return weno3(Wd)
    if order != 5:
        raise ValueError(f"unsupported WENO order {order}")
    nfaces = Wd.shape[-1] - 5
    out_shape = Wd.shape[:-1] + (nfaces,)
    if workspace is None or workspace.shape != out_shape:
        workspace = Weno5Workspace(out_shape, dtype=Wd.dtype)
    if fused:
        return weno5_fused(Wd, workspace)
    return weno5(Wd, workspace)


def directional_rhs(
    Wpad: np.ndarray,
    axis: int,
    h: float,
    fused: bool = False,
    workspace: Weno5Workspace | None = None,
    order: int = 5,
    solver: str = "hlle",
):
    """Flux divergence contribution of one directional sweep.

    Parameters
    ----------
    Wpad:
        Primitive SoA field ``(NQ, nz+6, ny+6, nx+6)`` (ghost-padded in all
        directions).
    axis:
        Sweep direction: 0 = z (array axis 1), 1 = y (axis 2), 2 = x
        (axis 3).  The *normal velocity* passed to HLLE is ``w``, ``v``,
        ``u`` respectively.
    h:
        Grid spacing.

    Returns
    -------
    (div, phi_corr):
        ``div`` -- shape ``(NQ, nz, ny, nx)`` flux divergence (to be
        subtracted from the state's time derivative); ``phi_corr`` -- the
        non-conservative correction ``phi * div(u)`` for the ``Gamma`` and
        ``Pi`` rows (zero elsewhere), to be *added*.
    """
    g = STENCIL_WIDTH
    inner = slice(g, -g)
    if axis == 0:  # z sweep
        Wd = Wpad[:, :, inner, inner]
        sweep_axis = 1
        normal = 2
    elif axis == 1:  # y sweep
        Wd = Wpad[:, inner, :, inner]
        sweep_axis = 2
        normal = 1
    elif axis == 2:  # x sweep
        Wd = Wpad[:, inner, inner, :]
        sweep_axis = 3
        normal = 0
    else:
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")

    # Put the sweep direction last so WENO/HLLE vectorize over contiguous
    # lines (the "directional sweeps" of the paper's computation
    # reordering).
    Wd = np.swapaxes(Wd, sweep_axis, 3) if sweep_axis != 3 else Wd
    W_minus, W_plus = _sweep_faces(
        np.ascontiguousarray(Wd), fused, workspace, order=order
    )
    # Explicit branch (not the RIEMANN_SOLVERS table): dict-of-functions
    # dispatch does not lower to compiled backends (perfcheck CP004).
    if solver == "hlle":
        flux_fn = hlle_flux
    elif solver == "hllc":
        flux_fn = hllc_flux
    else:
        raise ValueError(
            f"unknown Riemann solver {solver!r}; choose from "
            f"{sorted(RIEMANN_SOLVERS)}"
        )
    flux, ustar = flux_fn(W_minus, W_plus, normal)

    inv_h = 1.0 / h
    div = np.subtract(flux[..., 1:], flux[..., :-1])
    div *= inv_h
    du = np.subtract(ustar[..., 1:], ustar[..., :-1])
    du *= inv_h

    phi_corr = np.zeros_like(div)
    Wc = Wd[..., g:-g]
    np.multiply(Wc[GAMMA], du, out=phi_corr[GAMMA])
    np.multiply(Wc[PI], du, out=phi_corr[PI])

    if sweep_axis != 3:
        div = np.swapaxes(div, sweep_axis, 3)
        phi_corr = np.swapaxes(phi_corr, sweep_axis, 3)
    return div, phi_corr


def compute_rhs(
    Upad: np.ndarray,
    h: float,
    fused: bool = False,
    order: int = 5,
    solver: str = "hlle",
) -> np.ndarray:
    """Full RHS of the semi-discrete system from padded conserved data.

    Parameters
    ----------
    Upad:
        Conserved SoA field ``(NQ, n+6, n+6, n+6)`` (or anisotropic interior
        extents), ghost cells filled by the node/cluster layers.
    h:
        Uniform grid spacing.
    fused:
        Use the micro-fused WENO kernel.
    order:
        Spatial reconstruction order: 5 (production) or 3 (ablation).
    solver:
        Numerical flux: "hlle" (production) or "hllc" (contact-sharp
        alternative).

    Returns
    -------
    Time derivative ``dU/dt`` of shape ``(NQ, nz, ny, nx)``.
    """
    if Upad.shape[0] != NQ:
        raise ValueError(f"expected leading axis {NQ}, got {Upad.shape}")
    Wpad = conserved_to_primitive(Upad)  # CONV stage
    rhs = None
    for axis in range(3):
        div, phi_corr = directional_rhs(
            Wpad, axis, h, fused=fused, order=order, solver=solver
        )
        contrib = phi_corr - div
        rhs = contrib if rhs is None else rhs + contrib
    return rhs
