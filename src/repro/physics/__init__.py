"""Governing equations and numerical schemes (paper Section 3).

Submodules
----------
state
    Quantity layout (7 evolved quantities), AoS/SoA conversions.
eos
    Stiffened-gas equation of state, material definitions, CONV/BACK.
weno
    Fifth-order WENO reconstruction (baseline + micro-fused).
riemann
    HLLE numerical flux with quasi-conservative Gamma/Pi transport.
equations
    Directional-sweep RHS assembly.
rayleigh
    Classical single-bubble collapse baselines (Rayleigh, Rayleigh-Plesset,
    Keller-Miksis, Gilmore).
"""

from .eos import (
    LIQUID,
    VAPOR,
    Material,
    conserved_to_primitive,
    max_characteristic_velocity,
    mixture,
    pressure,
    primitive_to_conserved,
    sound_speed,
    total_energy,
)
from .equations import STENCIL_WIDTH, compute_rhs, directional_rhs
from .exact_riemann import RiemannSide, RiemannSolution, sample, solve
from .rayleigh import (
    Gilmore,
    KellerMiksis,
    RayleighPlesset,
    rayleigh_collapse_time,
)
from .riemann import einfeldt_wave_speeds, hllc_flux, hlle_flux
from .state import (
    ADVECTED,
    CONSERVED,
    COMPUTE_DTYPE,
    ENERGY,
    GAMMA,
    NAMES,
    NQ,
    PI,
    RHO,
    RHOU,
    RHOV,
    RHOW,
    STORAGE_DTYPE,
    aos_to_soa,
    soa_to_aos,
    zeros_aos,
)
from .weno import Weno5Workspace, weno3, weno5, weno5_fused

__all__ = [
    "ADVECTED",
    "CONSERVED",
    "COMPUTE_DTYPE",
    "ENERGY",
    "GAMMA",
    "Gilmore",
    "KellerMiksis",
    "LIQUID",
    "Material",
    "NAMES",
    "NQ",
    "PI",
    "RHO",
    "RHOU",
    "RHOV",
    "RHOW",
    "RayleighPlesset",
    "RiemannSide",
    "RiemannSolution",
    "STENCIL_WIDTH",
    "sample",
    "solve",
    "STORAGE_DTYPE",
    "VAPOR",
    "Weno5Workspace",
    "aos_to_soa",
    "compute_rhs",
    "conserved_to_primitive",
    "directional_rhs",
    "einfeldt_wave_speeds",
    "hllc_flux",
    "hlle_flux",
    "max_characteristic_velocity",
    "mixture",
    "pressure",
    "primitive_to_conserved",
    "rayleigh_collapse_time",
    "soa_to_aos",
    "sound_speed",
    "total_energy",
    "weno3",
    "weno5",
    "weno5_fused",
    "zeros_aos",
]
