"""Fifth-order WENO reconstruction (Jiang & Shu 1996).

The RHS kernel reconstructs primitive quantities at cell faces with a
fifth-order Weighted Essentially Non-Oscillatory scheme -- a non-linear,
data-dependent spatial stencil (paper Section 3).  Two implementations are
provided:

* :func:`weno5` -- the readable baseline, allocating temporaries freely;
* :func:`weno5_fused` -- a workspace-reusing variant that mirrors the
  paper's "micro-fused" WENO kernel (Table 9): identical arithmetic, fewer
  memory passes.  Tests assert bitwise-comparable results; the Table 9
  benchmark measures the speedup.

Conventions
-----------
All functions reconstruct along the **last axis**.  For an input of length
``M`` along that axis they return reconstructions at the ``M - 5`` faces
that have a full five-point stencil on the corresponding side:

* ``minus`` (left-biased) face value at ``x_{i+1/2}`` uses cells
  ``i-2 .. i+2``;
* ``plus`` (right-biased) face value at ``x_{i+1/2}`` uses cells
  ``i-1 .. i+3``.

With three ghost cells on each side of an ``n``-cell line (padded length
``n + 6``) this yields exactly the ``n + 1`` faces the flux summation needs,
with ``minus[j]`` and ``plus[j]`` collocated at the same face.
"""

from __future__ import annotations

import numpy as np

from .state import COMPUTE_DTYPE

#: Smoothness-indicator regularization of Jiang & Shu.
WENO_EPS = 1.0e-6

# Optimal (linear) weights of the three candidate stencils.
_D0, _D1, _D2 = 0.1, 0.6, 0.3

# Smoothness-indicator coefficients.
_C13 = 13.0 / 12.0


def _weno5_minus_raw(a, b, c, d, e, out=None):
    """Left-biased reconstruction at the right face of the ``c`` cell.

    ``a..e`` are the five cell averages ``v_{i-2} .. v_{i+2}``; returns the
    WENO5 approximation of ``v_{i+1/2}^-``.
    """
    is0 = _C13 * (a - 2.0 * b + c) ** 2 + 0.25 * (a - 4.0 * b + 3.0 * c) ** 2
    is1 = _C13 * (b - 2.0 * c + d) ** 2 + 0.25 * (b - d) ** 2
    is2 = _C13 * (c - 2.0 * d + e) ** 2 + 0.25 * (3.0 * c - 4.0 * d + e) ** 2

    alpha0 = _D0 / (WENO_EPS + is0) ** 2
    alpha1 = _D1 / (WENO_EPS + is1) ** 2
    alpha2 = _D2 / (WENO_EPS + is2) ** 2
    inv_sum = 1.0 / (alpha0 + alpha1 + alpha2)

    p0 = (2.0 * a - 7.0 * b + 11.0 * c) * (1.0 / 6.0)
    p1 = (-b + 5.0 * c + 2.0 * d) * (1.0 / 6.0)
    p2 = (2.0 * c + 5.0 * d - e) * (1.0 / 6.0)

    res = (alpha0 * p0 + alpha1 * p1 + alpha2 * p2) * inv_sum
    if out is not None:
        out[...] = res
        return out
    return res


def _weno5_minus_ws(a, b, c, d, e, ws, out):
    """Left-biased reconstruction into ``out`` using workspace buffers.

    Issues the *exact* evaluation tree of :func:`_weno5_minus_raw` as
    ``out=``-threaded ufunc calls, so the result is bit-identical to the
    expression form while every temporary lives in the workspace.
    """
    t0, t1, t2, is0, is1, is2, acc, num, _ = ws

    # is0 = 13/12 (a - 2b + c)^2 + 1/4 (a - 4b + 3c)^2
    np.multiply(2.0, b, out=t0)
    np.subtract(a, t0, out=t0)
    np.add(t0, c, out=t0)
    np.power(t0, 2, out=t0)
    np.multiply(_C13, t0, out=t0)
    np.multiply(4.0, b, out=t1)
    np.subtract(a, t1, out=t1)
    np.multiply(3.0, c, out=t2)
    np.add(t1, t2, out=t1)
    np.power(t1, 2, out=t1)
    np.multiply(0.25, t1, out=t1)
    np.add(t0, t1, out=is0)

    # is1 = 13/12 (b - 2c + d)^2 + 1/4 (b - d)^2
    np.multiply(2.0, c, out=t0)
    np.subtract(b, t0, out=t0)
    np.add(t0, d, out=t0)
    np.power(t0, 2, out=t0)
    np.multiply(_C13, t0, out=t0)
    np.subtract(b, d, out=t1)
    np.power(t1, 2, out=t1)
    np.multiply(0.25, t1, out=t1)
    np.add(t0, t1, out=is1)

    # is2 = 13/12 (c - 2d + e)^2 + 1/4 (3c - 4d + e)^2
    np.multiply(2.0, d, out=t0)
    np.subtract(c, t0, out=t0)
    np.add(t0, e, out=t0)
    np.power(t0, 2, out=t0)
    np.multiply(_C13, t0, out=t0)
    np.multiply(3.0, c, out=t1)
    np.multiply(4.0, d, out=t2)
    np.subtract(t1, t2, out=t1)
    np.add(t1, e, out=t1)
    np.power(t1, 2, out=t1)
    np.multiply(0.25, t1, out=t1)
    np.add(t0, t1, out=is2)

    # alpha_k = d_k / (eps + is_k)^2, stored back into is0..is2
    np.add(WENO_EPS, is0, out=is0)
    np.power(is0, 2, out=is0)
    np.divide(_D0, is0, out=is0)
    np.add(WENO_EPS, is1, out=is1)
    np.power(is1, 2, out=is1)
    np.divide(_D1, is1, out=is1)
    np.add(WENO_EPS, is2, out=is2)
    np.power(is2, 2, out=is2)
    np.divide(_D2, is2, out=is2)

    # inv_sum = 1 / (alpha0 + alpha1 + alpha2), in t0
    np.add(is0, is1, out=t0)
    np.add(t0, is2, out=t0)
    np.divide(1.0, t0, out=t0)

    # candidate polynomials p0, p1, p2 in t1, t2, acc
    np.multiply(2.0, a, out=t1)
    np.multiply(7.0, b, out=t2)
    np.subtract(t1, t2, out=t1)
    np.multiply(11.0, c, out=t2)
    np.add(t1, t2, out=t1)
    np.multiply(t1, 1.0 / 6.0, out=t1)

    np.negative(b, out=t2)
    np.multiply(5.0, c, out=num)
    np.add(t2, num, out=t2)
    np.multiply(2.0, d, out=num)
    np.add(t2, num, out=t2)
    np.multiply(t2, 1.0 / 6.0, out=t2)

    np.multiply(2.0, c, out=acc)
    np.multiply(5.0, d, out=num)
    np.add(acc, num, out=acc)
    np.subtract(acc, e, out=acc)
    np.multiply(acc, 1.0 / 6.0, out=acc)

    # res = (alpha0 p0 + alpha1 p1 + alpha2 p2) * inv_sum
    np.multiply(is0, t1, out=t1)
    np.multiply(is1, t2, out=t2)
    np.add(t1, t2, out=t1)
    np.multiply(is2, acc, out=acc)
    np.add(t1, acc, out=t1)
    np.multiply(t1, t0, out=out)
    return out


def weno5(
    v: np.ndarray,
    workspace: "Weno5Workspace | None" = None,
    out_minus: np.ndarray | None = None,
    out_plus: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Reconstruct both face states along the last axis.

    Parameters
    ----------
    v:
        Array whose last axis holds ``M >= 6`` cell averages (including
        ghosts).
    workspace, out_minus, out_plus:
        Optional preallocated :class:`Weno5Workspace` and output arrays
        (shape ``v.shape[:-1] + (M - 5,)``).  Callers on the hot path
        hold these per slice shape; passing them eliminates all per-call
        allocations.  Results are bit-identical either way.

    Returns
    -------
    (minus, plus):
        Arrays of shape ``v.shape[:-1] + (M - 5,)``.  ``minus[..., j]`` and
        ``plus[..., j]`` are the left/right-biased states at the face
        between cells ``j + 2`` and ``j + 3`` of the padded line.
    """
    if v.shape[-1] < 6:
        raise ValueError(f"need at least 6 cells along last axis, got {v.shape[-1]}")
    nfaces = v.shape[-1] - 5
    out_shape = v.shape[:-1] + (nfaces,)
    if workspace is None or workspace.shape != out_shape:
        workspace = Weno5Workspace(out_shape, dtype=v.dtype)
    if out_minus is None:
        out_minus = np.empty(out_shape, dtype=v.dtype)
    if out_plus is None:
        out_plus = np.empty(out_shape, dtype=v.dtype)
    a = v[..., 0:nfaces]
    b = v[..., 1 : 1 + nfaces]
    c = v[..., 2 : 2 + nfaces]
    d = v[..., 3 : 3 + nfaces]
    e = v[..., 4 : 4 + nfaces]
    f = v[..., 5 : 5 + nfaces]
    ws = workspace.buffers()
    _weno5_minus_ws(a, b, c, d, e, ws, out_minus)
    # The right-biased stencil is the mirror image of the left-biased one.
    _weno5_minus_ws(f, e, d, c, b, ws, out_plus)
    return out_minus, out_plus


class Weno5Workspace:
    """Preallocated scratch space for :func:`weno5_fused`.

    A workspace is keyed to the output shape; re-creating one per call
    would defeat the purpose, so callers (the core-layer kernels) hold on
    to a workspace per slice shape -- the Python analogue of the paper's
    per-thread ring buffers.
    """

    def __init__(self, shape: tuple[int, ...], dtype=COMPUTE_DTYPE):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        # Nine scratch arrays cover the in-flight temporaries of the fused
        # evaluation (3 smoothness indicators, 3 alphas reused as weights,
        # 2 accumulators, 1 general-purpose buffer).
        self._bufs = tuple(np.empty(shape, dtype=dtype) for _ in range(9))

    def buffers(self) -> tuple[np.ndarray, ...]:
        """The nine scratch buffers, in unpack order."""
        return self._bufs


def _weno5_minus_fused(a, b, c, d, e, ws: tuple[np.ndarray, ...], out: np.ndarray):
    """Fused left-biased reconstruction writing into ``out``.

    Arithmetic identical to :func:`_weno5_minus_raw`, but every temporary
    lives in the preallocated workspace and operations are issued with
    ``out=`` so no fresh allocations occur -- the NumPy analogue of the
    paper's micro-fusion (common-subexpression reuse plus fewer passes over
    memory).
    """
    t0, t1, t2, is0, is1, is2, acc, num, den = ws

    # is0 = 13/12 (a - 2b + c)^2 + 1/4 (a - 4b + 3c)^2
    np.subtract(a, b, out=t0)
    np.subtract(t0, b, out=t0)
    np.add(t0, c, out=t0)  # a - 2b + c
    np.multiply(t0, t0, out=is0)
    np.multiply(is0, _C13, out=is0)
    np.subtract(a, 4.0 * b, out=t1)  # one unavoidable temp for 4*b
    np.add(t1, 3.0 * c, out=t1)
    np.multiply(t1, t1, out=t2)
    np.multiply(t2, 0.25, out=t2)
    np.add(is0, t2, out=is0)

    # is1 = 13/12 (b - 2c + d)^2 + 1/4 (b - d)^2
    np.subtract(b, c, out=t0)
    np.subtract(t0, c, out=t0)
    np.add(t0, d, out=t0)
    np.multiply(t0, t0, out=is1)
    np.multiply(is1, _C13, out=is1)
    np.subtract(b, d, out=t1)
    np.multiply(t1, t1, out=t2)
    np.multiply(t2, 0.25, out=t2)
    np.add(is1, t2, out=is1)

    # is2 = 13/12 (c - 2d + e)^2 + 1/4 (3c - 4d + e)^2
    np.subtract(c, d, out=t0)
    np.subtract(t0, d, out=t0)
    np.add(t0, e, out=t0)
    np.multiply(t0, t0, out=is2)
    np.multiply(is2, _C13, out=is2)
    np.multiply(c, 3.0, out=t1)
    np.subtract(t1, 4.0 * d, out=t1)
    np.add(t1, e, out=t1)
    np.multiply(t1, t1, out=t2)
    np.multiply(t2, 0.25, out=t2)
    np.add(is2, t2, out=is2)

    # alphas (stored back into is0..is2)
    for isk, dk in ((is0, _D0), (is1, _D1), (is2, _D2)):
        np.add(isk, WENO_EPS, out=isk)
        np.multiply(isk, isk, out=isk)
        np.divide(dk, isk, out=isk)

    # denominator
    np.add(is0, is1, out=den)
    np.add(den, is2, out=den)

    # numerator = alpha0*p0 + alpha1*p1 + alpha2*p2
    np.multiply(a, 2.0, out=t0)
    np.subtract(t0, 7.0 * b, out=t0)
    np.add(t0, 11.0 * c, out=t0)
    np.multiply(t0, 1.0 / 6.0, out=t0)
    np.multiply(is0, t0, out=num)

    np.multiply(c, 5.0, out=t0)
    np.subtract(t0, b, out=t0)
    np.add(t0, 2.0 * d, out=t0)
    np.multiply(t0, 1.0 / 6.0, out=t0)
    np.multiply(is1, t0, out=acc)
    np.add(num, acc, out=num)

    np.multiply(c, 2.0, out=t0)
    np.add(t0, 5.0 * d, out=t0)
    np.subtract(t0, e, out=t0)
    np.multiply(t0, 1.0 / 6.0, out=t0)
    np.multiply(is2, t0, out=acc)
    np.add(num, acc, out=num)

    np.divide(num, den, out=out)
    return out


def weno5_fused(
    v: np.ndarray,
    workspace: Weno5Workspace | None = None,
    out_minus: np.ndarray | None = None,
    out_plus: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Workspace-reusing WENO5; same contract as :func:`weno5`.

    Returns ``(minus, plus)`` of shape ``v.shape[:-1] + (M - 5,)``.
    Passing a :class:`Weno5Workspace` (and optionally output arrays)
    eliminates all per-call allocations.
    """
    if v.shape[-1] < 6:
        raise ValueError(f"need at least 6 cells along last axis, got {v.shape[-1]}")
    nfaces = v.shape[-1] - 5
    out_shape = v.shape[:-1] + (nfaces,)
    if workspace is None or workspace.shape != out_shape:
        workspace = Weno5Workspace(out_shape, dtype=v.dtype)
    if out_minus is None:
        out_minus = np.empty(out_shape, dtype=v.dtype)
    if out_plus is None:
        out_plus = np.empty(out_shape, dtype=v.dtype)
    a = v[..., 0:nfaces]
    b = v[..., 1 : 1 + nfaces]
    c = v[..., 2 : 2 + nfaces]
    d = v[..., 3 : 3 + nfaces]
    e = v[..., 4 : 4 + nfaces]
    f = v[..., 5 : 5 + nfaces]
    ws = workspace.buffers()
    _weno5_minus_fused(a, b, c, d, e, ws, out_minus)
    _weno5_minus_fused(f, e, d, c, b, ws, out_plus)
    return out_minus, out_plus


def weno3(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Third-order WENO reconstruction (ablation baseline).

    Same calling convention as :func:`weno5` -- input of length ``M``
    along the last axis, returning ``(minus, plus)`` of shape
    ``v.shape[:-1] + (M - 5,)`` collocated face pairs -- so the RHS
    pipeline can swap reconstruction orders without re-plumbing ghosts.
    Used by the spatial-order ablation bench: the paper picks 5th order
    to cut the step count, at a stencil-size (ghost traffic) cost.
    """
    if v.shape[-1] < 6:
        raise ValueError(f"need at least 6 cells along last axis, got {v.shape[-1]}")
    nfaces = v.shape[-1] - 5
    # Minus state at the face between padded cells j+2 and j+3 uses cells
    # j+1 .. j+3; plus uses j+2 .. j+4 mirrored.
    a = v[..., 1 : 1 + nfaces]
    b = v[..., 2 : 2 + nfaces]
    c = v[..., 3 : 3 + nfaces]
    d = v[..., 4 : 4 + nfaces]
    minus = _weno3_biased(a, b, c)
    plus = _weno3_biased(d, c, b)
    return minus, plus


# Expression-form on purpose: the ablation baseline is read against the
# Jiang-Shu formulas, and WENO3 is never the production reconstruction.
def _weno3_biased(a, b, c):  # lint: disable=CP003
    """WENO3 reconstruction of the right face of cell ``b`` from
    ``(a, b, c) = (v_{i-1}, v_i, v_{i+1})``."""
    is0 = (b - a) ** 2
    is1 = (c - b) ** 2
    alpha0 = (1.0 / 3.0) / (WENO_EPS + is0) ** 2
    alpha1 = (2.0 / 3.0) / (WENO_EPS + is1) ** 2
    w0 = alpha0 / (alpha0 + alpha1)
    p0 = 1.5 * b - 0.5 * a
    p1 = 0.5 * (b + c)
    return w0 * p0 + (1.0 - w0) * p1


def weno5_faces_scalar(stencil: np.ndarray) -> float:
    """Reference scalar WENO5 minus-reconstruction of a single 5-stencil.

    Used by property tests to cross-check the vectorized kernels.
    Returns the reconstructed face value as a python float.
    """
    a, b, c, d, e = (float(x) for x in stencil)
    return float(_weno5_minus_raw(a, b, c, d, e))
