"""Perf-trajectory provenance, history and the regression gate.

ROADMAP item 1 asks for a *committed, CI-gated perf trajectory*: the
kernel microbench record (``BENCH_kernels.json``, written by
``benchmarks/bench_throughput.py``) must carry enough provenance to be
comparable across PRs, accumulate into an append-only history, and gate
regressions mechanically.  This module owns all three:

* :func:`provenance` -- the provenance block stamped on every record
  (schema :data:`KERNEL_SCHEMA_V2`): host fingerprint, git sha, ISO
  timestamp, python/numpy versions;
* :func:`append_history` / :func:`load_history` -- the append-only
  ``BENCH_history.jsonl`` trajectory (one stamped record per line);
* :func:`check_trend` -- the tolerance-gated comparison of a fresh
  record against the committed trajectory, run as
  ``python -m repro.telemetry trend --check`` (exit 1 on regression).

The gate compares per-kernel Gcells/s against the best committed value
from the *same host fingerprint* when the history has one (so a laptop
checking against a CI-made trajectory is not spuriously red), falling
back to the best value across all hosts.  A kernel regresses when its
measured throughput drops below ``baseline / (1 + tolerance)`` -- the
default tolerance 0.5 passes normal best-of-N jitter and fails a 2x
slowdown outright.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

#: Kernel microbench schema with the mandatory provenance block.
KERNEL_SCHEMA_V2 = "repro.bench_kernels/v2"

#: Superseded provenance-free schema (PR 6); still readable.
KERNEL_SCHEMA_V1 = "repro.bench_kernels/v1"

#: Repository root (``src/repro/telemetry`` is three levels below it).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default locations of the record and the committed trajectory.
DEFAULT_RECORD = REPO_ROOT / "BENCH_kernels.json"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: Default regression tolerance: fail below ``baseline / (1 + tol)``.
DEFAULT_TOLERANCE = 0.5


def host_fingerprint() -> str:
    """Stable 12-hex fingerprint of the benchmarking host (str).

    Hashes hostname, architecture, processor string and core count --
    enough to tell records from different machines apart without
    leaking the raw hostname into committed artifacts.
    """
    basis = "|".join([
        platform.node(),
        platform.machine(),
        platform.processor() or "",
        str(os.cpu_count() or 0),
    ])
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:12]


def git_sha(repo: Path | str = REPO_ROOT) -> str:
    """Current commit sha of ``repo``, or ``"unknown"`` (str).

    Never raises: records must be writable from exported tarballs and
    containers without git.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=str(repo),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance() -> dict:
    """The provenance block of a v2 record (dict of str).

    Keys: ``host`` (fingerprint), ``git_sha``, ``timestamp`` (ISO 8601
    UTC), ``python``, ``numpy``.
    """
    import numpy as np

    return {
        "host": host_fingerprint(),
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def stamp(record: dict) -> dict:
    """Returns a copy of ``record`` upgraded to schema v2 + provenance.

    Records already carrying a provenance block keep it; the schema
    field is always normalized to :data:`KERNEL_SCHEMA_V2`.
    """
    out = dict(record)
    out["schema"] = KERNEL_SCHEMA_V2
    out.setdefault("provenance", provenance())
    return out


def _validate(record: dict, where: str) -> None:
    if record.get("schema") not in (KERNEL_SCHEMA_V1, KERNEL_SCHEMA_V2):
        raise ValueError(
            f"{where}: unknown bench schema {record.get('schema')!r}"
        )
    if record["schema"] == KERNEL_SCHEMA_V2 and "provenance" not in record:
        raise ValueError(f"{where}: v2 record without a provenance block")
    if not isinstance(record.get("kernels"), dict) or not record["kernels"]:
        raise ValueError(f"{where}: record carries no kernel timings")


def load_record(path: str | Path) -> dict:
    """Load and validate one microbench record (returns the dict)."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    _validate(record, str(path))
    return record


def append_history(record: dict, path: str | Path = DEFAULT_HISTORY) -> Path:
    """Append one stamped record to the trajectory; returns the path.

    The history is strictly append-only JSONL: one validated v2 record
    per line, never rewritten (provenance timestamps keep it ordered).
    """
    record = stamp(record)
    _validate(record, "history append")
    path = Path(path)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: str | Path = DEFAULT_HISTORY) -> list[dict]:
    """Load the trajectory records of a history file (list of dicts).

    Blank lines are skipped; every record is schema-validated so a
    corrupt trajectory fails loudly rather than gating against garbage.
    """
    out = []
    with open(path, "r", encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            _validate(record, f"{path}:{i}")
            out.append(record)
    return out


def trajectory(history: list[dict], host: str | None = None) -> dict[str, float]:
    """Per-kernel baseline Gcells/s of a trajectory (dict).

    The baseline is the best committed throughput per kernel.  With
    ``host`` given and present in the history, only that host's records
    contribute -- cross-machine comparisons are apples-to-oranges and
    only used as a fallback.
    """
    if host is not None:
        same_host = [
            r for r in history
            if r.get("provenance", {}).get("host") == host
        ]
        if same_host:
            history = same_host
    best: dict[str, float] = {}
    for record in history:
        for name, row in record["kernels"].items():
            g = float(row.get("gcells_per_s", 0.0))
            if g > best.get(name, 0.0):
                best[name] = g
    return best


@dataclass
class TrendReport:
    """Outcome of one trajectory check."""

    tolerance: float
    rows: list[dict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every gated kernel cleared the tolerance."""
        return all(r["ok"] for r in self.rows)

    def regressions(self) -> list[dict]:
        """The failing rows (list of dicts)."""
        return [r for r in self.rows if not r["ok"]]

    def format(self) -> str:
        """Human-readable gate table (returns the str)."""
        from ..perf.report import format_table

        verdict = "PASS" if self.passed else "REGRESSION"
        title = (f"Perf trajectory check (tolerance {self.tolerance:.0%} "
                 f"below baseline): {verdict}")
        return format_table(self.rows, title, floatfmt="{:.4g}")


def check_trend(record: dict, history: list[dict],
                tolerance: float = DEFAULT_TOLERANCE) -> TrendReport:
    """Gate a fresh record against the committed trajectory.

    Returns a :class:`TrendReport` with one row per measured kernel:
    the (host-matched) baseline Gcells/s, the measured value, their
    ratio and the verdict.  Kernels without any committed baseline pass
    with a note -- a new kernel must not block the PR that adds it.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    host = record.get("provenance", {}).get("host")
    baseline = trajectory(history, host=host)
    floor_scale = 1.0 / (1.0 + tolerance)
    rows = []
    for name, row in record["kernels"].items():
        measured = float(row.get("gcells_per_s", 0.0))
        base = baseline.get(name)
        if base is None or base <= 0.0:
            rows.append({
                "kernel": name, "baseline": 0.0, "measured": measured,
                "ratio": 1.0, "ok": True, "note": "no baseline (new kernel)",
            })
            continue
        ratio = measured / base
        ok = ratio >= floor_scale
        rows.append({
            "kernel": name, "baseline": base, "measured": measured,
            "ratio": ratio, "ok": ok,
            "note": "" if ok else f"below {floor_scale:.2f}x of baseline",
        })
    return TrendReport(tolerance=tolerance, rows=rows)


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``trend`` subcommand's argument parser."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.telemetry trend",
        description="Perf-trajectory gate over the committed kernel "
        "microbench history (see docs/telemetry.md).",
    )
    ap.add_argument("--record", default=str(DEFAULT_RECORD), metavar="PATH",
                    help="fresh microbench record to gate/append "
                    "(default: BENCH_kernels.json)")
    ap.add_argument("--history", default=str(DEFAULT_HISTORY), metavar="PATH",
                    help="append-only trajectory file "
                    "(default: BENCH_history.jsonl)")
    ap.add_argument("--check", action="store_true",
                    help="gate the record against the history "
                    "(exit 1 on regression)")
    ap.add_argument("--append", action="store_true",
                    help="stamp the record (schema v2 + provenance) and "
                    "append it to the history")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional slowdown vs baseline "
                    f"(default {DEFAULT_TOLERANCE})")
    return ap


def main(argv: list[str] | None = None) -> int:
    """``trend`` subcommand entry point; returns the exit code.

    Exit codes: 0 pass, 1 regression detected by ``--check``, 2 usage
    error (missing files, no action, bad schema).

    The prints below are this subcommand's user-facing CLI output
    (dispatched from ``repro.telemetry.__main__``), hence the CL012
    pragmas.
    """
    args = build_parser().parse_args(argv)
    if not (args.check or args.append):
        print("trend: nothing to do; pass --check and/or --append",
              file=sys.stderr)  # lint: disable=CL012
        return 2
    try:
        record = load_record(args.record)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"trend: cannot load record: {exc}",
              file=sys.stderr)  # lint: disable=CL012
        return 2
    code = 0
    if args.check:
        try:
            history = load_history(args.history)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"trend: cannot load history: {exc}",
                  file=sys.stderr)  # lint: disable=CL012
            return 2
        report = check_trend(record, history, tolerance=args.tolerance)
        print(report.format())  # lint: disable=CL012
        if not report.passed:
            code = 1
    if args.append:
        path = append_history(record, args.history)
        print(f"trend: appended "  # lint: disable=CL012
              f"{args.record} to {path}")
    return code
