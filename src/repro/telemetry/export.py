"""Telemetry exporters: Chrome trace-event JSON and metrics JSON.

The trace exporter emits the Chrome trace-event format (`"X"` complete
events with microsecond ``ts``/``dur``), which both Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly.  Each
rank becomes one named timeline row (``tid`` = rank); span nesting is
reconstructed by the viewer from interval containment, and each event
additionally carries its recorded nesting ``depth`` in ``args``.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from .tracer import MetricsSnapshot, SpanEvent


def chrome_trace_events(
    events_by_rank: Mapping[int, Iterable[SpanEvent]],
) -> list[dict]:
    """Flatten per-rank span events into Chrome trace-event dicts.

    Returns the event list (one ``"M"`` thread-name metadata record per
    rank followed by its ``"X"`` complete events, timestamps in
    microseconds) ready to be wrapped in a ``traceEvents`` envelope.
    """
    out: list[dict] = []
    for rank in sorted(events_by_rank):
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        for e in events_by_rank[rank]:
            out.append(
                {
                    "name": e.name,
                    "cat": "phase",
                    "ph": "X",
                    "ts": round(e.start * 1e6, 3),
                    "dur": round(e.duration * 1e6, 3),
                    "pid": 0,
                    "tid": rank,
                    "args": {"depth": e.depth},
                }
            )
    return out


def run_trace_events(result) -> list[dict]:
    """Chrome trace-event dicts of a completed run.

    ``result`` is a :class:`repro.cluster.driver.RunResult` whose rank
    results carry ``trace_events`` (telemetry mode ``"trace"``).  Returns
    the flattened event list; raises :class:`ValueError` if the run
    recorded no trace.
    """
    events_by_rank = {
        rr.rank: rr.trace_events
        for rr in result.rank_results
        if rr.trace_events is not None
    }
    if not events_by_rank:
        raise ValueError(
            "run recorded no trace events; rerun with telemetry='trace'"
        )
    return chrome_trace_events(events_by_rank)


def write_chrome_trace(path: str, result) -> int:
    """Write a run's Perfetto-loadable trace JSON; returns the event count.

    The file holds ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` --
    open it at https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events = run_trace_events(result)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
    return len(events)


def metrics_json(snapshot: MetricsSnapshot, indent: int | None = 2) -> str:
    """Returns a :class:`MetricsSnapshot` serialized as a JSON string."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)
