"""Structured run telemetry: tracing, kernel metrics, run scorecards.

The observability backbone of the reproduction (see ``docs/telemetry.md``):

* :class:`Tracer` / :func:`make_tracer` -- nested phase spans and named
  counters per rank, with a bounded trace-event buffer;
* :class:`PhaseTimers` -- the zero-overhead telemetry-off baseline whose
  dict payload is the driver's legacy timers shape;
* :class:`MetricsSnapshot` -- the JSON metrics summary attached to
  ``RankResult`` / ``RunResult``;
* :func:`write_chrome_trace` -- Perfetto-loadable per-rank timelines;
* :func:`format_run_scorecard` -- the paper-style run table
  (time-in-phase %, Gcells/s, modeled FLOP/s, I/O fraction);
* :class:`FlightRecorder` / :func:`read_flight` -- the step-level
  flight recorder (JSONL, schema ``repro.flight/v1``);
* :mod:`repro.telemetry.analytics` -- cross-rank imbalance, straggler
  and critical-path analytics over flight recordings and run results;
* :class:`StructuredLogger` / :class:`ProgressReporter` -- logfmt
  structured logging (lint rule ``CL012``'s sanctioned sink) and the
  live run heartbeat;
* :mod:`repro.telemetry.trend` -- provenance-stamped kernel benchmark
  records and the ``python -m repro.telemetry trend --check`` gate;
* :mod:`repro.telemetry.clock` -- the sanctioned timing source enforced
  by lint rule ``CL009``.
"""

from .analytics import (
    FlightAnalysis,
    analyze_flight,
    critical_path,
    format_flight_report,
    run_imbalance,
    step_imbalance,
    straggler_summary,
)
from .clock import now, wall_now
from .export import (
    chrome_trace_events,
    metrics_json,
    run_trace_events,
    write_chrome_trace,
)
from .flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    iter_flight,
    merge_flight_parts,
    read_flight,
)
from .log import (
    ProgressReporter,
    StructuredLogger,
    configure,
    get_logger,
)
from .scorecard import (
    DEGENERATE_COUNTS,
    PAPER_IO_FRACTION,
    format_run_scorecard,
    io_fraction,
    run_scorecard_rows,
    safe_rate,
)
from .tracer import (
    DEFAULT_MAX_EVENTS,
    MODES,
    MetricsSnapshot,
    PhaseTimers,
    SpanEvent,
    Tracer,
    make_tracer,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEGENERATE_COUNTS",
    "FLIGHT_SCHEMA",
    "FlightAnalysis",
    "FlightRecorder",
    "MODES",
    "MetricsSnapshot",
    "PAPER_IO_FRACTION",
    "PhaseTimers",
    "ProgressReporter",
    "SpanEvent",
    "StructuredLogger",
    "Tracer",
    "analyze_flight",
    "chrome_trace_events",
    "configure",
    "critical_path",
    "format_flight_report",
    "format_run_scorecard",
    "get_logger",
    "io_fraction",
    "iter_flight",
    "merge_flight_parts",
    "make_tracer",
    "metrics_json",
    "now",
    "read_flight",
    "run_imbalance",
    "run_scorecard_rows",
    "run_trace_events",
    "safe_rate",
    "step_imbalance",
    "straggler_summary",
    "wall_now",
    "write_chrome_trace",
]
