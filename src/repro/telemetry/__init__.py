"""Structured run telemetry: tracing, kernel metrics, run scorecards.

The observability backbone of the reproduction (see ``docs/telemetry.md``):

* :class:`Tracer` / :func:`make_tracer` -- nested phase spans and named
  counters per rank, with a bounded trace-event buffer;
* :class:`PhaseTimers` -- the zero-overhead telemetry-off baseline whose
  dict payload is the driver's legacy timers shape;
* :class:`MetricsSnapshot` -- the JSON metrics summary attached to
  ``RankResult`` / ``RunResult``;
* :func:`write_chrome_trace` -- Perfetto-loadable per-rank timelines;
* :func:`format_run_scorecard` -- the paper-style run table
  (time-in-phase %, Gcells/s, modeled FLOP/s, I/O fraction);
* :mod:`repro.telemetry.clock` -- the sanctioned timing source enforced
  by lint rule ``CL009``.
"""

from .clock import now, wall_now
from .export import (
    chrome_trace_events,
    metrics_json,
    run_trace_events,
    write_chrome_trace,
)
from .scorecard import (
    PAPER_IO_FRACTION,
    format_run_scorecard,
    io_fraction,
    run_scorecard_rows,
)
from .tracer import (
    DEFAULT_MAX_EVENTS,
    MODES,
    MetricsSnapshot,
    PhaseTimers,
    SpanEvent,
    Tracer,
    make_tracer,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "MODES",
    "MetricsSnapshot",
    "PAPER_IO_FRACTION",
    "PhaseTimers",
    "SpanEvent",
    "Tracer",
    "chrome_trace_events",
    "format_run_scorecard",
    "io_fraction",
    "make_tracer",
    "metrics_json",
    "now",
    "run_scorecard_rows",
    "run_trace_events",
    "wall_now",
    "write_chrome_trace",
]
