"""The repository's single sanctioned timing source.

Every wall-clock measurement in the solver layers flows through these two
helpers so that (a) all phase timing shares one monotonic clock with the
:class:`repro.telemetry.Tracer` spans and (b) the ``CL009`` lint rule can
statically guarantee no timing side channels exist that the trace
exporters cannot see.  ``repro/telemetry`` is the only package allowed to
touch :mod:`time` directly.

``now`` is the monotonic high-resolution clock used for durations;
``wall_now`` is the epoch-based wall clock used for timestamps stored in
file metadata (checkpoints, dump headers).
"""

from __future__ import annotations

import time

#: Monotonic high-resolution clock; returns seconds as a float.
now = time.perf_counter

#: Epoch wall clock for metadata timestamps; returns seconds as a float.
wall_now = time.time
