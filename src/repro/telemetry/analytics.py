"""Cross-rank imbalance analytics over flight recordings and run results.

The paper quantifies load imbalance two ways: Table 4's work-imbalance
metric ``(t_max - t_min) / t_avg`` across workers, and the observation
that under clustered bubble clouds (and in Rasthofer et al.'s
12'500-bubble follow-up) a handful of straggler ranks bound every step.
This module computes both over the step-resolved records of the
:mod:`repro.telemetry.flight` recorder (and, in aggregate form, over the
per-rank ``RankResult`` timers of any completed run):

* :func:`step_imbalance` -- per-step load-imbalance factor (max/mean
  step time across ranks) plus the paper's Table 4 spread metric;
* :func:`straggler_summary` -- per-rank attribution: how often each
  rank bounded a step, and the phase it was slowest in;
* :func:`critical_path` -- which (rank, phase) pairs bound the run,
  with the seconds they put on the critical path;
* :func:`run_imbalance` -- the same factors over a ``RunResult``'s
  per-rank cumulative phase timers (no flight file needed), surfaced as
  scorecard rows;
* :func:`analyze_flight` / :func:`format_flight_report` -- the
  ``repro.cli analyze-flight`` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .scorecard import safe_rate


def _step_seconds(record: dict) -> float:
    """Total measured phase seconds of one step record (float)."""
    return float(sum(record.get("phases", {}).values()))


def _by_step(steps: list[dict]) -> dict[int, list[dict]]:
    """Group step records by step number (dict step -> rank records)."""
    out: dict[int, list[dict]] = {}
    for rec in steps:
        out.setdefault(int(rec["step"]), []).append(rec)
    return out


def step_imbalance(steps: list[dict]) -> list[dict]:
    """Per-step cross-rank imbalance rows from flight step records.

    Returns one dict per step: ``step``, ``ranks``, per-step wall
    statistics (``t_max`` / ``t_mean``), the load-imbalance factor
    ``lif`` (max/mean, 1.0 = perfectly balanced), the paper's Table 4
    spread ``(t_max - t_min) / t_mean``, and the bounding rank/phase
    (``critical_rank``, ``critical_phase``).  Degenerate steps (zero
    measured time) report factor 0.0 instead of inf/NaN.
    """
    rows: list[dict] = []
    for step, recs in sorted(_by_step(steps).items()):
        totals = [( _step_seconds(r), int(r["rank"]), r) for r in recs]
        times = [t for t, _, _ in totals]
        mean = sum(times) / len(times)
        t_max, crit_rank, crit_rec = max(totals, key=lambda x: x[0])
        phases = crit_rec.get("phases", {})
        crit_phase = max(phases, key=phases.get) if phases else ""
        rows.append({
            "step": step,
            "ranks": len(recs),
            "t_max": t_max,
            "t_mean": mean,
            "lif": safe_rate(t_max, mean, "imbalance_degenerate_step"),
            "imbalance": safe_rate(t_max - min(times), mean,
                                   "imbalance_degenerate_step"),
            "critical_rank": crit_rank,
            "critical_phase": crit_phase,
        })
    return rows


def straggler_summary(steps: list[dict]) -> list[dict]:
    """Per-rank straggler attribution over a flight recording.

    Returns one dict per rank, sorted by how often the rank bounded a
    step: ``rank``, ``steps_critical``, ``critical_share`` (fraction of
    steps it bounded), ``seconds`` (its total measured phase time) and
    ``worst_phase`` (the phase it spent the most time in while
    critical).
    """
    per_step = step_imbalance(steps)
    bounded: dict[int, int] = {}
    phase_when_critical: dict[int, dict[str, float]] = {}
    for row in per_step:
        r = row["critical_rank"]
        bounded[r] = bounded.get(r, 0) + 1
        if row["critical_phase"]:
            acc = phase_when_critical.setdefault(r, {})
            acc[row["critical_phase"]] = acc.get(row["critical_phase"], 0) + 1
    totals: dict[int, float] = {}
    for rec in steps:
        r = int(rec["rank"])
        totals[r] = totals.get(r, 0.0) + _step_seconds(rec)
    nsteps = max(len(per_step), 1)
    rows = []
    for rank in sorted(totals):
        phases = phase_when_critical.get(rank, {})
        rows.append({
            "rank": rank,
            "steps_critical": bounded.get(rank, 0),
            "critical_share": bounded.get(rank, 0) / nsteps,
            "seconds": totals[rank],
            "worst_phase": max(phases, key=phases.get) if phases else "",
        })
    rows.sort(key=lambda r: (-r["steps_critical"], r["rank"]))
    return rows


def critical_path(steps: list[dict]) -> list[dict]:
    """Critical-path decomposition: which (rank, phase) bounds the run.

    For every step, the bounding rank's slowest phase is charged with
    that step's maximum time.  Returns rows sorted by charged seconds:
    ``rank``, ``phase``, ``steps`` (how many steps that pair bounded)
    and ``seconds`` on the critical path.
    """
    charged: dict[tuple[int, str], dict] = {}
    for row in step_imbalance(steps):
        key = (row["critical_rank"], row["critical_phase"])
        slot = charged.setdefault(
            key, {"rank": key[0], "phase": key[1], "steps": 0, "seconds": 0.0}
        )
        slot["steps"] += 1
        slot["seconds"] += row["t_max"]
    return sorted(charged.values(), key=lambda r: -r["seconds"])


def run_imbalance(result) -> list[dict]:
    """Cross-rank imbalance rows of a completed run (no flight file).

    Computed from each ``RankResult``'s cumulative phase timers: one row
    per phase (plus a ``TOTAL`` row) with ``max`` / ``mean`` seconds
    across ranks, the load-imbalance factor ``lif`` (max/mean), the
    Table 4 spread and the slowest rank.  Returns ``[]`` for
    single-rank runs, where cross-rank imbalance is undefined.
    """
    ranks = getattr(result, "rank_results", None) or []
    if len(ranks) < 2:
        return []
    phases: set[str] = set()
    for rr in ranks:
        phases.update(rr.timers)
    rows = []
    totals = [sum(rr.timers.values()) for rr in ranks]
    for name in sorted(phases) + ["TOTAL"]:
        if name == "TOTAL":
            times = totals
        else:
            times = [rr.timers.get(name, 0.0) for rr in ranks]
        mean = sum(times) / len(times)
        t_max = max(times)
        rows.append({
            "phase": name,
            "max [s]": t_max,
            "mean [s]": mean,
            "lif": safe_rate(t_max, mean, "imbalance_degenerate_phase"),
            "imbalance": safe_rate(t_max - min(times), mean,
                                   "imbalance_degenerate_phase"),
            "slowest rank": ranks[times.index(t_max)].rank,
        })
    return rows


@dataclass
class FlightAnalysis:
    """Assembled analytics of one flight recording."""

    header: dict
    nsteps: int
    ranks: int
    steps: list[dict] = field(default_factory=list)  #: per-step rows
    stragglers: list[dict] = field(default_factory=list)
    critical: list[dict] = field(default_factory=list)

    @property
    def mean_lif(self) -> float:
        """Mean per-step load-imbalance factor (1.0 = balanced)."""
        if not self.steps:
            return 0.0
        return sum(r["lif"] for r in self.steps) / len(self.steps)

    @property
    def max_lif(self) -> float:
        """Worst per-step load-imbalance factor of the run."""
        return max((r["lif"] for r in self.steps), default=0.0)


def analyze_flight(path: str) -> FlightAnalysis:
    """Run the cross-rank analytics over a flight file.

    Returns the assembled :class:`FlightAnalysis`; raises
    :class:`ValueError` for files without a flight header.
    """
    from .flight import read_flight

    header, steps = read_flight(path)
    per_step = step_imbalance(steps)
    return FlightAnalysis(
        header=header,
        nsteps=len(per_step),
        ranks=len({int(r["rank"]) for r in steps}) if steps else 0,
        steps=per_step,
        stragglers=straggler_summary(steps),
        critical=critical_path(steps),
    )


def format_flight_report(analysis: FlightAnalysis,
                         max_step_rows: int = 12) -> str:
    """Human-readable imbalance/critical-path report (returns the str).

    Shows the worst ``max_step_rows`` steps by load-imbalance factor,
    the straggler attribution table and the critical-path summary --
    the shape of the paper's Table 4 discussion for *our* runs.
    """
    from ..perf.report import format_table

    parts = [
        f"Flight analysis: {analysis.nsteps} steps x {analysis.ranks} "
        f"ranks (schema {analysis.header.get('schema')})",
        f"load-imbalance factor (max/mean step time): "
        f"mean {analysis.mean_lif:.3f}, worst {analysis.max_lif:.3f}",
    ]
    worst = sorted(analysis.steps, key=lambda r: -r["lif"])[:max_step_rows]
    if worst:
        parts.append("")
        parts.append(format_table(
            sorted(worst, key=lambda r: r["step"]),
            f"Worst {len(worst)} steps by imbalance",
            floatfmt="{:.4g}",
        ))
    if analysis.stragglers:
        parts.append("")
        parts.append(format_table(
            analysis.stragglers, "Straggler attribution (per rank)",
            floatfmt="{:.4g}",
        ))
    if analysis.critical:
        parts.append("")
        parts.append(format_table(
            analysis.critical, "Critical path (rank/phase that bounds steps)",
            floatfmt="{:.4g}",
        ))
    return "\n".join(parts)
