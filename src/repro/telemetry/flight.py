"""Step-level flight recorder: an incremental JSONL stream of the run.

The paper's performance story is built on *step-resolved* measurement:
the per-phase time distributions of Fig. 7 and the load-imbalance study
of Table 4 are distributions over steps and ranks, not run totals.  The
existing :class:`~repro.telemetry.MetricsSnapshot` is a post-mortem
aggregate; the flight recorder (schema :data:`FLIGHT_SCHEMA`) is the
time series it collapses -- one JSON record per ``(step, rank)`` with

* ``dt`` and the *per-step* phase wall-time deltas (``DT`` / ``RHS`` /
  ``COMM_WAIT`` / ``UP`` / ``IO_WAVELET`` ...),
* the instantaneous throughput in Gcells/s,
* sanitizer and resilience event counts observed during the step,
* conservation-drift deltas (relative mass/energy change vs the initial
  state -- the quantity the V&V suite bounds),
* the node-level dispatcher schedule summary (per-worker busy
  imbalance, paper Table 4's metric).

Records are buffered per file and flushed every ``flush_every`` records
(and on close), so a tailing consumer sees the run *live* while the
per-step cost stays at a dict build and an occasional write -- the
< 5 % overhead budget vs ``telemetry="metrics"``.

Under the thread-based cluster backend all ranks are threads of one
process writing one file, so the underlying appender is shared per path
and serialized by a lock (acquired/released by refcount: the first rank
opening a path truncates it and writes the header record, the last one
to close it flushes and closes the handle).

Under the process-parallel backend (:mod:`repro.cluster.procs`) that
in-memory refcount cannot serialize anything -- each rank is its own
process.  Recorders there open in ``per_rank`` mode: every rank appends
to its private part file (``<path>.rank<NNNN>``, each with its own
header) and the parent merges the parts into the final single-header
stream with :func:`merge_flight_parts` once the world has finished.
The merged file is byte-compatible with the thread backend's output:
one header, step records ordered by ``(step, rank)``.
"""

from __future__ import annotations

import glob
import json
import os
import threading
from typing import Iterator

#: Schema identifier stamped on the header record of every flight file.
FLIGHT_SCHEMA = "repro.flight/v1"

#: Default number of buffered records between flushes.
DEFAULT_FLUSH_EVERY = 32


class _FlightSink:
    """Shared append-only writer of one flight file (one per path)."""

    def __init__(self, path: str, flush_every: int):
        self.path = path
        self.flush_every = max(1, int(flush_every))
        self.lock = threading.Lock()
        self.refs = 0
        self.records_written = 0
        self._buffer: list[str] = []
        self._file = open(path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        """Buffer one record; flush when the buffer reaches the bound."""
        line = json.dumps(record, sort_keys=True)
        with self.lock:
            self._buffer.append(line)
            self.records_written += 1
            if len(self._buffer) >= self.flush_every:
                self._drain()

    def flush(self) -> None:
        """Force buffered records to disk."""
        with self.lock:
            self._drain()

    def _drain(self) -> None:
        # Caller holds self.lock.
        if self._buffer:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._file.flush()

    def close(self) -> None:
        with self.lock:
            self._drain()
            self._file.close()


#: Open sinks keyed by absolute path, shared across rank threads.
_SINKS: dict[str, _FlightSink] = {}
_SINKS_LOCK = threading.Lock()


def _acquire_sink(path: str, flush_every: int) -> tuple[_FlightSink, bool]:
    """Returns ``(sink, is_first)`` for ``path``, refcounted."""
    with _SINKS_LOCK:
        sink = _SINKS.get(path)
        first = sink is None
        if first:
            sink = _SINKS[path] = _FlightSink(path, flush_every)
        sink.refs += 1
        return sink, first


def _release_sink(path: str) -> None:
    with _SINKS_LOCK:
        sink = _SINKS.get(path)
        if sink is None:
            return
        sink.refs -= 1
        if sink.refs <= 0:
            del _SINKS[path]
            sink.close()


class FlightRecorder:
    """Per-rank handle onto a shared flight-record stream.

    Parameters
    ----------
    path:
        Flight file (JSONL).  The first rank to open it truncates the
        file and writes the header record.
    rank:
        Owning rank, stamped on every record this handle writes.
    meta:
        Run metadata merged into the header record (ranks, cells,
        ``max_steps``, telemetry mode, ...).  Only the first opener's
        header is written.
    flush_every:
        Buffered records between flushes of the shared sink.
    per_rank:
        Multi-process mode: write to a private part file
        (``<path>.rank<NNNN>``) instead of the shared sink.  The
        process-parallel cluster backend sets this (rank processes
        share no memory, so the refcounted sink cannot serialize
        them); the parent merges the parts with
        :func:`merge_flight_parts` after the run.
    """

    def __init__(self, path: str, rank: int = 0, meta: dict | None = None,
                 flush_every: int = DEFAULT_FLUSH_EVERY,
                 per_rank: bool = False):
        self.path = str(path)
        self.rank = int(rank)
        self.records = 0  #: step records written by this handle
        self._sink_path = (part_path(self.path, self.rank) if per_rank
                           else self.path)
        self._sink, first = _acquire_sink(self._sink_path, flush_every)
        self._closed = False
        if first:
            header = {"kind": "header", "schema": FLIGHT_SCHEMA}
            header.update(meta or {})
            self._sink.write(header)

    def record(self, step: int, **fields) -> None:
        """Append one ``(step, rank)`` record to the stream.

        ``fields`` carry the step payload (``dt``, ``phases``,
        ``gcells_per_s``, ``drift``, ...); ``kind``/``step``/``rank``
        are stamped here.
        """
        if self._closed:
            raise ValueError(f"flight recorder for {self.path} is closed")
        rec = {"kind": "step", "step": int(step), "rank": self.rank}
        rec.update(fields)
        self._sink.write(rec)
        self.records += 1

    def flush(self) -> None:
        """Force buffered records of the shared sink to disk."""
        self._sink.flush()

    def close(self) -> None:
        """Release this rank's handle (idempotent).

        The shared sink flushes and closes when the last rank releases
        it -- crashing ranks must close in a ``finally`` so chaos runs
        never leak buffered records.
        """
        if not self._closed:
            self._closed = True
            _release_sink(self._sink_path)


def part_path(path: str, rank: int) -> str:
    """The per-rank part file of ``path`` in multi-process mode (str)."""
    return f"{path}.rank{rank:04d}"


def merge_flight_parts(path: str) -> int:
    """Merge ``<path>.rank*`` part files into one flight file at ``path``.

    Produces the same layout as a thread-backend recording: a single
    header record (taken from the lowest-ranked part) followed by every
    step record ordered by ``(step, rank)``.  Part files are deleted on
    success.  Missing or empty parts are tolerated -- a crashed rank's
    flushed prefix still merges, so chaos runs keep a usable stream.
    Returns the number of step records merged; with no parts present
    the target file is left untouched and 0 is returned.
    """
    parts = sorted(glob.glob(f"{path}.rank*"))
    if not parts:
        return 0
    header: dict | None = None
    steps: list[dict] = []
    for part in parts:
        for rec in iter_flight(part):
            if rec.get("kind") == "header":
                if header is None:
                    header = rec
            else:
                steps.append(rec)
    steps.sort(key=lambda r: (r.get("step", 0), r.get("rank", 0)))
    if header is None:
        header = {"kind": "header", "schema": FLIGHT_SCHEMA}
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(header, sort_keys=True) + "\n")
        for rec in steps:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
    for part in parts:
        os.remove(part)
    return len(steps)


def iter_flight(path: str) -> Iterator[dict]:
    """Yield the parsed records of a flight file in file order.

    Yields dicts (the header first, ``kind="step"`` records after);
    blank lines are skipped so partially flushed files read cleanly.
    """
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_flight(path: str) -> tuple[dict, list[dict]]:
    """Load a flight file; returns ``(header, step_records)``.

    Raises :class:`ValueError` when the file carries no
    :data:`FLIGHT_SCHEMA` header (not a flight recording).
    """
    header: dict | None = None
    steps: list[dict] = []
    for rec in iter_flight(path):
        if rec.get("kind") == "header":
            if rec.get("schema") != FLIGHT_SCHEMA:
                raise ValueError(
                    f"{path}: unsupported flight schema "
                    f"{rec.get('schema')!r} (expected {FLIGHT_SCHEMA})"
                )
            header = rec
        elif rec.get("kind") == "step":
            steps.append(rec)
    if header is None:
        raise ValueError(f"{path}: no {FLIGHT_SCHEMA} header record")
    return header, steps
