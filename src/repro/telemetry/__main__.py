"""Telemetry command-line front end: ``python -m repro.telemetry``.

Dispatches to the telemetry subcommands; currently only ``trend``, the
perf-trajectory regression gate (see :mod:`repro.telemetry.trend` and
``docs/telemetry.md``)::

    python -m repro.telemetry trend --check
    python -m repro.telemetry trend --append --record BENCH_kernels.json
"""

from __future__ import annotations

import sys

from . import trend


def main(argv: list[str] | None = None) -> int:
    """Dispatch one telemetry subcommand; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        wants_help = bool(argv)
        print("usage: python -m repro.telemetry trend [options]\n\n"
              "subcommands:\n"
              "  trend    perf-trajectory provenance and regression gate",
              file=sys.stdout if wants_help else sys.stderr)
        return 0 if wants_help else 2
    if argv[0] == "trend":
        return trend.main(argv[1:])
    print(f"repro.telemetry: unknown subcommand {argv[0]!r}",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
