"""Structured run logging and the live progress heartbeat.

Library code (everything under ``src/repro`` except the CLI front ends)
must not ``print()``: a production campaign server multiplexes many runs
onto one process, and unattributed stdout lines are useless the moment
two runs interleave.  Lint rule **CL012** enforces this; the sanctioned
sink is the :class:`StructuredLogger` defined here, which emits one
logfmt line (``key=value`` pairs) per event so the stream stays
machine-parsable *and* readable when tailed during a long run::

    from repro.telemetry.log import get_logger

    log = get_logger("cluster.driver")
    log.info("progress", step=120, pct=40.0, eta_s=93.2)
    # -> ts=1754650000.123 level=info logger=cluster.driver event=progress
    #    step=120 pct=40.0 eta_s=93.2

:class:`ProgressReporter` builds the run heartbeat on top of it: every
``interval`` steps, rank 0 emits ``step``, percent done, an ETA from a
rolling window of recent step times, the rolling throughput in Gcells/s
and the node-level work-imbalance factor -- the live signal the paper's
multi-day production runs were babysat with.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import deque
from typing import IO, Mapping

from .clock import now, wall_now

#: Severity order of the accepted levels.
LEVELS = ("debug", "info", "warn", "error")


def _format_value(v) -> str:
    """Returns one logfmt-safe token for a field value (str)."""
    if isinstance(v, float):
        s = f"{v:.6g}"
    elif isinstance(v, bool):
        s = "true" if v else "false"
    elif v is None:
        s = "null"
    else:
        s = str(v)
    if " " in s or "=" in s or '"' in s:
        s = json.dumps(s)
    return s


class StructuredLogger:
    """Logfmt event logger for one named component.

    Parameters
    ----------
    name:
        Component name stamped on every line (``logger=<name>``).
    stream:
        Output stream; ``None`` (default) resolves ``sys.stderr`` at
        emit time so test harnesses that swap stderr keep working.
    level:
        Minimum severity emitted (one of :data:`LEVELS`).

    Emission is serialized by a lock: rank threads of the simulated
    cluster share the process and must not interleave half-lines.
    """

    def __init__(self, name: str, stream: IO[str] | None = None,
                 level: str = "info"):
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {LEVELS}")
        self.name = str(name)
        self.stream = stream
        self.level = level
        self._lock = threading.Lock()
        self.emitted = 0  #: lines written (suppressed levels excluded)

    # -- core -----------------------------------------------------------

    def enabled(self, level: str) -> bool:
        """Returns whether ``level`` clears the logger threshold."""
        return LEVELS.index(level) >= LEVELS.index(self.level)

    def event(self, event: str, level: str = "info", **fields) -> str | None:
        """Emit one structured event line; returns it (or ``None``).

        ``fields`` become ``key=value`` tokens after the standard
        ``ts``/``level``/``logger``/``event`` prefix.  Suppressed levels
        return ``None`` without touching the stream.
        """
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {LEVELS}")
        if not self.enabled(level):
            return None
        parts = [
            f"ts={wall_now():.3f}",
            f"level={level}",
            f"logger={self.name}",
            f"event={_format_value(event)}",
        ]
        parts.extend(f"{k}={_format_value(v)}" for k, v in fields.items())
        line = " ".join(parts)
        stream = self.stream if self.stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")
            stream.flush()
            self.emitted += 1
        return line

    # -- level shorthands -----------------------------------------------

    def debug(self, event: str, **fields) -> str | None:
        """Emit at level ``debug``; returns the line or ``None``."""
        return self.event(event, level="debug", **fields)

    def info(self, event: str, **fields) -> str | None:
        """Emit at level ``info``; returns the line or ``None``."""
        return self.event(event, level="info", **fields)

    def warn(self, event: str, **fields) -> str | None:
        """Emit at level ``warn``; returns the line or ``None``."""
        return self.event(event, level="warn", **fields)

    def error(self, event: str, **fields) -> str | None:
        """Emit at level ``error``; returns the line or ``None``."""
        return self.event(event, level="error", **fields)


#: Process-wide logger registry (one logger per component name).
_LOGGERS: dict[str, StructuredLogger] = {}
_REGISTRY_LOCK = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """Returns the process-wide :class:`StructuredLogger` for ``name``.

    Loggers are cached by name so configuration (stream, level) set on
    one reference is seen by every user of that component logger.
    """
    with _REGISTRY_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = StructuredLogger(name)
        return logger


def configure(stream: IO[str] | None = None, level: str | None = None) -> None:
    """Reconfigure every registered logger (and future defaults).

    ``stream=None`` leaves streams untouched; pass e.g. an open file to
    redirect all structured output there.  ``level`` applies to all
    existing loggers.
    """
    if level is not None and level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
    with _REGISTRY_LOCK:
        for logger in _LOGGERS.values():
            if stream is not None:
                logger.stream = stream
            if level is not None:
                logger.level = level


class ProgressReporter:
    """Periodic structured heartbeat of a running simulation.

    Constructed on rank 0 when ``SimulationConfig.progress_interval`` is
    set; :meth:`step` is called once per completed step and emits every
    ``interval`` steps (and on the final step).  The ETA and rolling
    throughput come from a bounded window of recent step completions, so
    the estimate tracks the current collapse phase rather than the whole
    run history.

    Parameters
    ----------
    total_steps:
        Step budget of the run (``max_steps``); percent-done and ETA are
        relative to it.
    cells:
        Global cell count advanced per step (for Gcells/s).
    interval:
        Steps between heartbeats (must be positive).
    window:
        Completions retained for the rolling estimates.
    logger:
        Override sink (defaults to the ``telemetry.progress`` logger).
    """

    def __init__(self, total_steps: int, cells: int, interval: int = 10,
                 window: int = 32,
                 logger: StructuredLogger | None = None):
        if interval < 1:
            raise ValueError("progress interval must be positive")
        self.total_steps = int(total_steps)
        self.cells = int(cells)
        self.interval = int(interval)
        self.logger = logger if logger is not None \
            else get_logger("telemetry.progress")
        self._ticks: deque[tuple[float, int]] = deque(maxlen=max(2, window))
        self._ticks.append((now(), 0))
        self.heartbeats = 0  #: heartbeats emitted so far

    def _rolling(self, t: float, step: int) -> tuple[float, float]:
        """Rolling (seconds-per-step, Gcells/s) over the window.

        Returns ``(0.0, 0.0)`` for degenerate windows (no elapsed time)
        instead of emitting inf/NaN into the heartbeat stream.
        """
        t0, s0 = self._ticks[0]
        elapsed, steps = t - t0, step - s0
        if elapsed <= 1e-9 or steps <= 0:
            return 0.0, 0.0
        per_step = elapsed / steps
        return per_step, steps * self.cells / elapsed / 1e9

    def step(self, step: int, sim_time: float = 0.0, dt: float = 0.0,
             imbalance: float | None = None,
             extra: Mapping[str, float] | None = None) -> str | None:
        """Record a completed ``step``; maybe emit a heartbeat.

        Returns the emitted line (heartbeat steps) or ``None``
        (intermediate steps).  ``imbalance`` is the node-level
        work-imbalance factor of the step (omitted from the line when
        unknown); ``extra`` fields are appended verbatim.
        """
        t = now()
        per_step, gcells = self._rolling(t, step)
        self._ticks.append((t, step))
        final = step >= self.total_steps
        if step % self.interval and not final:
            return None
        remaining = max(self.total_steps - step, 0)
        fields: dict = {
            "step": step,
            "of": self.total_steps,
            "pct": round(100.0 * step / self.total_steps, 1)
            if self.total_steps else 100.0,
            "t": round(sim_time, 6),
            "dt": round(dt, 6),
            "eta_s": round(per_step * remaining, 1),
            "gcells_per_s": round(gcells, 6),
        }
        if imbalance is not None:
            fields["imbalance"] = round(float(imbalance), 4)
        if extra:
            fields.update(extra)
        self.heartbeats += 1
        return self.logger.info("progress", **fields)
