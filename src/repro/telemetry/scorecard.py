"""Paper-style performance scorecard of one completed run.

The paper reports its runs as (i) a time-in-phase distribution (Fig. 7),
(ii) an achieved throughput in Gcells/s against the modeled peak
(Section 7) and (iii) the claim that the wavelet data dumps cost less
than 1 % of run time (Section 6).  :func:`format_run_scorecard` prints
the same table for *our* runs, from the phase timers every run records
and -- when telemetry is enabled -- the runtime counters priced with the
analytic FLOP model of :mod:`repro.perf.kernels`.

The scorecard degrades gracefully: with telemetry off it still reports
phase shares, wall time and Gcells/s (the driver always records those);
counter-derived rows (modeled FLOP/s, message/byte totals) appear only
when a :class:`repro.telemetry.MetricsSnapshot` is attached.
"""

from __future__ import annotations

import math

from ..perf.report import format_table

#: The paper's Section 6 claim: compressed dumps cost < 1 % of run time.
PAPER_IO_FRACTION = 0.01

#: Phases timed *inside* an enclosing phase span; their seconds are
#: already contained in the parent's, so share-of-wall rows mark them
#: nested and totals skip them.
NESTED_PHASES = frozenset({"IO_FWT", "IO_WRITE"})

#: Wall-clock denominators below this are degenerate measurements
#: (sub-nanosecond "runs" from mocked clocks or empty smoke cases);
#: rates computed from them report 0.0 instead of inf/NaN.
MIN_WALL_SECONDS = 1e-9

#: Process-wide tally of degenerate-denominator guards taken, keyed by
#: guard site (``io_fraction_degenerate_wall``, ...).  Observability for
#: the observability layer: a smoke case silently reporting 0 Gcells/s
#: is visible here instead of poisoning trend records with NaN.
DEGENERATE_COUNTS: dict[str, int] = {}


def safe_rate(numer: float, denom: float, counter: str) -> float:
    """``numer / denom`` guarded against degenerate denominators.

    Returns 0.0 (and bumps ``counter`` in :data:`DEGENERATE_COUNTS`)
    when ``denom`` is missing, below :data:`MIN_WALL_SECONDS` or
    non-finite -- never raises, never returns inf/NaN.
    """
    if not denom or denom < MIN_WALL_SECONDS or not math.isfinite(denom):
        DEGENERATE_COUNTS[counter] = DEGENERATE_COUNTS.get(counter, 0) + 1
        return 0.0
    return numer / denom


def io_fraction(result) -> float:
    """Fraction of run wall time spent in the wavelet dump phase.

    Returns ``IO_WAVELET`` seconds (mean per rank) over the run wall
    time -- the quantity the paper bounds by 1 % (Section 6).  Runs
    without dumps return 0.0; degenerate (near-zero) wall times return
    0.0 with a :data:`DEGENERATE_COUNTS` bump instead of emitting
    inf/NaN.
    """
    io_seconds = result.timers.get("IO_WAVELET", 0.0)
    if not io_seconds:
        return 0.0
    return safe_rate(io_seconds, getattr(result, "wall_seconds", 0.0),
                     "io_fraction_degenerate_wall")


def run_scorecard_rows(result) -> list[dict]:
    """Scorecard rows (heterogeneous dicts) for one ``RunResult``.

    Returns phase rows (``phase`` / ``seconds`` / ``share [%]`` and, with
    telemetry on, ``calls``) followed by summary rows carrying their own
    columns (``Gcells/s``, ``GFLOP/s``, ``check``); render with
    :func:`repro.perf.report.format_table`, which unions the columns.
    """
    snap = getattr(result, "telemetry", None)
    wall = getattr(result, "wall_seconds", 0.0)
    timers = dict(result.timers)
    denom = wall or sum(
        v for k, v in timers.items() if k not in NESTED_PHASES
    )
    rows: list[dict] = []
    for name in sorted(timers):
        label = f"{name} (in {_parent_of(name)})" if name in NESTED_PHASES \
            else name
        row = {
            "phase": label,
            "seconds": timers[name],
            "share [%]": 100.0 * timers[name] / denom if denom else 0.0,
        }
        if snap is not None:
            row["calls"] = snap.phase_calls.get(name, 0)
        rows.append(row)
    rows.append({"phase": "TOTAL (wall)", "seconds": wall,
                 "share [%]": 100.0})

    steps = len(result.records)
    rows.append({
        "phase": "throughput",
        "Gcells/s": result.cells_per_second / 1e9,
        "steps": steps,
    })
    imb = _run_imbalance_row(result)
    if imb is not None:
        rows.append(imb)
    if snap is not None:
        rows.append({
            "phase": "modeled compute",
            "GFLOP/s": snap.modeled_flop_rate() / 1e9,
            "GFLOP total": snap.modeled_flops() / 1e9,
        })
        if snap.counters.get("halo_messages"):
            rows.append({
                "phase": "halo traffic",
                "messages": int(snap.counters["halo_messages"]),
                "MB": snap.counters.get("halo_bytes", 0) / 1e6,
            })
        if snap.counters.get("io_raw_bytes"):
            raw = snap.counters["io_raw_bytes"]
            comp = snap.counters.get("io_compressed_bytes", 0)
            rows.append({
                "phase": "dump compression",
                "MB": comp / 1e6,
                "rate": raw / comp if comp else 0.0,
            })
    creport = getattr(result, "concurrency_report", None)
    if creport is not None:
        rows.append({"phase": "concurrency", "check": creport.summary()})
    frac = io_fraction(result)
    rows.append({
        "phase": "I/O fraction",
        "share [%]": 100.0 * frac,
        "check": (f"<= {100 * PAPER_IO_FRACTION:.0f}% ok"
                  if frac <= PAPER_IO_FRACTION
                  else f"EXCEEDS {100 * PAPER_IO_FRACTION:.0f}% claim"),
    })
    return rows


def _parent_of(name: str) -> str:
    """The enclosing phase a nested phase accumulates inside (str)."""
    return "IO_WAVELET" if name in NESTED_PHASES else ""


def _run_imbalance_row(result) -> dict | None:
    """Cross-rank load-imbalance scorecard row, or ``None``.

    Multi-rank runs get the total-step-time load-imbalance factor
    (max/mean, the paper's Table 4 basis) with straggler attribution;
    single-rank runs (where the metric is undefined) get no row.
    """
    from .analytics import run_imbalance

    rows = run_imbalance(result)
    if not rows:
        return None
    total = rows[-1]  # the TOTAL row of the per-phase table
    worst_phase = max(rows[:-1], key=lambda r: r["max [s]"] - r["mean [s]"])
    return {
        "phase": "load imbalance",
        "factor": total["lif"],
        "spread": total["imbalance"],
        "check": (f"rank {total['slowest rank']} bound "
                  f"({worst_phase['phase']})"),
    }


def format_run_scorecard(result) -> str:
    """Human-readable scorecard table of one run (returns the str).

    Mirrors the paper's Fig. 7 time distribution plus the Section 6/7
    throughput and I/O-fraction claims, for any :class:`RunResult`.
    """
    title = "Run scorecard (time in phase, throughput, I/O fraction)"
    return format_table(run_scorecard_rows(result), title,
                        floatfmt="{:.4g}")
