"""Structured run tracing: nested spans, counters and metrics snapshots.

The paper's evaluation is built on *measurement*: the per-kernel time
distributions of Fig. 7 (RHS / DT / UP / IO), the achieved Gcells/s
against the modeled peak (Section 7) and the claim that wavelet I/O costs
less than 1 % of run time (Section 6).  This module provides the runtime
instrumentation those tables are computed from:

:class:`PhaseTimers`
    The telemetry-*off* baseline: accumulating per-phase wall-clock
    seconds with a context-manager span interface.  It subclasses
    ``dict`` (phase name -> seconds) so the driver's legacy
    ``StepRecord.timers`` payload keeps its exact shape, and it caches
    one span object per phase name so the production step loop allocates
    nothing in steady state.

:class:`Tracer`
    The telemetry-*on* extension (modes ``"metrics"`` and ``"trace"``):
    adds named counters (cells updated, bytes compressed, allreduce
    calls, ...), per-span call counts, and -- in ``"trace"`` mode -- a
    bounded per-rank buffer of :class:`SpanEvent` records that the
    Chrome trace-event exporter turns into a Perfetto-loadable timeline.

:func:`make_tracer`
    Policy factory mirroring :func:`repro.analysis.sanitizer.make_sanitizer`:
    returns ``None`` for ``"off"`` so hot loops guard instrumentation
    with a single ``is None`` test and carry zero telemetry objects.

:class:`MetricsSnapshot`
    The JSON-serializable summary attached to ``RankResult`` /
    ``RunResult``: phase seconds and call counts, counters, event-buffer
    accounting and the analytic FLOP total modeled from the counters via
    :mod:`repro.perf.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import now

#: Valid telemetry modes (the ``SimulationConfig.telemetry`` policy).
MODES = ("off", "metrics", "trace")

#: Default bound of the per-rank span-event buffer (trace mode).  At the
#: driver's ~13 spans per step this covers runs of several thousand
#: steps; beyond it events are dropped (and counted), never reallocated.
DEFAULT_MAX_EVENTS = 65536


@dataclass(frozen=True)
class SpanEvent:
    """One completed span occurrence (trace mode only)."""

    name: str
    start: float  #: seconds since the tracer epoch
    duration: float  #: seconds
    depth: int  #: nesting depth at completion (0 = top level)


class _PhaseSpan:
    """Reusable context manager timing one named phase.

    Cached per phase name by :class:`PhaseTimers` so repeated ``with``
    blocks allocate nothing; a start-time stack makes re-entrant use
    (a phase nested inside itself) safe as well.
    """

    __slots__ = ("_owner", "_name", "_starts")

    def __init__(self, owner: "PhaseTimers", name: str):
        self._owner = owner
        self._name = name
        self._starts: list[float] = []

    def __enter__(self) -> "_PhaseSpan":
        self._starts.append(self._owner._enter(self._name))
        return self

    def __exit__(self, *exc) -> None:
        self._owner._exit(self._name, self._starts.pop())


class PhaseTimers(dict):
    """Accumulating per-phase wall-clock timers (phase name -> seconds).

    The dict payload is exactly the legacy driver-timers shape, so
    ``dict(timers)`` snapshots remain backward compatible.  ``calls``
    holds per-phase completion counts.
    """

    def __init__(self):
        super().__init__()
        self.calls: dict[str, int] = {}
        self._spans: dict[str, _PhaseSpan] = {}

    def span(self, name: str) -> _PhaseSpan:
        """Returns the (cached) context manager timing phase ``name``."""
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _PhaseSpan(self, name)
        return span

    # -- span hooks (overridden by Tracer) ------------------------------

    def _enter(self, name: str) -> float:
        return now()

    def _exit(self, name: str, t0: float) -> None:
        self[name] = self.get(name, 0.0) + (now() - t0)
        self.calls[name] = self.calls.get(name, 0) + 1


class Tracer(PhaseTimers):
    """Span/counter tracer for one rank (modes ``metrics`` / ``trace``).

    Parameters
    ----------
    mode:
        ``"metrics"`` accumulates phase seconds, call counts and
        counters; ``"trace"`` additionally records every completed span
        in a bounded event buffer for timeline export.  ``"off"`` is
        expressed by *not* constructing a tracer (:func:`make_tracer`).
    rank:
        The owning rank, stamped onto snapshots and trace timelines.
    max_events:
        Hard bound of the event buffer; completions past it increment
        ``events_dropped`` instead of growing memory.
    """

    def __init__(self, mode: str = "metrics", rank: int = 0,
                 max_events: int = DEFAULT_MAX_EVENTS):
        if mode not in MODES:
            raise ValueError(f"unknown telemetry mode {mode!r}; "
                             f"choose from {MODES}")
        if mode == "off":
            raise ValueError("mode 'off' means no tracer; use make_tracer()")
        super().__init__()
        self.mode = mode
        self.rank = int(rank)
        self.max_events = int(max_events)
        self.counters: dict[str, float] = {}
        self.events: list[SpanEvent] = []
        self.events_dropped = 0
        self.epoch = now()
        self._depth = 0

    # -- counters -------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value

    # -- span hooks -----------------------------------------------------

    def _enter(self, name: str) -> float:
        self._depth += 1
        return now()

    def _exit(self, name: str, t0: float) -> None:
        t1 = now()
        self._depth -= 1
        self[name] = self.get(name, 0.0) + (t1 - t0)
        self.calls[name] = self.calls.get(name, 0) + 1
        if self.mode == "trace":
            if len(self.events) < self.max_events:
                self.events.append(
                    SpanEvent(name=name, start=t0 - self.epoch,
                              duration=t1 - t0, depth=self._depth)
                )
            else:
                self.events_dropped += 1

    # -- export ---------------------------------------------------------

    def snapshot(self, wall_seconds: float = 0.0) -> "MetricsSnapshot":
        """Returns this rank's :class:`MetricsSnapshot` (deep-copied dicts)."""
        return MetricsSnapshot(
            mode=self.mode,
            rank=self.rank,
            ranks=1,
            wall_seconds=float(wall_seconds),
            phase_seconds=dict(self),
            phase_calls=dict(self.calls),
            counters=dict(self.counters),
            events_recorded=len(self.events),
            events_dropped=self.events_dropped,
        )


@dataclass
class MetricsSnapshot:
    """JSON-serializable metrics summary of one rank (or a whole run).

    ``rank`` is ``None`` for a merged snapshot; merged phase seconds are
    the per-rank *mean* (the same reduction as ``RunResult.timers``)
    while counters and call counts are summed across ranks, so counter
    totals are global quantities (total cell updates, total bytes).
    """

    mode: str
    rank: int | None
    ranks: int
    wall_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    events_recorded: int = 0
    events_dropped: int = 0

    def to_dict(self) -> dict:
        """Returns a ``json.dumps``-ready dict of every field."""
        return {
            "mode": self.mode,
            "rank": self.rank,
            "ranks": self.ranks,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "phase_calls": dict(self.phase_calls),
            "counters": dict(self.counters),
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
        }

    def modeled_flops(self) -> float:
        """Total FLOPs implied by the cell-update counters.

        Returns the analytic-model total (a float, FLOPs): counted cell
        updates priced with the per-cell FLOP costs of
        :mod:`repro.perf.kernels` (RHS 4400, DT 36, UP 28, FWT 27 per
        quantity) -- the same accounting basis as the paper's 11 PFLOP/s
        headline.
        """
        from ..perf.kernels import DT, FWT, RHS, UP

        c = self.counters
        return float(
            c.get("rhs_cell_updates", 0) * RHS.flops_per_cell
            + c.get("dt_cell_evals", 0) * DT.flops_per_cell
            + c.get("up_cell_updates", 0) * UP.flops_per_cell
            + c.get("fwt_cells", 0) * FWT.flops_per_cell
        )

    def modeled_flop_rate(self) -> float:
        """Modeled FLOP/s over the run wall time (0.0 if wall unknown)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.modeled_flops() / self.wall_seconds

    @classmethod
    def merged(cls, snapshots: list["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Returns the cross-rank reduction of per-rank snapshots.

        Phase seconds are averaged over the contributing ranks (matching
        the driver's ``RunResult.timers`` convention); calls, counters
        and event totals are summed; wall time is the rank maximum.
        """
        if not snapshots:
            raise ValueError("no snapshots to merge")
        phase_names: set[str] = set()
        for s in snapshots:
            phase_names.update(s.phase_seconds)
        n = len(snapshots)
        phase_seconds = {
            k: sum(s.phase_seconds.get(k, 0.0) for s in snapshots) / n
            for k in phase_names
        }
        phase_calls: dict[str, int] = {}
        counters: dict[str, float] = {}
        for s in snapshots:
            for k, v in s.phase_calls.items():
                phase_calls[k] = phase_calls.get(k, 0) + v
            for k, v in s.counters.items():
                counters[k] = counters.get(k, 0) + v
        return cls(
            mode=snapshots[0].mode,
            rank=None,
            ranks=sum(s.ranks for s in snapshots),
            wall_seconds=max(s.wall_seconds for s in snapshots),
            phase_seconds=phase_seconds,
            phase_calls=phase_calls,
            counters=counters,
            events_recorded=sum(s.events_recorded for s in snapshots),
            events_dropped=sum(s.events_dropped for s in snapshots),
        )


def make_tracer(mode: str, rank: int = 0,
                max_events: int = DEFAULT_MAX_EVENTS) -> Tracer | None:
    """Returns a :class:`Tracer` for ``mode``, or ``None`` for ``"off"``.

    Returning ``None`` (rather than a no-op object) keeps the ``off``
    policy free of any per-step overhead: hook sites guard counter calls
    with a single ``if tracer is not None`` -- the same pattern as
    :func:`repro.analysis.sanitizer.make_sanitizer`.
    """
    if mode not in MODES:
        raise ValueError(f"unknown telemetry mode {mode!r}; "
                         f"choose from {MODES}")
    if mode == "off":
        return None
    return Tracer(mode=mode, rank=rank, max_events=max_events)
