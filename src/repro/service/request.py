"""Canonicalized simulation requests and content-addressed cache keys.

Serving millions of scenario requests (ROADMAP item 3) only works if
identical requests are *recognizably* identical: two users asking for
the same cloud collapse must map to the same cache entry regardless of
how many ranks, which cluster backend, or what observability knobs each
of them picked.  This module defines the canonical form:

* :class:`ICSpec` -- a declarative, JSON-able initial-condition
  description (the driver's ``ic_fn`` callables cannot be hashed or
  shipped across process boundaries);
* :class:`JobRequest` -- the canonical request: the *semantic* subset of
  :class:`~repro.sim.config.SimulationConfig` (the fields that determine
  the computed result) plus the runtime subset (the fields that only
  determine *how* it is computed);
* :func:`canonical_key` -- SHA-256 over the sorted-key canonical JSON.

The semantic/runtime split leans on a hard-won repo invariant: results
are bit-identical across rank counts and across the sim/procs cluster
backends (``tests/test_backend_equivalence.py``), so those fields are
excluded from the key and identical scenarios dedup across deployment
shapes.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field

from ..sim.config import SimulationConfig

#: SimulationConfig fields that determine the computed result payload.
#: Everything else is runtime/observability and excluded from the key.
SEMANTIC_FIELDS = (
    "cells",
    "block_size",
    "extent",
    "cfl",
    "stepper",
    "fused_weno",
    "use_slices",
    "weno_order",
    "riemann_solver",
    "periodic",
    "wall",
    "boundary_default",
    "max_steps",
    "t_end",
    "diag_interval",
)

#: SimulationConfig fields a request may carry that change only how the
#: job runs (never what it computes); excluded from the cache key.
RUNTIME_FIELDS = (
    "ranks",
    "num_workers",
    "cluster_backend",
    "procs_ring_bytes",
    "comm_timeout",
    "comm_retry_attempts",
    "comm_retry_base",
)


class RequestError(ValueError):
    """The request cannot be canonicalized (and so cannot be served)."""


def _build_uniform(p):
    from ..sim.ic import uniform

    return uniform(rho=p.get("rho", 1000.0), p=p.get("p", 100.0),
                   velocity=tuple(p.get("velocity", (0.0, 0.0, 0.0))))


def _build_cloud_collapse(p):
    from ..sim.cloud import Bubble
    from ..sim.ic import cloud_collapse

    bubbles = [Bubble(center=(b[0], b[1], b[2]), radius=b[3])
               for b in p["bubbles"]]
    return cloud_collapse(
        bubbles,
        p_liquid=p.get("p_liquid", 100.0),
        p_vapor=p.get("p_vapor", 0.0234),
        rho_liquid=p.get("rho_liquid", 1000.0),
        rho_vapor=p.get("rho_vapor", 1.0),
        smoothing=p.get("smoothing", 0.0),
    )


def _build_generated_cloud(p):
    from ..sim.cloud import generate_cloud
    from ..sim.ic import cloud_collapse

    bubbles = generate_cloud(
        p["n_bubbles"],
        tuple(p.get("center", (0.5, 0.5, 0.5))),
        p.get("cloud_radius", 0.38),
        rng=p.get("seed", 2013),
        r_min=p.get("r_min", 0.07),
        r_max=p.get("r_max", 0.11),
    )
    return cloud_collapse(bubbles, p_liquid=p.get("p_liquid", 100.0),
                          smoothing=p.get("smoothing", 0.0))


def _build_shock_tube(p):
    from ..sim.ic import shock_tube

    return shock_tube(left=dict(p["left"]), right=dict(p["right"]),
                      x0=p.get("x0", 0.5), axis=p.get("axis", 2))


def _build_shock_bubble(p):
    from ..sim.cloud import Bubble
    from ..sim.ic import shock_bubble

    b = p["bubble"]
    kw = {k: p[k] for k in ("p_post", "rho_post", "u_post", "p_pre",
                            "rho_pre", "p_bubble", "rho_bubble", "axis",
                            "smoothing") if k in p}
    return shock_bubble(Bubble(center=(b[0], b[1], b[2]), radius=b[3]),
                        p["shock_position"], **kw)


#: Declarative IC registry: kind -> builder(params) -> ic_fn.
IC_KINDS = {
    "uniform": _build_uniform,
    "cloud_collapse": _build_cloud_collapse,
    "generated_cloud": _build_generated_cloud,
    "shock_tube": _build_shock_tube,
    "shock_bubble": _build_shock_bubble,
}


@dataclass(frozen=True)
class ICSpec:
    """A declarative initial condition: registry kind + JSON-able params.

    The physics seed (for ``generated_cloud``) lives *inside* the
    params: it is semantic (it selects the bubble population) and is
    therefore part of the cache key -- unlike fault-injection seeds,
    which never are.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in IC_KINDS:
            raise RequestError(
                f"unknown IC kind {self.kind!r}; choose from "
                f"{sorted(IC_KINDS)}"
            )
        try:
            json.dumps(self.params)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                f"IC params must be JSON-able: {exc}"
            ) from exc

    def build(self):
        """Construct the driver-facing ``ic_fn`` callable."""
        return IC_KINDS[self.kind](self.params)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": self.params}

    @classmethod
    def from_dict(cls, d: dict) -> "ICSpec":
        return cls(kind=d["kind"], params=dict(d.get("params", {})))


@dataclass
class JobRequest:
    """One canonicalized simulation request.

    ``config`` supplies both the semantic fields (hashed into the cache
    key) and the runtime fields (not hashed); ``ic`` is the declarative
    initial condition; ``restart_from`` optionally resumes from a
    checkpoint file whose *content* (CRC32) enters the key -- two
    requests resuming from byte-identical checkpoints dedup, requests
    resuming from different states never collide.
    """

    config: SimulationConfig
    ic: ICSpec
    restart_from: str | None = None

    def __post_init__(self):
        if not isinstance(self.config, SimulationConfig):
            raise RequestError("config must be a SimulationConfig")
        if not isinstance(self.ic, ICSpec):
            raise RequestError("ic must be an ICSpec")
        if self.config.erosion is not None:
            raise RequestError(
                "service requests cannot carry erosion models yet "
                "(not canonicalizable); run them through repro.cli run"
            )
        if self.config.fault_plan is not None:
            raise RequestError(
                "fault plans are per-submission chaos options, not part "
                "of a request: pass fault_plan= to JobEngine.submit()"
            )

    # -- canonical form ---------------------------------------------------

    def semantic_dict(self) -> dict:
        """The key-determining canonical mapping (dict, JSON-able)."""
        cfg = {}
        for name in SEMANTIC_FIELDS:
            v = getattr(self.config, name)
            cfg[name] = list(v) if isinstance(v, tuple) else v
        doc = {
            "schema": "repro.job/v1",
            "config": cfg,
            "ic": self.ic.to_dict(),
        }
        if self.restart_from is not None:
            with open(self.restart_from, "rb") as f:
                doc["restart_crc32"] = zlib.crc32(f.read()) & 0xFFFFFFFF
        return doc

    def runtime_dict(self) -> dict:
        """The non-key runtime fields (dict, JSON-able)."""
        return {name: getattr(self.config, name)
                for name in RUNTIME_FIELDS}

    def key(self) -> str:
        """The content-addressed cache key (64-char hex SHA-256)."""
        return canonical_key(self.semantic_dict())

    def to_payload(self) -> dict:
        """A JSON-able wire form a worker can rebuild the job from."""
        return {
            "semantic": self.semantic_dict(),
            "runtime": self.runtime_dict(),
            "restart_from": self.restart_from,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobRequest":
        """Rebuild a request from :meth:`to_payload` output."""
        sem = dict(payload["semantic"]["config"])
        for name in ("cells", "periodic", "wall"):
            if isinstance(sem.get(name), list):
                sem[name] = tuple(sem[name])
        runtime = dict(payload.get("runtime", {}))
        cfg = SimulationConfig(**sem, **runtime)
        return cls(
            config=cfg,
            ic=ICSpec.from_dict(payload["semantic"]["ic"]),
            restart_from=payload.get("restart_from"),
        )


def canonical_json(doc: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift (str)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def canonical_key(doc: dict) -> str:
    """SHA-256 hex digest of the canonical JSON of ``doc`` (str)."""
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()
