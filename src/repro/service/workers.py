"""Supervised worker pool: real processes computing simulation jobs.

Each worker is one OS process (``multiprocessing`` spawn, the procs
cluster backend's discipline) looping over a private task queue and
reporting on a shared result queue.  While a job runs the worker
publishes a heartbeat -- ``(job seq, rank, step, beat time)`` in a
shared array -- through two channels:

* a *ticker* thread beating every 100 ms (process liveness, covering
  jobs whose rank progress happens in grandchild processes under the
  procs backend);
* the fault injector's ``step_listener`` (rank/step progress, which the
  engine's parent-side killer replays against ``rank_crash`` specs to
  deliver *real* ``SIGKILL``\\ s at addressed steps -- the same idiom as
  :class:`repro.cluster.procs.ProcsWorld`).

A worker never decides retry policy: it classifies its failure into the
service taxonomy (:func:`classify_failure`), ships the fault ledger
(counter deltas + consumed-hit state) home, and lets the engine decide.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Heartbeat array slots (doubles in a shared Array).
HB_SEQ, HB_RANK, HB_STEP, HB_BEAT, HB_BUSY = range(5)
HB_SLOTS = 5

#: Failure kinds that must not be retried: the fault is deterministic
#: in the request itself, so a retry would reproduce it exactly.
NON_RETRYABLE = frozenset({"numerics", "invalid"})


def classify_failure(exc: BaseException) -> tuple[str, bool]:
    """Map a job exception to ``(kind, retryable)``.

    SPMD wrappers are unwrapped to their most specific primary cause;
    the kind vocabulary is shared with
    :data:`repro.exitcodes.KIND_EXIT` so ``repro serve`` exits with the
    matching taxonomy code.
    """
    from ..analysis.sanitizer import NumericsViolationError
    from ..cluster.mpi_sim import CommTimeoutError, DeadlockError, WorldError
    from ..cluster.procs import RankLostError
    from ..resilience.detect import CheckpointCorruptError, HaloCorruptionError
    from ..resilience.inject import InjectedRankCrash
    from .request import RequestError

    if isinstance(exc, WorldError):
        prim = list((exc.primary_failures or exc.failures).values())
        ranked = sorted((classify_failure(e) for e in prim),
                        key=lambda kr: kr[0] == "error")
        if ranked:
            return ranked[0]
        return "error", True
    checks: tuple[tuple[type, str, bool], ...] = (
        (InjectedRankCrash, "rank_crash", True),
        (RankLostError, "rank_crash", True),
        (DeadlockError, "deadlock", True),
        (HaloCorruptionError, "msg_corrupt", True),
        (CommTimeoutError, "comm_timeout", True),
        (CheckpointCorruptError, "ckpt_corrupt", True),
        (NumericsViolationError, "numerics", False),
        (RequestError, "invalid", False),
        (ValueError, "invalid", False),
    )
    for typ, kind, retryable in checks:
        if isinstance(exc, typ):
            return kind, retryable
    return "error", True


def result_payload(result) -> dict:
    """The cacheable result payload of a completed run (dict).

    Bit-stable by construction: the final field and diagnostics series
    come straight from the deterministic solver.  A run resumed from a
    checkpoint reports the resumed tail of the series
    (``first_recorded_step`` marks where it starts); its final field is
    bit-identical to an uninterrupted run's.
    """
    recs = result.records
    diag = [r for r in recs if r.diagnostics is not None]
    return {
        "schema": "repro.job_result/v1",
        "final_field": result.final_field,
        "steps": np.asarray([r.step for r in recs], dtype=np.int64),
        "times": np.asarray([r.time for r in recs]),
        "dts": np.asarray([r.dt for r in recs]),
        "first_recorded_step": int(recs[0].step) if recs else 0,
        "series": {
            name: np.asarray([getattr(r.diagnostics, name) for r in diag])
            for name in ("max_pressure", "wall_max_pressure",
                         "kinetic_energy", "vapor_volume",
                         "equivalent_radius")
        },
        "wall_seconds": float(result.wall_seconds),
    }


def _run_task(task: dict, injector) -> dict:
    """Execute one job task inside the worker process; returns payload."""
    from dataclasses import replace

    from ..cluster.driver import Simulation
    from .request import JobRequest

    request = JobRequest.from_payload(task["request"])
    cfg = replace(
        request.config,
        # Service-managed I/O: per-job checkpoint lineage for retry
        # resume, no dumps, no observability objects in the hot loop.
        checkpoint_interval=task.get("checkpoint_interval", 0),
        checkpoint_dir=task.get("checkpoint_dir", "."),
        checkpoint_keep=0,
        collect_final_field=True,
        dump_interval=0,
        telemetry="off",
        flight_out=None,
        progress_interval=0,
    )
    sim = Simulation(cfg, request.ic.build(),
                     restart_from=task.get("restart_from"),
                     injector=injector)
    return result_payload(sim.run())


def worker_main(worker_id: int, task_q, result_q, hb) -> None:
    """Process entry point: loop over tasks until the stop sentinel.

    Each result tuple is ``(worker_id, job_seq, status, body,
    counter_deltas, hit_state)`` -- the fault ledger rides along so the
    engine can merge consumed hits even for failed attempts (a retry
    must not refire a consumed transient fault).
    """
    from ..resilience.inject import FaultInjector

    while True:
        task = task_q.get()
        if task is None:
            break
        seq = task["seq"]
        injector = task.get("injector") or FaultInjector()
        with hb.get_lock():
            hb[HB_SEQ] = float(seq)
            hb[HB_RANK] = 0.0
            hb[HB_STEP] = 0.0
            hb[HB_BEAT] = time.monotonic()
            hb[HB_BUSY] = 1.0

        def on_step(rank: int, step: int) -> None:
            with hb.get_lock():
                hb[HB_RANK] = float(rank)
                hb[HB_STEP] = float(step)
                hb[HB_BEAT] = time.monotonic()

        injector.step_listener = on_step
        stop_tick = threading.Event()

        def tick() -> None:
            while not stop_tick.wait(0.1):
                with hb.get_lock():
                    hb[HB_BEAT] = time.monotonic()

        ticker = threading.Thread(target=tick, name=f"hb-{worker_id}",
                                  daemon=True)
        ticker.start()
        try:
            payload = _run_task(task, injector)
            status, body = "ok", payload
        except BaseException as exc:  # lint: disable=CL005 -- ships home as data
            kind, retryable = classify_failure(exc)
            status = "fail"
            body = {"kind": kind, "retryable": retryable,
                    "cause": repr(exc)[:2000]}
        finally:
            stop_tick.set()
            ticker.join(timeout=1.0)
            with hb.get_lock():
                hb[HB_BUSY] = 0.0
        result_q.put((worker_id, seq, status, body,
                      dict(injector.counters), injector.hit_state()))


def _close_queue(q) -> None:
    """Close an mp.Queue and stop its feeder thread (idempotent)."""
    try:
        q.close()
        q.join_thread()
    except (OSError, ValueError):
        pass


@dataclass
class WorkerHandle:
    """Parent-side state of one pool worker."""

    id: int
    process: object
    task_q: object
    hb: object
    #: seq of the job this worker is computing (None = idle)
    busy_seq: int | None = None
    dispatched_at: float = 0.0
    deadline: float | None = None
    #: why the parent killed it ("timeout" | "rank_crash" | ...), if it did
    kill_reason: str | None = None
    #: kill-replay watermark: last heartbeat step fed through the plan
    replayed_step: int = 0
    jobs_done: int = 0
    death_seen: float | None = None

    def heartbeat(self) -> tuple[int, int, int, float, bool]:
        """Snapshot ``(seq, rank, step, beat, busy)`` of the shared slot."""
        with self.hb.get_lock():
            return (int(self.hb[HB_SEQ]), int(self.hb[HB_RANK]),
                    int(self.hb[HB_STEP]), float(self.hb[HB_BEAT]),
                    bool(self.hb[HB_BUSY]))

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """Fixed-size pool of worker processes with replace-on-death.

    The pool owns process lifecycle only; scheduling decisions live in
    the engine.  ``retire`` replaces a worker gracefully (stop sentinel,
    deferred join), ``kill`` delivers a real ``SIGKILL`` -- the caller
    is then responsible for calling ``replace``.
    """

    def __init__(self, size: int, start_method: str = "spawn"):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        from multiprocessing import get_context

        self.size = size
        self._ctx = get_context(start_method)
        self.result_q = self._ctx.Queue()
        self.workers: dict[int, WorkerHandle] = {}
        self._retiring: list[WorkerHandle] = []
        self._next_id = 0
        self.restarts = 0  #: replacement spawns after the initial pool

    def start(self) -> None:
        for _ in range(self.size):
            self._spawn()

    def _spawn(self) -> WorkerHandle:
        wid = self._next_id
        self._next_id += 1
        task_q = self._ctx.Queue()
        hb = self._ctx.Array("d", HB_SLOTS)
        p = self._ctx.Process(
            target=worker_main, args=(wid, task_q, self.result_q, hb),
            name=f"service-worker-{wid}", daemon=False,
        )
        p.start()
        handle = WorkerHandle(id=wid, process=p, task_q=task_q, hb=hb)
        self.workers[wid] = handle
        return handle

    # -- scheduling hooks -------------------------------------------------

    def idle(self) -> list[WorkerHandle]:
        """Alive, unassigned workers (list, id order)."""
        return [w for w in sorted(self.workers.values(), key=lambda w: w.id)
                if w.busy_seq is None and w.alive]

    def dispatch(self, worker: WorkerHandle, task: dict,
                 deadline: float | None) -> None:
        worker.busy_seq = task["seq"]
        worker.dispatched_at = time.monotonic()
        worker.deadline = deadline
        worker.kill_reason = None
        worker.replayed_step = 0
        worker.death_seen = None
        worker.task_q.put(task)

    def finish(self, worker: WorkerHandle) -> None:
        """Mark a worker idle after its result arrived."""
        worker.busy_seq = None
        worker.deadline = None
        worker.kill_reason = None
        worker.jobs_done += 1

    # -- lifecycle --------------------------------------------------------

    def kill(self, worker: WorkerHandle, reason: str) -> None:
        """Deliver a real ``SIGKILL``; records why for classification."""
        worker.kill_reason = reason
        pid = worker.process.pid
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    def replace(self, worker: WorkerHandle) -> WorkerHandle:
        """Swap a dead worker for a fresh one; returns the new handle."""
        self.workers.pop(worker.id, None)
        self._retiring.append(worker)
        self.restarts += 1
        return self._spawn()

    def retire(self, worker: WorkerHandle) -> WorkerHandle:
        """Gracefully replace an (idle) worker; returns the new handle.

        Used after a failed attempt so the retry lands on a *fresh*
        worker: the old one gets the stop sentinel and is joined
        opportunistically by :meth:`reap`.
        """
        self.workers.pop(worker.id, None)
        try:
            worker.task_q.put(None)
        except (OSError, ValueError):
            pass
        self._retiring.append(worker)
        self.restarts += 1
        return self._spawn()

    def reap(self) -> None:
        """Join exited retirees without blocking the supervisor."""
        still = []
        for w in self._retiring:
            w.process.join(timeout=0)
            if w.process.is_alive():
                still.append(w)
            else:
                # The retiree is gone: release its private task queue
                # (feeder thread + pipe fds) now rather than at GC time.
                _close_queue(w.task_q)
        self._retiring = still

    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Stop every worker (sentinel first, then escalate)."""
        for w in self.workers.values():
            if graceful:
                try:
                    w.task_q.put(None)
                except (OSError, ValueError):
                    pass
            else:
                self.kill(w, "shutdown")
        deadline = time.monotonic() + timeout
        for w in list(self.workers.values()) + self._retiring:
            w.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=2.0)
            if w.process.is_alive():
                # terminate() (SIGTERM) can be shrugged off mid-kernel;
                # the supervisor must not return with live children.
                self.kill(w, "shutdown")
                w.process.join(timeout=2.0)
            _close_queue(w.task_q)
        self.workers.clear()
        self._retiring.clear()
        _close_queue(self.result_q)

    def snapshot(self) -> list[dict]:
        """Health view of the pool (list of JSON-able dicts)."""
        out = []
        for w in sorted(self.workers.values(), key=lambda w: w.id):
            seq, rank, step, beat, busy = w.heartbeat()
            out.append({
                "id": w.id,
                "pid": w.process.pid,
                "alive": w.alive,
                "busy_seq": w.busy_seq,
                "jobs_done": w.jobs_done,
                "hb_step": step if busy else None,
            })
        return out
