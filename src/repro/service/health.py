"""Service health snapshots and the operator scorecard.

:func:`health_snapshot` is the machine-readable view (stable JSON-able
schema ``repro.service_health/v1``) that ``repro serve --health-out``
persists and CI uploads as an artifact; :func:`format_service_scorecard`
is the human view printed at the end of a batch -- retries, cache hits,
shed counts, breaker state, per-worker throughput.
"""

from __future__ import annotations

from ..perf.report import format_table

SCHEMA = "repro.service_health/v1"


def health_snapshot(engine) -> dict:
    """One self-describing health snapshot of a :class:`JobEngine` (dict)."""
    jobs_by_status: dict[str, int] = {}
    with engine._lock:
        for job in engine._jobs.values():
            jobs_by_status[job.status] = \
                jobs_by_status.get(job.status, 0) + 1
        waiting_retry = len(engine._waiting)
        open_jobs = engine._open_jobs
    running = sum(1 for w in engine.pool.workers.values()
                  if w.busy_seq is not None)
    counters = dict(engine.counters)
    counters["worker_restarts"] = engine.pool.restarts
    return {
        "schema": SCHEMA,
        "state": engine.state,
        "workers": engine.pool.snapshot(),
        "queue": {
            "ready": engine.queue.ready_count(),
            "parked": engine.queue.parked_count(),
            "waiting_retry": waiting_retry,
            "running": running,
            "open_jobs": open_jobs,
            "parked_total": engine.queue.parked_total,
            "shed_total": engine.queue.shed_total,
        },
        "jobs": {"by_status": jobs_by_status},
        "counters": counters,
        "failures_by_kind": dict(engine.failures_by_kind),
        "breaker": {
            "threshold": engine.breaker.threshold,
            "open_keys": engine.breaker.open_keys(),
        },
        "cache": {
            "root": engine.cache.root,
            "entries": engine.cache.entries(),
            **engine.cache.counters,
        },
        "faults": dict(engine.injector.counters),
    }


def format_service_scorecard(snapshot: dict) -> str:
    """Render a health snapshot as the operator scorecard (str)."""
    c = snapshot["counters"]
    cache = snapshot["cache"]
    rows = [
        {"metric": "submitted", "value": c.get("submitted", 0)},
        {"metric": "computed", "value": c.get("computed", 0)},
        {"metric": "cache hits", "value": c.get("cache_hits", 0)},
        {"metric": "dedup joined", "value": c.get("dedup_joined", 0)},
        {"metric": "retries", "value": c.get("retries", 0)},
        {"metric": "shed", "value": c.get("shed", 0)},
        {"metric": "poisoned", "value": c.get("poisoned", 0)},
        {"metric": "timeouts", "value": c.get("timeouts", 0)},
        {"metric": "kills delivered", "value": c.get("kills_delivered", 0)},
        {"metric": "worker restarts", "value": c.get("worker_restarts", 0)},
        {"metric": "cache entries", "value": cache.get("entries", 0)},
        {"metric": "cache quarantined", "value": cache.get("quarantined", 0)},
    ]
    lines = [format_table(rows, title="service scorecard")]
    by_status = snapshot["jobs"]["by_status"]
    if by_status:
        lines.append(format_table(
            [{"status": k, "jobs": v}
             for k, v in sorted(by_status.items())],
            title="jobs by status",
        ))
    by_kind = snapshot.get("failures_by_kind") or {}
    if by_kind:
        lines.append(format_table(
            [{"kind": k, "attempt failures": v}
             for k, v in sorted(by_kind.items())],
            title="attempt failures by kind",
        ))
    open_keys = snapshot["breaker"]["open_keys"]
    if open_keys:
        lines.append("open circuits: "
                     + ", ".join(k[:16] for k in open_keys))
    return "\n\n".join(lines)
