"""Priority queue with admission control for the job service.

Graceful degradation under load means the queue must never grow without
bound: beyond ``max_pending`` ready jobs the service *parks* overflow
(bounded holding area, admitted back as capacity frees) and beyond
``park_capacity`` it *sheds* -- always the lowest-priority work, never
by collapsing.  A newly offered high-priority job can displace the worst
parked job (which is then shed) so priority inversion cannot wedge the
parking lot.

Priorities are ints, lower is more urgent; ties break FIFO by submission
sequence.  The queue stores opaque job objects and never inspects them
beyond the ``(priority, seq)`` pair handed in.
"""

from __future__ import annotations

import heapq
import threading


class AdmissionQueue:
    """Bounded two-stage priority queue: ready heap + parking lot."""

    def __init__(self, max_pending: int = 64, park_capacity: int = 64):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if park_capacity < 0:
            raise ValueError("park_capacity must be >= 0")
        self.max_pending = max_pending
        self.park_capacity = park_capacity
        self._lock = threading.Lock()
        self._ready: list = []   #: heap of (priority, seq, job)
        self._parked: list = []  #: heap of (-priority, -seq, ...) worst-first
        self.parked_total = 0
        self.shed_total = 0

    # -- introspection ----------------------------------------------------

    def ready_count(self) -> int:
        with self._lock:
            return len(self._ready)

    def parked_count(self) -> int:
        with self._lock:
            return len(self._parked)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ready) + len(self._parked)

    # -- admission --------------------------------------------------------

    def offer(self, priority: int, seq: int, job):
        """Admit a new job; returns ``(decision, shed_job)``.

        ``decision`` is ``"queued"``, ``"parked"`` or ``"shed"``;
        ``shed_job`` is the *displaced* parked job when a higher-priority
        offer bumped it out (the caller must fail it), else ``None``.
        A ``"shed"`` decision means the offered job itself was refused.
        """
        with self._lock:
            if len(self._ready) < self.max_pending:
                heapq.heappush(self._ready, (priority, seq, job))
                return "queued", None
            if len(self._parked) < self.park_capacity:
                heapq.heappush(self._parked, (-priority, -seq, job))
                self.parked_total += 1
                return "parked", None
            # Full house: shed the lowest-priority work.  The parked
            # heap is worst-first, so its head is the displacement
            # candidate.
            if self._parked:
                worst_pri = -self._parked[0][0]
                if priority < worst_pri:
                    _, nseq, displaced = heapq.heapreplace(
                        self._parked, (-priority, -seq, job)
                    )
                    self.parked_total += 1
                    self.shed_total += 1
                    return "parked", displaced
            self.shed_total += 1
            return "shed", None

    def requeue(self, priority: int, seq: int, job) -> None:
        """Re-admit an already-admitted job (retry); bypasses admission.

        Retries never re-enter admission control: the job already holds
        a slot, and shedding it mid-retry would turn transient faults
        into dropped work.
        """
        with self._lock:
            heapq.heappush(self._ready, (priority, seq, job))

    # -- dispatch ---------------------------------------------------------

    def pop(self):
        """The most urgent ready job, or ``None``; promotes parked work.

        Popping frees a ready slot, so the best parked job (smallest
        priority) is promoted into it in the same critical section.
        """
        with self._lock:
            if not self._ready:
                return None
            _, _, job = heapq.heappop(self._ready)
            self._promote_locked()
            return job

    def _promote_locked(self) -> None:
        # The parked heap is worst-first (for displacement); promotion
        # wants the *best* parked job, so scan for the minimum.  Parking
        # lots are bounded and small; O(n) is fine here.
        while self._parked and len(self._ready) < self.max_pending:
            best = min(
                range(len(self._parked)),
                key=lambda i: (-self._parked[i][0], -self._parked[i][1]),
            )
            npri, nseq, parked = self._parked.pop(best)
            heapq.heapify(self._parked)
            heapq.heappush(self._ready, (-npri, -nseq, parked))

    def drain(self) -> list:
        """Remove and return every queued/parked job (shutdown path)."""
        with self._lock:
            jobs = [j for _, _, j in self._ready]
            jobs.extend(j for _, _, j in self._parked)
            self._ready.clear()
            self._parked.clear()
            return jobs
