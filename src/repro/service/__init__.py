"""repro.service: fault-tolerant simulation-as-a-service.

An async job engine over a supervised pool of worker processes, with a
CRC-verified content-addressed result cache, bounded retry with
decorrelated-jitter backoff, per-job timeouts, heartbeat liveness, a
circuit breaker for poison configs, and admission control that degrades
gracefully under overload.  See ``docs/service.md``.
"""

from .cache import CacheCorruptError, ResultCache
from .engine import (
    JobCancelledError,
    JobEngine,
    JobFailedError,
    JobHandle,
    JobResult,
    JobShedError,
    ServiceClosedError,
    ServiceConfig,
)
from .health import format_service_scorecard, health_snapshot
from .queue import AdmissionQueue
from .request import ICSpec, JobRequest, RequestError, canonical_key
from .retry import BackoffPolicy, CircuitBreaker, PoisonedConfigError

__all__ = [
    "AdmissionQueue",
    "BackoffPolicy",
    "CacheCorruptError",
    "CircuitBreaker",
    "ICSpec",
    "JobCancelledError",
    "JobEngine",
    "JobFailedError",
    "JobHandle",
    "JobRequest",
    "JobResult",
    "JobShedError",
    "PoisonedConfigError",
    "RequestError",
    "ResultCache",
    "ServiceClosedError",
    "ServiceConfig",
    "canonical_key",
    "format_service_scorecard",
    "health_snapshot",
]
