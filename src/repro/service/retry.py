"""Retry scheduling and circuit breaking for the job service.

Two policies, both deterministic per seed so chaos acceptance tests
replay exactly:

* :class:`BackoffPolicy` -- bounded retry with exponential backoff and
  *decorrelated jitter*: each delay is drawn uniformly from
  ``[base, min(cap, 3 * previous)]``.  Decorrelated jitter spreads a
  thundering herd of retries better than plain jittered exponential
  (retries of jobs that failed together stop being synchronized after
  the first draw) while keeping the exponential envelope.
* :class:`CircuitBreaker` -- per-request-key quarantine of poison
  configs: a request whose attempts keep failing on *distinct* workers
  is the problem itself (not an unlucky worker) and gets its circuit
  opened after ``threshold`` distinct-worker consecutive failures;
  further attempts and submissions fail fast instead of burning the
  pool.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded retry with exponential backoff + decorrelated jitter.

    ``max_attempts`` bounds *total* attempts per job (first try
    included); delays between them follow the decorrelated-jitter
    recurrence seeded per job, so two runs of the same chaos plan
    produce the same retry schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")

    def delays(self, seed) -> "_DelayStream":
        """The per-job delay stream (iterator of float seconds)."""
        return _DelayStream(self, seed)


class _DelayStream:
    """Stateful decorrelated-jitter sequence for one job."""

    def __init__(self, policy: BackoffPolicy, seed):
        self._policy = policy
        self._rng = random.Random(f"service-backoff:{seed}")
        self._prev = policy.base_delay

    def __iter__(self):
        return self

    def __next__(self) -> float:
        p = self._policy
        d = self._rng.uniform(p.base_delay,
                              min(p.max_delay, 3.0 * self._prev))
        self._prev = d
        return d


class PoisonedConfigError(RuntimeError):
    """The request's circuit is open: it failed on too many workers."""

    def __init__(self, key: str, workers: tuple, kinds: tuple):
        self.key = key
        self.workers = workers
        self.kinds = kinds
        super().__init__(
            f"request {key[:16]} quarantined by the circuit breaker: "
            f"{len(workers)} consecutive distinct-worker failures "
            f"(workers {list(workers)}, kinds {list(kinds)})"
        )


@dataclass
class _Circuit:
    """Failure streak of one request key."""

    workers: list = field(default_factory=list)  #: distinct ids, ordered
    kinds: list = field(default_factory=list)
    open: bool = False


class CircuitBreaker:
    """Per-key consecutive distinct-worker failure tracker.

    A failure on a worker already in the streak refreshes its kind but
    does not lengthen the streak -- only a *new* worker corroborating
    the failure does, which is what separates a poison config from a
    bad worker.  Any success resets the streak.  Thread-safe.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._circuits: dict[str, _Circuit] = {}

    def record_failure(self, key: str, worker_id: int, kind: str) -> bool:
        """Record one failed attempt; returns True if the circuit opened."""
        with self._lock:
            c = self._circuits.setdefault(key, _Circuit())
            if c.open:
                return False
            if worker_id not in c.workers:
                c.workers.append(worker_id)
                c.kinds.append(kind)
            if len(c.workers) >= self.threshold:
                c.open = True
                return True
            return False

    def record_success(self, key: str) -> None:
        """A successful attempt clears the streak (closed circuits only)."""
        with self._lock:
            c = self._circuits.get(key)
            if c is not None and not c.open:
                del self._circuits[key]

    def is_open(self, key: str) -> bool:
        with self._lock:
            c = self._circuits.get(key)
            return c is not None and c.open

    def error(self, key: str) -> PoisonedConfigError:
        """The fail-fast error describing ``key``'s open circuit."""
        with self._lock:
            c = self._circuits.get(key) or _Circuit()
            return PoisonedConfigError(key, tuple(c.workers),
                                       tuple(c.kinds))

    def open_keys(self) -> list[str]:
        """Keys with open circuits (list[str], sorted)."""
        with self._lock:
            return sorted(k for k, c in self._circuits.items() if c.open)

    def reset(self, key: str) -> None:
        """Operator override: forget ``key``'s streak entirely."""
        with self._lock:
            self._circuits.pop(key, None)
