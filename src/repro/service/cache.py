"""CRC-verified, content-addressed result cache.

One entry per canonical request key (see :mod:`repro.service.request`).
The on-disk record is fully self-verifying::

    MAGIC "RSC1" | u32 meta_len | u64 payload_len | u32 meta_crc
                 | u32 payload_crc | meta (JSON) | payload (pickle)

Reads validate magic, framing lengths against the file size (a truncated
write cannot parse) and both CRC32s before a single payload byte is
unpickled.  Any violation *quarantines* the entry -- it is atomically
renamed aside (``.quarantined``), counted, and reported as a miss so the
engine transparently recomputes; a corrupt entry is never served and
never poisons later lookups.

Writes are atomic (temp file + ``os.replace``) following the checkpoint
writer's discipline, so a crash mid-write leaves either the previous
generation or a sweepable ``.tmp``, never a half entry.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import zlib

from ..telemetry.log import get_logger

MAGIC = b"RSC1"
_HEADER = struct.Struct("<4sIQII")  #: magic, meta_len, payload_len, crcs


class CacheCorruptError(RuntimeError):
    """A cache entry failed verification (reported after quarantine)."""


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class ResultCache:
    """Content-addressed result store under one root directory.

    Thread-safe; entries are keyed by the canonical request hash.  An
    optional :class:`~repro.resilience.inject.FaultInjector` lets chaos
    plans flip bits in entries as they are written (``ckpt_bitflip``
    specs -- a cache entry is checkpoint-like payload), which the read
    path must then catch and quarantine.
    """

    def __init__(self, root: str, injector=None):
        self.root = root
        self.injector = injector
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self.counters = {"hits": 0, "misses": 0, "writes": 0,
                         "quarantined": 0}
        self._log = get_logger("service.cache")

    def _count(self, name: str) -> None:
        with self._lock:
            self.counters[name] += 1

    def path(self, key: str) -> str:
        """The entry path of ``key`` (str; the file may not exist)."""
        return os.path.join(self.root, f"{key}.rsc")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def entries(self) -> int:
        """Count of (unquarantined) entries on disk (int)."""
        return sum(1 for n in os.listdir(self.root) if n.endswith(".rsc"))

    # -- write ------------------------------------------------------------

    def put(self, key: str, payload: dict, meta: dict | None = None) -> str:
        """Store ``payload`` (picklable mapping) under ``key``; returns path.

        ``meta`` is a small JSON-able mapping stored alongside (schema,
        attempts, wall seconds, ...) readable without unpickling.
        """
        meta_doc = {"schema": "repro.result_cache/v1", "key": key}
        meta_doc.update(meta or {})
        import json

        meta_bytes = json.dumps(meta_doc, sort_keys=True).encode()
        buf = io.BytesIO()
        pickle.dump(payload, buf, protocol=pickle.HIGHEST_PROTOCOL)
        payload_bytes = buf.getvalue()
        record = _HEADER.pack(MAGIC, len(meta_bytes), len(payload_bytes),
                              _crc(meta_bytes), _crc(payload_bytes))
        if self.injector is not None:
            # Chaos hook: a cache entry is checkpoint-like payload, so
            # plan-driven SDC (``ckpt_bitflip``) applies here too --
            # after the CRCs are sealed, like real bit rot between
            # compute and disk.
            payload_bytes = self.injector.corrupt_checkpoint_payload(
                -1, -1, payload_bytes
            )
        path = self.path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(record)
            f.write(meta_bytes)
            f.write(payload_bytes)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        self._count("writes")
        self._log.debug("cache_put", key=key[:16],
                        bytes=len(payload_bytes))
        return path

    # -- read -------------------------------------------------------------

    def _verify(self, path: str) -> tuple[dict, dict]:
        """Parse and fully verify one entry; returns (meta, payload).

        Raises :class:`CacheCorruptError` on any violation.
        """
        import json

        with open(path, "rb") as f:
            blob = f.read()
        if len(blob) < _HEADER.size:
            raise CacheCorruptError(f"{path}: truncated header "
                                    f"({len(blob)} bytes)")
        magic, meta_len, payload_len, meta_crc, payload_crc = \
            _HEADER.unpack_from(blob)
        if magic != MAGIC:
            raise CacheCorruptError(f"{path}: bad magic {magic!r}")
        end = _HEADER.size + meta_len + payload_len
        if len(blob) != end:
            raise CacheCorruptError(
                f"{path}: framing mismatch (file {len(blob)} bytes, "
                f"record claims {end})"
            )
        meta_bytes = blob[_HEADER.size:_HEADER.size + meta_len]
        payload_bytes = blob[_HEADER.size + meta_len:end]
        if _crc(meta_bytes) != meta_crc:
            raise CacheCorruptError(f"{path}: meta CRC mismatch")
        if _crc(payload_bytes) != payload_crc:
            raise CacheCorruptError(f"{path}: payload CRC mismatch")
        try:
            meta = json.loads(meta_bytes)
            payload = pickle.loads(payload_bytes)
        except Exception as exc:
            raise CacheCorruptError(f"{path}: undecodable body: "
                                    f"{exc!r}") from exc
        return meta, payload

    def quarantine(self, key: str, reason: str) -> str | None:
        """Move the entry of ``key`` aside; returns the new path (or None).

        The quarantined file keeps its bytes for post-mortems but can
        never match a lookup again.
        """
        path = self.path(key)
        qpath = path + ".quarantined"
        try:
            os.replace(path, qpath)
        except OSError:
            return None
        self._count("quarantined")
        self._log.warn("cache_quarantined", key=key[:16], reason=reason)
        return qpath

    def get(self, key: str) -> tuple[dict, dict] | None:
        """Verified lookup; returns ``(meta, payload)`` or ``None``.

        A corrupt or truncated entry is quarantined and reported as a
        miss -- the caller recomputes, and the recompute overwrites the
        (now absent) entry.
        """
        path = self.path(key)
        if not os.path.exists(path):
            self._count("misses")
            return None
        try:
            meta, payload = self._verify(path)
        except CacheCorruptError as exc:
            self.quarantine(key, reason=str(exc))
            self._count("misses")
            return None
        except OSError:
            self._count("misses")
            return None
        self._count("hits")
        return meta, payload
