"""The job engine: async simulation-as-a-service with fault tolerance.

:class:`JobEngine` accepts canonicalized :class:`JobRequest`\\ s and
returns :class:`JobHandle` futures.  Every submission flows through the
same gauntlet:

1. **circuit breaker** -- a key quarantined as poison fails fast;
2. **result cache** -- a CRC-verified hit resolves instantly (corrupt
   entries are quarantined and fall through to recompute);
3. **dedup** -- a key already in flight is joined, never recomputed
   (single-flight);
4. **admission control** -- bounded ready queue, bounded parking lot,
   worst-first shedding (:class:`~repro.service.queue.AdmissionQueue`);
5. **supervised execution** -- a worker-pool process computes the job
   under heartbeat liveness, per-job wall-clock timeout, and (for
   chaos plans) parent-side SIGKILL delivery;
6. **bounded retry** -- failed attempts retry on a *fresh* worker with
   exponential backoff + decorrelated jitter, resuming from the newest
   verified checkpoint when checkpointing is on, until the attempt
   budget is spent or the breaker opens.

The supervisor is one thread owning all scheduling state; workers are
real processes (see :mod:`repro.service.workers`).
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass, field

from ..resilience.inject import FaultInjector
from ..resilience.plan import FaultPlan
from ..telemetry.log import get_logger
from .cache import ResultCache
from .queue import AdmissionQueue
from .request import JobRequest
from .retry import BackoffPolicy, CircuitBreaker
from .workers import WorkerPool

#: Job lifecycle states.
QUEUED = "queued"
PARKED = "parked"
RUNNING = "running"
RETRY_WAIT = "retry_wait"
DONE_COMPUTED = "done_computed"
DONE_CACHED = "done_cached"
FAILED = "failed"
SHED = "shed"
POISONED = "poisoned"
CANCELLED = "cancelled"

TERMINAL = frozenset({DONE_COMPUTED, DONE_CACHED, FAILED, SHED,
                      POISONED, CANCELLED})

#: Grace between noticing a worker died and declaring the attempt lost
#: (its buffered result may still be in flight on the result queue).
_DEATH_GRACE = 0.5


class ServiceClosedError(RuntimeError):
    """The engine is draining or stopped; it accepts no new work."""


class JobFailedError(RuntimeError):
    """A job reached a terminal failure; ``kind`` names the taxonomy."""

    def __init__(self, kind: str, cause: str = "", attempts: int = 0):
        self.kind = kind
        self.cause = cause
        self.attempts = attempts
        msg = f"job failed [{kind}] after {attempts} attempt(s)"
        if cause:
            msg += f": {cause}"
        super().__init__(msg)


class JobShedError(JobFailedError):
    """Admission control refused or displaced the job (overload)."""

    def __init__(self, cause: str = "admission control shed the job"):
        super().__init__("shed", cause, attempts=0)


class JobCancelledError(JobFailedError):
    """The job was cancelled by a non-draining shutdown."""

    def __init__(self, cause: str = "service shut down"):
        super().__init__("cancelled", cause, attempts=0)


@dataclass(frozen=True)
class JobResult:
    """Terminal result of a completed job."""

    key: str
    payload: dict
    cached: bool  #: True when served from the result cache / dedup
    attempts: int

    @property
    def final_field(self):
        return self.payload["final_field"]

    def series(self, name: str):
        """One diagnostics series (ndarray) by name."""
        return self.payload["series"][name]


@dataclass
class ServiceConfig:
    """Tuning knobs of one :class:`JobEngine`."""

    workers: int = 2
    workdir: str = "service-work"
    cache_dir: str | None = None  #: default: ``<workdir>/cache``
    max_pending: int = 64
    park_capacity: int = 64
    #: Per-job wall-clock budget (seconds); None disables timeouts.
    job_timeout: float | None = None
    #: Stale-heartbeat kill threshold (seconds); None disables.
    heartbeat_timeout: float | None = 30.0
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    breaker_threshold: int = 3
    #: Steps between retry-resume checkpoints; 0 = retry from scratch
    #: (full diagnostics series -- see docs/service.md for the tradeoff).
    checkpoint_interval: int = 0
    #: Replace a worker after a failed attempt so the retry lands on a
    #: fresh process (also what makes breaker streaks distinct-worker).
    retire_failed_workers: bool = True
    #: Whether the engine delivers plan ``rank_crash`` SIGKILLs itself;
    #: None = auto (yes for the sim backend, no for procs whose own
    #: parent supervisor delivers them inside the worker).
    supervise_kills: bool | None = None
    #: Service-level chaos plan (cache-write corruption via
    #: ``ckpt_bitflip`` specs addressed at rank -1); per-job faults
    #: travel with ``submit(..., fault_plan=...)`` instead.
    fault_plan: FaultPlan | None = None
    poll_interval: float = 0.01
    start_method: str = "spawn"
    seed: int = 2013

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        if isinstance(self.fault_plan, dict):
            self.fault_plan = FaultPlan.from_dict(self.fault_plan)


@dataclass
class _Job:
    """Supervisor-private state of one submitted request."""

    seq: int
    key: str
    request: JobRequest
    payload: dict  #: request.to_payload(), built once
    priority: int
    timeout: float | None
    max_attempts: int
    injector: FaultInjector
    supervise: bool
    checkpoint_dir: str
    delays: object  #: backoff delay stream
    status: str = QUEUED
    attempts: int = 0
    not_before: float = 0.0
    worker_ids: list = field(default_factory=list)
    failure_kinds: list = field(default_factory=list)
    result: JobResult | None = None
    error: BaseException | None = None
    done: threading.Event = field(default_factory=threading.Event)


class JobHandle:
    """Caller-facing future of one submission."""

    def __init__(self, engine: "JobEngine", job: _Job):
        self._engine = engine
        self._job = job

    @property
    def key(self) -> str:
        return self._job.key

    @property
    def status(self) -> str:
        return self._job.status

    @property
    def attempts(self) -> int:
        return self._job.attempts

    def done(self) -> bool:
        return self._job.done.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block for the terminal result; raises the job's failure.

        Raises :class:`TimeoutError` if the job is not terminal within
        ``timeout`` seconds (the job keeps running).
        """
        if not self._job.done.wait(timeout):
            raise TimeoutError(
                f"job {self._job.key[:16]} not done within {timeout}s"
            )
        if self._job.result is not None:
            return self._job.result
        raise self._job.error


class JobEngine:
    """Supervised async job service over a process worker pool."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        os.makedirs(cfg.workdir, exist_ok=True)
        #: Service-level monitor + chaos hook (cache-write corruption).
        self.injector = FaultInjector(cfg.fault_plan)
        self.cache = ResultCache(
            cfg.cache_dir or os.path.join(cfg.workdir, "cache"),
            injector=self.injector,
        )
        self.queue = AdmissionQueue(cfg.max_pending, cfg.park_capacity)
        self.breaker = CircuitBreaker(cfg.breaker_threshold)
        self.pool = WorkerPool(cfg.workers, cfg.start_method)
        self._log = get_logger("service.engine")
        self._lock = threading.Lock()
        self._done_cond = threading.Condition(self._lock)
        self._jobs: dict[int, _Job] = {}
        self._active_by_key: dict[str, _Job] = {}
        self._waiting: list[_Job] = []  #: retry_wait jobs
        self._open_jobs = 0  #: non-terminal job count (drain target)
        self._next_seq = 0
        self._closed = False
        self.state = "created"
        self.counters = {
            "submitted": 0, "computed": 0, "cache_hits": 0,
            "dedup_joined": 0, "retries": 0, "shed": 0, "poisoned": 0,
            "exhausted": 0, "breaker_opened": 0, "timeouts": 0,
            "kills_delivered": 0, "cancelled": 0,
        }
        self.failures_by_kind: dict[str, int] = {}
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="service-supervisor", daemon=True
        )

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "JobEngine":
        self.pool.start()
        self._supervisor.start()
        self.state = "running"
        self._log.info("service_started", workers=self.config.workers,
                       cache=self.cache.root)
        return self

    def __enter__(self) -> "JobEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted job is terminal; returns success."""
        with self._done_cond:
            return self._done_cond.wait_for(
                lambda: self._open_jobs == 0, timeout
            )

    def shutdown(self, drain: bool = True,
                 timeout: float | None = 120.0) -> None:
        """Stop the service; with ``drain`` finish accepted work first.

        Without ``drain``, queued/waiting/running jobs are cancelled and
        running workers are killed.
        """
        with self._lock:
            if self.state == "stopped":
                return
            self._closed = True
            self.state = "draining" if drain else "stopping"
        if drain:
            ok = self.drain(timeout)
            if not ok:
                self._log.warn("drain_timeout", timeout=timeout)
        else:
            with self._lock:
                doomed = self.queue.drain() + list(self._waiting)
                self._waiting.clear()
                doomed += [j for j in self._jobs.values()
                           if j.status == RUNNING]
                for job in doomed:
                    if not job.done.is_set():
                        self.counters["cancelled"] += 1
                        self._fail_locked(job, JobCancelledError(),
                                          CANCELLED)
        self._stop.set()
        self._wake.set()
        self._supervisor.join(timeout=10.0)
        self.pool.stop(graceful=drain)
        self.state = "stopped"
        self._log.info("service_stopped", drained=drain)

    # -- submission -------------------------------------------------------

    def submit(self, request: JobRequest, *, priority: int = 0,
               fault_plan: FaultPlan | None = None,
               timeout: float | None = None,
               max_attempts: int | None = None) -> JobHandle:
        """Accept one request; returns a :class:`JobHandle` future.

        ``priority`` (lower = more urgent) feeds admission control;
        ``fault_plan`` arms per-job chaos; ``timeout``/``max_attempts``
        override the service defaults for this job.
        """
        cfg = self.config
        # Request hashing and the cache probe do real IO (a restart
        # checkpoint is CRC'd into the key; the cache reads payload
        # files from disk) -- do all of it before taking the engine
        # lock so submit never stalls the supervisor/drain paths.
        key = request.key()
        payload = request.to_payload()
        hit = self.cache.get(key)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is draining or stopped")
            self.counters["submitted"] += 1
            if self.breaker.is_open(key):
                self.counters["poisoned"] += 1
                job = self._terminal_job_locked(
                    key, request, POISONED, error=self.breaker.error(key)
                )
                return JobHandle(self, job)
            if hit is not None:
                meta, payload = hit
                self.counters["cache_hits"] += 1
                job = self._terminal_job_locked(
                    key, request, DONE_CACHED,
                    result_payload=payload,
                    attempts=int(meta.get("attempts", 1)),
                )
                self._log.info("cache_hit", key=key[:16])
                return JobHandle(self, job)
            active = self._active_by_key.get(key)
            if active is not None and not active.done.is_set():
                self.counters["dedup_joined"] += 1
                return JobHandle(self, active)
            job = self._new_job_locked(request, key, payload, priority,
                                       fault_plan, timeout, max_attempts)
            decision, displaced = self.queue.offer(priority, job.seq, job)
            if displaced is not None:
                self.counters["shed"] += 1
                self._fail_locked(
                    displaced,
                    JobShedError("displaced by a higher-priority job"),
                    SHED,
                )
            if decision == "shed":
                self.counters["shed"] += 1
                self._open_jobs -= 1  # never really admitted
                self._active_by_key.pop(key, None)
                self._fail_locked(job, JobShedError(), SHED,
                                  already_closed=True)
            else:
                job.status = QUEUED if decision == "queued" else PARKED
        self._wake.set()
        return JobHandle(self, job)

    def _new_job_locked(self, request, key, payload, priority, fault_plan,
                        timeout, max_attempts) -> _Job:
        cfg = self.config
        seq = self._next_seq
        self._next_seq += 1
        supervise = cfg.supervise_kills
        if supervise is None:
            supervise = request.config.cluster_backend == "sim"
        job = _Job(
            seq=seq,
            key=key,
            request=request,
            payload=payload,
            priority=priority,
            timeout=cfg.job_timeout if timeout is None else timeout,
            max_attempts=(cfg.backoff.max_attempts
                          if max_attempts is None else max_attempts),
            injector=FaultInjector(fault_plan),
            supervise=bool(supervise),
            checkpoint_dir=os.path.join(
                cfg.workdir, f"job-{seq:04d}-{key[:12]}"
            ),
            delays=cfg.backoff.delays(f"{cfg.seed}:{key[:16]}:{seq}"),
        )
        self._jobs[seq] = job
        self._active_by_key[key] = job
        self._open_jobs += 1
        return job

    def _terminal_job_locked(self, key, request, status, *, error=None,
                             result_payload=None, attempts=0) -> _Job:
        """A job born terminal (cache hit / poisoned fail-fast)."""
        seq = self._next_seq
        self._next_seq += 1
        job = _Job(
            seq=seq, key=key, request=request, payload={}, priority=0,
            timeout=None, max_attempts=0, injector=FaultInjector(),
            supervise=False, checkpoint_dir="", delays=iter(()),
            status=status, attempts=attempts, error=error,
        )
        if result_payload is not None:
            job.result = JobResult(key=key, payload=result_payload,
                                   cached=True, attempts=attempts)
        self._jobs[seq] = job
        job.done.set()
        return job

    # -- terminal transitions ---------------------------------------------

    def _fail_locked(self, job: _Job, error: BaseException, status: str,
                     already_closed: bool = False) -> None:
        job.error = error
        job.status = status
        if self._active_by_key.get(job.key) is job:
            del self._active_by_key[job.key]
        if not already_closed:
            self._open_jobs -= 1
        job.done.set()
        self._done_cond.notify_all()
        self.failures_by_kind.setdefault(status, 0)
        self._log.warn("job_failed", seq=job.seq, key=job.key[:16],
                       status=status, attempts=job.attempts,
                       err=str(error)[:200])

    def _complete_locked(self, job: _Job, payload: dict,
                         cached: bool) -> None:
        job.result = JobResult(key=job.key, payload=payload,
                               cached=cached, attempts=job.attempts)
        job.status = DONE_CACHED if cached else DONE_COMPUTED
        if self._active_by_key.get(job.key) is job:
            del self._active_by_key[job.key]
        self._open_jobs -= 1
        job.done.set()
        self._done_cond.notify_all()
        self._log.info("job_done", seq=job.seq, key=job.key[:16],
                       attempts=job.attempts, cached=cached)

    # -- supervisor loop --------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                self._drain_results()
                self._check_workers()
                self._promote_retries()
                self._dispatch()
                self.pool.reap()
            except Exception:  # pragma: no cover -- supervisor must live
                self._log.error("supervisor_error",
                                err=traceback.format_exc(limit=5))
            self._wake.wait(self.config.poll_interval)
            self._wake.clear()
        # Final sweep so results racing shutdown still resolve.
        try:
            self._drain_results()
        except Exception:
            self._log.warn("final_drain_error",
                           err=traceback.format_exc(limit=3))

    def _drain_results(self) -> None:
        while True:
            try:
                msg = self.pool.result_q.get_nowait()
            except queue_mod.Empty:
                return
            wid, seq, status, body, counters, hits = msg
            write_back = None
            with self._lock:
                job = self._jobs.get(seq)
                worker = self.pool.workers.get(wid)
                if job is not None:
                    job.injector.merge_child(counters, hits)
                if worker is not None and worker.busy_seq == seq:
                    self.pool.finish(worker)
                if job is None or job.done.is_set():
                    continue  # late result of a job already resolved
                if status == "ok":
                    job.attempts = max(job.attempts, 1)
                    self.breaker.record_success(job.key)
                    self.counters["computed"] += 1
                    write_back = job
                else:
                    # Graceful failure: retire the worker so any retry
                    # lands on a fresh process.
                    if (worker is not None
                            and self.config.retire_failed_workers
                            and worker.alive):
                        self.pool.retire(worker)
                    self._attempt_failed_locked(
                        job, wid, body["kind"], body["retryable"],
                        body.get("cause", ""),
                    )
            if write_back is not None:
                # Cache persistence is disk IO (tmp + fsync + replace):
                # it runs with the engine lock dropped, but *before*
                # the job is marked done -- a waiter that resubmits on
                # wake must find the entry already durable.
                self._write_cache(write_back, body)
                with self._lock:
                    if not write_back.done.is_set():
                        self._complete_locked(write_back, body,
                                              cached=False)

    def _write_cache(self, job: _Job, payload: dict) -> None:
        meta = {
            "attempts": job.attempts,
            "wall_seconds": payload.get("wall_seconds", 0.0),
            "runtime": job.request.runtime_dict(),
        }
        self.cache.put(job.key, payload, meta)

    def _attempt_failed_locked(self, job: _Job, worker_id: int,
                               kind: str, retryable: bool,
                               cause: str) -> None:
        self.failures_by_kind[kind] = \
            self.failures_by_kind.get(kind, 0) + 1
        job.worker_ids.append(worker_id)
        job.failure_kinds.append(kind)
        opened = self.breaker.record_failure(job.key, worker_id, kind)
        self._log.warn("attempt_failed", seq=job.seq, key=job.key[:16],
                       attempt=job.attempts, kind=kind, worker=worker_id,
                       cause=cause[:200])
        if opened or self.breaker.is_open(job.key):
            if opened:
                self.counters["breaker_opened"] += 1
            self.counters["poisoned"] += 1
            self._fail_locked(job, self.breaker.error(job.key), POISONED)
            return
        if not retryable:
            self._fail_locked(
                job, JobFailedError(kind, cause, job.attempts), FAILED
            )
            return
        if job.attempts >= job.max_attempts:
            self.counters["exhausted"] += 1
            self._fail_locked(
                job,
                JobFailedError(
                    "exhausted",
                    f"retry budget spent; last failure [{kind}] {cause}",
                    job.attempts,
                ),
                FAILED,
            )
            return
        delay = next(job.delays)
        job.not_before = time.monotonic() + delay
        job.status = RETRY_WAIT
        self._waiting.append(job)
        self.counters["retries"] += 1
        self._log.info("retry_scheduled", seq=job.seq, key=job.key[:16],
                       attempt=job.attempts, delay=round(delay, 3))

    def _check_workers(self) -> None:
        now = time.monotonic()
        for worker in list(self.pool.workers.values()):
            if worker.busy_seq is None:
                # An idle worker that died (e.g. spawn import failure)
                # still starves the pool: replace it.
                if not worker.alive:
                    if worker.death_seen is None:
                        worker.death_seen = now
                    elif now - worker.death_seen >= _DEATH_GRACE:
                        self.pool.replace(worker)
                continue
            with self._lock:
                job = self._jobs.get(worker.busy_seq)
            if job is None:
                continue
            if not worker.alive:
                if worker.death_seen is None:
                    worker.death_seen = now
                    continue
                if now - worker.death_seen < _DEATH_GRACE:
                    continue
                kind = worker.kill_reason or "worker_lost"
                self.pool.replace(worker)
                with self._lock:
                    if not job.done.is_set():
                        self._attempt_failed_locked(
                            job, worker.id, kind, True,
                            f"worker {worker.id} died ({kind})",
                        )
                continue
            hb_seq, hb_rank, hb_step, hb_beat, hb_busy = worker.heartbeat()
            on_job = hb_seq == job.seq and hb_busy
            if worker.kill_reason is not None:
                continue  # SIGKILL already sent; wait for the death path
            # Parent-side kill delivery: replay observed step progress
            # through the job's plan, exactly like the procs backend's
            # supervisor, so an armed rank_crash is a *real* SIGKILL.
            if job.supervise and on_job and hb_step > worker.replayed_step:
                for s in range(worker.replayed_step + 1, hb_step + 1):
                    if job.injector.fire("rank_crash", hb_rank, s):
                        self.counters["kills_delivered"] += 1
                        self.pool.kill(worker, "rank_crash")
                        break
                worker.replayed_step = hb_step
                if worker.kill_reason is not None:
                    continue
            # Wall-clock timeout.
            if worker.deadline is not None and now > worker.deadline:
                if on_job:
                    # The stall the plan injected was delivered and is
                    # being punished; consume matching specs parent-side
                    # (the child's ledger dies with it) so the retry
                    # does not deterministically refire them.
                    for kind in ("straggler", "msg_delay"):
                        for _ in range(len(job.injector.plan.faults)):
                            if not job.injector.fire(kind, hb_rank,
                                                     hb_step):
                                break
                self.counters["timeouts"] += 1
                self.pool.kill(worker, "timeout")
                continue
            # Heartbeat liveness (hung worker, not just slow job).
            hb_limit = self.config.heartbeat_timeout
            if hb_limit is not None:
                baseline = hb_beat if on_job else worker.dispatched_at
                if baseline > 0 and now - baseline > hb_limit:
                    self.pool.kill(worker, "worker_hung")

    def _promote_retries(self) -> None:
        now = time.monotonic()
        with self._lock:
            due = [j for j in self._waiting if j.not_before <= now]
            if not due:
                return
            self._waiting = [j for j in self._waiting
                             if j.not_before > now]
            for job in due:
                job.status = QUEUED
                self.queue.requeue(job.priority, job.seq, job)

    def _dispatch(self) -> None:
        while True:
            idle = self.pool.idle()
            if not idle:
                return
            job = self.queue.pop()
            if job is None:
                return
            if job.done.is_set():
                continue  # resolved (cancelled) while queued
            self._start_attempt(job, idle[0])

    def _start_attempt(self, job: _Job, worker) -> None:
        cfg = self.config
        with self._lock:
            job.attempts += 1
            attempt = job.attempts
            job.status = RUNNING
        clone = job.injector.child_clone(
            disable_kinds=("rank_crash",) if job.supervise else ()
        )
        if attempt > 1:
            # Retry determinism: re-derive the chaos RNG streams so a
            # probabilistic fault consumed by luck does not refire by
            # the same luck; the physics seed lives in the request and
            # is untouched.
            clone.reseed(attempt)
        restart = job.request.restart_from
        if attempt > 1 and cfg.checkpoint_interval > 0:
            found = None
            try:
                from ..resilience.recover import \
                    find_latest_verified_checkpoint
                found = find_latest_verified_checkpoint(
                    job.checkpoint_dir, injector=job.injector
                )
            except OSError:
                found = None
            if found is not None:
                restart = found[1]
                self._log.info("retry_resume", seq=job.seq,
                               step=found[0])
        if cfg.checkpoint_interval > 0:
            os.makedirs(job.checkpoint_dir, exist_ok=True)
        task = {
            "seq": job.seq,
            "request": job.payload,
            "attempt": attempt,
            "restart_from": restart,
            "checkpoint_dir": job.checkpoint_dir,
            "checkpoint_interval": cfg.checkpoint_interval,
            "injector": clone,
        }
        deadline = (time.monotonic() + job.timeout
                    if job.timeout is not None else None)
        self.pool.dispatch(worker, task, deadline)
        self._log.info("dispatched", seq=job.seq, key=job.key[:16],
                       attempt=attempt, worker=worker.id)
