"""Command-line interface.

Three subcommands mirror the workflow of the paper's software:

``run``
    Execute a cloud-cavitation-collapse simulation and print diagnostics
    (optionally with compressed dumps and a wall-erosion map).
``report``
    Print the performance-model reproduction of every paper table.
``compress``
    Wavelet-compress a 3D ``.npy`` scalar field to a dump file (and back).
``validate``
    Run the physics V&V suite against the committed golden baselines
    (forwards its flags to :mod:`repro.validation.cli`).
``analyze-flight``
    Cross-rank imbalance / straggler / critical-path report over a
    flight recording written with ``run --flight-out``.
``submit``
    Canonicalize a simulation request into a service job line (JSONL)
    and print its content-addressed cache key.
``serve``
    Run a batch of job lines through the fault-tolerant job service
    (supervised worker pool, result cache, retry/backoff, circuit
    breaker) and print the service scorecard.

Failures exit with the documented taxonomy codes of
:mod:`repro.exitcodes` (e.g. 66 deadlock, 67 rank lost, 69 poisoned).

Usage::

    python -m repro.cli run --cells 32 --bubbles 4
    python -m repro.cli report
    python -m repro.cli compress field.npy --eps 1e-3
    python -m repro.cli validate --suite smoke --check
    python -m repro.cli run --ranks 4 --flight-out flight.jsonl
    python -m repro.cli analyze-flight flight.jsonl
    python -m repro.cli submit --cells 16 --steps 4 --out jobs.jsonl
    python -m repro.cli serve jobs.jsonl --workers 2
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _cmd_run(args: argparse.Namespace) -> int:
    """Run a cloud-collapse simulation and print diagnostics."""
    from .cluster import Simulation
    from .sim import SimulationConfig, cloud_collapse, generate_cloud
    from .sim.diagnostics import format_sanitizer_report
    from .sim.erosion import ErosionModel

    bubbles = generate_cloud(
        args.bubbles, (0.5, 0.5, 0.5), 0.38, rng=args.seed,
        r_min=0.07, r_max=0.11,
    )
    erosion = (
        ErosionModel(p_threshold=args.erosion_threshold)
        if args.erosion_threshold else None
    )
    telemetry = args.telemetry
    if args.trace_out and telemetry != "trace":
        telemetry = "trace"  # --trace-out implies span recording
    fault_plan = None
    if args.fault_plan:
        from .resilience import FaultPlan

        fault_plan = FaultPlan.from_file(args.fault_plan)
    resilient = args.resilience or fault_plan is not None
    # Prefer the paper-like block size, but the block grid must also
    # decompose across the requested ranks.
    from .cluster.topology import balanced_dims

    dims = balanced_dims(args.ranks)
    block_size = next(
        (bs for bs in (16, 8)
         if args.cells % bs == 0
         and all((args.cells // bs) % d == 0 for d in dims)),
        8,
    )
    config = SimulationConfig(
        cells=args.cells,
        block_size=block_size,
        max_steps=args.steps,
        ranks=args.ranks,
        wall=(0, -1) if (args.wall or erosion) else None,
        erosion=erosion,
        dump_interval=args.dump_interval,
        dump_dir=args.dump_dir,
        sanitize=args.sanitize,
        telemetry=telemetry,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_keep=args.checkpoint_keep,
        fault_plan=fault_plan,
        max_recoveries=args.max_recoveries,
        comm_timeout=args.comm_timeout,
        concurrency_check=args.concurrency_check,
        cluster_backend=args.cluster_backend,
        flight_out=args.flight_out,
        progress_interval=args.progress,
    )
    ic = cloud_collapse(bubbles, p_liquid=args.pressure,
                        smoothing=config.h)
    rres = None
    if resilient:
        from .resilience import ResilientSimulation

        rres = ResilientSimulation(config, ic).run()
        result = rres.result
    else:
        result = Simulation(config, ic).run()
    print(f"{'step':>5} {'time':>9} {'max p':>10} {'kinetic E':>11} "
          f"{'r_eq':>8}")
    for rec in result.records[:: max(1, len(result.records) // 20)]:
        if rec.diagnostics is None:
            continue
        d = rec.diagnostics
        print(f"{rec.step:5d} {rec.time:9.5f} {d.max_pressure:10.2f} "
              f"{d.kinetic_energy:11.4e} {d.equivalent_radius:8.4f}")
    if result.wall_damage is not None:
        dmg = result.wall_damage
        print(f"\nwall damage: peak {dmg.max():.3e}, "
              f"damaged cells {(dmg > 0).sum()}/{dmg.size}")
    print("\ntimers [s]:",
          {k: round(v, 2) for k, v in sorted(result.timers.items())})
    print(f"run: {len(result.records)} steps in "
          f"{result.wall_seconds:.2f} s wall, "
          f"{result.cells_per_second / 1e6:.3f} Mcells/s")
    if args.flight_out:
        print(f"flight recording written to {args.flight_out} "
              "(analyze with: python -m repro.cli analyze-flight "
              f"{args.flight_out})")
    if telemetry != "off":
        from .telemetry import format_run_scorecard, write_chrome_trace

        print()
        print(format_run_scorecard(result))
        if args.trace_out:
            n = write_chrome_trace(args.trace_out, result)
            print(f"\ntrace: {n} events written to {args.trace_out} "
                  "(open at https://ui.perfetto.dev)")
    if args.sanitize != "off":
        print()
        print(format_sanitizer_report(result.sanitizer_report))
    if result.concurrency_report is not None:
        print()
        print(result.concurrency_report.summary())
        for v in result.concurrency_report.violations:
            print(f"  {v.rule} {v.message}")
        if args.concurrency_out:
            import json

            with open(args.concurrency_out, "w") as f:
                json.dump(result.concurrency_report.to_dict(), f, indent=2)
            print(f"concurrency report written to {args.concurrency_out}")
    if rres is not None:
        from .resilience import all_faults_recovered, format_resilience_scorecard

        print()
        print(format_resilience_scorecard(rres))
        if args.resilience_out:
            import json

            with open(args.resilience_out, "w") as f:
                json.dump(
                    {
                        "attempts": rres.attempts,
                        "recovery_overhead": rres.recovery_overhead,
                        "all_faults_recovered": all_faults_recovered(rres),
                        "counters": rres.counters,
                        "events": [vars(ev) for ev in rres.events],
                    },
                    f, indent=2,
                )
            print(f"\nresilience scorecard written to {args.resilience_out}")
        if not all_faults_recovered(rres):
            return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .perf import (
        format_table,
        machines_table,
        rhs_issue_bounds,
        table3,
        table5,
        table7,
        table10,
        throughput_cells_per_second,
        time_per_step,
    )

    print(format_table(machines_table(), "Table 1"))
    print()
    print(format_table(
        [
            {"kernel": e.kernel, "naive OI": e.naive_oi,
             "reordered OI": e.reordered_oi, "gain": e.gain}
            for e in table3()
        ],
        "Table 3",
    ))
    print()
    print(format_table([vars(b) for b in rhs_issue_bounds()], "Table 8"))
    print()
    print(format_table(table7(), "Table 7"))
    print()
    print(format_table(table5(), "Table 5"))
    print()
    print(format_table(table10(), "Table 10"))
    print()
    print(f"throughput (96 racks): "
          f"{throughput_cells_per_second(96) / 1e9:.0f} Gcells/s; "
          f"step time: {time_per_step(13.2e12, 96):.1f} s")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from .compression import WaveletCompressor
    from .physics.state import COMPUTE_DTYPE, STORAGE_DTYPE

    field = np.load(args.field)
    if field.ndim != 3:
        print("error: expected a 3D array", file=sys.stderr)
        return 2
    comp = WaveletCompressor(eps=args.eps, guaranteed=not args.paper_thresholds)
    cf = comp.compress(field.astype(STORAGE_DTYPE))
    out = args.output or (os.path.splitext(args.field)[0] + ".rwz.npy")
    np.save(out, np.frombuffer(cf.payload, dtype=np.uint8))
    restored = comp.decompress(cf)
    err = float(np.abs(restored.astype(COMPUTE_DTYPE) - field).max())
    print(f"{args.field}: {field.nbytes} B -> {cf.nbytes} B "
          f"({cf.stats.rate:.1f}:1), L-inf error {err:.3e} (eps {args.eps})")
    print(f"payload written to {out}")
    return 0


def _cmd_analyze_flight(args: argparse.Namespace) -> int:
    """Print the cross-rank analytics report of a flight recording."""
    from .telemetry import analyze_flight, format_flight_report

    try:
        analysis = analyze_flight(args.flight)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_flight_report(analysis, max_step_rows=args.worst))
    return 0


def _job_request_from_args(args: argparse.Namespace):
    """Build a canonical JobRequest from submit-style flags."""
    from .service import ICSpec, JobRequest
    from .sim import SimulationConfig

    config = SimulationConfig(
        cells=args.cells,
        block_size=args.block_size,
        max_steps=args.steps,
        diag_interval=args.diag_interval,
        ranks=args.ranks,
        cluster_backend=args.cluster_backend,
    )
    ic = ICSpec("generated_cloud", {
        "n_bubbles": args.bubbles,
        "seed": args.seed,
        "p_liquid": args.pressure,
        "smoothing": config.h,
    })
    return JobRequest(config=config, ic=ic)


def _cmd_submit(args: argparse.Namespace) -> int:
    """Canonicalize a request into a service job line (JSONL)."""
    import json

    request = _job_request_from_args(args)
    line = json.dumps({
        "request": request.to_payload(),
        "priority": args.priority,
    }, sort_keys=True)
    if args.out:
        with open(args.out, "a") as f:
            f.write(line + "\n")
        print(f"job appended to {args.out}")
    else:
        print(line)
    print(f"key: {request.key()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a batch of job lines through the job service."""
    import json

    from .exitcodes import EXIT_OK, classify_exit
    from .perf import format_table
    from .service import (
        BackoffPolicy,
        JobEngine,
        JobRequest,
        ServiceConfig,
        format_service_scorecard,
        health_snapshot,
    )

    service_plan = None
    if args.fault_plan:
        from .resilience import FaultPlan

        service_plan = FaultPlan.from_file(args.fault_plan)
    svc = ServiceConfig(
        workers=args.workers,
        workdir=args.workdir,
        cache_dir=args.cache_dir,
        max_pending=args.max_pending,
        park_capacity=args.park_capacity,
        job_timeout=args.job_timeout,
        backoff=BackoffPolicy(max_attempts=args.retries),
        breaker_threshold=args.breaker_threshold,
        checkpoint_interval=args.checkpoint_interval,
        fault_plan=service_plan,
        seed=args.seed,
    )
    with open(args.jobs) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    engine = JobEngine(svc).start()
    worst = EXIT_OK
    rows = []
    try:
        handles = []
        for i, doc in enumerate(lines):
            request = JobRequest.from_payload(doc["request"])
            plan = doc.get("fault_plan")
            if plan is not None:
                from .resilience import FaultPlan

                plan = FaultPlan.from_dict(plan)
            handles.append(engine.submit(
                request,
                priority=int(doc.get("priority", 0)),
                fault_plan=plan,
            ))
        engine.drain(timeout=args.drain_timeout)
        for i, h in enumerate(handles):
            row = {"job": i, "key": h.key[:16], "status": h.status,
                   "attempts": h.attempts}
            try:
                result = h.result(timeout=0)
                row["cached"] = result.cached
            except BaseException as exc:  # lint: disable=CL005 -- reported per-job
                code, name = classify_exit(exc)
                row["error"] = name
                worst = max(worst, code)
            rows.append(row)
        snapshot = health_snapshot(engine)
    finally:
        engine.shutdown(drain=True, timeout=args.drain_timeout)
    print(format_table(rows, title="jobs"))
    print()
    print(format_service_scorecard(snapshot))
    if args.health_out:
        with open(args.health_out, "w") as f:
            json.dump(snapshot, f, indent=2, default=str)
        print(f"\nhealth snapshot written to {args.health_out}")
    return worst


def _cmd_validate(args: argparse.Namespace) -> int:
    """Delegate to the validation CLI (single source of truth)."""
    from .validation.cli import main as validation_main

    return validation_main(list(args.validation_args))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the repro CLI."""
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a cloud collapse simulation")
    run.add_argument("--cells", type=int, default=32)
    run.add_argument("--bubbles", type=int, default=4)
    run.add_argument("--steps", type=int, default=60)
    run.add_argument("--ranks", type=int, default=1)
    run.add_argument("--cluster-backend", choices=["sim", "procs"],
                     default="sim",
                     help="cluster runtime: 'sim' (rank threads, "
                          "deterministic default) or 'procs' (rank "
                          "processes over shared-memory rings; real "
                          "multi-core scaling, bit-identical results)")
    run.add_argument("--pressure", type=float, default=1000.0)
    run.add_argument("--seed", type=int, default=2013)
    run.add_argument("--wall", action="store_true")
    run.add_argument("--erosion-threshold", type=float, default=0.0,
                     help="enable erosion accumulation above this wall "
                          "pressure")
    run.add_argument("--dump-interval", type=int, default=0)
    run.add_argument("--dump-dir", default=".")
    run.add_argument("--sanitize", choices=["off", "warn", "raise"],
                     default="off",
                     help="runtime numerics sanitizer policy (see "
                          "repro.analysis)")
    run.add_argument("--telemetry", choices=["off", "metrics", "trace"],
                     default="off",
                     help="run telemetry policy: metrics snapshot + "
                          "scorecard, or full span tracing (see "
                          "repro.telemetry)")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write a Perfetto-loadable Chrome trace-event "
                          "JSON of the run (implies --telemetry trace)")
    run.add_argument("--checkpoint-interval", type=int, default=0,
                     help="steps between lossless checkpoints (0 = never)")
    run.add_argument("--checkpoint-dir", default=".")
    run.add_argument("--checkpoint-keep", type=int, default=0,
                     help="checkpoint generations kept by rotation "
                          "(0 = keep everything)")
    run.add_argument("--fault-plan", metavar="PATH", default=None,
                     help="JSON chaos plan injected into the run (implies "
                          "--resilience; see repro.resilience)")
    run.add_argument("--resilience", action="store_true",
                     help="run under the supervised recovery loop "
                          "(checkpoint rollback on world failure)")
    run.add_argument("--max-recoveries", type=int, default=3)
    run.add_argument("--comm-timeout", type=float, default=None,
                     help="receive/collective timeout in seconds")
    run.add_argument("--concurrency-check", choices=["off", "warn", "raise"],
                     default="off",
                     help="runtime race detector + deadlock watchdog "
                          "policy for the thread-based cluster runtime "
                          "(see repro.analysis.concurrency)")
    run.add_argument("--concurrency-out", metavar="PATH", default=None,
                     help="write the runtime concurrency report as JSON")
    run.add_argument("--resilience-out", metavar="PATH", default=None,
                     help="write the resilience scorecard as JSON")
    run.add_argument("--flight-out", metavar="PATH", default=None,
                     help="write a step-level flight recording (JSONL, "
                          "schema repro.flight/v1) of the run")
    run.add_argument("--progress", type=int, default=0, metavar="N",
                     help="emit a structured progress heartbeat every N "
                          "steps (0 = silent)")
    run.set_defaults(func=_cmd_run)

    rep = sub.add_parser("report", help="print the performance models")
    rep.set_defaults(func=_cmd_report)

    comp = sub.add_parser("compress", help="compress a 3D .npy field")
    comp.add_argument("field")
    comp.add_argument("--eps", type=float, default=1e-3)
    comp.add_argument("--output")
    comp.add_argument("--paper-thresholds", action="store_true",
                      help="raw thresholds (no strict L-inf guarantee)")
    comp.set_defaults(func=_cmd_compress)

    fl = sub.add_parser(
        "analyze-flight",
        help="cross-rank imbalance report over a flight recording",
    )
    fl.add_argument("flight", help="flight JSONL written by run --flight-out")
    fl.add_argument("--worst", type=int, default=12, metavar="N",
                    help="per-step rows shown (worst N by imbalance)")
    fl.set_defaults(func=_cmd_analyze_flight)

    sb = sub.add_parser(
        "submit",
        help="canonicalize a request into a service job line (JSONL)",
    )
    sb.add_argument("--cells", type=int, default=16)
    sb.add_argument("--block-size", type=int, default=8)
    sb.add_argument("--steps", type=int, default=4)
    sb.add_argument("--diag-interval", type=int, default=1)
    sb.add_argument("--bubbles", type=int, default=2)
    sb.add_argument("--seed", type=int, default=2013,
                    help="physics seed of the generated bubble cloud "
                         "(semantic: part of the cache key)")
    sb.add_argument("--pressure", type=float, default=1000.0)
    sb.add_argument("--ranks", type=int, default=1)
    sb.add_argument("--cluster-backend", choices=["sim", "procs"],
                    default="sim")
    sb.add_argument("--priority", type=int, default=0,
                    help="admission priority (lower = more urgent)")
    sb.add_argument("--out", metavar="PATH", default=None,
                    help="append the job line to this JSONL file "
                         "(default: print to stdout)")
    sb.set_defaults(func=_cmd_submit)

    sv = sub.add_parser(
        "serve",
        help="run a JSONL job batch through the fault-tolerant service",
    )
    sv.add_argument("jobs", help="JSONL job file written by submit")
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument("--workdir", default="service-work")
    sv.add_argument("--cache-dir", default=None,
                    help="result cache root (default: <workdir>/cache; "
                         "reuse across invocations for cross-run hits)")
    sv.add_argument("--max-pending", type=int, default=64)
    sv.add_argument("--park-capacity", type=int, default=64)
    sv.add_argument("--job-timeout", type=float, default=None,
                    help="per-job wall-clock budget in seconds")
    sv.add_argument("--retries", type=int, default=3, metavar="N",
                    help="total attempts per job (first try included)")
    sv.add_argument("--breaker-threshold", type=int, default=3,
                    help="distinct-worker failures before a config is "
                         "quarantined as poison")
    sv.add_argument("--checkpoint-interval", type=int, default=0,
                    help="steps between retry-resume checkpoints "
                         "(0 = retry from scratch)")
    sv.add_argument("--fault-plan", metavar="PATH", default=None,
                    help="service-level JSON chaos plan (cache-write "
                         "corruption etc.)")
    sv.add_argument("--drain-timeout", type=float, default=600.0)
    sv.add_argument("--health-out", metavar="PATH", default=None,
                    help="write the service health snapshot as JSON")
    sv.add_argument("--seed", type=int, default=2013,
                    help="service seed (backoff jitter streams)")
    sv.set_defaults(func=_cmd_serve)

    val = sub.add_parser(
        "validate", add_help=False,
        help="run the physics V&V suite (see python -m repro.validation "
             "--help)",
    )
    val.add_argument("validation_args", nargs=argparse.REMAINDER,
                     help="flags forwarded to repro.validation")
    val.set_defaults(func=_cmd_validate)
    return ap


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # "validate" forwards everything to the validation CLI up front:
    # argparse's REMAINDER does not capture leading option tokens.
    if argv[:1] == ["validate"]:
        from .validation.cli import main as validation_main

        return validation_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        return 130
    except Exception as exc:
        # Map failures onto the documented exit-code taxonomy so
        # supervisors can classify without parsing tracebacks.
        from .exitcodes import classify_exit

        code, name = classify_exit(exc)
        print(f"error[{name}] {exc}", file=sys.stderr)
        return code


if __name__ == "__main__":
    raise SystemExit(main())
