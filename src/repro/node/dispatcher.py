"""Thread-level work dispatch (node layer).

The paper relies on OpenMP with *dynamic* scheduling at a parallel
granularity of one block to hide work imbalance (Section 6, "Enhancing
TLP").  Python cannot profitably run NumPy block kernels across real
threads for speed (GIL + bandwidth-bound kernels), so the dispatcher
supports two modes:

``instrumented`` (default)
    Execute the work items sequentially, timing each, then *simulate* the
    dynamic schedule over ``num_workers`` workers.  This yields the exact
    per-worker busy times an OpenMP dynamic-for would produce for those
    item costs -- which is what the paper's imbalance metric
    ``(t_max - t_min)/t_avg`` (Table 4) is computed from.

``threads``
    Execute with a real ``ThreadPoolExecutor`` work queue (NumPy releases
    the GIL inside ufuncs, so this exercises true concurrency) while
    recording per-worker busy time.

Both modes return :class:`ScheduleStats`.
"""

from __future__ import annotations

import heapq
import queue
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..telemetry.clock import now


@dataclass
class ScheduleStats:
    """Per-worker busy times of one dispatch round."""

    busy: np.ndarray  #: seconds of work per worker
    makespan: float  #: simulated/observed parallel completion time
    item_durations: np.ndarray  #: seconds per work item

    @property
    def imbalance(self) -> float:
        """The paper's imbalance metric ``(t_max - t_min) / t_avg``.

        Computed over per-worker busy times; 0 is perfectly balanced.
        """
        avg = float(self.busy.mean())
        if avg == 0.0:
            return 0.0
        return float((self.busy.max() - self.busy.min()) / avg)

    @property
    def efficiency(self) -> float:
        """Total work / (workers * makespan); 1 is a perfect schedule."""
        denom = self.busy.size * self.makespan
        return float(self.busy.sum() / denom) if denom > 0 else 1.0

    def to_dict(self) -> dict:
        """JSON-compatible summary of the round (dict of floats/ints).

        The shape the flight recorder embeds per step: worker count,
        makespan, the paper's imbalance metric and the efficiency.
        """
        return {
            "workers": int(self.busy.size),
            "items": int(self.item_durations.size),
            "makespan": float(self.makespan),
            "imbalance": self.imbalance,
            "efficiency": self.efficiency,
        }


def simulate_dynamic_schedule(durations, num_workers: int) -> ScheduleStats:
    """Simulate an OpenMP dynamic-for over items with known ``durations``.

    Items are handed out in order to whichever worker becomes free first
    (a min-heap of worker finish times) -- exactly the behaviour of
    ``schedule(dynamic, 1)``.
    """
    durations = np.asarray(durations, dtype=float)
    if num_workers < 1:
        raise ValueError("num_workers must be positive")
    finish = [(0.0, w) for w in range(num_workers)]
    heapq.heapify(finish)
    busy = np.zeros(num_workers)
    for d in durations:
        t, w = heapq.heappop(finish)
        busy[w] += d
        heapq.heappush(finish, (t + d, w))
    makespan = max(t for t, _ in finish)
    return ScheduleStats(busy=busy, makespan=makespan, item_durations=durations)


class Dispatcher:
    """Dynamic block-work dispatcher with per-worker accounting."""

    def __init__(self, num_workers: int = 4, mode: str = "instrumented"):
        if mode not in ("instrumented", "threads"):
            raise ValueError(f"unknown dispatch mode {mode!r}")
        self.num_workers = int(num_workers)
        self.mode = mode

    def run(self, items, fn):
        """Apply ``fn`` to every item; returns ``(results, ScheduleStats)``.

        Results are returned in item order regardless of execution order.
        """
        items = list(items)
        if self.mode == "instrumented":
            results = []
            durations = np.empty(len(items))
            for i, item in enumerate(items):
                t0 = now()
                results.append(fn(item))
                durations[i] = now() - t0
            stats = simulate_dynamic_schedule(durations, self.num_workers)
            return results, stats
        return self._run_threads(items, fn)

    def _run_threads(self, items, fn):
        work: queue.SimpleQueue = queue.SimpleQueue()
        for i, item in enumerate(items):
            work.put((i, item))
        results = [None] * len(items)
        durations = np.zeros(len(items))
        busy = np.zeros(self.num_workers)

        def worker(wid: int) -> None:
            while True:
                try:
                    i, item = work.get_nowait()
                except queue.Empty:
                    return
                t0 = now()
                results[i] = fn(item)
                dt = now() - t0
                durations[i] = dt
                busy[wid] += dt

        t_start = now()
        with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            futures = [pool.submit(worker, w) for w in range(self.num_workers)]
            for f in futures:
                f.result()
        makespan = now() - t_start
        return results, ScheduleStats(
            busy=busy, makespan=makespan, item_durations=durations
        )
