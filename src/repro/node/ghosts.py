"""Intra-rank ghost reconstruction and physical boundary conditions.

"To evaluate the RHS of a block, the assigned thread loads the block data
and ghosts into a per-thread dedicated buffer.  For a given block, the
intra-rank ghosts are obtained by loading fractions of the surrounding
blocks, whereas for the inter-rank ghosts data is fetched from a global
buffer" (paper Section 6).

Because the RHS consists of *directional* sweeps, only the six face slabs
of the padded work area are ever read -- edge and corner ghosts are not
needed and are not filled.

Boundary kinds
--------------
``extrapolate``
    Zero-gradient (absorbing) boundary: the production far-field condition.
``reflect``
    Solid wall: mirrored state with the normal momentum negated.  Used for
    the wall the paper records the maximum wall pressure on (Fig. 5).
``periodic``
    Wrap around the rank's own grid (single-rank test setups; multi-rank
    periodicity is resolved by the cluster topology instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.block import GHOSTS, Block
from ..physics.state import RHOU
from .grid import BlockGrid

#: Valid boundary kinds.
BOUNDARY_KINDS = ("extrapolate", "reflect", "periodic")


@dataclass(frozen=True)
class BoundarySpec:
    """Physical boundary condition for each of the six domain faces.

    ``faces`` maps ``(axis, side)`` -- axis 0/1/2 = z/y/x, side -1/+1 --
    to a boundary kind.  Faces not present default to ``default``.
    """

    default: str = "extrapolate"
    faces: dict = field(default_factory=dict)

    def kind(self, axis: int, side: int) -> str:
        k = self.faces.get((axis, side), self.default)
        if k not in BOUNDARY_KINDS:
            raise ValueError(f"unknown boundary kind {k!r}")
        return k

    @staticmethod
    def all_extrapolate() -> "BoundarySpec":
        return BoundarySpec(default="extrapolate")

    @staticmethod
    def wall_at(axis: int, side: int) -> "BoundarySpec":
        """Far-field everywhere except one reflecting solid wall."""
        return BoundarySpec(default="extrapolate", faces={(axis, side): "reflect"})

    @staticmethod
    def all_periodic() -> "BoundarySpec":
        return BoundarySpec(default="periodic")


def _ghost_region(pad: np.ndarray, axis: int, side: int) -> np.ndarray:
    """View of the face-slab ghost region of a padded work area."""
    g = GHOSTS
    sel = [slice(g, -g)] * 3
    sel[axis] = slice(0, g) if side == -1 else slice(pad.shape[axis] - g, None)
    return pad[tuple(sel)]


def _interior_edge(pad: np.ndarray, axis: int, side: int, width: int) -> np.ndarray:
    """View of the ``width`` interior layers adjacent to a face."""
    g = GHOSTS
    sel = [slice(g, -g)] * 3
    sel[axis] = slice(g, g + width) if side == -1 else slice(-g - width, -g)
    return pad[tuple(sel)]


def _apply_boundary(pad: np.ndarray, axis: int, side: int, kind: str) -> None:
    g = GHOSTS
    ghost = _ghost_region(pad, axis, side)
    if kind == "extrapolate":
        # Repeat the first interior layer (zero-gradient).
        sel = [slice(g, -g)] * 3
        sel[axis] = slice(g, g + 1) if side == -1 else slice(-g - 1, -g)
        ghost[...] = pad[tuple(sel)]
    elif kind == "reflect":
        mirrored = np.flip(_interior_edge(pad, axis, side, g), axis=axis)
        mirrored = mirrored.copy()
        mirrored[..., RHOU + (2 - axis)] *= -1.0  # negate normal momentum
        ghost[...] = mirrored
    else:  # pragma: no cover - periodic handled by the caller via wrap
        raise ValueError(f"boundary kind {kind!r} must be resolved by caller")


def fill_block_ghosts(
    pad: np.ndarray,
    grid: BlockGrid,
    block: Block,
    boundary: BoundarySpec | None = None,
    remote_provider=None,
) -> None:
    """Fill the six face-slab ghost regions of ``pad`` for ``block``.

    Resolution order per face: sibling block in the rank's grid, then the
    cluster-layer ``remote_provider`` (``provider(index, axis, side) ->
    slab or None``), then the physical boundary condition.  The interior
    of ``pad`` must already contain the block data.
    """
    boundary = boundary or BoundarySpec.all_extrapolate()
    g = GHOSTS
    for axis in range(3):
        for side in (-1, 1):
            neigh = grid.neighbor(block.index, axis, side)
            if neigh is not None:
                _ghost_region(pad, axis, side)[...] = neigh.face_slab(axis, -side, g)
                continue
            if remote_provider is not None:
                slab = remote_provider(block.index, axis, side)
                if slab is not None:
                    _ghost_region(pad, axis, side)[...] = slab
                    continue
            kind = boundary.kind(axis, side)
            if kind == "periodic":
                wrap = list(block.index)
                wrap[axis] = grid.num_blocks[axis] - 1 if side == -1 else 0
                neigh = grid.blocks[tuple(wrap)]
                _ghost_region(pad, axis, side)[...] = neigh.face_slab(axis, -side, g)
            else:
                _apply_boundary(pad, axis, side, kind)
