"""Per-rank block grid (node layer).

Each MPI rank owns a cartesian grid of cubic blocks of constant size
(paper Section 6: "the computational domain is decomposed into subdomains
across the ranks ... with a constant subdomain size").  The node layer
coordinates the work within the rank: block iteration follows the Morton
space-filling curve, and kernels receive per-block padded work areas whose
ghosts are reconstructed from sibling blocks (intra-rank) or from the
cluster layer's global ghost buffer (inter-rank).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..physics.state import NQ, STORAGE_DTYPE
from ..core.block import Block
from .sfc import morton_order


class BlockGrid:
    """A dense cartesian collection of blocks owned by one rank.

    Parameters
    ----------
    num_blocks:
        Blocks per direction ``(Bz, By, Bx)``.
    block_size:
        Cells per block edge.
    h:
        Uniform grid spacing.
    origin:
        Physical coordinates of the rank subdomain's low corner.
    """

    def __init__(
        self,
        num_blocks: tuple[int, int, int],
        block_size: int,
        h: float,
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ):
        self.num_blocks = tuple(int(b) for b in num_blocks)
        if any(b < 1 for b in self.num_blocks):
            raise ValueError(f"invalid block counts {num_blocks}")
        self.block_size = int(block_size)
        self.h = float(h)
        self.origin = tuple(float(o) for o in origin)

        self.blocks: dict[tuple[int, int, int], Block] = {}
        #: Low-storage RK residual registers, one AoS array per block.
        self.residuals: dict[tuple[int, int, int], np.ndarray] = {}
        indices = []
        for bz in range(self.num_blocks[0]):
            for by in range(self.num_blocks[1]):
                for bx in range(self.num_blocks[2]):
                    idx = (bz, by, bx)
                    self.blocks[idx] = Block(self.block_size, idx)
                    indices.append(idx)
        arr = np.array(indices)
        self._sfc_indices = [tuple(arr[i]) for i in morton_order(arr)]

    # -- geometry --------------------------------------------------------

    @property
    def cells(self) -> tuple[int, int, int]:
        """Rank-subdomain extent in cells ``(nz, ny, nx)``."""
        n = self.block_size
        return tuple(b * n for b in self.num_blocks)

    @property
    def num_blocks_total(self) -> int:
        return len(self.blocks)

    def block_origin(self, index: tuple[int, int, int]) -> tuple[float, float, float]:
        """Physical low-corner coordinates of one block."""
        n = self.block_size
        return tuple(
            self.origin[d] + index[d] * n * self.h for d in range(3)
        )

    def cell_centers(self, index: tuple[int, int, int]):
        """Cell-center coordinate arrays ``(z, y, x)`` of one block."""
        o = self.block_origin(index)
        n = self.block_size
        return tuple(
            o[d] + (np.arange(n) + 0.5) * self.h for d in range(3)
        )

    # -- traversal -------------------------------------------------------

    def sfc_blocks(self) -> Iterator[Block]:
        """Blocks in Morton order (the kernel-dispatch order)."""
        for idx in self._sfc_indices:
            yield self.blocks[idx]

    def neighbor(self, index: tuple[int, int, int], axis: int, side: int) -> Block | None:
        """Face neighbor of a block, or ``None`` at the rank boundary."""
        coords = list(index)
        coords[axis] += side
        return self.blocks.get(tuple(coords))

    def is_rank_boundary(self, index: tuple[int, int, int], axis: int, side: int) -> bool:
        coords = list(index)
        coords[axis] += side
        return not (0 <= coords[axis] < self.num_blocks[axis])

    # -- residual registers ----------------------------------------------

    def residual(self, index: tuple[int, int, int]) -> np.ndarray:
        """The block's low-storage RK register, allocated on first use."""
        res = self.residuals.get(index)
        if res is None:
            n = self.block_size
            res = np.zeros((n, n, n, NQ), dtype=STORAGE_DTYPE)
            self.residuals[index] = res
        return res

    def reset_residuals(self) -> None:
        for res in self.residuals.values():
            res[...] = 0.0

    # -- whole-field assembly (tests, diagnostics, I/O) --------------------

    def to_array(self) -> np.ndarray:
        """Assemble the rank's field into one AoS array ``(nz, ny, nx, NQ)``."""
        nz, ny, nx = self.cells
        out = np.empty((nz, ny, nx, NQ), dtype=STORAGE_DTYPE)
        n = self.block_size
        for idx, block in self.blocks.items():
            bz, by, bx = idx
            out[
                bz * n : (bz + 1) * n,
                by * n : (by + 1) * n,
                bx * n : (bx + 1) * n,
            ] = block.data
        return out

    def from_array(self, field: np.ndarray) -> None:
        """Scatter a full AoS array into the blocks."""
        nz, ny, nx = self.cells
        if field.shape != (nz, ny, nx, NQ):
            raise ValueError(
                f"field shape {field.shape} != rank extent {(nz, ny, nx, NQ)}"
            )
        n = self.block_size
        for idx, block in self.blocks.items():
            bz, by, bx = idx
            block.data[...] = field[
                bz * n : (bz + 1) * n,
                by * n : (by + 1) * n,
                bx * n : (bx + 1) * n,
            ]

    def fill(self, fn) -> None:
        """Initialize every cell from ``fn(z, y, x) -> (NQ,) state``.

        ``fn`` receives broadcastable cell-center coordinate arrays and
        must return an AoS array; used by initial-condition builders.
        """
        for idx, block in self.blocks.items():
            z, y, x = self.cell_centers(idx)
            block.data[...] = fn(
                z[:, None, None], y[None, :, None], x[None, None, :]
            ).astype(STORAGE_DTYPE)
