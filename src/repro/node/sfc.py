"""Space-filling-curve block indexing (paper Section 5).

Data reordering in CUBISM is achieved "by grouping the computational
elements into 3D blocks of contiguous memory, and reindexing the blocks
with a space-filling curve".  This module provides a 3D Morton (Z-order)
curve -- encode/decode plus ordering helpers -- and a locality metric used
by the SFC ablation bench to quantify how much the curve improves
neighbor locality over row-major ordering.
"""

from __future__ import annotations

import numpy as np

#: Bits per dimension supported by the 64-bit interleave (grids to 2^21).
MAX_BITS = 21


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so there are two zero bits between
    consecutive bits (the classic magic-number bit interleave)."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_encode(z, y, x) -> np.ndarray:
    """Morton key of integer block coordinates (vectorized).

    Coordinates must fit in :data:`MAX_BITS` bits each.
    """
    z = np.asarray(z)
    y = np.asarray(y)
    x = np.asarray(x)
    if (z >= (1 << MAX_BITS)).any() or (y >= (1 << MAX_BITS)).any() or (
        x >= (1 << MAX_BITS)
    ).any():
        raise ValueError(f"coordinates exceed {MAX_BITS} bits")
    if (z < 0).any() or (y < 0).any() or (x < 0).any():
        raise ValueError("coordinates must be non-negative")
    return (
        _part1by2(x) | (_part1by2(y) << np.uint64(1)) | (_part1by2(z) << np.uint64(2))
    )


def morton_decode(key) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode`: returns ``(z, y, x)``."""
    key = np.asarray(key, dtype=np.uint64)
    x = _compact1by2(key)
    y = _compact1by2(key >> np.uint64(1))
    z = _compact1by2(key >> np.uint64(2))
    return z.astype(np.int64), y.astype(np.int64), x.astype(np.int64)


def morton_order(indices: np.ndarray) -> np.ndarray:
    """Permutation that sorts ``(N, 3)`` block coordinates along the curve."""
    indices = np.asarray(indices)
    keys = morton_encode(indices[:, 0], indices[:, 1], indices[:, 2])
    return np.argsort(keys, kind="stable")


def locality_score(order: np.ndarray, indices: np.ndarray) -> float:
    """Mean Chebyshev distance between blocks consecutive in ``order``.

    Lower is better: neighbors in traversal order are spatial neighbors.
    Row-major traversal of a ``B^3`` grid scores close to ~1 only along x
    but pays ``B``-sized jumps at row ends; the Morton curve keeps the mean
    near 1 with bounded jumps, which is the locality the paper's data
    reordering relies on.
    """
    seq = np.asarray(indices)[np.asarray(order)]
    d = np.abs(np.diff(seq, axis=0)).max(axis=1)
    return float(d.mean())
