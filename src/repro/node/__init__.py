"""Node layer: per-rank block grid, ghosts, SFC ordering, work dispatch.

"The node layer is responsible for coordinating the work within the
ranks.  The work associated to each block is exclusively assigned to one
thread." (paper Section 6)
"""

from .dispatcher import Dispatcher, ScheduleStats, simulate_dynamic_schedule
from .ghosts import BOUNDARY_KINDS, BoundarySpec, fill_block_ghosts
from .grid import BlockGrid
from .sfc import locality_score, morton_decode, morton_encode, morton_order
from .solver import NodeSolver

__all__ = [
    "BOUNDARY_KINDS",
    "BlockGrid",
    "BoundarySpec",
    "Dispatcher",
    "NodeSolver",
    "ScheduleStats",
    "fill_block_ghosts",
    "locality_score",
    "morton_decode",
    "morton_encode",
    "morton_order",
    "simulate_dynamic_schedule",
]
