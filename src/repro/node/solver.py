"""Node-layer solver: per-rank kernel orchestration.

Coordinates the work within a rank (paper Section 6, node layer): for each
block, load data + ghosts into a per-thread padded buffer, run the core
kernels, and store results.  Supports the halo/interior block split used
by the cluster layer to overlap communication with computation.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.block import GHOSTS, Block, padded_aos
from ..core.kernels import rhs_kernel, rhs_kernel_slices, sos_kernel, update_stage
from .dispatcher import Dispatcher, ScheduleStats
from .ghosts import BoundarySpec, fill_block_ghosts
from .grid import BlockGrid


class NodeSolver:
    """Executes RHS / UP / SOS over a rank's block grid.

    Parameters
    ----------
    grid:
        The rank's :class:`BlockGrid`.
    boundary:
        Physical boundary conditions at rank-subdomain faces that are also
        domain faces.  Faces adjacent to other ranks are filled by the
        ``remote_provider`` passed to :meth:`evaluate_rhs`.
    dispatcher:
        Work dispatcher (defaults to a 4-worker instrumented dispatcher).
    fused:
        Use the micro-fused WENO kernel.
    use_slices:
        Use the ring-buffer streaming RHS instead of the whole-block
        vectorized one (identical numerics, different memory behaviour).
    tracer:
        Optional :class:`repro.telemetry.Tracer`; when set, the solver
        counts kernel work (``rhs_cell_updates``, ``up_cell_updates``,
        ``dt_cell_evals``, ``rhs_block_evals``) that the metrics snapshot
        prices with the analytic FLOP model.
    """

    def __init__(
        self,
        grid: BlockGrid,
        boundary: BoundarySpec | None = None,
        dispatcher: Dispatcher | None = None,
        fused: bool = False,
        use_slices: bool = False,
        order: int = 5,
        solver: str = "hlle",
        tracer=None,
    ):
        self.grid = grid
        self.boundary = boundary or BoundarySpec.all_extrapolate()
        self.dispatcher = dispatcher or Dispatcher(num_workers=4)
        self.fused = fused
        self.use_slices = use_slices
        self.order = order
        self.solver = solver
        self.tracer = tracer
        self._tls = threading.local()
        self.last_schedule: ScheduleStats | None = None

    # -- per-thread work area ------------------------------------------

    def _pad_buffer(self) -> np.ndarray:
        """The per-thread dedicated padded buffer (paper Section 6)."""
        pad = getattr(self._tls, "pad", None)
        if pad is None or pad.shape[0] != self.grid.block_size + 2 * GHOSTS:
            pad = padded_aos(self.grid.block_size)
            self._tls.pad = pad
        return pad

    # -- kernels ----------------------------------------------------------

    def rhs_for_block(self, block: Block, remote_provider=None) -> np.ndarray:
        """Evaluate the RHS of one block (ghost load + core kernel)."""
        g = GHOSTS
        pad = self._pad_buffer()
        pad[g:-g, g:-g, g:-g, :] = block.data
        fill_block_ghosts(pad, self.grid, block, self.boundary, remote_provider)
        if self.use_slices:
            return rhs_kernel_slices(pad, self.grid.h)
        return rhs_kernel(pad, self.grid.h, fused=self.fused,
                          order=self.order, solver=self.solver)

    def evaluate_rhs(
        self,
        blocks=None,
        remote_provider=None,
        sanitizer=None,
    ) -> dict[tuple[int, int, int], np.ndarray]:
        """RHS of many blocks through the dispatcher; returns per-index map.

        ``blocks`` defaults to all blocks in SFC order (the paper's
        dispatch order); the cluster layer passes the interior subset
        first and the halo subset after the ghost messages arrive.
        ``sanitizer`` (an optional
        :class:`repro.analysis.sanitizer.NumericsSanitizer`) checks every
        block's time derivative for NaN/Inf, localizing findings to the
        block index and the offending quantity.
        """
        block_list = list(blocks) if blocks is not None else list(self.grid.sfc_blocks())
        results, stats = self.dispatcher.run(
            block_list, lambda b: self.rhs_for_block(b, remote_provider)
        )
        self.last_schedule = stats
        if sanitizer is not None:
            where = f"RHS ({sanitizer.context})"
            for blk, rhs in zip(block_list, results):
                sanitizer.check_finite(rhs, where=where, block=blk.index)
        if self.tracer is not None:
            self.tracer.count("rhs_block_evals", len(block_list))
            self.tracer.count(
                "rhs_cell_updates", len(block_list) * self.grid.block_size ** 3
            )
        return {b.index: r for b, r in zip(block_list, results)}

    def update(
        self,
        rhs_map: dict[tuple[int, int, int], np.ndarray],
        a: float,
        b: float,
        dt: float,
        sanitizer=None,
    ) -> None:
        """UP kernel over all blocks with RHS entries (one RK stage).

        ``sanitizer`` (an optional
        :class:`repro.analysis.sanitizer.NumericsSanitizer`) is forwarded
        to the UP kernel so every post-stage block write is checked.
        """
        for idx, rhs in rhs_map.items():
            block = self.grid.blocks[idx]
            update_stage(block.data, self.grid.residual(idx), rhs, a, b, dt,
                         sanitizer=sanitizer, block=idx)
        if self.tracer is not None:
            self.tracer.count(
                "up_cell_updates", len(rhs_map) * self.grid.block_size ** 3
            )

    def state_crc(self) -> dict[tuple[int, int, int], int]:
        """CRC32 digest of every block's state (dict block index -> crc).

        A cheap integrity fingerprint of the rank subdomain: comparing
        digests across a checkpoint/restore round trip (or between
        decompositions of the same field) localizes silent corruption to
        a block without a field-sized diff.
        """
        from ..resilience.detect import crc32_array

        return {
            idx: crc32_array(block.data)
            for idx, block in self.grid.blocks.items()
        }

    def max_sos(self, sanitizer=None) -> float:
        """Rank-local SOS reduction (maximum characteristic velocity).

        ``sanitizer`` (an optional
        :class:`repro.analysis.sanitizer.NumericsSanitizer`) checks each
        block's reduction for NaN/Inf so a diverged block is reported by
        index before the global allreduce collapses it to a single value.
        """
        if self.tracer is not None:
            self.tracer.count(
                "dt_cell_evals",
                len(self.grid.blocks) * self.grid.block_size ** 3,
            )
        if sanitizer is None:
            return max(sos_kernel(b.data) for b in self.grid.blocks.values())
        where = f"SOS ({sanitizer.context})"
        values = []
        for idx, block in self.grid.blocks.items():
            s = sos_kernel(block.data)
            sanitizer.check_finite(
                np.asarray(s), where=where, block=idx, field="sos"
            )
            values.append(s)
        return max(values)
