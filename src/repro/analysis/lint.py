"""``cubism-lint`` engine: AST rule framework, pragmas and path scoping.

The engine is deliberately small: a :class:`Rule` subclass registers
itself under a stable id (``CL001`` ...), receives a parsed
:class:`SourceFile` and yields :class:`Violation` records.  The engine
owns everything rules should not have to re-implement:

* discovery of python files under the linted paths;
* ``# lint: disable=RULE[,RULE...]`` pragmas -- a pragma comment on a
  line of its own disables the rules for the whole file, a trailing
  pragma disables them for the enclosing statement (every line of a
  multi-line simple statement; only the header lines of a compound
  statement, so a pragma on an ``if`` never silences its body);
* per-rule path scoping through :class:`LintConfig` (e.g. the mixed
  precision rule applies to ``core/``/``node/``/``cluster/``/
  ``physics/`` but exempts ``compression/`` and ``sim/`` diagnostics);
* stable ordering and ``file:line:col: RULE message`` formatting.

Rules live in :mod:`repro.analysis.rules`; the registry is open so
downstream campaigns can add project-specific contracts::

    from repro.analysis import Rule, lint_paths
    from repro.analysis.lint import register_rule

    @register_rule
    class MyRule(Rule):
        rule_id = "CX900"
        ...
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

#: Pragma syntax: ``# lint: disable=CL001`` or ``# lint: disable=CL001,CL002``.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Returns the canonical ``file:line:col: RULE message`` string."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceFile:
    """A parsed python file plus the lint metadata rules need.

    Attributes
    ----------
    path:
        Display path (as given on the command line).
    text / lines:
        Raw source and its ``splitlines()``.
    tree:
        The parsed ``ast.Module``.
    file_disables / line_disables:
        Rule ids disabled file-wide, and per physical line.
    """

    def __init__(self, path: str, text: str):
        self.path = str(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.path)
        self.file_disables: set[str] = set()
        self.line_disables: dict[int, set[str]] = {}
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._scan_pragmas()

    # -- pragmas --------------------------------------------------------

    def _scan_pragmas(self) -> None:
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PRAGMA_RE.search(tok.string)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            lineno = tok.start[0]
            before = self.lines[lineno - 1][: tok.start[1]]
            if before.strip():
                # Trailing pragma: disables the rules across the
                # enclosing statement's span, so a pragma anywhere on a
                # multi-line statement suppresses violations anchored on
                # any of its lines.
                start, end = self._statement_span(lineno)
                for ln in range(start, end + 1):
                    self.line_disables.setdefault(ln, set()).update(rules)
            else:
                # Stand-alone pragma comment: disables file-wide.
                self.file_disables.update(rules)

    def _statement_span(self, lineno: int) -> tuple[int, int]:
        """Line span a trailing pragma on ``lineno`` covers.

        The innermost statement containing the line; compound statements
        (``if``/``for``/``def`` ...) contribute only their header lines
        (up to the first body statement), so a pragma on a block header
        never silences the block body.
        """
        best: tuple[int, int] | None = None
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                end = min(end, body[0].lineno - 1)
            if not node.lineno <= lineno <= end:
                continue
            if (
                best is None
                or node.lineno > best[0]
                or (node.lineno == best[0] and end < best[1])
            ):
                best = (node.lineno, end)
        return best or (lineno, lineno)

    def disabled(self, rule_id: str, line: int) -> bool:
        """Returns whether ``rule_id`` is pragma-disabled at ``line``."""
        return (
            rule_id in self.file_disables
            or rule_id in self.line_disables.get(line, ())
        )

    # -- AST helpers shared by rules ------------------------------------

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Returns a child -> parent map of the whole tree (cached)."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents


class Rule:
    """Base class of all lint rules.

    Subclasses set ``rule_id``, ``name`` and ``description`` and
    implement :meth:`check`.  ``default_paths`` restricts the rule to
    path patterns (see :func:`path_matches`); ``None`` means the rule
    applies everywhere.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    default_paths: tuple[str, ...] | None = None

    def check(self, source: SourceFile) -> Iterable[Violation]:
        """Yield the rule's violations for one source file."""
        raise NotImplementedError

    def violation(self, source: SourceFile, node: ast.AST, message: str) -> Violation:
        """Returns a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


#: The open rule registry, keyed by rule id.
REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in REGISTRY and REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> list[type[Rule]]:
    """Returns the registered rule classes in id order."""
    return [REGISTRY[k] for k in sorted(REGISTRY)]


def path_matches(path: str, pattern: str) -> bool:
    """Returns whether a posix ``path`` falls under a scope ``pattern``.

    ``pattern`` ending in ``/`` matches that directory name anywhere in
    the path (``core/`` matches ``src/repro/core/kernels.py``); any
    other pattern must match a trailing path suffix at a component
    boundary (``repro/cli.py`` matches ``src/repro/cli.py`` but not
    ``src/repro/analysis/cli.py``).
    """
    p = "/" + path.replace("\\", "/").strip("/")
    if pattern.endswith("/"):
        return f"/{pattern}" in p + "/"
    return p.endswith("/" + pattern)


@dataclass
class LintConfig:
    """Which rules run where.

    ``select`` limits the run to those rule ids (``None`` = all
    registered); ``ignore`` removes rules; ``rule_paths`` overrides each
    rule's ``default_paths`` scope (patterns per :func:`path_matches`).
    The default instance is tuned to this repository -- see
    ``docs/analysis.md``.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    rule_paths: Mapping[str, tuple[str, ...] | None] = field(default_factory=dict)

    def active_rules(self) -> list[Rule]:
        """Returns instantiated rules enabled by select/ignore."""
        rules = []
        for cls in registered_rules():
            if self.select is not None and cls.rule_id not in self.select:
                continue
            if cls.rule_id in self.ignore:
                continue
            rules.append(cls())
        return rules

    def applies(self, rule: Rule, path: str) -> bool:
        """Returns whether ``rule`` is in scope for ``path``."""
        patterns = self.rule_paths.get(rule.rule_id, rule.default_paths)
        if patterns is None:
            return True
        return any(path_matches(path, pat) for pat in patterns)


def lint_source(text: str, path: str, config: LintConfig | None = None) -> list[Violation]:
    """Lint one in-memory source string; returns sorted violations.

    ``path`` is used both for display and for per-rule path scoping, so
    tests can place fixture snippets in any layer of the tree.
    """
    config = config or LintConfig()
    try:
        source = SourceFile(path, text)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="CL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    out: list[Violation] = []
    for rule in config.active_rules():
        if not config.applies(rule, path):
            continue
        for v in rule.check(source):
            if not source.disabled(v.rule, v.line):
                out.append(v)
    return sorted(out)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files or directories)."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py") if "egg-info" not in f.parts
            )
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Iterable[str | Path], config: LintConfig | None = None) -> list[Violation]:
    """Lint every python file under ``paths``; returns sorted violations."""
    config = config or LintConfig()
    out: list[Violation] = []
    for f in iter_python_files(paths):
        text = f.read_text(encoding="utf-8")
        out.extend(lint_source(text, str(f), config))
    return sorted(out)


def format_violations(violations: Iterable[Violation]) -> str:
    """Returns the report body, one ``file:line:col: RULE message`` per line."""
    return "\n".join(v.format() for v in violations)
